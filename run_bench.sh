#!/bin/bash
# Full evaluation pass: every experiment fanned out over domains, plus
# the Bechamel microbenchmarks.  Produces:
#   bench_output.txt            text tables + microbenchmark figures
#   bench_json/BENCH_<exp>.json per-experiment canonical rows
#   bench_json/BENCH_all.json   combined canonical rows
# Scale with MUTPS_BENCH_SCALE (e.g. 0.25), parallelism with BENCH_JOBS
# (default: Domain.recommended_domain_count).  Exits with the harness's
# real status — non-zero if any experiment failed.
set -u
cd /root/repo
mkdir -p bench_json

jobs_flag=()
if [ -n "${BENCH_JOBS:-}" ]; then
  jobs_flag=(--jobs "$BENCH_JOBS")
fi

dune exec bench/main.exe -- \
  "${jobs_flag[@]}" \
  --json bench_json/BENCH_all.json \
  --json-dir bench_json \
  > /root/repo/bench_output.txt 2>&1
status=$?
echo "BENCH_EXIT=$status" >> /root/repo/bench_output.txt
touch /root/repo/.bench_done
exit "$status"
