#!/bin/bash
cd /root/repo
dune exec bench/main.exe > /root/repo/bench_output.txt 2>&1
echo "BENCH_EXIT=$?" >> /root/repo/bench_output.txt
touch /root/repo/.bench_done
