(* probe: diagnostic sweep of μTPS configurations on one workload.

   For each (ncr, mr_ways, hot) setting it reports throughput, CR hit
   rate, per-layer LLC miss rates, per-layer busy cycles, latencies and
   CR-MR batch fill — the raw signals behind the auto-tuner's decisions.

     dune exec bin/probe.exe *)

open Mutps_kvs
module Engine = Mutps_sim.Engine
module Stats = Mutps_sim.Stats
module Client = Mutps_net.Client
module Ycsb = Mutps_workload.Ycsb
module Hier = Mutps_mem.Hierarchy

let keyspace = 200_000
let cores = 12

let run ?(ways = 12) ~ncr ~hot () =
  let config = Config.default ~cores ~index:Config.Tree ~capacity:keyspace () in
  let config =
    {
      config with
      Config.refresh_cycles = 5_000_000;
      geometry = Some (Config.scaled_geometry ~cores ~keyspace);
      hot_k = max 64 hot;
    }
  in
  let kv = Mutps.create ~ncr config in
  Backend.populate (Mutps.backend kv) ~keyspace ~value_size:64;
  Mutps.start kv;
  Mutps.set_mr_ways kv ways;
  if hot = 0 then Mutps.set_hot_target kv 0;
  let b = Mutps.backend kv in
  let spec = Ycsb.b ~keyspace ~value_size:64 () in
  let clients =
    Client.start ~engine:b.Backend.engine ~link:b.Backend.link
      ~transport:(Mutps.transport kv)
      { Client.clients = 64; window = 4; spec; seed = 7;
        dispatch = Client.uniform_dispatch }
  in
  Engine.run b.Backend.engine ~until:10_000_000;
  Client.reset_stats clients;
  Hier.reset_stats b.Backend.hier;
  let h0 = Mutps.cr_hits kv in
  let t0 = Engine.now b.Backend.engine in
  Engine.run b.Backend.engine ~until:(t0 + 20_000_000);
  let ops = Client.completed clients in
  let cr_core = Hier.core_stats b.Backend.hier ~core:0 in
  let mr_core = Hier.core_stats b.Backend.hier ~core:(cores - 1) in
  let hist = Client.latency clients in
  Printf.printf
    "ncr=%-2d ways=%-2d hot=%-5d  %6.2f Mops  crhit=%3.0f%%  CR-miss=%2.0f%% MR-miss=%2.0f%%  p50=%5.1fus p99=%5.1fus\n%!"
    ncr ways hot
    (Stats.mops ~ops ~cycles:20_000_000 ~ghz:2.5)
    (100.0 *. float_of_int (Mutps.cr_hits kv - h0) /. float_of_int (max ops 1))
    (100.0 *. Hier.llc_miss_rate cr_core)
    (100.0 *. Hier.llc_miss_rate mr_core)
    (float_of_int (Stats.Hist.percentile hist 50.0) /. 2500.0)
    (float_of_int (Stats.Hist.percentile hist 99.0) /. 2500.0);
  let crb, mrb, mrops, mrscans = Mutps.layer_stats kv in
  Printf.printf "    cr_busy/op=%.0f mr_busy/fwd=%.0f batch_fill=%.1f\n%!"
    (float_of_int crb /. float_of_int (max ops 1))
    (float_of_int mrb /. float_of_int (max mrops 1))
    (float_of_int mrops /. float_of_int (max mrscans 1))

let () =
  print_endline
    "uTPS configuration sweep (YCSB-B, 64B values, 200K keys, 12 cores)";
  List.iter
    (fun (ncr, ways, hot) -> run ~ways ~ncr ~hot ())
    [
      (3, 12, 1000); (6, 12, 1000); (8, 12, 1000);
      (8, 6, 1000); (8, 2, 1000);
      (4, 12, 0); (6, 12, 0);
    ]
