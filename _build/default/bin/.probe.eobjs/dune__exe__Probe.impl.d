bin/probe.ml: Backend Config List Mutps Mutps_kvs Mutps_mem Mutps_net Mutps_sim Mutps_workload Printf
