bin/probe.mli:
