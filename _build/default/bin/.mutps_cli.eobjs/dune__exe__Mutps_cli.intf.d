bin/mutps_cli.mli:
