bin/mutps_cli.ml: Arg Cmd Cmdliner Harness List Mutps_experiments Mutps_kvs Mutps_workload Printf Registry Term
