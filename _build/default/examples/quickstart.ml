(* Quickstart: build a μTPS-H server on the simulated machine, drive it
   with YCSB-B clients, print throughput and latency.

     dune exec examples/quickstart.exe *)

open Mutps_kvs
module Engine = Mutps_sim.Engine
module Stats = Mutps_sim.Stats
module Client = Mutps_net.Client
module Ycsb = Mutps_workload.Ycsb

let () =
  let keyspace = 100_000 in
  (* a μTPS server with a cuckoo-hash index on 8 worker cores *)
  let config = Config.default ~cores:8 ~index:Config.Hash ~capacity:keyspace () in
  let config = { config with Config.refresh_cycles = 5_000_000 } in
  let kv = Mutps.create config in
  Backend.populate (Mutps.backend kv) ~keyspace ~value_size:64;
  Mutps.start kv;

  (* closed-loop clients running YCSB-B (95% get / 5% put, Zipfian) *)
  let backend = Mutps.backend kv in
  let spec = Ycsb.b ~keyspace ~value_size:64 () in
  let clients =
    Client.start ~engine:backend.Backend.engine ~link:backend.Backend.link
      ~transport:(Mutps.transport kv)
      { Client.clients = 32; window = 4; spec; seed = 1;
        dispatch = Client.uniform_dispatch }
  in

  (* 4 ms warmup, 10 ms measured *)
  Engine.run backend.Backend.engine ~until:10_000_000;
  Client.reset_stats clients;
  let t0 = Engine.now backend.Backend.engine in
  Engine.run backend.Backend.engine ~until:(t0 + 25_000_000);

  let ops = Client.completed clients in
  let hist = Client.latency clients in
  Printf.printf "uTPS-H, YCSB-B, 64B values, %d keys\n" keyspace;
  Printf.printf "  throughput : %.2f Mops\n"
    (Stats.mops ~ops ~cycles:25_000_000 ~ghz:2.5);
  Printf.printf "  P50 latency: %.2f us\n"
    (float_of_int (Stats.Hist.percentile hist 50.0) /. 2500.0);
  Printf.printf "  P99 latency: %.2f us\n"
    (float_of_int (Stats.Hist.percentile hist 99.0) /. 2500.0);
  Printf.printf "  CR-layer hits: %d of %d ops (%.0f%%)\n" (Mutps.cr_hits kv)
    ops
    (100.0 *. float_of_int (Mutps.cr_hits kv) /. float_of_int (max ops 1));
  Printf.printf "  split: %d CR / %d MR threads, hot set %d items\n"
    (Mutps.ncr kv) (Mutps.nmr kv) (Mutps.hot_size kv)
