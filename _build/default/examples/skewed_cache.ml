(* Hot-set adaptation: run a Zipfian workload whose hotspot shifts halfway
   through, and watch the cache-resident layer re-learn the hot keys —
   the §2.2.1 motivation scenario.

     dune exec examples/skewed_cache.exe *)

open Mutps_kvs
module Engine = Mutps_sim.Engine
module Client = Mutps_net.Client
module Opgen = Mutps_workload.Opgen
module Ycsb = Mutps_workload.Ycsb

let window = 5_000_000 (* 2 ms *)

let () =
  let keyspace = 100_000 in
  let config = Config.default ~cores:8 ~index:Config.Tree ~capacity:keyspace () in
  let config =
    { config with Config.refresh_cycles = window; hot_k = 1024; sample_every = 4 }
  in
  let kv = Mutps.create config in
  Backend.populate (Mutps.backend kv) ~keyspace ~value_size:64;
  Mutps.start kv;
  let backend = Mutps.backend kv in

  (* phase 1: Zipfian over ranks 0.. (hotspot at the "low" scrambled keys) *)
  let spec1 = Ycsb.b ~keyspace ~value_size:64 () in
  (* phase 2: same skew, different hotspot — shift the key space by XOR *)
  let spec2 = { spec1 with Opgen.name = "shifted"; keyspace = keyspace / 2 } in
  let clients =
    Client.start ~engine:backend.Backend.engine ~link:backend.Backend.link
      ~transport:(Mutps.transport kv)
      { Client.clients = 32; window = 4; spec = spec1; seed = 5;
        dispatch = Client.uniform_dispatch }
  in
  Printf.printf "%-6s %-10s %-10s %-10s\n" "ms" "Mops" "CR-hit%" "hot-size";
  let last_ops = ref 0 and last_hits = ref 0 in
  for step = 1 to 20 do
    if step = 11 then begin
      Printf.printf "--- hotspot shifts ---\n";
      Client.set_spec clients spec2
    end;
    Engine.run backend.Backend.engine ~until:(step * window);
    let ops = Client.completed clients and hits = Mutps.cr_hits kv in
    let d_ops = ops - !last_ops and d_hits = hits - !last_hits in
    last_ops := ops;
    last_hits := hits;
    Printf.printf "%-6d %-10.2f %-10.1f %-10d\n" (step * 2)
      (Mutps_sim.Stats.mops ~ops:d_ops ~cycles:window ~ghz:2.5)
      (100.0 *. float_of_int d_hits /. float_of_int (max d_ops 1))
      (Mutps.hot_size kv)
  done;
  Printf.printf
    "\nThe CR-hit rate dips right after the shift and recovers once the\n\
     manager thread republishes the hot set (epoch-switched, no downtime).\n"
