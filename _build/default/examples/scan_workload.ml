(* Range queries on μTPS-T: cooperative scans where the cache-resident
   layer copies the hot entries it already holds and the memory-resident
   layer walks the B+tree for the rest (§4).

     dune exec examples/scan_workload.exe *)

open Mutps_kvs
module Engine = Mutps_sim.Engine
module Stats = Mutps_sim.Stats
module Client = Mutps_net.Client
module Ycsb = Mutps_workload.Ycsb

let measure name kv spec =
  let backend = Mutps.backend kv in
  let clients =
    Client.start ~engine:backend.Backend.engine ~link:backend.Backend.link
      ~transport:(Mutps.transport kv)
      { Client.clients = 24; window = 2; spec; seed = 2;
        dispatch = Client.uniform_dispatch }
  in
  let t0 = Engine.now backend.Backend.engine in
  Engine.run backend.Backend.engine ~until:(t0 + 10_000_000);
  Client.reset_stats clients;
  let t1 = Engine.now backend.Backend.engine in
  Engine.run backend.Backend.engine ~until:(t1 + 25_000_000);
  let ops = Client.completed clients in
  let hist = Client.latency clients in
  Printf.printf "%-22s %8.3f Mops   P50 %6.1f us   P99 %6.1f us\n" name
    (Stats.mops ~ops ~cycles:25_000_000 ~ghz:2.5)
    (float_of_int (Stats.Hist.percentile hist 50.0) /. 2500.0)
    (float_of_int (Stats.Hist.percentile hist 99.0) /. 2500.0)

let () =
  let keyspace = 100_000 in
  Printf.printf "uTPS-T range queries over %d keys (8B values)\n\n" keyspace;
  List.iter
    (fun (name, spec) ->
      let config =
        Config.default ~cores:8 ~index:Config.Tree ~capacity:keyspace ()
      in
      let config = { config with Config.refresh_cycles = 5_000_000 } in
      let kv = Mutps.create config in
      Backend.populate (Mutps.backend kv) ~keyspace ~value_size:8;
      Mutps.start kv;
      measure name kv spec)
    [
      ("YCSB-E (95% scan)", Ycsb.e ~keyspace ~scan_len:50 ~value_size:8 ());
      ("scan-only, range 50", Ycsb.scan_only ~keyspace ~scan_len:50 ~value_size:8 ());
      ("scan-only, range 10", Ycsb.scan_only ~keyspace ~scan_len:10 ~value_size:8 ());
      ("point gets (YCSB-C)", Ycsb.c ~keyspace ~value_size:8 ());
    ]
