(* The Figure 14 scenario as a runnable example: the workload's value size
   collapses from 512 B to 8 B mid-run; the auto-tuner notices the
   throughput shift, searches thread/cache/way settings, and applies a
   better configuration while the system keeps serving.

     dune exec examples/dynamic_tuning.exe *)

open Mutps_kvs
module Engine = Mutps_sim.Engine
module Client = Mutps_net.Client
module Ycsb = Mutps_workload.Ycsb

let ms = 2_500_000

let () =
  let keyspace = 100_000 in
  let config = Config.default ~cores:8 ~index:Config.Tree ~capacity:keyspace () in
  let config = { config with Config.refresh_cycles = 2 * ms } in
  let kv = Mutps.create ~ncr:2 config in
  Backend.populate (Mutps.backend kv) ~keyspace ~value_size:512;
  Mutps.start kv;
  let tuner =
    Autotuner.create
      ~params:
        {
          Autotuner.window = 2 * ms;
          settle = ms / 2;
          cache_step = 256;
          cache_points = 3;
          auto_threshold = 0.30;
        }
      kv
  in
  Autotuner.spawn tuner;
  let backend = Mutps.backend kv in
  let clients =
    Client.start ~engine:backend.Backend.engine ~link:backend.Backend.link
      ~transport:(Mutps.transport kv)
      { Client.clients = 48; window = 4;
        spec = Ycsb.a ~keyspace ~value_size:512 (); seed = 5;
        dispatch = Client.uniform_dispatch }
  in
  Printf.printf "%-6s %-8s %-5s %-5s %-5s %s\n" "ms" "Mops" "ncr" "hot" "ways" "";
  let last = ref 0 in
  for step = 1 to 60 do
    if step = 16 then begin
      Printf.printf "--- value size drops 512B -> 8B ---\n";
      Client.set_spec clients (Ycsb.a ~keyspace ~value_size:8 ())
    end;
    Engine.run backend.Backend.engine ~until:(step * ms);
    let ops = Client.completed clients in
    if step mod 2 = 0 then
      Printf.printf "%-6d %-8.2f %-5d %-5d %-5d %s\n" step
        (Mutps_sim.Stats.mops ~ops:(ops - !last) ~cycles:(2 * ms) ~ghz:2.5)
        (Mutps.ncr kv) (Mutps.hot_target kv) (Mutps.mr_ways kv)
        (if Autotuner.tuning tuner then "(tuning)" else "");
    if step mod 2 = 0 then last := ops
  done;
  Printf.printf "\ntuner passes completed: %d\n" (Autotuner.tunes_completed tuner);
  match Autotuner.last_applied tuner with
  | Some (ncr, hot, ways) ->
    Printf.printf "applied: ncr=%d hot=%d mr_ways=%d\n" ncr hot ways
  | None -> print_endline "tuner still searching (run longer for a full pass)"
