examples/skewed_cache.ml: Backend Config Mutps Mutps_kvs Mutps_net Mutps_sim Mutps_workload Printf
