examples/scan_workload.ml: Backend Config List Mutps Mutps_kvs Mutps_net Mutps_sim Mutps_workload Printf
