examples/skewed_cache.mli:
