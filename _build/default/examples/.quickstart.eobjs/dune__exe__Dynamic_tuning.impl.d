examples/dynamic_tuning.ml: Autotuner Backend Config Mutps Mutps_kvs Mutps_net Mutps_sim Mutps_workload Printf
