examples/quickstart.mli:
