examples/compare_systems.ml: Backend Basekv Config Erpckv List Mutps Mutps_kvs Mutps_net Mutps_sim Mutps_workload Printf
