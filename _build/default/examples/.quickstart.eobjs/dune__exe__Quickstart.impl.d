examples/quickstart.ml: Backend Config Mutps Mutps_kvs Mutps_net Mutps_sim Mutps_workload Printf
