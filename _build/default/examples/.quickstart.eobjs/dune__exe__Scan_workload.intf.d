examples/scan_workload.mli:
