examples/dynamic_tuning.mli:
