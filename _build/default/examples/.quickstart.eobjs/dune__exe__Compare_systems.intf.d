examples/compare_systems.mli:
