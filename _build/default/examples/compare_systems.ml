(* Head-to-head: run μTPS, BaseKV and eRPC-KV on the same machine model
   and workload, print throughput and latency side by side — a miniature
   of the paper's Figure 7 for one cell.

     dune exec examples/compare_systems.exe *)

open Mutps_kvs
module Engine = Mutps_sim.Engine
module Stats = Mutps_sim.Stats
module Client = Mutps_net.Client
module Opgen = Mutps_workload.Opgen
module Ycsb = Mutps_workload.Ycsb

let keyspace = 100_000
let cores = 8
let value_size = 64

let base_config () =
  let c = Config.default ~cores ~index:Config.Tree ~capacity:keyspace () in
  {
    c with
    Config.refresh_cycles = 5_000_000;
    geometry = Some (Config.scaled_geometry ~cores ~keyspace);
    hot_k = keyspace / 200;
  }

type built = {
  engine : Engine.t;
  link : Mutps_net.Link.t;
  transport : Mutps_net.Transport.t;
  dispatch : Opgen.op -> int;
}

let build_system = function
  | `Mutps ->
    (* a statically tuned split (the benches and Figure 13 use the real
       auto-tuner; 2/3 CR threads is the usual skewed-read optimum) *)
    let kv = Mutps.create ~ncr:(2 * cores / 3) (base_config ()) in
    Backend.populate (Mutps.backend kv) ~keyspace ~value_size;
    Mutps.start kv;
    let b = Mutps.backend kv in
    ( "uTPS-T",
      {
        engine = b.Backend.engine;
        link = b.Backend.link;
        transport = Mutps.transport kv;
        dispatch = Client.uniform_dispatch;
      } )
  | `Basekv ->
    let kv = Basekv.create (base_config ()) in
    Backend.populate (Basekv.backend kv) ~keyspace ~value_size;
    Basekv.start kv;
    let b = Basekv.backend kv in
    ( "BaseKV",
      {
        engine = b.Backend.engine;
        link = b.Backend.link;
        transport = Basekv.transport kv;
        dispatch = Client.uniform_dispatch;
      } )
  | `Erpckv ->
    let kv = Erpckv.create (base_config ()) in
    Backend.populate (Erpckv.backend kv) ~keyspace ~value_size;
    Erpckv.start kv;
    let b = Erpckv.backend kv in
    ( "eRPC-KV",
      {
        engine = b.Backend.engine;
        link = b.Backend.link;
        transport = Erpckv.transport kv;
        dispatch = Erpckv.dispatch kv;
      } )

let () =
  let spec = Ycsb.a ~keyspace ~value_size () in
  Printf.printf "YCSB-A (50%% put / 50%% get, Zipfian 0.99), %dB values, %d keys, %d cores\n\n"
    value_size keyspace cores;
  Printf.printf "%-10s %10s %10s %10s\n" "system" "Mops" "P50 (us)" "P99 (us)";
  List.iter
    (fun sys ->
      let name, b = build_system sys in
      let clients =
        Client.start ~engine:b.engine ~link:b.link ~transport:b.transport
          { Client.clients = 48; window = 4; spec; seed = 11;
            dispatch = b.dispatch }
      in
      Engine.run b.engine ~until:10_000_000;
      Client.reset_stats clients;
      let t0 = Engine.now b.engine in
      Engine.run b.engine ~until:(t0 + 25_000_000);
      let hist = Client.latency clients in
      Printf.printf "%-10s %10.2f %10.2f %10.2f\n" name
        (Stats.mops ~ops:(Client.completed clients) ~cycles:25_000_000 ~ghz:2.5)
        (float_of_int (Stats.Hist.percentile hist 50.0) /. 2500.0)
        (float_of_int (Stats.Hist.percentile hist 99.0) /. 2500.0))
    [ `Mutps; `Basekv; `Erpckv ]
