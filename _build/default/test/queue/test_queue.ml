open Mutps_sim
open Mutps_mem
open Mutps_queue

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let run_sim ?(cores = 4) fns =
  let engine = Engine.create () in
  let hier = Hierarchy.create (Hierarchy.small_geometry ~cores) in
  List.iteri
    (fun core f ->
      Simthread.spawn engine (fun ctx -> f (Env.make ~ctx ~hier ~core)))
    fns;
  Engine.run_all engine;
  Engine.now engine

let with_env f =
  let result = ref None in
  ignore (run_sim [ (fun env -> result := Some (f env)) ]);
  Option.get !result

(* ------------------------------------------------------------------ *)
(* Request                                                             *)
(* ------------------------------------------------------------------ *)

let test_request_constructors () =
  let g = Request.get ~key:42L ~buf:7 in
  check_bool "get kind" true (g.Request.kind = Request.Get);
  check_int "get wire bytes" 16 (Request.wire_bytes g);
  let s = Request.scan ~key:1L ~count:50 ~buf:0 in
  check_int "scan wire bytes" 32 (Request.wire_bytes s);
  check_int "scan count" 50 s.Request.scan_count

let test_request_validation () =
  Alcotest.check_raises "oversized value"
    (Invalid_argument "Request: size out of range") (fun () ->
      ignore (Request.put ~key:1L ~size:(Request.max_size + 1) ~buf:0));
  Alcotest.check_raises "oversized scan"
    (Invalid_argument "Request: scan count out of range") (fun () ->
      ignore (Request.scan ~key:1L ~count:(Request.max_scan_count + 1) ~buf:0))

let test_request_roundtrip_cases () =
  List.iter
    (fun r ->
      let decoded = Request.decode (Request.encode r) in
      check_bool (Format.asprintf "%a" Request.pp r) true (Request.equal r decoded))
    [
      Request.get ~key:0L ~buf:0;
      Request.get ~key:Int64.max_int ~buf:Request.max_buf;
      Request.get ~key:(-1L) ~buf:12345;
      Request.put ~key:77L ~size:Request.max_size ~buf:1;
      Request.delete ~key:5L ~buf:9;
      Request.scan ~key:100L ~count:Request.max_scan_count ~buf:3;
    ]

let prop_request_roundtrip =
  QCheck.Test.make ~name:"request encode/decode roundtrip" ~count:500
    QCheck.(
      quad int64 (int_bound 3) (int_bound Request.max_size) (int_bound 10_000))
    (fun (key, kindc, size, buf) ->
      let r =
        match kindc with
        | 0 -> Request.get ~key ~buf
        | 1 -> Request.put ~key ~size ~buf
        | 2 -> Request.delete ~key ~buf
        | _ -> Request.scan ~key ~count:(size land 0xFF) ~buf
      in
      Request.equal r (Request.decode (Request.encode r)))

(* ------------------------------------------------------------------ *)
(* Ring                                                                *)
(* ------------------------------------------------------------------ *)

let mk_ring ?(slots = 4) ?(batch = 8) () =
  let layout = Layout.create () in
  Ring.create layout ~name:"test-ring" ~slots ~batch ~value_bytes:16

let test_ring_push_peek_complete () =
  let r = mk_ring () in
  with_env (fun env ->
      check_bool "push" true (Ring.push r env [| 1; 2; 3 |]);
      (match Ring.peek r env with
      | Some v -> Alcotest.(check (array int)) "peek batch" [| 1; 2; 3 |] v
      | None -> Alcotest.fail "expected batch");
      check_bool "no completion yet" true (Ring.take_completed r env = None);
      Ring.complete r env;
      (match Ring.take_completed r env with
      | Some v -> Alcotest.(check (array int)) "completed batch" [| 1; 2; 3 |] v
      | None -> Alcotest.fail "expected completion");
      check_bool "empty" true (Ring.is_empty r))

let test_ring_fifo_order () =
  let r = mk_ring ~slots:8 () in
  with_env (fun env ->
      for i = 0 to 5 do
        check_bool "push" true (Ring.push r env [| i |])
      done;
      for i = 0 to 5 do
        match Ring.peek r env with
        | Some [| v |] -> check_int "fifo" i v
        | _ -> Alcotest.fail "bad peek"
      done)

let test_ring_full () =
  let r = mk_ring ~slots:4 () in
  with_env (fun env ->
      for i = 0 to 3 do
        check_bool "push" true (Ring.push r env [| i |])
      done;
      check_bool "full" false (Ring.push r env [| 9 |]);
      check_int "in flight" 4 (Ring.in_flight r);
      (* a slot frees only after its completion is reaped *)
      ignore (Ring.peek r env);
      Ring.complete r env;
      check_bool "still full before reap" false (Ring.push r env [| 9 |]);
      ignore (Ring.take_completed r env);
      check_bool "push after reap" true (Ring.push r env [| 9 |]))

let test_ring_peek_does_not_complete () =
  let r = mk_ring ~slots:4 () in
  with_env (fun env ->
      ignore (Ring.push r env [| 1 |]);
      ignore (Ring.peek r env);
      check_bool "still in flight" false (Ring.is_empty r);
      check_bool "nothing completed" true (Ring.take_completed r env = None))

let test_ring_complete_without_peek_rejected () =
  let r = mk_ring () in
  with_env (fun env ->
      ignore (Ring.push r env [| 1 |]);
      Alcotest.check_raises "complete before peek"
        (Invalid_argument "Ring.complete: nothing peeked to complete")
        (fun () -> Ring.complete r env))

let test_ring_bad_batch_size () =
  let r = mk_ring ~batch:4 () in
  with_env (fun env ->
      Alcotest.check_raises "empty batch"
        (Invalid_argument "Ring.push: bad batch size") (fun () ->
          ignore (Ring.push r env [||]));
      Alcotest.check_raises "oversized batch"
        (Invalid_argument "Ring.push: bad batch size") (fun () ->
          ignore (Ring.push r env (Array.make 5 0))))

let test_ring_producer_consumer_threads () =
  (* one producer and one consumer thread moving 200 batches *)
  let r = mk_ring ~slots:4 ~batch:4 () in
  let consumed = ref [] in
  let produced = 50 in
  ignore
    (run_sim
       [
         (fun env ->
           let sent = ref 0 in
           while !sent < produced do
             ignore (Ring.take_completed r env);
             if Ring.push r env [| !sent |] then incr sent
             else Simthread.delay env.Env.ctx 50
           done;
           (* drain remaining completions *)
           while Ring.in_flight r > 0 || Ring.take_completed r env <> None do
             Simthread.delay env.Env.ctx 50
           done);
         (fun env ->
           let got = ref 0 in
           while !got < produced do
             match Ring.peek r env with
             | Some [| v |] ->
               consumed := v :: !consumed;
               Ring.complete r env;
               incr got
             | Some _ -> Alcotest.fail "bad batch"
             | None -> Simthread.delay env.Env.ctx 30
           done);
       ]);
  Alcotest.(check (list int))
    "all batches in order"
    (List.init produced Fun.id)
    (List.rev !consumed)

let prop_ring_never_loses =
  QCheck.Test.make ~name:"ring conserves batches under any interleaving"
    ~count:60
    QCheck.(pair (int_range 1 6) (int_range 1 40))
    (fun (slots, n) ->
      let layout = Layout.create () in
      let r = Ring.create layout ~name:"p" ~slots ~batch:2 ~value_bytes:16 in
      let got = ref 0 in
      ignore
        (run_sim
           [
             (fun env ->
               let sent = ref 0 in
               while !sent < n do
                 ignore (Ring.take_completed r env);
                 if Ring.push r env [| !sent |] then incr sent
                 else Simthread.delay env.Env.ctx 20
               done);
             (fun env ->
               while !got < n do
                 match Ring.peek r env with
                 | Some _ ->
                   Ring.complete r env;
                   incr got
                 | None -> Simthread.delay env.Env.ctx 15
               done);
           ]);
      !got = n && Ring.is_empty r)

(* ------------------------------------------------------------------ *)
(* Crmr                                                                *)
(* ------------------------------------------------------------------ *)

let mk_crmr ?(max_cr = 3) ?(max_mr = 3) () =
  let layout = Layout.create () in
  Crmr.create layout ~max_cr ~max_mr ~slots:8 ~batch:4 ~value_bytes:16

let test_crmr_round_robin_spread () =
  let q = mk_crmr () in
  with_env (fun env ->
      (* CR 0 pushes 6 batches over 3 active MRs: 2 each *)
      for i = 0 to 5 do
        check_bool "push" true (Crmr.push q env ~cr:0 ~targets:[|0;1;2|] [| i |])
      done;
      let counts = Array.make 3 0 in
      for mr = 0 to 2 do
        let rec drain () =
          match Crmr.next_batch q env ~mr ~sources:[|0|] with
          | Some (0, _) ->
            counts.(mr) <- counts.(mr) + 1;
            Crmr.complete q env ~cr:0 ~mr;
            drain ()
          | Some _ -> Alcotest.fail "wrong cr"
          | None -> ()
        in
        drain ()
      done;
      Alcotest.(check (array int)) "even spread" [| 2; 2; 2 |] counts)

let test_crmr_scan_finds_all_crs () =
  let q = mk_crmr () in
  with_env (fun env ->
      (* each CR pushes one batch to MR pool of size 1 -> all to MR 0 *)
      for cr = 0 to 2 do
        ignore (Crmr.push q env ~cr ~targets:[|0|] [| cr |])
      done;
      let seen = ref [] in
      let rec drain () =
        match Crmr.next_batch q env ~mr:0 ~sources:[|0;1;2|] with
        | Some (cr, _) ->
          seen := cr :: !seen;
          Crmr.complete q env ~cr ~mr:0;
          drain ()
        | None -> ()
      in
      drain ();
      Alcotest.(check (list int)) "all CRs served" [ 0; 1; 2 ]
        (List.sort compare !seen))

let test_crmr_completion_reaped () =
  let q = mk_crmr () in
  with_env (fun env ->
      ignore (Crmr.push q env ~cr:1 ~targets:[|0;1|] [| 42 |]);
      check_bool "not complete yet" true (Crmr.take_completed q env ~cr:1 = None);
      (match Crmr.next_batch q env ~mr:0 ~sources:[|0;1|] with
      | Some (1, _) -> Crmr.complete q env ~cr:1 ~mr:0
      | Some _ | None -> (
        (* round-robin may have sent it to MR 1 *)
        match Crmr.next_batch q env ~mr:1 ~sources:[|0;1|] with
        | Some (1, _) -> Crmr.complete q env ~cr:1 ~mr:1
        | _ -> Alcotest.fail "batch not found"));
      (match Crmr.take_completed q env ~cr:1 with
      | Some [| 42 |] -> ()
      | _ -> Alcotest.fail "completion not reaped");
      check_bool "drained" true (Crmr.cr_drained q ~cr:1))

let test_crmr_skips_full_rings () =
  let layout = Layout.create () in
  let q = Crmr.create layout ~max_cr:1 ~max_mr:2 ~slots:1 ~batch:1 ~value_bytes:16 in
  with_env (fun env ->
      (* two pushes fill both MR rings (slots=1 each) *)
      check_bool "push 1" true (Crmr.push q env ~cr:0 ~targets:[|0;1|] [| 1 |]);
      check_bool "push 2 skips to other ring" true
        (Crmr.push q env ~cr:0 ~targets:[|0;1|] [| 2 |]);
      check_bool "all full" false (Crmr.push q env ~cr:0 ~targets:[|0;1|] [| 3 |]);
      check_int "in flight" 2 (Crmr.in_flight q))

let test_crmr_drained_flags () =
  let q = mk_crmr () in
  with_env (fun env ->
      check_bool "cr drained initially" true (Crmr.cr_drained q ~cr:0);
      check_bool "mr drained initially" true (Crmr.mr_drained q ~mr:0);
      ignore (Crmr.push q env ~cr:0 ~targets:[|0|] [| 1 |]);
      check_bool "cr busy" false (Crmr.cr_drained q ~cr:0);
      check_bool "mr busy" false (Crmr.mr_drained q ~mr:0))

let prop_crmr_conserves =
  QCheck.Test.make ~name:"crmr conserves values across the mesh" ~count:40
    QCheck.(triple (int_range 1 3) (int_range 1 3) (int_range 1 60))
    (fun (ncr, nmr, per_cr) ->
      let layout = Layout.create () in
      let q =
        Crmr.create layout ~max_cr:3 ~max_mr:3 ~slots:4 ~batch:2 ~value_bytes:16
      in
      let consumed = ref 0 in
      let producers =
        List.init ncr (fun cr env ->
            let sent = ref 0 in
            while !sent < per_cr do
              ignore (Crmr.take_completed q env ~cr);
              if Crmr.push q env ~cr ~targets:(Array.init nmr Fun.id) [| (cr * 1000) + !sent |] then
                incr sent
              else Simthread.delay env.Env.ctx 25
            done)
      in
      let total = ncr * per_cr in
      let consumers =
        List.init nmr (fun mr env ->
            let idle = ref 0 in
            while !consumed < total && !idle < 10_000 do
              match Crmr.next_batch q env ~mr ~sources:(Array.init ncr Fun.id) with
              | Some (cr, _) ->
                Crmr.complete q env ~cr ~mr;
                incr consumed;
                idle := 0
              | None ->
                incr idle;
                Simthread.delay env.Env.ctx 20
            done)
      in
      ignore (run_sim ~cores:6 (producers @ consumers));
      !consumed = total && Crmr.in_flight q = 0)


let test_ring_unreclaimed_tracking () =
  let r = mk_ring ~slots:4 () in
  with_env (fun env ->
      check_int "fresh" 0 (Ring.unreclaimed r);
      ignore (Ring.push r env [| 1 |]);
      ignore (Ring.push r env [| 2 |]);
      check_int "two pushed" 2 (Ring.unreclaimed r);
      ignore (Ring.peek r env);
      Ring.complete r env;
      check_int "still unreclaimed after complete" 2 (Ring.unreclaimed r);
      ignore (Ring.take_completed r env);
      check_int "one reclaimed" 1 (Ring.unreclaimed r))

let test_crmr_reap_skips_idle_rings () =
  (* take_completed on a producer with nothing outstanding must not charge
     any simulated time for ring probes *)
  let q = mk_crmr () in
  let layout = Layout.create () in
  ignore layout;
  let engine = Engine.create () in
  let hier = Hierarchy.create (Hierarchy.small_geometry ~cores:2) in
  let elapsed = ref (-1) in
  Simthread.spawn engine (fun ctx ->
      let env = Env.make ~ctx ~hier ~core:0 in
      let t0 = Simthread.now ctx in
      for _ = 1 to 100 do
        ignore (Crmr.take_completed q env ~cr:0)
      done;
      Simthread.commit ctx;
      elapsed := Simthread.now ctx - t0);
  Engine.run_all engine;
  check_int "idle reap is free" 0 !elapsed

let () =
  Alcotest.run "queue"
    [
      ( "request",
        [
          Alcotest.test_case "constructors" `Quick test_request_constructors;
          Alcotest.test_case "validation" `Quick test_request_validation;
          Alcotest.test_case "roundtrip cases" `Quick test_request_roundtrip_cases;
          QCheck_alcotest.to_alcotest prop_request_roundtrip;
        ] );
      ( "ring",
        [
          Alcotest.test_case "push/peek/complete" `Quick test_ring_push_peek_complete;
          Alcotest.test_case "fifo order" `Quick test_ring_fifo_order;
          Alcotest.test_case "full" `Quick test_ring_full;
          Alcotest.test_case "peek does not complete" `Quick test_ring_peek_does_not_complete;
          Alcotest.test_case "complete without peek" `Quick test_ring_complete_without_peek_rejected;
          Alcotest.test_case "bad batch size" `Quick test_ring_bad_batch_size;
          Alcotest.test_case "producer/consumer" `Quick test_ring_producer_consumer_threads;
          QCheck_alcotest.to_alcotest prop_ring_never_loses;
          Alcotest.test_case "unreclaimed tracking" `Quick test_ring_unreclaimed_tracking;
        ] );
      ( "crmr",
        [
          Alcotest.test_case "round robin" `Quick test_crmr_round_robin_spread;
          Alcotest.test_case "scan all crs" `Quick test_crmr_scan_finds_all_crs;
          Alcotest.test_case "completion reaped" `Quick test_crmr_completion_reaped;
          Alcotest.test_case "skips full rings" `Quick test_crmr_skips_full_rings;
          Alcotest.test_case "drained flags" `Quick test_crmr_drained_flags;
          QCheck_alcotest.to_alcotest prop_crmr_conserves;
          Alcotest.test_case "reap skips idle rings" `Quick test_crmr_reap_skips_idle_rings;
        ] );
    ]
