open Mutps_sim
open Mutps_mem
open Mutps_store

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_bytes = Alcotest.(check string)

(* Run [f] inside a simulated thread on core [core]; returns after the whole
   simulation drains. *)
let run_sim ?(cores = 4) fns =
  let engine = Engine.create () in
  let hier = Hierarchy.create (Hierarchy.small_geometry ~cores) in
  List.iteri
    (fun core f ->
      Simthread.spawn engine ~name:(Printf.sprintf "core%d" core) (fun ctx ->
          f (Env.make ~ctx ~hier ~core)))
    fns;
  Engine.run_all engine;
  engine

let fresh_slab () =
  let layout = Layout.create () in
  Slab.create layout ()

(* ------------------------------------------------------------------ *)
(* Slab                                                                *)
(* ------------------------------------------------------------------ *)

let test_slab_classes () =
  check_int "16 min class" 16 (Slab.class_of_size 1);
  check_int "16" 16 (Slab.class_of_size 16);
  check_int "32" 32 (Slab.class_of_size 17);
  check_int "1024" 1024 (Slab.class_of_size 1000)

let test_slab_alloc_distinct () =
  let s = fresh_slab () in
  let a = Slab.alloc s 64 and b = Slab.alloc s 64 in
  check_bool "distinct addresses" true (a <> b);
  check_bool "no overlap" true (abs (a - b) >= 64);
  check_int "live" 2 (Slab.live_blocks s)

let test_slab_free_reuse () =
  let s = fresh_slab () in
  let a = Slab.alloc s 100 in
  Slab.free s ~addr:a ~size:100;
  let b = Slab.alloc s 100 in
  check_int "freed block reused" a b;
  check_int "live" 1 (Slab.live_blocks s)

let test_slab_classes_isolated () =
  let s = fresh_slab () in
  let a = Slab.alloc s 16 in
  Slab.free s ~addr:a ~size:16;
  let b = Slab.alloc s 64 in
  check_bool "different class does not reuse" true (a <> b)

let test_slab_rejects () =
  let s = fresh_slab () in
  Alcotest.check_raises "zero size"
    (Invalid_argument "Slab: size must be positive") (fun () ->
      ignore (Slab.alloc s 0))

(* ------------------------------------------------------------------ *)
(* Item                                                                *)
(* ------------------------------------------------------------------ *)

let test_item_roundtrip () =
  let slab = fresh_slab () in
  let item = Item.create slab ~value:(Bytes.of_string "hello world") in
  let got = ref "" in
  ignore
    (run_sim
       [
         (fun env -> got := Bytes.to_string (Item.read env item));
       ]);
  check_bytes "read back" "hello world" !got;
  check_int "size" 11 (Item.size item);
  check_bool "even version" true (Item.version item land 1 = 0)

let test_item_write_then_read () =
  let slab = fresh_slab () in
  let item = Item.create slab ~value:(Bytes.make 64 'a') in
  let got = ref "" in
  ignore
    (run_sim
       [
         (fun env ->
           Item.write env item (Bytes.make 64 'b') slab;
           got := Bytes.to_string (Item.read env item));
       ]);
  check_bytes "updated" (String.make 64 'b') !got;
  check_int "version bumped twice" 2 (Item.version item)

let test_item_atomic_small () =
  let slab = fresh_slab () in
  let item = Item.create slab ~value:(Bytes.of_string "12345678") in
  ignore
    (run_sim
       [ (fun env -> Item.write env item (Bytes.of_string "abcdefgh") slab) ]);
  (* atomic path bumps version by 2 in one step and never leaves it odd *)
  check_int "version" 2 (Item.version item);
  check_bytes "value" "abcdefgh" (Bytes.to_string (Item.peek item))

let test_item_realloc_on_growth () =
  let slab = fresh_slab () in
  let item = Item.create slab ~value:(Bytes.make 8 'x') in
  let a0 = Item.addr item in
  ignore
    (run_sim [ (fun env -> Item.write env item (Bytes.make 500 'y') slab) ]);
  check_bool "address changed on class growth" true (Item.addr item <> a0);
  check_int "new size" 500 (Item.size item)

let test_item_same_class_in_place () =
  let slab = fresh_slab () in
  let item = Item.create slab ~value:(Bytes.make 100 'x') in
  let a0 = Item.addr item in
  ignore
    (run_sim [ (fun env -> Item.write env item (Bytes.make 110 'y') slab) ]);
  check_int "same class stays in place" a0 (Item.addr item)

let test_item_writers_serialize () =
  (* Two writers to the same large item: both must complete, final value is
     one of theirs, and the loser records a contended acquire. *)
  let slab = fresh_slab () in
  let item = Item.create slab ~value:(Bytes.make 256 '0') in
  ignore
    (run_sim
       [
         (fun env -> Item.write env item (Bytes.make 256 'A') slab);
         (fun env -> Item.write env item (Bytes.make 256 'B') slab);
       ]);
  let v = Bytes.to_string (Item.peek item) in
  check_bool "one writer won last" true
    (v = String.make 256 'A' || v = String.make 256 'B');
  check_int "two updates" 4 (Item.version item);
  check_bool "contention observed" true (Item.contended_acquires item >= 1)

let test_item_reader_sees_consistent () =
  (* A reader overlapping a writer must return either the old or the new
     value, never a torn mix. *)
  let slab = fresh_slab () in
  let item = Item.create slab ~value:(Bytes.make 1024 'o') in
  let seen = ref [] in
  ignore
    (run_sim
       [
         (fun env ->
           for _ = 1 to 5 do
             Item.write env item (Bytes.make 1024 'n') slab
           done);
         (fun env ->
           for _ = 1 to 20 do
             seen := Bytes.to_string (Item.read env item) :: !seen
           done);
       ]);
  List.iter
    (fun s ->
      check_bool "untorn" true
        (s = String.make 1024 'o' || s = String.make 1024 'n'))
    !seen

let test_item_contention_cost () =
  (* The more writers hammer one item, the longer the simulation takes per
     op — the seqlock must serialize. *)
  let time_with n =
    let slab = fresh_slab () in
    let item = Item.create slab ~value:(Bytes.make 64 'x') in
    let fns =
      List.init n (fun _ env ->
          for _ = 1 to 50 do
            Item.write env item (Bytes.make 64 'y') slab
          done)
    in
    let e = run_sim ~cores:(max n 1) fns in
    Engine.now e
  in
  let t1 = time_with 1 and t4 = time_with 4 in
  check_bool "4 contending writers take longer than 1" true (t4 > t1)


let test_item_write_exclusive () =
  let slab = fresh_slab () in
  let item = Item.create slab ~value:(Bytes.make 64 'a') in
  ignore
    (run_sim
       [ (fun env -> Item.write_exclusive env item (Bytes.make 64 'b') slab) ]);
  check_bytes "exclusive write applied" (String.make 64 'b')
    (Bytes.to_string (Item.peek item));
  check_int "version bumped evenly" 2 (Item.version item);
  check_int "no contention recorded" 0 (Item.contended_acquires item)

let test_item_write_exclusive_cheaper_than_locked () =
  (* the share-nothing path must cost less simulated time than the
     seqlock path for the same update *)
  let cost write_fn =
    let slab = fresh_slab () in
    let item = Item.create slab ~value:(Bytes.make 256 'x') in
    let e =
      run_sim [ (fun env ->
          for _ = 1 to 100 do
            write_fn env item (Bytes.make 256 'y') slab
          done) ]
    in
    Engine.now e
  in
  let locked = cost Item.write in
  let exclusive = cost Item.write_exclusive in
  check_bool
    (Printf.sprintf "exclusive (%d) < locked (%d)" exclusive locked)
    true (exclusive < locked)

let test_item_contention_scales_with_writers () =
  (* per-op cost must grow with the number of contending writers: the
     §2.2.2 share-everything effect *)
  let per_op n =
    let slab = fresh_slab () in
    let item = Item.create slab ~value:(Bytes.make 64 'x') in
    let ops = 40 in
    let fns =
      List.init n (fun _ env ->
          for _ = 1 to ops do
            Item.write env item (Bytes.make 64 'y') slab
          done)
    in
    let e = run_sim ~cores:(max n 2) fns in
    float_of_int (Engine.now e) /. float_of_int (n * ops)
  in
  let solo = per_op 1 and crowd = per_op 6 in
  check_bool
    (Printf.sprintf "6 writers per-op (%.0f) > 1 writer (%.0f)" crowd solo)
    true (crowd > solo)

let prop_item_roundtrip =
  QCheck.Test.make ~name:"item write/read roundtrip" ~count:100
    QCheck.(string_of_size (Gen.int_range 1 2048))
    (fun s ->
      let slab = fresh_slab () in
      let item = Item.create slab ~value:(Bytes.of_string "seed") in
      let got = ref "" in
      ignore
        (run_sim
           [
             (fun env ->
               Item.write env item (Bytes.of_string s) slab;
               got := Bytes.to_string (Item.read env item));
           ]);
      !got = s)

let () =
  Alcotest.run "store"
    [
      ( "slab",
        [
          Alcotest.test_case "classes" `Quick test_slab_classes;
          Alcotest.test_case "alloc distinct" `Quick test_slab_alloc_distinct;
          Alcotest.test_case "free/reuse" `Quick test_slab_free_reuse;
          Alcotest.test_case "classes isolated" `Quick test_slab_classes_isolated;
          Alcotest.test_case "rejects" `Quick test_slab_rejects;
        ] );
      ( "item",
        [
          Alcotest.test_case "roundtrip" `Quick test_item_roundtrip;
          Alcotest.test_case "write then read" `Quick test_item_write_then_read;
          Alcotest.test_case "atomic small" `Quick test_item_atomic_small;
          Alcotest.test_case "realloc on growth" `Quick test_item_realloc_on_growth;
          Alcotest.test_case "same class in place" `Quick test_item_same_class_in_place;
          Alcotest.test_case "writers serialize" `Quick test_item_writers_serialize;
          Alcotest.test_case "reader consistent" `Quick test_item_reader_sees_consistent;
          Alcotest.test_case "contention cost" `Quick test_item_contention_cost;
          Alcotest.test_case "write exclusive" `Quick test_item_write_exclusive;
          Alcotest.test_case "exclusive cheaper" `Quick test_item_write_exclusive_cheaper_than_locked;
          Alcotest.test_case "contention scales" `Quick test_item_contention_scales_with_writers;
          QCheck_alcotest.to_alcotest prop_item_roundtrip;
        ] );
    ]
