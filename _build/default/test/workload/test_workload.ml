open Mutps_sim
open Mutps_workload
module Request = Mutps_queue.Request

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 0.02))

(* ------------------------------------------------------------------ *)
(* Zipf                                                                *)
(* ------------------------------------------------------------------ *)

let test_zipf_range () =
  let z = Zipf.create ~n:1000 ~theta:0.99 in
  let r = Rng.create 1 in
  for _ = 1 to 50_000 do
    let rank = Zipf.next z r in
    check_bool "in range" true (rank >= 0 && rank < 1000)
  done

let test_zipf_skew_strength () =
  (* with theta .99 over 1000 ranks, rank 0 should receive > 5% of draws
     and far more than an average rank *)
  let z = Zipf.create ~n:1000 ~theta:0.99 in
  let r = Rng.create 2 in
  let counts = Array.make 1000 0 in
  let n = 200_000 in
  for _ = 1 to n do
    let rank = Zipf.next z r in
    counts.(rank) <- counts.(rank) + 1
  done;
  let f0 = float_of_int counts.(0) /. float_of_int n in
  check_bool (Printf.sprintf "rank0 share %.3f > 0.05" f0) true (f0 > 0.05);
  check_bool "monotone-ish head" true (counts.(0) > counts.(10));
  check_bool "head dominates tail" true (counts.(0) > 20 * counts.(900))

let test_zipf_theta_zero_uniform () =
  let z = Zipf.create ~n:100 ~theta:0.0 in
  let r = Rng.create 3 in
  let counts = Array.make 100 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let rank = Zipf.next z r in
    counts.(rank) <- counts.(rank) + 1
  done;
  Array.iter
    (fun c ->
      check_bool "uniform within 20%" true
        (abs (c - (n / 100)) < n / 100 / 5))
    counts

let test_zipf_ratio_matches_law () =
  (* P(rank 1)/P(rank 0) should be ~ (1/2)^theta *)
  let theta = 0.8 in
  let z = Zipf.create ~n:10_000 ~theta in
  let r = Rng.create 4 in
  let c0 = ref 0 and c1 = ref 0 in
  for _ = 1 to 500_000 do
    match Zipf.next z r with
    | 0 -> incr c0
    | 1 -> incr c1
    | _ -> ()
  done;
  let ratio = float_of_int !c1 /. float_of_int !c0 in
  let expected = Float.pow 0.5 theta in
  check_bool
    (Printf.sprintf "ratio %.3f ~ %.3f" ratio expected)
    true
    (Float.abs (ratio -. expected) < 0.05)

let test_zipf_rejects () =
  Alcotest.check_raises "theta >= 1"
    (Invalid_argument "Zipf.create: theta must be in [0, 1)") (fun () ->
      ignore (Zipf.create ~n:10 ~theta:1.0));
  Alcotest.check_raises "n <= 0"
    (Invalid_argument "Zipf.create: n must be positive") (fun () ->
      ignore (Zipf.create ~n:0 ~theta:0.5))

(* ------------------------------------------------------------------ *)
(* Opgen                                                               *)
(* ------------------------------------------------------------------ *)

let count_kinds gen n =
  let g = ref 0 and p = ref 0 and s = ref 0 and d = ref 0 in
  for _ = 1 to n do
    match (Opgen.next gen).Opgen.kind with
    | Request.Get -> incr g
    | Request.Put -> incr p
    | Request.Scan -> incr s
    | Request.Delete -> incr d
  done;
  (!g, !p, !s, !d)

let test_mix_fractions () =
  let spec = Ycsb.a ~keyspace:1000 ~value_size:64 () in
  let gen = Opgen.make spec ~seed:7 in
  let n = 50_000 in
  let g, p, s, d = count_kinds gen n in
  check_float "gets ~50%" 0.5 (float_of_int g /. float_of_int n);
  check_float "puts ~50%" 0.5 (float_of_int p /. float_of_int n);
  check_int "no scans" 0 s;
  check_int "no deletes" 0 d

let test_ycsb_b_c_e () =
  let n = 50_000 in
  let gen = Opgen.make (Ycsb.b ~keyspace:1000 ~value_size:8 ()) ~seed:1 in
  let g, _, _, _ = count_kinds gen n in
  check_float "B: 95% gets" 0.95 (float_of_int g /. float_of_int n);
  let gen = Opgen.make (Ycsb.c ~keyspace:1000 ~value_size:8 ()) ~seed:1 in
  let g, p, s, d = count_kinds gen n in
  check_int "C: all gets" n g;
  check_int "C: no others" 0 (p + s + d);
  let gen = Opgen.make (Ycsb.e ~keyspace:1000 ~value_size:8 ()) ~seed:1 in
  let _, p, s, _ = count_kinds gen n in
  check_float "E: 95% scans" 0.95 (float_of_int s /. float_of_int n);
  check_float "E: 5% puts" 0.05 (float_of_int p /. float_of_int n)

let test_keys_within_keyspace () =
  let spec = Ycsb.a ~keyspace:500 ~value_size:8 () in
  let gen = Opgen.make spec ~seed:9 in
  for _ = 1 to 10_000 do
    let op = Opgen.next gen in
    check_bool "key in range" true
      (op.Opgen.key >= 0L && op.Opgen.key < 500L)
  done

let test_determinism () =
  let spec = Ycsb.a ~keyspace:1000 ~value_size:64 () in
  let g1 = Opgen.make spec ~seed:42 and g2 = Opgen.make spec ~seed:42 in
  for _ = 1 to 1000 do
    let a = Opgen.next g1 and b = Opgen.next g2 in
    check_bool "same stream" true (a = b)
  done

let test_hottest_keys_are_hot () =
  (* the generator must actually concentrate mass on hottest_keys *)
  let keyspace = 10_000 in
  let spec = Ycsb.c ~keyspace ~value_size:8 () in
  let gen = Opgen.make spec ~seed:11 in
  let hot = Opgen.hottest_keys ~keyspace 10 in
  let hot_set = Array.to_list hot in
  let hits = ref 0 in
  let n = 100_000 in
  for _ = 1 to n do
    if List.mem (Opgen.next gen).Opgen.key hot_set then incr hits
  done;
  let share = float_of_int !hits /. float_of_int n in
  check_bool
    (Printf.sprintf "top-10 of 10k keys gets %.1f%% > 10%%" (100. *. share))
    true (share > 0.10)

let test_scan_lengths () =
  let spec = Ycsb.scan_only ~keyspace:1000 ~scan_len:50 ~value_size:8 () in
  let gen = Opgen.make spec ~seed:13 in
  let total = ref 0 and n = 20_000 in
  for _ = 1 to n do
    let op = Opgen.next gen in
    check_bool "scan kind" true (op.Opgen.kind = Request.Scan);
    check_bool "positive count" true (op.Opgen.scan_count >= 1);
    check_bool "bounded" true (op.Opgen.scan_count < 100);
    total := !total + op.Opgen.scan_count
  done;
  let avg = float_of_int !total /. float_of_int n in
  check_bool (Printf.sprintf "avg %.1f ~ 50" avg) true (Float.abs (avg -. 50.0) < 2.0)

let test_etc_size_bands () =
  (* sizes are a per-key property: check the band fractions across keys *)
  let spec = Etc.spec ~keyspace:100_000 ~get_ratio:0.5 () in
  let small = ref 0 and mid = ref 0 and big = ref 0 in
  let n = 100_000 in
  for k = 0 to n - 1 do
    let size = Opgen.size_for_key spec (Int64.of_int k) in
    if size <= 13 then incr small
    else if size <= 300 then incr mid
    else incr big
  done;
  let f x = float_of_int !x /. float_of_int n in
  check_float "40% small" 0.40 (f small);
  check_float "55% mid" 0.55 (f mid);
  check_float "5% big" 0.05 (f big)

let test_sizes_stable_per_key () =
  let spec = Etc.spec ~keyspace:1000 ~get_ratio:0.0 () in
  let gen = Opgen.make spec ~seed:17 in
  let seen = Hashtbl.create 64 in
  for _ = 1 to 20_000 do
    let op = Opgen.next gen in
    if op.Opgen.kind = Request.Put then begin
      (match Hashtbl.find_opt seen op.Opgen.key with
      | Some size -> check_int "stable size per key" size op.Opgen.size
      | None -> Hashtbl.replace seen op.Opgen.key op.Opgen.size);
      check_int "matches size_for_key"
        (Opgen.size_for_key spec op.Opgen.key)
        op.Opgen.size
    end
  done

let test_twitter_tables () =
  check_float "c12 put ratio" 0.80 (Twitter.put_ratio Twitter.Cluster_12);
  check_int "c19 avg size" 101 (Twitter.avg_value_size Twitter.Cluster_19);
  check_float "c31 alpha" 0.0 (Twitter.zipf_alpha Twitter.Cluster_31);
  (* generated streams must match the published put ratios and mean sizes *)
  List.iter
    (fun cluster ->
      let spec = Twitter.spec ~keyspace:10_000 cluster in
      let gen = Opgen.make spec ~seed:23 in
      let n = 100_000 in
      let puts = ref 0 and size_sum = ref 0 in
      for _ = 1 to n do
        let op = Opgen.next gen in
        if op.Opgen.kind = Request.Put then begin
          incr puts;
          size_sum := !size_sum + op.Opgen.size
        end
      done;
      let put_frac = float_of_int !puts /. float_of_int n in
      Alcotest.(check (float 0.02))
        (Twitter.name cluster ^ " put ratio")
        (Twitter.put_ratio cluster) put_frac;
      let mean = float_of_int !size_sum /. float_of_int !puts in
      let expect = float_of_int (Twitter.avg_value_size cluster) in
      check_bool
        (Printf.sprintf "%s mean size %.0f ~ %.0f" (Twitter.name cluster) mean expect)
        true
        (Float.abs (mean -. expect) /. expect < 0.25))
    Twitter.all

let test_spec_validation () =
  Alcotest.check_raises "mix over 1"
    (Invalid_argument "Opgen: mix fractions exceed 1") (fun () ->
      ignore
        (Opgen.make
           {
             Opgen.name = "bad";
             keyspace = 10;
             key_dist = Opgen.Uniform;
             size_dist = Opgen.Fixed 8;
             mix = { Opgen.get = 0.9; put = 0.9; scan = 0.0 };
             scan_len = 1;
           }
           ~seed:1))

let prop_ops_well_formed =
  QCheck.Test.make ~name:"all generated ops are well formed" ~count:50
    QCheck.(triple (int_range 1 10_000) bool (int_range 1 1024))
    (fun (keyspace, skewed, value_size) ->
      let spec = Ycsb.a ~keyspace ~skewed ~value_size () in
      let gen = Opgen.make spec ~seed:(keyspace + value_size) in
      let ok = ref true in
      for _ = 1 to 500 do
        let op = Opgen.next gen in
        if not (op.Opgen.key >= 0L && op.Opgen.key < Int64.of_int keyspace)
        then ok := false;
        match op.Opgen.kind with
        | Request.Put -> if op.Opgen.size <> value_size then ok := false
        | Request.Get -> if op.Opgen.size <> 0 then ok := false
        | Request.Scan | Request.Delete -> ()
      done;
      !ok)

let () =
  Alcotest.run "workload"
    [
      ( "zipf",
        [
          Alcotest.test_case "range" `Quick test_zipf_range;
          Alcotest.test_case "skew strength" `Quick test_zipf_skew_strength;
          Alcotest.test_case "theta 0 uniform" `Quick test_zipf_theta_zero_uniform;
          Alcotest.test_case "ratio matches law" `Quick test_zipf_ratio_matches_law;
          Alcotest.test_case "rejects" `Quick test_zipf_rejects;
        ] );
      ( "opgen",
        [
          Alcotest.test_case "mix fractions" `Quick test_mix_fractions;
          Alcotest.test_case "ycsb b/c/e" `Quick test_ycsb_b_c_e;
          Alcotest.test_case "keys in keyspace" `Quick test_keys_within_keyspace;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "hottest keys hot" `Quick test_hottest_keys_are_hot;
          Alcotest.test_case "scan lengths" `Quick test_scan_lengths;
          Alcotest.test_case "spec validation" `Quick test_spec_validation;
          QCheck_alcotest.to_alcotest prop_ops_well_formed;
        ] );
      ( "distributions",
        [
          Alcotest.test_case "etc bands" `Quick test_etc_size_bands;
          Alcotest.test_case "sizes stable per key" `Quick test_sizes_stable_per_key;
          Alcotest.test_case "twitter" `Quick test_twitter_tables;
        ] );
    ]
