open Mutps_sim
open Mutps_mem
open Mutps_store
open Mutps_index

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Run a single simulated thread over a fresh small machine; returns the
   total simulated cycles it took. *)
let run_sim f =
  let engine = Engine.create () in
  let hier = Hierarchy.create (Hierarchy.small_geometry ~cores:2) in
  Simthread.spawn engine (fun ctx ->
      f (Env.make ~ctx ~hier ~core:0);
      Simthread.commit ctx);
  Engine.run_all engine;
  Engine.now engine

let mk_world () =
  let layout = Layout.create () in
  let slab = Slab.create layout () in
  (layout, slab)

let value_of_key k = Bytes.of_string (Printf.sprintf "value-%Ld" k)

let mk_item slab k = Item.create slab ~value:(value_of_key k)

let mk_cuckoo ?(capacity = 4096) () =
  let layout, slab = mk_world () in
  (Cuckoo.ops (Cuckoo.create layout ~capacity ~seed:1), slab)

let mk_btree () =
  let layout, slab = mk_world () in
  let tree = Btree.create layout ~seed:1 in
  (Btree.ops tree, slab, tree)

let indexes () =
  let c, cs = mk_cuckoo () in
  let b, bs, _ = mk_btree () in
  [ (c, cs); (b, bs) ]

(* ------------------------------------------------------------------ *)
(* Shared behaviour over both indexes                                  *)
(* ------------------------------------------------------------------ *)

let test_insert_lookup () =
  List.iter
    (fun ((idx : Index_intf.t), slab) ->
      ignore
        (run_sim (fun env ->
             for k = 0 to 199 do
               idx.insert env (Int64.of_int k) (mk_item slab (Int64.of_int k))
             done;
             for k = 0 to 199 do
               match idx.lookup env (Int64.of_int k) with
               | Some item ->
                 Alcotest.(check string)
                   (idx.name ^ " value")
                   (Printf.sprintf "value-%d" k)
                   (Bytes.to_string (Item.peek item))
               | None -> Alcotest.failf "%s: key %d missing" idx.name k
             done;
             check_int (idx.name ^ " count") 200 (idx.count ())));
      ())
    (indexes ())

let test_lookup_missing () =
  List.iter
    (fun ((idx : Index_intf.t), slab) ->
      ignore
        (run_sim (fun env ->
             idx.insert env 5L (mk_item slab 5L);
             check_bool (idx.name ^ " miss") true (idx.lookup env 6L = None);
             check_bool (idx.name ^ " hit") true (idx.lookup env 5L <> None))))
    (indexes ())

let test_insert_replaces () =
  List.iter
    (fun ((idx : Index_intf.t), slab) ->
      ignore
        (run_sim (fun env ->
             idx.insert env 7L (mk_item slab 7L);
             let fresh = Item.create slab ~value:(Bytes.of_string "new") in
             idx.insert env 7L fresh;
             check_int (idx.name ^ " count stable") 1 (idx.count ());
             match idx.lookup env 7L with
             | Some item ->
               Alcotest.(check string)
                 (idx.name ^ " replaced") "new"
                 (Bytes.to_string (Item.peek item))
             | None -> Alcotest.fail "missing after replace")))
    (indexes ())

let test_remove () =
  List.iter
    (fun ((idx : Index_intf.t), slab) ->
      ignore
        (run_sim (fun env ->
             idx.insert env 1L (mk_item slab 1L);
             idx.insert env 2L (mk_item slab 2L);
             check_bool (idx.name ^ " removes") true (idx.remove env 1L);
             check_bool (idx.name ^ " gone") true (idx.lookup env 1L = None);
             check_bool (idx.name ^ " other stays") true (idx.lookup env 2L <> None);
             check_bool (idx.name ^ " remove missing") false (idx.remove env 1L);
             check_int (idx.name ^ " count") 1 (idx.count ()))))
    (indexes ())

let test_insert_silent_matches () =
  List.iter
    (fun ((idx : Index_intf.t), slab) ->
      for k = 0 to 99 do
        idx.insert_silent (Int64.of_int k) (mk_item slab (Int64.of_int k))
      done;
      check_int (idx.name ^ " silent count") 100 (idx.count ());
      ignore
        (run_sim (fun env ->
             for k = 0 to 99 do
               check_bool
                 (idx.name ^ " silent visible")
                 true
                 (idx.lookup env (Int64.of_int k) <> None)
             done)))
    (indexes ())

let test_batch_lookup_matches_pointwise () =
  List.iter
    (fun ((idx : Index_intf.t), slab) ->
      let keys = Array.init 64 (fun i -> Int64.of_int (i * 3)) in
      Array.iter (fun k -> idx.insert_silent k (mk_item slab k)) keys;
      let queries =
        Array.init 100 (fun i -> Int64.of_int i) (* mix of hits and misses *)
      in
      ignore
        (run_sim (fun env ->
             let batched = idx.batch_lookup env queries in
             Array.iteri
               (fun i q ->
                 let point = idx.lookup env q in
                 check_bool
                   (Printf.sprintf "%s batch[%d] agrees" idx.name i)
                   true
                   (Option.is_some batched.(i) = Option.is_some point))
               queries)))
    (indexes ())

let test_batch_lookup_cheaper_than_serial () =
  (* The point of batched indexing: overlapped misses.  Compare simulated
     cycles of batch vs pointwise lookups over a cold working set. *)
  List.iter
    (fun mk ->
      let (idx : Index_intf.t), slab = mk () in
      let n = 2048 in
      for k = 0 to n - 1 do
        idx.insert_silent (Int64.of_int k) (mk_item slab (Int64.of_int k))
      done;
      let probe = Array.init 32 (fun i -> Int64.of_int (i * 61 mod n)) in
      let serial =
        run_sim (fun env ->
            Array.iter (fun k -> ignore (idx.lookup env k)) probe)
      in
      let (idx2 : Index_intf.t), slab2 = mk () in
      for k = 0 to n - 1 do
        idx2.insert_silent (Int64.of_int k) (mk_item slab2 (Int64.of_int k))
      done;
      let batched = run_sim (fun env -> ignore (idx2.batch_lookup env probe)) in
      check_bool
        (Printf.sprintf "%s batch (%d) < serial (%d)" idx.name batched serial)
        true (batched < serial))
    [
      (fun () -> mk_cuckoo ~capacity:4096 ());
      (fun () ->
        let ops, slab, _ = mk_btree () in
        (ops, slab));
    ]


let test_batch_lookup_with_duplicates () =
  List.iter
    (fun ((idx : Index_intf.t), slab) ->
      idx.insert_silent 5L (mk_item slab 5L);
      ignore
        (run_sim (fun env ->
             let r = idx.batch_lookup env [| 5L; 5L; 6L; 5L |] in
             check_bool (idx.name ^ " dup hits") true
               (Option.is_some r.(0) && Option.is_some r.(1)
               && Option.is_some r.(3));
             check_bool (idx.name ^ " dup miss") true (r.(2) = None))))
    (indexes ())

let test_batch_lookup_empty () =
  List.iter
    (fun ((idx : Index_intf.t), _) ->
      ignore
        (run_sim (fun env ->
             check_int (idx.name ^ " empty batch") 0
               (Array.length (idx.batch_lookup env [||])))))
    (indexes ())

let test_btree_range_full_traversal () =
  (* a range spanning every leaf returns all entries in order *)
  let layout, slab = mk_world () in
  let tree = Btree.create layout ~seed:5 in
  let idx = Btree.ops tree in
  let n = 300 in
  for k = 0 to n - 1 do
    idx.insert_silent (Int64.of_int k) (mk_item slab (Int64.of_int k))
  done;
  ignore
    (run_sim (fun env ->
         let r = idx.range env ~lo:0L ~n in
         check_int "all entries" n (List.length r);
         let keys = List.map fst r in
         check_bool "identity order" true
           (keys = List.init n Int64.of_int)))

(* ------------------------------------------------------------------ *)
(* Cuckoo specifics                                                    *)
(* ------------------------------------------------------------------ *)

let test_cuckoo_high_load_factor () =
  let layout, slab = mk_world () in
  let t = Cuckoo.create layout ~capacity:4096 ~seed:3 in
  let idx = Cuckoo.ops t in
  (* fill to the nominal capacity: displacement must cope *)
  for k = 0 to 4095 do
    idx.insert_silent (Int64.of_int k) (mk_item slab (Int64.of_int k))
  done;
  check_int "all inserted" 4096 (idx.count ());
  ignore
    (run_sim (fun env ->
         for k = 0 to 4095 do
           if idx.lookup env (Int64.of_int k) = None then
             Alcotest.failf "key %d lost after displacements" k
         done))

let test_cuckoo_lookup_cost_shallow () =
  (* a hash lookup touches at most 2 buckets: simulated cost of a hot
     lookup must be tiny compared to a tree descent *)
  let (c : Index_intf.t), cs = mk_cuckoo () in
  let (b : Index_intf.t), bs, _ = mk_btree () in
  let n = 4000 in
  for k = 0 to n - 1 do
    c.insert_silent (Int64.of_int k) (mk_item cs (Int64.of_int k));
    b.insert_silent (Int64.of_int k) (mk_item bs (Int64.of_int k))
  done;
  let cost (idx : Index_intf.t) =
    run_sim (fun env ->
        for k = 0 to 499 do
          ignore (idx.lookup env (Int64.of_int (k * 7 mod n)))
        done)
  in
  let hash_cost = cost c and tree_cost = cost b in
  check_bool
    (Printf.sprintf "hash (%d) cheaper than tree (%d)" hash_cost tree_cost)
    true
    (hash_cost < tree_cost)

let test_cuckoo_range_rejected () =
  let (c : Index_intf.t), _ = mk_cuckoo () in
  ignore
    (run_sim (fun env ->
         Alcotest.check_raises "no range on hash"
           (Invalid_argument "Cuckoo: range queries require a tree index")
           (fun () -> ignore (c.range env ~lo:0L ~n:10))))

(* ------------------------------------------------------------------ *)
(* B+tree specifics                                                    *)
(* ------------------------------------------------------------------ *)

let test_btree_invariants_random () =
  let layout, slab = mk_world () in
  let tree = Btree.create layout ~seed:5 in
  let idx = Btree.ops tree in
  let r = Rng.create 99 in
  for _ = 0 to 4999 do
    let k = Int64.of_int (Rng.int r 100_000) in
    idx.insert_silent k (mk_item slab k)
  done;
  Btree.check_invariants tree;
  check_bool "depth grew" true (Btree.depth tree > 1)

let test_btree_range_sorted () =
  let layout, slab = mk_world () in
  let tree = Btree.create layout ~seed:5 in
  let idx = Btree.ops tree in
  (* even keys 0..1998 *)
  for k = 0 to 999 do
    idx.insert_silent (Int64.of_int (2 * k)) (mk_item slab (Int64.of_int (2 * k)))
  done;
  ignore
    (run_sim (fun env ->
         let result = idx.range env ~lo:101L ~n:50 in
         check_int "range size" 50 (List.length result);
         let keys = List.map fst result in
         (match keys with
         | first :: _ -> Alcotest.(check int64) "starts at 102" 102L first
         | [] -> Alcotest.fail "empty range");
         let rec sorted = function
           | a :: (b :: _ as rest) ->
             check_bool "ascending" true (Int64.compare a b < 0);
             sorted rest
           | _ -> ()
         in
         sorted keys))

let test_btree_range_at_end () =
  let layout, slab = mk_world () in
  let tree = Btree.create layout ~seed:5 in
  let idx = Btree.ops tree in
  for k = 0 to 9 do
    idx.insert_silent (Int64.of_int k) (mk_item slab (Int64.of_int k))
  done;
  ignore
    (run_sim (fun env ->
         check_int "clipped at end" 3 (List.length (idx.range env ~lo:7L ~n:50));
         check_int "past end empty" 0 (List.length (idx.range env ~lo:100L ~n:5))))

let test_btree_sequential_and_reverse () =
  List.iter
    (fun order ->
      let layout, slab = mk_world () in
      let tree = Btree.create layout ~seed:5 in
      let idx = Btree.ops tree in
      List.iter
        (fun k -> idx.insert_silent (Int64.of_int k) (mk_item slab (Int64.of_int k)))
        order;
      Btree.check_invariants tree;
      check_int "count" (List.length order) (idx.count ()))
    [
      List.init 500 Fun.id;
      List.rev (List.init 500 Fun.id);
    ]

let test_btree_remove_keeps_invariants () =
  let layout, slab = mk_world () in
  let tree = Btree.create layout ~seed:5 in
  let idx = Btree.ops tree in
  for k = 0 to 499 do
    idx.insert_silent (Int64.of_int k) (mk_item slab (Int64.of_int k))
  done;
  ignore
    (run_sim (fun env ->
         for k = 0 to 499 do
           if k mod 3 = 0 then
             check_bool "removed" true (idx.remove env (Int64.of_int k))
         done));
  Btree.check_invariants tree;
  ignore
    (run_sim (fun env ->
         check_bool "gone" true (idx.lookup env 3L = None);
         check_bool "kept" true (idx.lookup env 4L <> None)))

(* ------------------------------------------------------------------ *)
(* Model-based property test                                           *)
(* ------------------------------------------------------------------ *)

type op = Insert of int | Remove of int | Lookup of int

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (5, map (fun k -> Insert k) (int_bound 100));
        (2, map (fun k -> Remove k) (int_bound 100));
        (3, map (fun k -> Lookup k) (int_bound 100));
      ])

let op_print = function
  | Insert k -> Printf.sprintf "Insert %d" k
  | Remove k -> Printf.sprintf "Remove %d" k
  | Lookup k -> Printf.sprintf "Lookup %d" k

let prop_index_matches_model mk name =
  QCheck.Test.make
    ~name:(name ^ " agrees with a model map")
    ~count:60
    (QCheck.make ~print:QCheck.Print.(list op_print) (QCheck.Gen.list_size (QCheck.Gen.int_range 1 200) op_gen))
    (fun ops ->
      let (idx : Index_intf.t), slab = mk () in
      let model = Hashtbl.create 64 in
      let ok = ref true in
      ignore
        (run_sim (fun env ->
             List.iter
               (fun op ->
                 match op with
                 | Insert k ->
                   let key = Int64.of_int k in
                   idx.insert env key (mk_item slab key);
                   Hashtbl.replace model k ()
                 | Remove k ->
                   let was = idx.remove env (Int64.of_int k) in
                   if was <> Hashtbl.mem model k then ok := false;
                   Hashtbl.remove model k
                 | Lookup k ->
                   let found = idx.lookup env (Int64.of_int k) <> None in
                   if found <> Hashtbl.mem model k then ok := false)
               ops));
      !ok && idx.count () = Hashtbl.length model)

let prop_cuckoo_model =
  prop_index_matches_model (fun () -> mk_cuckoo ~capacity:1024 ()) "cuckoo"

let prop_btree_model =
  prop_index_matches_model
    (fun () ->
      let ops, slab, _ = mk_btree () in
      (ops, slab))
    "btree"

let prop_btree_invariants_hold =
  QCheck.Test.make ~name:"btree invariants after random workload" ~count:40
    QCheck.(list_of_size (Gen.int_range 1 300) (int_bound 1000))
    (fun keys ->
      let layout, slab = mk_world () in
      let tree = Btree.create layout ~seed:5 in
      let idx = Btree.ops tree in
      List.iter
        (fun k -> idx.insert_silent (Int64.of_int k) (mk_item slab (Int64.of_int k)))
        keys;
      Btree.check_invariants tree;
      true)

let () =
  Alcotest.run "index"
    [
      ( "common",
        [
          Alcotest.test_case "insert/lookup" `Quick test_insert_lookup;
          Alcotest.test_case "lookup missing" `Quick test_lookup_missing;
          Alcotest.test_case "insert replaces" `Quick test_insert_replaces;
          Alcotest.test_case "remove" `Quick test_remove;
          Alcotest.test_case "insert_silent" `Quick test_insert_silent_matches;
          Alcotest.test_case "batch matches pointwise" `Quick
            test_batch_lookup_matches_pointwise;
          Alcotest.test_case "batch cheaper" `Quick
            test_batch_lookup_cheaper_than_serial;
          Alcotest.test_case "batch duplicates" `Quick test_batch_lookup_with_duplicates;
          Alcotest.test_case "batch empty" `Quick test_batch_lookup_empty;
        ] );
      ( "cuckoo",
        [
          Alcotest.test_case "high load factor" `Quick test_cuckoo_high_load_factor;
          Alcotest.test_case "shallow lookups" `Quick test_cuckoo_lookup_cost_shallow;
          Alcotest.test_case "range rejected" `Quick test_cuckoo_range_rejected;
          QCheck_alcotest.to_alcotest prop_cuckoo_model;
        ] );
      ( "btree",
        [
          Alcotest.test_case "invariants random" `Quick test_btree_invariants_random;
          Alcotest.test_case "range sorted" `Quick test_btree_range_sorted;
          Alcotest.test_case "range at end" `Quick test_btree_range_at_end;
          Alcotest.test_case "seq and reverse" `Quick test_btree_sequential_and_reverse;
          Alcotest.test_case "remove invariants" `Quick test_btree_remove_keeps_invariants;
          Alcotest.test_case "range full traversal" `Quick test_btree_range_full_traversal;
          QCheck_alcotest.to_alcotest prop_btree_model;
          QCheck_alcotest.to_alcotest prop_btree_invariants_hold;
        ] );
    ]
