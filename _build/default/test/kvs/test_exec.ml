(* Operation-execution level tests: Exec helpers, the RTC worker loop,
   CR-MR backpressure, deletes, and transport edge cases driven through
   real (small) systems. *)

open Mutps_sim
open Mutps_kvs
module Client = Mutps_net.Client
module Transport = Mutps_net.Transport
module Message = Mutps_net.Message
module Request = Mutps_queue.Request
module Opgen = Mutps_workload.Opgen
module Ycsb = Mutps_workload.Ycsb
module Item = Mutps_store.Item
module Index = Mutps_index.Index_intf
module Env = Mutps_mem.Env

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let keyspace = 2_000
let value_size = 64

let small_config ?(cores = 4) ?(index = Config.Tree) () =
  let c = Config.default ~cores ~index ~capacity:keyspace () in
  { c with Config.hot_k = 128; refresh_cycles = 2_000_000; sample_every = 4 }

(* ------------------------------------------------------------------ *)
(* Exec helpers through a raw transport                                *)
(* ------------------------------------------------------------------ *)

(* A little fixture: backend + reconfigurable RPC with one worker, and a
   hand-rolled message injector. *)
type fixture = {
  backend : Backend.t;
  tr : Transport.t;
  mutable next_id : int;
  responses : (int, int * bytes option) Hashtbl.t; (* id -> bytes, value *)
}

let mk_fixture ?(index = Config.Tree) () =
  let backend = Backend.create (small_config ~index ()) in
  Backend.populate backend ~keyspace ~value_size;
  let rpc =
    Mutps_net.Reconf_rpc.create ~engine:backend.Backend.engine
      ~hier:backend.Backend.hier ~layout:backend.Backend.layout
      ~link:backend.Backend.link ~max_workers:1 ~workers:1 ()
  in
  let tr = Mutps_net.Reconf_rpc.transport rpc in
  let f = { backend; tr; next_id = 0; responses = Hashtbl.create 16 } in
  tr.Transport.set_on_response (fun msg value ->
      Hashtbl.replace f.responses msg.Message.id
        ((match value with Some v -> Bytes.length v | None -> 0), value));
  f

let inject f req value =
  let id = f.next_id in
  f.next_id <- id + 1;
  f.tr.Transport.deliver
    { Message.id; client = 0; sent_at = 0; target = -1; req; value };
  id

let drain f ~ops =
  Simthread.spawn f.backend.Backend.engine (fun ctx ->
      let env = Env.make ~ctx ~hier:f.backend.Backend.hier ~core:0 in
      for _ = 1 to ops do
        match f.tr.Transport.poll env ~worker:0 with
        | Some (seq, msg) -> (
          let req = msg.Message.req in
          let key = req.Request.key in
          let item =
            if req.Request.kind = Request.Scan then None
            else f.backend.Backend.index.Index.lookup env key
          in
          match req.Request.kind with
          | Request.Get -> Exec.do_get env f.tr ~worker:0 ~seq item
          | Request.Put ->
            Exec.do_put env f.tr ~lock:Exec.Locked
              ~index:f.backend.Backend.index ~slab:f.backend.Backend.slab
              ~worker:0 ~seq msg item
          | Request.Delete ->
            Exec.do_delete env f.tr ~index:f.backend.Backend.index ~worker:0
              ~seq key
          | Request.Scan ->
            Exec.do_scan env f.tr ~index:f.backend.Backend.index ~worker:0
              ~seq ~key ~count:req.Request.scan_count ())
        | None -> Simthread.delay ctx 100
      done);
  Engine.run_all f.backend.Backend.engine

let test_exec_get_hit_and_miss () =
  let f = mk_fixture () in
  let hit = inject f (Request.get ~key:5L ~buf:0) None in
  let miss = inject f (Request.get ~key:999_999L ~buf:0) None in
  drain f ~ops:2;
  (match Hashtbl.find_opt f.responses hit with
  | Some (_, Some v) ->
    check_bool "hit returns stored payload" true
      (Bytes.equal v (Client.payload ~key:5L ~size:value_size))
  | _ -> Alcotest.fail "no value for present key");
  (match Hashtbl.find_opt f.responses miss with
  | Some (_, None) -> ()
  | _ -> Alcotest.fail "missing key must answer with no value")

let test_exec_put_insert_and_update () =
  let f = mk_fixture () in
  (* update an existing key, then insert a brand new one *)
  let v1 = Bytes.make 32 'u' in
  let id1 =
    inject f (Request.put ~key:7L ~size:32 ~buf:0) (Some v1)
  in
  let fresh_key = Int64.of_int (keyspace + 50) in
  let v2 = Bytes.make 16 'n' in
  let id2 = inject f (Request.put ~key:fresh_key ~size:16 ~buf:0) (Some v2) in
  let g1 = inject f (Request.get ~key:7L ~buf:0) None in
  let g2 = inject f (Request.get ~key:fresh_key ~buf:0) None in
  drain f ~ops:4;
  check_bool "update acked" true (Hashtbl.mem f.responses id1);
  check_bool "insert acked" true (Hashtbl.mem f.responses id2);
  (match Hashtbl.find_opt f.responses g1 with
  | Some (_, Some v) -> check_bool "updated value" true (Bytes.equal v v1)
  | _ -> Alcotest.fail "updated key unreadable");
  (match Hashtbl.find_opt f.responses g2 with
  | Some (_, Some v) -> check_bool "inserted value" true (Bytes.equal v v2)
  | _ -> Alcotest.fail "inserted key unreadable")

let test_exec_delete_then_get () =
  let f = mk_fixture () in
  let d = inject f (Request.delete ~key:3L ~buf:0) None in
  let g = inject f (Request.get ~key:3L ~buf:0) None in
  drain f ~ops:2;
  check_bool "delete acked" true (Hashtbl.mem f.responses d);
  (match Hashtbl.find_opt f.responses g with
  | Some (_, None) -> ()
  | _ -> Alcotest.fail "deleted key still served")

let test_exec_scan_bytes_scale_with_count () =
  let f = mk_fixture () in
  let s1 = inject f (Request.scan ~key:0L ~count:5 ~buf:0) None in
  let s2 = inject f (Request.scan ~key:0L ~count:50 ~buf:0) None in
  drain f ~ops:2;
  match (Hashtbl.find_opt f.responses s1, Hashtbl.find_opt f.responses s2) with
  | Some _, Some _ ->
    (* responses are size-only for scans; both must have been answered *)
    ()
  | _ -> Alcotest.fail "scan unanswered"

let test_exec_scan_on_hash_rejected () =
  let f = mk_fixture ~index:Config.Hash () in
  let s = inject f (Request.scan ~key:0L ~count:5 ~buf:0) None in
  (* the hash index raises; the drain thread must propagate it *)
  (try
     drain f ~ops:1;
     ignore s;
     Alcotest.fail "expected range rejection"
   with Invalid_argument _ -> ())

(* ------------------------------------------------------------------ *)
(* RTC loop behaviour through BaseKV                                   *)
(* ------------------------------------------------------------------ *)

let run_basekv ~spec ~horizon ~clients:n =
  let kv = Basekv.create (small_config ()) in
  Backend.populate (Basekv.backend kv) ~keyspace ~value_size;
  Basekv.start kv;
  let b = Basekv.backend kv in
  let clients =
    Client.start ~engine:b.Backend.engine ~link:b.Backend.link
      ~transport:(Basekv.transport kv)
      { Client.clients = n; window = 2; spec; seed = 3;
        dispatch = Client.uniform_dispatch }
  in
  Engine.run b.Backend.engine ~until:horizon;
  (kv, clients)

let test_rtc_mixed_batch_with_deletes () =
  (* a mix including deletes: remainder of the mix is deletes *)
  let spec =
    {
      Opgen.name = "mixed";
      keyspace;
      key_dist = Opgen.Uniform;
      size_dist = Opgen.Fixed value_size;
      mix = { Opgen.get = 0.5; put = 0.3; scan = 0.0 };
      scan_len = 1;
    }
  in
  let kv, clients = run_basekv ~spec ~horizon:15_000_000 ~clients:4 in
  check_bool "mixed workload progresses" true (Client.completed clients > 300);
  check_bool "ops counted" true (Basekv.ops_processed kv > 300)

let test_rtc_batches_amortize () =
  (* ops processed per batch should exceed 1 under load *)
  let spec = Ycsb.c ~keyspace ~value_size () in
  let kv, _ = run_basekv ~spec ~horizon:15_000_000 ~clients:16 in
  check_bool "multiple ops per batch" true
    (Basekv.ops_processed kv > 0)

(* ------------------------------------------------------------------ *)
(* μTPS backpressure and small-ring survival                           *)
(* ------------------------------------------------------------------ *)

let test_mutps_tiny_rings_no_crash () =
  (* tiny CR-MR rings force constant flush failures: the system must stay
     correct (backpressure) rather than crash or lose requests *)
  let config = { (small_config ()) with Config.crmr_slots = 1; batch = 2 } in
  let kv = Mutps.create ~ncr:1 config in
  Backend.populate (Mutps.backend kv) ~keyspace ~value_size;
  Mutps.start kv;
  let b = Mutps.backend kv in
  let spec = Ycsb.get_only_uniform ~keyspace ~value_size () in
  let clients =
    Client.start ~engine:b.Backend.engine ~link:b.Backend.link
      ~transport:(Mutps.transport kv)
      { Client.clients = 16; window = 4; spec; seed = 3;
        dispatch = Client.uniform_dispatch }
  in
  Engine.run b.Backend.engine ~until:30_000_000;
  let done_ = Client.completed clients in
  check_bool
    (Printf.sprintf "progress under tiny rings (%d)" done_)
    true (done_ > 200);
  check_bool "closed loop conserved" true (Client.sent clients - done_ <= 64)

let test_mutps_batch_one () =
  (* batch size 1 is the degenerate-but-legal configuration of Figure 12 *)
  let config = { (small_config ()) with Config.batch = 1 } in
  let kv = Mutps.create config in
  Backend.populate (Mutps.backend kv) ~keyspace ~value_size;
  Mutps.start kv;
  let b = Mutps.backend kv in
  let spec = Ycsb.a ~keyspace ~value_size () in
  let clients =
    Client.start ~engine:b.Backend.engine ~link:b.Backend.link
      ~transport:(Mutps.transport kv)
      { Client.clients = 8; window = 2; spec; seed = 3;
        dispatch = Client.uniform_dispatch }
  in
  Engine.run b.Backend.engine ~until:20_000_000;
  check_bool "batch=1 works" true (Client.completed clients > 300)

let test_mutps_delete_via_layers () =
  (* deletes forward through the CR-MR queue and update the index *)
  let kv = Mutps.create (small_config ()) in
  Backend.populate (Mutps.backend kv) ~keyspace ~value_size;
  Mutps.start kv;
  let b = Mutps.backend kv in
  let spec =
    {
      Opgen.name = "del-mix";
      keyspace;
      key_dist = Opgen.Uniform;
      size_dist = Opgen.Fixed value_size;
      mix = { Opgen.get = 0.4; put = 0.4; scan = 0.0 };
      scan_len = 1;
    }
  in
  let clients =
    Client.start ~engine:b.Backend.engine ~link:b.Backend.link
      ~transport:(Mutps.transport kv)
      { Client.clients = 8; window = 2; spec; seed = 3;
        dispatch = Client.uniform_dispatch }
  in
  Engine.run b.Backend.engine ~until:20_000_000;
  check_bool "delete mix progresses" true (Client.completed clients > 300);
  (* some keys must actually have disappeared *)
  check_bool "index shrank" true
    (b.Backend.index.Index.count () < keyspace)

(* ------------------------------------------------------------------ *)
(* eRPC-KV share-nothing invariants                                    *)
(* ------------------------------------------------------------------ *)

let test_erpckv_exclusive_no_contention () =
  (* every item is written only by its shard owner: no item may ever
     record a contended acquire *)
  let kv = Erpckv.create (small_config ()) in
  Backend.populate (Erpckv.backend kv) ~keyspace ~value_size;
  Erpckv.start kv;
  let b = Erpckv.backend kv in
  let spec = Ycsb.put_only ~keyspace ~value_size () in
  let clients =
    Client.start ~engine:b.Backend.engine ~link:b.Backend.link
      ~transport:(Erpckv.transport kv)
      { Client.clients = 16; window = 2; spec; seed = 3;
        dispatch = Erpckv.dispatch kv }
  in
  Engine.run b.Backend.engine ~until:20_000_000;
  check_bool "puts progress" true (Client.completed clients > 300);
  (* sample some hot items and check they never saw lock contention *)
  let e2 = Engine.create () in
  Simthread.spawn e2 (fun ctx ->
      let env = Env.make ~ctx ~hier:b.Backend.hier ~core:0 in
      Array.iter
        (fun key ->
          match b.Backend.index.Index.lookup env key with
          | Some item ->
            check_int "no contended acquires in SN" 0
              (Item.contended_acquires item)
          | None -> ())
        (Opgen.hottest_keys ~keyspace 20));
  Engine.run_all e2


(* ------------------------------------------------------------------ *)
(* DLB hardware-queue ablation (the paper's §6 future work)            *)
(* ------------------------------------------------------------------ *)

let mutps_throughput ~dlb =
  let config = { (small_config ~cores:6 ()) with Config.dlb; hot_k = 1 } in
  let kv = Mutps.create ~ncr:2 config in
  Backend.populate (Mutps.backend kv) ~keyspace ~value_size;
  Mutps.start kv;
  Mutps.set_hot_target kv 0;
  let b = Mutps.backend kv in
  let spec = Ycsb.get_only_uniform ~keyspace ~value_size () in
  let clients =
    Client.start ~engine:b.Backend.engine ~link:b.Backend.link
      ~transport:(Mutps.transport kv)
      { Client.clients = 24; window = 4; spec; seed = 3;
        dispatch = Client.uniform_dispatch }
  in
  Engine.run b.Backend.engine ~until:25_000_000;
  Client.completed clients

let test_dlb_correct_and_not_slower () =
  let sw = mutps_throughput ~dlb:false in
  let hw = mutps_throughput ~dlb:true in
  check_bool "software queue progresses" true (sw > 300);
  check_bool "hardware queue progresses" true (hw > 300);
  (* the offloaded queue must not lose to the software rings by much —
     the paper expects DLB to help *)
  check_bool
    (Printf.sprintf "dlb (%d) within range of software (%d)" hw sw)
    true
    (float_of_int hw >= 0.9 *. float_of_int sw)

let () =
  Alcotest.run "exec"
    [
      ( "exec",
        [
          Alcotest.test_case "get hit/miss" `Quick test_exec_get_hit_and_miss;
          Alcotest.test_case "put insert/update" `Quick test_exec_put_insert_and_update;
          Alcotest.test_case "delete then get" `Quick test_exec_delete_then_get;
          Alcotest.test_case "scan sizes" `Quick test_exec_scan_bytes_scale_with_count;
          Alcotest.test_case "scan on hash rejected" `Quick test_exec_scan_on_hash_rejected;
        ] );
      ( "rtc",
        [
          Alcotest.test_case "mixed batch with deletes" `Quick test_rtc_mixed_batch_with_deletes;
          Alcotest.test_case "batches amortize" `Quick test_rtc_batches_amortize;
        ] );
      ( "backpressure",
        [
          Alcotest.test_case "tiny rings no crash" `Quick test_mutps_tiny_rings_no_crash;
          Alcotest.test_case "batch one" `Quick test_mutps_batch_one;
          Alcotest.test_case "delete via layers" `Quick test_mutps_delete_via_layers;
        ] );
      ( "dlb",
        [
          Alcotest.test_case "correct and competitive" `Quick test_dlb_correct_and_not_slower;
        ] );
      ( "erpckv",
        [
          Alcotest.test_case "exclusive no contention" `Quick test_erpckv_exclusive_no_contention;
        ] );
    ]
