test/kvs/test_exec.mli:
