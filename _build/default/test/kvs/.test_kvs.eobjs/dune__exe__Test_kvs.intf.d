test/kvs/test_kvs.mli:
