test/kvs/test_kvs.ml: Alcotest Autotuner Backend Basekv Bytes Config Engine Erpckv List Mutps Mutps_kvs Mutps_mem Mutps_net Mutps_queue Mutps_sim Mutps_workload Option Passive Printf Rng
