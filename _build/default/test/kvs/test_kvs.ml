open Mutps_sim
open Mutps_kvs
module Client = Mutps_net.Client
module Request = Mutps_queue.Request
module Opgen = Mutps_workload.Opgen
module Ycsb = Mutps_workload.Ycsb

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let keyspace = 5_000
let value_size = 64

let small_config ?(cores = 8) ?(index = Config.Tree) () =
  let c = Config.default ~cores ~index ~capacity:keyspace () in
  { c with Config.hot_k = 256; refresh_cycles = 2_000_000; sample_every = 4 }

(* Attach a verifying hook: every get must return the deterministic payload
   for its key (populate and all puts write Client.payload). *)
let verify_values clients ~failures =
  Client.on_completion clients (fun op value ->
      match (op.Opgen.kind, value) with
      | Request.Get, Some v ->
        if not (Bytes.equal v (Client.payload ~key:op.Opgen.key ~size:value_size))
        then incr failures
      | Request.Get, None -> incr failures
      | _ -> ())

type sys = {
  engine : Engine.t;
  transport : Mutps_net.Transport.t;
  link : Mutps_net.Link.t;
  dispatch : Opgen.op -> int;
  mutps : Mutps.t option;
}

let build_basekv config =
  let kv = Basekv.create config in
  Backend.populate (Basekv.backend kv) ~keyspace ~value_size;
  Basekv.start kv;
  let b = Basekv.backend kv in
  {
    engine = b.Backend.engine;
    transport = Basekv.transport kv;
    link = b.Backend.link;
    dispatch = Client.uniform_dispatch;
    mutps = None;
  }

let build_erpckv config =
  let kv = Erpckv.create config in
  Backend.populate (Erpckv.backend kv) ~keyspace ~value_size;
  Erpckv.start kv;
  let b = Erpckv.backend kv in
  {
    engine = b.Backend.engine;
    transport = Erpckv.transport kv;
    link = b.Backend.link;
    dispatch = Erpckv.dispatch kv;
    mutps = None;
  }

let build_mutps ?ncr config =
  let kv = Mutps.create ?ncr config in
  Backend.populate (Mutps.backend kv) ~keyspace ~value_size;
  Mutps.start kv;
  let b = Mutps.backend kv in
  {
    engine = b.Backend.engine;
    transport = Mutps.transport kv;
    link = b.Backend.link;
    dispatch = Client.uniform_dispatch;
    mutps = Some kv;
  }

let run_system sys ~spec ~horizon ~clients:n =
  let failures = ref 0 in
  let clients =
    Client.start ~engine:sys.engine ~link:sys.link ~transport:sys.transport
      { Client.clients = n; window = 2; spec; seed = 9; dispatch = sys.dispatch }
  in
  verify_values clients ~failures;
  Engine.run sys.engine ~until:horizon;
  (clients, !failures)

let horizon = 20_000_000 (* 8 ms of simulated time *)

(* ------------------------------------------------------------------ *)
(* End-to-end correctness per system                                   *)
(* ------------------------------------------------------------------ *)

let test_end_to_end name build =
  let spec = Ycsb.a ~keyspace ~value_size () in
  let sys = build (small_config ()) in
  let clients, failures = run_system sys ~spec ~horizon ~clients:8 in
  let done_ = Client.completed clients in
  check_bool (Printf.sprintf "%s: completed %d > 500" name done_) true (done_ > 500);
  check_int (name ^ ": value corruption") 0 failures;
  check_bool (name ^ ": bounded outstanding") true
    (Client.sent clients - done_ <= 16)

let test_basekv_end_to_end () = test_end_to_end "basekv" build_basekv
let test_erpckv_end_to_end () = test_end_to_end "erpckv" build_erpckv
let test_mutps_end_to_end () = test_end_to_end "mutps" (build_mutps ?ncr:None)

let test_mutps_hash_end_to_end () =
  let spec = Ycsb.a ~keyspace ~value_size () in
  let sys = build_mutps (small_config ~index:Config.Hash ()) in
  let clients, failures = run_system sys ~spec ~horizon ~clients:8 in
  check_bool "hash variant progresses" true (Client.completed clients > 500);
  check_int "hash variant corruption" 0 failures

(* ------------------------------------------------------------------ *)
(* μTPS-specific behaviour                                             *)
(* ------------------------------------------------------------------ *)

let test_mutps_hot_path_engages () =
  (* under heavy skew the hot cache must start absorbing requests *)
  let spec =
    { (Ycsb.c ~keyspace ~value_size ()) with Opgen.key_dist = Opgen.Zipfian 0.99 }
  in
  let sys = build_mutps (small_config ()) in
  let kv = Option.get sys.mutps in
  let clients, failures = run_system sys ~spec ~horizon:40_000_000 ~clients:8 in
  check_bool "progress" true (Client.completed clients > 1000);
  check_int "no corruption" 0 failures;
  check_bool "hot set built" true (Mutps.hot_size kv > 0);
  check_bool
    (Printf.sprintf "cr hits %d > 0" (Mutps.cr_hits kv))
    true (Mutps.cr_hits kv > 0);
  check_bool "forwarding happened too" true (Mutps.forwarded kv > 0)

let test_mutps_uniform_mostly_forwards () =
  let spec = Ycsb.get_only_uniform ~keyspace ~value_size () in
  let sys = build_mutps (small_config ()) in
  let kv = Option.get sys.mutps in
  let clients, _ = run_system sys ~spec ~horizon ~clients:8 in
  let done_ = Client.completed clients in
  check_bool "progress" true (done_ > 500);
  (* uniform over 5000 keys with a 256-entry cache: < 30% CR hits *)
  check_bool "mostly forwarded" true
    (Mutps.cr_hits kv * 10 < done_ * 3)

let test_mutps_scan_workload () =
  let spec = Ycsb.e ~keyspace ~scan_len:10 ~value_size () in
  let sys = build_mutps (small_config ()) in
  let clients, failures = run_system sys ~spec ~horizon ~clients:4 in
  check_bool "scans progress" true (Client.completed clients > 100);
  check_int "no corruption" 0 failures

let test_mutps_scan_rejected_on_hash () =
  (* hash-indexed μTPS-H supports point queries only (§4); scans answer
     without data rather than crash *)
  let spec = Ycsb.c ~keyspace ~value_size () in
  let sys = build_mutps (small_config ~index:Config.Hash ()) in
  let clients, _ = run_system sys ~spec ~horizon:5_000_000 ~clients:2 in
  check_bool "point ops fine on hash" true (Client.completed clients > 100)

let test_mutps_split_observability () =
  let kv = Mutps.create ~ncr:3 (small_config ()) in
  check_int "ncr" 3 (Mutps.ncr kv);
  check_int "nmr" 5 (Mutps.nmr kv);
  check_bool "settled" true (Mutps.reconfig_settled kv);
  Alcotest.check_raises "bad split" (Invalid_argument "Mutps.set_split")
    (fun () -> Mutps.set_split kv ~ncr:8);
  Alcotest.check_raises "bad ways" (Invalid_argument "Mutps.set_mr_ways")
    (fun () -> Mutps.set_mr_ways kv 0)

let test_mutps_reconfigure_under_load () =
  let spec = Ycsb.a ~keyspace ~value_size () in
  let sys = build_mutps ~ncr:2 (small_config ()) in
  let kv = Option.get sys.mutps in
  let failures = ref 0 in
  let clients =
    Client.start ~engine:sys.engine ~link:sys.link ~transport:sys.transport
      { Client.clients = 8; window = 2; spec; seed = 9;
        dispatch = Client.uniform_dispatch }
  in
  verify_values clients ~failures;
  Engine.run sys.engine ~until:10_000_000;
  let before = Client.completed clients in
  check_bool "progress before" true (before > 200);
  (* grow the CR layer mid-flight, then shrink it *)
  Mutps.set_split kv ~ncr:5;
  Engine.run sys.engine ~until:30_000_000;
  check_bool "settled after grow" true (Mutps.reconfig_settled kv);
  check_int "ncr grew" 5 (Mutps.ncr kv);
  let mid = Client.completed clients in
  check_bool "progress across grow" true (mid > before + 200);
  Mutps.set_split kv ~ncr:1;
  Engine.run sys.engine ~until:50_000_000;
  check_bool "settled after shrink" true (Mutps.reconfig_settled kv);
  check_bool "progress across shrink" true (Client.completed clients > mid + 200);
  check_int "no corruption through reconfigs" 0 !failures;
  (* reconfiguration must never leak a request: every client slot alive *)
  check_bool "no lost messages across reconfigs" true
    (Client.sent clients - Client.completed clients <= 16)

let test_mutps_hot_resize_under_load () =
  let spec =
    { (Ycsb.c ~keyspace ~value_size ()) with Opgen.key_dist = Opgen.Zipfian 0.99 }
  in
  let sys = build_mutps (small_config ()) in
  let kv = Option.get sys.mutps in
  let clients, _ = run_system sys ~spec ~horizon:20_000_000 ~clients:8 in
  ignore clients;
  let s1 = Mutps.hot_size kv in
  check_bool "hot set non-empty" true (s1 > 0);
  Mutps.set_hot_target kv 16;
  Engine.run sys.engine ~until:40_000_000;
  check_bool
    (Printf.sprintf "hot set shrank (%d -> %d)" s1 (Mutps.hot_size kv))
    true
    (Mutps.hot_size kv <= 16);
  (* disable entirely *)
  Mutps.set_hot_target kv 0;
  Engine.run sys.engine ~until:60_000_000;
  check_int "hot set empty" 0 (Mutps.hot_size kv)

let test_mutps_ways_applied () =
  let kv = Mutps.create ~ncr:2 (small_config ()) in
  Mutps.start kv;
  Mutps.set_mr_ways kv 3;
  check_int "ways recorded" 3 (Mutps.mr_ways kv);
  let hier = (Mutps.backend kv).Backend.hier in
  (* MR cores (2..7) restricted, CR cores full *)
  check_int "cr core full mask"
    (Mutps_mem.Hierarchy.full_llc_mask hier)
    (Mutps_mem.Hierarchy.clos hier ~core:0);
  check_int "mr core restricted" 0b111 (Mutps_mem.Hierarchy.clos hier ~core:5)

(* ------------------------------------------------------------------ *)
(* Cross-system comparisons (coarse sanity, not benchmarks)            *)
(* ------------------------------------------------------------------ *)

(* saturate the server: enough outstanding requests that throughput is
   bounded by server CPU, not by the closed loop *)
let throughput build ~spec =
  let sys = build (small_config ()) in
  let clients =
    Client.start ~engine:sys.engine ~link:sys.link ~transport:sys.transport
      { Client.clients = 48; window = 4; spec; seed = 9; dispatch = sys.dispatch }
  in
  Engine.run sys.engine ~until:20_000_000;
  Client.completed clients

let test_erpckv_suffers_under_skew () =
  (* share-nothing + mod-key dispatch must lose to share-everything under
     a strong hotspot (the §2.2.2 load-imbalance effect) *)
  let spec =
    { (Ycsb.c ~keyspace ~value_size ()) with Opgen.key_dist = Opgen.Zipfian 0.99 }
  in
  let base = throughput build_basekv ~spec in
  let erpc = throughput build_erpckv ~spec in
  check_bool
    (Printf.sprintf "basekv (%d) > erpckv (%d) under skew" base erpc)
    true (base > erpc)

(* ------------------------------------------------------------------ *)
(* Auto-tuner                                                          *)
(* ------------------------------------------------------------------ *)

let tuner_params =
  {
    Autotuner.window = 2_000_000;
    settle = 400_000;
    cache_step = 128;
    cache_points = 2;
    auto_threshold = infinity;
  }

let test_autotuner_pass_completes () =
  let spec =
    { (Ycsb.a ~keyspace ~value_size ()) with Opgen.key_dist = Opgen.Zipfian 0.99 }
  in
  let config = small_config ~cores:4 () in
  let kv = Mutps.create ~ncr:1 config in
  Backend.populate (Mutps.backend kv) ~keyspace ~value_size;
  Mutps.start kv;
  let tuner = Autotuner.create ~params:tuner_params kv in
  Autotuner.spawn tuner;
  let b = Mutps.backend kv in
  let _clients =
    Client.start ~engine:b.Backend.engine ~link:b.Backend.link
      ~transport:(Mutps.transport kv)
      { Client.clients = 32; window = 4;
        spec; seed = 3; dispatch = Client.uniform_dispatch }
  in
  Autotuner.trigger tuner;
  Engine.run b.Backend.engine ~until:120_000_000;
  check_bool "tune completed" true (Autotuner.tunes_completed tuner >= 1);
  (match Autotuner.last_applied tuner with
  | Some (ncr, hot, ways) ->
    check_bool "valid ncr" true (ncr >= 1 && ncr <= 3);
    check_bool "valid hot" true (hot >= 0 && hot <= config.Config.hot_k);
    check_bool "valid ways" true (ways >= 1 && ways <= 12);
    check_int "split applied" ncr (Mutps.ncr kv);
    check_int "ways applied" ways (Mutps.mr_ways kv)
  | None -> Alcotest.fail "nothing applied");
  check_bool "events recorded" true (List.length (Autotuner.events tuner) > 3);
  check_bool "settled after tuning" true (Mutps.reconfig_settled kv)

let test_autotuner_auto_trigger () =
  (* a throughput shift (load change) must arm a tuning pass *)
  let spec = Ycsb.c ~keyspace ~value_size () in
  let config = small_config ~cores:4 () in
  let kv = Mutps.create ~ncr:2 config in
  Backend.populate (Mutps.backend kv) ~keyspace ~value_size;
  Mutps.start kv;
  let tuner =
    Autotuner.create
      ~params:{ tuner_params with Autotuner.auto_threshold = 0.3 }
      kv
  in
  Autotuner.spawn tuner;
  let b = Mutps.backend kv in
  let clients =
    Client.start ~engine:b.Backend.engine ~link:b.Backend.link
      ~transport:(Mutps.transport kv)
      { Client.clients = 16; window = 2; spec; seed = 3;
        dispatch = Client.uniform_dispatch }
  in
  Engine.run b.Backend.engine ~until:10_000_000;
  (* shift the workload drastically: big values *)
  Client.set_spec clients (Ycsb.put_only ~keyspace ~value_size:1024 ());
  Engine.run b.Backend.engine ~until:150_000_000;
  check_bool "auto trigger fired" true (Autotuner.tunes_completed tuner >= 1)

let test_trisect_finds_peak () =
  (* white-box check through the public API: a tuner measuring a convex
     function must land on its peak; we emulate by tuning a 4-core system
     where more MR threads help (uniform large values) and checking the
     tuner does not pick an extreme CR-heavy split *)
  let spec = Ycsb.put_only_uniform ~keyspace ~value_size:512 () in
  let config = small_config ~cores:6 () in
  let kv = Mutps.create ~ncr:4 config in
  Backend.populate (Mutps.backend kv) ~keyspace ~value_size:512;
  Mutps.start kv;
  let tuner = Autotuner.create ~params:tuner_params kv in
  Autotuner.spawn tuner;
  let b = Mutps.backend kv in
  let _ =
    Client.start ~engine:b.Backend.engine ~link:b.Backend.link
      ~transport:(Mutps.transport kv)
      { Client.clients = 32; window = 4; spec; seed = 3;
        dispatch = Client.uniform_dispatch }
  in
  Autotuner.trigger tuner;
  Engine.run b.Backend.engine ~until:200_000_000;
  check_bool "tuned" true (Autotuner.tunes_completed tuner >= 1);
  (* uniform put-heavy: CR layer adds little; tuner should not starve MR *)
  check_bool
    (Printf.sprintf "nmr %d >= 2" (Mutps.nmr kv))
    true (Mutps.nmr kv >= 2)

(* ------------------------------------------------------------------ *)
(* Passive baselines                                                   *)
(* ------------------------------------------------------------------ *)

let test_passive_profiles () =
  let spec = Ycsb.c ~keyspace ~value_size:64 () in
  let r = Passive.evaluate Passive.Racehash ~spec ~clients:64 in
  Alcotest.(check (float 0.01)) "racehash get verbs" 2.0 r.Passive.verbs_per_op;
  let s = Passive.evaluate Passive.Sherman ~spec ~clients:64 in
  check_bool "sherman moves leaf-size bytes" true (s.Passive.bytes_per_op >= 1024.0)

let test_passive_client_scaling () =
  let spec = Ycsb.c ~keyspace ~value_size:64 () in
  let t8 = (Passive.evaluate Passive.Racehash ~spec ~clients:8).Passive.throughput_mops in
  let t64 = (Passive.evaluate Passive.Racehash ~spec ~clients:64).Passive.throughput_mops in
  let t4096 = (Passive.evaluate Passive.Racehash ~spec ~clients:4096).Passive.throughput_mops in
  let t8192 = (Passive.evaluate Passive.Racehash ~spec ~clients:8192).Passive.throughput_mops in
  check_bool "scales with clients at first" true (t64 > (7.0 *. t8));
  check_bool "saturates eventually" true (t8192 -. t4096 < 0.01 *. t4096 +. 1e-9)

let test_passive_sherman_bandwidth_bound_large () =
  let spec = Ycsb.c ~keyspace ~value_size:1024 () in
  let r = Passive.evaluate Passive.Sherman ~spec ~clients:100_000 in
  Alcotest.(check string) "bottleneck" "bandwidth" r.Passive.bottleneck

let test_passive_latency_grows_at_saturation () =
  let spec = Ycsb.c ~keyspace ~value_size:64 () in
  let low = Passive.evaluate Passive.Racehash ~spec ~clients:4 in
  let high = Passive.evaluate Passive.Racehash ~spec ~clients:100_000 in
  check_bool "queueing inflates latency" true
    (high.Passive.p50_latency_ns > 2.0 *. low.Passive.p50_latency_ns)

let test_passive_multi_rtt_latency () =
  let spec = Ycsb.c ~keyspace ~value_size:64 () in
  let r = Passive.evaluate Passive.Racehash ~spec ~clients:1 in
  (* 2 verbs × 2 us RTT = at least 4 us *)
  check_bool "at least two RTTs" true (r.Passive.p50_latency_ns >= 4000.0)


(* ------------------------------------------------------------------ *)
(* Determinism and reconfiguration stress                              *)
(* ------------------------------------------------------------------ *)

let completed_after build =
  let spec = Ycsb.a ~keyspace ~value_size () in
  let sys = build (small_config ()) in
  let clients, failures = run_system sys ~spec ~horizon:15_000_000 ~clients:8 in
  (Client.completed clients, failures)

let test_bitwise_determinism () =
  (* the whole stack is seeded: two identical runs must agree exactly *)
  List.iter
    (fun (name, build) ->
      let a, fa = completed_after build in
      let b, fb = completed_after build in
      check_int (name ^ " deterministic completions") a b;
      check_int (name ^ " deterministic failures") fa fb)
    [
      ("basekv", build_basekv);
      ("erpckv", build_erpckv);
      ("mutps", fun c -> build_mutps c);
    ]

let test_reconfig_stress_random () =
  (* fire a random storm of splits / hot resizes / way changes at a loaded
     system: it must keep serving, never corrupt a value, and settle *)
  let spec = Ycsb.a ~keyspace ~value_size () in
  let sys = build_mutps ~ncr:2 (small_config ()) in
  let kv = Option.get sys.mutps in
  let failures = ref 0 in
  let clients =
    Client.start ~engine:sys.engine ~link:sys.link ~transport:sys.transport
      { Client.clients = 8; window = 2; spec; seed = 9;
        dispatch = Client.uniform_dispatch }
  in
  verify_values clients ~failures;
  let rng = Rng.create 2024 in
  for step = 1 to 25 do
    (match Rng.int rng 3 with
    | 0 -> Mutps.set_split kv ~ncr:(1 + Rng.int rng 7)
    | 1 -> Mutps.set_hot_target kv (Rng.int rng 200)
    | _ -> Mutps.set_mr_ways kv (1 + Rng.int rng 12));
    Engine.run sys.engine ~until:(step * 2_000_000)
  done;
  let before = Client.completed clients in
  Engine.run sys.engine ~until:80_000_000;
  check_bool "settles eventually" true (Mutps.reconfig_settled kv);
  check_bool "still serving after storm" true
    (Client.completed clients > before + 200);
  check_int "no corruption through the storm" 0 !failures;
  check_bool "no lost messages through the storm" true
    (Client.sent clients - Client.completed clients <= 16)

let () =
  Alcotest.run "kvs" ~and_exit:true
    [
      ( "end-to-end",
        [
          Alcotest.test_case "basekv" `Quick test_basekv_end_to_end;
          Alcotest.test_case "erpckv" `Quick test_erpckv_end_to_end;
          Alcotest.test_case "mutps tree" `Quick test_mutps_end_to_end;
          Alcotest.test_case "mutps hash" `Quick test_mutps_hash_end_to_end;
        ] );
      ( "mutps",
        [
          Alcotest.test_case "hot path engages" `Quick test_mutps_hot_path_engages;
          Alcotest.test_case "uniform forwards" `Quick test_mutps_uniform_mostly_forwards;
          Alcotest.test_case "scan workload" `Quick test_mutps_scan_workload;
          Alcotest.test_case "hash point-only" `Quick test_mutps_scan_rejected_on_hash;
          Alcotest.test_case "split observability" `Quick test_mutps_split_observability;
          Alcotest.test_case "reconfigure under load" `Quick test_mutps_reconfigure_under_load;
          Alcotest.test_case "hot resize under load" `Quick test_mutps_hot_resize_under_load;
          Alcotest.test_case "ways applied" `Quick test_mutps_ways_applied;
        ] );
      ( "comparisons",
        [
          Alcotest.test_case "erpc suffers under skew" `Quick test_erpckv_suffers_under_skew;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "bitwise determinism" `Quick test_bitwise_determinism;
          Alcotest.test_case "reconfig stress" `Quick test_reconfig_stress_random;
        ] );
      ( "autotuner",
        [
          Alcotest.test_case "pass completes" `Quick test_autotuner_pass_completes;
          Alcotest.test_case "auto trigger" `Quick test_autotuner_auto_trigger;
          Alcotest.test_case "finds peak" `Quick test_trisect_finds_peak;
        ] );
      ( "passive",
        [
          Alcotest.test_case "profiles" `Quick test_passive_profiles;
          Alcotest.test_case "client scaling" `Quick test_passive_client_scaling;
          Alcotest.test_case "sherman bandwidth" `Quick test_passive_sherman_bandwidth_bound_large;
          Alcotest.test_case "latency at saturation" `Quick test_passive_latency_grows_at_saturation;
          Alcotest.test_case "multi-rtt latency" `Quick test_passive_multi_rtt_latency;
        ] );
    ]
