open Mutps_sim
open Mutps_mem
open Mutps_store
open Mutps_hotset

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let with_env f =
  let engine = Engine.create () in
  let hier = Hierarchy.create (Hierarchy.small_geometry ~cores:2) in
  let result = ref None in
  Simthread.spawn engine (fun ctx ->
      result := Some (f (Env.make ~ctx ~hier ~core:0)));
  Engine.run_all engine;
  Option.get !result

let mk_world () =
  let layout = Layout.create () in
  (layout, Slab.create layout ())

let mk_item slab k = Item.create slab ~value:(Bytes.of_string (Printf.sprintf "v%Ld" k))

(* ------------------------------------------------------------------ *)
(* Cms                                                                 *)
(* ------------------------------------------------------------------ *)

let test_cms_never_underestimates () =
  let cms = Cms.create ~width:1024 () in
  let truth = Hashtbl.create 64 in
  let r = Rng.create 1 in
  for _ = 1 to 5000 do
    let k = Int64.of_int (Rng.int r 200) in
    Cms.add cms k;
    Hashtbl.replace truth k (1 + Option.value ~default:0 (Hashtbl.find_opt truth k))
  done;
  Hashtbl.iter
    (fun k true_count ->
      check_bool "estimate >= truth" true (Cms.estimate cms k >= true_count))
    truth;
  check_int "total" 5000 (Cms.total cms)

let test_cms_accuracy_on_heavy_hitters () =
  let cms = Cms.create ~width:4096 () in
  for _ = 1 to 1000 do
    Cms.add cms 7L
  done;
  for i = 0 to 999 do
    Cms.add cms (Int64.of_int (100 + i))
  done;
  let est = Cms.estimate cms 7L in
  check_bool "heavy hitter close" true (est >= 1000 && est < 1100)

let test_cms_clear () =
  let cms = Cms.create ~width:64 () in
  Cms.add cms 1L;
  Cms.clear cms;
  check_int "cleared estimate" 0 (Cms.estimate cms 1L);
  check_int "cleared total" 0 (Cms.total cms)

let test_cms_unknown_key_bounded () =
  let cms = Cms.create ~width:4096 () in
  for i = 0 to 99 do
    Cms.add cms (Int64.of_int i)
  done;
  check_bool "unseen key small estimate" true (Cms.estimate cms 999999L <= 2)

(* ------------------------------------------------------------------ *)
(* Topk                                                                *)
(* ------------------------------------------------------------------ *)

let test_topk_keeps_hottest () =
  let t = Topk.create ~k:3 in
  List.iter (fun (k, c) -> Topk.offer t k c)
    [ (1L, 10); (2L, 50); (3L, 5); (4L, 100); (5L, 7); (6L, 60) ];
  let keys = Array.map fst (Topk.contents t) in
  Alcotest.(check (array int64)) "hottest three, descending" [| 4L; 6L; 2L |] keys

let test_topk_update_existing () =
  let t = Topk.create ~k:2 in
  Topk.offer t 1L 5;
  Topk.offer t 2L 10;
  Topk.offer t 1L 50;
  let keys = Array.map fst (Topk.contents t) in
  Alcotest.(check (array int64)) "updated order" [| 1L; 2L |] keys;
  check_int "min count" 10 (Topk.min_count t)

let test_topk_rejects_cold () =
  let t = Topk.create ~k:2 in
  Topk.offer t 1L 100;
  Topk.offer t 2L 200;
  Topk.offer t 3L 50;
  check_int "still 2" 2 (Topk.size t);
  check_bool "cold key rejected" true
    (Array.for_all (fun (k, _) -> k <> 3L) (Topk.contents t))

let prop_topk_matches_sort =
  QCheck.Test.make ~name:"topk = top of full sort" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 100) (pair (int_bound 1000) (int_range 1 1000)))
    (fun pairs ->
      (* dedupe keys, keeping max count, as Topk.offer does *)
      let tbl = Hashtbl.create 32 in
      List.iter
        (fun (k, c) ->
          let k = Int64.of_int k in
          match Hashtbl.find_opt tbl k with
          | Some c' when c' >= c -> ()
          | _ -> Hashtbl.replace tbl k c)
        pairs;
      let t = Topk.create ~k:5 in
      List.iter (fun (k, c) -> Topk.offer t (Int64.of_int k) c) pairs;
      let got = Topk.contents t in
      let expect =
        Hashtbl.fold (fun k c acc -> (k, c) :: acc) tbl []
        |> List.sort (fun (_, a) (_, b) -> compare b a)
      in
      let expect_top =
        List.filteri (fun i _ -> i < 5) expect |> List.map snd
      in
      let got_counts = Array.to_list (Array.map snd got) in
      (* counts must match the true top-5 multiset *)
      List.sort compare got_counts = List.sort compare expect_top)

(* ------------------------------------------------------------------ *)
(* Tracker                                                             *)
(* ------------------------------------------------------------------ *)

let test_tracker_finds_hotspot () =
  let t = Tracker.create ~sample_every:4 ~seed:3 () in
  let r = Rng.create 5 in
  (* key 42 gets ~50% of traffic; rest uniform over 1000 *)
  for _ = 1 to 40_000 do
    if Rng.bool r then Tracker.record t 42L
    else Tracker.record t (Int64.of_int (Rng.int r 1000))
  done;
  let top = Tracker.rebuild t ~k:10 in
  check_bool "hotspot ranked first" true (fst top.(0) = 42L);
  check_int "samples reset" 0 (Tracker.samples_pending t)

let test_tracker_sampling_rate () =
  let t = Tracker.create ~sample_every:10 ~seed:3 () in
  for _ = 1 to 1000 do
    Tracker.record t 1L
  done;
  check_int "one in ten sampled" 100 (Tracker.samples_pending t)

let test_tracker_rebuild_resets () =
  let t = Tracker.create ~sample_every:1 ~seed:3 () in
  Tracker.record t 9L;
  ignore (Tracker.rebuild t ~k:5);
  let top = Tracker.rebuild t ~k:5 in
  check_int "empty after reset" 0 (Array.length top)

(* ------------------------------------------------------------------ *)
(* Hotcache                                                            *)
(* ------------------------------------------------------------------ *)

let entries slab ks = Array.map (fun k -> (k, mk_item slab k)) ks

let test_hotcache_find_both_modes () =
  List.iter
    (fun mode ->
      let _, slab = mk_world () in
      let layout2 = Layout.create () in
      let hc = Hotcache.create layout2 ~mode ~max_items:64 in
      Hotcache.publish hc (entries slab [| 5L; 1L; 9L; 3L |]);
      check_int "size" 4 (Hotcache.size hc);
      with_env (fun env ->
          Array.iter
            (fun k ->
              match Hotcache.find hc env k with
              | Some item ->
                Alcotest.(check string)
                  "value" (Printf.sprintf "v%Ld" k)
                  (Bytes.to_string (Item.peek item))
              | None -> Alcotest.failf "key %Ld missing" k)
            [| 1L; 3L; 5L; 9L |];
          check_bool "miss" true (Hotcache.find hc env 7L = None)))
    [ Hotcache.Sorted; Hotcache.Probed ]

let test_hotcache_epoch_switch () =
  let _, slab = mk_world () in
  let layout2 = Layout.create () in
  let hc = Hotcache.create layout2 ~mode:Hotcache.Sorted ~max_items:16 in
  check_int "epoch 0" 0 (Hotcache.epoch hc);
  Hotcache.publish hc (entries slab [| 1L |]);
  check_int "epoch 1" 1 (Hotcache.epoch hc);
  Hotcache.publish hc (entries slab [| 2L |]);
  check_int "epoch 2" 2 (Hotcache.epoch hc);
  check_bool "old key gone" false (Hotcache.mem_silent hc 1L);
  check_bool "new key present" true (Hotcache.mem_silent hc 2L)

let test_hotcache_duplicates_dropped () =
  let _, slab = mk_world () in
  List.iter
    (fun mode ->
      let layout2 = Layout.create () in
      let hc = Hotcache.create layout2 ~mode ~max_items:16 in
      Hotcache.publish hc (entries slab [| 4L; 4L; 4L; 2L |]);
      check_int "dups dropped" 2 (Hotcache.size hc))
    [ Hotcache.Sorted; Hotcache.Probed ]

let test_hotcache_overflow_rejected () =
  let _, slab = mk_world () in
  let layout2 = Layout.create () in
  let hc = Hotcache.create layout2 ~mode:Hotcache.Sorted ~max_items:2 in
  Alcotest.check_raises "too many"
    (Invalid_argument "Hotcache.publish: more entries than max_items")
    (fun () -> Hotcache.publish hc (entries slab [| 1L; 2L; 3L |]))

let test_hotcache_cached_range () =
  let _, slab = mk_world () in
  let layout2 = Layout.create () in
  let hc = Hotcache.create layout2 ~mode:Hotcache.Sorted ~max_items:16 in
  Hotcache.publish hc (entries slab [| 10L; 2L; 30L; 4L; 20L |]);
  with_env (fun env ->
      let r = Hotcache.cached_range hc env ~lo:4L ~n:3 in
      Alcotest.(check (list int64)) "range keys" [ 4L; 10L; 20L ]
        (List.map fst r);
      let none = Hotcache.cached_range hc env ~lo:31L ~n:3 in
      check_int "empty past end" 0 (List.length none))

let test_hotcache_range_rejected_probed () =
  let layout2 = Layout.create () in
  let hc = Hotcache.create layout2 ~mode:Hotcache.Probed ~max_items:16 in
  with_env (fun env ->
      Alcotest.check_raises "probed range"
        (Invalid_argument "Hotcache.cached_range: requires Sorted mode")
        (fun () -> ignore (Hotcache.cached_range hc env ~lo:0L ~n:1)))

let test_hotcache_probed_cheaper_than_sorted () =
  (* On the full-size machine (everything LLC-resident) the O(1) probe must
     beat the O(log n) binary search on point lookups. *)
  let _, slab = mk_world () in
  let keys = Array.init 8192 (fun i -> Int64.of_int (i * 7)) in
  let cost mode =
    let layout2 = Layout.create () in
    let hc = Hotcache.create layout2 ~mode ~max_items:8192 in
    Hotcache.publish hc (entries slab keys);
    let engine = Engine.create () in
    let hier = Hierarchy.create (Hierarchy.default_geometry ~cores:1) in
    let warm_end = ref 0 in
    Simthread.spawn engine (fun ctx ->
        let env = Env.make ~ctx ~hier ~core:0 in
        (* warm pass: fault the structure in *)
        Array.iter (fun k -> ignore (Hotcache.find hc env k)) keys;
        Simthread.commit ctx;
        warm_end := Simthread.now ctx;
        (* measured pass: steady-state cache-resident cost *)
        Array.iter (fun k -> ignore (Hotcache.find hc env k)) keys;
        Simthread.commit ctx);
    Engine.run_all engine;
    Engine.now engine - !warm_end
  in
  let sorted = cost Hotcache.Sorted and probed = cost Hotcache.Probed in
  check_bool
    (Printf.sprintf "probed (%d) < sorted (%d)" probed sorted)
    true (probed < sorted)

let prop_hotcache_find_matches_publish =
  QCheck.Test.make ~name:"hotcache finds exactly the published keys" ~count:60
    QCheck.(pair bool (list_of_size (Gen.int_range 0 50) (int_bound 200)))
    (fun (sorted_mode, ks) ->
      let _, slab = mk_world () in
      let layout2 = Layout.create () in
      let mode = if sorted_mode then Hotcache.Sorted else Hotcache.Probed in
      let hc = Hotcache.create layout2 ~mode ~max_items:64 in
      let keys = Array.of_list (List.map Int64.of_int ks) in
      Hotcache.publish hc (entries slab keys);
      let published = List.sort_uniq compare (Array.to_list keys) in
      with_env (fun env ->
          List.for_all (fun k -> Hotcache.find hc env k <> None) published
          && List.for_all
               (fun k ->
                 List.mem k published || Hotcache.find hc env k = None)
               (List.map Int64.of_int [ 0; 1; 50; 199; 1000 ])))


let test_tracker_adapts_to_shift () =
  (* hotspot moves: after one rebuild cycle the new top key must lead *)
  let t = Tracker.create ~sample_every:2 ~seed:9 () in
  let r = Rng.create 21 in
  for _ = 1 to 30_000 do
    if Rng.bool r then Tracker.record t 100L
    else Tracker.record t (Int64.of_int (Rng.int r 5000))
  done;
  let top1 = Tracker.rebuild t ~k:8 in
  Alcotest.(check int64) "first hotspot" 100L (fst top1.(0));
  (* shift: key 200 becomes hot *)
  for _ = 1 to 30_000 do
    if Rng.bool r then Tracker.record t 200L
    else Tracker.record t (Int64.of_int (Rng.int r 5000))
  done;
  let top2 = Tracker.rebuild t ~k:8 in
  Alcotest.(check int64) "shifted hotspot" 200L (fst top2.(0));
  check_bool "old hotspot faded from the lead" true (fst top2.(0) <> 100L)

let test_hotcache_publish_empty () =
  let layout2 = Layout.create () in
  let hc = Hotcache.create layout2 ~mode:Hotcache.Sorted ~max_items:8 in
  Hotcache.publish hc [||];
  check_int "empty size" 0 (Hotcache.size hc);
  with_env (fun env -> check_bool "find on empty" true (Hotcache.find hc env 1L = None))

let prop_cached_range_sorted_and_bounded =
  QCheck.Test.make ~name:"cached_range returns sorted keys >= lo" ~count:60
    QCheck.(pair (list_of_size (Gen.int_range 0 40) (int_bound 500)) (int_bound 500))
    (fun (ks, lo) ->
      let _, slab = mk_world () in
      let layout2 = Layout.create () in
      let hc = Hotcache.create layout2 ~mode:Hotcache.Sorted ~max_items:64 in
      Hotcache.publish hc (entries slab (Array.of_list (List.map Int64.of_int ks)));
      with_env (fun env ->
          let r = Hotcache.cached_range hc env ~lo:(Int64.of_int lo) ~n:10 in
          let keys = List.map fst r in
          let sorted = List.sort compare keys = keys in
          let bounded = List.for_all (fun k -> k >= Int64.of_int lo) keys in
          sorted && bounded && List.length keys <= 10))

let () =
  Alcotest.run "hotset"
    [
      ( "cms",
        [
          Alcotest.test_case "never underestimates" `Quick test_cms_never_underestimates;
          Alcotest.test_case "heavy hitters" `Quick test_cms_accuracy_on_heavy_hitters;
          Alcotest.test_case "clear" `Quick test_cms_clear;
          Alcotest.test_case "unknown bounded" `Quick test_cms_unknown_key_bounded;
        ] );
      ( "topk",
        [
          Alcotest.test_case "keeps hottest" `Quick test_topk_keeps_hottest;
          Alcotest.test_case "update existing" `Quick test_topk_update_existing;
          Alcotest.test_case "rejects cold" `Quick test_topk_rejects_cold;
          QCheck_alcotest.to_alcotest prop_topk_matches_sort;
        ] );
      ( "tracker",
        [
          Alcotest.test_case "finds hotspot" `Quick test_tracker_finds_hotspot;
          Alcotest.test_case "sampling rate" `Quick test_tracker_sampling_rate;
          Alcotest.test_case "rebuild resets" `Quick test_tracker_rebuild_resets;
          Alcotest.test_case "adapts to shift" `Quick test_tracker_adapts_to_shift;
        ] );
      ( "hotcache",
        [
          Alcotest.test_case "find both modes" `Quick test_hotcache_find_both_modes;
          Alcotest.test_case "epoch switch" `Quick test_hotcache_epoch_switch;
          Alcotest.test_case "duplicates" `Quick test_hotcache_duplicates_dropped;
          Alcotest.test_case "overflow" `Quick test_hotcache_overflow_rejected;
          Alcotest.test_case "cached range" `Quick test_hotcache_cached_range;
          Alcotest.test_case "range rejected probed" `Quick test_hotcache_range_rejected_probed;
          Alcotest.test_case "probed cheaper" `Quick test_hotcache_probed_cheaper_than_sorted;
          Alcotest.test_case "publish empty" `Quick test_hotcache_publish_empty;
          QCheck_alcotest.to_alcotest prop_hotcache_find_matches_publish;
          QCheck_alcotest.to_alcotest prop_cached_range_sorted_and_bounded;
        ] );
    ]
