open Mutps_mem

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Layout                                                              *)
(* ------------------------------------------------------------------ *)

let test_layout_lines () =
  check_int "line of 0" 0 (Layout.line_of_addr 0);
  check_int "line of 63" 0 (Layout.line_of_addr 63);
  check_int "line of 64" 1 (Layout.line_of_addr 64);
  check_int "one byte spans one line" 1 (Layout.lines_spanned ~addr:0 ~size:1);
  check_int "zero size probes one line" 1 (Layout.lines_spanned ~addr:10 ~size:0);
  check_int "64B aligned spans one" 1 (Layout.lines_spanned ~addr:64 ~size:64);
  check_int "64B misaligned spans two" 2 (Layout.lines_spanned ~addr:60 ~size:64);
  check_int "1KB spans 16" 16 (Layout.lines_spanned ~addr:0 ~size:1024)

let test_layout_regions_disjoint () =
  let l = Layout.create () in
  let a = Layout.region l ~name:"a" ~size:1000 in
  let b = Layout.region l ~name:"b" ~size:1000 in
  check_bool "disjoint" true
    (Layout.base b >= Layout.base a + Layout.size a
    || Layout.base a >= Layout.base b + Layout.size b);
  check_bool "a contains own base" true (Layout.contains a (Layout.base a));
  check_bool "a excludes b's base" false (Layout.contains a (Layout.base b))

let test_layout_alloc () =
  let l = Layout.create () in
  let r = Layout.region l ~name:"r" ~size:256 in
  let x = Layout.alloc r 10 in
  let y = Layout.alloc r 10 in
  check_int "first at base" (Layout.base r) x;
  check_bool "second after first (aligned)" true (y >= x + 10);
  check_int "aligned to 8" 0 (y mod 8);
  let z = Layout.alloc r ~align:64 1 in
  check_int "aligned to 64" 0 (z mod 64);
  Alcotest.check_raises "overflow rejected"
    (Failure "Layout.alloc: region \"r\" full (65 of 256 bytes used)")
    (fun () -> ignore (Layout.alloc r 200))

(* ------------------------------------------------------------------ *)
(* Cache                                                               *)
(* ------------------------------------------------------------------ *)

let full c = Cache.full_mask c

let test_cache_hit_after_fill () =
  let c = Cache.create ~name:"c" ~sets:4 ~ways:2 in
  (match Cache.access c ~line:42 ~way_mask:(full c) with
  | Cache.Miss { victim = None } -> ()
  | _ -> Alcotest.fail "expected cold miss");
  (match Cache.access c ~line:42 ~way_mask:(full c) with
  | Cache.Hit -> ()
  | _ -> Alcotest.fail "expected hit");
  check_int "hits" 1 (Cache.hits c);
  check_int "misses" 1 (Cache.misses c)

let test_cache_lru_eviction () =
  let c = Cache.create ~name:"c" ~sets:1 ~ways:2 in
  ignore (Cache.access c ~line:1 ~way_mask:(full c));
  ignore (Cache.access c ~line:2 ~way_mask:(full c));
  (* touch 1 so 2 becomes LRU *)
  ignore (Cache.access c ~line:1 ~way_mask:(full c));
  (match Cache.access c ~line:3 ~way_mask:(full c) with
  | Cache.Miss { victim = Some v } -> check_int "evicts LRU" 2 v
  | _ -> Alcotest.fail "expected eviction");
  check_bool "1 still present" true (Cache.probe c ~line:1);
  check_bool "2 gone" false (Cache.probe c ~line:2)

let test_cache_way_mask_allocation () =
  let c = Cache.create ~name:"c" ~sets:1 ~ways:4 in
  (* fill the two rightmost ways only *)
  ignore (Cache.access c ~line:1 ~way_mask:0b0011);
  ignore (Cache.access c ~line:2 ~way_mask:0b0011);
  ignore (Cache.access c ~line:3 ~way_mask:0b0011);
  (* line 1 was LRU within the restricted ways -> must have been evicted *)
  check_bool "line1 evicted from restricted ways" false (Cache.probe c ~line:1);
  check_bool "line2 present" true (Cache.probe c ~line:2);
  check_bool "line3 present" true (Cache.probe c ~line:3);
  (* an allocation with the complementary mask must not disturb them *)
  ignore (Cache.access c ~line:4 ~way_mask:0b1100);
  check_bool "line2 survives other-mask fill" true (Cache.probe c ~line:2);
  check_bool "line3 survives other-mask fill" true (Cache.probe c ~line:3)

let test_cache_hit_across_masks () =
  let c = Cache.create ~name:"c" ~sets:1 ~ways:4 in
  ignore (Cache.access c ~line:7 ~way_mask:0b1100);
  (* CAT semantics: lookups hit on any way regardless of the mask *)
  (match Cache.access c ~line:7 ~way_mask:0b0011 with
  | Cache.Hit -> ()
  | _ -> Alcotest.fail "mask must not hide hits")

let test_cache_empty_mask_bypasses () =
  let c = Cache.create ~name:"c" ~sets:1 ~ways:2 in
  (match Cache.access c ~line:9 ~way_mask:0 with
  | Cache.Miss { victim = None } -> ()
  | _ -> Alcotest.fail "empty mask must bypass");
  check_bool "nothing allocated" false (Cache.probe c ~line:9)

let test_cache_touch_and_invalidate () =
  let c = Cache.create ~name:"c" ~sets:2 ~ways:2 in
  check_bool "touch miss does not allocate" false (Cache.touch c ~line:5);
  check_bool "still absent" false (Cache.probe c ~line:5);
  ignore (Cache.access c ~line:5 ~way_mask:(full c));
  check_bool "touch hit" true (Cache.touch c ~line:5);
  check_bool "invalidate present" true (Cache.invalidate c ~line:5);
  check_bool "invalidate absent" false (Cache.invalidate c ~line:5);
  check_bool "gone" false (Cache.probe c ~line:5)

let prop_cache_capacity =
  QCheck.Test.make ~name:"cache never holds more lines than capacity" ~count:50
    QCheck.(pair (int_range 1 8) (int_range 1 8))
    (fun (sets, ways) ->
      let c = Cache.create ~name:"c" ~sets ~ways in
      let present = Hashtbl.create 64 in
      for line = 0 to 499 do
        (match Cache.access c ~line ~way_mask:(Cache.full_mask c) with
        | Cache.Hit -> ()
        | Cache.Miss { victim } ->
          Hashtbl.replace present line ();
          Option.iter (Hashtbl.remove present) victim);
        ()
      done;
      Hashtbl.length present <= sets * ways
      && Hashtbl.fold (fun l () ok -> ok && Cache.probe c ~line:l) present true)

(* ------------------------------------------------------------------ *)
(* Hierarchy                                                           *)
(* ------------------------------------------------------------------ *)

let mk () = Hierarchy.create (Hierarchy.small_geometry ~cores:4)
let costs = Costs.default

let test_hier_latency_ladder () =
  let h = mk () in
  let cold = Hierarchy.load h ~core:0 ~addr:0x1000 ~size:8 in
  check_int "cold load pays DRAM" costs.Costs.dram cold;
  let warm = Hierarchy.load h ~core:0 ~addr:0x1000 ~size:8 in
  check_int "second load hits L1" costs.Costs.l1_hit warm

let test_hier_llc_hit_from_other_core () =
  let h = mk () in
  ignore (Hierarchy.load h ~core:0 ~addr:0x1000 ~size:8);
  let lat = Hierarchy.load h ~core:1 ~addr:0x1000 ~size:8 in
  check_int "other core hits shared LLC" costs.Costs.llc_hit lat

let test_hier_write_invalidates_sharers () =
  let h = mk () in
  ignore (Hierarchy.load h ~core:0 ~addr:0x2000 ~size:8);
  ignore (Hierarchy.load h ~core:1 ~addr:0x2000 ~size:8);
  check_bool "core1 has private copy" true
    (Hierarchy.probe_private h ~core:1 ~addr:0x2000);
  let lat = Hierarchy.store h ~core:0 ~addr:0x2000 ~size:8 in
  check_bool "writer pays invalidation" true (lat >= costs.Costs.invalidate);
  check_bool "core1 copy invalidated" false
    (Hierarchy.probe_private h ~core:1 ~addr:0x2000);
  let s = Hierarchy.core_stats h ~core:0 in
  check_int "invalidation counted" 1 s.Hierarchy.invalidations_sent

let test_hier_dirty_transfer () =
  let h = mk () in
  ignore (Hierarchy.store h ~core:0 ~addr:0x3000 ~size:8);
  let lat = Hierarchy.load h ~core:1 ~addr:0x3000 ~size:8 in
  check_bool "reader pays dirty transfer" true
    (lat >= costs.Costs.dirty_transfer);
  let s = Hierarchy.core_stats h ~core:1 in
  check_int "dirty transfer counted" 1 s.Hierarchy.dirty_transfers;
  (* after the forward, reading again from core 1 is a private hit *)
  let lat2 = Hierarchy.load h ~core:1 ~addr:0x3000 ~size:8 in
  check_int "then hits L1" costs.Costs.l1_hit lat2

let test_hier_dma_write_ddio () =
  let h = mk () in
  Hierarchy.dma_write h ~addr:0x4000 ~size:64;
  check_bool "DMA allocated into LLC" true (Hierarchy.probe_llc h ~addr:0x4000);
  let lat = Hierarchy.load h ~core:0 ~addr:0x4000 ~size:8 in
  check_int "CPU load after DMA hits LLC" costs.Costs.llc_hit lat;
  let hits, misses = Hierarchy.nic_dma_stats h in
  check_int "one DDIO miss" 1 misses;
  check_int "no DDIO hit yet" 0 hits;
  (* second DMA write to the same line updates in place *)
  Hierarchy.dma_write h ~addr:0x4000 ~size:64;
  let hits, _ = Hierarchy.nic_dma_stats h in
  check_int "in-place DDIO hit" 1 hits

let test_hier_dma_write_snoops_private () =
  let h = mk () in
  ignore (Hierarchy.load h ~core:2 ~addr:0x5000 ~size:8);
  check_bool "private copy" true (Hierarchy.probe_private h ~core:2 ~addr:0x5000);
  Hierarchy.dma_write h ~addr:0x5000 ~size:64;
  check_bool "DMA snooped private copy out" false
    (Hierarchy.probe_private h ~core:2 ~addr:0x5000)

let test_hier_dma_read_no_allocate () =
  let h = mk () in
  Hierarchy.dma_read h ~addr:0x6000 ~size:64;
  check_bool "DMA read does not allocate" false
    (Hierarchy.probe_llc h ~addr:0x6000);
  let _, misses = Hierarchy.nic_dma_stats h in
  check_int "counted as miss" 1 misses

let test_hier_ddio_confined_to_mask () =
  (* Fill the LLC from a core (all ways), then DMA-write fresh lines: they
     may only displace lines in the DDIO ways, so at most
     ddio_ways/llc_ways of the core's lines may disappear. *)
  let geo = Hierarchy.small_geometry ~cores:1 in
  let h = Hierarchy.create geo in
  let total = geo.Hierarchy.llc_sets * geo.Hierarchy.llc_ways in
  for i = 0 to total - 1 do
    ignore (Hierarchy.load h ~core:0 ~addr:(i * 64) ~size:1)
  done;
  let resident_before = ref [] in
  for i = 0 to total - 1 do
    if Hierarchy.probe_llc h ~addr:(i * 64) then
      resident_before := i :: !resident_before
  done;
  (* DMA a big burst of new lines *)
  for i = 0 to (2 * geo.Hierarchy.llc_sets) - 1 do
    Hierarchy.dma_write h ~addr:((total + i) * 64) ~size:1
  done;
  let survivors =
    List.length
      (List.filter (fun i -> Hierarchy.probe_llc h ~addr:(i * 64)) !resident_before)
  in
  let frac = float_of_int survivors /. float_of_int (List.length !resident_before) in
  let min_frac =
    float_of_int (geo.Hierarchy.llc_ways - geo.Hierarchy.ddio_ways)
    /. float_of_int geo.Hierarchy.llc_ways
  in
  check_bool
    (Printf.sprintf "non-DDIO ways untouched (%.2f >= %.2f)" frac min_frac)
    true
    (frac >= min_frac -. 0.05)

let test_hier_clos_isolation () =
  (* Two cores with disjoint CLOS masks must not evict each other's LLC
     lines. *)
  let geo = Hierarchy.small_geometry ~cores:2 in
  let h = Hierarchy.create geo in
  Hierarchy.set_clos h ~core:0 0b00001111;
  Hierarchy.set_clos h ~core:1 0b11110000;
  let per_core = geo.Hierarchy.llc_sets * 4 in
  for i = 0 to per_core - 1 do
    ignore (Hierarchy.load h ~core:0 ~addr:(i * 64) ~size:1)
  done;
  let resident = ref [] in
  for i = 0 to per_core - 1 do
    if Hierarchy.probe_llc h ~addr:(i * 64) then resident := i :: !resident
  done;
  (* core 1 streams a large footprint through its own ways *)
  for i = 0 to (4 * per_core) - 1 do
    ignore (Hierarchy.load h ~core:1 ~addr:((1 lsl 30) + (i * 64)) ~size:1)
  done;
  List.iter
    (fun i ->
      check_bool "core0 line survived core1 streaming" true
        (Hierarchy.probe_llc h ~addr:(i * 64)))
    !resident

let test_hier_empty_clos_bypasses () =
  let h = mk () in
  Hierarchy.set_clos h ~core:0 0;
  ignore (Hierarchy.load h ~core:0 ~addr:0x7000 ~size:8);
  check_bool "no LLC allocation with empty CLOS" false
    (Hierarchy.probe_llc h ~addr:0x7000);
  (* but private caches still hold it *)
  let lat = Hierarchy.load h ~core:0 ~addr:0x7000 ~size:8 in
  check_int "L1 hit" costs.Costs.l1_hit lat

let test_hier_multiline_streaming () =
  let h = mk () in
  let one = Hierarchy.load h ~core:0 ~addr:0x100000 ~size:8 in
  Hierarchy.reset_stats h;
  let h2 = mk () in
  let sixteen = Hierarchy.load h2 ~core:0 ~addr:0x200000 ~size:1024 in
  check_bool "16 lines cost more than 1" true (sixteen > one);
  check_bool "but far less than 16 full misses" true
    (sixteen < 16 * costs.Costs.dram)

let test_hier_prefetch_batch_overlap () =
  let h = mk () in
  let addrs = Array.init 8 (fun i -> 0x800000 + (i * 4096)) in
  let batched = Hierarchy.prefetch_batch h ~core:0 addrs in
  (* all 8 are cold DRAM misses; overlapped cost must be far below serial *)
  check_bool "overlap beats serial" true (batched < 8 * costs.Costs.dram);
  check_bool "overlap costs at least one miss" true
    (batched >= costs.Costs.dram);
  (* everything was actually fetched *)
  Array.iter
    (fun a ->
      let lat = Hierarchy.load h ~core:0 ~addr:a ~size:8 in
      check_int "prefetched line hits L1" costs.Costs.l1_hit lat)
    addrs

let test_hier_mlp_grouping () =
  let geo = Hierarchy.small_geometry ~cores:1 in
  let h = Hierarchy.create ~costs:{ costs with Costs.mlp = 4 } geo in
  let addrs = Array.init 8 (fun i -> 0x900000 + (i * 4096)) in
  let batched = Hierarchy.prefetch_batch h ~core:0 addrs in
  (* 8 cold misses with MLP 4 -> 2 groups of one DRAM latency each *)
  let expected = (2 * costs.Costs.dram) + (8 * costs.Costs.prefetch_issue) in
  check_int "two MLP groups" expected batched

let test_hier_stats_reset () =
  let h = mk () in
  ignore (Hierarchy.load h ~core:0 ~addr:0xA000 ~size:8);
  Hierarchy.reset_stats h;
  let s = Hierarchy.core_stats h ~core:0 in
  check_int "dram reset" 0 s.Hierarchy.dram_fetches;
  check_int "l1 reset" 0 s.Hierarchy.l1_hits

let test_hier_miss_rate () =
  let s =
    {
      Hierarchy.l1_hits = 0;
      l2_hits = 0;
      llc_hits = 75;
      dram_fetches = 25;
      invalidations_sent = 0;
      dirty_transfers = 0;
    }
  in
  Alcotest.(check (float 0.0001)) "miss rate" 0.25 (Hierarchy.llc_miss_rate s)

let prop_hier_load_latency_bounds =
  QCheck.Test.make ~name:"load latency within [l1_hit, dram+penalties]"
    ~count:300
    QCheck.(pair (int_bound 3) (int_bound 10_000))
    (fun (core, slot) ->
      let h = mk () in
      ignore (Hierarchy.load h ~core ~addr:(slot * 64) ~size:8);
      let lat = Hierarchy.load h ~core ~addr:(slot * 64) ~size:8 in
      lat >= costs.Costs.l1_hit && lat <= costs.Costs.dram)


(* ------------------------------------------------------------------ *)
(* Coherence / random-operation properties                             *)
(* ------------------------------------------------------------------ *)

let prop_hier_random_ops_sane =
  QCheck.Test.make
    ~name:"random load/store sequences keep latencies within the model"
    ~count:60
    QCheck.(list_of_size (Gen.int_range 1 300) (triple (int_bound 3) (int_bound 2047) bool))
    (fun ops ->
      let h = mk () in
      let c = Costs.default in
      let upper =
        c.Costs.dram + c.Costs.dirty_transfer + c.Costs.invalidate
        + (4 * c.Costs.invalidate_per_extra_sharer)
      in
      List.for_all
        (fun (core, slot, write) ->
          let addr = slot * 64 in
          let lat =
            if write then Hierarchy.store h ~core ~addr ~size:8
            else Hierarchy.load h ~core ~addr ~size:8
          in
          lat >= c.Costs.l1_hit && lat <= upper)
        ops)

let prop_hier_dirty_reader_never_stale_cost =
  QCheck.Test.make
    ~name:"after a remote write, the first reader pays more than a local hit"
    ~count:100
    QCheck.(pair (int_bound 1023) (int_bound 2))
    (fun (slot, writer) ->
      let h = mk () in
      let addr = slot * 64 in
      let reader = (writer + 1) mod 3 in
      ignore (Hierarchy.store h ~core:writer ~addr ~size:8);
      let lat = Hierarchy.load h ~core:reader ~addr ~size:8 in
      lat > Costs.default.Costs.l1_hit)

let test_hier_write_write_bounce () =
  (* two cores alternately writing one line: every write after the first
     pays coherence, and the line is always exclusively owned *)
  let h = mk () in
  let addr = 0xBEEF00 in
  ignore (Hierarchy.store h ~core:0 ~addr ~size:8);
  let costs = ref [] in
  for i = 1 to 10 do
    let core = i land 1 in
    costs := Hierarchy.store h ~core ~addr ~size:8 :: !costs
  done;
  List.iter
    (fun c ->
      check_bool "bounced write pays dirty+invalidate" true
        (c >= Costs.default.Costs.dirty_transfer))
    !costs;
  let s0 = Hierarchy.core_stats h ~core:0 and s1 = Hierarchy.core_stats h ~core:1 in
  check_bool "invalidations flowed both ways" true
    (s0.Hierarchy.invalidations_sent > 0 && s1.Hierarchy.invalidations_sent > 0)

let test_hier_invalidate_cost_scales_with_sharers () =
  let geo = Hierarchy.small_geometry ~cores:8 in
  let cost_with_sharers n =
    let h = Hierarchy.create geo in
    let addr = 0x4000 in
    for c = 1 to n do
      ignore (Hierarchy.load h ~core:c ~addr ~size:8)
    done;
    ignore (Hierarchy.load h ~core:0 ~addr ~size:8);
    Hierarchy.store h ~core:0 ~addr ~size:8
  in
  let one = cost_with_sharers 1 and many = cost_with_sharers 6 in
  check_bool
    (Printf.sprintf "6 sharers (%d) cost more than 1 (%d)" many one)
    true (many > one)

let () =
  Alcotest.run "mem"
    [
      ( "layout",
        [
          Alcotest.test_case "lines" `Quick test_layout_lines;
          Alcotest.test_case "regions disjoint" `Quick test_layout_regions_disjoint;
          Alcotest.test_case "alloc" `Quick test_layout_alloc;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hit after fill" `Quick test_cache_hit_after_fill;
          Alcotest.test_case "lru eviction" `Quick test_cache_lru_eviction;
          Alcotest.test_case "way mask allocation" `Quick test_cache_way_mask_allocation;
          Alcotest.test_case "hit across masks" `Quick test_cache_hit_across_masks;
          Alcotest.test_case "empty mask bypass" `Quick test_cache_empty_mask_bypasses;
          Alcotest.test_case "touch/invalidate" `Quick test_cache_touch_and_invalidate;
          QCheck_alcotest.to_alcotest prop_cache_capacity;
        ] );
      ( "hierarchy",
        [
          Alcotest.test_case "latency ladder" `Quick test_hier_latency_ladder;
          Alcotest.test_case "llc shared" `Quick test_hier_llc_hit_from_other_core;
          Alcotest.test_case "write invalidates" `Quick test_hier_write_invalidates_sharers;
          Alcotest.test_case "dirty transfer" `Quick test_hier_dirty_transfer;
          Alcotest.test_case "dma write ddio" `Quick test_hier_dma_write_ddio;
          Alcotest.test_case "dma snoops private" `Quick test_hier_dma_write_snoops_private;
          Alcotest.test_case "dma read no alloc" `Quick test_hier_dma_read_no_allocate;
          Alcotest.test_case "ddio confined" `Quick test_hier_ddio_confined_to_mask;
          Alcotest.test_case "clos isolation" `Quick test_hier_clos_isolation;
          Alcotest.test_case "empty clos bypass" `Quick test_hier_empty_clos_bypasses;
          Alcotest.test_case "multiline streaming" `Quick test_hier_multiline_streaming;
          Alcotest.test_case "prefetch overlap" `Quick test_hier_prefetch_batch_overlap;
          Alcotest.test_case "mlp grouping" `Quick test_hier_mlp_grouping;
          Alcotest.test_case "stats reset" `Quick test_hier_stats_reset;
          Alcotest.test_case "miss rate" `Quick test_hier_miss_rate;
          QCheck_alcotest.to_alcotest prop_hier_load_latency_bounds;
        ] );
      ( "coherence",
        [
          Alcotest.test_case "write-write bounce" `Quick test_hier_write_write_bounce;
          Alcotest.test_case "invalidate scales" `Quick test_hier_invalidate_cost_scales_with_sharers;
          QCheck_alcotest.to_alcotest prop_hier_random_ops_sane;
          QCheck_alcotest.to_alcotest prop_hier_dirty_reader_never_stale_cost;
        ] );
    ]
