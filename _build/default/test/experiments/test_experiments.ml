(* Tests for the experiment harness's pure parts: the registry, table
   rendering, and scale handling. *)

open Mutps_experiments

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_registry_complete () =
  (* every table and figure of the paper's evaluation must be present *)
  let expected =
    [ "table1"; "fig2a"; "fig2b"; "fig2c"; "fig7"; "fig8a"; "fig8bc";
      "fig9"; "fig10"; "fig11"; "fig12"; "fig13"; "fig14" ]
  in
  List.iter
    (fun name ->
      check_bool (name ^ " registered") true (Registry.find name <> None))
    expected;
  check_int "exactly the paper's experiments" (List.length expected)
    (List.length Registry.all)

let test_registry_names_unique () =
  let names = Registry.names () in
  check_int "no duplicates" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_registry_find_missing () =
  check_bool "unknown name" true (Registry.find "fig99" = None)

let test_table_rendering () =
  let t = Table.create [ "col"; "value" ] in
  Table.add_row t [ "a"; "1.00" ];
  Table.add_row t [ "long-name"; "2.50" ];
  let buf_name = Filename.temp_file "table" ".txt" in
  let out = open_out buf_name in
  Table.print ~out t;
  close_out out;
  let ic = open_in buf_name in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  Sys.remove buf_name;
  let lines = List.rev !lines in
  check_int "header + rule + 2 rows" 4 (List.length lines);
  (* all data lines align: same length modulo trailing spaces *)
  (match lines with
  | header :: _ ->
    check_bool "header mentions both columns" true
      (String.length header >= String.length "col  value")
  | [] -> Alcotest.fail "no output");
  check_bool "rows preserved in order" true
    (match lines with
    | _ :: _ :: r1 :: r2 :: _ ->
      String.length r1 > 0
      && r1.[0] = 'a'
      && String.sub r2 0 9 = "long-name"
    | _ -> false)

let test_cells () =
  Alcotest.(check string) "float cell" "3.14" (Table.cell_f 3.1416);
  Alcotest.(check string) "int cell" "42" (Table.cell_i 42)

let test_scale_fields_sane () =
  let s = Harness.default_scale in
  check_bool "keyspace positive" true (s.Harness.keyspace > 0);
  check_bool "cores >= 2" true (s.Harness.cores >= 2);
  check_bool "warmup < measure * 2" true (s.Harness.warmup < 2 * s.Harness.measure)

let test_system_names () =
  Alcotest.(check string) "mutps" "uTPS" (Harness.system_name Harness.Mutps);
  Alcotest.(check string) "basekv" "BaseKV" (Harness.system_name Harness.Basekv);
  Alcotest.(check string) "erpckv" "eRPC-KV" (Harness.system_name Harness.Erpckv)

let test_populate_size () =
  let fixed = Mutps_workload.Ycsb.a ~keyspace:100 ~value_size:777 () in
  check_int "fixed size" 777 (Harness.populate_size fixed);
  let etc = Mutps_workload.Etc.spec ~keyspace:100 ~get_ratio:0.5 () in
  check_bool "etc mean in band" true
    (let m = Harness.populate_size etc in
     m > 30 && m < 200)

let test_mk_config_scales_geometry () =
  (* below ~500K keys the geometry sits on its floor; above it scales *)
  let small = Harness.mk_config { Harness.default_scale with Harness.keyspace = 500_000 } in
  let big = Harness.mk_config { Harness.default_scale with Harness.keyspace = 2_000_000 } in
  match (small.Mutps_kvs.Config.geometry, big.Mutps_kvs.Config.geometry) with
  | Some gs, Some gb ->
    check_bool "LLC grows with keyspace" true
      (gb.Mutps_mem.Hierarchy.llc_sets > gs.Mutps_mem.Hierarchy.llc_sets)
  | _ -> Alcotest.fail "scaled geometry expected"

let () =
  Alcotest.run "experiments"
    [
      ( "registry",
        [
          Alcotest.test_case "complete" `Quick test_registry_complete;
          Alcotest.test_case "unique" `Quick test_registry_names_unique;
          Alcotest.test_case "find missing" `Quick test_registry_find_missing;
        ] );
      ( "table",
        [
          Alcotest.test_case "rendering" `Quick test_table_rendering;
          Alcotest.test_case "cells" `Quick test_cells;
        ] );
      ( "harness",
        [
          Alcotest.test_case "scale sane" `Quick test_scale_fields_sane;
          Alcotest.test_case "system names" `Quick test_system_names;
          Alcotest.test_case "populate size" `Quick test_populate_size;
          Alcotest.test_case "scaled geometry" `Quick test_mk_config_scales_geometry;
        ] );
    ]
