type t = {
  k : int;
  keys : int64 array;
  counts : int array;
  index : (int64, int) Hashtbl.t; (* key -> heap position *)
  mutable size : int;
}

let create ~k =
  if k <= 0 then invalid_arg "Topk.create";
  { k; keys = Array.make k 0L; counts = Array.make k 0; index = Hashtbl.create (2 * k); size = 0 }

let size t = t.size
let min_count t = if t.size < t.k then 0 else t.counts.(0)

let swap t i j =
  let tk = t.keys.(i) and tc = t.counts.(i) in
  t.keys.(i) <- t.keys.(j);
  t.counts.(i) <- t.counts.(j);
  t.keys.(j) <- tk;
  t.counts.(j) <- tc;
  Hashtbl.replace t.index t.keys.(i) i;
  Hashtbl.replace t.index t.keys.(j) j

let rec sift_up t i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if t.counts.(i) < t.counts.(p) then begin
      swap t i p;
      sift_up t p
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && t.counts.(l) < t.counts.(!smallest) then smallest := l;
  if r < t.size && t.counts.(r) < t.counts.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let offer t key count =
  match Hashtbl.find_opt t.index key with
  | Some i ->
    if count > t.counts.(i) then begin
      t.counts.(i) <- count;
      sift_down t i
    end
  | None ->
    if t.size < t.k then begin
      let i = t.size in
      t.size <- t.size + 1;
      t.keys.(i) <- key;
      t.counts.(i) <- count;
      Hashtbl.replace t.index key i;
      sift_up t i
    end
    else if count > t.counts.(0) then begin
      Hashtbl.remove t.index t.keys.(0);
      t.keys.(0) <- key;
      t.counts.(0) <- count;
      Hashtbl.replace t.index key 0;
      sift_down t 0
    end

let contents t =
  let out = Array.init t.size (fun i -> (t.keys.(i), t.counts.(i))) in
  Array.sort (fun (_, a) (_, b) -> compare b a) out;
  out

let clear t =
  t.size <- 0;
  Hashtbl.reset t.index
