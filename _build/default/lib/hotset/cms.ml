module Rng = Mutps_sim.Rng

type t = {
  rows : int;
  width : int;
  mask : int;
  counts : int array; (* rows * width *)
  salts : int64 array;
  mutable total : int;
}

let create ?(rows = 4) ~width () =
  if rows <= 0 || width <= 0 then invalid_arg "Cms.create";
  let width = 1 lsl Mutps_sim.Bits.log2_ceil width in
  {
    rows;
    width;
    mask = width - 1;
    counts = Array.make (rows * width) 0;
    salts = Array.init rows (fun i -> Rng.hash64 (Int64.of_int (i + 1)));
    total = 0;
  }

let cell t row key =
  let h = Rng.hash64 (Int64.logxor key t.salts.(row)) in
  (row * t.width) + (Int64.to_int h land t.mask)

let add t key =
  for row = 0 to t.rows - 1 do
    let i = cell t row key in
    t.counts.(i) <- t.counts.(i) + 1
  done;
  t.total <- t.total + 1

let estimate t key =
  let est = ref max_int in
  for row = 0 to t.rows - 1 do
    let c = t.counts.(cell t row key) in
    if c < !est then est := c
  done;
  if !est = max_int then 0 else !est

let clear t =
  Array.fill t.counts 0 (Array.length t.counts) 0;
  t.total <- 0

let total t = t.total
