(** Count-min sketch over 64-bit keys (Cormode–Muthukrishnan), used by the
    hot-set tracker (§3.2.2) to estimate key frequencies from samples. *)

type t

val create : ?rows:int -> width:int -> unit -> t
(** [width] is rounded up to a power of two; [rows] defaults to 4. *)

val add : t -> int64 -> unit
val estimate : t -> int64 -> int
(** Never underestimates the true count of added keys. *)

val clear : t -> unit
val total : t -> int
(** Number of [add]s since the last clear. *)
