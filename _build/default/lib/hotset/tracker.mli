(** Hot-set tracking pipeline (§3.2.2, after Nap): worker threads cheaply
    sample accessed keys; a background manager periodically folds the
    samples through a count-min sketch and a top-K heap to produce the next
    hot set. *)

type t

val create : ?sample_every:int -> ?reservoir:int -> ?cms_width:int -> seed:int -> unit -> t
(** [sample_every] (default 16): record one of every N offered keys.
    [reservoir] (default 65536): sample buffer capacity (older samples are
    overwritten ring-style). *)

val record : t -> int64 -> unit
(** Called by worker threads on each processed key; cheap and allocation
    free off the sampling path. *)

val samples_pending : t -> int

val rebuild : t -> k:int -> (int64 * int) array
(** Fold pending samples and return the top-[k] keys with estimated
    frequencies, hottest first; resets the sample buffer for the next
    window. *)
