type t = {
  sample_every : int;
  reservoir : int64 array;
  mutable seen : int; (* keys offered since last rebuild *)
  mutable stored : int; (* samples in the reservoir (<= capacity) *)
  mutable cursor : int; (* ring write position *)
  cms : Cms.t;
}

let create ?(sample_every = 16) ?(reservoir = 65_536) ?(cms_width = 16_384)
    ~seed:_ () =
  if sample_every <= 0 || reservoir <= 0 then invalid_arg "Tracker.create";
  {
    sample_every;
    reservoir = Array.make reservoir 0L;
    seen = 0;
    stored = 0;
    cursor = 0;
    cms = Cms.create ~width:cms_width ();
  }

let record t key =
  t.seen <- t.seen + 1;
  if t.seen mod t.sample_every = 0 then begin
    t.reservoir.(t.cursor) <- key;
    t.cursor <- (t.cursor + 1) mod Array.length t.reservoir;
    if t.stored < Array.length t.reservoir then t.stored <- t.stored + 1
  end

let samples_pending t = t.stored

let rebuild t ~k =
  Cms.clear t.cms;
  for i = 0 to t.stored - 1 do
    Cms.add t.cms t.reservoir.(i)
  done;
  let top = Topk.create ~k in
  for i = 0 to t.stored - 1 do
    let key = t.reservoir.(i) in
    Topk.offer top key (Cms.estimate t.cms key)
  done;
  t.seen <- 0;
  t.stored <- 0;
  t.cursor <- 0;
  Topk.contents top
