(** Top-K tracking with a min-heap keyed by estimated count (§3.2.2: the
    hottest ~10K items). *)

type t

val create : k:int -> t

val offer : t -> int64 -> int -> unit
(** [offer t key count] considers [key] with estimated frequency [count].
    Re-offering a tracked key updates its count (max of offers). *)

val size : t -> int

val contents : t -> (int64 * int) array
(** Tracked keys with counts, hottest first. *)

val min_count : t -> int
(** Smallest tracked count (0 when not yet full). *)

val clear : t -> unit
