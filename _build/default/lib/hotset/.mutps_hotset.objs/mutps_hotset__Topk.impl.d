lib/hotset/topk.ml: Array Hashtbl
