lib/hotset/tracker.mli:
