lib/hotset/tracker.ml: Array Cms Topk
