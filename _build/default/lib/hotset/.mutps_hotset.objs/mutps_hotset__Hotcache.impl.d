lib/hotset/hotcache.ml: Array Int64 List Mutps_mem Mutps_sim Mutps_store
