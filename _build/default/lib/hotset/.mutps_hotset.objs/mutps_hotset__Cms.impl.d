lib/hotset/cms.ml: Array Int64 Mutps_sim
