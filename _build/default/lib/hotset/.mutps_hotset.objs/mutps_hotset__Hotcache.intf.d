lib/hotset/hotcache.mli: Mutps_mem Mutps_store
