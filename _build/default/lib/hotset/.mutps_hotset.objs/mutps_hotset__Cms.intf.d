lib/hotset/cms.mli:
