lib/hotset/topk.mli:
