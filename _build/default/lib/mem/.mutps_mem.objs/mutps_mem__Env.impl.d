lib/mem/env.ml: Hierarchy Mutps_sim
