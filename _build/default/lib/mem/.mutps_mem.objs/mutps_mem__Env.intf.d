lib/mem/env.mli: Hierarchy Mutps_sim
