lib/mem/costs.ml:
