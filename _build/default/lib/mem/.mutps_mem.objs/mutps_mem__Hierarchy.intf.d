lib/mem/hierarchy.mli: Costs
