lib/mem/hierarchy.ml: Array Cache Costs Hashtbl Layout Printf
