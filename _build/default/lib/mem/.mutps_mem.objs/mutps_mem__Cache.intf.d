lib/mem/cache.mli:
