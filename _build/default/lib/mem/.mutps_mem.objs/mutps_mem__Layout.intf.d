lib/mem/layout.mli:
