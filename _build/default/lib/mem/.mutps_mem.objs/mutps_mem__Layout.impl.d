lib/mem/layout.ml: Printf
