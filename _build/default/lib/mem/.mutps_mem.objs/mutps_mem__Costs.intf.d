lib/mem/costs.mli:
