(** Simulated physical address space.

    Addresses are plain non-negative [int]s in a flat 62-bit space; a cache
    line is 64 bytes.  A {!t} hands out named, line-aligned regions (network
    buffers, index arena, item heap, queues…), and each region supports bump
    allocation.  Nothing is ever freed: the simulator only needs stable
    addresses with realistic spatial relationships. *)

val line_bytes : int
(** 64. *)

val line_of_addr : int -> int
(** Cache-line number containing an address. *)

val lines_spanned : addr:int -> size:int -> int
(** Number of distinct cache lines touched by [size] bytes at [addr]
    ([size = 0] touches 1 line: headers are at least probed). *)

type t

val create : unit -> t

type region

val region : t -> name:string -> size:int -> region
(** Reserve [size] bytes (rounded up to lines).  Regions are disjoint and
    separated by a guard gap. *)

val base : region -> int
val size : region -> int
val region_name : region -> string

val contains : region -> int -> bool

val alloc : region -> ?align:int -> int -> int
(** Bump-allocate inside the region; raises [Failure] when full.
    [align] defaults to 8 and must be a power of two. *)

val allocated : region -> int
(** Bytes handed out so far. *)
