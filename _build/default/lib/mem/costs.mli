(** Cycle-cost model of the simulated machine.

    All latencies are in CPU cycles.  The defaults approximate a ~2.5 GHz
    Ice Lake class server part (Xeon Gold 6330, the paper's testbed): L1 ~4
    cycles, L2 ~14, shared LLC ~42, DRAM ~200 (≈80 ns).  Values are plain
    record fields so experiments can perturb them. *)

type t = {
  ghz : float;  (** simulated clock frequency, for cycle→second conversion *)
  l1_hit : int;
  l2_hit : int;
  llc_hit : int;
  dram : int;
  dirty_transfer : int;
      (** extra cycles to forward a line dirty in another core's private
          cache *)
  invalidate : int;
      (** cycles charged to a writer invalidating remote shared copies *)
  invalidate_per_extra_sharer : int;
      (** additional cycles per remote sharer beyond the first: spinning
          cores re-load a contended line, so each lock handoff pays for the
          whole crowd — the traffic behind the share-everything collapse of
          Figure 2c *)
  prefetch_issue : int;  (** cycles to issue one prefetch instruction *)
  mlp : int;  (** memory-level parallelism: outstanding misses per core *)
  stream_factor : int;
      (** sequential multi-line accesses: trailing lines cost
          [miss_latency / stream_factor] (hardware prefetcher) *)
}

val default : t

val ns_of_cycles : t -> int -> float
val cycles_of_ns : t -> float -> int
