type t = {
  name : string;
  sets : int;
  ways : int;
  tags : int array;      (* sets * ways; -1 = invalid *)
  stamps : int array;    (* LRU stamps, same indexing *)
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
}

let create ~name ~sets ~ways =
  if sets <= 0 || ways <= 0 then invalid_arg "Cache.create";
  if ways > 62 then invalid_arg "Cache.create: too many ways for a way mask";
  {
    name;
    sets;
    ways;
    tags = Array.make (sets * ways) (-1);
    stamps = Array.make (sets * ways) 0;
    clock = 0;
    hits = 0;
    misses = 0;
  }

let name t = t.name
let sets t = t.sets
let ways t = t.ways
let capacity_lines t = t.sets * t.ways
let full_mask t = (1 lsl t.ways) - 1

(* Fibonacci-style mixing spreads sequential lines over sets even when
   [sets] is not a power of two. *)
let set_of_line t line =
  let h = line * 0x9E3779B97F4A7C1 in
  (h lsr 16) mod t.sets

type outcome = Hit | Miss of { victim : int option }

let find_way t base line =
  let rec go w =
    if w = t.ways then -1
    else if t.tags.(base + w) = line then w
    else go (w + 1)
  in
  go 0

let access t ~line ~way_mask =
  t.clock <- t.clock + 1;
  let base = set_of_line t line * t.ways in
  let w = find_way t base line in
  if w >= 0 then begin
    t.hits <- t.hits + 1;
    t.stamps.(base + w) <- t.clock;
    Hit
  end
  else begin
    t.misses <- t.misses + 1;
    let mask = way_mask land full_mask t in
    if mask = 0 then Miss { victim = None }
    else begin
      (* LRU victim among allowed ways; invalid ways win immediately. *)
      let best = ref (-1) and best_stamp = ref max_int in
      for way = 0 to t.ways - 1 do
        if mask land (1 lsl way) <> 0 then begin
          let i = base + way in
          if t.tags.(i) = -1 && !best_stamp > min_int then begin
            best := way;
            best_stamp := min_int
          end
          else if !best_stamp > min_int && t.stamps.(i) < !best_stamp then begin
            best := way;
            best_stamp := t.stamps.(i)
          end
        end
      done;
      let i = base + !best in
      let victim = if t.tags.(i) = -1 then None else Some t.tags.(i) in
      t.tags.(i) <- line;
      t.stamps.(i) <- t.clock;
      Miss { victim }
    end
  end

let touch t ~line =
  t.clock <- t.clock + 1;
  let base = set_of_line t line * t.ways in
  let w = find_way t base line in
  if w >= 0 then begin
    t.hits <- t.hits + 1;
    t.stamps.(base + w) <- t.clock;
    true
  end
  else begin
    t.misses <- t.misses + 1;
    false
  end

let probe t ~line =
  let base = set_of_line t line * t.ways in
  find_way t base line >= 0

let invalidate t ~line =
  let base = set_of_line t line * t.ways in
  let w = find_way t base line in
  if w >= 0 then begin
    t.tags.(base + w) <- -1;
    true
  end
  else false

let hits t = t.hits
let misses t = t.misses

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0
