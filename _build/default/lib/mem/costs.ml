type t = {
  ghz : float;
  l1_hit : int;
  l2_hit : int;
  llc_hit : int;
  dram : int;
  dirty_transfer : int;
  invalidate : int;
  invalidate_per_extra_sharer : int;
  prefetch_issue : int;
  mlp : int;
  stream_factor : int;
}

let default =
  {
    ghz = 2.5;
    l1_hit = 4;
    l2_hit = 14;
    llc_hit = 42;
    dram = 200;
    dirty_transfer = 80;
    invalidate = 40;
    invalidate_per_extra_sharer = 48;
    prefetch_issue = 4;
    mlp = 10;
    stream_factor = 4;
  }

let ns_of_cycles t c = float_of_int c /. t.ghz
let cycles_of_ns t ns = int_of_float (ceil (ns *. t.ghz))
