(** Single-producer single-consumer ring with multi-request slots and
    completion piggybacking (§3.4).

    Each slot carries one {e batch} of values; the producer pushes a whole
    batch, the consumer reads it with {!peek} and advances the shared tail
    only after processing it ({!complete}), which doubles as the completion
    signal: the producer discovers finished batches by watching the tail
    ({!take_completed}) instead of receiving explicit completion messages.

    Control words (head, tail) live on separate simulated cache lines;
    slot payloads are charged at [value_bytes] per element. *)

type 'a t

val create :
  ?hw_offload:bool ->
  Mutps_mem.Layout.t ->
  name:string ->
  slots:int ->
  batch:int ->
  value_bytes:int ->
  'a t
(** [slots] is rounded up to a power of two; [batch] is the max values per
    slot.  With [hw_offload] (default false) the ring models an Intel
    DLB-style hardware queue (the paper's §6 future work): enqueues and
    dequeues cost a fixed device latency instead of cache-coherent memory
    traffic. *)

val hw_op_cycles : int
(** Fixed per-operation cost of the hardware-offloaded queue. *)

val slots : 'a t -> int
val batch : 'a t -> int

(** {1 Producer side} *)

val push : 'a t -> Mutps_mem.Env.t -> 'a array -> bool
(** Publish one batch; false when the ring is full (batch length must be in
    [\[1, batch\]]). *)

val take_completed : 'a t -> Mutps_mem.Env.t -> 'a array option
(** Next batch whose processing the consumer has signalled, in push order;
    [None] if none is newly complete. *)

val unreclaimed : 'a t -> int
(** Batches pushed whose completion has not been taken yet — purely
    producer-local bookkeeping, so checking it before polling the shared
    tail costs nothing. *)

(** {1 Consumer side} *)

val peek : 'a t -> Mutps_mem.Env.t -> 'a array option
(** Read the next unread batch (advances a consumer-local cursor, not the
    shared tail).  [None] when nothing new. *)

val complete : 'a t -> Mutps_mem.Env.t -> unit
(** Advance the shared tail over the oldest peeked-but-uncompleted batch.
    Must be called once per successful {!peek}, in order. *)

(** {1 Introspection} *)

val is_empty : 'a t -> bool
(** No batch pushed and not yet completed. *)

val in_flight : 'a t -> int
(** Batches pushed but not completed. *)
