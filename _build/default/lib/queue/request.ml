type kind = Get | Put | Delete | Scan

type t = {
  key : int64;
  kind : kind;
  size : int;
  buf : int;
  scan_count : int;
}

(* Second word layout (bits, LSB first):
   [0..1]   kind
   [2..23]  size        (22 bits, up to 4 MB - 1)
   [24..55] buf slot    (32 bits)
   [56..63] scan count / 256 marker — scans spill the count into the
            extension half, here kept in the record. *)

let max_size = (1 lsl 22) - 1
let max_buf = (1 lsl 32) - 1
let max_scan_count = 255

let validate t =
  if t.size < 0 || t.size > max_size then invalid_arg "Request: size out of range";
  if t.buf < 0 || t.buf > max_buf then invalid_arg "Request: buf out of range";
  if t.scan_count < 0 || t.scan_count > max_scan_count then
    invalid_arg "Request: scan count out of range";
  t

let get ~key ~buf = validate { key; kind = Get; size = 0; buf; scan_count = 0 }

let put ~key ~size ~buf =
  validate { key; kind = Put; size; buf; scan_count = 0 }

let delete ~key ~buf =
  validate { key; kind = Delete; size = 0; buf; scan_count = 0 }

let scan ~key ~count ~buf =
  validate { key; kind = Scan; size = 0; buf; scan_count = count }

let wire_bytes t = match t.kind with Scan -> 32 | Get | Put | Delete -> 16

let kind_code = function Get -> 0 | Put -> 1 | Delete -> 2 | Scan -> 3
let kind_of_code = function
  | 0 -> Get
  | 1 -> Put
  | 2 -> Delete
  | 3 -> Scan
  | c -> invalid_arg (Printf.sprintf "Request.decode: bad kind %d" c)

let encode t =
  ignore (validate t);
  let open Int64 in
  let meta =
    logor
      (of_int (kind_code t.kind))
      (logor
         (shift_left (of_int t.size) 2)
         (logor
            (shift_left (of_int t.buf) 24)
            (shift_left (of_int t.scan_count) 56)))
  in
  (t.key, meta)

let decode (key, meta) =
  let open Int64 in
  let kind = kind_of_code (to_int (logand meta 3L)) in
  let size = to_int (logand (shift_right_logical meta 2) (of_int max_size)) in
  let buf = to_int (logand (shift_right_logical meta 24) 0xFFFFFFFFL) in
  let scan_count = to_int (logand (shift_right_logical meta 56) 0xFFL) in
  validate { key; kind; size; buf; scan_count }

let pp fmt t =
  let k =
    match t.kind with
    | Get -> "get"
    | Put -> "put"
    | Delete -> "del"
    | Scan -> "scan"
  in
  Format.fprintf fmt "%s(key=%Ld size=%d buf=%d scan=%d)" k t.key t.size t.buf
    t.scan_count

let equal a b =
  Int64.equal a.key b.key && a.kind = b.kind && a.size = b.size
  && a.buf = b.buf && a.scan_count = b.scan_count
