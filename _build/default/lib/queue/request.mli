(** Compact requests exchanged between the cache- and memory-resident
    layers (§3.4).

    Point operations pack into 16 bytes: an 8-byte key (larger keys are
    hashed to 8 bytes upstream), 2-bit type, size, and a 32-bit network
    buffer slot index.  Range queries carry the scan bound and count and
    take a second 16-byte half (§4); they are rare, so the extra width is
    negligible.  [encode]/[decode] implement the real bit packing so the
    wire format is testable, even though the simulator passes records. *)

type kind = Get | Put | Delete | Scan

type t = {
  key : int64;
  kind : kind;
  size : int;  (** value size in bytes (0 for get/delete) *)
  buf : int;  (** network-buffer slot index this request came from / responds to *)
  scan_count : int;  (** items to return; scan only *)
}

val get : key:int64 -> buf:int -> t
val put : key:int64 -> size:int -> buf:int -> t
val delete : key:int64 -> buf:int -> t
val scan : key:int64 -> count:int -> buf:int -> t

val wire_bytes : t -> int
(** 16 for point ops, 32 for scans. *)

val max_size : int
(** Largest encodable value size. *)

val max_buf : int
val max_scan_count : int

val encode : t -> int64 * int64
val decode : int64 * int64 -> t

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
