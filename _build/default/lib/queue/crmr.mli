(** The CR-MR queue: an all-to-all mesh of SPSC rings between
    cache-resident and memory-resident worker threads (§3.4).

    Every (CR thread, MR thread) pair owns a dedicated {!Ring}; CR threads
    spread batches over MR threads round-robin, MR threads scan the rings of
    all CR threads round-robin.  The mesh is sized for the machine's maximum
    thread counts so that reconfiguration (§3.5) only changes the {e active}
    counts passed to each call. *)

type 'a t

val create :
  ?hw_offload:bool ->
  Mutps_mem.Layout.t ->
  max_cr:int ->
  max_mr:int ->
  slots:int ->
  batch:int ->
  value_bytes:int ->
  'a t
(** [hw_offload] models Intel DLB (the paper's §6 future work): fixed
    device-latency queue operations instead of cache-coherent rings. *)

val max_cr : 'a t -> int
val max_mr : 'a t -> int

val push : 'a t -> Mutps_mem.Env.t -> cr:int -> targets:int array -> 'a array -> bool
(** Push a batch from CR thread [cr] to the next MR thread of [targets] in
    round-robin order, skipping full rings; false when all target rings are
    full.  [targets] holds absolute MR indices, so reconfiguration only
    changes the array contents, never the ring a given pair uses. *)

val next_batch :
  'a t -> Mutps_mem.Env.t -> mr:int -> sources:int array -> (int * 'a array) option
(** One-shot scan (§3.2.3 non-blocking poll) over the rings of the given
    CR threads feeding MR thread [mr], starting after the last served ring;
    returns the producing CR id with the batch. *)

val complete : 'a t -> Mutps_mem.Env.t -> cr:int -> mr:int -> unit
(** Signal that the oldest peeked batch of ring [(cr, mr)] is fully
    processed (advances the ring tail — the completion piggyback). *)

val take_completed : 'a t -> Mutps_mem.Env.t -> cr:int -> 'a array option
(** CR-side completion poll: next finished batch on any of [cr]'s rings
    (scans the whole mesh row so batches stranded by a reconfiguration are
    still reaped). *)

val cr_drained : 'a t -> cr:int -> bool
(** True when CR thread [cr] has no batch in flight on any ring. *)

val mr_drained : 'a t -> mr:int -> bool
val in_flight : 'a t -> int
