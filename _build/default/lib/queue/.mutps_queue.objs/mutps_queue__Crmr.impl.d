lib/queue/crmr.ml: Array Mutps_mem Printf Ring
