lib/queue/ring.mli: Mutps_mem
