lib/queue/request.mli: Format
