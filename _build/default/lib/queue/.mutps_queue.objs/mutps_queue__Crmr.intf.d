lib/queue/crmr.mli: Mutps_mem
