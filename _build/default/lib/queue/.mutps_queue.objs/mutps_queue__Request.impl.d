lib/queue/request.ml: Format Int64 Printf
