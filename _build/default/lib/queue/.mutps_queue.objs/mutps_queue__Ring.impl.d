lib/queue/ring.ml: Array Mutps_mem Mutps_sim
