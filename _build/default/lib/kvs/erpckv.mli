(** eRPC-KV (§5.1): BaseKV with the RPC module replaced by an eRPC-style
    per-thread transport and a share-nothing architecture that directs
    requests to worker threads by key mod n (no locks on the data path,
    but skew concentrates load on few workers). *)

type t

val create : Config.t -> t
val backend : t -> Backend.t
val transport : t -> Mutps_net.Transport.t

val dispatch : t -> Mutps_workload.Opgen.op -> int
(** The client-side key mod n dispatch function. *)

val start : t -> unit
val ops_processed : t -> int
