(** Passive (one-sided RDMA) KVS baselines: RaceHashing and Sherman (§5.1).

    These systems bypass the server CPU entirely; clients walk the remote
    structure with one-sided verbs.  Their throughput is therefore governed
    by the NIC — verbs per operation against the NIC message-rate cap,
    bytes per operation against link bandwidth — and by the client count
    against the multi-RTT latency of each operation.  We model exactly
    that: a closed-form closed-loop model over the same {!Mutps_net.Link}
    parameters the active systems use, with verb counts taken from the
    papers ([RaceHash]: bucket read + item read for gets, plus CAS for
    puts; [Sherman]: client-cached internal nodes, leaf read + item, lock +
    write-back + unlock for puts). *)

type system = Racehash | Sherman

val name : system -> string

type result = {
  throughput_mops : float;
  p50_latency_ns : float;
  verbs_per_op : float;
  bytes_per_op : float;
  bottleneck : string;  (** "nic-rate" | "bandwidth" | "clients" *)
}

val evaluate :
  ?link:Mutps_net.Link.config ->
  ?ghz:float ->
  system ->
  spec:Mutps_workload.Opgen.spec ->
  clients:int ->
  result
(** [clients] counts client threads, each with one outstanding op. *)
