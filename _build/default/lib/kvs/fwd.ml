(** Unit of CR→MR forwarding: the compact request plus completion fields
    the MR layer fills in.  Responses travel back by tail-pointer piggyback
    (§3.4): the MR thread never posts to the NIC, it records where in the
    CR worker's response buffer it put the data and the CR thread posts the
    send after reaping the completed batch. *)

type t = {
  seq : int;  (** rx slot sequence (the 32-bit [buf] field) *)
  cr : int;  (** owning CR worker (response buffer owner) *)
  msg : Mutps_net.Message.t;
  prefix : (int64 * Mutps_store.Item.t) list;
      (** scan cooperation: entries the CR layer already copied *)
  mutable resp_addr : int;
  mutable resp_bytes : int;
  mutable resp_value : bytes option;
}

let make ~seq ~cr ~msg ~prefix =
  { seq; cr; msg; prefix; resp_addr = 0; resp_bytes = 0; resp_value = None }

(* 16 bytes on the CR-MR ring for point ops, 32 for scans (§4) *)
let ring_bytes = 16
