lib/kvs/passive.mli: Mutps_net Mutps_workload
