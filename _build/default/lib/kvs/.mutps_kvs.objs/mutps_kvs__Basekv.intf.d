lib/kvs/basekv.mli: Backend Config Mutps_net
