lib/kvs/mutps.ml: Array Backend Bytes Config Exec Fun Fwd Hashtbl List Mutps_hotset Mutps_index Mutps_mem Mutps_net Mutps_queue Mutps_sim Mutps_store Option Printf
