lib/kvs/autotuner.ml: Backend Config Float Hashtbl List Mutps Mutps_mem Mutps_sim
