lib/kvs/backend.ml: Config Int64 Mutps_index Mutps_mem Mutps_net Mutps_sim Mutps_store
