lib/kvs/passive.ml: Float Mutps_net Mutps_workload
