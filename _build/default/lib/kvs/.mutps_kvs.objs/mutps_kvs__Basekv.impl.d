lib/kvs/basekv.ml: Array Backend Config Exec Mutps_net Rtc
