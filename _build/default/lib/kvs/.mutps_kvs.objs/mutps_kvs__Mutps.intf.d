lib/kvs/mutps.mli: Backend Config Mutps_net
