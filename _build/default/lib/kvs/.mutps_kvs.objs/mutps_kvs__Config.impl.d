lib/kvs/config.ml: Float Format Mutps_mem Mutps_net
