lib/kvs/autotuner.mli: Mutps
