lib/kvs/rtc.ml: Array Backend Config Exec Hashtbl List Mutps_index Mutps_mem Mutps_net Mutps_queue Mutps_sim Mutps_store Option Printf
