lib/kvs/erpckv.ml: Array Backend Config Exec Mutps_net Rtc
