lib/kvs/exec.ml: Bytes List Mutps_index Mutps_mem Mutps_net Mutps_queue Mutps_store
