lib/kvs/fwd.ml: Mutps_net Mutps_store
