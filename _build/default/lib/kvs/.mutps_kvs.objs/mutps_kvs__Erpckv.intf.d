lib/kvs/erpckv.mli: Backend Config Mutps_net Mutps_workload
