(** Shared server substrate: one simulated machine (engine + hierarchy +
    address layout), the item store, the index, and the network link.
    Every system (μTPS-H/T, BaseKV, eRPC-KV) is assembled on top of one of
    these. *)

module Engine = Mutps_sim.Engine
module Hierarchy = Mutps_mem.Hierarchy
module Layout = Mutps_mem.Layout
module Slab = Mutps_store.Slab
module Item = Mutps_store.Item
module Index = Mutps_index.Index_intf

type t = {
  config : Config.t;
  engine : Engine.t;
  hier : Hierarchy.t;
  layout : Layout.t;
  slab : Slab.t;
  index : Index.t;
  link : Mutps_net.Link.t;
}

let create (config : Config.t) =
  let engine = Engine.create () in
  let geometry =
    match config.Config.geometry with
    | Some g -> g
    | None -> Hierarchy.default_geometry ~cores:(Config.total_cores config)
  in
  let hier = Hierarchy.create ~costs:config.Config.costs geometry in
  let layout = Layout.create () in
  let slab = Slab.create layout () in
  let index =
    match config.Config.index with
    | Config.Hash ->
      Mutps_index.Cuckoo.ops
        (Mutps_index.Cuckoo.create layout ~capacity:config.Config.capacity
           ~seed:config.Config.seed)
    | Config.Tree ->
      Mutps_index.Btree.ops
        (Mutps_index.Btree.create layout ~seed:config.Config.seed)
  in
  let link = Mutps_net.Link.create ~config:config.Config.link () in
  { config; engine; hier; layout; slab; index; link }

(** Pre-populate the store with every key in [0, keyspace) (silent: no
    simulation charges, like a load phase before measurement).  [size_of]
    overrides the per-key value size for mixed-size workloads (ETC,
    Twitter); default is the fixed [value_size]. *)
let populate ?size_of t ~keyspace ~value_size =
  let size_of = match size_of with Some f -> f | None -> fun _ -> value_size in
  for k = 0 to keyspace - 1 do
    let key = Int64.of_int k in
    let value = Mutps_net.Client.payload ~key ~size:(size_of key) in
    let item = Item.create t.slab ~value in
    t.index.Index.insert_silent key item
  done
