module Link = Mutps_net.Link
module Opgen = Mutps_workload.Opgen

type system = Racehash | Sherman

let name = function Racehash -> "racehash" | Sherman -> "sherman"

type result = {
  throughput_mops : float;
  p50_latency_ns : float;
  verbs_per_op : float;
  bytes_per_op : float;
  bottleneck : string;
}

(* Per-op verb counts and wire bytes.  Gets and puts differ; scans are not
   supported by either passive design in the paper's evaluation. *)
let op_profile system ~mean_value =
  let bucket = 64.0 (* RACE bucket / combined read granularity *) in
  let leaf = 1024.0 (* Sherman leaf node *) in
  match system with
  | Racehash ->
    (* get: bucket-read + item-read; put: bucket-read + item-write + CAS *)
    let get_verbs = 2.0 and put_verbs = 3.0 in
    let get_bytes = bucket +. mean_value and put_bytes = bucket +. mean_value +. 8.0 in
    ((get_verbs, get_bytes), (put_verbs, put_bytes))
  | Sherman ->
    (* internal nodes cached at the client: get = leaf read (+ inline
       item); put = lock CAS + write-back + unlock *)
    let get_verbs = 1.25 (* occasional cache miss re-read *) in
    let put_verbs = 3.0 in
    let get_bytes = leaf and put_bytes = leaf +. 16.0 in
    ((get_verbs, get_bytes), (put_verbs, put_bytes))

let evaluate ?(link = Link.default_config) ?(ghz = 2.5) system ~spec ~clients =
  if clients <= 0 then invalid_arg "Passive.evaluate";
  let mean_value = Opgen.mean_value_size spec in
  let (get_verbs, get_bytes), (put_verbs, put_bytes) =
    op_profile system ~mean_value
  in
  let mix = spec.Opgen.mix in
  let get_frac = mix.Opgen.get and put_frac = mix.Opgen.put in
  let norm = Float.max (get_frac +. put_frac) 1e-9 in
  let verbs =
    ((get_frac *. get_verbs) +. (put_frac *. put_verbs)) /. norm
  in
  let bytes =
    ((get_frac *. get_bytes) +. (put_frac *. put_bytes)) /. norm
  in
  (* each verb is a full round trip issued sequentially by the client *)
  let cycles_per_op_client =
    verbs *. (float_of_int link.Link.rtt +. float_of_int link.Link.msg_gap)
  in
  let client_bound = float_of_int clients /. cycles_per_op_client in
  (* NIC message-rate cap: every verb consumes a request and a response
     message slot *)
  let nic_rate = 1.0 /. float_of_int link.Link.msg_gap in
  let nic_bound = nic_rate /. verbs in
  (* bandwidth cap on the data actually moved *)
  let bw_bound = 1.0 /. (bytes *. link.Link.cycles_per_byte) in
  let ops_per_cycle = Float.min client_bound (Float.min nic_bound bw_bound) in
  let bottleneck =
    if ops_per_cycle = client_bound then "clients"
    else if ops_per_cycle = nic_bound then "nic-rate"
    else "bandwidth"
  in
  (* latency: service time plus queueing once saturated *)
  let base_latency = cycles_per_op_client in
  let queue_factor =
    Float.max 1.0 (client_bound /. Float.max ops_per_cycle 1e-18)
  in
  {
    throughput_mops = ops_per_cycle *. ghz *. 1e3;
    p50_latency_ns = base_latency *. queue_factor /. ghz;
    verbs_per_op = verbs;
    bytes_per_op = bytes;
    bottleneck;
  }
