(** The μTPS in-memory KVS (§3): worker threads split into a cache-resident
    (CR) layer — request polling/parsing, hot-item service, responses — and
    a memory-resident (MR) layer — full index, batched prefetch traversal,
    data copies — connected by the CR-MR queue.

    [set_split] implements §3.5's thread reassignment: the transport is
    switched at a predefined slot and each thread migrates between roles
    without losing messages; [set_hot_target] resizes the hot cache at the
    next refresh; [set_mr_ways] reallocates LLC ways (CAT).  With the
    Hash index configuration this is μTPS-H, with Tree it is μTPS-T. *)

type t

val create : ?ncr:int -> Config.t -> t
(** [ncr] is the initial cache-resident thread count (default:
    cores / 4, at least 1, leaving at least one MR thread). *)

val backend : t -> Backend.t
val transport : t -> Mutps_net.Transport.t

val start : t -> unit
(** Spawn the worker threads and the manager thread.  Call after
    pre-population. *)

(** {1 Observability} *)

val ncr : t -> int
val nmr : t -> int
val hot_target : t -> int
val hot_size : t -> int
val mr_ways : t -> int
val cr_hits : t -> int
(** Requests served entirely at the cache-resident layer. *)

val forwarded : t -> int

val layer_stats : t -> int * int * int * int
(** [(cr_busy_cycles, mr_busy_cycles, mr_ops, mr_batches)]: diagnostic
    accounting of where worker time goes. *)

val responded : t -> int
(** Responses posted (server-side throughput signal). *)

val reconfig_settled : t -> bool
(** No thread is between roles and the transport switch is committed. *)

(** {1 Reconfiguration (§3.5)} *)

val set_split : t -> ncr:int -> unit
(** Retarget to [ncr] CR threads; must leave at least one thread per
    layer. *)

val set_hot_target : t -> int -> unit
(** Number of hot items to cache (0 disables the hot path; applied at the
    next hot-set refresh). *)

val refresh_now : t -> unit
(** Ask the manager to refresh the hot set at its next wakeup rather than
    waiting a full period. *)

val set_mr_ways : t -> int -> unit
(** LLC ways the memory-resident layer may allocate into (the
    cache-resident layer always keeps every way, per the paper's offline
    profiling). *)
