(** The auto-tuner (§3.5): a feedback loop over server throughput that
    hierarchically searches the reconfiguration space.

    For each candidate hot-set size (linear probe with a fixed step — cache
    resizing is not unimodal), it trisects the thread allocation between the
    CR and MR layers (throughput is convex in the split); LLC way allocation
    is trisected independently afterwards.  Every measurement is one
    [window] of simulated time watching the responded counter.

    The tuner runs as a simulated thread.  [spawn] installs it; tuning is
    triggered explicitly ({!trigger}) or automatically when the monitored
    throughput shifts by more than [auto_threshold] between windows. *)

type params = {
  window : int;  (** cycles per throughput measurement (paper: 10 ms) *)
  settle : int;  (** cycles to wait after applying a setting *)
  cache_step : int;  (** hot-set size step of the linear probe *)
  cache_points : int;  (** number of hot-set sizes probed (incl. 0) *)
  auto_threshold : float;
      (** relative throughput change between consecutive windows that
          triggers retuning; [infinity] disables auto-triggering *)
}

val default_params : params

type event = {
  at : int;  (** simulated time of the measurement *)
  ncr : int;
  hot : int;
  ways : int;
  rate : float;  (** measured ops/cycle *)
}

type t

val create : ?params:params -> Mutps.t -> t
val params : t -> params

val spawn : t -> unit
(** Start the tuner thread on the manager core's engine. *)

val trigger : t -> unit
(** Request a full tuning pass at the next wakeup. *)

val tuning : t -> bool
val tunes_completed : t -> int

val events : t -> event list
(** Measurement log, oldest first (the Figure 14 timeline). *)

val last_applied : t -> (int * int * int) option
(** [(ncr, hot, ways)] chosen by the most recent completed pass. *)
