(** BaseKV (§5.1): identical substrate to μTPS — reconfigurable RPC,
    batching, prefetching, same index and store — but a run-to-completion
    thread pool with share-everything locking. *)

type t

val create : Config.t -> t
val backend : t -> Backend.t
val transport : t -> Mutps_net.Transport.t

val start : t -> unit
(** Spawn one RTC worker per core.  Call after pre-population. *)

val ops_processed : t -> int
