(** Server configuration shared by every system (μTPS, BaseKV, eRPC-KV).

    The simulated machine gets [cores + 1] cores: [cores] worker cores (the
    paper's 28) plus one housekeeping core for the management/auto-tuning
    thread, which all systems receive for fairness even when they leave it
    idle. *)

type index_kind = Hash | Tree

type t = {
  cores : int;  (** worker cores *)
  index : index_kind;
  capacity : int;  (** expected item count (sizes the index) *)
  geometry : Mutps_mem.Hierarchy.geometry option;
      (** cache geometry override; [None] = the testbed's 42 MB LLC.
          Scaled-down experiments shrink the LLC to keep the paper's
          footprint-to-LLC ratio (a 10M-item store vs 42 MB). *)
  costs : Mutps_mem.Costs.t;
  link : Mutps_net.Link.config;
  parse_cycles : int;  (** request header parse / dispatch *)
  rtc_extra_cycles : int;
      (** per-request front-end overhead of run-to-completion workers: the
          monolithic poll→index→copy→respond function blows the
          instruction cache, branch predictors and prefetcher state that
          μTPS's small stage loops keep warm.  §2.2.1's replay experiment
          measures stage separation alone at 1.22-1.54× on ~500-cycle
          operations, i.e. 110-270 cycles; we use 150 (60 ns at 2.5 GHz).
          Set to 0 to ablate. *)
  poll_idle_cycles : int;  (** backoff when a poll finds nothing *)
  batch : int;  (** CR-MR batch size; also the RTC pipeline batch *)
  flush_cycles : int;
      (** max time a partially filled CR-MR batch may wait before being
          pushed (bounds queueing latency at low load without giving up
          batching at saturation) *)
  crmr_slots : int;  (** ring slots per CR-MR pair *)
  dlb : bool;
      (** offload the CR-MR queue to an Intel DLB-style hardware queue —
          the paper's §6 future work, kept as an opt-in ablation *)
  hot_k : int;  (** hot-cache capacity (items) *)
  sample_every : int;  (** hot-set sampling rate *)
  refresh_cycles : int;  (** hot-set refresh period *)
  seed : int;
}

let default ?(cores = 8) ?(index = Tree) ~capacity () =
  {
    cores;
    index;
    capacity;
    geometry = None;
    costs = Mutps_mem.Costs.default;
    link = Mutps_net.Link.default_config;
    parse_cycles = 30;
    rtc_extra_cycles = 150;
    poll_idle_cycles = 120;
    batch = 8;
    flush_cycles = 4_000;
    crmr_slots = 16;
    dlb = false;
    hot_k = 10_000;
    sample_every = 16;
    (* 20 ms at 2.5 GHz *)
    refresh_cycles = 50_000_000;
    seed = 42;
  }

let total_cores t = t.cores + 1
let manager_core t = t.cores

(** Cache geometry scaled to a store of [keyspace] items: the paper runs
    10M items against a 42 MB LLC (~70× overflow); a scaled run keeps that
    pressure by shrinking LLC and L2 proportionally (LLC floor 2 MB). *)
let scaled_geometry ~cores ~keyspace =
  let g = Mutps_mem.Hierarchy.default_geometry ~cores:(cores + 1) in
  let factor = Float.max 0.05 (float_of_int keyspace /. 10_000_000.0) in
  let scale sets floor =
    max floor (int_of_float (float_of_int sets *. factor))
  in
  {
    g with
    Mutps_mem.Hierarchy.llc_sets = scale g.Mutps_mem.Hierarchy.llc_sets 2_730;
    l2_sets = scale g.Mutps_mem.Hierarchy.l2_sets 128;
  }

let pp_index fmt = function
  | Hash -> Format.pp_print_string fmt "hash"
  | Tree -> Format.pp_print_string fmt "tree"
