(** Latency histograms, counters, and time-windowed throughput series. *)

(** {1 Log-bucketed latency histogram} *)

module Hist : sig
  type t

  val create : unit -> t

  val add : t -> int -> unit
  (** Record one sample (e.g. a latency in cycles or nanoseconds).
      Negative samples are clamped to 0. *)

  val count : t -> int
  val mean : t -> float

  val percentile : t -> float -> int
  (** [percentile t p] with [p] in [\[0, 100\]]: an upper bound on the value
      below which [p]% of the samples fall (bucket resolution is ~1%). *)

  val max_value : t -> int
  val merge_into : src:t -> dst:t -> unit
  val clear : t -> unit
end

(** {1 Windowed throughput monitor} *)

module Monitor : sig
  type t

  val create : window:int -> t
  (** [window] is the window length in cycles. *)

  val record : t -> now:int -> int -> unit
  (** [record t ~now n] accounts [n] completed operations at time [now]. *)

  val total : t -> int
  (** Operations recorded since creation. *)

  val windows : t -> (int * int) list
  (** Closed windows as [(window_start_cycle, ops)] in time order. *)

  val current_rate : t -> now:int -> float
  (** Throughput (ops/cycle) over the most recently closed window, or over
      the open window if none closed yet. *)
end

(** {1 Helpers} *)

val mops : ops:int -> cycles:int -> ghz:float -> float
(** Throughput in million operations per second given a cycle budget and the
    simulated clock frequency. *)
