(* Position of the highest set bit of [n > 0], counting from the LSB. *)
let msb_pos n =
  let n = ref n and p = ref 0 in
  if !n >= 1 lsl 32 then begin p := !p + 32; n := !n lsr 32 end;
  if !n >= 1 lsl 16 then begin p := !p + 16; n := !n lsr 16 end;
  if !n >= 1 lsl 8 then begin p := !p + 8; n := !n lsr 8 end;
  if !n >= 1 lsl 4 then begin p := !p + 4; n := !n lsr 4 end;
  if !n >= 1 lsl 2 then begin p := !p + 2; n := !n lsr 2 end;
  if !n >= 2 then incr p;
  !p

let clz n = if n = 0 then 63 else 62 - msb_pos n

let popcount n =
  let c = ref 0 and n = ref n in
  while !n <> 0 do
    n := !n land (!n - 1);
    incr c
  done;
  !c

let log2_ceil n =
  if n <= 0 then invalid_arg "Bits.log2_ceil";
  let k = ref 0 in
  while 1 lsl !k < n do
    incr k
  done;
  !k

let is_pow2 n = n > 0 && n land (n - 1) = 0
let lowest_set n = n land (-n)
