(** Deterministic pseudo-random number generation (splitmix64).

    Every stochastic component of the simulator takes an explicit [Rng.t] so
    that a run is reproducible from its seed alone.  [split] derives an
    independent stream, which lets concurrent simulated threads draw numbers
    without perturbing each other. *)

type t

val create : int -> t
(** [create seed] makes a generator from a 63-bit seed. *)

val split : t -> t
(** Derive an independent generator; advances [t] once. *)

val copy : t -> t
(** A generator that will produce the same future stream as [t]. *)

val bits64 : t -> int64
(** Next raw 64 random bits. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)].  [n] must be positive. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> bool

val hash64 : int64 -> int64
(** Stateless splitmix64 finalizer: a high-quality 64-bit mixing hash, used
    for key scrambling. *)
