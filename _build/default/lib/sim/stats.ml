module Hist = struct
  (* HdrHistogram-style layout: values are bucketed with ~1.5% relative
     error using (exponent, 6-bit mantissa) pairs.  64 sub-buckets per
     power of two, 48 powers of two. *)

  let sub_bits = 6
  let sub = 1 lsl sub_bits
  let n_buckets = 48 * sub

  type t = {
    buckets : int array;
    mutable count : int;
    mutable sum : float;
    mutable max_v : int;
  }

  let create () = { buckets = Array.make n_buckets 0; count = 0; sum = 0.0; max_v = 0 }

  let index_of v =
    if v < sub then v
    else begin
      let msb = 62 - Bits.clz v in
      (* top sub_bits+1 bits: exponent block + mantissa *)
      let shift = msb - sub_bits in
      let mantissa = (v lsr shift) - sub in
      let idx = ((shift + 1) * sub) + mantissa in
      min idx (n_buckets - 1)
    end

  (* Lower edge of bucket [i]; used to report percentiles. *)
  let value_of i =
    if i < sub then i
    else begin
      let block = (i / sub) - 1 in
      let mantissa = i mod sub in
      (sub + mantissa) lsl block
    end

  let add t v =
    let v = if v < 0 then 0 else v in
    let i = index_of v in
    t.buckets.(i) <- t.buckets.(i) + 1;
    t.count <- t.count + 1;
    t.sum <- t.sum +. float_of_int v;
    if v > t.max_v then t.max_v <- v

  let count t = t.count
  let mean t = if t.count = 0 then 0.0 else t.sum /. float_of_int t.count
  let max_value t = t.max_v

  let percentile t p =
    if t.count = 0 then 0
    else begin
      let target = int_of_float (ceil (p /. 100.0 *. float_of_int t.count)) in
      let target = if target < 1 then 1 else target in
      let acc = ref 0 and result = ref 0 in
      (try
         for i = 0 to n_buckets - 1 do
           acc := !acc + t.buckets.(i);
           if !acc >= target then begin
             result := value_of i;
             raise Exit
           end
         done
       with Exit -> ());
      (* report the bucket's lower edge, capped by the true max *)
      if !result > t.max_v then t.max_v else !result
    end

  let merge_into ~src ~dst =
    for i = 0 to n_buckets - 1 do
      dst.buckets.(i) <- dst.buckets.(i) + src.buckets.(i)
    done;
    dst.count <- dst.count + src.count;
    dst.sum <- dst.sum +. src.sum;
    if src.max_v > dst.max_v then dst.max_v <- src.max_v

  let clear t =
    Array.fill t.buckets 0 n_buckets 0;
    t.count <- 0;
    t.sum <- 0.0;
    t.max_v <- 0
end

module Monitor = struct
  type t = {
    window : int;
    mutable win_start : int;
    mutable win_ops : int;
    mutable total : int;
    mutable closed : (int * int) list; (* reverse order *)
  }

  let create ~window =
    if window <= 0 then invalid_arg "Monitor.create: window must be positive";
    { window; win_start = 0; win_ops = 0; total = 0; closed = [] }

  let rec roll t ~now =
    if now >= t.win_start + t.window then begin
      t.closed <- (t.win_start, t.win_ops) :: t.closed;
      t.win_start <- t.win_start + t.window;
      t.win_ops <- 0;
      roll t ~now
    end

  let record t ~now n =
    roll t ~now;
    t.win_ops <- t.win_ops + n;
    t.total <- t.total + n

  let total t = t.total
  let windows t = List.rev t.closed

  let current_rate t ~now =
    roll t ~now;
    match t.closed with
    | (_, ops) :: _ -> float_of_int ops /. float_of_int t.window
    | [] ->
      let elapsed = now - t.win_start in
      if elapsed <= 0 then 0.0 else float_of_int t.win_ops /. float_of_int elapsed
end

let mops ~ops ~cycles ~ghz =
  if cycles <= 0 then 0.0
  else
    let seconds = float_of_int cycles /. (ghz *. 1e9) in
    float_of_int ops /. seconds /. 1e6
