lib/sim/engine.ml: Array Printf
