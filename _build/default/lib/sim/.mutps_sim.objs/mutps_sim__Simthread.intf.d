lib/sim/simthread.mli: Engine
