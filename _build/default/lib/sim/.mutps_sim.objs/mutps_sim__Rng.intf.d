lib/sim/rng.mli:
