lib/sim/engine.mli:
