lib/sim/bits.mli:
