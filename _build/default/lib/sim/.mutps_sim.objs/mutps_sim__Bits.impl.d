lib/sim/bits.ml:
