lib/sim/simthread.ml: Effect Engine Queue
