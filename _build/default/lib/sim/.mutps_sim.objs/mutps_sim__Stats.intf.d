lib/sim/stats.mli:
