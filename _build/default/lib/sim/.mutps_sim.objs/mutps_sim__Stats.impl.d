lib/sim/stats.ml: Array Bits List
