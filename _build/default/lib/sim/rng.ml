type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let hash64 = mix

let create seed = { state = mix (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden;
  mix t.state

let split t = { state = bits64 t }
let copy t = { state = t.state }

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free for our purposes: modulo bias is negligible with 64-bit
     draws against the small bounds used in the simulator. *)
  let v = Int64.to_int (bits64 t) land max_int in
  v mod n

let float t =
  let v = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float v *. (1.0 /. 9007199254740992.0)

let bool t = Int64.logand (bits64 t) 1L = 1L
