(** Figure 7 — overall YCSB throughput grid: operation mixes × item sizes
    × index structures × systems.  Passive baselines (RaceHash for the
    hash half, Sherman for the tree half) come from the analytic NIC model
    in {!Mutps_kvs.Passive}. *)

module Ycsb = Mutps_workload.Ycsb
module Opgen = Mutps_workload.Opgen
module Kvs = Mutps_kvs

let mixes (scale : Harness.scale) size =
  let keyspace = scale.Harness.keyspace in
  [
    ("YCSB-A", Ycsb.a ~keyspace ~value_size:size ());
    ("YCSB-B", Ycsb.b ~keyspace ~value_size:size ());
    ("YCSB-C", Ycsb.c ~keyspace ~value_size:size ());
    ("PUT-S", Ycsb.put_only ~keyspace ~value_size:size ());
    ("GET-U", Ycsb.get_only_uniform ~keyspace ~value_size:size ());
    ("PUT-U", Ycsb.put_only_uniform ~keyspace ~value_size:size ());
  ]

let item_sizes = [ 8; 64; 256; 1024 ]

let passive_for index =
  match index with
  | Kvs.Config.Hash -> Kvs.Passive.Racehash
  | Kvs.Config.Tree -> Kvs.Passive.Sherman

let run_half scale index =
  (* the grid has 48 cells x 3 systems: shorten each cell's windows *)
  let scale =
    { scale with
      Harness.warmup = scale.Harness.warmup / 2;
      measure = scale.Harness.measure * 3 / 5 }
  in
  let index_name =
    match index with Kvs.Config.Tree -> "MassTree-analog (uTPS-T)" | Kvs.Config.Hash -> "libcuckoo-analog (uTPS-H)"
  in
  Harness.section (Printf.sprintf "Figure 7 (%s)" index_name);
  let passive_name = Kvs.Passive.name (passive_for index) in
  let table =
    Table.create
      [ "mix"; "size"; "uTPS"; "BaseKV"; "eRPC-KV"; passive_name; "uTPS/BaseKV" ]
  in
  List.iter
    (fun size ->
      List.iter
        (fun (mix_name, spec) ->
          let m_mutps = Harness.measure ~index Harness.Mutps scale spec in
          let m_base = Harness.measure ~index Harness.Basekv scale spec in
          let m_erpc = Harness.measure ~index Harness.Erpckv scale spec in
          let passive =
            (* passive systems do not support scans; YCSB has none here *)
            (Kvs.Passive.evaluate (passive_for index) ~spec
               ~clients:(scale.Harness.clients * scale.Harness.window))
              .Kvs.Passive.throughput_mops
          in
          Table.add_row table
            [
              mix_name;
              string_of_int size;
              Table.cell_f m_mutps.Harness.mops;
              Table.cell_f m_base.Harness.mops;
              Table.cell_f m_erpc.Harness.mops;
              Table.cell_f passive;
              Printf.sprintf "%.2fx"
                (m_mutps.Harness.mops /. Float.max m_base.Harness.mops 1e-9);
            ];
          Printf.printf ".%!")
        (mixes scale size))
    item_sizes;
  print_newline ();
  Table.print table

let run scale =
  run_half scale Kvs.Config.Tree;
  run_half scale Kvs.Config.Hash
