(** Figure 11 — scalability with worker threads (YCSB-A; 8 B and 256 B
    items; both indexes). *)

module Ycsb = Mutps_workload.Ycsb
module Kvs = Mutps_kvs

let run_cell scale ~index ~size =
  let scale =
    { scale with
      Harness.warmup = scale.Harness.warmup / 2;
      measure = scale.Harness.measure * 3 / 5 }
  in
  let index_name =
    match index with Kvs.Config.Tree -> "tree" | Kvs.Config.Hash -> "hash"
  in
  Harness.section
    (Printf.sprintf "Figure 11 (%s index, %dB items): scalability" index_name size);
  let spec = Ycsb.a ~keyspace:scale.Harness.keyspace ~value_size:size () in
  let table = Table.create [ "threads"; "uTPS"; "BaseKV"; "eRPC-KV" ] in
  let points =
    List.filter (fun n -> n <= scale.Harness.cores) [ 2; 4; 8; 12; 16; 20; 24; 28 ]
  in
  List.iter
    (fun threads ->
      let s = { scale with Harness.cores = threads } in
      let m = Harness.measure ~index Harness.Mutps s spec in
      let b = Harness.measure ~index Harness.Basekv s spec in
      let e = Harness.measure ~index Harness.Erpckv s spec in
      Table.add_row table
        [
          string_of_int threads;
          Table.cell_f m.Harness.mops;
          Table.cell_f b.Harness.mops;
          Table.cell_f e.Harness.mops;
        ])
    points;
  Table.print table

let run scale =
  List.iter
    (fun (index, size) -> run_cell scale ~index ~size)
    [
      (Kvs.Config.Tree, 8);
      (Kvs.Config.Tree, 256);
      (Kvs.Config.Hash, 8);
      (Kvs.Config.Hash, 256);
    ]
