(** Figure 10 — throughput vs P50/P99 latency as the client count grows
    (YCSB-A, 8 B items, both indexes). *)

module Ycsb = Mutps_workload.Ycsb
module Kvs = Mutps_kvs

let client_counts = [ 2; 8; 24; 64 ]

let run_half scale index =
  let index_name =
    match index with Kvs.Config.Tree -> "tree" | Kvs.Config.Hash -> "hash"
  in
  Harness.section
    (Printf.sprintf "Figure 10 (%s index): throughput vs latency" index_name);
  let spec = Ycsb.a ~keyspace:scale.Harness.keyspace ~value_size:8 () in
  let table =
    Table.create
      [
        "clients"; "system"; "Mops"; "P50 (us)"; "P99 (us)";
      ]
  in
  List.iter
    (fun clients ->
      let s = { scale with Harness.clients; window = 1 } in
      List.iter
        (fun (sys : Harness.system) ->
          let m = Harness.measure ~index sys s spec in
          Table.add_row table
            [
              string_of_int clients;
              Harness.system_name sys;
              Table.cell_f m.Harness.mops;
              Table.cell_f m.Harness.p50_us;
              Table.cell_f m.Harness.p99_us;
            ])
        [ Harness.Mutps; Harness.Basekv; Harness.Erpckv ])
    client_counts;
  Table.print table

let run scale =
  run_half scale Kvs.Config.Tree;
  run_half scale Kvs.Config.Hash
