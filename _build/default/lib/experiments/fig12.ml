(** Figure 12 — effect of the CR-MR batch size (YCSB-A, 8 B items): the
    batch size sets how many requests cross the CR-MR queue per slot and
    how many index operations are prefetch-overlapped together. *)

module Ycsb = Mutps_workload.Ycsb
module Kvs = Mutps_kvs

let batch_sizes = [ 1; 2; 4; 8; 12; 16; 20 ]

let run scale =
  let scale =
    { scale with
      Harness.warmup = scale.Harness.warmup / 2;
      measure = scale.Harness.measure * 3 / 5 }
  in
  Harness.section "Figure 12: effects of batching (YCSB-A, 8B items)";
  let spec = Ycsb.a ~keyspace:scale.Harness.keyspace ~value_size:8 () in
  let table = Table.create [ "batch"; "uTPS-T"; "uTPS-H" ] in
  let results =
    List.map
      (fun batch ->
        let tweak c = { c with Kvs.Config.batch } in
        let t = Harness.measure ~index:Kvs.Config.Tree ~tweak Harness.Mutps scale spec in
        let h = Harness.measure ~index:Kvs.Config.Hash ~tweak Harness.Mutps scale spec in
        Table.add_row table
          [
            string_of_int batch;
            Table.cell_f t.Harness.mops;
            Table.cell_f h.Harness.mops;
          ];
        (batch, t.Harness.mops, h.Harness.mops))
      batch_sizes
  in
  Table.print table;
  (match results with
  | (_, t1, h1) :: _ ->
    let tb = List.fold_left (fun acc (_, t, _) -> Float.max acc t) 0.0 results in
    let hb = List.fold_left (fun acc (_, _, h) -> Float.max acc h) 0.0 results in
    Printf.printf "best-vs-batch1: uTPS-T +%.1f%%  uTPS-H +%.1f%%\n%!"
      (100.0 *. ((tb /. Float.max t1 1e-9) -. 1.0))
      (100.0 *. ((hb /. Float.max h1 1e-9) -. 1.0))
  | [] -> ())
