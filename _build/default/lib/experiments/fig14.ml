(** Figure 14 — reacting to a dynamic workload: value size drops from
    512 B to 8 B mid-run; the auto-tuner detects the throughput shift,
    re-explores the configuration, and applies a better one with no
    downtime.  Prints the throughput timeline plus the tuner's settings
    over time. *)

module Engine = Mutps_sim.Engine
module Stats = Mutps_sim.Stats
module Ycsb = Mutps_workload.Ycsb
module Client = Mutps_net.Client
module Kvs = Mutps_kvs

let tuner_params =
  {
    Kvs.Autotuner.window = 2_500_000;
    settle = 500_000;
    cache_step = 512;
    cache_points = 3;
    auto_threshold = 0.30;
  }

let run scale =
  Harness.section
    "Figure 14: dynamic workload (value size 512B -> 8B), auto-tuner reacting";
  let keyspace = scale.Harness.keyspace in
  let spec_big = Ycsb.a ~keyspace ~value_size:512 () in
  let spec_small = Ycsb.a ~keyspace ~value_size:8 () in
  let built = Harness.build Harness.Mutps scale spec_big in
  let kv = Option.get built.Harness.kv_mutps in
  let tuner = Kvs.Autotuner.create ~params:tuner_params kv in
  Kvs.Autotuner.spawn tuner;
  let clients = Harness.start_clients built scale spec_big in
  let engine = built.Harness.engine in
  (* timeline: sample throughput every millisecond of simulated time *)
  let ms = 2_500_000 in
  let switch_at = 40 * ms in
  let total = 140 * ms in
  let samples = ref [] in
  let last_completed = ref 0 in
  let t = ref 0 in
  while !t < total do
    t := !t + ms;
    if !t = switch_at then Client.set_spec clients spec_small;
    Engine.run engine ~until:!t;
    let c = Client.completed clients in
    samples := (!t / ms, c - !last_completed) :: !samples;
    last_completed := c
  done;
  let table =
    Table.create [ "ms"; "Mops"; "ncr"; "hot target"; "mr ways"; "tuning?" ]
  in
  (* replay settings history against the sample timeline *)
  let events = Kvs.Autotuner.events tuner in
  List.iter
    (fun (ms_i, ops) ->
      let at = ms_i * ms in
      let setting =
        List.fold_left
          (fun acc (e : Kvs.Autotuner.event) ->
            if e.Kvs.Autotuner.at <= at then Some e else acc)
          None events
      in
      let ncr, hot, ways =
        match setting with
        | Some e -> (e.Kvs.Autotuner.ncr, e.Kvs.Autotuner.hot, e.Kvs.Autotuner.ways)
        | None -> (Kvs.Mutps.ncr kv, Kvs.Mutps.hot_target kv, Kvs.Mutps.mr_ways kv)
      in
      if ms_i mod 4 = 0 then
        Table.add_row table
          [
            string_of_int ms_i;
            Table.cell_f (Stats.mops ~ops ~cycles:ms ~ghz:2.5);
            string_of_int ncr;
            string_of_int hot;
            string_of_int ways;
            (if ms_i * ms > switch_at && Kvs.Autotuner.tunes_completed tuner = 0
             then "yes" else "");
          ])
    (List.rev !samples);
  Table.print table;
  Printf.printf "workload switch at %d ms; tuner passes completed: %d\n%!"
    (switch_at / ms)
    (Kvs.Autotuner.tunes_completed tuner);
  match Kvs.Autotuner.last_applied tuner with
  | Some (ncr, hot, ways) ->
    Printf.printf "final config: ncr=%d hot=%d mr_ways=%d\n%!" ncr hot ways
  | None -> Printf.printf "tuner did not complete a pass\n%!"
