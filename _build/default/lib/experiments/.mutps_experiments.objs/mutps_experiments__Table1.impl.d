lib/experiments/table1.ml: Harness List Mutps_queue Mutps_workload Printf Table
