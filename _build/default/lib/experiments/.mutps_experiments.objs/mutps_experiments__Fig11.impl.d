lib/experiments/fig11.ml: Harness List Mutps_kvs Mutps_workload Printf Table
