lib/experiments/fig10.ml: Harness List Mutps_kvs Mutps_workload Printf Table
