lib/experiments/fig14.ml: Harness List Mutps_kvs Mutps_net Mutps_sim Mutps_workload Option Printf Table
