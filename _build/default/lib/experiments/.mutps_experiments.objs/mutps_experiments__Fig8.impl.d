lib/experiments/fig8.ml: Float Harness List Mutps_kvs Mutps_workload Printf Table
