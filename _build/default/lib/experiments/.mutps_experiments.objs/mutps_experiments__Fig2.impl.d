lib/experiments/fig2.ml: Array Float Harness Int64 List Mutps_index Mutps_kvs Mutps_mem Mutps_net Mutps_queue Mutps_sim Mutps_store Mutps_workload Printf Table
