lib/experiments/harness.ml: Fun List Mutps_kvs Mutps_mem Mutps_net Mutps_sim Mutps_workload Printf Sys
