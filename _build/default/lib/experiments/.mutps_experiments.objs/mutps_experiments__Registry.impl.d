lib/experiments/registry.ml: Fig10 Fig11 Fig12 Fig13 Fig14 Fig2 Fig7 Fig8 Fig9 Harness List Table1
