(** Experiment registry: every table and figure of the paper's evaluation,
    runnable by name. *)

type entry = {
  name : string;
  description : string;
  run : Harness.scale -> unit;
}

val all : entry list
val find : string -> entry option
val names : unit -> string list
