(** Figure 9 — throughput on the three Twitter cache traces of Table 1. *)

module Twitter = Mutps_workload.Twitter
module Kvs = Mutps_kvs

let run scale =
  Harness.section "Figure 9: Twitter traces";
  let table =
    Table.create
      [ "trace"; "uTPS-T"; "BaseKV"; "eRPC-KV"; "uTPS/BaseKV"; "uTPS/eRPC" ]
  in
  List.iter
    (fun cluster ->
      let spec = Twitter.spec ~keyspace:scale.Harness.keyspace cluster in
      let m = Harness.measure Harness.Mutps scale spec in
      let b = Harness.measure Harness.Basekv scale spec in
      let e = Harness.measure Harness.Erpckv scale spec in
      Table.add_row table
        [
          Twitter.name cluster;
          Table.cell_f m.Harness.mops;
          Table.cell_f b.Harness.mops;
          Table.cell_f e.Harness.mops;
          Printf.sprintf "%.2fx" (m.Harness.mops /. Float.max b.Harness.mops 1e-9);
          Printf.sprintf "%.2fx" (m.Harness.mops /. Float.max e.Harness.mops 1e-9);
        ])
    Twitter.all;
  Table.print table
