(** Figure 8 — (a) scan throughput (YCSB-E and scan-only, range 50, 8 B
    items, tree index); (b)(c) Meta ETC pool at 10/50/90% get ratios. *)

module Ycsb = Mutps_workload.Ycsb
module Etc = Mutps_workload.Etc
module Kvs = Mutps_kvs

let run_8a scale =
  Harness.section "Figure 8a: scan throughput (range 50, 8B items, tree)";
  let keyspace = scale.Harness.keyspace in
  let table = Table.create [ "workload"; "uTPS-T"; "BaseKV"; "eRPC-KV" ] in
  List.iter
    (fun (name, spec) ->
      let m = Harness.measure Harness.Mutps scale spec in
      let b = Harness.measure Harness.Basekv scale spec in
      let e = Harness.measure Harness.Erpckv scale spec in
      Table.add_row table
        [
          name;
          Table.cell_f m.Harness.mops;
          Table.cell_f b.Harness.mops;
          Table.cell_f e.Harness.mops;
        ])
    [
      ("YCSB-E", Ycsb.e ~keyspace ~scan_len:50 ~value_size:8 ());
      ("scan-only", Ycsb.scan_only ~keyspace ~scan_len:50 ~value_size:8 ());
    ];
  Table.print table

let run_8bc scale =
  Harness.section "Figure 8b-c: Meta ETC pool";
  let keyspace = scale.Harness.keyspace in
  let table =
    Table.create [ "get ratio"; "uTPS-T"; "BaseKV"; "eRPC-KV"; "uTPS/BaseKV" ]
  in
  List.iter
    (fun ratio ->
      let spec = Etc.spec ~keyspace ~get_ratio:ratio () in
      let m = Harness.measure Harness.Mutps scale spec in
      let b = Harness.measure Harness.Basekv scale spec in
      let e = Harness.measure Harness.Erpckv scale spec in
      Table.add_row table
        [
          Printf.sprintf "%.0f%%" (100.0 *. ratio);
          Table.cell_f m.Harness.mops;
          Table.cell_f b.Harness.mops;
          Table.cell_f e.Harness.mops;
          Printf.sprintf "%.2fx" (m.Harness.mops /. Float.max b.Harness.mops 1e-9);
        ])
    [ 0.1; 0.5; 0.9 ];
  Table.print table

let run scale =
  run_8a scale;
  run_8bc scale
