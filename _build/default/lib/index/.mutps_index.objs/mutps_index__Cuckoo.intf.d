lib/index/cuckoo.mli: Index_intf Mutps_mem
