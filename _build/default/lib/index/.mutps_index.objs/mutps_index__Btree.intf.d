lib/index/btree.mli: Index_intf Mutps_mem
