lib/index/cuckoo.ml: Array Index_intf Int64 List Mutps_mem Mutps_sim Mutps_store
