lib/index/index_intf.ml: Mutps_mem Mutps_store
