lib/index/btree.ml: Array Fun Index_intf Int64 List Mutps_mem Mutps_store Printf
