(** Bucketed cuckoo hash table (libcuckoo analog).

    4 slots per bucket, two hash functions, random-walk displacement on
    insert.  Each bucket occupies exactly one cache line in the simulated
    address space, so a point lookup costs one or two line loads — the
    shallow-traversal behaviour that makes hash-indexed KVSs harder for
    μTPS to speed up (§5.2.1, "effects of index type"). *)

type t

val create :
  Mutps_mem.Layout.t -> capacity:int -> seed:int -> t
(** A table able to hold at least [capacity] items (sized for ~85% peak
    load factor). *)

val ops : t -> Index_intf.t
val buckets : t -> int
val count : t -> int

exception Full
(** Raised by insert when no displacement path can be found. *)
