(** B+tree index (MassTree analog).

    Nodes hold up to {!fanout} keys and occupy 256 bytes (4 cache lines) in
    the simulated address space; leaves are chained for range scans.  A
    point lookup is a root-to-leaf pointer chase — the deep-traversal,
    cache-miss-heavy behaviour that gives μTPS-T its larger headroom over
    run-to-completion baselines.  [batch_lookup] descends level-synchronously
    with overlapped prefetches across the batch. *)

type t

val fanout : int
val node_bytes : int

val create : Mutps_mem.Layout.t -> seed:int -> t

val ops : t -> Index_intf.t
val count : t -> int
val depth : t -> int

val check_invariants : t -> unit
(** Walk the whole tree asserting ordering, occupancy, and leaf-chain
    consistency; raises [Failure] on violation (test hook). *)
