(** Common interface over the two index structures (§4: μTPS-H uses a
    cuckoo hash, μTPS-T a B+tree).

    Operations take an {!Mutps_mem.Env.t} and charge the simulated memory
    traffic of the traversal; [*_silent] variants mutate without charges and
    are meant for pre-population.  Values are {!Mutps_store.Item.t} handles —
    the index locates items, the store reads/writes them. *)

module Env = Mutps_mem.Env
module Item = Mutps_store.Item

type kind = Hash | Tree

type t = {
  name : string;
  kind : kind;
  lookup : Env.t -> int64 -> Item.t option;
  batch_lookup : Env.t -> int64 array -> Item.t option array;
      (** Batched, prefetch-overlapped lookups (§3.3 batched indexing). *)
  insert : Env.t -> int64 -> Item.t -> unit;
      (** Insert or replace the handle for a key. *)
  remove : Env.t -> int64 -> bool;
  range : Env.t -> lo:int64 -> n:int -> (int64 * Item.t) list;
      (** First [n] entries with key ≥ [lo] in key order.  Raises
          [Invalid_argument] on hash indexes. *)
  insert_silent : int64 -> Item.t -> unit;
  count : unit -> int;
}
