(** Network link + NIC serialization model (200 Gbps ConnectX-6 class).

    Messages pay half the base RTT each way plus serialization at the
    server NIC, which is both message-rate limited (a per-message gap) and
    bandwidth limited (cycles per byte).  Rx (client→server) and tx
    (server→client) pipes serialize independently, like the two directions
    of a full-duplex port. *)

type t

type config = {
  rtt : int;  (** base round-trip time in cycles *)
  msg_gap : int;  (** per-message serialization gap in cycles *)
  cycles_per_byte : float;
}

val default_config : config
(** ~2 μs RTT, ~120 M msgs/s, 200 Gbps at the 2.5 GHz simulated clock. *)

val create : ?config:config -> unit -> t
val config : t -> config

val rx_arrival : t -> sent_at:int -> bytes:int -> int
(** Time at which a client message sent at [sent_at] lands in server
    memory. *)

val tx_arrival : t -> now:int -> bytes:int -> int
(** Time at which a response posted now reaches the client. *)

val rx_messages : t -> int
val tx_messages : t -> int
val rx_bytes : t -> int
val tx_bytes : t -> int
