type config = { rtt : int; msg_gap : int; cycles_per_byte : float }

(* At 2.5 GHz: 2 us RTT = 5000 cycles; 120 M msgs/s -> ~21 cycles/msg;
   200 Gbps = 25 GB/s -> 0.1 cycles/byte. *)
let default_config = { rtt = 5000; msg_gap = 21; cycles_per_byte = 0.1 }

type t = {
  config : config;
  mutable rx_free : int;
  mutable tx_free : int;
  mutable rx_messages : int;
  mutable tx_messages : int;
  mutable rx_bytes : int;
  mutable tx_bytes : int;
}

let create ?(config = default_config) () =
  { config; rx_free = 0; tx_free = 0; rx_messages = 0; tx_messages = 0;
    rx_bytes = 0; tx_bytes = 0 }

let config t = t.config

let serialize t bytes = t.config.msg_gap + int_of_float (ceil (float_of_int bytes *. t.config.cycles_per_byte))

let rx_arrival t ~sent_at ~bytes =
  let reach_nic = sent_at + (t.config.rtt / 2) in
  let start = max reach_nic t.rx_free in
  let finish = start + serialize t bytes in
  t.rx_free <- finish;
  t.rx_messages <- t.rx_messages + 1;
  t.rx_bytes <- t.rx_bytes + bytes;
  finish

let tx_arrival t ~now ~bytes =
  let start = max now t.tx_free in
  let on_wire = start + serialize t bytes in
  t.tx_free <- on_wire;
  t.tx_messages <- t.tx_messages + 1;
  t.tx_bytes <- t.tx_bytes + bytes;
  on_wire + (t.config.rtt / 2)

let rx_messages t = t.rx_messages
let tx_messages t = t.tx_messages
let rx_bytes t = t.rx_bytes
let tx_bytes t = t.tx_bytes
