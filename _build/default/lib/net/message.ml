(** A client request in flight through the server.

    [req.buf] is the rx slot sequence number once the transport has placed
    the message (the [buf] field of §3.4's compact request); [value] carries
    the real put payload. *)

module Request = Mutps_queue.Request

type t = {
  id : int;
  client : int;
  sent_at : int;
  target : int;  (** worker hint for per-thread transports (eRPC); -1 = any *)
  req : Request.t;
  value : bytes option;
}

(* wire sizes: 16-byte header plus the put payload going in; responses add
   the returned data *)
let request_bytes t =
  16 + (match t.value with Some v -> Bytes.length v | None -> 0)

let pp fmt t =
  Format.fprintf fmt "msg%d[client=%d %a]" t.id t.client Request.pp t.req
