lib/net/link.ml:
