lib/net/erpc.ml: Array Hashtbl Link Message Mutps_mem Mutps_queue Mutps_sim Printf Transport
