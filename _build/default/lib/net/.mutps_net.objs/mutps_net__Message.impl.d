lib/net/message.ml: Bytes Format Mutps_queue
