lib/net/link.mli:
