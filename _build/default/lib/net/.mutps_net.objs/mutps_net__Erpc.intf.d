lib/net/erpc.mli: Link Mutps_mem Mutps_sim Transport
