lib/net/client.ml: Array Bytes Char Hashtbl Int64 Link Message Mutps_queue Mutps_sim Mutps_workload Transport
