lib/net/transport.ml: Message Mutps_mem
