lib/net/client.mli: Link Mutps_sim Mutps_workload Transport
