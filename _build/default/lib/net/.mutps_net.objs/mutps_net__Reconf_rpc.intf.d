lib/net/reconf_rpc.mli: Link Mutps_mem Mutps_sim Transport
