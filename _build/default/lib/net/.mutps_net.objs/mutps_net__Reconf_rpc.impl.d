lib/net/reconf_rpc.ml: Array Hashtbl Link List Message Mutps_mem Mutps_queue Mutps_sim Printf Transport
