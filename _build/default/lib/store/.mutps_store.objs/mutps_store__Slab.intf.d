lib/store/slab.mli: Mutps_mem
