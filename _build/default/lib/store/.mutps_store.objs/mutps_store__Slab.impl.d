lib/store/slab.ml: Array Mutps_mem Mutps_sim Printf
