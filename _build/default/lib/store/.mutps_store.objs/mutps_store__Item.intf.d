lib/store/item.mli: Mutps_mem Slab
