lib/store/item.ml: Bytes Mutps_mem Slab
