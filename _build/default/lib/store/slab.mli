(** Slab allocator for KV items in the simulated address space.

    Size classes are powers of two from 16 bytes up; each class draws from
    one region of the layout and keeps a free list, so item addresses are
    stable, dense within a class, and reusable after {!free}. *)

type t

val create : Mutps_mem.Layout.t -> ?class_bytes:int -> unit -> t
(** [class_bytes] is the per-size-class region capacity (default 1 GB of
    simulated space — address space is free). *)

val alloc : t -> int -> int
(** [alloc t size] returns the simulated address of a block that fits
    [size] bytes; [size] must be positive. *)

val free : t -> addr:int -> size:int -> unit
(** Return a block allocated with the same [size]. *)

val class_of_size : int -> int
(** The rounded block size used for a payload of [size] bytes. *)

val live_blocks : t -> int
