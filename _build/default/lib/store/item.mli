(** KV items: real payload bytes plus a simulated 8-byte header holding the
    seqlock (version + lock bit, §3.3 concurrency control).

    Protocols follow the paper: values of 8 bytes or less are updated with a
    single atomic store; larger values take the lock (odd version), copy,
    then release (even version).  Readers validate the version before and
    after the copy and retry on conflict.  Blocked writers spin, re-loading
    the header line — which is what makes contended items expensive in the
    cache model. *)

type t

val header_bytes : int

val create : Slab.t -> value:bytes -> t
val addr : t -> int
val size : t -> int
(** Current payload size in bytes. *)

val total_bytes : t -> int
(** Header + payload. *)

val version : t -> int
val locked : t -> bool

val peek : t -> bytes
(** Raw payload without simulation charges (for tests and setup). *)

val read : Mutps_mem.Env.t -> t -> bytes
(** Seqlock read; charges header+payload loads, retries on conflict. *)

val write : Mutps_mem.Env.t -> t -> bytes -> Slab.t -> unit
(** Locked update (atomic when both old and new payloads are ≤ 8 bytes).
    A payload that changes size class is reallocated from the slab. *)

val write_exclusive : Mutps_mem.Env.t -> t -> bytes -> Slab.t -> unit
(** Share-nothing update: the caller guarantees it is the only writer, so
    no lock is taken (eRPC-KV's shard-owner path).  Raises
    [Invalid_argument] if a lock is somehow held. *)

val spin_backoff_cycles : int
(** Cycles a blocked writer waits between lock retries. *)

val contended_acquires : t -> int
(** How many lock acquisitions on this item found it locked first
    (diagnostic for contention experiments). *)
