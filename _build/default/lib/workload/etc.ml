let spec ?(keyspace = Ycsb.default_keyspace) ~get_ratio () =
  if get_ratio < 0.0 || get_ratio > 1.0 then invalid_arg "Etc.spec: get_ratio";
  {
    Opgen.name = Printf.sprintf "etc-get%.0f%%" (100.0 *. get_ratio);
    keyspace;
    key_dist = Opgen.Zipfian Ycsb.default_theta;
    size_dist = Opgen.Etc;
    mix = { Opgen.get = get_ratio; put = 1.0 -. get_ratio; scan = 0.0 };
    scan_len = 1;
  }
