let default_theta = 0.99
let default_keyspace = 10_000_000

let key_dist skewed =
  if skewed then Opgen.Zipfian default_theta else Opgen.Uniform

let mk name ~keyspace ~skewed ~value_size ~get ~put ~scan ~scan_len =
  {
    Opgen.name;
    keyspace;
    key_dist = key_dist skewed;
    size_dist = Opgen.Fixed value_size;
    mix = { Opgen.get; put; scan };
    scan_len;
  }

let a ?(keyspace = default_keyspace) ?(skewed = true) ~value_size () =
  mk "ycsb-a" ~keyspace ~skewed ~value_size ~get:0.5 ~put:0.5 ~scan:0.0
    ~scan_len:1

let b ?(keyspace = default_keyspace) ?(skewed = true) ~value_size () =
  mk "ycsb-b" ~keyspace ~skewed ~value_size ~get:0.95 ~put:0.05 ~scan:0.0
    ~scan_len:1

let c ?(keyspace = default_keyspace) ?(skewed = true) ~value_size () =
  mk "ycsb-c" ~keyspace ~skewed ~value_size ~get:1.0 ~put:0.0 ~scan:0.0
    ~scan_len:1

let e ?(keyspace = default_keyspace) ?(skewed = true) ?(scan_len = 50)
    ~value_size () =
  mk "ycsb-e" ~keyspace ~skewed ~value_size ~get:0.0 ~put:0.05 ~scan:0.95
    ~scan_len

let put_only ?(keyspace = default_keyspace) ?(skewed = true) ~value_size () =
  mk "put-skew" ~keyspace ~skewed ~value_size ~get:0.0 ~put:1.0 ~scan:0.0
    ~scan_len:1

let get_only_uniform ?(keyspace = default_keyspace) ~value_size () =
  mk "get-uniform" ~keyspace ~skewed:false ~value_size ~get:1.0 ~put:0.0
    ~scan:0.0 ~scan_len:1

let put_only_uniform ?(keyspace = default_keyspace) ~value_size () =
  mk "put-uniform" ~keyspace ~skewed:false ~value_size ~get:0.0 ~put:1.0
    ~scan:0.0 ~scan_len:1

let scan_only ?(keyspace = default_keyspace) ?(skewed = true) ?(scan_len = 50)
    ~value_size () =
  mk "scan-only" ~keyspace ~skewed ~value_size ~get:0.0 ~put:0.0 ~scan:1.0
    ~scan_len
