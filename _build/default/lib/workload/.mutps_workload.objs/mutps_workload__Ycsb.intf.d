lib/workload/ycsb.mli: Opgen
