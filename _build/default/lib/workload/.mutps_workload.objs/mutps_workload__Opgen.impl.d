lib/workload/opgen.ml: Array Float Int64 Mutps_queue Mutps_sim Zipf
