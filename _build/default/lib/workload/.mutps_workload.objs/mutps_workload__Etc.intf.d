lib/workload/etc.mli: Opgen
