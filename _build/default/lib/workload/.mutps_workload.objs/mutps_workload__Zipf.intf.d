lib/workload/zipf.mli: Mutps_sim
