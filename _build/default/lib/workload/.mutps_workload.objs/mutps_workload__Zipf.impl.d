lib/workload/zipf.ml: Float Hashtbl Mutps_sim
