lib/workload/ycsb.ml: Opgen
