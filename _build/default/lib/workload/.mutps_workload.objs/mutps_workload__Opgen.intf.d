lib/workload/opgen.mli: Mutps_queue
