lib/workload/twitter.mli: Opgen
