lib/workload/etc.ml: Opgen Printf Ycsb
