lib/workload/twitter.ml: Opgen Ycsb
