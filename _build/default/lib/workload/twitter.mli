(** The three representative Twitter cache traces of Table 1, parameterised
    by the published characteristics (put ratio, average value size,
    Zipf α). *)

type cluster = Cluster_12 | Cluster_19 | Cluster_31

val all : cluster list
val name : cluster -> string

val put_ratio : cluster -> float
val avg_value_size : cluster -> int
val zipf_alpha : cluster -> float

val spec : ?keyspace:int -> cluster -> Opgen.spec
