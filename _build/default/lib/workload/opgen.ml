module Rng = Mutps_sim.Rng
module Request = Mutps_queue.Request

type key_dist = Uniform | Zipfian of float

type size_dist = Fixed of int | Etc | Exp of { mean : int; max : int }

type mix = { get : float; put : float; scan : float }

type spec = {
  name : string;
  keyspace : int;
  key_dist : key_dist;
  size_dist : size_dist;
  mix : mix;
  scan_len : int;
}

type op = {
  kind : Request.kind;
  key : int64;
  size : int;
  scan_count : int;
}

type t = { spec : spec; zipf : Zipf.t option; rng : Rng.t }

(* Rank scrambling: a fixed bijective-ish hash of the rank, reduced into the
   keyspace.  Collisions merely merge two ranks onto one key — harmless for
   workload purposes — but hotness ordering is globally consistent. *)
let key_of_rank ~keyspace rank =
  let h = Rng.hash64 (Int64.of_int rank) in
  Int64.rem (Int64.logand h Int64.max_int) (Int64.of_int keyspace)

let hottest_keys ~keyspace k =
  Array.init k (key_of_rank ~keyspace)

let all_keys ~keyspace =
  (* pre-population must cover every key an op can generate: the image of
     key_of_rank is a subset of [0, keyspace), so cover the whole range *)
  Array.init keyspace Int64.of_int

let validate spec =
  if spec.keyspace <= 0 then invalid_arg "Opgen: keyspace must be positive";
  let total = spec.mix.get +. spec.mix.put +. spec.mix.scan in
  if total > 1.0 +. 1e-9 then invalid_arg "Opgen: mix fractions exceed 1";
  if spec.scan_len <= 0 then invalid_arg "Opgen: scan_len must be positive";
  (match spec.size_dist with
  | Fixed n when n <= 0 -> invalid_arg "Opgen: fixed size must be positive"
  | Exp { mean; max } when mean <= 0 || max < mean ->
    invalid_arg "Opgen: bad Exp size distribution"
  | Fixed _ | Etc | Exp _ -> ());
  spec

let make spec ~seed =
  let spec = validate spec in
  let zipf =
    match spec.key_dist with
    | Uniform -> None
    | Zipfian theta -> Some (Zipf.create ~n:spec.keyspace ~theta)
  in
  { spec; zipf; rng = Rng.create seed }

let spec t = t.spec

let next_key t =
  match t.zipf with
  | None -> key_of_rank ~keyspace:t.spec.keyspace (Rng.int t.rng t.spec.keyspace)
  | Some z -> key_of_rank ~keyspace:t.spec.keyspace (Zipf.next z t.rng)

(* Value sizes are a deterministic function of the key: a real object's
   size is a (fairly) stable property, and size churn on every update
   would force constant reallocation that no production store exhibits. *)

let unit_float h = Int64.to_float (Int64.shift_right_logical h 11) *. (1.0 /. 9007199254740992.0)

(* ETC value sizes (§5.2.2): 1-13 B Zipf-ish (40%), 14-300 B Zipf-ish
   (55%), 301-1024 B uniform (5%).  Within the Zipfian bands we use a
   discrete power-law favouring small sizes, matching the pool's shape. *)
let etc_size key =
  let h1 = Rng.hash64 (Int64.logxor key 0x6574635F73697A65L) in
  let h2 = Rng.hash64 h1 in
  let band = unit_float h1 and u = unit_float h2 in
  if band < 0.40 then 1 + int_of_float (12.0 *. u *. u)
  else if band < 0.95 then 14 + int_of_float (286.0 *. u *. u)
  else 301 + int_of_float (u *. 723.0)

(* geometric with the given mean, clipped *)
let exp_size key ~mean ~max =
  let u = unit_float (Rng.hash64 (Int64.logxor key 0x6578705F73697A65L)) in
  let v = 1 + int_of_float (-.float_of_int mean *. log (1.0 -. (u *. 0.9999))) in
  if v > max then max else v

let size_for_key spec key =
  match spec.size_dist with
  | Fixed n -> n
  | Etc -> etc_size key
  | Exp { mean; max } -> exp_size key ~mean ~max

let next_size t key = size_for_key t.spec key

let mean_value_size spec =
  match spec.size_dist with
  | Fixed n -> float_of_int n
  | Etc ->
    (* closed-form means of the three bands *)
    (0.40 *. 5.0) +. (0.55 *. 109.3) +. (0.05 *. 662.5)
  | Exp { mean; max } -> Float.min (float_of_int mean) (float_of_int max)

let next t =
  let u = Rng.float t.rng in
  let m = t.spec.mix in
  let key = next_key t in
  if u < m.get then { kind = Request.Get; key; size = 0; scan_count = 0 }
  else if u < m.get +. m.put then
    { kind = Request.Put; key; size = next_size t key; scan_count = 0 }
  else if u < m.get +. m.put +. m.scan then begin
    (* uniform scan length in [1, 2*avg), mean = scan_len *)
    let count = 1 + Rng.int t.rng ((2 * t.spec.scan_len) - 1) in
    { kind = Request.Scan; key; size = 0; scan_count = count }
  end
  else { kind = Request.Delete; key; size = 0; scan_count = 0 }
