type cluster = Cluster_12 | Cluster_19 | Cluster_31

let all = [ Cluster_12; Cluster_19; Cluster_31 ]

let name = function
  | Cluster_12 -> "cluster-12"
  | Cluster_19 -> "cluster-19"
  | Cluster_31 -> "cluster-31"

(* Table 1 *)
let put_ratio = function
  | Cluster_12 -> 0.80
  | Cluster_19 -> 0.25
  | Cluster_31 -> 0.94

let avg_value_size = function
  | Cluster_12 -> 1030
  | Cluster_19 -> 101
  | Cluster_31 -> 15

let zipf_alpha = function
  | Cluster_12 -> 0.30
  | Cluster_19 -> 0.74
  | Cluster_31 -> 0.0

let spec ?(keyspace = Ycsb.default_keyspace) cluster =
  let alpha = zipf_alpha cluster in
  {
    Opgen.name = name cluster;
    keyspace;
    key_dist = (if alpha < 0.01 then Opgen.Uniform else Opgen.Zipfian alpha);
    size_dist = Opgen.Exp { mean = avg_value_size cluster; max = 8192 };
    mix =
      {
        Opgen.get = 1.0 -. put_ratio cluster;
        put = put_ratio cluster;
        scan = 0.0;
      };
    scan_len = 1;
  }
