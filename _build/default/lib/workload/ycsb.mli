(** Canned YCSB workload specs as used in §5.2.1 (A, B, C, E, plus the
    custom 100%-put and the uniform variants).  The default Zipfian theta is
    YCSB's 0.99. *)

val default_theta : float
val default_keyspace : int
(** 10M items, the paper's pre-populated database size. *)

val a : ?keyspace:int -> ?skewed:bool -> value_size:int -> unit -> Opgen.spec
(** 50% put / 50% get. *)

val b : ?keyspace:int -> ?skewed:bool -> value_size:int -> unit -> Opgen.spec
(** 5% put / 95% get. *)

val c : ?keyspace:int -> ?skewed:bool -> value_size:int -> unit -> Opgen.spec
(** 100% get. *)

val e : ?keyspace:int -> ?skewed:bool -> ?scan_len:int -> value_size:int -> unit -> Opgen.spec
(** 95% scan / 5% put; default scan length 50 (§5.2.1). *)

val put_only : ?keyspace:int -> ?skewed:bool -> value_size:int -> unit -> Opgen.spec
(** The paper's custom 100%-put workload. *)

val get_only_uniform : ?keyspace:int -> value_size:int -> unit -> Opgen.spec
(** GET-U. *)

val put_only_uniform : ?keyspace:int -> value_size:int -> unit -> Opgen.spec
(** PUT-U. *)

val scan_only : ?keyspace:int -> ?skewed:bool -> ?scan_len:int -> value_size:int -> unit -> Opgen.spec
(** The scan-only workload of Figure 8a. *)
