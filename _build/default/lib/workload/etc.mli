(** Meta's ETC Memcached pool (§5.2.2): Zipfian keys, mixed value sizes
    (1–13 B 40%, 14–300 B 55%, >300 B 5%), configurable get ratio. *)

val spec : ?keyspace:int -> get_ratio:float -> unit -> Opgen.spec
(** [get_ratio] ∈ [0,1]; the paper evaluates 0.1, 0.5 and 0.9. *)
