(** YCSB-style Zipfian rank generator (Gray et al.'s algorithm, as used by
    the YCSB ZipfianGenerator).

    [next] returns a {e rank} in [\[0, n)] where rank 0 is the most popular;
    callers scramble ranks into keys (see {!Keyspace}).  [theta] below 0.01
    degenerates to uniform — Twitter's cluster-31 has Zipf α = 0. *)

type t

val create : n:int -> theta:float -> t
(** Zeta normalisation constants are memoised per [(n, theta)], so creating
    many generators over the same keyspace is cheap. *)

val n : t -> int
val theta : t -> float

val next : t -> Mutps_sim.Rng.t -> int
(** Next rank, in [\[0, n)]. *)
