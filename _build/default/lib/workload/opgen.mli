(** Workload specification and operation stream generation.

    A {!spec} captures everything the paper varies: key distribution,
    operation mix, value-size distribution, keyspace, scan length.  A {!t}
    is a deterministic stream of operations drawn from a spec; each client
    thread owns one (seeded independently). *)

type key_dist = Uniform | Zipfian of float  (** theta / α *)

type size_dist =
  | Fixed of int
  | Etc  (** Meta ETC pool value-size mixture (§5.2.2) *)
  | Exp of { mean : int; max : int }
      (** geometric approximation, for Twitter trace value sizes *)

type mix = { get : float; put : float; scan : float }
(** Fractions summing to ≤ 1; the remainder is deletes (never used by the
    paper's workloads). *)

type spec = {
  name : string;
  keyspace : int;
  key_dist : key_dist;
  size_dist : size_dist;
  mix : mix;
  scan_len : int;  (** average items per scan *)
}

type op = {
  kind : Mutps_queue.Request.kind;
  key : int64;
  size : int;  (** value bytes for put; 0 otherwise *)
  scan_count : int;
}

type t

val make : spec -> seed:int -> t
val spec : t -> spec
val next : t -> op

val key_of_rank : keyspace:int -> int -> int64
(** Scrambled key for a popularity rank (rank 0 = hottest), stable across
    generators so hot sets agree between clients and analysis code. *)

val hottest_keys : keyspace:int -> int -> int64 array
(** The [k] hottest keys under any Zipfian spec over this keyspace. *)

val all_keys : keyspace:int -> int64 array
(** Every key in the keyspace (for pre-population). *)

val size_for_key : spec -> int64 -> int
(** The (deterministic) value size of a key under this spec: object sizes
    are a stable per-key property, so updates never flip size classes. *)

val mean_value_size : spec -> float
(** Expected put payload size (analysis helper). *)
