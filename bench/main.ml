(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (via Mutps_experiments.Registry) and then runs a Bechamel
   microbenchmark suite over the substrate hot paths.

   Usage:
     bench/main.exe                 run everything
     bench/main.exe fig7 fig12      run selected experiments
     bench/main.exe micro           run only the microbenchmarks
   Scale via MUTPS_BENCH_SCALE (e.g. 0.25 for a quick pass). *)

open Mutps_experiments

let run_experiment name =
  match Registry.find name with
  | Some e ->
    (* wall-clock is fine here: we time the simulator process itself, and
       nothing simulated depends on it *)
    let t0 = Sys.time () [@lint.allow "R1"] in
    (try e.Registry.run (Harness.scale_from_env ())
     with exn ->
       Printf.printf "[%s FAILED: %s]\n%!" name (Printexc.to_string exn));
    Printf.printf "[%s done in %.1fs cpu]\n%!" name
      ((Sys.time () [@lint.allow "R1"]) -. t0)
  | None ->
    Printf.eprintf "unknown experiment %S; available: %s\n%!" name
      (String.concat ", " (Registry.names ()))

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks of the substrate hot paths                 *)
(* ------------------------------------------------------------------ *)

open Bechamel
open Toolkit

let microbenches () =
  let open Mutps_sim in
  let open Mutps_mem in
  (* cache hierarchy access *)
  let hier = Hierarchy.create (Hierarchy.default_geometry ~cores:4) in
  let rng = Rng.create 1 in
  let bench_hier =
    (* this microbenchmark measures the hierarchy model itself, so it may
       bypass Env's charge discipline *)
    Test.make ~name:"hierarchy.load (random 64MB)"
      (Staged.stage (fun () ->
           ignore
             ((Hierarchy.load hier ~core:0 ~addr:(Rng.int rng 67_108_864)
                 ~size:8) [@lint.allow "R2"])))
  in
  (* ring push/pop — run each iteration as a simulated thread, so the
     figure includes the simulator's own per-op engine overhead *)
  let layout = Layout.create () in
  let ring =
    Mutps_queue.Ring.create layout ~name:"bench" ~slots:64 ~batch:4
      ~value_bytes:16
  in
  let engine = Engine.create () in
  let in_sim f =
    Simthread.spawn engine (fun ctx -> f (Env.make ~ctx ~hier ~core:1));
    Engine.run_all engine
  in
  let batch = [| 1; 2; 3; 4 |] in
  let bench_ring =
    Test.make ~name:"ring push+peek+complete+reap (simulated)"
      (Staged.stage (fun () ->
           in_sim (fun env ->
               ignore (Mutps_queue.Ring.push ring env batch);
               ignore (Mutps_queue.Ring.peek ring env);
               Mutps_queue.Ring.complete ring env;
               ignore (Mutps_queue.Ring.take_completed ring env))))
  in
  (* index probes *)
  let layout2 = Layout.create () in
  let slab = Mutps_store.Slab.create layout2 () in
  let cuckoo = Mutps_index.Cuckoo.create layout2 ~capacity:100_000 ~seed:3 in
  let cuckoo_ops = Mutps_index.Cuckoo.ops cuckoo in
  let btree = Mutps_index.Btree.create layout2 ~seed:3 in
  let btree_ops = Mutps_index.Btree.ops btree in
  for k = 0 to 99_999 do
    let key = Int64.of_int k in
    let item = Mutps_store.Item.create slab ~value:(Bytes.make 8 'x') in
    cuckoo_ops.Mutps_index.Index_intf.insert_silent key item;
    btree_ops.Mutps_index.Index_intf.insert_silent key item
  done;
  let bench_cuckoo =
    Test.make ~name:"cuckoo.lookup (100K keys, simulated)"
      (Staged.stage (fun () ->
           in_sim (fun env ->
               ignore
                 (cuckoo_ops.Mutps_index.Index_intf.lookup env
                    (Int64.of_int (Rng.int rng 100_000))))))
  in
  let bench_btree =
    Test.make ~name:"btree.lookup (100K keys, simulated)"
      (Staged.stage (fun () ->
           in_sim (fun env ->
               ignore
                 (btree_ops.Mutps_index.Index_intf.lookup env
                    (Int64.of_int (Rng.int rng 100_000))))))
  in
  (* workload generation *)
  let zipf = Mutps_workload.Zipf.create ~n:1_000_000 ~theta:0.99 in
  let bench_zipf =
    Test.make ~name:"zipf.next (1M ranks)"
      (Staged.stage (fun () -> ignore (Mutps_workload.Zipf.next zipf rng)))
  in
  let hist = Stats.Hist.create () in
  let bench_hist =
    Test.make ~name:"hist.add"
      (Staged.stage (fun () -> Stats.Hist.add hist (Rng.int rng 1_000_000)))
  in
  let engine_bench = Engine.create () in
  let bench_engine =
    Test.make ~name:"engine schedule+dispatch"
      (Staged.stage (fun () ->
           Engine.schedule_after engine_bench ~delay:1 ignore;
           Engine.run engine_bench ~until:(Engine.now engine_bench + 2)))
  in
  (* observability overhead: the same tagged slice dispatch with no tracer
     (the zero-cost-when-off claim), with a profile-only collector, and
     with a full event collector.  Each variant owns its engine so tracer
     state never leaks between them. *)
  let slice_dispatch ~name mk_engine =
    let engine = mk_engine () in
    Test.make ~name
      (Staged.stage (fun () ->
           Simthread.spawn engine (fun ctx ->
               let env = Env.make ~ctx ~hier ~core:2 in
               Env.tagged env "bench" (fun () ->
                   Env.compute env 10;
                   ignore
                     ((Hierarchy.load hier ~core:2 ~addr:64 ~size:8)
                     [@lint.allow "R2"]));
               Env.commit env);
           Engine.run_all engine))
  in
  let bench_trace_off =
    slice_dispatch ~name:"env slice dispatch (trace off)" Engine.create
  in
  let bench_trace_profile =
    slice_dispatch ~name:"env slice dispatch (profile-only tracer)"
      (fun () ->
        let engine = Engine.create () in
        ignore (Mutps_trace.Trace.install ~keep_events:false engine);
        engine)
  in
  let bench_trace_full =
    slice_dispatch ~name:"env slice dispatch (full tracer)" (fun () ->
        let engine = Engine.create () in
        (* cap keeps a long benchmark run from growing without bound; past
           the cap the hooks still run their full bookkeeping *)
        ignore (Mutps_trace.Trace.install ~max_events:1_000_000 engine);
        engine)
  in
  Test.make_grouped ~name:"substrate"
    [
      bench_hier; bench_ring; bench_cuckoo; bench_btree; bench_zipf;
      bench_hist; bench_engine; bench_trace_off; bench_trace_profile;
      bench_trace_full;
    ]

let run_micro () =
  print_endline "\n=== Substrate microbenchmarks (Bechamel) ===";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg instances (microbenches ()) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  (* print in sorted order so runs are comparable line by line *)
  Hashtbl.to_seq results |> List.of_seq
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.iter (fun (name, ols) ->
         match Analyze.OLS.estimates ols with
         | Some [ est ] -> Printf.printf "%-40s %10.1f ns/run\n%!" name est
         | _ -> Printf.printf "%-40s (no estimate)\n%!" name)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  match args with
  | [] ->
    List.iter (fun e -> run_experiment e.Registry.name) Registry.all;
    run_micro ()
  | [ "micro" ] -> run_micro ()
  | names ->
    List.iter
      (fun n -> if n = "micro" then run_micro () else run_experiment n)
      names
