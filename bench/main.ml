(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (via Mutps_experiments.Runner, fanned out over domains) and
   then runs a Bechamel microbenchmark suite over the substrate hot paths.

   Usage:
     bench/main.exe                        run everything
     bench/main.exe fig7 fig12             run selected experiments
     bench/main.exe micro                  run only the microbenchmarks
     bench/main.exe --jobs 4 --json out.json fig2a fig12
   Flags:
     --jobs N       worker domains (default: Domain.recommended_domain_count)
     --json FILE    write all experiment rows as one canonical JSON document
     --json-dir DIR write DIR/BENCH_<name>.json per experiment
     --perf-json F  write the engine-micro wall-clock perf rows (the
                    mutps-cli trajectory input)
     --sample[=K[,INTERVAL]]  interval-sampled experiments: truncated
                    detailed simulation + functional warming, rows carry
                    *_err reconstruction bounds (paper-scale CI lane)
   Scale via MUTPS_BENCH_SCALE (e.g. 0.25 for a quick pass).  Exits
   non-zero if any experiment raises, so CI sees broken experiments. *)

open Mutps_experiments

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks of the substrate hot paths                 *)
(* ------------------------------------------------------------------ *)

open Bechamel
open Toolkit

let microbenches () =
  let open Mutps_sim in
  let open Mutps_mem in
  (* cache hierarchy access *)
  let hier = Hierarchy.create (Hierarchy.default_geometry ~cores:4) in
  let rng = Rng.create 1 in
  let bench_hier =
    (* this microbenchmark measures the hierarchy model itself, so it may
       bypass Env's charge discipline *)
    Test.make ~name:"hierarchy.load (random 64MB)"
      (Staged.stage (fun () ->
           ignore
             ((Hierarchy.load hier ~core:0 ~addr:(Rng.int rng 67_108_864)
                 ~size:8) [@lint.allow "R2"])))
  in
  (* ring push/pop — run each iteration as a simulated thread, so the
     figure includes the simulator's own per-op engine overhead *)
  let layout = Layout.create () in
  let ring =
    Mutps_queue.Ring.create layout ~name:"bench" ~slots:64 ~batch:4
      ~value_bytes:16
  in
  let engine = Engine.create () in
  let in_sim f =
    Simthread.spawn engine (fun ctx -> f (Env.make ~ctx ~hier ~core:1));
    Engine.run_all engine
  in
  let batch = [| 1; 2; 3; 4 |] in
  let bench_ring =
    Test.make ~name:"ring push+peek+complete+reap (simulated)"
      (Staged.stage (fun () ->
           in_sim (fun env ->
               ignore (Mutps_queue.Ring.push ring env batch);
               ignore (Mutps_queue.Ring.peek ring env);
               Mutps_queue.Ring.complete ring env;
               ignore (Mutps_queue.Ring.take_completed ring env))))
  in
  (* index probes *)
  let layout2 = Layout.create () in
  let slab = Mutps_store.Slab.create layout2 () in
  let cuckoo = Mutps_index.Cuckoo.create layout2 ~capacity:100_000 ~seed:3 in
  let cuckoo_ops = Mutps_index.Cuckoo.ops cuckoo in
  let btree = Mutps_index.Btree.create layout2 ~seed:3 in
  let btree_ops = Mutps_index.Btree.ops btree in
  for k = 0 to 99_999 do
    let key = Int64.of_int k in
    let item = Mutps_store.Item.create slab ~value:(Bytes.make 8 'x') in
    cuckoo_ops.Mutps_index.Index_intf.insert_silent key item;
    btree_ops.Mutps_index.Index_intf.insert_silent key item
  done;
  let bench_cuckoo =
    Test.make ~name:"cuckoo.lookup (100K keys, simulated)"
      (Staged.stage (fun () ->
           in_sim (fun env ->
               ignore
                 (cuckoo_ops.Mutps_index.Index_intf.lookup env
                    (Int64.of_int (Rng.int rng 100_000))))))
  in
  let bench_btree =
    Test.make ~name:"btree.lookup (100K keys, simulated)"
      (Staged.stage (fun () ->
           in_sim (fun env ->
               ignore
                 (btree_ops.Mutps_index.Index_intf.lookup env
                    (Int64.of_int (Rng.int rng 100_000))))))
  in
  (* workload generation *)
  let zipf = Mutps_workload.Zipf.create ~n:1_000_000 ~theta:0.99 in
  let bench_zipf =
    Test.make ~name:"zipf.next (1M ranks)"
      (Staged.stage (fun () -> ignore (Mutps_workload.Zipf.next zipf rng)))
  in
  let hist = Stats.Hist.create () in
  let bench_hist =
    Test.make ~name:"hist.add"
      (Staged.stage (fun () -> Stats.Hist.add hist (Rng.int rng 1_000_000)))
  in
  let engine_bench = Engine.create () in
  let bench_engine =
    Test.make ~name:"engine schedule+dispatch"
      (Staged.stage (fun () ->
           Engine.schedule_after engine_bench ~delay:1 ignore;
           Engine.run engine_bench ~until:(Engine.now engine_bench + 2)))
  in
  (* observability overhead: the same tagged slice dispatch with no tracer
     (the zero-cost-when-off claim), with a profile-only collector, and
     with a full event collector.  Each variant owns its engine so tracer
     state never leaks between them. *)
  let slice_dispatch ~name mk_engine =
    let engine = mk_engine () in
    Test.make ~name
      (Staged.stage (fun () ->
           Simthread.spawn engine (fun ctx ->
               let env = Env.make ~ctx ~hier ~core:2 in
               Env.tagged env "bench" (fun () ->
                   Env.compute env 10;
                   ignore
                     ((Hierarchy.load hier ~core:2 ~addr:64 ~size:8)
                     [@lint.allow "R2"]));
               Env.commit env);
           Engine.run_all engine))
  in
  let bench_trace_off =
    slice_dispatch ~name:"env slice dispatch (trace off)" Engine.create
  in
  let bench_trace_profile =
    slice_dispatch ~name:"env slice dispatch (profile-only tracer)"
      (fun () ->
        let engine = Engine.create () in
        ignore (Mutps_trace.Trace.install ~keep_events:false engine);
        engine)
  in
  let bench_trace_full =
    slice_dispatch ~name:"env slice dispatch (full tracer)" (fun () ->
        let engine = Engine.create () in
        (* cap keeps a long benchmark run from growing without bound; past
           the cap the hooks still run their full bookkeeping *)
        ignore (Mutps_trace.Trace.install ~max_events:1_000_000 engine);
        engine)
  in
  Test.make_grouped ~name:"substrate"
    [
      bench_hier; bench_ring; bench_cuckoo; bench_btree; bench_zipf;
      bench_hist; bench_engine; bench_trace_off; bench_trace_profile;
      bench_trace_full;
    ]

let run_micro () =
  print_endline "\n=== Substrate microbenchmarks (Bechamel) ===";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg instances (microbenches ()) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  (* print in sorted order so runs are comparable line by line *)
  Hashtbl.to_seq results |> List.of_seq
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.iter (fun (name, ols) ->
         match Analyze.OLS.estimates ols with
         | Some [ est ] -> Printf.printf "%-40s %10.1f ns/run\n%!" name est
         | _ -> Printf.printf "%-40s (no estimate)\n%!" name)

(* ------------------------------------------------------------------ *)
(* Engine micro-benchmark: scheduler churn + the fig2a hot loop        *)
(*                                                                     *)
(* Reports the two numbers the mutps.alloc certifier exists to drive:  *)
(*   sim_cycles_per_sec    simulated cycles retired per CPU second     *)
(*   minor_words_per_event GC words allocated per dispatched event     *)
(* The words-per-event metrics are deterministic (same binary, same    *)
(* allocations), so they gate in CI against test/golden/               *)
(* engine_alloc_gate.json; the wall-clock rates are reported but not   *)
(* gated.                                                              *)
(* ------------------------------------------------------------------ *)

(* CPU seconds: the engine loop is single-threaded, so CPU time is the
   wall time of interest and is less noisy under CI co-tenancy *)
let cpu_time () = (Sys.time () [@lint.allow "R1"])

let gc_words () =
  let s = Gc.quick_stat () in
  s.Gc.minor_words +. s.Gc.major_words -. s.Gc.promoted_words

(* words-per-event rounded so the ~25-word cost of sampling Gc stats
   cannot wobble the gated metric *)
let round2 x = Float.round (x *. 100.) /. 100.

(* Scheduler churn: a standing population of self-rescheduling events.
   One closure is allocated up front and reused for every event, so the
   measured allocations belong to push/pop/dispatch, not the workload. *)
let engine_churn () =
  let events = 1_000_000 and population = 1_024 in
  let open Mutps_sim in
  let engine = Engine.create () in
  let remaining = ref (events - population) in
  let seq = ref 0 in
  let rec fire () =
    if !remaining > 0 then begin
      decr remaining;
      incr seq;
      (* mixed int delay: spreads events over time without touching Rng
         (whose Int64 draws would allocate and pollute the measurement) *)
      Engine.schedule_after engine ~delay:(1 + (!seq * 0x9E37 land 0x3F)) fire
    end
  in
  for i = 1 to population do
    Engine.schedule_after engine ~delay:(i land 0x3F) fire
  done;
  let w0 = gc_words () and t0 = cpu_time () in
  Engine.run_all engine;
  let t1 = cpu_time () and w1 = gc_words () in
  let dispatched = Engine.dispatched engine in
  let sim_cycles = Engine.now engine in
  let wall_s = t1 -. t0 in
  let words_per_event = round2 ((w1 -. w0) /. float_of_int dispatched) in
  let gate =
    Report.row ~experiment:"engine_micro" ~system:""
      ~axis:[ ("case", "push_pop_churn") ]
      [
        ("events", float_of_int dispatched);
        ("minor_words_per_event", words_per_event);
        ("sim_cycles", float_of_int sim_cycles);
      ]
  in
  let perf =
    Report.row ~experiment:"engine_micro" ~system:""
      ~axis:[ ("case", "push_pop_churn_perf") ]
      [
        ("wall_s", wall_s);
        ("events_per_sec", float_of_int dispatched /. wall_s);
        ("sim_cycles_per_sec", float_of_int sim_cycles /. wall_s);
        ("minor_words_per_event", words_per_event);
      ]
  in
  (gate, perf)

(* Scheduler stress with a far-future mix: most events reschedule within
   a 64-cycle horizon (calendar-wheel territory), but a small standing
   population jumps 64K-1M cycles ahead on every firing, so the overflow
   heap and its migration back into the wheel stay on the measured path.
   The sim_cycles/events metrics are pure functions of the schedule and
   gate bit-exact in CI (test/golden/engine_sched_gate.json). *)
let engine_sched () =
  let events = 1_000_000 and near_pop = 1_024 and far_pop = 64 in
  let open Mutps_sim in
  let engine = Engine.create () in
  let remaining = ref (events - near_pop - far_pop) in
  let seq = ref 0 in
  let rec fire_near () =
    if !remaining > 0 then begin
      decr remaining;
      incr seq;
      Engine.schedule_after engine ~delay:(1 + (!seq * 0x9E37 land 0x3F)) fire_near
    end
  in
  let rec fire_far () =
    if !remaining > 0 then begin
      decr remaining;
      incr seq;
      (* always beyond any near-future horizon: exercises overflow + migration *)
      Engine.schedule_after engine
        ~delay:(65_536 + (!seq * 0x2545F49 land 0xFFFFF))
        fire_far
    end
  in
  for i = 1 to near_pop do
    Engine.schedule_after engine ~delay:(i land 0x3F) fire_near
  done;
  for i = 1 to far_pop do
    Engine.schedule_after engine ~delay:(65_536 + (i * 8_191)) fire_far
  done;
  let w0 = gc_words () and t0 = cpu_time () in
  Engine.run_all engine;
  let t1 = cpu_time () and w1 = gc_words () in
  let dispatched = Engine.dispatched engine in
  let sim_cycles = Engine.now engine in
  let wall_s = t1 -. t0 in
  let words_per_event = round2 ((w1 -. w0) /. float_of_int dispatched) in
  let gate =
    Report.row ~experiment:"engine_micro" ~system:""
      ~axis:[ ("case", "sched_micro") ]
      [
        ("events", float_of_int dispatched);
        ("minor_words_per_event", words_per_event);
        ("sim_cycles", float_of_int sim_cycles);
      ]
  in
  let perf =
    Report.row ~experiment:"engine_micro" ~system:""
      ~axis:[ ("case", "sched_micro_perf") ]
      [
        ("wall_s", wall_s);
        ("events_per_sec", float_of_int dispatched /. wall_s);
        ("sim_cycles_per_sec", float_of_int sim_cycles /. wall_s);
        ("minor_words_per_event", words_per_event);
      ]
  in
  (gate, perf)

(* The fig2a hot loop (uniform gets against μTPS) with the harness's
   warmup excluded: deltas are taken across the measured window only, so
   populate/warmup allocations do not dilute words-per-event. *)
let engine_fig2a () =
  let open Mutps_sim in
  let scale = Harness.scale_from_env () in
  let spec =
    Mutps_workload.Ycsb.get_only_uniform ~keyspace:scale.Harness.keyspace
      ~value_size:64 ()
  in
  let built = Harness.build Harness.Mutps scale spec in
  let clients = Harness.start_clients built scale spec in
  Engine.run built.Harness.engine ~until:scale.Harness.warmup;
  let d0 = Engine.dispatched built.Harness.engine in
  let c0 = Mutps_net.Client.completed clients in
  let w0 = gc_words () and t0 = cpu_time () in
  Engine.run built.Harness.engine
    ~until:(scale.Harness.warmup + scale.Harness.measure);
  let t1 = cpu_time () and w1 = gc_words () in
  let events = Engine.dispatched built.Harness.engine - d0 in
  let completed = Mutps_net.Client.completed clients - c0 in
  let wall_s = t1 -. t0 in
  let words_per_event = round2 ((w1 -. w0) /. float_of_int events) in
  let gate =
    Report.row ~experiment:"engine_micro" ~system:"uTPS"
      ~axis:[ ("case", "fig2a_hot_loop") ]
      [
        ("events", float_of_int events);
        ("completed", float_of_int completed);
        ("minor_words_per_event", words_per_event);
      ]
  in
  let perf =
    Report.row ~experiment:"engine_micro" ~system:"uTPS"
      ~axis:[ ("case", "fig2a_hot_loop_perf") ]
      [
        ("wall_s", wall_s);
        ("events_per_sec", float_of_int events /. wall_s);
        ( "sim_cycles_per_sec",
          float_of_int scale.Harness.measure /. wall_s );
        ("minor_words_per_event", words_per_event);
        ("ops_per_sec", float_of_int completed /. wall_s);
      ]
  in
  (gate, perf)

let run_engine_micro () =
  print_endline "\n=== Engine micro-benchmark (mutps.alloc trajectory) ===";
  let gate_churn, perf_churn = engine_churn () in
  let gate_sched, perf_sched = engine_sched () in
  let gate_fig, perf_fig = engine_fig2a () in
  let rows =
    [ gate_churn; perf_churn; gate_sched; perf_sched; gate_fig; perf_fig ]
  in
  List.iter
    (fun (r : Report.row) ->
      Printf.printf "%-22s" (List.assoc "case" r.Report.axis);
      List.iter
        (fun (k, v) -> Printf.printf "  %s=%s" k (Report.float_to_string v))
        r.Report.metrics;
      print_newline ())
    rows;
  ( rows,
    [ gate_churn; gate_fig ],
    [ gate_sched ],
    [ perf_churn; perf_sched; perf_fig ] )

(* ------------------------------------------------------------------ *)
(* Argument parsing and the parallel experiment pass                   *)
(* ------------------------------------------------------------------ *)

type opts = {
  jobs : int;
  json : string option;
  json_dir : string option;
  gate_json : string option;
  sched_gate_json : string option;
  perf_json : string option;
  sample : string option;  (** [Some spec] = interval-sampled experiments *)
  micro : bool;
  engine_micro : bool;
  names : string list;  (** [] = all *)
}

let usage () =
  prerr_endline
    "usage: main.exe [--jobs N] [--json FILE] [--json-dir DIR] \
     [--gate-json FILE] [--sched-gate-json FILE] [--perf-json FILE] \
     [--sample[=K[,INTERVAL]]] [micro | engine-micro | EXPERIMENT...]";
  exit 2

let parse_args argv =
  let opts =
    ref
      {
        jobs = Runner.default_jobs ();
        json = None;
        json_dir = None;
        gate_json = None;
        sched_gate_json = None;
        perf_json = None;
        sample = None;
        micro = false;
        engine_micro = false;
        names = [];
      }
  in
  let rec go = function
    | [] -> ()
    | "--jobs" :: v :: rest ->
      (match int_of_string_opt v with
      | Some j when j >= 1 -> opts := { !opts with jobs = j }
      | _ -> usage ());
      go rest
    | "--json" :: v :: rest ->
      opts := { !opts with json = Some v };
      go rest
    | "--json-dir" :: v :: rest ->
      opts := { !opts with json_dir = Some v };
      go rest
    | "--gate-json" :: v :: rest ->
      opts := { !opts with gate_json = Some v };
      go rest
    | "--sched-gate-json" :: v :: rest ->
      opts := { !opts with sched_gate_json = Some v };
      go rest
    | "--perf-json" :: v :: rest ->
      opts := { !opts with perf_json = Some v };
      go rest
    | "--sample" :: rest ->
      opts := { !opts with sample = Some "" };
      go rest
    | arg :: rest when String.length arg > 9 && String.sub arg 0 9 = "--sample=" ->
      opts :=
        { !opts with
          sample = Some (String.sub arg 9 (String.length arg - 9)) };
      go rest
    | "micro" :: rest ->
      opts := { !opts with micro = true };
      go rest
    | "engine-micro" :: rest ->
      opts := { !opts with engine_micro = true };
      go rest
    | arg :: _ when String.length arg > 0 && arg.[0] = '-' ->
      Printf.eprintf "unknown flag %s\n%!" arg;
      usage ()
    | name :: rest ->
      opts := { !opts with names = !opts.names @ [ name ] };
      go rest
  in
  go (List.tl (Array.to_list argv));
  !opts

let () =
  let opts = parse_args Sys.argv in
  (* no positional args: full evaluation + microbenchmarks *)
  let run_everything =
    opts.names = [] && (not opts.micro) && not opts.engine_micro
  in
  let names = if run_everything then Registry.names () else opts.names in
  (match
     List.filter (fun n -> Registry.find n = None) names
   with
  | [] -> ()
  | unknown ->
    Printf.eprintf "unknown experiment(s) %s; available: %s\n%!"
      (String.concat ", " unknown)
      (String.concat ", " (Registry.names ()));
    exit 2);
  let failures = ref 0 in
  let experiment_rows = ref [] in
  let sample_cfg =
    match opts.sample with
    | None -> None
    | Some spec -> (
      match Mutps_sample.Sample.parse spec with
      | Ok cfg -> Some cfg
      | Error msg ->
        Printf.eprintf "--sample: %s\n%!" msg;
        exit 2)
  in
  if names <> [] then begin
    let scale =
      { (Harness.scale_from_env ()) with Harness.sample = sample_cfg }
    in
    let outcomes =
      Runner.run_all ~jobs:opts.jobs
        ~on_done:(fun o ->
          Printf.eprintf "[%s %s in %.1fs cpu]\n%!" o.Runner.name
            (if o.Runner.error = None then "done" else "FAILED")
            o.Runner.cpu_s)
        names scale
    in
    (* stream the captured text in request order, then the failure list *)
    List.iter
      (fun (o : Runner.outcome) ->
        print_string o.Runner.output;
        match o.Runner.error with
        | None -> ()
        | Some msg -> Printf.printf "[%s FAILED: %s]\n%!" o.Runner.name msg)
      outcomes;
    let failed = Runner.failed outcomes in
    failures := List.length failed;
    experiment_rows := Runner.rows outcomes;
    match opts.json_dir with
    | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      List.iter
        (fun (o : Runner.outcome) ->
          let path = Filename.concat dir ("BENCH_" ^ o.Runner.name ^ ".json") in
          Report.write_file path o.Runner.rows)
        outcomes;
      Printf.eprintf "json: per-experiment files -> %s/BENCH_*.json\n%!" dir
    | None -> ()
  end;
  let engine_rows, engine_gate_rows, sched_gate_rows, perf_rows =
    if opts.engine_micro || run_everything then run_engine_micro ()
    else ([], [], [], [])
  in
  (match opts.gate_json with
  | Some path ->
    Report.write_file path engine_gate_rows;
    Printf.eprintf "json: %d gate row(s) -> %s\n%!"
      (List.length engine_gate_rows) path
  | None -> ());
  (match opts.sched_gate_json with
  | Some path ->
    Report.write_file path sched_gate_rows;
    Printf.eprintf "json: %d sched gate row(s) -> %s\n%!"
      (List.length sched_gate_rows) path
  | None -> ());
  (match opts.perf_json with
  | Some path ->
    Report.write_file path perf_rows;
    Printf.eprintf "json: %d perf row(s) -> %s\n%!" (List.length perf_rows)
      path
  | None -> ());
  (match opts.json with
  | Some path ->
    let rows = !experiment_rows @ engine_rows in
    Report.write_file path rows;
    Printf.eprintf "json: %d row(s) -> %s\n%!" (List.length rows) path
  | None -> ());
  (match opts.json_dir with
  | Some dir when engine_rows <> [] ->
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    Report.write_file
      (Filename.concat dir "BENCH_engine_micro.json")
      engine_rows
  | _ -> ());
  if opts.micro || run_everything then run_micro ();
  if !failures > 0 then begin
    Printf.eprintf "%d experiment(s) failed\n%!" !failures;
    exit 1
  end
