(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (via Mutps_experiments.Runner, fanned out over domains) and
   then runs a Bechamel microbenchmark suite over the substrate hot paths.

   Usage:
     bench/main.exe                        run everything
     bench/main.exe fig7 fig12             run selected experiments
     bench/main.exe micro                  run only the microbenchmarks
     bench/main.exe --jobs 4 --json out.json fig2a fig12
   Flags:
     --jobs N       worker domains (default: Domain.recommended_domain_count)
     --json FILE    write all experiment rows as one canonical JSON document
     --json-dir DIR write DIR/BENCH_<name>.json per experiment
   Scale via MUTPS_BENCH_SCALE (e.g. 0.25 for a quick pass).  Exits
   non-zero if any experiment raises, so CI sees broken experiments. *)

open Mutps_experiments

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks of the substrate hot paths                 *)
(* ------------------------------------------------------------------ *)

open Bechamel
open Toolkit

let microbenches () =
  let open Mutps_sim in
  let open Mutps_mem in
  (* cache hierarchy access *)
  let hier = Hierarchy.create (Hierarchy.default_geometry ~cores:4) in
  let rng = Rng.create 1 in
  let bench_hier =
    (* this microbenchmark measures the hierarchy model itself, so it may
       bypass Env's charge discipline *)
    Test.make ~name:"hierarchy.load (random 64MB)"
      (Staged.stage (fun () ->
           ignore
             ((Hierarchy.load hier ~core:0 ~addr:(Rng.int rng 67_108_864)
                 ~size:8) [@lint.allow "R2"])))
  in
  (* ring push/pop — run each iteration as a simulated thread, so the
     figure includes the simulator's own per-op engine overhead *)
  let layout = Layout.create () in
  let ring =
    Mutps_queue.Ring.create layout ~name:"bench" ~slots:64 ~batch:4
      ~value_bytes:16
  in
  let engine = Engine.create () in
  let in_sim f =
    Simthread.spawn engine (fun ctx -> f (Env.make ~ctx ~hier ~core:1));
    Engine.run_all engine
  in
  let batch = [| 1; 2; 3; 4 |] in
  let bench_ring =
    Test.make ~name:"ring push+peek+complete+reap (simulated)"
      (Staged.stage (fun () ->
           in_sim (fun env ->
               ignore (Mutps_queue.Ring.push ring env batch);
               ignore (Mutps_queue.Ring.peek ring env);
               Mutps_queue.Ring.complete ring env;
               ignore (Mutps_queue.Ring.take_completed ring env))))
  in
  (* index probes *)
  let layout2 = Layout.create () in
  let slab = Mutps_store.Slab.create layout2 () in
  let cuckoo = Mutps_index.Cuckoo.create layout2 ~capacity:100_000 ~seed:3 in
  let cuckoo_ops = Mutps_index.Cuckoo.ops cuckoo in
  let btree = Mutps_index.Btree.create layout2 ~seed:3 in
  let btree_ops = Mutps_index.Btree.ops btree in
  for k = 0 to 99_999 do
    let key = Int64.of_int k in
    let item = Mutps_store.Item.create slab ~value:(Bytes.make 8 'x') in
    cuckoo_ops.Mutps_index.Index_intf.insert_silent key item;
    btree_ops.Mutps_index.Index_intf.insert_silent key item
  done;
  let bench_cuckoo =
    Test.make ~name:"cuckoo.lookup (100K keys, simulated)"
      (Staged.stage (fun () ->
           in_sim (fun env ->
               ignore
                 (cuckoo_ops.Mutps_index.Index_intf.lookup env
                    (Int64.of_int (Rng.int rng 100_000))))))
  in
  let bench_btree =
    Test.make ~name:"btree.lookup (100K keys, simulated)"
      (Staged.stage (fun () ->
           in_sim (fun env ->
               ignore
                 (btree_ops.Mutps_index.Index_intf.lookup env
                    (Int64.of_int (Rng.int rng 100_000))))))
  in
  (* workload generation *)
  let zipf = Mutps_workload.Zipf.create ~n:1_000_000 ~theta:0.99 in
  let bench_zipf =
    Test.make ~name:"zipf.next (1M ranks)"
      (Staged.stage (fun () -> ignore (Mutps_workload.Zipf.next zipf rng)))
  in
  let hist = Stats.Hist.create () in
  let bench_hist =
    Test.make ~name:"hist.add"
      (Staged.stage (fun () -> Stats.Hist.add hist (Rng.int rng 1_000_000)))
  in
  let engine_bench = Engine.create () in
  let bench_engine =
    Test.make ~name:"engine schedule+dispatch"
      (Staged.stage (fun () ->
           Engine.schedule_after engine_bench ~delay:1 ignore;
           Engine.run engine_bench ~until:(Engine.now engine_bench + 2)))
  in
  (* observability overhead: the same tagged slice dispatch with no tracer
     (the zero-cost-when-off claim), with a profile-only collector, and
     with a full event collector.  Each variant owns its engine so tracer
     state never leaks between them. *)
  let slice_dispatch ~name mk_engine =
    let engine = mk_engine () in
    Test.make ~name
      (Staged.stage (fun () ->
           Simthread.spawn engine (fun ctx ->
               let env = Env.make ~ctx ~hier ~core:2 in
               Env.tagged env "bench" (fun () ->
                   Env.compute env 10;
                   ignore
                     ((Hierarchy.load hier ~core:2 ~addr:64 ~size:8)
                     [@lint.allow "R2"]));
               Env.commit env);
           Engine.run_all engine))
  in
  let bench_trace_off =
    slice_dispatch ~name:"env slice dispatch (trace off)" Engine.create
  in
  let bench_trace_profile =
    slice_dispatch ~name:"env slice dispatch (profile-only tracer)"
      (fun () ->
        let engine = Engine.create () in
        ignore (Mutps_trace.Trace.install ~keep_events:false engine);
        engine)
  in
  let bench_trace_full =
    slice_dispatch ~name:"env slice dispatch (full tracer)" (fun () ->
        let engine = Engine.create () in
        (* cap keeps a long benchmark run from growing without bound; past
           the cap the hooks still run their full bookkeeping *)
        ignore (Mutps_trace.Trace.install ~max_events:1_000_000 engine);
        engine)
  in
  Test.make_grouped ~name:"substrate"
    [
      bench_hier; bench_ring; bench_cuckoo; bench_btree; bench_zipf;
      bench_hist; bench_engine; bench_trace_off; bench_trace_profile;
      bench_trace_full;
    ]

let run_micro () =
  print_endline "\n=== Substrate microbenchmarks (Bechamel) ===";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg instances (microbenches ()) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  (* print in sorted order so runs are comparable line by line *)
  Hashtbl.to_seq results |> List.of_seq
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.iter (fun (name, ols) ->
         match Analyze.OLS.estimates ols with
         | Some [ est ] -> Printf.printf "%-40s %10.1f ns/run\n%!" name est
         | _ -> Printf.printf "%-40s (no estimate)\n%!" name)

(* ------------------------------------------------------------------ *)
(* Argument parsing and the parallel experiment pass                   *)
(* ------------------------------------------------------------------ *)

type opts = {
  jobs : int;
  json : string option;
  json_dir : string option;
  micro : bool;
  names : string list;  (** [] = all *)
}

let usage () =
  prerr_endline
    "usage: main.exe [--jobs N] [--json FILE] [--json-dir DIR] \
     [micro | EXPERIMENT...]";
  exit 2

let parse_args argv =
  let opts =
    ref
      {
        jobs = Runner.default_jobs ();
        json = None;
        json_dir = None;
        micro = false;
        names = [];
      }
  in
  let rec go = function
    | [] -> ()
    | "--jobs" :: v :: rest ->
      (match int_of_string_opt v with
      | Some j when j >= 1 -> opts := { !opts with jobs = j }
      | _ -> usage ());
      go rest
    | "--json" :: v :: rest ->
      opts := { !opts with json = Some v };
      go rest
    | "--json-dir" :: v :: rest ->
      opts := { !opts with json_dir = Some v };
      go rest
    | "micro" :: rest ->
      opts := { !opts with micro = true };
      go rest
    | arg :: _ when String.length arg > 0 && arg.[0] = '-' ->
      Printf.eprintf "unknown flag %s\n%!" arg;
      usage ()
    | name :: rest ->
      opts := { !opts with names = !opts.names @ [ name ] };
      go rest
  in
  go (List.tl (Array.to_list argv));
  !opts

let () =
  let opts = parse_args Sys.argv in
  (* no positional args: full evaluation + microbenchmarks *)
  let run_everything = opts.names = [] && not opts.micro in
  let names = if run_everything then Registry.names () else opts.names in
  (match
     List.filter (fun n -> Registry.find n = None) names
   with
  | [] -> ()
  | unknown ->
    Printf.eprintf "unknown experiment(s) %s; available: %s\n%!"
      (String.concat ", " unknown)
      (String.concat ", " (Registry.names ()));
    exit 2);
  let failures = ref 0 in
  if names <> [] then begin
    let scale = Harness.scale_from_env () in
    let outcomes =
      Runner.run_all ~jobs:opts.jobs
        ~on_done:(fun o ->
          Printf.eprintf "[%s %s in %.1fs cpu]\n%!" o.Runner.name
            (if o.Runner.error = None then "done" else "FAILED")
            o.Runner.cpu_s)
        names scale
    in
    (* stream the captured text in request order, then the failure list *)
    List.iter
      (fun (o : Runner.outcome) ->
        print_string o.Runner.output;
        match o.Runner.error with
        | None -> ()
        | Some msg -> Printf.printf "[%s FAILED: %s]\n%!" o.Runner.name msg)
      outcomes;
    let failed = Runner.failed outcomes in
    failures := List.length failed;
    (match opts.json with
    | Some path ->
      Report.write_file path (Runner.rows outcomes);
      Printf.eprintf "json: %d row(s) -> %s\n%!"
        (List.length (Runner.rows outcomes))
        path
    | None -> ());
    match opts.json_dir with
    | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      List.iter
        (fun (o : Runner.outcome) ->
          let path = Filename.concat dir ("BENCH_" ^ o.Runner.name ^ ".json") in
          Report.write_file path o.Runner.rows)
        outcomes;
      Printf.eprintf "json: per-experiment files -> %s/BENCH_*.json\n%!" dir
    | None -> ()
  end;
  if opts.micro || run_everything then run_micro ();
  if !failures > 0 then begin
    Printf.eprintf "%d experiment(s) failed\n%!" !failures;
    exit 1
  end
