#!/bin/bash
cd /root/repo
dune runtest --force --no-buffer > /root/repo/test_output.txt 2>&1
echo "TESTS_EXIT=$?" >> /root/repo/test_output.txt
# MUTPS_BENCH_SCALE is propagated explicitly so a caller-chosen scale
# survives any sudo/env-scrubbing indirection; MUTPS_SAMPLE=K[,INTERVAL]
# (or empty for the defaults) switches the experiments to interval
# sampling with reconstruction error bounds in the rows.
env ${MUTPS_BENCH_SCALE:+MUTPS_BENCH_SCALE="$MUTPS_BENCH_SCALE"} \
  dune exec bench/main.exe -- ${MUTPS_SAMPLE+--sample=$MUTPS_SAMPLE} \
  > /root/repo/bench_output.txt 2>&1
echo "BENCH_EXIT=$?" >> /root/repo/bench_output.txt
touch /root/repo/.final_done
