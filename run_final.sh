#!/bin/bash
cd /root/repo
dune runtest --force --no-buffer > /root/repo/test_output.txt 2>&1
echo "TESTS_EXIT=$?" >> /root/repo/test_output.txt
dune exec bench/main.exe > /root/repo/bench_output.txt 2>&1
echo "BENCH_EXIT=$?" >> /root/repo/bench_output.txt
touch /root/repo/.final_done
