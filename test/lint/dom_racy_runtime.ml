(* Deliberately racy, both statically and dynamically, as the bridge
   between the two race detectors: the module-level [shared_tally] is a
   D1 violation for the static certifier (lib/lint/dom.ml), and the two
   threads below overlap uncommitted windows on one line, which the
   runtime sanitizer (lib/san) reports.  The [Env.tagged] site names are
   chosen to equal this module's own function keys so test_lint.ml can
   assert that every runtime race site is covered by a static D1/D2
   finding naming the same function.  Lives in test/ — outside the
   linted tree — precisely because it must stay racy. *)

module Engine = Mutps_sim.Engine
module Simthread = Mutps_sim.Simthread
module Layout = Mutps_mem.Layout
module Hierarchy = Mutps_mem.Hierarchy
module Env = Mutps_mem.Env
module San = Mutps_san.San

(* D1 target: unprotected module-level mutable state, touched by both
   thread bodies with no lock, no Atomic, no DLS. *)
let shared_tally : (string, int) Hashtbl.t = Hashtbl.create 8

let writer env ~addr =
  Env.tagged env "Dom_racy_runtime.writer" @@ fun () ->
  Hashtbl.replace shared_tally "writes" 1;
  Env.compute env 1_000;
  Env.store env ~addr ~size:8;
  Env.commit env

let reader env ~addr =
  Env.tagged env "Dom_racy_runtime.reader" @@ fun () ->
  Hashtbl.replace shared_tally "reads" 1;
  Simthread.delay env.Env.ctx 500;
  Env.load env ~addr ~size:8;
  Env.commit env

(* Run the scenario under the sanitizer; returns its race reports. *)
let run () =
  Hashtbl.reset shared_tally;
  San.sanitized (fun () ->
      let engine = Engine.create () in
      let layout = Layout.create () in
      let hier = Hierarchy.create (Hierarchy.small_geometry ~cores:4) in
      let region = Layout.region layout ~name:"shared" ~size:64 in
      let addr = Layout.alloc region ~align:64 8 in
      Simthread.spawn engine ~name:"writer" (fun ctx ->
          writer (Env.make ~ctx ~hier ~core:0) ~addr);
      Simthread.spawn engine ~name:"reader" (fun ctx ->
          reader (Env.make ~ctx ~hier ~core:1) ~addr);
      Engine.run_all engine)
  |> snd
