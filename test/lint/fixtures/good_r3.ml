(* lint fixture: commit-dominated or explicitly exempted shared reads;
   must be R3-clean *)

type ring = { mutable head : int; mutable tail : int }
type item = { mutable version : int }

let occupancy env r =
  Env.commit env;
  r.head - r.tail

let seqlock_read env it =
  Simthread.delay env.ctx 10;
  it.version

(* uncharged introspection, deliberately exempted *)
let peek_version it = it.version [@@lint.allow "R3"]
