(* A1: a ref cell allocated inside a hot function (the classic
   accumulator-loop shape); A3: Printf drags I/O machinery onto the hot
   path. *)

let[@hot] churn n =
  let total = ref 0 in
  for i = 1 to n do
    total := !total + i
  done;
  Printf.printf "%d\n" !total;
  !total
