(* Clean hot code: the allocation-free shapes the certifier must accept.
   - tail-recursive top-level helper instead of a local closure
   - diverging-call exemption (invalid_arg may build its message)
   - trace-guard exemption (the Some branch of a [tr t] match is the
     pay-when-on path and does not extend the hot set) *)

let rec sum_to acc i n = if i > n then acc else sum_to (acc + i) (i + 1) n

let[@hot] sum n =
  if n < 0 then invalid_arg (Printf.sprintf "sum: negative bound %d" n);
  sum_to 0 1 n

let[@hot] traced t x =
  match tr t with
  | None -> x + 1
  | Some tr ->
    tr (string_of_int x);
    x + 1
