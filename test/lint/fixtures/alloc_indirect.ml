(* Interprocedural A1: the hot root is clean itself; the allocation hides
   in a callee pulled into the hot set by reachability. *)

let make_pair a b = (a, b)

let[@hot] entry x = make_pair x (x + 1)
