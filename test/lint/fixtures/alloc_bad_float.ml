(* A2: float arithmetic boxes its intermediates, and polymorphic compare
   walks representations at runtime — neither belongs on a hot path. *)

let[@hot] boxy a b =
  let c = a +. b in
  if compare a b > 0 then c else c
