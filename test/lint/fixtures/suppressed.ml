[@@@lint.allow "R1"]

(* file-wide suppression: these would otherwise all be R1 findings *)
let t0 = Sys.time ()
let roll () = Random.int 6

(* but other rules still fire below: R4 on Obj.magic *)
let cast (x : int) : bytes = Obj.magic x
