(* D3 bad: [forward] acquires a then b, [backward] acquires b then a —
   the lock-order graph has the cycle a -> b -> a (classic ABBA
   deadlock). *)

let a = Mutex.create ()
let b = Mutex.create ()

let forward () =
  Mutex.lock a;
  Mutex.lock b;
  Mutex.unlock b;
  Mutex.unlock a

let backward () =
  Mutex.lock b;
  Mutex.lock a;
  Mutex.unlock a;
  Mutex.unlock b
