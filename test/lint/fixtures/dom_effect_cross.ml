(* D4 bad: an effect performed inside a Domain.spawn closure with no
   handler installed in that domain — the perform would raise
   Effect.Unhandled at runtime.  [handled] installs match_with inside
   the spawned domain and is clean; [indirect] reaches the perform
   through a helper call and is still flagged. *)

type _ Effect.t += Tick : unit Effect.t

let cross () =
  let d = Domain.spawn (fun () -> Effect.perform Tick) in
  Domain.join d

let tick_loop () = Effect.perform Tick

let indirect () =
  let d = Domain.spawn (fun () -> tick_loop ()) in
  Domain.join d

let handled () =
  let d =
    Domain.spawn (fun () ->
        Effect.Deep.match_with
          (fun () -> Effect.perform Tick)
          ()
          {
            retc = (fun x -> x);
            exnc = raise;
            effc = (fun (type a) (_ : a Effect.t) -> None);
          })
  in
  Domain.join d
