(* lint fixture: every binding here must trigger R1 *)

let now () = Sys.time ()
let stamp () = Unix.gettimeofday ()
let roll () = Random.int 6
let tbl : (int, int) Hashtbl.t = Hashtbl.create ~random:true 16
let sum t = Hashtbl.fold (fun _ v acc -> acc + v) t 0
let dump t = Hashtbl.iter (fun k v -> Printf.printf "%d=%d\n" k v) t
