(* lint fixture: deterministic counterparts; must be R1-clean *)

let rng = Mutps_sim.Rng.create 42
let roll () = Mutps_sim.Rng.int rng 6
let tbl : (int, int) Hashtbl.t = Hashtbl.create 16

let sum t =
  Hashtbl.to_seq t |> List.of_seq |> List.sort compare
  |> List.fold_left (fun acc (_, v) -> acc + v) 0

let timed f engine =
  let t0 = Mutps_sim.Engine.now engine in
  f ();
  Mutps_sim.Engine.now engine - t0
