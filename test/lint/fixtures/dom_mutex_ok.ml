(* D1 good: every runtime access of the table holds the one common
   mutex — certified S_locked.  Covers both the sequential lock/unlock
   shape and the Fun.protect ~finally idiom (the unlock inside the
   finally closure must not strip the lock from the protected body). *)

let lock = Mutex.create ()
let table = Hashtbl.create 16

let put k v =
  Mutex.lock lock;
  Hashtbl.replace table k v;
  Mutex.unlock lock

let get k =
  Mutex.lock lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock lock)
    (fun () -> Hashtbl.find_opt table k)
