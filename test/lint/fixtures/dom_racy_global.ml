(* D1 bad: module-level mutable state written at runtime with no lock,
   no Atomic, no DLS — flagged on every unprotected access. *)

let cache = Hashtbl.create 16
let hits = ref 0

let record k v =
  Hashtbl.replace cache k v;
  incr hits

let lookup k =
  incr hits;
  Hashtbl.find_opt cache k
