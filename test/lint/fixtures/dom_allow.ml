(* [@dom.allow] accounting: the first attribute absorbs the D1 finding
   on the unprotected write; the second covers a frozen ref that never
   produces a finding, so it must read as stale (as_uses = 0). *)

let counter = ref 0

let bump () =
  (incr counter) [@dom.allow "single-writer: only the main domain bumps"]

let frozen = ref 0

let read () =
  !frozen [@@dom.allow "stale: reads of a frozen ref are already clean"]
