(* lint fixture: charged traffic through Env; must be R2-clean *)

let read env ~addr = Env.load env ~addr ~size:8
let write env ~addr = Env.store env ~addr ~size:64
let fetch env addrs = Env.prefetch_batch env addrs

(* creation and geometry inspection are not traffic *)
let machine () = Hierarchy.create (Hierarchy.default_geometry ~cores:4)
let ways hier = Hierarchy.llc_ways hier
