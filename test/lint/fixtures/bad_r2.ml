(* lint fixture: uncharged hierarchy traffic outside lib/mem; each body
   must trigger R2 *)

let sneak_read hier ~addr = Hierarchy.load hier ~core:0 ~addr ~size:8

let sneak_write hier ~addr =
  ignore (Mutps_mem.Hierarchy.store hier ~core:1 ~addr ~size:64)

let sneak_prefetch hier addrs =
  ignore (Hierarchy.prefetch_batch hier ~core:0 addrs)
