(* [@alloc.allow] suppression accounting: the first attribute covers a
   real would-be finding (Array.make on the cold growth branch) and must
   count one use; the second covers nothing and must surface as stale. *)

let[@hot] push t x =
  (if t.size = Array.length t.slots then
     t.slots <- Array.make (2 * t.size) x)
  [@alloc.allow "growth: amortized doubling, cold"];
  t.size <- t.size + 1

let[@hot] stale t = (t.size [@alloc.allow "covers nothing"])
