(* D1 good: per-domain state behind a Domain.DLS key — a sync value, no
   findings even though the payload is a mutable table. *)

let slot = Domain.DLS.new_key (fun () -> Hashtbl.create 16)
let put k v = Hashtbl.replace (Domain.DLS.get slot) k v
let get k = Hashtbl.find_opt (Domain.DLS.get slot) k
