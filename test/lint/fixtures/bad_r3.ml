(* lint fixture: uncommitted reads of registered shared-mutable fields;
   each read must trigger R3 *)

type ring = { mutable head : int; mutable tail : int; mutable reclaimed : int }
type item = { mutable version : int }

let occupancy r = r.head - r.tail

let racy_read env it =
  Env.load env ~addr:0 ~size:8;
  it.version
