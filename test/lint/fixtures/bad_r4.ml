(* lint fixture: effect-safety violations; each body must trigger R4 *)

(* no simulated-thread context in scope *)
let tick thread_state = Simthread.delay thread_state 5

let park q = Simthread.suspend q (fun resume -> ignore resume)

let cast (x : int) : bytes = Obj.magic x

let same_box a b = a == b
