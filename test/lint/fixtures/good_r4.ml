(* lint fixture: Simthread effects from legal contexts; must be R4-clean *)

(* a ctx parameter proves we are inside a simulated thread *)
let tick ctx = Simthread.delay ctx 5

(* a Simthread.spawn callback runs as a simulated thread *)
let start engine =
  Simthread.spawn engine (fun c ->
      Simthread.delay c 10;
      Simthread.yield c)

(* an Env.t's .ctx field also carries the thread context *)
type env = { ctx : int }

let commit e = Simthread.commit e.ctx

let compare_keys a b = Int64.equal a b
