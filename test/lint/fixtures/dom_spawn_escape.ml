(* D2 bad: a mutable local captured by a Domain.spawn closure and
   written without a lock — two workers would race on [total].  The
   second function shows the locked twin, which is clean. *)

let racy () =
  let total = ref 0 in
  let d1 = Domain.spawn (fun () -> total := !total + 1) in
  let d2 = Domain.spawn (fun () -> total := !total + 1) in
  Domain.join d1;
  Domain.join d2;
  !total

let locked () =
  let total = ref 0 in
  let lock = Mutex.create () in
  let bump () =
    Mutex.lock lock;
    total := !total + 1;
    Mutex.unlock lock
  in
  let d1 = Domain.spawn bump in
  let d2 = Domain.spawn bump in
  Domain.join d1;
  Domain.join d2;
  !total
