(* A1: a [@hot] function must not build closures or tuples.  Parse-only
   fixture for the zero-allocation certifier (lib/lint/alloc.ml). *)

let[@hot] bad_pair x y =
  let f = fun z -> z + x in
  (f y, x)
