(* Tests for the determinism & charge-discipline lint (lib/lint) and the
   determinism regression the lint exists to protect: two runs with the
   same seed must produce byte-identical stats digests, with the runtime
   [debug_checks] verifier enabled. *)

module Lint = Mutps_lint.Lint
module Interp = Mutps_lint.Interp
module Alloc = Mutps_lint.Alloc
module Engine = Mutps_sim.Engine
open Mutps_experiments

let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* dune runtest runs us inside test/lint; dune exec from the workspace
   root — accept either *)
let fixture_dir =
  if Sys.file_exists "fixtures" then "fixtures" else "test/lint/fixtures"

let findings ?rule_path file =
  match Lint.check_file ?rule_path (Filename.concat fixture_dir file) with
  | Ok fs -> fs
  | Error msg -> Alcotest.fail msg

let count rule fs =
  List.length (List.filter (fun (f : Lint.finding) -> f.Lint.rule = rule) fs)

(* --- fixture checks: each rule must fire on its bad file and stay silent
   on its good twin --- *)

let test_r1_bad () =
  let fs = findings "bad_r1.ml" in
  check_int "R1 findings" 6 (count "R1" fs);
  check_int "only R1" 6 (List.length fs)

let test_r1_good () = check_int "clean" 0 (List.length (findings "good_r1.ml"))

let test_r2_bad () =
  let fs = findings "bad_r2.ml" in
  check_int "R2 findings" 3 (count "R2" fs);
  check_int "only R2" 3 (List.length fs)

let test_r2_good () = check_int "clean" 0 (List.length (findings "good_r2.ml"))

let test_r2_mem_exempt () =
  (* the same traffic is legal when the file lives under lib/mem *)
  let fs = findings ~rule_path:"lib/mem/hierarchy_helper.ml" "bad_r2.ml" in
  check_int "exempt under lib/mem" 0 (List.length fs)

let test_r3_bad () =
  let fs = findings "bad_r3.ml" in
  check_int "R3 findings" 3 (count "R3" fs);
  check_int "only R3" 3 (List.length fs)

let test_r3_good () = check_int "clean" 0 (List.length (findings "good_r3.ml"))

let test_r4_bad () =
  let fs = findings "bad_r4.ml" in
  check_int "R4 findings" 4 (count "R4" fs);
  check_int "only R4" 4 (List.length fs)

let test_r4_good () = check_int "clean" 0 (List.length (findings "good_r4.ml"))

let test_file_suppression () =
  (* [@@@lint.allow "R1"] silences R1 for the file but not other rules *)
  let fs = findings "suppressed.ml" in
  check_int "R1 suppressed" 0 (count "R1" fs);
  check_int "R4 still fires" 1 (count "R4" fs)

let test_finding_format () =
  match findings "bad_r2.ml" with
  | f :: _ ->
    let s = Lint.finding_to_string f in
    let prefix = Filename.concat fixture_dir "bad_r2.ml" ^ ":" in
    Alcotest.(check bool)
      "file:line: [RULE] shape" true
      (String.length s > String.length prefix
      && String.sub s 0 (String.length prefix) = prefix
      && count "R2" [ f ] = 1)
  | [] -> Alcotest.fail "expected findings"

let test_check_string () =
  match Lint.check_string "let t = Sys.time ()" with
  | Ok fs -> check_int "inline source" 1 (count "R1" fs)
  | Error m -> Alcotest.fail m

(* --- interprocedural pass (project mode) --- *)

(* parse inline sources into the (file, rule_path, ast) triples
   Interp.check_project takes *)
let project sources =
  Interp.check_project
    (List.map
       (fun (file, src) ->
         let lexbuf = Lexing.from_string src in
         Lexing.set_filename lexbuf file;
         (file, file, Parse.implementation lexbuf))
       sources)

let test_interp_r3_proven () =
  (* an undominated read is fine when every call site is commit-dominated,
     even across files *)
  let fs =
    project
      [
        ( "lib/a/helper.ml",
          "type t = { mutable version : int }\nlet peek t = t.version" );
        ( "lib/a/caller.ml",
          "let use env t = Env.commit env; ignore (Helper.peek t)" );
      ]
  in
  check_int "proven clean" 0 (List.length fs)

let test_interp_r3_exposed () =
  (* one undominated call site from an entry point exposes the helper *)
  let fs =
    project
      [
        ( "lib/a/helper.ml",
          "type t = { mutable version : int }\nlet peek t = t.version" );
        ( "lib/a/caller.ml",
          "let use env t = Env.commit env; ignore (Helper.peek t)\n\
           let leak t = ignore (Helper.peek t)" );
      ]
  in
  check_int "exposed read flagged" 1 (count "R3" fs)

let test_interp_r3_closure_escape () =
  (* a helper that escapes as a closure can run anywhere: exposed *)
  let fs =
    project
      [
        ( "lib/a/helper.ml",
          "type t = { mutable version : int }\nlet peek t = t.version" );
        ( "lib/a/caller.ml", "let reg tbl = Hashtbl.replace tbl 0 Helper.peek" );
      ]
  in
  check_int "escaping read flagged" 1 (count "R3" fs)

let test_interp_r2_leak () =
  (* calling a helper whose raw Hierarchy access was locally suppressed
     leaks uncharged traffic to the caller *)
  let fs =
    project
      [
        ( "lib/store/raw.ml",
          "let touch hier =\n\
          \  (Hierarchy.load hier ~core:0 ~addr:0 ~size:8) [@lint.allow \
           \"R2\"]\n\
           let wrapper hier = touch hier" );
      ]
  in
  check_int "indirect leak flagged" 1 (count "R2" fs)

let test_interp_r2_env_sanctioned () =
  (* traffic through lib/mem's Env is the sanctioned path: no findings *)
  let fs =
    project
      [
        ( "lib/mem/env.ml",
          "let load t ~addr ~size = Hierarchy.load t.hier ~core:0 ~addr ~size"
        );
        ("lib/store/user.ml", "let fine env = Env.load env ~addr:0 ~size:8");
      ]
  in
  check_int "Env path clean" 0 (List.length fs)

(* --- zero-allocation certifier (rule family A) --- *)

let alloc_check files =
  Alloc.check_project
    (List.map
       (fun file ->
         let path = Filename.concat fixture_dir file in
         (path, path, Lint.parse_implementation path))
       files)

let test_alloc_closure_tuple () =
  let r = alloc_check [ "alloc_bad_closure.ml" ] in
  check_int "closure + tuple flagged" 2 (count "A1" r.Alloc.findings);
  check_int "only A1" 2 (List.length r.Alloc.findings)

let test_alloc_float_boxing () =
  let r = alloc_check [ "alloc_bad_float.ml" ] in
  check_int "float op + poly compare flagged" 2 (count "A2" r.Alloc.findings);
  check_int "only A2" 2 (List.length r.Alloc.findings)

let test_alloc_ref_in_loop () =
  let r = alloc_check [ "alloc_bad_ref.ml" ] in
  check_int "ref cell flagged" 1 (count "A1" r.Alloc.findings);
  check_int "Printf escape flagged" 1 (count "A3" r.Alloc.findings);
  check_int "nothing else" 2 (List.length r.Alloc.findings)

let test_alloc_allow_accounting () =
  (* the growth-branch allow absorbs its finding; the second attribute
     covers nothing and must read as stale (al_uses = 0) *)
  let r = alloc_check [ "alloc_allow.ml" ] in
  check_int "suppressed clean" 0 (List.length r.Alloc.findings);
  check_int "both allow sites recorded" 2 (List.length r.Alloc.allow_sites);
  let used, stale =
    List.partition
      (fun (s : Alloc.allow_site) -> s.Alloc.al_uses > 0)
      r.Alloc.allow_sites
  in
  check_int "one live site" 1 (List.length used);
  check_int "one stale site" 1 (List.length stale)

let test_alloc_indirect () =
  (* the allocation lives in a callee; reachability must pull it into the
     hot set and attribute the finding to the [@hot] root *)
  let r = alloc_check [ "alloc_indirect.ml" ] in
  check_int "callee tuple flagged" 1 (count "A1" r.Alloc.findings);
  check_int "one [@hot] root" 1 (List.length r.Alloc.hot_roots);
  check_int "root + callee certified targets" 2 (List.length r.Alloc.hot_set);
  match r.Alloc.findings with
  | [ f ] ->
    Alcotest.(check bool)
      "provenance names the root" true
      (let msg = f.Lint.msg in
       let needle = "reachable from" in
       let n = String.length needle and m = String.length msg in
       let rec scan i = i + n <= m && (String.sub msg i n = needle || scan (i + 1)) in
       scan 0)
  | _ -> Alcotest.fail "expected exactly one finding"

let test_alloc_good () =
  (* tail-recursive helper, diverging invalid_arg, trace-guard Some branch:
     all exempt shapes, zero findings *)
  let r = alloc_check [ "alloc_good.ml" ] in
  check_int "clean" 0 (List.length r.Alloc.findings);
  check_int "two roots" 2 (List.length r.Alloc.hot_roots);
  check_int "helper reached" 3 (List.length r.Alloc.hot_set)

(* regression: the real annotated hot set (everything under lib/) must
   certify with zero findings and no stale suppressions.  dune copies the
   sources into _build, so ../../lib is visible from test/lint; skip
   gracefully if a sandboxed runner hides it (CI's `dune build @lint`
   covers the same ground). *)
let rec collect_ml acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort compare
    |> List.fold_left (fun acc f -> collect_ml acc (Filename.concat path f)) acc
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let test_alloc_hot_tree_certified () =
  let lib =
    if Sys.file_exists "../../lib" then Some "../../lib"
    else if Sys.file_exists "lib" then Some "lib"
    else None
  in
  match lib with
  | None -> ()
  | Some lib ->
    let files = List.sort compare (collect_ml [] lib) in
    let r =
      Alloc.check_project
        (List.map (fun f -> (f, f, Lint.parse_implementation f)) files)
    in
    List.iter
      (fun (f : Lint.finding) -> print_endline (Lint.finding_to_string f))
      r.Alloc.findings;
    check_int "annotated hot set certifies zero-alloc" 0
      (List.length r.Alloc.findings);
    Alcotest.(check bool)
      "all hot roots discovered" true
      (List.length r.Alloc.hot_roots >= 20);
    Alcotest.(check bool)
      "at most 3 [@alloc.allow] suppressions" true
      (List.length r.Alloc.allow_sites <= 3);
    List.iter
      (fun (s : Alloc.allow_site) ->
        Alcotest.(check bool)
          (Printf.sprintf "allow at %s:%d is live" s.Alloc.al_file
             s.Alloc.al_line)
          true (s.Alloc.al_uses > 0))
      r.Alloc.allow_sites

let test_syntax_error () =
  match Lint.check_string "let let let" with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error _ -> ()

(* --- determinism regression: a small fig2a-style config (uniform gets),
   run twice with the same seed under debug_checks, must agree to the last
   bit --- *)

let tiny_scale =
  {
    Harness.keyspace = 2_000;
    cores = 4;
    clients = 16;
    window = 2;
    warmup = 200_000;
    measure = 600_000;
  }

let digest_of (m : Harness.measurement) =
  Digest.to_hex
    (Digest.string
       (Printf.sprintf "%.12g|%.12g|%.12g|%d|%.12g" m.Harness.mops
          m.Harness.p50_us m.Harness.p99_us m.Harness.completed
          m.Harness.cr_hit_rate))

let run_once system =
  let spec =
    Mutps_workload.Ycsb.get_only_uniform ~keyspace:tiny_scale.Harness.keyspace
      ~value_size:64 ()
  in
  let m =
    Harness.measure ~calibrate:false
      ~customize:(fun b -> Engine.set_debug_checks b.Harness.engine true)
      system tiny_scale spec
  in
  Alcotest.(check bool) "made progress" true (m.Harness.completed > 0);
  digest_of m

let test_determinism_basekv () =
  check_string "identical digests (BaseKV)" (run_once Harness.Basekv)
    (run_once Harness.Basekv)

let test_determinism_mutps () =
  check_string "identical digests (uTPS)" (run_once Harness.Mutps)
    (run_once Harness.Mutps)

(* the runtime verifier itself: an uncommitted shared-state read must trip
   Env.assert_committed when debug_checks is on, and pass silently off *)
let test_debug_checks_trip () =
  let engine = Engine.create () in
  Engine.set_debug_checks engine true;
  let hier =
    Mutps_mem.Hierarchy.create
      (Mutps_mem.Hierarchy.small_geometry ~cores:2)
  in
  let tripped = ref false in
  Mutps_sim.Simthread.spawn engine (fun ctx ->
      let env = Mutps_mem.Env.make ~ctx ~hier ~core:0 in
      Mutps_mem.Env.compute env 100;
      (* pending cycles not committed: the verifier must object *)
      match Mutps_mem.Env.assert_committed env "test-site" with
      | () -> ()
      | exception Failure _ -> tripped := true);
  Engine.run_all engine;
  Alcotest.(check bool) "uncommitted read detected" true !tripped;
  (* same read with checks off is silent *)
  let engine2 = Engine.create () in
  Mutps_sim.Simthread.spawn engine2 (fun ctx ->
      let env = Mutps_mem.Env.make ~ctx ~hier ~core:0 in
      Mutps_mem.Env.compute env 100;
      Mutps_mem.Env.assert_committed env "test-site");
  Engine.run_all engine2

let test_parked_accounting () =
  let engine = Engine.create () in
  Engine.set_debug_checks engine true;
  let cv = Mutps_sim.Simthread.Condvar.create () in
  Mutps_sim.Simthread.spawn engine (fun ctx ->
      Mutps_sim.Simthread.Condvar.wait ctx cv);
  Engine.run ~until:10 engine;
  check_int "one thread parked" 1 (Engine.parked engine);
  Mutps_sim.Simthread.Condvar.signal cv;
  Engine.run_all engine;
  check_int "resumed exactly once" 0 (Engine.parked engine)

let () =
  Alcotest.run "lint"
    [
      ( "rules",
        [
          Alcotest.test_case "R1 bad" `Quick test_r1_bad;
          Alcotest.test_case "R1 good" `Quick test_r1_good;
          Alcotest.test_case "R2 bad" `Quick test_r2_bad;
          Alcotest.test_case "R2 good" `Quick test_r2_good;
          Alcotest.test_case "R2 lib/mem exempt" `Quick test_r2_mem_exempt;
          Alcotest.test_case "R3 bad" `Quick test_r3_bad;
          Alcotest.test_case "R3 good" `Quick test_r3_good;
          Alcotest.test_case "R4 bad" `Quick test_r4_bad;
          Alcotest.test_case "R4 good" `Quick test_r4_good;
          Alcotest.test_case "file suppression" `Quick test_file_suppression;
          Alcotest.test_case "finding format" `Quick test_finding_format;
          Alcotest.test_case "check_string" `Quick test_check_string;
          Alcotest.test_case "syntax error" `Quick test_syntax_error;
        ] );
      ( "interprocedural",
        [
          Alcotest.test_case "dominated call sites proven" `Quick
            test_interp_r3_proven;
          Alcotest.test_case "exposed call site flagged" `Quick
            test_interp_r3_exposed;
          Alcotest.test_case "closure escape flagged" `Quick
            test_interp_r3_closure_escape;
          Alcotest.test_case "indirect R2 leak flagged" `Quick
            test_interp_r2_leak;
          Alcotest.test_case "Env path sanctioned" `Quick
            test_interp_r2_env_sanctioned;
        ] );
      ( "alloc",
        [
          Alcotest.test_case "A1 closure + tuple" `Quick
            test_alloc_closure_tuple;
          Alcotest.test_case "A2 float boxing" `Quick test_alloc_float_boxing;
          Alcotest.test_case "A1 ref + A3 printf" `Quick test_alloc_ref_in_loop;
          Alcotest.test_case "[@alloc.allow] accounting" `Quick
            test_alloc_allow_accounting;
          Alcotest.test_case "indirect allocation via callee" `Quick
            test_alloc_indirect;
          Alcotest.test_case "exempt shapes clean" `Quick test_alloc_good;
          Alcotest.test_case "hot tree certifies" `Quick
            test_alloc_hot_tree_certified;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "BaseKV digest" `Slow test_determinism_basekv;
          Alcotest.test_case "uTPS digest" `Slow test_determinism_mutps;
          Alcotest.test_case "debug_checks trips" `Quick test_debug_checks_trip;
          Alcotest.test_case "parked accounting" `Quick test_parked_accounting;
        ] );
    ]
