(* Tests for the determinism & charge-discipline lint (lib/lint) and the
   determinism regression the lint exists to protect: two runs with the
   same seed must produce byte-identical stats digests, with the runtime
   [debug_checks] verifier enabled. *)

module Lint = Mutps_lint.Lint
module Interp = Mutps_lint.Interp
module Alloc = Mutps_lint.Alloc
module Engine = Mutps_sim.Engine
open Mutps_experiments

let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* dune runtest runs us inside test/lint; dune exec from the workspace
   root — accept either *)
let fixture_dir =
  if Sys.file_exists "fixtures" then "fixtures" else "test/lint/fixtures"

let findings ?rule_path file =
  match Lint.check_file ?rule_path (Filename.concat fixture_dir file) with
  | Ok fs -> fs
  | Error msg -> Alcotest.fail msg

let count rule fs =
  List.length (List.filter (fun (f : Lint.finding) -> f.Lint.rule = rule) fs)

(* --- fixture checks: each rule must fire on its bad file and stay silent
   on its good twin --- *)

let test_r1_bad () =
  let fs = findings "bad_r1.ml" in
  check_int "R1 findings" 6 (count "R1" fs);
  check_int "only R1" 6 (List.length fs)

let test_r1_good () = check_int "clean" 0 (List.length (findings "good_r1.ml"))

let test_r2_bad () =
  let fs = findings "bad_r2.ml" in
  check_int "R2 findings" 3 (count "R2" fs);
  check_int "only R2" 3 (List.length fs)

let test_r2_good () = check_int "clean" 0 (List.length (findings "good_r2.ml"))

let test_r2_mem_exempt () =
  (* the same traffic is legal when the file lives under lib/mem *)
  let fs = findings ~rule_path:"lib/mem/hierarchy_helper.ml" "bad_r2.ml" in
  check_int "exempt under lib/mem" 0 (List.length fs)

let test_r3_bad () =
  let fs = findings "bad_r3.ml" in
  check_int "R3 findings" 3 (count "R3" fs);
  check_int "only R3" 3 (List.length fs)

let test_r3_good () = check_int "clean" 0 (List.length (findings "good_r3.ml"))

let test_r4_bad () =
  let fs = findings "bad_r4.ml" in
  check_int "R4 findings" 4 (count "R4" fs);
  check_int "only R4" 4 (List.length fs)

let test_r4_good () = check_int "clean" 0 (List.length (findings "good_r4.ml"))

let test_file_suppression () =
  (* [@@@lint.allow "R1"] silences R1 for the file but not other rules *)
  let fs = findings "suppressed.ml" in
  check_int "R1 suppressed" 0 (count "R1" fs);
  check_int "R4 still fires" 1 (count "R4" fs)

let test_finding_format () =
  match findings "bad_r2.ml" with
  | f :: _ ->
    let s = Lint.finding_to_string f in
    let prefix = Filename.concat fixture_dir "bad_r2.ml" ^ ":" in
    Alcotest.(check bool)
      "file:line: [RULE] shape" true
      (String.length s > String.length prefix
      && String.sub s 0 (String.length prefix) = prefix
      && count "R2" [ f ] = 1)
  | [] -> Alcotest.fail "expected findings"

let test_check_string () =
  match Lint.check_string "let t = Sys.time ()" with
  | Ok fs -> check_int "inline source" 1 (count "R1" fs)
  | Error m -> Alcotest.fail m

(* --- interprocedural pass (project mode) --- *)

(* parse inline sources into the (file, rule_path, ast) triples
   Interp.check_project takes *)
let project sources =
  Interp.check_project
    (List.map
       (fun (file, src) ->
         let lexbuf = Lexing.from_string src in
         Lexing.set_filename lexbuf file;
         (file, file, Parse.implementation lexbuf))
       sources)

let test_interp_r3_proven () =
  (* an undominated read is fine when every call site is commit-dominated,
     even across files *)
  let fs =
    project
      [
        ( "lib/a/helper.ml",
          "type t = { mutable version : int }\nlet peek t = t.version" );
        ( "lib/a/caller.ml",
          "let use env t = Env.commit env; ignore (Helper.peek t)" );
      ]
  in
  check_int "proven clean" 0 (List.length fs)

let test_interp_r3_exposed () =
  (* one undominated call site from an entry point exposes the helper *)
  let fs =
    project
      [
        ( "lib/a/helper.ml",
          "type t = { mutable version : int }\nlet peek t = t.version" );
        ( "lib/a/caller.ml",
          "let use env t = Env.commit env; ignore (Helper.peek t)\n\
           let leak t = ignore (Helper.peek t)" );
      ]
  in
  check_int "exposed read flagged" 1 (count "R3" fs)

let test_interp_r3_closure_escape () =
  (* a helper that escapes as a closure can run anywhere: exposed *)
  let fs =
    project
      [
        ( "lib/a/helper.ml",
          "type t = { mutable version : int }\nlet peek t = t.version" );
        ( "lib/a/caller.ml", "let reg tbl = Hashtbl.replace tbl 0 Helper.peek" );
      ]
  in
  check_int "escaping read flagged" 1 (count "R3" fs)

let test_interp_r2_leak () =
  (* calling a helper whose raw Hierarchy access was locally suppressed
     leaks uncharged traffic to the caller *)
  let fs =
    project
      [
        ( "lib/store/raw.ml",
          "let touch hier =\n\
          \  (Hierarchy.load hier ~core:0 ~addr:0 ~size:8) [@lint.allow \
           \"R2\"]\n\
           let wrapper hier = touch hier" );
      ]
  in
  check_int "indirect leak flagged" 1 (count "R2" fs)

let test_interp_r2_env_sanctioned () =
  (* traffic through lib/mem's Env is the sanctioned path: no findings *)
  let fs =
    project
      [
        ( "lib/mem/env.ml",
          "let load t ~addr ~size = Hierarchy.load t.hier ~core:0 ~addr ~size"
        );
        ("lib/store/user.ml", "let fine env = Env.load env ~addr:0 ~size:8");
      ]
  in
  check_int "Env path clean" 0 (List.length fs)

(* --- zero-allocation certifier (rule family A) --- *)

let alloc_check files =
  Alloc.check_project
    (List.map
       (fun file ->
         let path = Filename.concat fixture_dir file in
         (path, path, Lint.parse_implementation path))
       files)

let test_alloc_closure_tuple () =
  let r = alloc_check [ "alloc_bad_closure.ml" ] in
  check_int "closure + tuple flagged" 2 (count "A1" r.Alloc.findings);
  check_int "only A1" 2 (List.length r.Alloc.findings)

let test_alloc_float_boxing () =
  let r = alloc_check [ "alloc_bad_float.ml" ] in
  check_int "float op + poly compare flagged" 2 (count "A2" r.Alloc.findings);
  check_int "only A2" 2 (List.length r.Alloc.findings)

let test_alloc_ref_in_loop () =
  let r = alloc_check [ "alloc_bad_ref.ml" ] in
  check_int "ref cell flagged" 1 (count "A1" r.Alloc.findings);
  check_int "Printf escape flagged" 1 (count "A3" r.Alloc.findings);
  check_int "nothing else" 2 (List.length r.Alloc.findings)

let test_alloc_allow_accounting () =
  (* the growth-branch allow absorbs its finding; the second attribute
     covers nothing and must read as stale (al_uses = 0) *)
  let r = alloc_check [ "alloc_allow.ml" ] in
  check_int "suppressed clean" 0 (List.length r.Alloc.findings);
  check_int "both allow sites recorded" 2 (List.length r.Alloc.allow_sites);
  let used, stale =
    List.partition
      (fun (s : Alloc.allow_site) -> s.Alloc.al_uses > 0)
      r.Alloc.allow_sites
  in
  check_int "one live site" 1 (List.length used);
  check_int "one stale site" 1 (List.length stale)

let test_alloc_indirect () =
  (* the allocation lives in a callee; reachability must pull it into the
     hot set and attribute the finding to the [@hot] root *)
  let r = alloc_check [ "alloc_indirect.ml" ] in
  check_int "callee tuple flagged" 1 (count "A1" r.Alloc.findings);
  check_int "one [@hot] root" 1 (List.length r.Alloc.hot_roots);
  check_int "root + callee certified targets" 2 (List.length r.Alloc.hot_set);
  match r.Alloc.findings with
  | [ f ] ->
    Alcotest.(check bool)
      "provenance names the root" true
      (let msg = f.Lint.msg in
       let needle = "reachable from" in
       let n = String.length needle and m = String.length msg in
       let rec scan i = i + n <= m && (String.sub msg i n = needle || scan (i + 1)) in
       scan 0)
  | _ -> Alcotest.fail "expected exactly one finding"

let test_alloc_good () =
  (* tail-recursive helper, diverging invalid_arg, trace-guard Some branch:
     all exempt shapes, zero findings *)
  let r = alloc_check [ "alloc_good.ml" ] in
  check_int "clean" 0 (List.length r.Alloc.findings);
  check_int "two roots" 2 (List.length r.Alloc.hot_roots);
  check_int "helper reached" 3 (List.length r.Alloc.hot_set)

(* regression: the real annotated hot set (everything under lib/) must
   certify with zero findings and no stale suppressions.  dune copies the
   sources into _build, so ../../lib is visible from test/lint; skip
   gracefully if a sandboxed runner hides it (CI's `dune build @lint`
   covers the same ground). *)
let rec collect_ml acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort compare
    |> List.fold_left (fun acc f -> collect_ml acc (Filename.concat path f)) acc
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let test_alloc_hot_tree_certified () =
  let lib =
    if Sys.file_exists "../../lib" then Some "../../lib"
    else if Sys.file_exists "lib" then Some "lib"
    else None
  in
  match lib with
  | None -> ()
  | Some lib ->
    let files = List.sort compare (collect_ml [] lib) in
    let r =
      Alloc.check_project
        (List.map (fun f -> (f, f, Lint.parse_implementation f)) files)
    in
    List.iter
      (fun (f : Lint.finding) -> print_endline (Lint.finding_to_string f))
      r.Alloc.findings;
    check_int "annotated hot set certifies zero-alloc" 0
      (List.length r.Alloc.findings);
    Alcotest.(check bool)
      "all hot roots discovered" true
      (List.length r.Alloc.hot_roots >= 20);
    Alcotest.(check bool)
      "at most 3 [@alloc.allow] suppressions" true
      (List.length r.Alloc.allow_sites <= 3);
    List.iter
      (fun (s : Alloc.allow_site) ->
        Alcotest.(check bool)
          (Printf.sprintf "allow at %s:%d is live" s.Alloc.al_file
             s.Alloc.al_line)
          true (s.Alloc.al_uses > 0))
      r.Alloc.allow_sites

let test_syntax_error () =
  match Lint.check_string "let let let" with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error _ -> ()

(* --- domain-safety certifier (rule family D) --- *)

module Dom = Mutps_lint.Dom
module San = Mutps_san.San

let dom_check files =
  Dom.check_project
    (List.map
       (fun file ->
         let path = Filename.concat fixture_dir file in
         (path, path, Lint.parse_implementation path))
       files)

let contains hay needle =
  let n = String.length needle and m = String.length hay in
  let rec scan i = i + n <= m && (String.sub hay i n = needle || scan (i + 1)) in
  scan 0

let global_status r key =
  match
    List.find_opt (fun (g : Dom.global) -> g.Dom.g_key = key) r.Dom.globals
  with
  | Some g -> g.Dom.g_status
  | None -> Alcotest.fail ("no global " ^ key)

let test_dom_racy_global () =
  let r = dom_check [ "dom_racy_global.ml" ] in
  check_int "every unprotected access flagged" 4
    (count "D1" r.Dom.findings);
  check_int "only D1" 4 (List.length r.Dom.findings);
  Alcotest.(check bool)
    "cache flagged" true
    (global_status r "Dom_racy_global.cache" = Dom.S_flagged);
  Alcotest.(check bool)
    "hits flagged" true
    (global_status r "Dom_racy_global.hits" = Dom.S_flagged)

let test_dom_dls_ok () =
  let r = dom_check [ "dom_dls_ok.ml" ] in
  check_int "clean" 0 (List.length r.Dom.findings);
  Alcotest.(check bool)
    "slot is a sync value" true
    (match global_status r "Dom_dls_ok.slot" with
    | Dom.S_sync _ -> true
    | _ -> false)

let test_dom_mutex_ok () =
  (* both the sequential lock/unlock shape and Fun.protect ~finally must
     certify; the unlock inside the finally closure is scoped and must
     not strip the lock from the protected body *)
  let r = dom_check [ "dom_mutex_ok.ml" ] in
  check_int "clean" 0 (List.length r.Dom.findings);
  Alcotest.(check bool)
    "table certified lock-protected" true
    (match global_status r "Dom_mutex_ok.table" with
    | Dom.S_locked l -> contains l "lock"
    | _ -> false)

let test_dom_spawn_escape () =
  let r = dom_check [ "dom_spawn_escape.ml" ] in
  Alcotest.(check bool)
    "unlocked spawn captures flagged" true
    (count "D2" r.Dom.findings > 0);
  check_int "only D2" (count "D2" r.Dom.findings)
    (List.length r.Dom.findings);
  (* every finding names the racy function, none the locked twin *)
  List.iter
    (fun (f : Lint.finding) ->
      Alcotest.(check bool) "names racy" true (contains f.Lint.msg ".racy"))
    r.Dom.findings

let test_dom_lock_cycle () =
  let r = dom_check [ "dom_lock_cycle.ml" ] in
  check_int "one deadlock cycle" 1 (count "D3" r.Dom.findings);
  check_int "only D3" 1 (List.length r.Dom.findings);
  Alcotest.(check (list (list string)))
    "a <-> b cycle"
    [ [ "Dom_lock_cycle.a"; "Dom_lock_cycle.b" ] ]
    (Dom.Lockgraph.cycles r.Dom.graph);
  check_int "both orders recorded as edges" 2
    (List.length (Dom.Lockgraph.edges r.Dom.graph))

let test_dom_effect_cross () =
  let r = dom_check [ "dom_effect_cross.ml" ] in
  check_int "direct + indirect cross-domain performs" 2
    (count "D4" r.Dom.findings);
  check_int "handled twin clean" 2 (List.length r.Dom.findings)

let test_dom_allow_accounting () =
  let r = dom_check [ "dom_allow.ml" ] in
  check_int "suppressed clean" 0 (List.length r.Dom.findings);
  check_int "one finding absorbed" 1 r.Dom.suppressed;
  check_int "both allow sites recorded" 2 (List.length r.Dom.allow_sites);
  let used, stale =
    List.partition
      (fun (s : Lint.allow_site) -> s.Lint.as_uses > 0)
      r.Dom.allow_sites
  in
  check_int "one live site" 1 (List.length used);
  check_int "one stale site" 1 (List.length stale)

(* QCheck law: Tarjan-based cycle detection in Lockgraph agrees with a
   Kahn's-algorithm reference (repeatedly strip zero-in-degree nodes;
   anything left is cyclic) on random edge lists over a small node
   universe — self-loops and dense graphs included. *)
let lockgraph_cycle_law =
  QCheck.Test.make ~name:"Lockgraph.cycles agrees with Kahn reference"
    ~count:500
    QCheck.(list (pair (int_bound 7) (int_bound 7)))
    (fun raw ->
      let g = Dom.Lockgraph.create () in
      List.iter
        (fun (a, b) ->
          Dom.Lockgraph.add_edge g ~src:(string_of_int a)
            ~dst:(string_of_int b) ~file:"t" ~line:1)
        raw;
      let tarjan_cyclic = Dom.Lockgraph.cycles g <> [] in
      let nodes = Dom.Lockgraph.nodes g in
      let edges =
        List.sort_uniq compare
          (List.map (fun (a, b) -> (string_of_int a, string_of_int b)) raw)
      in
      let alive = Hashtbl.create 16 in
      List.iter (fun n -> Hashtbl.replace alive n ()) nodes;
      let changed = ref true in
      while !changed do
        changed := false;
        List.iter
          (fun n ->
            if
              Hashtbl.mem alive n
              && not
                   (List.exists
                      (fun (s, d) -> d = n && Hashtbl.mem alive s)
                      edges)
            then begin
              Hashtbl.remove alive n;
              changed := true
            end)
          nodes
      done;
      let kahn_cyclic = Hashtbl.length alive > 0 in
      tarjan_cyclic = kahn_cyclic)

(* cross-check against the runtime race sanitizer: every race site the
   sanitizer reports on the deliberately racy module must be covered by
   a static D1/D2 finding naming the same function — the static
   certifier over-approximates the dynamic detector, never the other
   way round.  The module's Env.tagged site names are its own function
   keys, so coverage is a substring check on the finding messages. *)
let test_dom_san_subset () =
  let src =
    List.find_opt Sys.file_exists
      [ "dom_racy_runtime.ml"; "test/lint/dom_racy_runtime.ml" ]
  in
  match src with
  | None -> ()
  | Some src ->
    let reports = Dom_racy_runtime.run () in
    Alcotest.(check bool)
      "sanitizer sees the race" true
      (List.length reports >= 1);
    let r = Dom.check_project [ (src, src, Lint.parse_implementation src) ] in
    let msgs = List.map (fun (f : Lint.finding) -> f.Lint.msg) r.Dom.findings in
    Alcotest.(check bool)
      "static pass flags the module" true
      (msgs <> []);
    let sites =
      List.concat_map
        (fun (rep : San.report) ->
          (rep.San.second.San.a_site
          :: (match rep.San.first with Some a -> [ a.San.a_site ] | None -> []))
          )
        reports
      |> List.filter (fun s -> s <> "?")
      |> List.sort_uniq compare
    in
    Alcotest.(check bool) "reports carry sites" true (sites <> []);
    List.iter
      (fun site ->
        Alcotest.(check bool)
          (site ^ " covered by a static finding")
          true
          (List.exists (fun m -> contains m site) msgs))
      sites

(* regression twin of [test_alloc_hot_tree_certified]: the real library
   tree must certify domain-safe — zero unsuppressed findings, an
   acyclic lock-order graph, every [@dom.allow] live, at most 5 of
   them. *)
let test_dom_tree_certified () =
  let lib =
    if Sys.file_exists "lib" then Some "lib"
    else if Sys.file_exists "../../lib" then Some "../../lib"
    else None
  in
  match lib with
  | None -> ()
  | Some lib ->
    let files = List.sort compare (collect_ml [] lib) in
    let r =
      Dom.check_project
        (List.map (fun f -> (f, f, Lint.parse_implementation f)) files)
    in
    List.iter
      (fun (f : Lint.finding) -> print_endline (Lint.finding_to_string f))
      r.Dom.findings;
    check_int "library tree certifies domain-safe" 0
      (List.length r.Dom.findings);
    Alcotest.(check (list (list string)))
      "lock-order graph acyclic" []
      (Dom.Lockgraph.cycles r.Dom.graph);
    Alcotest.(check bool)
      "module-level mutable state is inventoried" true
      (List.length r.Dom.globals >= 8);
    Alcotest.(check bool)
      "no flagged globals" true
      (List.for_all
         (fun (g : Dom.global) -> g.Dom.g_status <> Dom.S_flagged)
         r.Dom.globals);
    Alcotest.(check bool)
      "at most 5 [@dom.allow] suppressions" true
      (List.length r.Dom.allow_sites <= 5);
    List.iter
      (fun (s : Lint.allow_site) ->
        Alcotest.(check bool)
          (Printf.sprintf "allow at %s:%d is live" s.Lint.as_file
             s.Lint.as_line)
          true (s.Lint.as_uses > 0))
      r.Dom.allow_sites

(* --- determinism regression: a small fig2a-style config (uniform gets),
   run twice with the same seed under debug_checks, must agree to the last
   bit --- *)

let tiny_scale =
  {
    Harness.keyspace = 2_000;
    cores = 4;
    clients = 16;
    window = 2;
    warmup = 200_000;
    measure = 600_000;
    sample = None;
  }

let digest_of (m : Harness.measurement) =
  Digest.to_hex
    (Digest.string
       (Printf.sprintf "%.12g|%.12g|%.12g|%d|%.12g" m.Harness.mops
          m.Harness.p50_us m.Harness.p99_us m.Harness.completed
          m.Harness.cr_hit_rate))

let run_once system =
  let spec =
    Mutps_workload.Ycsb.get_only_uniform ~keyspace:tiny_scale.Harness.keyspace
      ~value_size:64 ()
  in
  let m =
    Harness.measure ~calibrate:false
      ~customize:(fun b -> Engine.set_debug_checks b.Harness.engine true)
      system tiny_scale spec
  in
  Alcotest.(check bool) "made progress" true (m.Harness.completed > 0);
  digest_of m

let test_determinism_basekv () =
  check_string "identical digests (BaseKV)" (run_once Harness.Basekv)
    (run_once Harness.Basekv)

let test_determinism_mutps () =
  check_string "identical digests (uTPS)" (run_once Harness.Mutps)
    (run_once Harness.Mutps)

(* the runtime verifier itself: an uncommitted shared-state read must trip
   Env.assert_committed when debug_checks is on, and pass silently off *)
let test_debug_checks_trip () =
  let engine = Engine.create () in
  Engine.set_debug_checks engine true;
  let hier =
    Mutps_mem.Hierarchy.create
      (Mutps_mem.Hierarchy.small_geometry ~cores:2)
  in
  let tripped = ref false in
  Mutps_sim.Simthread.spawn engine (fun ctx ->
      let env = Mutps_mem.Env.make ~ctx ~hier ~core:0 in
      Mutps_mem.Env.compute env 100;
      (* pending cycles not committed: the verifier must object *)
      match Mutps_mem.Env.assert_committed env "test-site" with
      | () -> ()
      | exception Failure _ -> tripped := true);
  Engine.run_all engine;
  Alcotest.(check bool) "uncommitted read detected" true !tripped;
  (* same read with checks off is silent *)
  let engine2 = Engine.create () in
  Mutps_sim.Simthread.spawn engine2 (fun ctx ->
      let env = Mutps_mem.Env.make ~ctx ~hier ~core:0 in
      Mutps_mem.Env.compute env 100;
      Mutps_mem.Env.assert_committed env "test-site");
  Engine.run_all engine2

let test_parked_accounting () =
  let engine = Engine.create () in
  Engine.set_debug_checks engine true;
  let cv = Mutps_sim.Simthread.Condvar.create () in
  Mutps_sim.Simthread.spawn engine (fun ctx ->
      Mutps_sim.Simthread.Condvar.wait ctx cv);
  Engine.run ~until:10 engine;
  check_int "one thread parked" 1 (Engine.parked engine);
  Mutps_sim.Simthread.Condvar.signal cv;
  Engine.run_all engine;
  check_int "resumed exactly once" 0 (Engine.parked engine)

let () =
  Alcotest.run "lint"
    [
      ( "rules",
        [
          Alcotest.test_case "R1 bad" `Quick test_r1_bad;
          Alcotest.test_case "R1 good" `Quick test_r1_good;
          Alcotest.test_case "R2 bad" `Quick test_r2_bad;
          Alcotest.test_case "R2 good" `Quick test_r2_good;
          Alcotest.test_case "R2 lib/mem exempt" `Quick test_r2_mem_exempt;
          Alcotest.test_case "R3 bad" `Quick test_r3_bad;
          Alcotest.test_case "R3 good" `Quick test_r3_good;
          Alcotest.test_case "R4 bad" `Quick test_r4_bad;
          Alcotest.test_case "R4 good" `Quick test_r4_good;
          Alcotest.test_case "file suppression" `Quick test_file_suppression;
          Alcotest.test_case "finding format" `Quick test_finding_format;
          Alcotest.test_case "check_string" `Quick test_check_string;
          Alcotest.test_case "syntax error" `Quick test_syntax_error;
        ] );
      ( "interprocedural",
        [
          Alcotest.test_case "dominated call sites proven" `Quick
            test_interp_r3_proven;
          Alcotest.test_case "exposed call site flagged" `Quick
            test_interp_r3_exposed;
          Alcotest.test_case "closure escape flagged" `Quick
            test_interp_r3_closure_escape;
          Alcotest.test_case "indirect R2 leak flagged" `Quick
            test_interp_r2_leak;
          Alcotest.test_case "Env path sanctioned" `Quick
            test_interp_r2_env_sanctioned;
        ] );
      ( "alloc",
        [
          Alcotest.test_case "A1 closure + tuple" `Quick
            test_alloc_closure_tuple;
          Alcotest.test_case "A2 float boxing" `Quick test_alloc_float_boxing;
          Alcotest.test_case "A1 ref + A3 printf" `Quick test_alloc_ref_in_loop;
          Alcotest.test_case "[@alloc.allow] accounting" `Quick
            test_alloc_allow_accounting;
          Alcotest.test_case "indirect allocation via callee" `Quick
            test_alloc_indirect;
          Alcotest.test_case "exempt shapes clean" `Quick test_alloc_good;
          Alcotest.test_case "hot tree certifies" `Quick
            test_alloc_hot_tree_certified;
        ] );
      ( "dom",
        [
          Alcotest.test_case "D1 racy global" `Quick test_dom_racy_global;
          Alcotest.test_case "D1 DLS ok" `Quick test_dom_dls_ok;
          Alcotest.test_case "D1 mutex ok" `Quick test_dom_mutex_ok;
          Alcotest.test_case "D2 spawn escape" `Quick test_dom_spawn_escape;
          Alcotest.test_case "D3 lock cycle" `Quick test_dom_lock_cycle;
          Alcotest.test_case "D4 effect cross-domain" `Quick
            test_dom_effect_cross;
          Alcotest.test_case "[@dom.allow] accounting" `Quick
            test_dom_allow_accounting;
          QCheck_alcotest.to_alcotest lockgraph_cycle_law;
          Alcotest.test_case "san races subset of static" `Quick
            test_dom_san_subset;
          Alcotest.test_case "library tree certifies" `Quick
            test_dom_tree_certified;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "BaseKV digest" `Slow test_determinism_basekv;
          Alcotest.test_case "uTPS digest" `Slow test_determinism_mutps;
          Alcotest.test_case "debug_checks trips" `Quick test_debug_checks_trip;
          Alcotest.test_case "parked accounting" `Quick test_parked_accounting;
        ] );
    ]
