(* Tests for the observability layer (lib/trace): the collector, the
   Perfetto exporter, the metrics registry, the cycle profiler — and the
   subsystem's core promise, that attaching it does not perturb the
   simulation. *)

module Engine = Mutps_sim.Engine
module Simthread = Mutps_sim.Simthread
module Env = Mutps_mem.Env
module Hierarchy = Mutps_mem.Hierarchy
module Trace = Mutps_trace.Trace
module Metrics = Mutps_trace.Metrics
module Perfetto = Mutps_trace.Perfetto
module Profile = Mutps_trace.Profile

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* A minimal JSON parser — enough to validate the exporter's output    *)
(* structurally rather than by substring matching.                     *)
(* ------------------------------------------------------------------ *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  exception Bad of string

  let parse s =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then s.[!pos] else raise (Bad "eof") in
    let next () =
      let c = peek () in
      incr pos;
      c
    in
    let rec skip_ws () =
      if !pos < n then
        match s.[!pos] with
        | ' ' | '\t' | '\n' | '\r' ->
          incr pos;
          skip_ws ()
        | _ -> ()
    in
    let expect c =
      if next () <> c then raise (Bad (Printf.sprintf "expected %c" c))
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        match next () with
        | '"' -> Buffer.contents b
        | '\\' -> (
          match next () with
          | '"' -> Buffer.add_char b '"'; go ()
          | '\\' -> Buffer.add_char b '\\'; go ()
          | '/' -> Buffer.add_char b '/'; go ()
          | 'n' -> Buffer.add_char b '\n'; go ()
          | 't' -> Buffer.add_char b '\t'; go ()
          | 'r' -> Buffer.add_char b '\r'; go ()
          | 'b' -> Buffer.add_char b '\b'; go ()
          | 'f' -> Buffer.add_char b '\012'; go ()
          | 'u' ->
            let hex = String.sub s !pos 4 in
            pos := !pos + 4;
            Buffer.add_char b (Char.chr (int_of_string ("0x" ^ hex) land 0xff));
            go ()
          | c -> raise (Bad (Printf.sprintf "bad escape %c" c)))
        | c -> Buffer.add_char b c; go ()
      in
      go ()
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | '"' -> Str (parse_string ())
      | '{' ->
        expect '{';
        skip_ws ();
        if peek () = '}' then (incr pos; Obj [])
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match next () with
            | ',' -> members ((k, v) :: acc)
            | '}' -> Obj (List.rev ((k, v) :: acc))
            | c -> raise (Bad (Printf.sprintf "in object: %c" c))
          in
          members []
        end
      | '[' ->
        expect '[';
        skip_ws ();
        if peek () = ']' then (incr pos; List [])
        else begin
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match next () with
            | ',' -> elems (v :: acc)
            | ']' -> List (List.rev (v :: acc))
            | c -> raise (Bad (Printf.sprintf "in list: %c" c))
          in
          elems []
        end
      | 't' -> pos := !pos + 4; Bool true
      | 'f' -> pos := !pos + 5; Bool false
      | 'n' -> pos := !pos + 4; Null
      | _ ->
        let start = !pos in
        while
          !pos < n
          && (match s.[!pos] with
             | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
             | _ -> false)
        do
          incr pos
        done;
        if !pos = start then raise (Bad "bad value");
        Num (float_of_string (String.sub s start (!pos - start)))
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then raise (Bad "trailing garbage");
    v

  let mem k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
  let str = function Str s -> s | _ -> raise (Bad "not a string")
  let num = function Num f -> f | _ -> raise (Bad "not a number")
end

(* ------------------------------------------------------------------ *)
(* Driving a small simulation through the instrumented Env             *)
(* ------------------------------------------------------------------ *)

(* Two threads doing tagged work, an instant and three counter tracks:
   everything the exporter has to render, at unit-test cost. *)
let small_sim () =
  let engine = Engine.create () in
  let hier = Hierarchy.create (Hierarchy.small_geometry ~cores:2) in
  for core = 0 to 1 do
    Simthread.spawn engine
      ~name:(Printf.sprintf "worker-%d" core)
      (fun ctx ->
        let env = Env.make ~ctx ~hier ~core in
        for i = 0 to 9 do
          Env.tagged env "outer" (fun () ->
              Env.compute env 100;
              Env.tagged env "inner" (fun () ->
                  Env.load env ~addr:(core * 4096) ~size:64));
          if i = 5 then
            Env.instant env ~name:"milestone" ~arg:(string_of_int i);
          Env.counter env ~track:(Printf.sprintf "track-%d" (i mod 3))
            ~value:(float_of_int i);
          Env.commit env
        done)
  done;
  Engine.run_all engine;
  engine

let test_collector_basics () =
  let engine, traces = Trace.traced small_sim in
  check_int "one engine traced" 1 (List.length traces);
  let t = List.hd traces in
  check_int "engine id matches" (Engine.id engine) (Trace.engine_id t);
  check_int "two threads" 2 (Trace.thread_count t);
  check_string "thread 0 name" "worker-0" (Trace.thread_name t 0);
  check_string "events track" "events" (Trace.thread_name t (-1));
  (* 2 threads x 10 iterations x (outer + inner) *)
  check_int "slices" 40 (Trace.slice_count t);
  check_int "instants" 2 (Trace.instant_count t);
  check_int "counters" 20 (Trace.counter_count t);
  check_int "nothing dropped" 0 (Trace.dropped t);
  check_bool "cycles attributed" true (Trace.profile_total t > 0);
  (* slices nest: every inner lies within some outer on the same track *)
  Trace.iter_slices t (fun s ->
      check_bool "slice has positive span" true Trace.(s.s_t1 > s.s_t0))

let test_trace_off_is_off () =
  (* without [traced], engines get no tracer and hooks stay disengaged *)
  let engine = small_sim () in
  check_bool "no tracer attached" true (Engine.tracer engine = None)

let test_event_cap () =
  let _, traces =
    Trace.traced ~max_events:10 (fun () -> ignore (small_sim ()))
  in
  let t = List.hd traces in
  let kept =
    Trace.slice_count t + Trace.instant_count t + Trace.counter_count t
  in
  check_int "capped" 10 kept;
  check_int "rest counted" (40 + 2 + 20 - 10) (Trace.dropped t);
  (* the profile is exempt from the cap *)
  check_bool "profile still complete" true (Trace.profile_total t > 0)

(* ------------------------------------------------------------------ *)
(* Perfetto export                                                     *)
(* ------------------------------------------------------------------ *)

let test_perfetto_valid_json () =
  let engine, traces = Trace.traced small_sim in
  let json = Perfetto.to_json traces in
  let root = Json.parse json in
  let events =
    match Json.mem "traceEvents" root with
    | Some (Json.List l) -> l
    | _ -> Alcotest.fail "no traceEvents array"
  in
  let ph e = match Json.mem "ph" e with Some v -> Json.str v | None -> "" in
  let slices = List.filter (fun e -> ph e = "X") events in
  let counters = List.filter (fun e -> ph e = "C") events in
  let instants = List.filter (fun e -> ph e = "i") events in
  let metas = List.filter (fun e -> ph e = "M") events in
  check_int "slices exported" 40 (List.length slices);
  check_int "instants exported" 2 (List.length instants);
  check_int "counter samples exported" 20 (List.length counters);
  (* process metadata + events track + one thread_name per thread *)
  check_int "metadata records" 4 (List.length metas);
  let distinct_counter_tracks =
    List.sort_uniq compare
      (List.map
         (fun e -> Json.str (Option.get (Json.mem "name" e)))
         counters)
  in
  check_bool "at least 3 counter tracks" true
    (List.length distinct_counter_tracks >= 3);
  List.iter
    (fun e ->
      check_int "slice pid is engine id" (Engine.id engine)
        (int_of_float (Json.num (Option.get (Json.mem "pid" e))));
      check_bool "slice tid is a thread track" true
        (let tid = int_of_float (Json.num (Option.get (Json.mem "tid" e))) in
         tid = 1 || tid = 2);
      check_bool "dur non-negative" true
        (Json.num (Option.get (Json.mem "dur" e)) >= 0.0))
    slices;
  (* ts is cycles scaled to microseconds at the given clock *)
  let json2 = Perfetto.to_json ~ghz:1.0 traces in
  check_bool "clock rate changes timestamps" true (json2 <> json)

let test_perfetto_escaping () =
  let _, traces =
    Trace.traced (fun () ->
        let engine = Engine.create () in
        let hier = Hierarchy.create (Hierarchy.small_geometry ~cores:1) in
        Simthread.spawn engine ~name:"evil \"name\"\\" (fun ctx ->
            let env = Env.make ~ctx ~hier ~core:0 in
            Env.tagged env "site \"quoted\"" (fun () -> Env.compute env 5);
            Env.instant env ~name:"inst" ~arg:"line1\nline2";
            Env.commit env);
        Engine.run_all engine)
  in
  let json = Perfetto.to_json traces in
  match Json.parse json with
  | Json.Obj _ -> ()
  | _ -> Alcotest.fail "escaped JSON did not parse to an object"

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                    *)
(* ------------------------------------------------------------------ *)

let test_metrics_registry () =
  let reg = Metrics.create () in
  let hits = ref 0 in
  Metrics.set_scope reg "sysA";
  Metrics.register reg ~kind:Metrics.Counter ~subsystem:"cache" ~name:"hits"
    (fun () -> float_of_int !hits);
  Metrics.set_scope reg "sysB";
  Metrics.register reg ~subsystem:"ring" ~name:"occupancy" (fun () -> 3.5);
  check_int "two entries" 2 (Metrics.size reg);
  hits := 7;
  let csv = Metrics.to_csv reg in
  let lines = String.split_on_char '\n' (String.trim csv) in
  check_int "header + 2 rows" 3 (List.length lines);
  check_string "header" "scope,subsystem,name,kind,value" (List.hd lines);
  check_string "counter row read late" "sysA,cache,hits,counter,7"
    (List.nth lines 1);
  check_string "gauge row" "sysB,ring,occupancy,gauge,3.5" (List.nth lines 2);
  (* track names carry the scope prefix *)
  match Metrics.entries reg with
  | [ a; b ] ->
    check_string "track name" "sysA/cache.hits" (Metrics.track_name a);
    check_string "track name" "sysB/ring.occupancy" (Metrics.track_name b)
  | _ -> Alcotest.fail "entries"

let test_metrics_json_valid () =
  let reg = Metrics.create () in
  Metrics.register reg ~subsystem:"odd \"names\"" ~name:"inf" (fun () ->
      Float.infinity);
  Metrics.register reg ~subsystem:"s" ~name:"v" (fun () -> 1.25);
  match Json.parse (Metrics.to_json reg) with
  | Json.List [ a; _ ] ->
    (* non-finite values must still be parseable (rendered as 0) *)
    check_bool "inf rendered finite" true
      (Json.num (Option.get (Json.mem "value" a)) = 0.0)
  | _ -> Alcotest.fail "metrics JSON shape"

let test_metrics_sampled_into_counters () =
  let reg = Metrics.create () in
  Metrics.set_current (Some reg);
  Fun.protect ~finally:(fun () -> Metrics.set_current None) @@ fun () ->
  let _, traces =
    (* tiny sampling period so the 100-cycle slices trip it *)
    Trace.traced ~sample_every:50 (fun () ->
        let engine = Engine.create () in
        Metrics.register reg ~engine_id:(Engine.id engine) ~subsystem:"s"
          ~name:"level" (fun () -> 42.0);
        let hier = Hierarchy.create (Hierarchy.small_geometry ~cores:1) in
        Simthread.spawn engine ~name:"w" (fun ctx ->
            let env = Env.make ~ctx ~hier ~core:0 in
            for _ = 1 to 20 do
              Env.tagged env "work" (fun () -> Env.compute env 100);
              Env.commit env
            done);
        Engine.run_all engine)
  in
  let t = List.hd traces in
  let found = ref false in
  Trace.iter_counters t (fun c ->
      if c.Trace.c_track = "s.level" && c.Trace.c_value = 42.0 then
        found := true);
  check_bool "metric sampled into a counter track" true !found

(* ------------------------------------------------------------------ *)
(* Profile                                                             *)
(* ------------------------------------------------------------------ *)

let test_profile_folded () =
  let _, traces = Trace.traced small_sim in
  let folded = Profile.folded traces in
  check_bool "has stacks" true (List.length folded > 0);
  (* nested site shows as thread;outer;inner *)
  check_bool "nested stack present" true
    (List.mem_assoc "worker-0;outer;inner" folded);
  check_bool "outer-only cycles present" true
    (List.mem_assoc "worker-0;outer" folded);
  (* sorted by stack key *)
  let keys = List.map fst folded in
  check_bool "sorted" true (keys = List.sort String.compare keys);
  (* totals agree with the collector *)
  let sum = List.fold_left (fun a (_, c) -> a + c) 0 folded in
  check_int "mass conserved" (Profile.total traces) sum;
  (* text form: "stack cycles" per line *)
  let text = Profile.to_text traces in
  List.iter
    (fun line ->
      match String.rindex_opt line ' ' with
      | Some i ->
        check_bool "count parses" true
          (int_of_string_opt
             (String.sub line (i + 1) (String.length line - i - 1))
          <> None)
      | None -> Alcotest.fail "no count on profile line")
    (String.split_on_char '\n' (String.trim text))

(* ------------------------------------------------------------------ *)
(* Batched charge accounting: observation equivalence                  *)
(* ------------------------------------------------------------------ *)

(* The Env batches traced-mode cycle charges per site path and flushes at
   site boundaries and commits (lib/mem/env.ml).  [tr_cycles] carries no
   timestamp, so per-(thread, site-stack) totals must be bit-identical
   whether every access reports individually (batching off) or as summed
   batches (batching on, the default).  These tests pin that down. *)

let batching_sim set_mode () =
  let engine = Engine.create () in
  let hier = Hierarchy.create (Hierarchy.small_geometry ~cores:2) in
  for core = 0 to 1 do
    Simthread.spawn engine
      ~name:(Printf.sprintf "worker-%d" core)
      (fun ctx ->
        let env = Env.make ~ctx ~hier ~core in
        for i = 0 to 19 do
          set_mode env i;
          Env.tagged env "outer" (fun () ->
              Env.compute env 75;
              Env.load env ~addr:((core * 8192) + (i * 64)) ~size:64;
              Env.tagged env "inner" (fun () ->
                  Env.store env ~addr:((core * 8192) + (i * 64)) ~size:8;
                  Env.load_speculative env ~addr:(core * 8192) ~size:64));
          Env.commit env
        done)
  done;
  Engine.run_all engine

let profile_of set_mode =
  let _, traces = Trace.traced (batching_sim set_mode) in
  let t = List.hd traces in
  (Trace.profile_total t, Trace.profile_entries t)

let test_batching_totals_identical () =
  let total_on, entries_on =
    profile_of (fun env _ ->
        check_bool "batching is the default" true (Env.trace_batching env);
        Env.set_trace_batching env true)
  in
  let total_off, entries_off =
    profile_of (fun env _ -> Env.set_trace_batching env false)
  in
  check_bool "cycles attributed" true (total_on > 0);
  check_int "profile totals identical" total_off total_on;
  check_int "same stack count" (List.length entries_off)
    (List.length entries_on);
  List.iter2
    (fun (stack_off, cycles_off) (stack_on, cycles_on) ->
      check_string "stack key" stack_off stack_on;
      check_int
        (Printf.sprintf "cycles under %s" stack_off)
        cycles_off cycles_on)
    entries_off entries_on

let test_batching_midrun_toggle_lossless () =
  (* flipping the mode mid-run flushes the pending batch at the switch:
     nothing is lost or double-counted relative to either pure mode *)
  let total_on, entries_on =
    profile_of (fun env _ -> Env.set_trace_batching env true)
  in
  let total_mix, entries_mix =
    profile_of (fun env i -> Env.set_trace_batching env (i mod 3 <> 0))
  in
  check_int "totals identical" total_on total_mix;
  check_bool "per-site entries identical" true (entries_on = entries_mix)

(* ------------------------------------------------------------------ *)
(* Determinism: the tentpole guarantee                                 *)
(* ------------------------------------------------------------------ *)

let capture_stdout f =
  let tmp = Filename.temp_file "trace_digest" ".out" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  let saved = Unix.dup Unix.stdout in
  flush Stdlib.stdout;
  Unix.dup2 fd Unix.stdout;
  Unix.close fd;
  let finish () =
    flush Stdlib.stdout;
    Unix.dup2 saved Unix.stdout;
    Unix.close saved
  in
  Fun.protect ~finally:finish f;
  let ic = open_in_bin tmp in
  let len = in_channel_length ic in
  let out = really_input_string ic len in
  close_in ic;
  Sys.remove tmp;
  out

let tiny_scale =
  {
    Mutps_experiments.Harness.keyspace = 1_500;
    cores = 4;
    clients = 16;
    window = 2;
    warmup = 150_000;
    measure = 400_000;
    sample = None;
  }

let test_fig2a_traced_untraced_identical () =
  (* the same seed must produce bit-identical experiment output whether or
     not the full observability stack is attached: collectors never
     schedule events, charge cycles, or mutate simulation state *)
  let run_plain () =
    capture_stdout (fun () ->
        ignore (Mutps_experiments.Fig2.run_2a tiny_scale))
  in
  let run_traced () =
    let reg = Metrics.create () in
    Metrics.set_current (Some reg);
    Fun.protect ~finally:(fun () -> Metrics.set_current None) @@ fun () ->
    let out, traces =
      Trace.traced (fun () ->
          capture_stdout (fun () ->
              ignore (Mutps_experiments.Fig2.run_2a tiny_scale)))
    in
    check_bool "engines collected" true (List.length traces > 1);
    check_bool "events recorded" true
      (List.exists (fun t -> Trace.slice_count t > 0) traces);
    check_bool "metrics registered" true (Metrics.size reg > 0);
    out
  in
  let plain = run_plain () in
  let traced = run_traced () in
  let plain2 = run_plain () in
  check_bool "fig2a output non-trivial" true (String.length plain > 100);
  (* the run itself is reproducible in-process... *)
  check_string "untraced digest reproducible" (Digest.to_hex (Digest.string plain))
    (Digest.to_hex (Digest.string plain2));
  (* ...and tracing does not shift a single byte of it *)
  check_string "traced digest identical"
    (Digest.to_hex (Digest.string plain))
    (Digest.to_hex (Digest.string traced))

let () =
  Alcotest.run "trace"
    [
      ( "collector",
        [
          Alcotest.test_case "basics" `Quick test_collector_basics;
          Alcotest.test_case "off by default" `Quick test_trace_off_is_off;
          Alcotest.test_case "event cap" `Quick test_event_cap;
        ] );
      ( "perfetto",
        [
          Alcotest.test_case "valid JSON" `Quick test_perfetto_valid_json;
          Alcotest.test_case "escaping" `Quick test_perfetto_escaping;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "registry + CSV" `Quick test_metrics_registry;
          Alcotest.test_case "JSON valid" `Quick test_metrics_json_valid;
          Alcotest.test_case "sampled into counters" `Quick
            test_metrics_sampled_into_counters;
        ] );
      ( "profile",
        [ Alcotest.test_case "folded stacks" `Quick test_profile_folded ] );
      ( "charge batching",
        [
          Alcotest.test_case "per-site totals identical on/off" `Quick
            test_batching_totals_identical;
          Alcotest.test_case "mid-run toggle lossless" `Quick
            test_batching_midrun_toggle_lossless;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "fig2a traced = untraced" `Slow
            test_fig2a_traced_untraced_identical;
        ] );
    ]
