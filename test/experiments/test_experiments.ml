(* Tests for the experiment harness's pure parts: the registry, table
   rendering, and scale handling. *)

open Mutps_experiments

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_registry_complete () =
  (* every table and figure of the paper's evaluation must be present *)
  let expected =
    [ "table1"; "fig2a"; "fig2b"; "fig2c"; "fig7"; "fig8a"; "fig8bc";
      "fig9"; "fig10"; "fig11"; "fig12"; "fig13"; "fig14"; "native_serve" ]
  in
  List.iter
    (fun name ->
      check_bool (name ^ " registered") true (Registry.find name <> None))
    expected;
  check_int "exactly the paper's experiments" (List.length expected)
    (List.length Registry.all)

let test_registry_names_unique () =
  let names = Registry.names () in
  check_int "no duplicates" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_registry_find_missing () =
  check_bool "unknown name" true (Registry.find "fig99" = None)

let test_table_rendering () =
  let t = Table.create [ "col"; "value" ] in
  Table.add_row t [ "a"; "1.00" ];
  Table.add_row t [ "long-name"; "2.50" ];
  let buf_name = Filename.temp_file "table" ".txt" in
  let out = open_out buf_name in
  Table.print ~out t;
  close_out out;
  let ic = open_in buf_name in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  Sys.remove buf_name;
  let lines = List.rev !lines in
  check_int "header + rule + 2 rows" 4 (List.length lines);
  (* all data lines align: same length modulo trailing spaces *)
  (match lines with
  | header :: _ ->
    check_bool "header mentions both columns" true
      (String.length header >= String.length "col  value")
  | [] -> Alcotest.fail "no output");
  check_bool "rows preserved in order" true
    (match lines with
    | _ :: _ :: r1 :: r2 :: _ ->
      String.length r1 > 0
      && r1.[0] = 'a'
      && String.sub r2 0 9 = "long-name"
    | _ -> false)

let test_cells () =
  Alcotest.(check string) "float cell" "3.14" (Table.cell_f 3.1416);
  Alcotest.(check string) "int cell" "42" (Table.cell_i 42)

let test_scale_fields_sane () =
  let s = Harness.default_scale in
  check_bool "keyspace positive" true (s.Harness.keyspace > 0);
  check_bool "cores >= 2" true (s.Harness.cores >= 2);
  check_bool "warmup < measure * 2" true (s.Harness.warmup < 2 * s.Harness.measure)

let test_system_names () =
  Alcotest.(check string) "mutps" "uTPS" (Harness.system_name Harness.Mutps);
  Alcotest.(check string) "basekv" "BaseKV" (Harness.system_name Harness.Basekv);
  Alcotest.(check string) "erpckv" "eRPC-KV" (Harness.system_name Harness.Erpckv)

let test_populate_size () =
  let fixed = Mutps_workload.Ycsb.a ~keyspace:100 ~value_size:777 () in
  check_int "fixed size" 777 (Harness.populate_size fixed);
  let etc = Mutps_workload.Etc.spec ~keyspace:100 ~get_ratio:0.5 () in
  check_bool "etc mean in band" true
    (let m = Harness.populate_size etc in
     m > 30 && m < 200)

(* --- Report: canonical rows, JSON round-trip, drift detection --- *)

let sample_rows =
  [
    (* axis and metrics deliberately given out of order: the smart
       constructor must canonicalize *)
    Report.row ~experiment:"figX" ~system:"uTPS"
      ~axis:[ ("size", "64"); ("index", "tree") ]
      [ ("p99_us", 12.5); ("mops", 3.25) ];
    Report.row ~experiment:"figX" ~system:"BaseKV"
      ~axis:[ ("index", "tree"); ("size", "64") ]
      [ ("mops", 1.75) ];
    Report.row ~experiment:"tableY" ~axis:[]
      [ ("ratio", 0.799835); ("zero", 0.0); ("neg", -0.25) ];
  ]

let test_report_canonical_order () =
  match sample_rows with
  | r :: _ ->
    Alcotest.(check (list string))
      "axis keys sorted" [ "index"; "size" ]
      (List.map fst r.Report.axis);
    Alcotest.(check (list string))
      "metric keys sorted" [ "mops"; "p99_us" ]
      (List.map fst r.Report.metrics)
  | [] -> assert false

let test_report_float_format () =
  let f = Report.float_to_string in
  Alcotest.(check string) "integral" "3" (f 3.0);
  Alcotest.(check string) "trailing zeros stripped" "0.25" (f 0.25);
  Alcotest.(check string) "six places kept" "0.799835" (f 0.799835);
  Alcotest.(check string) "negative zero" "0" (f (-0.0));
  Alcotest.(check string) "non-finite" "0" (f Float.infinity);
  (* idempotent: formatting a re-parsed value reproduces the string *)
  List.iter
    (fun v ->
      let s = f v in
      Alcotest.(check string) ("idempotent " ^ s) s (f (float_of_string s)))
    [ 3.0; 0.25; 0.799835; 1032.453462; -0.125; 1e-7 ]

let test_report_json_roundtrip () =
  let json = Report.to_json sample_rows in
  let rows' = Report.of_json json in
  check_int "row count survives" (List.length sample_rows)
    (List.length rows');
  (* serialize(parse(serialize x)) = serialize x: the representation is
     canonical, so CI can compare files byte for byte *)
  Alcotest.(check string) "canonical fixpoint" json (Report.to_json rows')

let test_report_json_rejects_garbage () =
  check_bool "garbage rejected" true
    (match Report.of_json "{\"schema\":\"mutps-bench/v1\",\"rows\":[" with
    | exception Report.Parse_error _ -> true
    | _ -> false)

let test_report_diff () =
  let base = sample_rows in
  check_int "no drift on identical" 0
    (List.length (Report.diff ~baseline:base ~current:base ()));
  (* a metric change is exactly one drift *)
  let bumped =
    List.map
      (fun (r : Report.row) ->
        if r.Report.system = "uTPS" then
          Report.row ~experiment:r.Report.experiment ~system:r.Report.system
            ~axis:r.Report.axis
            (List.map
               (fun (k, v) -> (k, if k = "mops" then v +. 0.01 else v))
               r.Report.metrics)
        else r)
      base
  in
  (match Report.diff ~baseline:base ~current:bumped () with
  | [ Report.Metric_drift { name; _ } ] ->
    Alcotest.(check string) "drifted metric" "mops" name
  | ds -> Alcotest.failf "expected one metric drift, got %d" (List.length ds));
  (* ...and is forgiven under a loose relative tolerance *)
  check_int "tolerance forgives" 0
    (List.length (Report.diff ~tolerance:0.1 ~baseline:base ~current:bumped ()));
  (* a dropped row is a Missing_row, an added one an Extra_row *)
  (match Report.diff ~baseline:base ~current:(List.tl base) () with
  | [ Report.Missing_row _ ] -> ()
  | _ -> Alcotest.fail "expected missing row");
  match Report.diff ~baseline:(List.tl base) ~current:base () with
  | [ Report.Extra_row _ ] -> ()
  | _ -> Alcotest.fail "expected extra row"

(* --- Runner: domain fan-out must not change results --- *)

let runner_scale =
  {
    Harness.keyspace = 1_000;
    cores = 4;
    clients = 8;
    window = 2;
    warmup = 50_000;
    measure = 150_000;
    sample = None;
  }

let test_runner_jobs_deterministic () =
  let names = [ "table1"; "fig2b" ] in
  let serial = Runner.run_all ~jobs:1 names runner_scale in
  let fanned = Runner.run_all ~jobs:4 names runner_scale in
  check_int "no failures serial" 0 (List.length (Runner.failed serial));
  check_int "no failures fanned" 0 (List.length (Runner.failed fanned));
  (* rows AND captured text agree byte for byte across job counts *)
  Alcotest.(check string)
    "rows identical"
    (Report.to_json (Runner.rows serial))
    (Report.to_json (Runner.rows fanned));
  List.iter2
    (fun (a : Runner.outcome) (b : Runner.outcome) ->
      Alcotest.(check string) (a.Runner.name ^ " name") a.Runner.name
        b.Runner.name;
      Alcotest.(check string)
        (a.Runner.name ^ " output")
        a.Runner.output b.Runner.output)
    serial fanned

let test_runner_unknown_name () =
  check_bool "unknown name raises before running" true
    (match Runner.run_all [ "table1"; "fig99" ] runner_scale with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_mk_config_scales_geometry () =
  (* below ~500K keys the geometry sits on its floor; above it scales *)
  let small = Harness.mk_config { Harness.default_scale with Harness.keyspace = 500_000 } in
  let big = Harness.mk_config { Harness.default_scale with Harness.keyspace = 2_000_000 } in
  match (small.Mutps_kvs.Config.geometry, big.Mutps_kvs.Config.geometry) with
  | Some gs, Some gb ->
    check_bool "LLC grows with keyspace" true
      (gb.Mutps_mem.Hierarchy.llc_sets > gs.Mutps_mem.Hierarchy.llc_sets)
  | _ -> Alcotest.fail "scaled geometry expected"

let () =
  Alcotest.run "experiments"
    [
      ( "registry",
        [
          Alcotest.test_case "complete" `Quick test_registry_complete;
          Alcotest.test_case "unique" `Quick test_registry_names_unique;
          Alcotest.test_case "find missing" `Quick test_registry_find_missing;
        ] );
      ( "table",
        [
          Alcotest.test_case "rendering" `Quick test_table_rendering;
          Alcotest.test_case "cells" `Quick test_cells;
        ] );
      ( "harness",
        [
          Alcotest.test_case "scale sane" `Quick test_scale_fields_sane;
          Alcotest.test_case "system names" `Quick test_system_names;
          Alcotest.test_case "populate size" `Quick test_populate_size;
          Alcotest.test_case "scaled geometry" `Quick test_mk_config_scales_geometry;
        ] );
      ( "report",
        [
          Alcotest.test_case "canonical order" `Quick test_report_canonical_order;
          Alcotest.test_case "float format" `Quick test_report_float_format;
          Alcotest.test_case "json round-trip" `Quick test_report_json_roundtrip;
          Alcotest.test_case "json rejects garbage" `Quick
            test_report_json_rejects_garbage;
          Alcotest.test_case "diff" `Quick test_report_diff;
        ] );
      ( "runner",
        [
          Alcotest.test_case "unknown name" `Quick test_runner_unknown_name;
          Alcotest.test_case "jobs=4 matches jobs=1" `Slow
            test_runner_jobs_deterministic;
        ] );
    ]
