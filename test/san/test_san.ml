(* Tests for the simulated-time race sanitizer (lib/san):

   - QCheck laws of the vector-clock lattice (join is the LUB, leq is a
     partial order, incr strictly advances).
   - Deterministic fixtures: a deliberately racy pair of threads yields
     exactly one report; time-separated and ring-handoff patterns yield
     none; a raw store into a locked item payload trips the lockset
     check.
   - Sanitized smoke: every registered experiment, at a small scale,
     must report zero races — the paper's protocols (seqlock items, CR-MR
     rings, hot-cache epochs) are all exercised. *)

module San = Mutps_san.San
module Vclock = Mutps_san.Vclock
module Engine = Mutps_sim.Engine
module Simthread = Mutps_sim.Simthread
module Env = Mutps_mem.Env
module Hierarchy = Mutps_mem.Hierarchy
module Layout = Mutps_mem.Layout
module Item = Mutps_store.Item
module Slab = Mutps_store.Slab
module Ring = Mutps_queue.Ring
module Trace = Mutps_trace.Trace

let check_int = Alcotest.(check int)

(* --- vector-clock laws --- *)

(* a clock from a list of per-thread counts *)
let clock_of_list l =
  let c = Vclock.create () in
  List.iteri
    (fun tid n ->
      for _ = 1 to n do
        Vclock.incr c tid
      done)
    l;
  c

let clock_gen = QCheck.(list_of_size Gen.(int_range 0 5) (int_range 0 8))

let prop_join_is_lub =
  QCheck.Test.make ~name:"join is the least upper bound" ~count:300
    QCheck.(triple clock_gen clock_gen clock_gen)
    (fun (la, lb, lc) ->
      let a = clock_of_list la and b = clock_of_list lb in
      let j = Vclock.copy a in
      Vclock.join j b;
      (* upper bound *)
      Vclock.leq a j && Vclock.leq b j
      &&
      (* least: any other upper bound covers the join *)
      let c = Vclock.copy (clock_of_list lc) in
      Vclock.join c a;
      Vclock.join c b;
      (* c is now an upper bound of a and b; it must cover j *)
      Vclock.leq j c)

let prop_leq_partial_order =
  QCheck.Test.make ~name:"leq is a partial order" ~count:300
    QCheck.(triple clock_gen clock_gen clock_gen)
    (fun (la, lb, lc) ->
      let a = clock_of_list la
      and b = clock_of_list lb
      and c = clock_of_list lc in
      (* reflexive *)
      Vclock.leq a a
      (* antisymmetric (pointwise: mutual leq means equal components) *)
      && (not (Vclock.leq a b && Vclock.leq b a)
         || List.for_all
              (fun tid -> Vclock.get a tid = Vclock.get b tid)
              (List.init 8 Fun.id))
      (* transitive *)
      && ((not (Vclock.leq a b && Vclock.leq b c)) || Vclock.leq a c))

let prop_incr_strictly_advances =
  QCheck.Test.make ~name:"incr strictly advances its component" ~count:300
    QCheck.(pair clock_gen (int_range 0 7))
    (fun (l, tid) ->
      let before = clock_of_list l in
      let after = Vclock.copy before in
      Vclock.incr after tid;
      Vclock.leq before after
      && (not (Vclock.leq after before))
      && Vclock.get after tid = Vclock.get before tid + 1)

(* --- deterministic fixtures --- *)

let fixture f =
  San.sanitized (fun () ->
      let engine = Engine.create () in
      let layout = Layout.create () in
      let hier = Hierarchy.create (Hierarchy.small_geometry ~cores:4) in
      let spawn name core body =
        Simthread.spawn engine ~name (fun ctx ->
            body (Env.make ~ctx ~hier ~core))
      in
      f engine layout spawn;
      Engine.run_all engine)
  |> snd

(* two threads touch the same line inside overlapping uncommitted
   windows: exactly one race, reported once (deduplicated) *)
let racy_body _engine layout spawn =
  let region = Layout.region layout ~name:"shared" ~size:64 in
  let addr = Layout.alloc region ~align:64 8 in
  spawn "writer" 0 (fun env ->
      Env.tagged env "fixture.writer" @@ fun () ->
      Env.compute env 1_000;
      Env.store env ~addr ~size:8;
      Env.commit env);
  spawn "reader" 1 (fun env ->
      Env.tagged env "fixture.reader" @@ fun () ->
      Simthread.delay env.Env.ctx 500;
      Env.load env ~addr ~size:8;
      Env.commit env)

let test_racy_pair () =
  let reports = fixture racy_body in
  check_int "exactly one report" 1 (List.length reports);
  match reports with
  | [ r ] ->
    Alcotest.(check bool) "is a race" true (r.San.kind = San.Race);
    Alcotest.(check bool)
      "names both sites" true
      (match r.San.first with
      | Some a ->
        (a.San.a_site = "fixture.writer" || r.San.second.San.a_site = "fixture.writer")
        && (a.San.a_site = "fixture.reader"
           || r.San.second.San.a_site = "fixture.reader")
      | None -> false)
  | _ -> Alcotest.fail "expected exactly one report"

(* same pair, but the reader starts long after the writer committed: the
   schedule edge orders them — no report *)
let clean_body _engine layout spawn =
  let region = Layout.region layout ~name:"shared" ~size:64 in
  let addr = Layout.alloc region ~align:64 8 in
  spawn "writer" 0 (fun env ->
      Env.compute env 100;
      Env.store env ~addr ~size:8;
      Env.commit env);
  spawn "reader" 1 (fun env ->
      Simthread.delay env.Env.ctx 50_000;
      Env.load env ~addr ~size:8;
      Env.commit env)

let test_time_separated () =
  let reports = fixture clean_body in
  check_int "no reports" 0 (List.length reports)

(* --- findings invariant under traced-mode charge batching --- *)

(* The engine's [instrumented] fast path and the Env's traced-mode charge
   batching must not perturb what the sanitizer sees: batching defers
   tracer emission only — sanitizer records are never deferred or
   coalesced.  Re-run the racy and clean fixtures with a full tracer
   attached, batching on and off, and demand byte-identical reports. *)

let fixture_traced ~batching f =
  let (_, reports), _traces =
    Trace.traced (fun () ->
        San.sanitized (fun () ->
            let engine = Engine.create () in
            let layout = Layout.create () in
            let hier = Hierarchy.create (Hierarchy.small_geometry ~cores:4) in
            let spawn name core body =
              Simthread.spawn engine ~name (fun ctx ->
                  let env = Env.make ~ctx ~hier ~core in
                  Env.set_trace_batching env batching;
                  body env)
            in
            f engine layout spawn;
            Engine.run_all engine))
  in
  List.map San.report_to_string reports

let test_batching_invariant_racy () =
  let on = fixture_traced ~batching:true racy_body in
  let off = fixture_traced ~batching:false racy_body in
  check_int "one report either way" 1 (List.length on);
  Alcotest.(check (list string)) "identical findings" off on

let test_batching_invariant_clean () =
  let on = fixture_traced ~batching:true clean_body in
  let off = fixture_traced ~batching:false clean_body in
  check_int "clean either way" 0 (List.length on);
  Alcotest.(check (list string)) "identical (empty) findings" off on

(* producer/consumer slot handoff through a Ring: the ring's object edges
   order the slot traffic even though the threads interleave — no report *)
let test_ring_handoff () =
  let reports =
    fixture (fun _engine layout spawn ->
        let ring =
          Ring.create layout ~name:"handoff" ~slots:8 ~batch:4 ~value_bytes:16
        in
        spawn "producer" 0 (fun env ->
            for _ = 1 to 5 do
              while not (Ring.push ring env [| 1; 2; 3; 4 |]) do
                Simthread.delay env.Env.ctx 200
              done;
              Env.commit env
            done;
            let reaped = ref 0 in
            while !reaped < 5 do
              (match Ring.take_completed ring env with
              | Some _ -> incr reaped
              | None -> Simthread.delay env.Env.ctx 200);
              Env.commit env
            done);
        spawn "consumer" 1 (fun env ->
            let consumed = ref 0 in
            while !consumed < 5 do
              (match Ring.peek ring env with
              | Some _ ->
                Ring.complete ring env;
                incr consumed
              | None -> Simthread.delay env.Env.ctx 150);
              Env.commit env
            done))
  in
  check_int "no reports" 0 (List.length reports)

(* a raw store into an item's payload without holding its version lock
   must trip the lockset check *)
let test_lockset_violation () =
  let reports =
    fixture (fun _engine layout spawn ->
        let slab = Slab.create layout () in
        let item = Item.create slab ~value:(Bytes.make 32 'x') in
        spawn "owner" 0 (fun env ->
            (* a proper write registers the payload protection *)
            Item.write env item (Bytes.make 32 'y') slab;
            (* ...then scribble into the payload with no lock held *)
            Env.tagged env "fixture.scribble" @@ fun () ->
            Env.store env ~addr:(Item.addr item + 8) ~size:8;
            Env.commit env))
  in
  check_int "exactly one report" 1 (List.length reports);
  match reports with
  | [ r ] ->
    Alcotest.(check bool) "is a lockset finding" true (r.San.kind = San.Unlocked);
    Alcotest.(check string)
      "names the scribble" "fixture.scribble" r.San.second.San.a_site
  | _ -> Alcotest.fail "expected exactly one report"

(* --- sanitized smoke of every registered experiment --- *)

let smoke_scale =
  {
    Mutps_experiments.Harness.keyspace = 1_500;
    cores = 4;
    clients = 8;
    window = 2;
    warmup = 100_000;
    measure = 250_000;
    sample = None;
  }

let test_experiment_clean (e : Mutps_experiments.Registry.entry) () =
  let _rows, reports =
    San.sanitized (fun () -> e.Mutps_experiments.Registry.run smoke_scale)
  in
  List.iter (fun r -> print_endline (San.report_to_string r)) reports;
  check_int
    (Printf.sprintf "%s: no races" e.Mutps_experiments.Registry.name)
    0 (List.length reports)

let () =
  Alcotest.run "san"
    [
      ( "vclock",
        [
          QCheck_alcotest.to_alcotest prop_join_is_lub;
          QCheck_alcotest.to_alcotest prop_leq_partial_order;
          QCheck_alcotest.to_alcotest prop_incr_strictly_advances;
        ] );
      ( "fixtures",
        [
          Alcotest.test_case "racy pair flagged once" `Quick test_racy_pair;
          Alcotest.test_case "time-separated pair clean" `Quick
            test_time_separated;
          Alcotest.test_case "ring handoff clean" `Quick test_ring_handoff;
          Alcotest.test_case "unlocked payload write flagged" `Quick
            test_lockset_violation;
          Alcotest.test_case "racy pair invariant under charge batching"
            `Quick test_batching_invariant_racy;
          Alcotest.test_case "clean pair invariant under charge batching"
            `Quick test_batching_invariant_clean;
        ] );
      ( "experiments",
        List.map
          (fun (e : Mutps_experiments.Registry.entry) ->
            Alcotest.test_case
              (e.Mutps_experiments.Registry.name ^ " sanitized")
              `Slow (test_experiment_clean e))
          Mutps_experiments.Registry.all );
    ]
