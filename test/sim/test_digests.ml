(* Engine-equivalence regression: every deterministic experiment must
   produce byte-identical canonical Report JSON across scheduler
   rewrites.  The committed golden (test/golden/experiment_digests.json)
   was generated with the pre-calendar-queue binary-heap engine, so a
   green run proves the calendar queue preserves the (time, seq) total
   order on every real schedule the evaluation exercises — not just on
   the QCheck-generated ones.

   native_serve is excluded: its rows carry wall-clock metrics by design.

   Regenerate (after an intentional cost-model or protocol change) with:
     MUTPS_UPDATE_GOLDEN=$PWD/test/golden/experiment_digests.json \
       dune exec test/sim/test_digests.exe *)

open Mutps_experiments

(* Fixed literal scale: small enough for dune runtest, large enough that
   every subsystem (hot cache, rings, autotuner, windowing) is exercised.
   Deliberately independent of MUTPS_BENCH_SCALE — the digests gate code,
   not configuration. *)
let scale =
  {
    Harness.keyspace = 1_500;
    cores = 4;
    clients = 8;
    window = 2;
    warmup = 100_000;
    measure = 250_000;
    sample = None;
  }

let deterministic =
  List.filter
    (fun (e : Registry.entry) -> e.Registry.name <> "native_serve")
    Registry.all

let digest_of (e : Registry.entry) =
  let buf = Buffer.create 4096 in
  let rows = Harness.with_output buf (fun () -> e.Registry.run scale) in
  Digest.to_hex (Digest.string (Report.to_json rows))

(* --- trivial flat-object JSON golden: {"name": "md5hex", ...} --- *)

let golden_to_string entries =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  List.iteri
    (fun i (name, d) ->
      Buffer.add_string b (Printf.sprintf "  %S: %S" name d);
      if i < List.length entries - 1 then Buffer.add_char b ',';
      Buffer.add_char b '\n')
    entries;
  Buffer.add_string b "}\n";
  Buffer.contents b

let golden_of_string s =
  (* accepts exactly the renderer's output shape: one "key": "value" pair
     per line *)
  String.split_on_char '\n' s
  |> List.filter_map (fun line ->
         match String.index_opt line '"' with
         | None -> None
         | Some i -> (
           match String.index_from_opt line (i + 1) '"' with
           | None -> None
           | Some j ->
             let name = String.sub line (i + 1) (j - i - 1) in
             (match String.index_from_opt line (j + 1) '"' with
             | None -> None
             | Some k -> (
               match String.index_from_opt line (k + 1) '"' with
               | None -> None
               | Some l -> Some (name, String.sub line (k + 1) (l - k - 1))))))

let golden_path = "../golden/experiment_digests.json"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let () =
  match Sys.getenv_opt "MUTPS_UPDATE_GOLDEN" with
  | Some out ->
    let entries =
      List.map (fun e -> (e.Registry.name, digest_of e)) deterministic
    in
    let oc = open_out_bin out in
    output_string oc (golden_to_string entries);
    close_out oc;
    Printf.printf "wrote %d digests -> %s\n" (List.length entries) out
  | None ->
    let golden = golden_of_string (read_file golden_path) in
    let check (e : Registry.entry) () =
      match List.assoc_opt e.Registry.name golden with
      | None ->
        Alcotest.failf "%s missing from %s (regenerate the golden)"
          e.Registry.name golden_path
      | Some expected ->
        Alcotest.(check string)
          (e.Registry.name ^ " canonical JSON digest")
          expected (digest_of e)
    in
    Alcotest.run "digests"
      [
        ( "experiments",
          List.map
            (fun (e : Registry.entry) ->
              Alcotest.test_case e.Registry.name `Quick (check e))
            deterministic );
      ]
