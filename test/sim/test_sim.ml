open Mutps_sim

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)
(* ------------------------------------------------------------------ *)

let test_engine_order () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~at:30 (fun () -> log := 30 :: !log);
  Engine.schedule e ~at:10 (fun () -> log := 10 :: !log);
  Engine.schedule e ~at:20 (fun () -> log := 20 :: !log);
  Engine.run_all e;
  Alcotest.(check (list int)) "time order" [ 10; 20; 30 ] (List.rev !log);
  check_int "clock at last event" 30 (Engine.now e)

let test_engine_fifo_ties () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 0 to 9 do
    Engine.schedule e ~at:5 (fun () -> log := i :: !log)
  done;
  Engine.run_all e;
  Alcotest.(check (list int)) "FIFO among equal times"
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (List.rev !log)

let test_engine_run_until () =
  let e = Engine.create () in
  let fired = ref 0 in
  Engine.schedule e ~at:10 (fun () -> incr fired);
  Engine.schedule e ~at:100 (fun () -> incr fired);
  Engine.run e ~until:50;
  check_int "one fired" 1 !fired;
  check_int "clock advanced to until" 50 (Engine.now e);
  check_int "one pending" 1 (Engine.pending e);
  Engine.run e ~until:200;
  check_int "both fired" 2 !fired

let test_engine_nested_schedule () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~at:10 (fun () ->
      log := "a" :: !log;
      Engine.schedule_after e ~delay:5 (fun () -> log := "b" :: !log));
  Engine.run_all e;
  Alcotest.(check (list string)) "nested" [ "a"; "b" ] (List.rev !log);
  check_int "final clock" 15 (Engine.now e)

let test_engine_past_rejected () =
  let e = Engine.create () in
  Engine.schedule e ~at:10 ignore;
  Engine.run_all e;
  Alcotest.check_raises "past schedule rejected"
    (Invalid_argument "Engine.schedule: at=5 is before now=10") (fun () ->
      Engine.schedule e ~at:5 ignore)

let test_engine_stop () =
  let e = Engine.create () in
  let fired = ref 0 in
  Engine.schedule e ~at:1 (fun () ->
      incr fired;
      Engine.stop e);
  Engine.schedule e ~at:2 (fun () -> incr fired);
  Engine.run_all e;
  check_int "stopped after first" 1 !fired;
  check_int "second still pending" 1 (Engine.pending e)

let test_engine_many_events () =
  let e = Engine.create () in
  let r = Rng.create 42 in
  let n = 10_000 in
  let last = ref (-1) in
  let count = ref 0 in
  for _ = 1 to n do
    let at = Rng.int r 1_000_000 in
    Engine.schedule e ~at (fun () ->
        check_bool "monotone clock" true (Engine.now e >= !last);
        last := Engine.now e;
        incr count)
  done;
  Engine.run_all e;
  check_int "all dispatched" n !count

(* Runtime backstop for the static zero-allocation certifier
   (lib/lint/alloc.ml): a self-rescheduling pre-allocated callback churns
   through the scheduler and the minor-words delta per event must be zero.
   The Gc.minor_words calls themselves box one float each, so the budget
   is a small constant, not per-event. *)
let test_engine_zero_alloc_churn () =
  let e = Engine.create () in
  let events = 50_000 in
  let n = ref 0 in
  let rec tick () =
    incr n;
    if !n < events then Engine.schedule_after e ~delay:((!n land 7) + 1) tick
  in
  Engine.schedule e ~at:1 tick;
  let w0 = Gc.minor_words () in
  Engine.run_all e;
  let w1 = Gc.minor_words () in
  check_int "all dispatched" events !n;
  let per_event = (w1 -. w0) /. float_of_int events in
  check_bool
    (Printf.sprintf "zero words per event (measured %.4f)" per_event)
    true (per_event < 0.01)

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)
(* ------------------------------------------------------------------ *)

let test_rng_determinism () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_split_independent () =
  let a = Rng.create 7 in
  let c = Rng.split a in
  let x = Rng.bits64 a and y = Rng.bits64 c in
  check_bool "split streams differ" true (x <> y)

let test_rng_copy () =
  let a = Rng.create 9 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy replays" (Rng.bits64 a) (Rng.bits64 b)

let test_rng_int_range () =
  let r = Rng.create 3 in
  for _ = 1 to 10_000 do
    let v = Rng.int r 17 in
    check_bool "in range" true (v >= 0 && v < 17)
  done

let test_rng_float_range () =
  let r = Rng.create 4 in
  for _ = 1 to 10_000 do
    let v = Rng.float r in
    check_bool "in [0,1)" true (v >= 0.0 && v < 1.0)
  done

let test_rng_uniformity () =
  let r = Rng.create 5 in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let i = Rng.int r 10 in
    buckets.(i) <- buckets.(i) + 1
  done;
  Array.iter
    (fun c ->
      let expected = n / 10 in
      check_bool "within 10% of uniform" true
        (abs (c - expected) < expected / 10))
    buckets

(* ------------------------------------------------------------------ *)
(* Bits                                                                *)
(* ------------------------------------------------------------------ *)

let test_bits_clz () =
  check_int "clz 0" 63 (Bits.clz 0);
  check_int "clz 1" 62 (Bits.clz 1);
  check_int "clz 2" 61 (Bits.clz 2);
  (* max_int = 2^62 - 1: msb at bit 61 *)
  check_int "clz max_int" 1 (Bits.clz max_int);
  for k = 0 to 61 do
    check_int (Printf.sprintf "clz (1 lsl %d)" k) (62 - k) (Bits.clz (1 lsl k))
  done

let test_bits_misc () =
  check_int "popcount 0" 0 (Bits.popcount 0);
  check_int "popcount 0b1011" 3 (Bits.popcount 0b1011);
  check_int "log2_ceil 1" 0 (Bits.log2_ceil 1);
  check_int "log2_ceil 5" 3 (Bits.log2_ceil 5);
  check_int "log2_ceil 8" 3 (Bits.log2_ceil 8);
  check_bool "is_pow2 64" true (Bits.is_pow2 64);
  check_bool "is_pow2 48" false (Bits.is_pow2 48);
  check_int "lowest_set 12" 4 (Bits.lowest_set 12)

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let test_hist_basic () =
  let h = Stats.Hist.create () in
  List.iter (Stats.Hist.add h) [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ];
  check_int "count" 10 (Stats.Hist.count h);
  Alcotest.(check (float 0.001)) "mean" 5.5 (Stats.Hist.mean h);
  check_int "p50" 5 (Stats.Hist.percentile h 50.0);
  check_int "p100" 10 (Stats.Hist.percentile h 100.0);
  check_int "max" 10 (Stats.Hist.max_value h)

let test_hist_large_values () =
  let h = Stats.Hist.create () in
  let vals = [ 100; 1_000; 10_000; 100_000; 1_000_000 ] in
  List.iter (Stats.Hist.add h) vals;
  (* percentile is bucketed: allow ~3% relative error *)
  let p = Stats.Hist.percentile h 100.0 in
  check_bool "p100 close to 1e6" true
    (abs (p - 1_000_000) < 1_000_000 / 30)

let test_hist_percentile_monotone () =
  let h = Stats.Hist.create () in
  let r = Rng.create 11 in
  for _ = 1 to 1_000 do
    Stats.Hist.add h (Rng.int r 1_000_000)
  done;
  let prev = ref 0 in
  List.iter
    (fun p ->
      let v = Stats.Hist.percentile h p in
      check_bool "monotone percentiles" true (v >= !prev);
      prev := v)
    [ 1.0; 10.0; 25.0; 50.0; 75.0; 90.0; 99.0; 99.9; 100.0 ]

let test_hist_merge_clear () =
  let a = Stats.Hist.create () and b = Stats.Hist.create () in
  Stats.Hist.add a 5;
  Stats.Hist.add b 10;
  Stats.Hist.merge_into ~src:a ~dst:b;
  check_int "merged count" 2 (Stats.Hist.count b);
  check_int "merged max" 10 (Stats.Hist.max_value b);
  Stats.Hist.clear b;
  check_int "cleared" 0 (Stats.Hist.count b)

let test_hist_empty () =
  let h = Stats.Hist.create () in
  check_int "count" 0 (Stats.Hist.count h);
  Alcotest.(check (float 0.0)) "mean" 0.0 (Stats.Hist.mean h);
  check_int "max" 0 (Stats.Hist.max_value h);
  (* every percentile of an empty histogram is 0, including the edges *)
  List.iter
    (fun p -> check_int "percentile" 0 (Stats.Hist.percentile h p))
    [ 0.0; 50.0; 99.0; 100.0 ]

let test_hist_single_sample () =
  let h = Stats.Hist.create () in
  Stats.Hist.add h 42;
  check_int "count" 1 (Stats.Hist.count h);
  Alcotest.(check (float 0.001)) "mean" 42.0 (Stats.Hist.mean h);
  (* with one sample every percentile must report it exactly *)
  List.iter
    (fun p -> check_int "percentile" 42 (Stats.Hist.percentile h p))
    [ 0.0; 1.0; 50.0; 99.0; 99.9; 100.0 ]

let test_hist_p99_tiny_counts () =
  (* P99 over n < 100 samples must round up to a real sample, never
     interpolate below the population: for two samples it is the larger *)
  let h = Stats.Hist.create () in
  Stats.Hist.add h 1;
  Stats.Hist.add h 1_000;
  check_int "p99 of two" 1_000 (Stats.Hist.percentile h 99.0);
  check_int "p50 of two" 1 (Stats.Hist.percentile h 50.0);
  let h3 = Stats.Hist.create () in
  List.iter (Stats.Hist.add h3) [ 10; 20; 30 ];
  check_int "p99 of three" 30 (Stats.Hist.percentile h3 99.0);
  (* ceiling-rank semantics: rank ceil(p/100*n); 2/3 of the mass is at or
     below 20, anything above needs the third sample *)
  check_int "p66 of three" 20 (Stats.Hist.percentile h3 66.0);
  check_int "p67 of three" 30 (Stats.Hist.percentile h3 67.0)

let test_hist_negative_clamped () =
  let h = Stats.Hist.create () in
  Stats.Hist.add h (-5);
  Stats.Hist.add h (-1);
  check_int "count" 2 (Stats.Hist.count h);
  check_int "max" 0 (Stats.Hist.max_value h);
  check_int "p100" 0 (Stats.Hist.percentile h 100.0);
  Alcotest.(check (float 0.001)) "mean of clamped" 0.0 (Stats.Hist.mean h)

let test_hist_merge_empty () =
  (* merging an empty histogram is the identity in both directions *)
  let a = Stats.Hist.create () and b = Stats.Hist.create () in
  Stats.Hist.add a 7;
  Stats.Hist.merge_into ~src:b ~dst:a;
  check_int "count unchanged" 1 (Stats.Hist.count a);
  check_int "p99 unchanged" 7 (Stats.Hist.percentile a 99.0);
  let c = Stats.Hist.create () in
  Stats.Hist.merge_into ~src:a ~dst:c;
  check_int "merged into empty" 1 (Stats.Hist.count c);
  check_int "merged p99" 7 (Stats.Hist.percentile c 99.0)

let test_monitor_windows () =
  let m = Stats.Monitor.create ~window:100 in
  Stats.Monitor.record m ~now:10 5;
  Stats.Monitor.record m ~now:50 5;
  Stats.Monitor.record m ~now:150 7;
  Stats.Monitor.record m ~now:320 1;
  check_int "total" 18 (Stats.Monitor.total m);
  Alcotest.(check (list (pair int int)))
    "closed windows"
    [ (0, 10); (100, 7); (200, 0) ]
    (Stats.Monitor.windows m)

let test_monitor_rate () =
  let m = Stats.Monitor.create ~window:100 in
  Stats.Monitor.record m ~now:0 50;
  Stats.Monitor.record m ~now:110 0;
  Alcotest.(check (float 0.0001)) "rate of closed window" 0.5
    (Stats.Monitor.current_rate m ~now:110)

let test_mops () =
  (* 1M ops in 1e9 cycles at 1 GHz = 1 second -> 1 Mops *)
  Alcotest.(check (float 0.0001)) "mops" 1.0
    (Stats.mops ~ops:1_000_000 ~cycles:1_000_000_000 ~ghz:1.0)

(* ------------------------------------------------------------------ *)
(* Simthread                                                           *)
(* ------------------------------------------------------------------ *)

let test_thread_delay () =
  let e = Engine.create () in
  let finished_at = ref 0 in
  Simthread.spawn e (fun ctx ->
      Simthread.delay ctx 100;
      Simthread.delay ctx 50;
      finished_at := Simthread.now ctx);
  Engine.run_all e;
  check_int "delays accumulate" 150 !finished_at

let test_thread_charge_commit () =
  let e = Engine.create () in
  let observed = ref (-1) in
  Simthread.spawn e (fun ctx ->
      Simthread.charge ctx 30;
      Simthread.charge ctx 12;
      check_int "pending" 42 (Simthread.pending ctx);
      check_int "local now includes pending" 42 (Simthread.now ctx);
      check_int "engine clock unmoved" 0 (Engine.now e);
      Simthread.commit ctx;
      observed := Engine.now e);
  Engine.run_all e;
  check_int "commit flushed to engine" 42 !observed

let test_thread_interleaving () =
  let e = Engine.create () in
  let log = ref [] in
  Simthread.spawn e ~name:"a" (fun ctx ->
      Simthread.delay ctx 10;
      log := ("a", Simthread.now ctx) :: !log;
      Simthread.delay ctx 20;
      log := ("a", Simthread.now ctx) :: !log);
  Simthread.spawn e ~name:"b" (fun ctx ->
      Simthread.delay ctx 15;
      log := ("b", Simthread.now ctx) :: !log);
  Engine.run_all e;
  Alcotest.(check (list (pair string int)))
    "interleaved by simulated time"
    [ ("a", 10); ("b", 15); ("a", 30) ]
    (List.rev !log)

let test_thread_condvar () =
  let e = Engine.create () in
  let cv = Simthread.Condvar.create () in
  let log = ref [] in
  Simthread.spawn e ~name:"waiter" (fun ctx ->
      Simthread.Condvar.wait ctx cv;
      log := ("woke", Simthread.now ctx) :: !log);
  Simthread.spawn e ~name:"signaller" (fun ctx ->
      Simthread.delay ctx 500;
      Simthread.Condvar.signal cv;
      log := ("signalled", Simthread.now ctx) :: !log);
  Engine.run_all e;
  Alcotest.(check (list (pair string int)))
    "wait until signalled"
    [ ("signalled", 500); ("woke", 500) ]
    (List.rev !log)

let test_thread_condvar_fifo () =
  let e = Engine.create () in
  let cv = Simthread.Condvar.create () in
  let woke = ref [] in
  for i = 0 to 2 do
    Simthread.spawn e (fun ctx ->
        Simthread.delay ctx i;
        Simthread.Condvar.wait ctx cv;
        woke := i :: !woke)
  done;
  Simthread.spawn e (fun ctx ->
      Simthread.delay ctx 100;
      check_int "three waiters" 3 (Simthread.Condvar.waiters cv);
      Simthread.Condvar.broadcast cv);
  Engine.run_all e;
  Alcotest.(check (list int)) "FIFO wakeup" [ 0; 1; 2 ] (List.rev !woke)

let test_thread_suspend_resume_once () =
  let e = Engine.create () in
  let resume_ref = ref None in
  Simthread.spawn e (fun ctx ->
      Simthread.suspend ctx (fun resume -> resume_ref := Some resume));
  Engine.run e ~until:10;
  (match !resume_ref with
  | None -> Alcotest.fail "suspend did not register"
  | Some resume ->
    resume ();
    Engine.run_all e;
    Alcotest.check_raises "double resume rejected"
      (Invalid_argument "Simthread: resume invoked twice") resume)

let test_thread_spawn_at () =
  let e = Engine.create () in
  let started = ref (-1) in
  Simthread.spawn e ~at:77 (fun ctx -> started := Simthread.now ctx);
  Engine.run_all e;
  check_int "spawn at" 77 !started

(* qcheck: engine dispatches any schedule set in nondecreasing time order *)
let prop_engine_order =
  QCheck.Test.make ~name:"engine dispatches in time order" ~count:200
    QCheck.(list (int_bound 10_000))
    (fun times ->
      let e = Engine.create () in
      let seen = ref [] in
      List.iter
        (fun t -> Engine.schedule e ~at:t (fun () -> seen := t :: !seen))
        times;
      Engine.run_all e;
      let sorted = List.sort compare times in
      List.rev !seen = sorted)

let prop_hist_percentile_bounds =
  QCheck.Test.make ~name:"hist percentile within sample bounds" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 200) (int_bound 1_000_000))
    (fun samples ->
      let h = Stats.Hist.create () in
      List.iter (Stats.Hist.add h) samples;
      let p50 = Stats.Hist.percentile h 50.0 in
      let mx = List.fold_left max 0 samples in
      p50 >= 0 && p50 <= mx)

let () =
  Alcotest.run "sim"
    [
      ( "engine",
        [
          Alcotest.test_case "order" `Quick test_engine_order;
          Alcotest.test_case "fifo ties" `Quick test_engine_fifo_ties;
          Alcotest.test_case "run until" `Quick test_engine_run_until;
          Alcotest.test_case "nested schedule" `Quick test_engine_nested_schedule;
          Alcotest.test_case "past rejected" `Quick test_engine_past_rejected;
          Alcotest.test_case "stop" `Quick test_engine_stop;
          Alcotest.test_case "many events" `Quick test_engine_many_events;
          Alcotest.test_case "zero-alloc churn" `Quick
            test_engine_zero_alloc_churn;
          QCheck_alcotest.to_alcotest prop_engine_order;
        ] );
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "int range" `Quick test_rng_int_range;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "uniformity" `Quick test_rng_uniformity;
        ] );
      ( "bits",
        [
          Alcotest.test_case "clz" `Quick test_bits_clz;
          Alcotest.test_case "misc" `Quick test_bits_misc;
        ] );
      ( "stats",
        [
          Alcotest.test_case "hist basic" `Quick test_hist_basic;
          Alcotest.test_case "hist large" `Quick test_hist_large_values;
          Alcotest.test_case "hist monotone" `Quick test_hist_percentile_monotone;
          Alcotest.test_case "hist merge/clear" `Quick test_hist_merge_clear;
          Alcotest.test_case "hist empty" `Quick test_hist_empty;
          Alcotest.test_case "hist single sample" `Quick test_hist_single_sample;
          Alcotest.test_case "hist p99 tiny counts" `Quick test_hist_p99_tiny_counts;
          Alcotest.test_case "hist negative clamped" `Quick test_hist_negative_clamped;
          Alcotest.test_case "hist merge empty" `Quick test_hist_merge_empty;
          Alcotest.test_case "monitor windows" `Quick test_monitor_windows;
          Alcotest.test_case "monitor rate" `Quick test_monitor_rate;
          Alcotest.test_case "mops" `Quick test_mops;
          QCheck_alcotest.to_alcotest prop_hist_percentile_bounds;
        ] );
      ( "simthread",
        [
          Alcotest.test_case "delay" `Quick test_thread_delay;
          Alcotest.test_case "charge/commit" `Quick test_thread_charge_commit;
          Alcotest.test_case "interleaving" `Quick test_thread_interleaving;
          Alcotest.test_case "condvar" `Quick test_thread_condvar;
          Alcotest.test_case "condvar fifo" `Quick test_thread_condvar_fifo;
          Alcotest.test_case "suspend/resume once" `Quick test_thread_suspend_resume_once;
          Alcotest.test_case "spawn at" `Quick test_thread_spawn_at;
        ] );
    ]
