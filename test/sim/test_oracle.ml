(* Differential test of the calendar-queue engine against a sorted-list
   reference oracle.

   A generated "program" — pushes with adversarial delays (same-time
   bursts, wheel-boundary values, far-future outliers), nested pushes
   from inside callbacks, pool/heap resize storms, and interleaved
   stop/run-until — is interpreted twice through a common scheduler
   interface: once over Engine, once over an insertion-sorted event list
   that implements the documented (time, seq) total order directly.  The
   full dispatch logs (event id, firing time) must match exactly, as must
   the clock and the pending count at every run boundary.  This checks
   the FIFO tie-break, the wheel/overflow-heap migration, and the
   window-advance rules against the specification rather than against
   the implementation's own bookkeeping. *)

open Mutps_sim

type sched = {
  s_at : int -> (unit -> unit) -> unit;  (* schedule at absolute time *)
  s_now : unit -> int;
  s_pending : unit -> int;
  s_run : int -> unit;  (* run ~until *)
  s_run_all : unit -> unit;
  s_stop : unit -> unit;
}

let engine_sched () =
  let e = Engine.create () in
  {
    s_at = (fun at fn -> Engine.schedule e ~at fn);
    s_now = (fun () -> Engine.now e);
    s_pending = (fun () -> Engine.pending e);
    s_run = (fun until -> Engine.run e ~until);
    s_run_all = (fun () -> Engine.run_all e);
    s_stop = (fun () -> Engine.stop e);
  }

(* The oracle: a sorted association list of (time, seq, callback),
   mirroring the documented engine semantics — dispatch in (time, seq)
   order, clock = dispatched event's time, [run ~until] finishes by
   advancing an unstopped clock to [until], [run_all] does not. *)
module Oracle = struct
  type t = {
    mutable evs : (int * int * (unit -> unit)) list;
    mutable clock : int;
    mutable seq : int;
    mutable stopped : bool;
  }

  let create () = { evs = []; clock = 0; seq = 0; stopped = false }

  let schedule t ~at fn =
    if at < t.clock then invalid_arg "Oracle.schedule: past";
    let seq = t.seq in
    t.seq <- seq + 1;
    let rec ins = function
      | [] -> [ (at, seq, fn) ]
      | ((t', s', _) as hd) :: tl ->
        if at < t' || (at = t' && seq < s') then (at, seq, fn) :: hd :: tl
        else hd :: ins tl
    in
    t.evs <- ins t.evs

  let rec drain t until =
    if not t.stopped then
      match t.evs with
      | (time, _, fn) :: rest when time <= until ->
        t.clock <- time;
        t.evs <- rest;
        fn ();
        drain t until
      | _ -> ()

  let run t ~until =
    t.stopped <- false;
    drain t until;
    if (not t.stopped) && t.clock < until then t.clock <- until

  let run_all t =
    t.stopped <- false;
    drain t max_int
end

let oracle_sched () =
  let o = Oracle.create () in
  {
    s_at = (fun at fn -> Oracle.schedule o ~at fn);
    s_now = (fun () -> o.Oracle.clock);
    s_pending = (fun () -> List.length o.Oracle.evs);
    s_run = (fun until -> Oracle.run o ~until);
    s_run_all = (fun () -> Oracle.run_all o);
    s_stop = (fun () -> o.Oracle.stopped <- true);
  }

(* --- generated programs --- *)

(* Delays stressing every structural boundary of the calendar queue: the
   same-cycle tie-break, slot neighbours, the wheel horizon (8192) and
   both sides of it, multi-wrap values, and far-future heap territory. *)
let adversarial_delays =
  [| 0; 0; 1; 2; 7; 63; 64; 100; 4_095; 8_191; 8_192; 8_193; 16_384;
     20_000; 100_000; 1_000_000 |]

type op =
  | Push of int  (* delay index: one event, may push children when fired *)
  | Burst of int * int  (* delay index, count: same-time FIFO burst *)
  | Storm of int  (* count: mixed-delay push storm (pool/heap resize) *)
  | StopAt of int  (* delay index: event whose callback stops the run *)
  | RunFor of int  (* run ~until:(now + d) *)
  | RunAll

let gen_op =
  QCheck.Gen.(
    frequency
      [
        (6, map (fun i -> Push i) (int_bound 15));
        (2, map2 (fun i n -> Burst (i, 1 + n)) (int_bound 15) (int_bound 40));
        (1, map (fun n -> Storm (50 + n)) (int_bound 2_000));
        (1, map (fun i -> StopAt i) (int_bound 15));
        (4, map (fun d -> RunFor d) (int_bound 30_000));
        (1, return RunAll);
      ])

let gen_program = QCheck.Gen.(list_size (int_range 1 60) gen_op)

let arb_program =
  QCheck.make gen_program
    ~print:
      (QCheck.Print.list (function
        | Push i -> Printf.sprintf "Push %d" adversarial_delays.(i)
        | Burst (i, n) ->
          Printf.sprintf "Burst (%d, %d)" adversarial_delays.(i) n
        | Storm n -> Printf.sprintf "Storm %d" n
        | StopAt i -> Printf.sprintf "StopAt %d" adversarial_delays.(i)
        | RunFor d -> Printf.sprintf "RunFor %d" d
        | RunAll -> "RunAll"))

(* Interpret [prog] against scheduler [s].  Every dispatched event logs
   (id, firing time); events with id mod 3 = 0 push one child at a
   nested-delay derived from their id (exercising push-during-drain,
   including same-time children), and ids divisible by 7 push a
   far-future child (heap traffic while the wheel drains).  The id
   counter is shared program state, so both interpretations assign
   identical ids in identical order iff dispatch order matches. *)
let interpret s prog =
  let log = Buffer.create 256 in
  let next_id = ref 0 in
  let rec fire id () =
    Buffer.add_string log (Printf.sprintf "%d@%d;" id (s.s_now ()));
    if id mod 3 = 0 then push (id mod 5 * (id mod 11));
    if id mod 7 = 0 then push (9_000 + (id mod 13 * 1_000))
  and push delay =
    let id = !next_id in
    incr next_id;
    s.s_at (s.s_now () + delay) (fire id)
  in
  List.iter
    (fun op ->
      match op with
      | Push i -> push adversarial_delays.(i)
      | Burst (i, n) ->
        for _ = 1 to n do
          push adversarial_delays.(i)
        done
      | Storm n ->
        for k = 1 to n do
          push (k * 37 land 0x3FFF)
        done
      | StopAt i ->
        let id = !next_id in
        incr next_id;
        s.s_at
          (s.s_now () + adversarial_delays.(i))
          (fun () ->
            Buffer.add_string log (Printf.sprintf "%d@%d!;" id (s.s_now ()));
            s.s_stop ())
      | RunFor d ->
        s.s_run (s.s_now () + d);
        Buffer.add_string log
          (Printf.sprintf "[%d|%d];" (s.s_now ()) (s.s_pending ()))
      | RunAll ->
        s.s_run_all ();
        Buffer.add_string log
          (Printf.sprintf "[%d|%d];" (s.s_now ()) (s.s_pending ())))
    prog;
  (* flush everything so no generated program hides a divergence in its
     unreached tail *)
  s.s_run_all ();
  Buffer.add_string log
    (Printf.sprintf "[end %d|%d]" (s.s_now ()) (s.s_pending ()));
  Buffer.contents log

let prop_differential =
  QCheck.Test.make ~count:500 ~name:"engine = sorted-list oracle" arb_program
    (fun prog ->
      let a = interpret (engine_sched ()) prog in
      let b = interpret (oracle_sched ()) prog in
      if String.equal a b then true
      else
        QCheck.Test.fail_reportf "dispatch logs diverge:@.engine: %s@.oracle: %s"
          a b)

(* Directed regression: a deterministic mega-program hitting every
   boundary delay with bursts and stop interleavings, kept out of the
   generator's hands so shrinking can't lose it. *)
let test_directed () =
  let prog =
    List.concat_map
      (fun i ->
        [ Push i; Burst (i, 17); RunFor 500; StopAt i; RunFor 9_000; Push i ])
      (List.init 16 Fun.id)
    @ [ Storm 3_000; RunAll; Storm 1_000; RunFor 100_000; RunAll ]
  in
  let a = interpret (engine_sched ()) prog in
  let b = interpret (oracle_sched ()) prog in
  Alcotest.(check string) "directed program: identical logs" b a

let () =
  Alcotest.run "oracle"
    [
      ( "differential",
        [
          QCheck_alcotest.to_alcotest prop_differential;
          Alcotest.test_case "directed boundaries" `Quick test_directed;
        ] );
    ]
