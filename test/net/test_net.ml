open Mutps_sim
open Mutps_mem
open Mutps_net
module Request = Mutps_queue.Request

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Link                                                                *)
(* ------------------------------------------------------------------ *)

let test_link_rtt_and_serialization () =
  let link = Link.create () in
  let c = Link.config link in
  let a = Link.rx_arrival link ~sent_at:0 ~bytes:16 in
  check_int "first msg: rtt/2 + gap + bytes"
    ((c.Link.rtt / 2) + c.Link.msg_gap + 2)
    a;
  (* a second message sent at the same time queues behind the first *)
  let b = Link.rx_arrival link ~sent_at:0 ~bytes:16 in
  check_bool "second serializes after first" true (b > a);
  check_int "rx count" 2 (Link.rx_messages link)

let test_link_bandwidth_dominates_large () =
  let link = Link.create () in
  let c = Link.config link in
  let small = Link.rx_arrival link ~sent_at:0 ~bytes:16 in
  let link2 = Link.create () in
  let big = Link.rx_arrival link2 ~sent_at:0 ~bytes:100_000 in
  check_bool "big message takes much longer" true
    (big - small > int_of_float (90_000.0 *. c.Link.cycles_per_byte))

let test_link_directions_independent () =
  let link = Link.create () in
  (* saturate rx; tx must be unaffected *)
  for _ = 1 to 100 do
    ignore (Link.rx_arrival link ~sent_at:0 ~bytes:1000)
  done;
  let c = Link.config link in
  let t = Link.tx_arrival link ~now:0 ~bytes:16 in
  check_int "tx unaffected by rx queue"
    (c.Link.msg_gap + 2 + (c.Link.rtt / 2))
    t

(* ------------------------------------------------------------------ *)
(* Harness for RPC tests                                               *)
(* ------------------------------------------------------------------ *)

type world = {
  engine : Engine.t;
  hier : Hierarchy.t;
  layout : Layout.t;
  link : Link.t;
}

let mk_world () =
  {
    engine = Engine.create ();
    hier = Hierarchy.create (Hierarchy.small_geometry ~cores:8);
    layout = Layout.create ();
    link = Link.create ();
  }

let mk_msg ?(client = 0) ?(target = -1) ?(value = None) ~id ~key () =
  let req =
    match value with
    | Some v -> Request.put ~key ~size:(Bytes.length v) ~buf:0
    | None -> Request.get ~key ~buf:0
  in
  { Message.id; client; sent_at = 0; target; req; value }

(* run [f] in a simthread against a fresh env *)
let in_thread w f =
  Simthread.spawn w.engine (fun ctx ->
      f (Env.make ~ctx ~hier:w.hier ~core:0));
  Engine.run_all w.engine

let mk_rpc ?(workers = 2) ?(max_workers = 8) w =
  Reconf_rpc.create ~engine:w.engine ~hier:w.hier ~layout:w.layout
    ~link:w.link ~max_workers ~workers ()

(* ------------------------------------------------------------------ *)
(* Reconf_rpc                                                          *)
(* ------------------------------------------------------------------ *)

let test_rpc_mod_n_ownership () =
  let w = mk_world () in
  let rpc = mk_rpc ~workers:3 w in
  let tr = Reconf_rpc.transport rpc in
  for i = 0 to 8 do
    tr.Transport.deliver (mk_msg ~id:i ~key:(Int64.of_int (100 + i)) ())
  done;
  in_thread w (fun env ->
      (* worker k gets exactly slots k, k+3, k+6, in order *)
      for worker = 0 to 2 do
        for round = 0 to 2 do
          match tr.Transport.poll env ~worker with
          | Some (seq, msg) ->
            check_int "owned slot" worker (seq mod 3);
            check_int "in order" ((round * 3) + worker) seq;
            check_bool "buf = seq" true
              (msg.Message.req.Request.buf = seq)
          | None -> Alcotest.fail "expected a slot"
        done;
        check_bool "drained" true (tr.Transport.poll env ~worker = None)
      done)

let test_rpc_poll_empty () =
  let w = mk_world () in
  let rpc = mk_rpc w in
  let tr = Reconf_rpc.transport rpc in
  in_thread w (fun env ->
      check_bool "empty" true (tr.Transport.poll env ~worker:0 = None))

let test_rpc_response_roundtrip () =
  let w = mk_world () in
  let rpc = mk_rpc ~workers:1 w in
  let tr = Reconf_rpc.transport rpc in
  let got = ref None in
  tr.Transport.set_on_response (fun msg value ->
      got := Some (msg.Message.id, value, Engine.now w.engine));
  tr.Transport.deliver (mk_msg ~id:7 ~key:5L ());
  in_thread w (fun env ->
      match tr.Transport.poll env ~worker:0 with
      | Some (seq, _) ->
        let addr = tr.Transport.resp_alloc ~worker:0 ~bytes:64 in
        Env.store env ~addr ~size:64;
        tr.Transport.post_response env ~seq ~resp_addr:addr ~bytes:64
          ~value:(Some (Bytes.of_string "result"))
      | None -> Alcotest.fail "no slot");
  (match !got with
  | Some (id, Some v, at) ->
    check_int "message id" 7 id;
    Alcotest.(check string) "value" "result" (Bytes.to_string v);
    check_bool "arrives after rtt/2" true
      (at >= (Link.config w.link).Link.rtt / 2)
  | _ -> Alcotest.fail "no response");
  check_int "outstanding drained" 0 (tr.Transport.outstanding ());
  check_int "responded" 1 (Reconf_rpc.responded rpc)

let test_rpc_double_response_rejected () =
  let w = mk_world () in
  let rpc = mk_rpc ~workers:1 w in
  let tr = Reconf_rpc.transport rpc in
  tr.Transport.deliver (mk_msg ~id:0 ~key:5L ());
  in_thread w (fun env ->
      match tr.Transport.poll env ~worker:0 with
      | Some (seq, _) ->
        let addr = tr.Transport.resp_alloc ~worker:0 ~bytes:16 in
        tr.Transport.post_response env ~seq ~resp_addr:addr ~bytes:16 ~value:None;
        Alcotest.check_raises "double response"
          (Invalid_argument (Printf.sprintf "Reconf_rpc: unknown slot %d" seq))
          (fun () ->
            tr.Transport.post_response env ~seq ~resp_addr:addr ~bytes:16
              ~value:None)
      | None -> Alcotest.fail "no slot")

let test_rpc_put_payload_accessible () =
  let w = mk_world () in
  let rpc = mk_rpc ~workers:1 w in
  let tr = Reconf_rpc.transport rpc in
  let v = Bytes.make 100 'z' in
  tr.Transport.deliver (mk_msg ~id:0 ~key:5L ~value:(Some v) ());
  in_thread w (fun env ->
      match tr.Transport.poll env ~worker:0 with
      | Some (seq, msg) ->
        check_bool "payload carried" true (msg.Message.value = Some v);
        check_bool "slot sized for payload" true
          (tr.Transport.slot_len seq >= 116);
        (* the payload address is DMA-resident in the LLC *)
        check_bool "rx slot in LLC" true
          (Hierarchy.probe_llc w.hier ~addr:(tr.Transport.slot_addr seq))
      | None -> Alcotest.fail "no slot")

let test_rpc_grow_workers_mid_stream () =
  let w = mk_world () in
  let rpc = mk_rpc ~workers:2 ~max_workers:4 w in
  let tr = Reconf_rpc.transport rpc in
  (* 6 slots under n=2 *)
  for i = 0 to 5 do
    tr.Transport.deliver (mk_msg ~id:i ~key:(Int64.of_int i) ())
  done;
  Reconf_rpc.set_workers rpc 4;
  check_bool "reconfig pending" true (Reconf_rpc.reconfig_in_progress rpc);
  (* 8 more slots under n=4 *)
  for i = 6 to 13 do
    tr.Transport.deliver (mk_msg ~id:i ~key:(Int64.of_int i) ())
  done;
  let served = Array.make 14 (-1) in
  in_thread w (fun env ->
      for worker = 0 to 3 do
        let continue = ref true in
        while !continue do
          match tr.Transport.poll env ~worker with
          | Some (seq, _) -> served.(seq) <- worker
          | None -> continue := false
        done
      done);
  (* pre-switch slots follow mod 2; post-switch mod 4 *)
  for seq = 0 to 5 do
    check_int (Printf.sprintf "old slot %d" seq) (seq mod 2) served.(seq)
  done;
  for seq = 6 to 13 do
    check_int (Printf.sprintf "new slot %d" seq) (seq mod 4) served.(seq)
  done;
  check_bool "reconfig committed" false (Reconf_rpc.reconfig_in_progress rpc)

let test_rpc_shrink_workers_mid_stream () =
  let w = mk_world () in
  let rpc = mk_rpc ~workers:4 ~max_workers:4 w in
  let tr = Reconf_rpc.transport rpc in
  for i = 0 to 7 do
    tr.Transport.deliver (mk_msg ~id:i ~key:(Int64.of_int i) ())
  done;
  Reconf_rpc.set_workers rpc 2;
  for i = 8 to 13 do
    tr.Transport.deliver (mk_msg ~id:i ~key:(Int64.of_int i) ())
  done;
  let served = Array.make 14 (-1) in
  in_thread w (fun env ->
      for worker = 0 to 3 do
        let continue = ref true in
        while !continue do
          match tr.Transport.poll env ~worker with
          | Some (seq, _) -> served.(seq) <- worker
          | None -> continue := false
        done
      done);
  for seq = 0 to 7 do
    check_int (Printf.sprintf "old slot %d" seq) (seq mod 4) served.(seq)
  done;
  for seq = 8 to 13 do
    check_int (Printf.sprintf "new slot %d" seq) (seq mod 2) served.(seq)
  done;
  check_bool "reconfig committed" false (Reconf_rpc.reconfig_in_progress rpc);
  (* departed workers see nothing new *)
  in_thread w (fun env ->
      check_bool "worker 3 idle" true (tr.Transport.poll env ~worker:3 = None))

let prop_rpc_no_slot_lost_or_duplicated =
  QCheck.Test.make ~name:"reconfigurations never lose or duplicate slots"
    ~count:60
    QCheck.(
      pair (int_range 1 6)
        (list_of_size (Gen.int_range 1 30) (int_range 1 6)))
    (fun (n0, changes) ->
      QCheck.assume (n0 >= 1 && List.for_all (fun n -> n >= 1) changes);
      let w = mk_world () in
      let rpc = mk_rpc ~workers:n0 ~max_workers:6 w in
      let tr = Reconf_rpc.transport rpc in
      let id = ref 0 in
      let deliver_some k =
        for _ = 1 to k do
          tr.Transport.deliver (mk_msg ~id:!id ~key:(Int64.of_int !id) ());
          incr id
        done
      in
      deliver_some 5;
      List.iter
        (fun n ->
          Reconf_rpc.set_workers rpc n;
          deliver_some 3)
        changes;
      let seen = Hashtbl.create 64 in
      in_thread w (fun env ->
          for worker = 0 to 5 do
            let continue = ref true in
            while !continue do
              match tr.Transport.poll env ~worker with
              | Some (seq, _) ->
                if Hashtbl.mem seen seq then failwith "duplicate slot";
                Hashtbl.replace seen seq ()
              | None -> continue := false
            done
          done);
      Hashtbl.length seen = !id)

(* ------------------------------------------------------------------ *)
(* Erpc                                                                *)
(* ------------------------------------------------------------------ *)

let test_erpc_targets_ring () =
  let w = mk_world () in
  let erpc =
    Erpc.create ~engine:w.engine ~hier:w.hier ~layout:w.layout ~link:w.link
      ~workers:3 ()
  in
  let tr = Erpc.transport erpc in
  for i = 0 to 8 do
    tr.Transport.deliver (mk_msg ~id:i ~target:(i mod 3) ~key:(Int64.of_int i) ())
  done;
  in_thread w (fun env ->
      for worker = 0 to 2 do
        let count = ref 0 in
        let continue = ref true in
        while !continue do
          match tr.Transport.poll env ~worker with
          | Some (_, msg) ->
            check_int "routed to target" worker (msg.Message.id mod 3);
            incr count
          | None -> continue := false
        done;
        check_int "three each" 3 !count
      done)

let test_erpc_rejects_untargeted () =
  let w = mk_world () in
  let erpc =
    Erpc.create ~engine:w.engine ~hier:w.hier ~layout:w.layout ~link:w.link
      ~workers:2 ()
  in
  let tr = Erpc.transport erpc in
  Alcotest.check_raises "must target"
    (Invalid_argument "Erpc.deliver: message must target a worker") (fun () ->
      tr.Transport.deliver (mk_msg ~id:0 ~key:1L ()));
  Alcotest.check_raises "no reconfiguration"
    (Invalid_argument
       "Erpc: changing the worker count requires client coordination")
    (fun () -> tr.Transport.set_workers 3)

let test_erpc_response_roundtrip () =
  let w = mk_world () in
  let erpc =
    Erpc.create ~engine:w.engine ~hier:w.hier ~layout:w.layout ~link:w.link
      ~workers:2 ()
  in
  let tr = Erpc.transport erpc in
  let got = ref 0 in
  tr.Transport.set_on_response (fun _ _ -> incr got);
  tr.Transport.deliver (mk_msg ~id:1 ~target:1 ~key:9L ());
  in_thread w (fun env ->
      check_bool "other worker sees nothing" true
        (tr.Transport.poll env ~worker:0 = None);
      match tr.Transport.poll env ~worker:1 with
      | Some (seq, _) ->
        let addr = tr.Transport.resp_alloc ~worker:1 ~bytes:16 in
        tr.Transport.post_response env ~seq ~resp_addr:addr ~bytes:16 ~value:None
      | None -> Alcotest.fail "no slot");
  check_int "response delivered" 1 !got

(* ------------------------------------------------------------------ *)
(* Client                                                              *)
(* ------------------------------------------------------------------ *)

(* an echo server thread: polls all workers round-robin, answers with a
   16-byte ack *)
let echo_server w (tr : Transport.t) ~workers ~stop_at =
  Simthread.spawn w.engine (fun ctx ->
      let env = Env.make ~ctx ~hier:w.hier ~core:0 in
      while Simthread.now ctx < stop_at do
        let any = ref false in
        for worker = 0 to workers - 1 do
          match tr.Transport.poll env ~worker with
          | Some (seq, _) ->
            any := true;
            let addr = tr.Transport.resp_alloc ~worker ~bytes:16 in
            tr.Transport.post_response env ~seq ~resp_addr:addr ~bytes:16
              ~value:None
          | None -> ()
        done;
        if not !any then Simthread.delay ctx 200 else Simthread.yield ctx
      done)

let test_client_closed_loop () =
  let w = mk_world () in
  let rpc = mk_rpc ~workers:2 w in
  let tr = Reconf_rpc.transport rpc in
  let spec = Mutps_workload.Ycsb.c ~keyspace:100 ~value_size:8 () in
  let horizon = 3_000_000 in
  echo_server w tr ~workers:2 ~stop_at:horizon;
  let clients =
    Client.start ~engine:w.engine ~link:w.link ~transport:tr
      { Client.clients = 4; window = 2; spec; seed = 5;
        dispatch = Client.uniform_dispatch }
  in
  Engine.run w.engine ~until:horizon;
  let done_ = Client.completed clients in
  check_bool (Printf.sprintf "many ops completed (%d)" done_) true (done_ > 100);
  (* closed loop: in-flight never exceeds clients * window *)
  check_bool "bounded outstanding" true
    (Client.sent clients - done_ <= 4 * 2);
  let h = Client.latency clients in
  check_int "latency samples = completions" done_ (Stats.Hist.count h);
  let p50 = Stats.Hist.percentile h 50.0 in
  check_bool "p50 at least one RTT" true
    (p50 >= (Link.config w.link).Link.rtt)

let test_client_payload_deterministic () =
  let a = Client.payload ~key:42L ~size:64 in
  let b = Client.payload ~key:42L ~size:64 in
  let c = Client.payload ~key:43L ~size:64 in
  check_bool "same key same payload" true (Bytes.equal a b);
  check_bool "different key different payload" false (Bytes.equal a c)

let test_client_reset_stats () =
  let w = mk_world () in
  let rpc = mk_rpc ~workers:1 w in
  let tr = Reconf_rpc.transport rpc in
  let spec = Mutps_workload.Ycsb.c ~keyspace:10 ~value_size:8 () in
  echo_server w tr ~workers:1 ~stop_at:2_000_000;
  let clients =
    Client.start ~engine:w.engine ~link:w.link ~transport:tr
      { Client.clients = 1; window = 1; spec; seed = 1;
        dispatch = Client.uniform_dispatch }
  in
  Engine.run w.engine ~until:1_000_000;
  check_bool "progress" true (Client.completed clients > 0);
  Client.reset_stats clients;
  check_int "reset" 0 (Client.completed clients);
  Engine.run w.engine ~until:2_000_000;
  check_bool "progress after reset" true (Client.completed clients > 0)


(* ------------------------------------------------------------------ *)
(* Additional transport edge cases                                     *)
(* ------------------------------------------------------------------ *)

let test_rpc_resp_alloc_wraps () =
  let w = mk_world () in
  let rpc = mk_rpc ~workers:1 w in
  let tr = Reconf_rpc.transport rpc in
  (* allocate more than the 64KB response buffer: the cursor must wrap and
     keep returning in-buffer addresses *)
  let first = tr.Transport.resp_alloc ~worker:0 ~bytes:4096 in
  let seen_first_again = ref false in
  for _ = 1 to 40 do
    let a = tr.Transport.resp_alloc ~worker:0 ~bytes:4096 in
    check_bool "aligned" true (a mod 16 = 0);
    if a = first then seen_first_again := true
  done;
  check_bool "cursor wrapped" true !seen_first_again

let test_rpc_resp_alloc_too_big () =
  let w = mk_world () in
  let rpc = mk_rpc ~workers:1 w in
  let tr = Reconf_rpc.transport rpc in
  Alcotest.check_raises "over buffer size"
    (Invalid_argument "Reconf_rpc.resp_alloc: too big") (fun () ->
      ignore (tr.Transport.resp_alloc ~worker:0 ~bytes:(1 lsl 20)))

let test_rpc_ring_overflow_guard () =
  let w = mk_world () in
  let config =
    { Reconf_rpc.default_config with Reconf_rpc.ring_bytes = 4096 }
  in
  let rpc =
    Reconf_rpc.create ~config ~engine:w.engine ~hier:w.hier ~layout:w.layout
      ~link:w.link ~max_workers:1 ~workers:1 ()
  in
  let tr = Reconf_rpc.transport rpc in
  Alcotest.check_raises "rx overflow detected"
    (Failure "Reconf_rpc: rx ring overflow (too many outstanding requests)")
    (fun () ->
      for i = 0 to 300 do
        tr.Transport.deliver (mk_msg ~id:i ~key:(Int64.of_int i) ())
      done)

let test_rpc_interleaved_consume_and_reconfig () =
  (* consume half the slots, reconfigure, deliver more, consume all:
     every slot is seen exactly once by its owner *)
  let w = mk_world () in
  let rpc = mk_rpc ~workers:2 ~max_workers:4 w in
  let tr = Reconf_rpc.transport rpc in
  for i = 0 to 7 do
    tr.Transport.deliver (mk_msg ~id:i ~key:(Int64.of_int i) ())
  done;
  let seen = Hashtbl.create 16 in
  in_thread w (fun env ->
      (* worker 0 consumes its first two slots only *)
      for _ = 1 to 2 do
        match tr.Transport.poll env ~worker:0 with
        | Some (seq, _) -> Hashtbl.replace seen seq ()
        | None -> Alcotest.fail "expected slot"
      done);
  Reconf_rpc.set_workers rpc 3;
  for i = 8 to 13 do
    tr.Transport.deliver (mk_msg ~id:i ~key:(Int64.of_int i) ())
  done;
  in_thread w (fun env ->
      for worker = 0 to 3 do
        let continue = ref true in
        while !continue do
          match tr.Transport.poll env ~worker with
          | Some (seq, _) ->
            if Hashtbl.mem seen seq then Alcotest.fail "slot seen twice";
            Hashtbl.replace seen seq ()
          | None -> continue := false
        done
      done);
  check_int "all 14 slots served once" 14 (Hashtbl.length seen)

let test_client_set_spec_switches_stream () =
  let w = mk_world () in
  let rpc = mk_rpc ~workers:1 w in
  let tr = Reconf_rpc.transport rpc in
  let spec_get = Mutps_workload.Ycsb.c ~keyspace:50 ~value_size:8 () in
  let spec_put = Mutps_workload.Ycsb.put_only ~keyspace:50 ~value_size:8 () in
  echo_server w tr ~workers:1 ~stop_at:4_000_000;
  let clients =
    Client.start ~engine:w.engine ~link:w.link ~transport:tr
      { Client.clients = 2; window = 1; spec = spec_get; seed = 5;
        dispatch = Client.uniform_dispatch }
  in
  let puts = ref 0 and gets = ref 0 in
  Client.on_completion clients (fun op _ ->
      match op.Mutps_workload.Opgen.kind with
      | Request.Put -> incr puts
      | Request.Get -> incr gets
      | _ -> ());
  Engine.run w.engine ~until:1_000_000;
  check_int "no puts under get spec" 0 !puts;
  Client.set_spec clients spec_put;
  let gets_before = !gets in
  Engine.run w.engine ~until:3_000_000;
  check_bool "puts after switch" true (!puts > 0);
  (* a couple of in-flight gets may drain, nothing more *)
  check_bool "gets stopped" true (!gets - gets_before <= 4)

let test_client_monitor_records_windows () =
  let w = mk_world () in
  let rpc = mk_rpc ~workers:1 w in
  let tr = Reconf_rpc.transport rpc in
  let spec = Mutps_workload.Ycsb.c ~keyspace:50 ~value_size:8 () in
  echo_server w tr ~workers:1 ~stop_at:6_000_000;
  let clients =
    Client.start ~engine:w.engine ~link:w.link ~transport:tr
      { Client.clients = 2; window = 1; spec; seed = 5;
        dispatch = Client.uniform_dispatch }
  in
  Engine.run w.engine ~until:6_000_000;
  let windows = Mutps_sim.Stats.Monitor.windows (Client.monitor clients) in
  check_bool "at least two 1ms windows closed" true (List.length windows >= 2);
  check_bool "some window saw completions" true
    (List.exists (fun (_, ops) -> ops > 0) windows)

let () =
  Alcotest.run "net"
    [
      ( "link",
        [
          Alcotest.test_case "rtt+serialization" `Quick test_link_rtt_and_serialization;
          Alcotest.test_case "bandwidth" `Quick test_link_bandwidth_dominates_large;
          Alcotest.test_case "directions independent" `Quick test_link_directions_independent;
        ] );
      ( "reconf_rpc",
        [
          Alcotest.test_case "mod-n ownership" `Quick test_rpc_mod_n_ownership;
          Alcotest.test_case "poll empty" `Quick test_rpc_poll_empty;
          Alcotest.test_case "response roundtrip" `Quick test_rpc_response_roundtrip;
          Alcotest.test_case "double response" `Quick test_rpc_double_response_rejected;
          Alcotest.test_case "put payload" `Quick test_rpc_put_payload_accessible;
          Alcotest.test_case "grow mid-stream" `Quick test_rpc_grow_workers_mid_stream;
          Alcotest.test_case "shrink mid-stream" `Quick test_rpc_shrink_workers_mid_stream;
          QCheck_alcotest.to_alcotest prop_rpc_no_slot_lost_or_duplicated;
        ] );
      ( "edge-cases",
        [
          Alcotest.test_case "resp_alloc wraps" `Quick test_rpc_resp_alloc_wraps;
          Alcotest.test_case "resp_alloc too big" `Quick test_rpc_resp_alloc_too_big;
          Alcotest.test_case "ring overflow guard" `Quick test_rpc_ring_overflow_guard;
          Alcotest.test_case "interleaved reconfig" `Quick test_rpc_interleaved_consume_and_reconfig;
          Alcotest.test_case "client set_spec" `Quick test_client_set_spec_switches_stream;
          Alcotest.test_case "client monitor" `Quick test_client_monitor_records_windows;
        ] );
      ( "erpc",
        [
          Alcotest.test_case "targets ring" `Quick test_erpc_targets_ring;
          Alcotest.test_case "rejects untargeted" `Quick test_erpc_rejects_untargeted;
          Alcotest.test_case "response roundtrip" `Quick test_erpc_response_roundtrip;
        ] );
      ( "client",
        [
          Alcotest.test_case "closed loop" `Quick test_client_closed_loop;
          Alcotest.test_case "payload deterministic" `Quick test_client_payload_deterministic;
          Alcotest.test_case "reset stats" `Quick test_client_reset_stats;
        ] );
    ]
