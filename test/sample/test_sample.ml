(* Interval sampling (lib/sample): clustering and signature unit tests,
   the reconstruction-accuracy contract against full exact runs, and the
   determinism regressions (jobs fan-out, tracing on/off) that license
   using --sample in the bit-reproducible CI lanes. *)

open Mutps_experiments
module Sample = Mutps_sample.Sample
module Signature = Mutps_sample.Signature
module Kmeans = Mutps_sample.Kmeans

(* ------------------------------------------------------------------ *)
(* k-means                                                             *)
(* ------------------------------------------------------------------ *)

let points_gen =
  QCheck.Gen.(
    let point = array_size (return 3) (float_bound_inclusive 10.0) in
    array_size (int_range 1 40) point)

let arbitrary_points =
  QCheck.make points_gen ~print:(fun pts ->
      String.concat ";"
        (Array.to_list
           (Array.map
              (fun p ->
                String.concat ","
                  (Array.to_list (Array.map string_of_float p)))
              pts)))

let qcheck_kmeans_deterministic =
  QCheck.Test.make ~name:"cluster is a pure function of (points, k, seed)"
    ~count:50
    (QCheck.pair arbitrary_points (QCheck.int_range 1 8))
    (fun (pts, k) ->
      let a1, c1 = Kmeans.cluster ~k ~seed:7 pts in
      let a2, c2 = Kmeans.cluster ~k ~seed:7 pts in
      a1 = a2 && c1 = c2)

let qcheck_kmeans_nearest =
  QCheck.Test.make
    ~name:"every point is assigned to a nearest final centroid" ~count:50
    (QCheck.pair arbitrary_points (QCheck.int_range 1 8))
    (fun (pts, k) ->
      let assign, centers = Kmeans.cluster ~k ~seed:11 pts in
      Array.length assign = Array.length pts
      && Array.for_all
           (fun c -> c >= 0 && c < Array.length centers)
           assign
      && Array.for_all
           (fun i ->
             let d = Kmeans.sq_dist pts.(i) centers.(assign.(i)) in
             Array.for_all
               (fun c -> d <= Kmeans.sq_dist pts.(i) c +. 1e-9)
               centers)
           (Array.init (Array.length pts) Fun.id))

let test_kmeans_edges () =
  let assign, centers = Kmeans.cluster ~k:4 ~seed:1 [||] in
  Alcotest.(check int) "empty input: no assignment" 0 (Array.length assign);
  Alcotest.(check int) "empty input: no centroids" 0 (Array.length centers);
  (* k larger than the point count clamps *)
  let pts = [| [| 0.0; 1.0 |]; [| 5.0; 5.0 |] |] in
  let assign, centers = Kmeans.cluster ~k:10 ~seed:1 pts in
  Alcotest.(check int) "k clamped to n" 2 (Array.length centers);
  Alcotest.(check bool) "separated points get distinct clusters" true
    (assign.(0) <> assign.(1));
  (* two well-separated blobs recover the blobs for k = 2 *)
  let blob cx n = Array.init n (fun i -> [| cx +. (0.01 *. float_of_int i) |]) in
  let pts = Array.append (blob 0.0 10) (blob 100.0 10) in
  let assign, _ = Kmeans.cluster ~k:2 ~seed:3 pts in
  for i = 1 to 9 do
    Alcotest.(check int) "blob 1 coherent" assign.(0) assign.(i);
    Alcotest.(check int) "blob 2 coherent" assign.(10) assign.(10 + i)
  done;
  Alcotest.(check bool) "blobs separated" true (assign.(0) <> assign.(10))

(* ------------------------------------------------------------------ *)
(* signatures                                                          *)
(* ------------------------------------------------------------------ *)

let test_signature_deltas () =
  let a = ref 0.0 and b = ref 0.0 in
  let src = Signature.of_counters [| (fun () -> !a); (fun () -> !b) |] in
  Alcotest.(check int) "dim" 2 (Signature.dim src);
  a := 30.0;
  b := 10.0;
  let v = Signature.take src in
  Alcotest.(check (float 1e-9)) "L1-normalized delta (a)" 0.75 v.(0);
  Alcotest.(check (float 1e-9)) "L1-normalized delta (b)" 0.25 v.(1);
  (* second window: only the increments count *)
  a := 30.0;
  b := 40.0;
  let v = Signature.take src in
  Alcotest.(check (float 1e-9)) "window 2 is delta-only (a)" 0.0 v.(0);
  Alcotest.(check (float 1e-9)) "window 2 is delta-only (b)" 1.0 v.(1);
  (* a counter reset mid-run (Client.reset_stats) must contribute its raw
     value, not a negative delta *)
  a := 5.0;
  b := 45.0;
  let v = Signature.take src in
  Alcotest.(check (float 1e-9)) "reset counter uses raw value" 0.5 v.(0);
  Alcotest.(check (float 1e-9)) "live counter still differenced" 0.5 v.(1);
  (* an idle window is the zero vector, not NaN *)
  let v = Signature.take src in
  Alcotest.(check (float 1e-9)) "idle window is zero (a)" 0.0 v.(0);
  Alcotest.(check (float 1e-9)) "idle window is zero (b)" 0.0 v.(1)

(* ------------------------------------------------------------------ *)
(* spec parsing                                                        *)
(* ------------------------------------------------------------------ *)

let test_parse () =
  (match Sample.parse "" with
  | Ok cfg -> Alcotest.(check int) "bare --sample = defaults" Sample.default.Sample.k cfg.Sample.k
  | Error e -> Alcotest.fail e);
  (match Sample.parse "9" with
  | Ok cfg ->
    Alcotest.(check int) "K override" 9 cfg.Sample.k;
    Alcotest.(check int) "interval untouched"
      Sample.default.Sample.interval cfg.Sample.interval
  | Error e -> Alcotest.fail e);
  (match Sample.parse " 4 , 500000 " with
  | Ok cfg ->
    Alcotest.(check int) "K,INTERVAL (k)" 4 cfg.Sample.k;
    Alcotest.(check int) "K,INTERVAL (interval)" 500_000 cfg.Sample.interval
  | Error e -> Alcotest.fail e);
  let rejected s =
    match Sample.parse s with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool) "k = 0 rejected" true (rejected "0");
  Alcotest.(check bool) "garbage rejected" true (rejected "phases");
  Alcotest.(check bool) "tiny interval rejected" true (rejected "4,5");
  Alcotest.(check bool) "three fields rejected" true (rejected "4,20000,1")

(* ------------------------------------------------------------------ *)
(* reconstruction accuracy vs exact runs                               *)
(* ------------------------------------------------------------------ *)

let scale_with ?(keyspace = 2_000) ?(measure = 400_000) ?sample () =
  {
    Harness.keyspace;
    cores = 4;
    clients = 8;
    window = 2;
    warmup = 100_000;
    measure;
    sample;
  }

let spec_for keyspace =
  Mutps_workload.Ycsb.get_only_uniform ~keyspace ~value_size:64 ()

(* The acceptance contract: at the repo's default 200K scale the sampled
   throughput estimate must land within 5% of the exact run AND within
   its own declared error bound.  Uses BaseKV (no CR/MR calibration
   phase) so exact and sampled runs share every pre-measurement cycle. *)
let test_accuracy_200k () =
  let keyspace = 200_000 in
  let exact_scale =
    {
      Harness.default_scale with
      Harness.keyspace;
      sample = None;
    }
  in
  let spec = spec_for keyspace in
  let exact = Harness.measure Harness.Basekv exact_scale spec in
  let sampled_scale =
    { exact_scale with Harness.sample = Some Sample.default }
  in
  let sampled = Harness.measure Harness.Basekv sampled_scale spec in
  let err = List.assoc "mops_err" sampled.Harness.extra in
  let rel =
    Float.abs (sampled.Harness.mops -. exact.Harness.mops)
    /. Float.max exact.Harness.mops 1e-9
  in
  Printf.printf
    "200K accuracy: exact %.3f Mops, sampled %.3f ± %.3f (rel err %.2f%%)\n%!"
    exact.Harness.mops sampled.Harness.mops err (100.0 *. rel);
  Alcotest.(check bool)
    (Printf.sprintf "within 5%% of exact (got %.2f%%)" (100.0 *. rel))
    true (rel <= 0.05);
  Alcotest.(check bool)
    (Printf.sprintf "within declared bound (|Δ| %.4f ≤ err %.4f)"
       (Float.abs (sampled.Harness.mops -. exact.Harness.mops))
       err)
    true
    (Float.abs (sampled.Harness.mops -. exact.Harness.mops) <= err);
  Alcotest.(check bool) "declared bound is positive" true (err > 0.0);
  let coverage = List.assoc "sample_coverage" sampled.Harness.extra in
  Alcotest.(check bool) "coverage in (0, 1]" true
    (coverage > 0.0 && coverage <= 1.0)

(* QCheck law: across sampling configurations, the exact value falls
   within the estimate's own declared bound.  Small scales keep the
   simulations cheap; the workload is stationary, which is the regime
   the bound's phase-weighted standard error models. *)
let qcheck_bound_law =
  QCheck.Test.make ~name:"exact ops/interval lies within declared bound"
    ~count:6
    (QCheck.triple (QCheck.int_range 1 5) (QCheck.int_range 2 5)
       (QCheck.int_range 0 1000))
    (fun (k, stride, seed) ->
      let keyspace = 2_000 in
      let spec = spec_for keyspace in
      let exact = Harness.measure Harness.Basekv (scale_with ()) spec in
      let cfg =
        {
          Sample.default with
          Sample.k;
          interval = 50_000;
          stride;
          max_intervals = 16;
          seed;
        }
      in
      let sampled =
        Harness.measure Harness.Basekv (scale_with ~sample:cfg ()) spec
      in
      let err = List.assoc "mops_err" sampled.Harness.extra in
      Float.abs (sampled.Harness.mops -. exact.Harness.mops) <= err)

(* Truncation: with max_intervals below the nominal interval count the
   run must cover proportionally fewer cycles yet still reconstruct a
   full-window estimate (completed scales to the nominal window). *)
let test_truncation () =
  let keyspace = 2_000 in
  let spec = spec_for keyspace in
  let cfg =
    {
      Sample.default with
      Sample.k = 3;
      interval = 50_000;
      stride = 2;
      max_intervals = 4;
    }
  in
  let scale = scale_with ~measure:800_000 ~sample:cfg () in
  let m = Harness.measure Harness.Basekv scale spec in
  let coverage = List.assoc "sample_coverage" m.Harness.extra in
  Alcotest.(check bool)
    (Printf.sprintf "truncated coverage (%.2f) well below 1" coverage)
    true
    (coverage < 0.5);
  Alcotest.(check int) "simulated interval count respects the cap" 4
    (int_of_float (List.assoc "sample_intervals" m.Harness.extra));
  let exact = Harness.measure Harness.Basekv (scale_with ~measure:800_000 ()) spec in
  let rel =
    Float.abs
      (float_of_int m.Harness.completed -. float_of_int exact.Harness.completed)
    /. Float.max (float_of_int exact.Harness.completed) 1.0
  in
  Alcotest.(check bool)
    (Printf.sprintf "extrapolated completed within 15%% (got %.1f%%)"
       (100.0 *. rel))
    true (rel <= 0.15)

(* ------------------------------------------------------------------ *)
(* determinism                                                         *)
(* ------------------------------------------------------------------ *)

let sampled_scale_small () =
  scale_with
    ~sample:
      {
        Sample.default with
        Sample.k = 3;
        interval = 50_000;
        stride = 2;
        max_intervals = 8;
      }
    ()

(* Sampled experiment rows must be byte-identical for any --jobs count:
   the runner fans experiments over domains and nothing in the sampling
   layer (registry capture, clustering, warming) may observe it. *)
let test_jobs_determinism () =
  let scale = sampled_scale_small () in
  let names = [ "fig2b"; "fig12" ] in
  let json jobs =
    Runner.run_all ~jobs names scale |> Runner.rows |> Report.to_json
  in
  let j1 = json 1 and j4 = json 4 in
  Alcotest.(check string) "sampled rows identical for --jobs 1 vs 4" j1 j4

(* Tracing must not perturb sampled results: signatures come from a
   private registry and probe reads, so an ambient tracer (slice hooks,
   counter sampling) changes neither interval boundaries nor estimates. *)
let test_tracing_determinism () =
  let scale = sampled_scale_small () in
  let spec = spec_for scale.Harness.keyspace in
  let run () = Harness.measure Harness.Mutps scale spec in
  let plain = run () in
  let traced, _collectors =
    Mutps_trace.Trace.traced ~keep_events:false (fun () -> run ())
  in
  Alcotest.(check (float 1e-9)) "mops identical under tracing"
    plain.Harness.mops traced.Harness.mops;
  Alcotest.(check int) "completed identical under tracing"
    plain.Harness.completed traced.Harness.completed;
  List.iter2
    (fun (k1, v1) (k2, v2) ->
      Alcotest.(check string) "extra metric name" k1 k2;
      Alcotest.(check (float 1e-9)) ("extra metric " ^ k1) v1 v2)
    plain.Harness.extra traced.Harness.extra;
  (* and run-to-run determinism of the sampled path itself *)
  let again = run () in
  Alcotest.(check (float 1e-9)) "mops identical run to run"
    plain.Harness.mops again.Harness.mops

let () =
  Alcotest.run "sample"
    [
      ( "kmeans",
        [
          QCheck_alcotest.to_alcotest qcheck_kmeans_deterministic;
          QCheck_alcotest.to_alcotest qcheck_kmeans_nearest;
          Alcotest.test_case "edge cases" `Quick test_kmeans_edges;
        ] );
      ( "signature",
        [ Alcotest.test_case "deltas, resets, normalization" `Quick
            test_signature_deltas ] );
      ("parse", [ Alcotest.test_case "CLI specs" `Quick test_parse ]);
      ( "reconstruction",
        [
          Alcotest.test_case "200K exact-vs-sampled contract" `Slow
            test_accuracy_200k;
          QCheck_alcotest.to_alcotest qcheck_bound_law;
          Alcotest.test_case "truncation extrapolates" `Quick test_truncation;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "jobs 1 vs 4" `Quick test_jobs_determinism;
          Alcotest.test_case "tracing on vs off" `Quick
            test_tracing_determinism;
        ] );
    ]
