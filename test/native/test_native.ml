(* Tests for the native runtime (lib/native): the work-stealing deque and
   scheduler, effect fibers, the RESP codec, the socket server — and the
   sim-vs-native equivalence suite proving both backends answer the same
   operation history with byte-identical replies. *)

open Mutps_native

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Deque                                                               *)
(* ------------------------------------------------------------------ *)

let test_deque_fifo () =
  let q = Deque.create ~capacity:128 () in
  for i = 0 to 99 do
    check_bool "push accepted" true (Deque.push q i)
  done;
  check_int "length" 100 (Deque.length q);
  for i = 0 to 99 do
    check_int "fifo order" i (Option.get (Deque.take q))
  done;
  check_bool "empty" true (Deque.take q = None)

let test_deque_full () =
  let q = Deque.create ~capacity:8 () in
  for i = 0 to 7 do
    check_bool "fits" true (Deque.push q i)
  done;
  check_bool "full rejects" false (Deque.push q 8);
  check_int "oldest out" 0 (Option.get (Deque.take q));
  check_bool "slot freed" true (Deque.push q 8)

(* Concurrent exactly-once: one owner pushes N distinct items through a
   small ring while several thief domains (and the owner) drain it; every
   item must be taken exactly once. *)
let test_deque_concurrent_exactly_once () =
  let n = 20_000 and thieves = 3 in
  let q = Deque.create ~capacity:64 () in
  let taken = Array.init n (fun _ -> Atomic.make 0) in
  let produced = Atomic.make false in
  let thief () =
    Domain.spawn (fun () ->
        let continue = ref true in
        while !continue do
          match Deque.take q with
          | Some i -> Atomic.incr taken.(i)
          | None ->
            if Atomic.get produced then continue := false
            else Domain.cpu_relax ()
        done)
  in
  let ds = Array.init thieves (fun _ -> thief ()) in
  for i = 0 to n - 1 do
    while not (Deque.push q i) do
      (* ring full: help drain *)
      match Deque.take q with
      | Some j -> Atomic.incr taken.(j)
      | None -> Domain.cpu_relax ()
    done
  done;
  Atomic.set produced true;
  Array.iter Domain.join ds;
  (* drain the tail the thieves may have left *)
  let continue = ref true in
  while !continue do
    match Deque.take q with
    | Some j -> Atomic.incr taken.(j)
    | None -> continue := false
  done;
  Array.iteri
    (fun i c -> check_int (Printf.sprintf "item %d exactly once" i) 1 (Atomic.get c))
    taken

(* ------------------------------------------------------------------ *)
(* Fibers and scheduler                                                *)
(* ------------------------------------------------------------------ *)

let test_sched_fifo_interleave () =
  let log = ref [] in
  let s = Sched.create ~workers:1 () in
  let fiber name =
    Sched.spawn s (fun () ->
        for i = 1 to 3 do
          log := Printf.sprintf "%s%d" name i :: !log;
          Fiber.yield ()
        done)
  in
  fiber "a";
  fiber "b";
  Sched.run s;
  check_int "all done" 0 (Sched.live s);
  (* single worker + FIFO queue: strict round-robin interleave *)
  Alcotest.(check (list string))
    "round robin"
    [ "a1"; "b1"; "a2"; "b2"; "a3"; "b3" ]
    (List.rev !log)

let test_sched_spawn_from_fiber () =
  let hits = Atomic.make 0 in
  let s = Sched.create ~workers:2 () in
  Sched.spawn s (fun () ->
      for _ = 1 to 10 do
        Sched.spawn s (fun () -> Atomic.incr hits)
      done);
  Sched.run s;
  check_int "nested spawns all ran" 10 (Atomic.get hits)

let test_sched_error_propagates () =
  let s = Sched.create ~workers:2 () in
  Sched.spawn s (fun () -> failwith "boom");
  Alcotest.check_raises "fiber error re-raised" (Failure "boom") (fun () ->
      Sched.run s)

let test_fiber_stop_is_clean () =
  let s = Sched.create ~workers:1 () in
  Sched.spawn s (fun () -> raise Fiber.Stop);
  Sched.run s;
  check_int "stop = normal completion" 0 (Sched.live s)

let test_fiber_park_resume () =
  let log = ref [] in
  let resume_cell = ref None in
  let s = Sched.create ~workers:1 () in
  Sched.spawn s (fun () ->
      log := "parking" :: !log;
      Fiber.park (fun resume -> resume_cell := Some resume);
      log := "resumed" :: !log);
  Sched.spawn s (fun () ->
      log := "waking" :: !log;
      (Option.get !resume_cell) ());
  Sched.run s;
  Alcotest.(check (list string))
    "park then resume" [ "parking"; "waking"; "resumed" ] (List.rev !log)

let test_fiber_double_resume_rejected () =
  let caught = ref false in
  let resume_cell = ref None in
  let s = Sched.create ~workers:1 () in
  Sched.spawn s (fun () -> Fiber.park (fun r -> resume_cell := Some r));
  Sched.spawn s (fun () ->
      let resume = Option.get !resume_cell in
      resume ();
      match resume () with
      | () -> ()
      | exception Invalid_argument _ -> caught := true);
  Sched.run s;
  check_bool "second resume rejected" true !caught

(* QCheck law: for any worker count and fiber population (each yielding a
   varying number of times), the work-stealing scheduler completes every
   spawned fiber exactly once. *)
let qcheck_sched_exactly_once =
  QCheck.Test.make ~count:30 ~name:"sched completes every fiber exactly once"
    QCheck.(pair (int_range 1 4) (int_range 1 120))
    (fun (workers, nfibers) ->
      let runs = Array.init nfibers (fun _ -> Atomic.make 0) in
      let s = Sched.create ~workers () in
      for i = 0 to nfibers - 1 do
        Sched.spawn s (fun () ->
            for _ = 1 to i mod 4 do
              Fiber.yield ()
            done;
            Atomic.incr runs.(i))
      done;
      Sched.run s;
      Sched.live s = 0
      && Array.for_all (fun c -> Atomic.get c = 1) runs)

(* ------------------------------------------------------------------ *)
(* RESP codec                                                          *)
(* ------------------------------------------------------------------ *)

let encode_cmd cmd =
  let b = Buffer.create 64 in
  Resp.encode_command b cmd;
  Buffer.contents b

let parse_cmd_exn s =
  let b = Bytes.of_string s in
  match Resp.parse_command b ~len:(Bytes.length b) with
  | `Ok (cmd, consumed) ->
    check_int "whole frame consumed" (String.length s) consumed;
    cmd
  | `Need_more -> Alcotest.fail "incomplete"
  | `Bad m -> Alcotest.fail ("bad: " ^ m)

let test_resp_command_roundtrip () =
  (match parse_cmd_exn (encode_cmd (Resp.Get 42L)) with
  | Resp.Get k -> check_bool "get key" true (Int64.equal k 42L)
  | _ -> Alcotest.fail "not a get");
  (match parse_cmd_exn (encode_cmd (Resp.Set (7L, Bytes.of_string "\x00\xffbin\r\n"))) with
  | Resp.Set (k, v) ->
    check_bool "set key" true (Int64.equal k 7L);
    check_string "binary-safe value" "\x00\xffbin\r\n" (Bytes.to_string v)
  | _ -> Alcotest.fail "not a set");
  (match parse_cmd_exn (encode_cmd (Resp.Del (-3L))) with
  | Resp.Del k -> check_bool "negative key" true (Int64.equal k (-3L))
  | _ -> Alcotest.fail "not a del");
  match parse_cmd_exn (encode_cmd Resp.Ping) with
  | Resp.Ping -> ()
  | _ -> Alcotest.fail "not a ping"

let test_resp_incremental () =
  let full = encode_cmd (Resp.Set (123L, Bytes.of_string "value")) in
  (* every strict prefix must report Need_more, never Bad *)
  for cut = 0 to String.length full - 1 do
    let b = Bytes.of_string (String.sub full 0 cut) in
    match Resp.parse_command b ~len:cut with
    | `Need_more -> ()
    | `Ok _ -> Alcotest.fail "accepted a strict prefix"
    | `Bad m -> Alcotest.fail ("prefix rejected: " ^ m)
  done

let test_resp_bad_input () =
  let bad s =
    let b = Bytes.of_string s in
    match Resp.parse_command b ~len:(Bytes.length b) with
    | `Bad _ -> ()
    | `Ok _ -> Alcotest.fail ("accepted: " ^ String.escaped s)
    | `Need_more -> Alcotest.fail ("need-more: " ^ String.escaped s)
  in
  bad "*1\r\n$4\r\nNOPE\r\n";
  bad "*2\r\n$3\r\nGET\r\n$3\r\nabc\r\n";
  (* key not an int *)
  bad "*1\r\n$3\r\nGET\r\n";
  (* arity *)
  bad "+hello\r\n" (* replies are not commands *)

let test_resp_reply_roundtrip () =
  let roundtrip r =
    let s = Resp.reply_to_string r in
    let b = Bytes.of_string s in
    match Resp.parse_reply b ~len:(Bytes.length b) with
    | `Ok (r', consumed) ->
      check_int "consumed" (String.length s) consumed;
      check_string "reply roundtrip" s (Resp.reply_to_string r')
    | _ -> Alcotest.fail "reply did not roundtrip"
  in
  roundtrip (Resp.Value (Bytes.of_string "some\r\nbytes"));
  roundtrip Resp.Nil;
  roundtrip (Resp.Ok_simple "OK");
  roundtrip (Resp.Ok_simple "PONG");
  roundtrip (Resp.Error "ERR nope")

(* ------------------------------------------------------------------ *)
(* Sim-vs-native equivalence                                           *)
(* ------------------------------------------------------------------ *)

module Kvs = Mutps_kvs
module Engine = Mutps_sim.Engine
module Request = Mutps_queue.Request
module Message = Mutps_net.Message
module Transport = Mutps_net.Transport
module Opgen = Mutps_workload.Opgen

type eq_op = Eget of int64 | Eput of int64 * int | Edel of int64

let preload_keys = 32
let eq_value_size = 16

(* the shared deterministic reply-byte synthesis: operation outcome ->
   wire bytes, used verbatim by the native server *)
let op_request = function
  | Eget key -> (Request.get ~key ~buf:0, None)
  | Edel key -> (Request.delete ~key ~buf:0, None)
  | Eput (key, size) ->
    ( Request.put ~key ~size ~buf:0,
      Some (Mutps_net.Client.payload ~key ~size) )

(* Drive a simulated system one operation at a time: deliver, then step
   the engine until the response callback fires, and synthesize the wire
   bytes the native server would send for the same outcome. *)
let sim_replies system ops =
  let config = Kvs.Config.default ~cores:2 ~capacity:256 () in
  let transport, engine =
    match system with
    | `Basekv ->
      let kv = Kvs.Basekv.create config in
      Kvs.Backend.populate (Kvs.Basekv.backend kv) ~keyspace:preload_keys
        ~value_size:eq_value_size;
      Kvs.Basekv.start kv;
      (Kvs.Basekv.transport kv, (Kvs.Basekv.backend kv).Kvs.Backend.engine)
    | `Mutps ->
      let kv = Kvs.Mutps.create config in
      Kvs.Backend.populate (Kvs.Mutps.backend kv) ~keyspace:preload_keys
        ~value_size:eq_value_size;
      Kvs.Mutps.start kv;
      (Kvs.Mutps.transport kv, (Kvs.Mutps.backend kv).Kvs.Backend.engine)
  in
  let replies = ref [] in
  transport.Transport.set_on_response (fun (msg : Message.t) value ->
      replies :=
        Resp.reply_to_string
          (Resp.reply_for_op msg.Message.req.Request.kind value)
        :: !replies);
  List.iteri
    (fun i op ->
      let req, value = op_request op in
      let before = List.length !replies in
      transport.Transport.deliver
        {
          Message.id = i;
          client = 0;
          sent_at = Engine.now engine;
          target = -1;
          req;
          value;
        };
      let guard = ref 0 in
      while List.length !replies = before && !guard < 2_000 do
        Engine.run engine ~until:(Engine.now engine + 100_000);
        incr guard
      done;
      if List.length !replies = before then
        Alcotest.fail (Printf.sprintf "sim reply %d never arrived" i))
    ops;
  List.rev !replies

(* Drive the native server over a real socket, one operation at a time,
   collecting the raw reply bytes. *)
let native_replies mode ops =
  let path = Filename.temp_file "mutps-eq" ".sock" in
  Sys.remove path;
  let handle =
    Server.launch
      {
        Server.default_config with
        Server.mode;
        listen = Server.Unix_path path;
        domains = 3;
        shards = 2;
        keyspace = preload_keys;
        value_size = eq_value_size;
        hot_cap = 8;
      }
  in
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  let rbuf = Bytes.create 65536 in
  let rlen = ref 0 in
  let read_reply () =
    let rec loop () =
      match Resp.parse_reply rbuf ~len:!rlen with
      | `Ok (r, consumed) ->
        Bytes.blit rbuf consumed rbuf 0 (!rlen - consumed);
        rlen := !rlen - consumed;
        Resp.reply_to_string r
      | `Bad m -> Alcotest.fail ("native protocol error: " ^ m)
      | `Need_more ->
        let n = Unix.read fd rbuf !rlen (Bytes.length rbuf - !rlen) in
        if n = 0 then Alcotest.fail "native server closed early";
        rlen := !rlen + n;
        loop ()
    in
    loop ()
  in
  let send_op op =
    let cmd =
      match op with
      | Eget k -> Resp.Get k
      | Edel k -> Resp.Del k
      | Eput (k, size) ->
        Resp.Set (k, Mutps_net.Client.payload ~key:k ~size)
    in
    let b = Buffer.create 64 in
    Resp.encode_command b cmd;
    let s = Buffer.contents b in
    ignore (Unix.write_substring fd s 0 (String.length s))
  in
  let replies = List.map (fun op -> send_op op; read_reply ()) ops in
  Unix.close fd;
  Server.stop handle;
  ignore (Server.wait handle);
  replies

let scripted_ops =
  [
    Eget 1L;  (* preloaded hit *)
    Eget 100L;  (* miss *)
    Eput (100L, 24);
    Eget 100L;  (* now a hit with the new value *)
    Eget 100L;  (* repeat: exercises the CR hot cache *)
    Eput (1L, 9);  (* overwrite a preloaded key *)
    Eget 1L;
    Edel 1L;
    Eget 1L;  (* miss after delete *)
    Edel 1L;  (* delete of a missing key still acks *)
    Eput (1L, 5);
    Eget 1L;
  ]

(* a longer generated history over a keyspace straddling the preload
   boundary, so it mixes hits, misses, overwrites, and deletes *)
let generated_ops n =
  let spec =
    {
      Opgen.name = "equiv";
      keyspace = preload_keys + 16;
      key_dist = Opgen.Zipfian 0.9;
      size_dist = Opgen.Fixed 24;
      mix = { Opgen.get = 0.5; put = 0.4; scan = 0.0 };
      scan_len = 1;
    }
  in
  let gen = Opgen.make spec ~seed:33 in
  List.init n (fun _ ->
      let op = Opgen.next gen in
      match op.Opgen.kind with
      | Request.Get | Request.Scan -> Eget op.Opgen.key
      | Request.Put -> Eput (op.Opgen.key, max 1 op.Opgen.size)
      | Request.Delete -> Edel op.Opgen.key)

let check_equivalence system mode ops =
  let sim = sim_replies system ops in
  let native = native_replies mode ops in
  check_int "same reply count" (List.length sim) (List.length native);
  List.iteri
    (fun i (s, n) ->
      check_string (Printf.sprintf "reply %d byte-identical" i) s n)
    (List.combine sim native)

let test_equivalence_basekv () =
  check_equivalence `Basekv (Server.Rtc_pool Kvs.Exec.Locked)
    (scripted_ops @ generated_ops 150)

let test_equivalence_mutps () =
  check_equivalence `Mutps Server.Split (scripted_ops @ generated_ops 150)

(* ------------------------------------------------------------------ *)
(* Server + loadgen smoke                                              *)
(* ------------------------------------------------------------------ *)

let test_serve_loadgen () =
  let path = Filename.temp_file "mutps-smoke" ".sock" in
  Sys.remove path;
  let handle =
    Server.launch
      {
        Server.default_config with
        Server.mode = Server.Split;
        listen = Server.Unix_path path;
        domains = 3;
        shards = 2;
        keyspace = 512;
        value_size = 32;
        hot_cap = 64;
      }
  in
  let spec =
    {
      Opgen.name = "smoke";
      keyspace = 512;
      key_dist = Opgen.Zipfian 0.9;
      size_dist = Opgen.Fixed 32;
      mix = { Opgen.get = 0.7; put = 0.3; scan = 0.0 };
      scan_len = 1;
    }
  in
  let r =
    Loadgen.run
      {
        Loadgen.connect = Server.Unix_path path;
        conns = 4;
        ops = 2_000;
        spec;
        seed = 5;
      }
  in
  check_int "every op answered" 2_000 r.Loadgen.completed;
  check_int "no errors" 0 r.Loadgen.errors;
  check_bool "keyspace preloaded: gets mostly hit" true
    (r.Loadgen.get_hits > r.Loadgen.get_misses);
  Server.stop handle;
  let s = Server.wait handle in
  check_int "connections accepted" 4 s.Server.conns;
  check_bool "KVS answered the non-ping traffic" true (s.Server.responded > 0);
  check_int "split answered everything it was given" s.Server.responded
    (s.Server.cr_hits + s.Server.mr_ops)

let test_serve_ping_and_errors () =
  let path = Filename.temp_file "mutps-ping" ".sock" in
  Sys.remove path;
  let handle =
    Server.launch
      {
        Server.default_config with
        Server.listen = Server.Unix_path path;
        domains = 2;
        shards = 1;
      }
  in
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  let send s = ignore (Unix.write_substring fd s 0 (String.length s)) in
  let buf = Bytes.create 4096 in
  let read_some () =
    let n = Unix.read fd buf 0 4096 in
    Bytes.sub_string buf 0 n
  in
  send "*1\r\n$4\r\nPING\r\n";
  check_string "pong" "+PONG\r\n" (read_some ());
  (* unknown command: clear error, then the server closes the connection *)
  send "*1\r\n$4\r\nNOPE\r\n";
  let err = read_some () in
  check_bool "error reply" true
    (String.length err > 4 && String.sub err 0 4 = "-ERR");
  check_string "connection closed after protocol error" "" (read_some ());
  Unix.close fd;
  Server.stop handle;
  ignore (Server.wait handle)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "native"
    [
      ( "deque",
        [
          Alcotest.test_case "fifo" `Quick test_deque_fifo;
          Alcotest.test_case "full" `Quick test_deque_full;
          Alcotest.test_case "concurrent exactly-once" `Quick
            test_deque_concurrent_exactly_once;
        ] );
      ( "sched",
        [
          Alcotest.test_case "fifo interleave" `Quick test_sched_fifo_interleave;
          Alcotest.test_case "spawn from fiber" `Quick
            test_sched_spawn_from_fiber;
          Alcotest.test_case "error propagates" `Quick
            test_sched_error_propagates;
          Alcotest.test_case "Fiber.Stop is clean" `Quick
            test_fiber_stop_is_clean;
          Alcotest.test_case "park/resume" `Quick test_fiber_park_resume;
          Alcotest.test_case "double resume rejected" `Quick
            test_fiber_double_resume_rejected;
          qt qcheck_sched_exactly_once;
        ] );
      ( "resp",
        [
          Alcotest.test_case "command roundtrip" `Quick
            test_resp_command_roundtrip;
          Alcotest.test_case "incremental" `Quick test_resp_incremental;
          Alcotest.test_case "bad input" `Quick test_resp_bad_input;
          Alcotest.test_case "reply roundtrip" `Quick test_resp_reply_roundtrip;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "basekv sim = native" `Quick
            test_equivalence_basekv;
          Alcotest.test_case "uTPS sim = native split" `Quick
            test_equivalence_mutps;
        ] );
      ( "server",
        [
          Alcotest.test_case "serve + loadgen" `Quick test_serve_loadgen;
          Alcotest.test_case "ping and protocol errors" `Quick
            test_serve_ping_and_errors;
        ] );
    ]
