(** The resizable hot-item cache of the cache-resident layer (§3.2.2).

    Two organisations, per the paper: with a tree index the hot set is kept
    as a {e sorted array} (no intermediate pointers, binary search, cheap to
    rebuild on refresh, supports range cooperation); with a hash index hot
    items are reachable in O(1) via open-addressing probing — standing in
    for "reuse the main index", whose hot buckets are cache-resident.

    [publish] installs a new hot set with an epoch-style atomic switch; the
    arrays live in their own region so the auto-tuner can pin them into
    dedicated LLC ways. *)

type mode = Sorted | Probed

type t

val create : Mutps_mem.Layout.t -> mode:mode -> max_items:int -> t

val mode : t -> mode
val size : t -> int
val epoch : t -> int
(** Incremented by every {!publish}. *)

val region_base : t -> int
val region_bytes : t -> int

val sync_obj : t -> Mutps_mem.Env.t -> int
(** Sanitizer sync object of this cache ([-1] when no sanitizer).  The
    manager brackets its region rewrite + {!publish} with
    {!Mutps_mem.Env.acquire}/{!Mutps_mem.Env.release} on it; lookups
    acquire/release it internally. *)

val publish : t -> (int64 * Mutps_store.Item.t) array -> unit
(** Install a new hot set (silent: the manager thread charges its own
    rebuild costs).  Duplicate keys keep the first occurrence.  Raises
    [Invalid_argument] beyond [max_items]. *)

val find : t -> Mutps_mem.Env.t -> int64 -> Mutps_store.Item.t option
(** Charged lookup: epoch word + binary search (Sorted) or probe chain
    (Probed). *)

val mem_silent : t -> int64 -> bool

val cached_range :
  t -> Mutps_mem.Env.t -> lo:int64 -> n:int -> (int64 * Mutps_store.Item.t) list
(** Cached entries with key ≥ [lo], ascending, at most [n] — the CR side of
    cooperative range queries (§4).  Sorted mode only. *)
