module Env = Mutps_mem.Env
module Layout = Mutps_mem.Layout
module Item = Mutps_store.Item
module Rng = Mutps_sim.Rng

type mode = Sorted | Probed

let entry_bytes = 16

type t = {
  mode : mode;
  max_items : int;
  table_cap : int; (* probed mode: power-of-two slot count *)
  base : int;
  bytes : int;
  epoch_addr : int;
  keys : int64 array; (* sorted mode: sorted keys; probed: slots *)
  items : Item.t option array;
  mutable size : int;
  mutable epoch : int;
  mutable san_obj : int; (* sanitizer sync object; -1 until first use *)
}

let create layout ~mode ~max_items =
  if max_items <= 0 then invalid_arg "Hotcache.create";
  let table_cap = 1 lsl Mutps_sim.Bits.log2_ceil (2 * max_items) in
  let slots = match mode with Sorted -> max_items | Probed -> table_cap in
  let bytes = Layout.line_bytes + (slots * entry_bytes) in
  let region = Layout.region layout ~name:"hotcache" ~size:bytes in
  let epoch_addr = Layout.alloc region ~align:64 8 in
  ignore (Layout.alloc region ~align:64 (slots * entry_bytes));
  {
    mode;
    max_items;
    table_cap;
    base = Layout.base region;
    bytes;
    epoch_addr;
    keys = Array.make slots 0L;
    items = Array.make slots None;
    size = 0;
    epoch = 0;
    san_obj = -1;
  }

(* Sanitizer model: the epoch-switched hot set behaves like a
   reader-writer lock — lookups acquire/release the cache object around
   their probes, and the manager brackets its region rewrite + [publish]
   with the same object (via [sync_obj]).  The epoch word is a sync
   range. *)
let sync_obj t env =
  if t.san_obj < 0 && Env.sanitizing env then begin
    t.san_obj <- Env.sync_obj env ("hotcache@" ^ string_of_int t.base);
    Env.sync_range env ~lo:t.epoch_addr ~hi:(t.epoch_addr + 8) ~on:true
  end;
  t.san_obj

let mode t = t.mode
let size t = t.size
let epoch t = t.epoch
let region_base t = t.base
let region_bytes t = t.bytes

(* address of entry slot [i] *)
let slot_addr t i = t.base + Layout.line_bytes + (i * entry_bytes)

let probe_slot t key attempt =
  (Int64.to_int (Rng.hash64 key) + attempt) land (t.table_cap - 1)

let publish t entries =
  if Array.length entries > t.max_items then
    invalid_arg "Hotcache.publish: more entries than max_items";
  (match t.mode with
  | Sorted ->
    let sorted = Array.copy entries in
    Array.sort (fun (a, _) (b, _) -> Int64.compare a b) sorted;
    Array.fill t.items 0 (Array.length t.items) None;
    let n = ref 0 in
    Array.iter
      (fun (k, item) ->
        (* drop duplicates (sorted, so dups are adjacent) *)
        if !n = 0 || not (Int64.equal t.keys.(!n - 1) k) then begin
          t.keys.(!n) <- k;
          t.items.(!n) <- Some item;
          incr n
        end)
      sorted;
    t.size <- !n
  | Probed ->
    Array.fill t.items 0 (Array.length t.items) None;
    t.size <- 0;
    Array.iter
      (fun (k, item) ->
        let rec place attempt =
          if attempt >= t.table_cap then failwith "Hotcache: table full"
          else begin
            let s = probe_slot t k attempt in
            match t.items.(s) with
            | None ->
              t.keys.(s) <- k;
              t.items.(s) <- Some item;
              t.size <- t.size + 1
            | Some _ when Int64.equal t.keys.(s) k -> () (* duplicate *)
            | Some _ -> place (attempt + 1)
          end
        in
        place 0)
      entries);
  t.epoch <- t.epoch + 1

let find_sorted t env key =
  let lo = ref 0 and hi = ref t.size in
  let found = ref None in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    Env.load env ~addr:(slot_addr t mid) ~size:entry_bytes;
    let c = Int64.compare t.keys.(mid) key in
    if c = 0 then begin
      found := t.items.(mid);
      lo := !hi
    end
    else if c < 0 then lo := mid + 1
    else hi := mid
  done;
  !found

let find_probed t env key =
  let rec go attempt =
    if attempt >= t.table_cap then None
    else begin
      let s = probe_slot t key attempt in
      Env.load env ~addr:(slot_addr t s) ~size:entry_bytes;
      match t.items.(s) with
      | None -> None
      | Some item when Int64.equal t.keys.(s) key -> Some item
      | Some _ -> go (attempt + 1)
    end
  in
  go 0

let find t env key =
  Env.tagged env "Hotcache.find" @@ fun () ->
  if t.size = 0 then None
  else begin
    let obj = sync_obj t env in
    Env.acquire env obj;
    Env.load env ~addr:t.epoch_addr ~size:8;
    let found =
      match t.mode with
      | Sorted -> find_sorted t env key
      | Probed -> find_probed t env key
    in
    Env.release env obj;
    found
  end

let mem_silent t key =
  if t.size = 0 then false
  else
    match t.mode with
    | Sorted ->
      let lo = ref 0 and hi = ref t.size in
      let found = ref false in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        let c = Int64.compare t.keys.(mid) key in
        if c = 0 then begin
          found := true;
          lo := !hi
        end
        else if c < 0 then lo := mid + 1
        else hi := mid
      done;
      !found
    | Probed ->
      let rec go attempt =
        if attempt >= t.table_cap then false
        else begin
          let s = probe_slot t key attempt in
          match t.items.(s) with
          | None -> false
          | Some _ when Int64.equal t.keys.(s) key -> true
          | Some _ -> go (attempt + 1)
        end
      in
      go 0

let cached_range t env ~lo ~n =
  Env.tagged env "Hotcache.cached_range" @@ fun () ->
  match t.mode with
  | Probed -> invalid_arg "Hotcache.cached_range: requires Sorted mode"
  | Sorted ->
    let obj = sync_obj t env in
    Env.acquire env obj;
    Env.load env ~addr:t.epoch_addr ~size:8;
    (* binary search for the first key >= lo *)
    let a = ref 0 and b = ref t.size in
    while !a < !b do
      let mid = (!a + !b) / 2 in
      Env.load env ~addr:(slot_addr t mid) ~size:entry_bytes;
      if Int64.compare t.keys.(mid) lo < 0 then a := mid + 1 else b := mid
    done;
    let out = ref [] and taken = ref 0 and i = ref !a in
    while !taken < n && !i < t.size do
      Env.load env ~addr:(slot_addr t !i) ~size:entry_bytes;
      (match t.items.(!i) with
      | Some item ->
        out := (t.keys.(!i), item) :: !out;
        incr taken
      | None -> ());
      incr i
    done;
    Env.release env obj;
    List.rev !out
