(** Simulated-time race sanitizer: a vector-clock happens-before detector
    over the DES (DESIGN.md §5, "Determinism invariants").

    Every charged [Env] access is recorded against a shadow map of the
    simulated address space; happens-before edges come from the engine's
    real synchronization points.  Two edge families keep the relation from
    collapsing into the total dispatch order (which would make the checker
    vacuous):

    - {e object edges} (untimed, real dispatch order): each shared
      structure — a {!Mutps_queue.Ring}, an {!Mutps_store.Item} seqlock,
      the index, the hot cache — is a sync object whose operations
      acquire at entry and release at exit, modelling the synchronization
      its header words provide on real hardware.  The header words
      themselves are registered as {e sync ranges} and exempted from race
      pairing.
    - {e schedule edges} (simulated-time-indexed): a thread releases at
      every commit stamped with the committed time, and acquires at slice
      start, inheriting only releases stamped at or before the slice's
      start.  Accesses in overlapping uncommitted windows stay unordered —
      exactly the windows in which the simulation could observe
      half-written state.

    A lockset check additionally flags writes to protected bytes (item
    payloads) made without the protecting version lock held.

    Keep the sanitizer off in benchmark runs: it adds a vector-clock
    operation per slice and a shadow-map probe per access (3-5x
    slowdown). *)

type kind = Race | Unlocked

type access = {
  a_thread : string;
  a_site : string;  (** [Env] caller tag; ["?"] when untagged. *)
  a_time : int;  (** Simulated timestamp of the access. *)
  a_write : bool;
}

type report = {
  kind : kind;
  lo : int;
  hi : int;  (** Overlapping simulated byte range [\[lo, hi)]. *)
  first : access option;  (** [None] for lockset findings. *)
  second : access;
}

val report_to_string : report -> string
val pp_report : Format.formatter -> report -> unit

type t

val create : unit -> t

val hooks : t -> Mutps_sim.Engine.sanitizer

val install : Mutps_sim.Engine.t -> t
(** [install engine] attaches a fresh detector to [engine]. *)

val reports : t -> report list
(** Deduplicated findings (one per site pair), in detection order. *)

val sanitized : (unit -> 'a) -> 'a * report list
(** [sanitized f] runs [f] with a global engine factory installed so every
    engine created inside [f] gets its own detector, and returns [f ()]'s
    result plus all findings across those engines.  Not reentrant. *)
