module Engine = Mutps_sim.Engine

type kind = Race | Unlocked

type access = {
  a_thread : string;
  a_site : string;
  a_time : int;
  a_write : bool;
}

type report = {
  kind : kind;
  lo : int;
  hi : int;
  first : access option;
  second : access;
}

let pp_access fmt a =
  Format.fprintf fmt "%s %s@%s at t=%d"
    (if a.a_write then "write" else "read")
    a.a_thread
    (if a.a_site = "" then "?" else a.a_site)
    a.a_time

let pp_report fmt r =
  match r.kind, r.first with
  | Race, Some first ->
    Format.fprintf fmt "race on bytes [%d,%d): %a unordered with %a" r.lo r.hi
      pp_access first pp_access r.second
  | Unlocked, _ ->
    Format.fprintf fmt "unlocked write to protected bytes [%d,%d): %a" r.lo
      r.hi pp_access r.second
  | Race, None ->
    Format.fprintf fmt "race on bytes [%d,%d): %a" r.lo r.hi pp_access
      r.second

let report_to_string r = Format.asprintf "%a" pp_report r

(* A recorded access: [epoch] is the accessor's own clock component at the
   time of access, so a later thread T orders after it iff
   [epoch <= C_T(tid)] (the FastTrack epoch test). *)
type arec = {
  r_tid : int;
  r_epoch : int;
  r_site : string;
  r_time : int;
  r_lo : int;
  r_hi : int;
}

type cell = { mutable cwrites : arec list; mutable creads : arec list }

type thread = {
  t_name : string;
  t_clock : Vclock.t;
  mutable t_locks : int list;
}

type t = {
  mutable threads : thread array;
  mutable nthreads : int;
  objs : (string, int) Hashtbl.t;
  mutable obj_clocks : Vclock.t array;
  mutable nobjs : int;
  sched_line : Vclock.t;
  mutable sched_pending : (int * Vclock.t) list;
  shadow : (int, cell) Hashtbl.t;
  syncs : (int, (int * int) list) Hashtbl.t;  (* line -> sync byte ranges *)
  prots : (int, (int * int * int) list) Hashtbl.t;  (* line -> obj,lo,hi *)
  seen : (string, unit) Hashtbl.t;  (* report dedup by site pair *)
  mutable rev_reports : report list;
}

let create () =
  {
    threads = [||];
    nthreads = 0;
    objs = Hashtbl.create 64;
    obj_clocks = [||];
    nobjs = 0;
    sched_line = Vclock.create ();
    sched_pending = [];
    shadow = Hashtbl.create 4096;
    syncs = Hashtbl.create 256;
    prots = Hashtbl.create 256;
    seen = Hashtbl.create 64;
    rev_reports = [];
  }

let reports t = List.rev t.rev_reports

let grow_array arr n dummy =
  if n <= Array.length arr then arr
  else begin
    let bigger = Array.make (max n (2 * max 4 (Array.length arr))) dummy in
    Array.blit arr 0 bigger 0 (Array.length arr);
    bigger
  end

let dummy_thread = { t_name = ""; t_clock = Vclock.create (); t_locks = [] }

let add_thread t name =
  let tid = t.nthreads in
  t.threads <- grow_array t.threads (tid + 1) dummy_thread;
  let th = { t_name = name; t_clock = Vclock.create (); t_locks = [] } in
  Vclock.incr th.t_clock tid;
  t.threads.(tid) <- th;
  t.nthreads <- tid + 1;
  tid

let thread t tid =
  if tid < 0 || tid >= t.nthreads then None else Some t.threads.(tid)

let intern_obj t name =
  match Hashtbl.find_opt t.objs name with
  | Some id -> id
  | None ->
    let id = t.nobjs in
    t.obj_clocks <- grow_array t.obj_clocks (id + 1) (Vclock.create ());
    t.obj_clocks.(id) <- Vclock.create ();
    t.nobjs <- id + 1;
    Hashtbl.replace t.objs name id;
    id

let acquire t ~tid ~obj =
  match thread t tid with
  | None -> ()
  | Some th ->
    if obj >= 0 && obj < t.nobjs then
      Vclock.join th.t_clock t.obj_clocks.(obj)

let release t ~tid ~obj =
  match thread t tid with
  | None -> ()
  | Some th ->
    if obj >= 0 && obj < t.nobjs then begin
      Vclock.join t.obj_clocks.(obj) th.t_clock;
      Vclock.incr th.t_clock tid
    end

let lock t ~tid ~obj =
  acquire t ~tid ~obj;
  match thread t tid with
  | None -> ()
  | Some th -> th.t_locks <- obj :: th.t_locks

let unlock t ~tid ~obj =
  (match thread t tid with
  | None -> ()
  | Some th ->
    let rec drop_one = function
      | [] -> []
      | o :: rest -> if o = obj then rest else o :: drop_one rest
    in
    th.t_locks <- drop_one th.t_locks);
  release t ~tid ~obj

let sched_release t ~tid ~time =
  match thread t tid with
  | None -> ()
  | Some th ->
    t.sched_pending <- (time, Vclock.copy th.t_clock) :: t.sched_pending;
    Vclock.incr th.t_clock tid

let sched_acquire t ~tid ~time =
  match thread t tid with
  | None -> ()
  | Some th ->
    let ready, future =
      List.partition (fun (u, _) -> u <= time) t.sched_pending
    in
    if ready <> [] then begin
      List.iter (fun (_, c) -> Vclock.join t.sched_line c) ready;
      t.sched_pending <- future
    end;
    Vclock.join th.t_clock t.sched_line

(* --- shadow map --- *)

let line_shift = 6
let line_of addr = addr asr line_shift

(* Subtract the line's registered sync ranges from [lo, hi). *)
let clip_sync t ~line ~lo ~hi =
  match Hashtbl.find_opt t.syncs line with
  | None -> [ (lo, hi) ]
  | Some ranges ->
    List.fold_left
      (fun segs (slo, shi) ->
        List.concat_map
          (fun (l, h) ->
            if shi <= l || slo >= h then [ (l, h) ]
            else
              (if slo > l then [ (l, slo) ] else [])
              @ if shi < h then [ (shi, h) ] else [])
          segs)
      [ (lo, hi) ]
      ranges

let overlaps r ~lo ~hi = r.r_lo < hi && lo < r.r_hi

(* FastTrack epoch test: the recorded access happens-before the current
   thread's position iff the recorder's own component is covered. *)
let ordered_for cur_clock r = r.r_epoch <= Vclock.get cur_clock r.r_tid

let emit t kind ~lo ~hi ~first ~second =
  let key =
    Printf.sprintf "%s|%s|%b|%s|%b"
      (match kind with Race -> "race" | Unlocked -> "unlocked")
      (match first with Some a -> a.a_site ^ "/" ^ a.a_thread | None -> "")
      (match first with Some a -> a.a_write | None -> false)
      (second.a_site ^ "/" ^ second.a_thread)
      second.a_write
  in
  if not (Hashtbl.mem t.seen key) then begin
    Hashtbl.replace t.seen key ();
    t.rev_reports <- { kind; lo; hi; first; second } :: t.rev_reports
  end

let access_of t r ~write =
  let name =
    match thread t r.r_tid with None -> "<?>" | Some th -> th.t_name
  in
  { a_thread = name; a_site = r.r_site; a_time = r.r_time; a_write = write }

let max_recs = 16

let cell_for t line =
  match Hashtbl.find_opt t.shadow line with
  | Some c -> c
  | None ->
    let c = { cwrites = []; creads = [] } in
    Hashtbl.replace t.shadow line c;
    c

let truncate_recs recs =
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | r :: rest -> r :: take (n - 1) rest
  in
  take max_recs recs

let check_protected t th ~tid ~site ~time ~line ~lo ~hi =
  match Hashtbl.find_opt t.prots line with
  | None -> ()
  | Some ranges ->
    List.iter
      (fun (obj, plo, phi) ->
        if plo < hi && lo < phi && not (List.mem obj th.t_locks) then
          emit t Unlocked ~lo:(max lo plo) ~hi:(min hi phi) ~first:None
            ~second:
              {
                a_thread = t.threads.(tid).t_name;
                a_site = site;
                a_time = time;
                a_write = true;
              })
      ranges

let access t ~tid ~site ~time ~write ~lo ~hi =
  if hi > lo then
    match thread t tid with
    | None -> ()
    | Some th ->
      let cur = { r_tid = tid; r_epoch = Vclock.get th.t_clock tid;
                  r_site = site; r_time = time; r_lo = lo; r_hi = hi } in
      let first_line = line_of lo and last_line = line_of (hi - 1) in
      for line = first_line to last_line do
        let llo = max lo (line lsl line_shift)
        and lhi = min hi ((line + 1) lsl line_shift) in
        List.iter
          (fun (slo, shi) ->
            let seg = { cur with r_lo = slo; r_hi = shi } in
            if write then
              check_protected t th ~tid ~site ~time ~line ~lo:slo ~hi:shi;
            let c = cell_for t line in
            (* any overlapping prior write races with either kind *)
            List.iter
              (fun w ->
                if
                  w.r_tid <> tid
                  && overlaps w ~lo:slo ~hi:shi
                  && not (ordered_for th.t_clock w)
                then
                  emit t Race ~lo:(max slo w.r_lo) ~hi:(min shi w.r_hi)
                    ~first:(Some (access_of t w ~write:true))
                    ~second:(access_of t seg ~write))
              c.cwrites;
            if write then begin
              (* a write also races with unordered prior reads *)
              List.iter
                (fun r ->
                  if
                    r.r_tid <> tid
                    && overlaps r ~lo:slo ~hi:shi
                    && not (ordered_for th.t_clock r)
                  then
                    emit t Race ~lo:(max slo r.r_lo) ~hi:(min shi r.r_hi)
                      ~first:(Some (access_of t r ~write:false))
                      ~second:(access_of t seg ~write:true))
                c.creads;
              (* the new write supersedes records it fully covers *)
              let covered r = slo <= r.r_lo && r.r_hi <= shi in
              c.cwrites <-
                truncate_recs (seg :: List.filter (fun w -> not (covered w)) c.cwrites);
              c.creads <- List.filter (fun r -> not (covered r)) c.creads
            end
            else begin
              let stale r =
                r.r_tid = tid && slo <= r.r_lo && r.r_hi <= shi
              in
              c.creads <-
                truncate_recs (seg :: List.filter (fun r -> not (stale r)) c.creads)
            end)
          (clip_sync t ~line ~lo:llo ~hi:lhi)
      done

let range_iter_lines ~lo ~hi fn =
  if hi > lo then
    for line = line_of lo to line_of (hi - 1) do
      fn line (max lo (line lsl line_shift)) (min hi ((line + 1) lsl line_shift))
    done

let sync_range t ~lo ~hi ~on =
  range_iter_lines ~lo ~hi (fun line llo lhi ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt t.syncs line) in
      let without = List.filter (fun (l, h) -> l <> llo || h <> lhi) cur in
      Hashtbl.replace t.syncs line
        (if on then (llo, lhi) :: without else without))

let protect t ~obj ~lo ~hi =
  range_iter_lines ~lo ~hi (fun line llo lhi ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt t.prots line) in
      Hashtbl.replace t.prots line ((obj, llo, lhi) :: cur))

let unprotect t ~lo ~hi =
  range_iter_lines ~lo ~hi (fun line llo lhi ->
      match Hashtbl.find_opt t.prots line with
      | None -> ()
      | Some cur ->
        Hashtbl.replace t.prots line
          (List.filter (fun (_, l, h) -> not (l = llo && h = lhi)) cur))

let hooks t : Engine.sanitizer =
  {
    Engine.san_thread = (fun name -> add_thread t name);
    san_access =
      (fun ~tid ~site ~time ~write ~lo ~hi ->
        access t ~tid ~site ~time ~write ~lo ~hi);
    san_acquire = (fun ~tid ~obj -> acquire t ~tid ~obj);
    san_release = (fun ~tid ~obj -> release t ~tid ~obj);
    san_sched_acquire = (fun ~tid ~time -> sched_acquire t ~tid ~time);
    san_sched_release = (fun ~tid ~time -> sched_release t ~tid ~time);
    san_obj = (fun name -> intern_obj t name);
    san_lock = (fun ~tid ~obj -> lock t ~tid ~obj);
    san_unlock = (fun ~tid ~obj -> unlock t ~tid ~obj);
    san_sync_range = (fun ~lo ~hi ~on -> sync_range t ~lo ~hi ~on);
    san_protect = (fun ~obj ~lo ~hi -> protect t ~obj ~lo ~hi);
    san_unprotect = (fun ~lo ~hi -> unprotect t ~lo ~hi);
  }

let install engine =
  let t = create () in
  Engine.set_sanitizer engine (Some (hooks t));
  t

let sanitized f =
  (* [f] may fan experiments out over domains that inherit the factory,
     so the instance list is mutex-protected. *)
  let lock = Mutex.create () in
  let instances = ref [] in
  Engine.set_sanitizer_factory
    (Some
       (fun () ->
         let t = create () in
         Mutex.lock lock;
         instances := t :: !instances;
         Mutex.unlock lock;
         hooks t));
  let finally () = Engine.set_sanitizer_factory None in
  let result = Fun.protect ~finally f in
  (result, List.concat_map reports (List.rev !instances))
