(** Vector clocks over simulated-thread ids.

    A clock maps thread ids to event counts; clocks grow on demand as
    higher thread ids appear, with absent entries reading as 0.  The
    happens-before partial order is pointwise [<=]; {!join} is the
    pointwise max, i.e. the least upper bound. *)

type t

val create : unit -> t
(** The zero clock (bottom of the order). *)

val copy : t -> t

val get : t -> int -> int
(** [get c tid] — [tid]'s component; 0 when never set. *)

val incr : t -> int -> unit
(** Bump [tid]'s component by one. *)

val join : t -> t -> unit
(** [join dst src] — [dst] becomes the pointwise max of the two. *)

val leq : t -> t -> bool
(** Pointwise [<=]: [leq a b] means every event in [a] is covered by
    [b] — i.e. [a] happens-before-or-equals [b]. *)

val pp : Format.formatter -> t -> unit
