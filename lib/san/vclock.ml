type t = { mutable v : int array }

let create () = { v = [||] }
let copy t = { v = Array.copy t.v }

let get t tid = if tid < Array.length t.v then t.v.(tid) else 0

let grow t n =
  if n > Array.length t.v then begin
    let bigger = Array.make n 0 in
    Array.blit t.v 0 bigger 0 (Array.length t.v);
    t.v <- bigger
  end

let incr t tid =
  if tid < 0 then invalid_arg "Vclock.incr: negative tid";
  grow t (tid + 1);
  t.v.(tid) <- t.v.(tid) + 1

let join dst src =
  grow dst (Array.length src.v);
  Array.iteri
    (fun i x -> if x > dst.v.(i) then dst.v.(i) <- x)
    src.v

let leq a b =
  let ok = ref true in
  Array.iteri (fun i x -> if x > get b i then ok := false) a.v;
  !ok

let pp fmt t =
  Format.fprintf fmt "[%s]"
    (String.concat ";" (Array.to_list (Array.map string_of_int t.v)))
