(* Chrome trace-event JSON ("JSON Array Format" with a traceEvents
   wrapper), loadable in ui.perfetto.dev and chrome://tracing.

   Mapping: one Perfetto process per simulated engine (pid = Engine.id),
   one thread track per simulated thread (tid = trace id + 1; tid 0 is
   the engine's global events/counters track).  Simulated cycles become
   microseconds at the configured clock rate, so the timeline reads in
   wall units of the simulated machine. *)

let esc b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 -> Printf.bprintf b "\\u%04x" (Char.code c)
      | c -> Buffer.add_char b c)
    s

let add_ts b ~ghz cycles =
  (* microseconds with sub-nanosecond resolution at realistic clocks *)
  Printf.bprintf b "%.4f" (float_of_int cycles /. (ghz *. 1000.0))

let to_json ?(ghz = 2.5) traces =
  let b = Buffer.create 65536 in
  Buffer.add_string b "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  let first = ref true in
  let sep () = if !first then first := false else Buffer.add_char b ',' in
  let meta ~pid ~tid ~kind ~value =
    sep ();
    Printf.bprintf b "{\"ph\":\"M\",\"name\":\"%s\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":\""
      kind pid tid;
    esc b value;
    Buffer.add_string b "\"}}"
  in
  List.iter
    (fun tr ->
      let pid = Trace.engine_id tr in
      meta ~pid ~tid:0 ~kind:"process_name"
        ~value:(Printf.sprintf "engine-%d" pid);
      meta ~pid ~tid:0 ~kind:"thread_name" ~value:"events";
      let tid = ref 0 in
      Trace.iter_threads tr (fun name ->
          incr tid;
          meta ~pid ~tid:!tid ~kind:"thread_name" ~value:name);
      Trace.iter_slices tr (fun (s : Trace.slice) ->
          sep ();
          Printf.bprintf b
            "{\"ph\":\"X\",\"cat\":\"sim\",\"pid\":%d,\"tid\":%d,\"ts\":" pid
            (s.Trace.s_tid + 1);
          add_ts b ~ghz s.Trace.s_t0;
          Buffer.add_string b ",\"dur\":";
          add_ts b ~ghz (s.Trace.s_t1 - s.Trace.s_t0);
          Buffer.add_string b ",\"name\":\"";
          esc b s.Trace.s_name;
          Buffer.add_string b "\"}");
      Trace.iter_instants tr (fun (i : Trace.instant) ->
          sep ();
          Printf.bprintf b
            "{\"ph\":\"i\",\"cat\":\"sim\",\"s\":\"t\",\"pid\":%d,\"tid\":%d,\"ts\":"
            pid
            (i.Trace.i_tid + 1);
          add_ts b ~ghz i.Trace.i_time;
          Buffer.add_string b ",\"name\":\"";
          esc b i.Trace.i_name;
          Buffer.add_string b "\",\"args\":{\"info\":\"";
          esc b i.Trace.i_arg;
          Buffer.add_string b "\"}}");
      Trace.iter_counters tr (fun (c : Trace.counter) ->
          sep ();
          Printf.bprintf b "{\"ph\":\"C\",\"pid\":%d,\"tid\":0,\"ts\":" pid;
          add_ts b ~ghz c.Trace.c_time;
          Buffer.add_string b ",\"name\":\"";
          esc b c.Trace.c_track;
          Buffer.add_string b "\",\"args\":{\"value\":";
          Buffer.add_string b (Metrics.value_to_string c.Trace.c_value);
          Buffer.add_string b "}}"))
    traces;
  Buffer.add_string b "]}";
  Buffer.contents b

let write_file ?ghz path traces =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_json ?ghz traces))
