type kind = Counter | Gauge

type entry = {
  scope : string;
  subsystem : string;
  name : string;
  kind : kind;
  engine_id : int;
  read : unit -> float;
}

(* One registry may collect from several domains at once (the parallel
   experiment runner builds systems concurrently), so the entry list is
   mutex-protected.  The registration scope, by contrast, is domain-local
   *per registry*: each worker domain labels the system it is currently
   building without clobbering its siblings' labels, and two registries
   never share a scope. *)
type t = {
  mutable rev_entries : entry list;
  lock : Mutex.t;
  scope_key : string Domain.DLS.key;
}

let create () =
  {
    rev_entries = [];
    lock = Mutex.create ();
    scope_key = Domain.DLS.new_key (fun () -> "");
  }

let set_scope t scope = Domain.DLS.set t.scope_key scope
let scope t = Domain.DLS.get t.scope_key

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let register ?(kind = Gauge) ?(engine_id = -1) t ~subsystem ~name read =
  let scope = Domain.DLS.get t.scope_key in
  locked t (fun () ->
      t.rev_entries <-
        { scope; subsystem; name; kind; engine_id; read } :: t.rev_entries)

let entries t = locked t (fun () -> List.rev t.rev_entries)
let size t = locked t (fun () -> List.length t.rev_entries)

(* Domain-local registry consulted by subsystem constructors
   (Backend.create, Mutps.create, Autotuner.create), following the
   Engine.set_sanitizer_factory pattern: installing a registry before a
   run lets every system built inside register its sources without
   threading a parameter through the experiment code.  New domains
   inherit the parent's registry at spawn, so a registry installed before
   a parallel fan-out collects from every worker domain. *)
let current_reg : t option Domain.DLS.key =
  Domain.DLS.new_key ~split_from_parent:Fun.id (fun () -> None)

let set_current r = Domain.DLS.set current_reg r
let current () = Domain.DLS.get current_reg

let track_name e =
  let base = e.subsystem ^ "." ^ e.name in
  if e.scope = "" then base else e.scope ^ "/" ^ base

let kind_name = function Counter -> "counter" | Gauge -> "gauge"

(* Render a value compactly and always as valid CSV/JSON: integral floats
   without an exponent, non-finite values as 0. *)
let value_to_string v =
  if not (Float.is_finite v) then "0"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6g" v

let to_csv t =
  let b = Buffer.create 512 in
  Buffer.add_string b "scope,subsystem,name,kind,value\n";
  List.iter
    (fun (e : entry) ->
      Printf.bprintf b "%s,%s,%s,%s,%s\n" e.scope e.subsystem e.name
        (kind_name e.kind)
        (value_to_string (e.read ())))
    (entries t);
  Buffer.contents b

let json_escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 ->
        Printf.bprintf b "\\u%04x" (Char.code c)
      | c -> Buffer.add_char b c)
    s

let to_json t =
  let b = Buffer.create 512 in
  Buffer.add_string b "[";
  List.iteri
    (fun i (e : entry) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "{\"scope\":\"";
      json_escape b e.scope;
      Buffer.add_string b "\",\"subsystem\":\"";
      json_escape b e.subsystem;
      Buffer.add_string b "\",\"name\":\"";
      json_escape b e.name;
      Buffer.add_string b "\",\"kind\":\"";
      Buffer.add_string b (kind_name e.kind);
      Buffer.add_string b "\",\"value\":";
      Buffer.add_string b (value_to_string (e.read ()));
      Buffer.add_char b '}')
    (entries t);
  Buffer.add_string b "]";
  Buffer.contents b

let write_file t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc
        (if Filename.check_suffix path ".json" then to_json t else to_csv t))
