(** Per-site cycle profiler output: collapsed stacks over the [Env]
    site-tag paths, answering "which code path costs what" per thread.

    Feed the text to [flamegraph.pl] or speedscope, or sort by the trailing
    count directly. *)

val folded : Trace.t list -> (string * int) list
(** Merged across collectors, sorted by stack key (deterministic). *)

val to_text : Trace.t list -> string
(** One ["thread;site;... cycles"] line per stack. *)

val write_file : string -> Trace.t list -> unit

val total : Trace.t list -> int
(** Total charged cycles attributed across all collectors. *)
