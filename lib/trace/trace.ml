module Engine = Mutps_sim.Engine

type slice = { s_tid : int; s_t0 : int; s_t1 : int; s_name : string }
type instant = { i_tid : int; i_time : int; i_name : string; i_arg : string }
type counter = { c_time : int; c_track : string; c_value : float }

(* Growable vector: traces hold millions of events, so list accumulation
   (and its final reversal) is too heavy. *)
module Vec = struct
  type 'a t = { mutable a : 'a array; mutable n : int; dummy : 'a }

  let create dummy = { a = Array.make 64 dummy; n = 0; dummy }

  let push v x =
    if v.n = Array.length v.a then begin
      let bigger = Array.make (2 * v.n) v.dummy in
      Array.blit v.a 0 bigger 0 v.n;
      v.a <- bigger
    end;
    v.a.(v.n) <- x;
    v.n <- v.n + 1

  let length v = v.n
  let get v i = v.a.(i)

  let iter f v =
    for i = 0 to v.n - 1 do
      f v.a.(i)
    done
end

type t = {
  engine : Engine.t;
  keep_events : bool;
  sample_every : int;
  max_events : int;
  mutable dropped : int;
  mutable next_sample : int;
  threads : string Vec.t;
  slices : slice Vec.t;
  instants : instant Vec.t;
  counters : counter Vec.t;
  profile : (string, int ref) Hashtbl.t;
  mutable profile_total : int;
}

let make ?(keep_events = true) ?(sample_every = 100_000)
    ?(max_events = 2_000_000) engine =
  if sample_every <= 0 then invalid_arg "Trace.make: sample_every";
  if max_events <= 0 then invalid_arg "Trace.make: max_events";
  {
    engine;
    keep_events;
    sample_every;
    max_events;
    dropped = 0;
    next_sample = sample_every;
    threads = Vec.create "";
    slices = Vec.create { s_tid = 0; s_t0 = 0; s_t1 = 0; s_name = "" };
    instants = Vec.create { i_tid = 0; i_time = 0; i_name = ""; i_arg = "" };
    counters = Vec.create { c_time = 0; c_track = ""; c_value = 0.0 };
    profile = Hashtbl.create 64;
    profile_total = 0;
  }

let engine_id t = Engine.id t.engine
let thread_count t = Vec.length t.threads
let thread_name t tid = if tid < 0 then "events" else Vec.get t.threads tid
let slice_count t = Vec.length t.slices
let instant_count t = Vec.length t.instants
let counter_count t = Vec.length t.counters
let iter_slices t f = Vec.iter f t.slices
let iter_instants t f = Vec.iter f t.instants
let iter_counters t f = Vec.iter f t.counters
let iter_threads t f = Vec.iter f t.threads
let profile_total t = t.profile_total
let dropped t = t.dropped

(* Bound memory and file size on long runs: a fine-grained trace of a
   multi-second simulation is too large to load anyway, so keep the first
   [max_events] and count the rest.  Capping only affects what the
   collector retains, never the simulation. *)
let room t =
  if
    Vec.length t.slices + Vec.length t.instants + Vec.length t.counters
    < t.max_events
  then true
  else begin
    t.dropped <- t.dropped + 1;
    false
  end

(* Per-site aggregated cycles, sorted by stack key so output (and the
   digests tests take of it) is deterministic. *)
let profile_entries t =
  Hashtbl.to_seq t.profile
  |> Seq.map (fun (k, r) -> (k, !r))
  |> List.of_seq
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* Pull one sample of every registered metric of this engine into the
   counter tracks.  Piggybacks on event emission instead of scheduling
   engine events, so an attached tracer leaves the event queue — and
   therefore the simulation schedule — completely untouched. *)
let maybe_sample t =
  let now = Engine.now t.engine in
  if now >= t.next_sample then begin
    t.next_sample <- now + t.sample_every;
    match Metrics.current () with
    | None -> ()
    | Some reg ->
      let eid = engine_id t in
      List.iter
        (fun (e : Metrics.entry) ->
          if (e.Metrics.engine_id = eid || e.Metrics.engine_id = -1)
             && room t
          then
            Vec.push t.counters
              {
                c_time = now;
                c_track = Metrics.track_name e;
                c_value = e.Metrics.read ();
              })
        (Metrics.entries reg)
  end

let note_cycles t ~tid ~site ~cycles =
  t.profile_total <- t.profile_total + cycles;
  let root = thread_name t tid in
  let key = if site = "" then root else root ^ ";" ^ site in
  (match Hashtbl.find_opt t.profile key with
  | Some r -> r := !r + cycles
  | None -> Hashtbl.add t.profile key (ref cycles));
  if t.keep_events then maybe_sample t

let hooks t : Engine.tracer =
  {
    Engine.tr_thread =
      (fun name ->
        let id = Vec.length t.threads in
        Vec.push t.threads name;
        id);
    tr_slice =
      (fun ~tid ~t0 ~t1 ~name ->
        if t.keep_events then begin
          maybe_sample t;
          if room t then
            Vec.push t.slices
              { s_tid = tid; s_t0 = t0; s_t1 = t1; s_name = name }
        end);
    tr_instant =
      (fun ~tid ~time ~name ~arg ->
        if t.keep_events && room t then
          Vec.push t.instants
            { i_tid = tid; i_time = time; i_name = name; i_arg = arg });
    tr_counter =
      (fun ~time ~track ~value ->
        if t.keep_events && room t then
          Vec.push t.counters { c_time = time; c_track = track; c_value = value });
    tr_cycles = (fun ~tid ~site ~cycles -> note_cycles t ~tid ~site ~cycles);
  }

let install ?keep_events ?sample_every ?max_events engine =
  let t = make ?keep_events ?sample_every ?max_events engine in
  Engine.set_tracer engine (Some (hooks t));
  t

let traced ?keep_events ?sample_every ?max_events f =
  (* [f] may fan experiments out over domains that inherit the factory, so
     the instance list is mutex-protected.  Collectors are returned sorted
     by engine id: engine creation order across domains is scheduling
     dependent, and a stable order keeps exported artifacts diffable. *)
  let lock = Mutex.create () in
  let instances = ref [] in
  Engine.set_tracer_factory
    (Some
       (fun engine ->
         let t = make ?keep_events ?sample_every ?max_events engine in
         Mutex.lock lock;
         instances := t :: !instances;
         Mutex.unlock lock;
         hooks t));
  let finally () = Engine.set_tracer_factory None in
  let result = Fun.protect ~finally f in
  ( result,
    List.sort (fun a b -> compare (engine_id a) (engine_id b)) !instances )
