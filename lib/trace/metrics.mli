(** Metrics registry: named per-subsystem counters and gauges, pulled at
    dump time and sampled into counter tracks by the trace collector.

    Sources are closures over each subsystem's existing accounting
    ([Hierarchy.core_stats], [Link] byte counts, [Crmr] occupancy, μTPS
    CR/MR accounting, [Autotuner] passes), registered by the subsystem's
    constructor when a process-global registry is installed — the same
    reach-without-plumbing pattern as [Engine.set_sanitizer_factory].
    Registration and reads never charge simulated cycles and never mutate
    simulation state, so a registry cannot perturb a run. *)

type kind =
  | Counter  (** monotonically non-decreasing (ops, hits, bytes) *)
  | Gauge  (** instantaneous level (occupancy, sizes, splits) *)

type entry = {
  scope : string;  (** Experiment/system label active at registration. *)
  subsystem : string;
  name : string;
  kind : kind;
  engine_id : int;
      (** {!Mutps_sim.Engine.id} of the owning engine; [-1] = any.  The
          trace collector samples only entries of its own engine. *)
  read : unit -> float;
}

type t

val create : unit -> t

val set_scope : t -> string -> unit
(** Label subsequent registrations from this domain (e.g. with the system
    under test); the harness sets this per built system.  The scope is
    domain-local so parallel experiment workers label independently. *)

val scope : t -> string

val register :
  ?kind:kind -> ?engine_id:int -> t -> subsystem:string -> name:string ->
  (unit -> float) -> unit

val entries : t -> entry list
(** In registration order. *)

val size : t -> int

val track_name : entry -> string
(** Counter-track label: ["scope/subsystem.name"] (or without the scope
    prefix when unset). *)

val set_current : t option -> unit
val current : unit -> t option
(** Domain-local registry consulted by subsystem constructors (new
    domains inherit the parent's registry at spawn; a registry may be
    shared by many domains, registration is thread-safe); see the CLI's
    [--metrics] wiring. *)

val to_csv : t -> string
(** One row per entry, values read at call time:
    [scope,subsystem,name,kind,value]. *)

val to_json : t -> string

val write_file : t -> string -> unit
(** CSV, or JSON when [path] ends in [.json]. *)

val value_to_string : float -> string
(** Compact, always-parseable rendering (non-finite values become 0). *)
