(** Chrome/Perfetto trace-event JSON exporter.

    Renders collectors as one Perfetto process per engine with one slice
    track per simulated thread plus a tid-0 track carrying instants and
    every counter track.  Open the file in [ui.perfetto.dev] (or
    [chrome://tracing]); see the README's observability quickstart. *)

val to_json : ?ghz:float -> Trace.t list -> string
(** [ghz] (default 2.5, the simulated machine's clock) converts cycle
    timestamps to trace microseconds. *)

val write_file : ?ghz:float -> string -> Trace.t list -> unit
