(** Simulated-time trace collector: the sink behind
    {!Mutps_sim.Engine.tracer} (DESIGN.md §7, "Observability").

    One collector per engine accumulates three event families, all
    stamped with simulated time:

    - {e slices} — completed [Env.tagged] regions on per-thread tracks
      (ring operations, index probes, seqlock reads/writes, idle polls);
      nested regions nest on the track, giving a flame view over time;
    - {e instants} — point events (role switches, seqlock bounces,
      CR-MR backpressure, auto-tuner decisions);
    - {e counters} — samples of named counter tracks, emitted directly by
      instrumented layers (ring occupancy) and pulled from the
      {!Metrics} registry every [sample_every] cycles.

    In parallel it aggregates every charged cycle by the emitting
    thread's [Env] site stack — the per-site profile {!Profile} renders
    as collapsed stacks.

    Determinism: the collector never schedules engine events, never
    charges cycles and never mutates simulation state — metric sampling
    piggybacks on event emission — so a traced run is bit-identical to an
    untraced one (test/trace regression).  With no tracer attached every
    hook site is a single branch and allocates nothing. *)

type slice = { s_tid : int; s_t0 : int; s_t1 : int; s_name : string }
type instant = { i_tid : int; i_time : int; i_name : string; i_arg : string }
type counter = { c_time : int; c_track : string; c_value : float }

type t

val make :
  ?keep_events:bool ->
  ?sample_every:int ->
  ?max_events:int ->
  Mutps_sim.Engine.t ->
  t
(** [keep_events] (default [true]): store slices/instants/counters; pass
    [false] for a profile-only collector that retains just the per-site
    cycle table.  [sample_every] (default 100k cycles, 40 μs at 2.5 GHz)
    paces {!Metrics} sampling into counter tracks.  [max_events]
    (default 2M) bounds retained events: the first [max_events] are kept,
    the rest only counted ({!dropped}) — the cycle profile is never
    truncated. *)

val hooks : t -> Mutps_sim.Engine.tracer

val install :
  ?keep_events:bool ->
  ?sample_every:int ->
  ?max_events:int ->
  Mutps_sim.Engine.t ->
  t
(** Attach a fresh collector to one engine. *)

val traced :
  ?keep_events:bool ->
  ?sample_every:int ->
  ?max_events:int ->
  (unit -> 'a) ->
  'a * t list
(** [traced f] runs [f] with a global engine factory installed so every
    engine created inside [f] gets its own collector, and returns [f ()]'s
    result plus the collectors in creation order.  Not reentrant. *)

(** {1 Reading a collector} *)

val engine_id : t -> int
val thread_count : t -> int

val thread_name : t -> int -> string
(** Name registered at [tr_thread]; [-1] maps to ["events"]. *)

val slice_count : t -> int
val instant_count : t -> int
val counter_count : t -> int
val iter_slices : t -> (slice -> unit) -> unit
val iter_instants : t -> (instant -> unit) -> unit
val iter_counters : t -> (counter -> unit) -> unit
val iter_threads : t -> (string -> unit) -> unit

val dropped : t -> int
(** Events discarded after [max_events] was reached. *)

val profile_total : t -> int
(** Total charged cycles attributed through [Env] while attached. *)

val profile_entries : t -> (string * int) list
(** Aggregated cycles per ["thread;site;..."] stack, sorted by stack. *)
