(* Collapsed-stack cycle profile over the Env site tags: one line per
   "thread;site;..." stack with its aggregated charged cycles — the input
   format of flamegraph.pl and speedscope, and grep-able on its own. *)

let folded traces =
  let merged = Hashtbl.create 64 in
  List.iter
    (fun tr ->
      List.iter
        (fun (key, cycles) ->
          match Hashtbl.find_opt merged key with
          | Some r -> r := !r + cycles
          | None -> Hashtbl.add merged key (ref cycles))
        (Trace.profile_entries tr))
    traces;
  Hashtbl.to_seq merged
  |> Seq.map (fun (k, r) -> (k, !r))
  |> List.of_seq
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let to_text traces =
  let b = Buffer.create 4096 in
  List.iter
    (fun (key, cycles) -> Printf.bprintf b "%s %d\n" key cycles)
    (folded traces);
  Buffer.contents b

let write_file path traces =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_text traces))

let total traces =
  List.fold_left (fun acc tr -> acc + Trace.profile_total tr) 0 traces
