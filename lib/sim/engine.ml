(* Binary min-heap of (time, seq) keyed events.  The [seq] component gives
   FIFO order among events scheduled for the same cycle, which is what makes
   simulations deterministic and insensitive to heap internals.

   The heap is a structure of arrays — unboxed [int] arrays for the keys, a
   parallel array for the callbacks — rather than an array of event records:
   scheduling an event writes three array slots and allocates nothing, and
   the sift loops compare packed ints instead of chasing a record pointer
   per comparison.  Together with the tail-recursive (int-argument) sift
   helpers below, this keeps the whole push/pop/dispatch path off the OCaml
   heap; the [mutps.alloc] certifier (lib/lint/alloc.ml) checks that it
   stays that way. *)

(* Hooks for an optional happens-before sanitizer (lib/san).  The engine
   only carries the closures; their semantics live with the implementor.
   A record of closures avoids a dependency cycle: lib/san depends on
   lib/sim, while instrumented layers (mem, store, queue, ...) reach the
   sanitizer through their engine handle. *)
type sanitizer = {
  san_thread : string -> int;
      (* register a simulated thread, returns its id *)
  san_access :
    tid:int -> site:string -> time:int -> write:bool -> lo:int -> hi:int -> unit;
      (* a charged data access to simulated bytes [lo, hi) *)
  san_acquire : tid:int -> obj:int -> unit;
  san_release : tid:int -> obj:int -> unit;
      (* untimed (real-dispatch-order) edges through a sync object *)
  san_sched_acquire : tid:int -> time:int -> unit;
  san_sched_release : tid:int -> time:int -> unit;
      (* simulated-time-indexed edges at commit boundaries *)
  san_obj : string -> int;  (* intern a sync object by name *)
  san_lock : tid:int -> obj:int -> unit;
  san_unlock : tid:int -> obj:int -> unit;
  san_sync_range : lo:int -> hi:int -> on:bool -> unit;
      (* mark bytes as synchronization words, exempt from race pairing *)
  san_protect : obj:int -> lo:int -> hi:int -> unit;
  san_unprotect : lo:int -> hi:int -> unit;
      (* lockset: writes to protected bytes must hold [obj] *)
}

(* Hooks for an optional observability tracer (lib/trace), carried the
   same way as the sanitizer: a record of closures, so the engine stays
   ignorant of the collector's semantics and lib/trace incurs no
   dependency cycle.  All hooks are invoked only when a tracer is
   attached; [None] (the default) costs one branch per site and never
   allocates. *)
type tracer = {
  tr_thread : string -> int;
      (* register a simulated thread's track, returns its trace id *)
  tr_slice : tid:int -> t0:int -> t1:int -> name:string -> unit;
      (* a completed span of simulated time on a thread track *)
  tr_instant : tid:int -> time:int -> name:string -> arg:string -> unit;
      (* a point event; tid = -1 targets the global events track *)
  tr_counter : time:int -> track:string -> value:float -> unit;
      (* one sample of a named counter track *)
  tr_cycles : tid:int -> site:string -> cycles:int -> unit;
      (* charged cycles attributed to an Env site path (profiler) *)
}

type t = {
  id : int;
  mutable clock : int;
  (* heap slot [i] holds event [i]'s key in [times]/[seqs] and its
     callback in [fns]; slots at or past [size] are free *)
  mutable times : int array;
  mutable seqs : int array;
  mutable fns : (unit -> unit) array;
  mutable size : int;
  mutable next_seq : int;
  mutable dispatched : int;
  mutable stopped : bool;
  mutable debug_checks : bool;
  mutable parked : int;
  mutable sanitizer : sanitizer option;
  mutable tracer : tracer option;
}

(* top-level (statically allocated) placeholder for free callback slots *)
let no_event () = ()

(* Domain-local factory consulted by [create], so a sanitizer can attach
   to engines constructed deep inside experiment code without threading a
   parameter through every layer.  See San.sanitized.  Domain-local (with
   inheritance at spawn) rather than a plain ref: the parallel experiment
   runner builds engines concurrently in several domains, and a factory
   installed before the fan-out must reach all of them without the
   domains racing on a shared cell. *)
let sanitizer_factory : (unit -> sanitizer) option Domain.DLS.key =
  Domain.DLS.new_key ~split_from_parent:Fun.id (fun () -> None)

let set_sanitizer_factory f = Domain.DLS.set sanitizer_factory f
let current_sanitizer_factory () = Domain.DLS.get sanitizer_factory

(* The tracer factory receives the engine it is attaching to, so a
   collector can read the engine clock (e.g. to pace counter sampling)
   without any further plumbing. *)
let tracer_factory : (t -> tracer) option Domain.DLS.key =
  Domain.DLS.new_key ~split_from_parent:Fun.id (fun () -> None)

let set_tracer_factory f = Domain.DLS.set tracer_factory f
let current_tracer_factory () = Domain.DLS.get tracer_factory

(* Process-wide serial so collectors and metric registries can associate
   state with a particular engine without holding the engine itself.
   Atomic: engines are created from several domains at once.  Ids stay
   unique but their assignment order across domains is not deterministic;
   nothing simulated may depend on the id (the lint's R1 closes the usual
   loopholes, and ids only ever label observability output). *)
let next_id = Atomic.make 0

let create () =
  let id = Atomic.fetch_and_add next_id 1 in
  let t =
    {
      id;
      clock = 0;
      times = Array.make 256 0;
      seqs = Array.make 256 0;
      fns = Array.make 256 no_event;
      size = 0;
      next_seq = 0;
      dispatched = 0;
      stopped = false;
      debug_checks = false;
      parked = 0;
      sanitizer =
        (match Domain.DLS.get sanitizer_factory with
        | None -> None
        | Some f -> Some (f ()));
      tracer = None;
    }
  in
  (match Domain.DLS.get tracer_factory with
  | None -> ()
  | Some f -> t.tracer <- Some (f t));
  t

let id t = t.id
let set_sanitizer t s = t.sanitizer <- s
let sanitizer t = t.sanitizer
let set_tracer t tr = t.tracer <- tr
let tracer t = t.tracer

let set_debug_checks t b = t.debug_checks <- b
let debug_checks t = t.debug_checks
let parked t = t.parked
let note_park t = t.parked <- t.parked + 1

let note_resume t =
  t.parked <- t.parked - 1;
  if t.debug_checks && t.parked < 0 then
    invalid_arg "Engine: more resumes than parked threads"

let now t = t.clock
let pending t = t.size
let dispatched t = t.dispatched

(* Key order between heap slots [i] and [j]: earlier time wins, seq breaks
   ties.  All indices handed to the helpers below are < size <= length of
   every heap array (the binary-heap shape invariant), so the accesses are
   bounds-check free. *)
(* Tail-recursive hole-based sifts: the moving element's key rides in
   (registerable) parameters while the hole walks the tree, so each level
   costs one key compare plus one triple move instead of a three-array
   swap.  Dispatch order is unaffected by internal layout — [pop] always
   returns the (time, seq)-minimum and seqs are unique, so the dispatch
   sequence is exactly sorted order for any correct heap.  The [int]
   ascriptions keep every comparison monomorphic (an unconstrained
   parameter generalizes and [<] degrades to a C call). *)
let rec sift_up times seqs fns i (time : int) (seq : int) fn =
  let parent = (i - 1) / 2 in
  if
    i > 0
    && (let pt : int = Array.unsafe_get times parent in
        time < pt
        || (time = pt && seq < (Array.unsafe_get seqs parent : int)))
  then begin
    Array.unsafe_set times i (Array.unsafe_get times parent);
    Array.unsafe_set seqs i (Array.unsafe_get seqs parent);
    Array.unsafe_set fns i (Array.unsafe_get fns parent);
    sift_up times seqs fns parent time seq fn
  end
  else begin
    Array.unsafe_set times i time;
    Array.unsafe_set seqs i seq;
    Array.unsafe_set fns i fn
  end

let rec sift_down times seqs fns size i (time : int) (seq : int) fn =
  let l = (2 * i) + 1 in
  if l >= size then begin
    Array.unsafe_set times i time;
    Array.unsafe_set seqs i seq;
    Array.unsafe_set fns i fn
  end
  else begin
    let r = l + 1 in
    let c =
      if r < size then begin
        let lt : int = Array.unsafe_get times l
        and rt : int = Array.unsafe_get times r in
        if
          rt < lt
          || (rt = lt
             && (Array.unsafe_get seqs r : int) < Array.unsafe_get seqs l)
        then r
        else l
      end
      else l
    in
    let ct : int = Array.unsafe_get times c in
    if ct < time || (ct = time && (Array.unsafe_get seqs c : int) < seq) then begin
      Array.unsafe_set times i ct;
      Array.unsafe_set seqs i (Array.unsafe_get seqs c);
      Array.unsafe_set fns i (Array.unsafe_get fns c);
      sift_down times seqs fns size c time seq fn
    end
    else begin
      Array.unsafe_set times i time;
      Array.unsafe_set seqs i seq;
      Array.unsafe_set fns i fn
    end
  end

let[@hot] push t ~time ~seq fn =
  (if t.size = Array.length t.times then begin
     let cap = 2 * t.size in
     let times = Array.make cap 0 in
     let seqs = Array.make cap 0 in
     let fns = Array.make cap no_event in
     Array.blit t.times 0 times 0 t.size;
     Array.blit t.seqs 0 seqs 0 t.size;
     Array.blit t.fns 0 fns 0 t.size;
     t.times <- times;
     t.seqs <- seqs;
     t.fns <- fns
   end [@alloc.allow "scheduler heap growth: amortized doubling, cold"]);
  let i = t.size in
  t.size <- i + 1;
  (* i < length after the growth check above *)
  sift_up t.times t.seqs t.fns i time seq fn

(* Remove and return the earliest callback.  The caller reads the event
   time from [times.(0)] before popping (see [run]). *)
let[@hot] pop t =
  assert (t.size > 0);
  let fns = t.fns in
  let top = Array.unsafe_get fns 0 in
  let n = t.size - 1 in
  t.size <- n;
  if n > 0 then begin
    let time : int = Array.unsafe_get t.times n in
    let seq : int = Array.unsafe_get t.seqs n in
    let fn = Array.unsafe_get fns n in
    (* free the slot so the engine never pins a dead closure *)
    Array.unsafe_set fns n no_event;
    sift_down t.times t.seqs fns n 0 time seq fn
  end
  else Array.unsafe_set fns 0 no_event;
  top

let[@hot] schedule t ~at fn =
  if at < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule: at=%d is before now=%d" at t.clock);
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  push t ~time:at ~seq fn

let[@hot] schedule_after t ~delay fn =
  if delay < 0 then invalid_arg "Engine.schedule_after: negative delay";
  schedule t ~at:(t.clock + delay) fn

let stop t = t.stopped <- true

let[@hot] run t ~until =
  t.stopped <- false;
  while
    (not t.stopped) && t.size > 0 && Array.unsafe_get t.times 0 <= until
  do
    t.clock <- Array.unsafe_get t.times 0;
    t.dispatched <- t.dispatched + 1;
    (pop t) ()
  done;
  if (not t.stopped) && t.clock < until then t.clock <- until

let[@hot] run_all t =
  t.stopped <- false;
  while (not t.stopped) && t.size > 0 do
    t.clock <- Array.unsafe_get t.times 0;
    t.dispatched <- t.dispatched + 1;
    (pop t) ()
  done
