(* Calendar-queue scheduler: a flat near-future wheel plus an overflow
   min-heap for far-future events.

   Events are totally ordered by (time, seq), where [seq] is a global
   monotone counter giving FIFO order among events scheduled for the same
   cycle — this is what makes simulations deterministic and insensitive
   to queue internals.  The wheel covers the window [base, base + W) at
   one cycle per slot (W a power of two), so a time in the window maps to
   the unique slot [time land (W - 1)] and a slot holds events of exactly
   one time.  Within a bucket, plain FIFO order *is* seq order: direct
   pushes arrive with globally increasing seqs, and events migrating out
   of the overflow heap arrive in (time, seq) heap order at the moment
   the window first reaches their time — before any later direct push
   could target the same slot — so buckets store bare callbacks with a
   head cursor and never compare keys.  Three invariants carry the
   correctness argument (checked by the differential oracle and the
   experiment-digest tests in test/sim):

     1. base <= clock, and base advances only when a dispatch (or the
        window jump preceding it) commits to a time — never in a peek —
        so a push can never alias a slot below the window.
     2. Every heap event's time is >= base + W: pushes inside the
        horizon go to the wheel, and each base advance migrates the heap
        events the new window has reached.  Hence whenever the wheel is
        nonempty it holds the global minimum.
     3. All pending times are >= clock >= base (schedule rejects the
        past), so the window never needs to look backwards.

   Push and pop are O(1) amortized: a push writes one bucket slot and two
   occupancy-bitmap words; a pop finds the next occupied slot through a
   two-level bitmap (32-bit words plus one summary level) in a handful of
   word scans.  Everything stays off the OCaml heap on the steady state —
   bucket and heap growth is the one amortized, cold allocation site —
   and the [mutps.alloc] certifier (lib/lint/alloc.ml) checks it stays
   that way. *)

(* Hooks for an optional happens-before sanitizer (lib/san).  The engine
   only carries the closures; their semantics live with the implementor.
   A record of closures avoids a dependency cycle: lib/san depends on
   lib/sim, while instrumented layers (mem, store, queue, ...) reach the
   sanitizer through their engine handle. *)
type sanitizer = {
  san_thread : string -> int;
      (* register a simulated thread, returns its id *)
  san_access :
    tid:int -> site:string -> time:int -> write:bool -> lo:int -> hi:int -> unit;
      (* a charged data access to simulated bytes [lo, hi) *)
  san_acquire : tid:int -> obj:int -> unit;
  san_release : tid:int -> obj:int -> unit;
      (* untimed (real-dispatch-order) edges through a sync object *)
  san_sched_acquire : tid:int -> time:int -> unit;
  san_sched_release : tid:int -> time:int -> unit;
      (* simulated-time-indexed edges at commit boundaries *)
  san_obj : string -> int;  (* intern a sync object by name *)
  san_lock : tid:int -> obj:int -> unit;
  san_unlock : tid:int -> obj:int -> unit;
  san_sync_range : lo:int -> hi:int -> on:bool -> unit;
      (* mark bytes as synchronization words, exempt from race pairing *)
  san_protect : obj:int -> lo:int -> hi:int -> unit;
  san_unprotect : lo:int -> hi:int -> unit;
      (* lockset: writes to protected bytes must hold [obj] *)
}

(* Hooks for an optional observability tracer (lib/trace), carried the
   same way as the sanitizer: a record of closures, so the engine stays
   ignorant of the collector's semantics and lib/trace incurs no
   dependency cycle.  All hooks are invoked only when a tracer is
   attached; [None] (the default) costs one branch per site and never
   allocates. *)
type tracer = {
  tr_thread : string -> int;
      (* register a simulated thread's track, returns its trace id *)
  tr_slice : tid:int -> t0:int -> t1:int -> name:string -> unit;
      (* a completed span of simulated time on a thread track *)
  tr_instant : tid:int -> time:int -> name:string -> arg:string -> unit;
      (* a point event; tid = -1 targets the global events track *)
  tr_counter : time:int -> track:string -> value:float -> unit;
      (* one sample of a named counter track *)
  tr_cycles : tid:int -> site:string -> cycles:int -> unit;
      (* charged cycles attributed to an Env site path (profiler) *)
}

(* Wheel geometry: 8192 one-cycle slots comfortably cover the common
   delays of the cost model (DRAM ~200, a link leg ~2500, ring flush
   ~4000); rarer far-future timers (hot-set refresh at 50M cycles) take
   the overflow heap.  Occupancy uses 32-bit bitmap words plus one
   summary level: 256 slot words, 8 summary words. *)
let wheel_bits = 13
let wheel_size = 1 lsl wheel_bits
let wheel_mask = wheel_size - 1
let summary_words = wheel_size lsr 10 (* (W/32)/32 *)

type t = {
  id : int;
  mutable clock : int;
  mutable base : int;  (* wheel window start; base <= clock *)
  (* Wheel events live in one pooled structure of arrays: [p_fns.(i)] is
     event [i]'s callback and [p_next.(i)] threads it into its slot's
     FIFO (or into the free list once dispatched).  Slot [s]'s pending
     events run from [b_head.(s)] to [b_tail.(s)] (-1 = empty).  Pooling
     keeps the steady state allocation-free: dispatch recycles indices
     through [free_head], and only pool doubling allocates. *)
  mutable p_fns : (unit -> unit) array;
  mutable p_next : int array;
  mutable p_used : int;  (* bump high-water mark *)
  mutable free_head : int;  (* head of the recycled-index list, -1 = none *)
  b_head : int array;
  b_tail : int array;
  occ0 : int array;  (* bit s: slot s nonempty (32 bits per word) *)
  occ1 : int array;  (* bit w: occ0.(w) <> 0 *)
  mutable wheel_count : int;
  (* overflow heap, (time, seq)-ordered structure of arrays: slot [i]
     holds event [i]'s key in [h_times]/[h_seqs] and its callback in
     [h_fns]; slots at or past [h_size] are free *)
  mutable h_times : int array;
  mutable h_seqs : int array;
  mutable h_fns : (unit -> unit) array;
  mutable h_size : int;
  mutable next_seq : int;
  mutable dispatched : int;
  mutable stopped : bool;
  mutable debug_checks : bool;
  mutable parked : int;
  mutable sanitizer : sanitizer option;
  mutable tracer : tracer option;
  (* [sanitizer <> None || tracer <> None], kept in sync by the setters:
     one boolean the memory layer can branch on to skip all observability
     plumbing per access instead of matching both options *)
  mutable instrumented : bool;
}

(* top-level (statically allocated) placeholder for free callback slots *)
let no_event () = ()

(* Domain-local factory consulted by [create], so a sanitizer can attach
   to engines constructed deep inside experiment code without threading a
   parameter through every layer.  See San.sanitized.  Domain-local (with
   inheritance at spawn) rather than a plain ref: the parallel experiment
   runner builds engines concurrently in several domains, and a factory
   installed before the fan-out must reach all of them without the
   domains racing on a shared cell. *)
let sanitizer_factory : (unit -> sanitizer) option Domain.DLS.key =
  Domain.DLS.new_key ~split_from_parent:Fun.id (fun () -> None)

let set_sanitizer_factory f = Domain.DLS.set sanitizer_factory f
let current_sanitizer_factory () = Domain.DLS.get sanitizer_factory

(* The tracer factory receives the engine it is attaching to, so a
   collector can read the engine clock (e.g. to pace counter sampling)
   without any further plumbing. *)
let tracer_factory : (t -> tracer) option Domain.DLS.key =
  Domain.DLS.new_key ~split_from_parent:Fun.id (fun () -> None)

let set_tracer_factory f = Domain.DLS.set tracer_factory f
let current_tracer_factory () = Domain.DLS.get tracer_factory

(* Process-wide serial so collectors and metric registries can associate
   state with a particular engine without holding the engine itself.
   Atomic: engines are created from several domains at once.  Ids stay
   unique but their assignment order across domains is not deterministic;
   nothing simulated may depend on the id (the lint's R1 closes the usual
   loopholes, and ids only ever label observability output). *)
let next_id = Atomic.make 0

let create () =
  let id = Atomic.fetch_and_add next_id 1 in
  let t =
    {
      id;
      clock = 0;
      base = 0;
      p_fns = Array.make 256 no_event;
      p_next = Array.make 256 (-1);
      p_used = 0;
      free_head = -1;
      b_head = Array.make wheel_size (-1);
      b_tail = Array.make wheel_size (-1);
      occ0 = Array.make (wheel_size lsr 5) 0;
      occ1 = Array.make summary_words 0;
      wheel_count = 0;
      h_times = Array.make 256 0;
      h_seqs = Array.make 256 0;
      h_fns = Array.make 256 no_event;
      h_size = 0;
      next_seq = 0;
      dispatched = 0;
      stopped = false;
      debug_checks = false;
      parked = 0;
      sanitizer =
        (match Domain.DLS.get sanitizer_factory with
        | None -> None
        | Some f -> Some (f ()));
      tracer = None;
      instrumented = false;
    }
  in
  (match Domain.DLS.get tracer_factory with
  | None -> ()
  | Some f -> t.tracer <- Some (f t));
  t.instrumented <- t.sanitizer <> None || t.tracer <> None;
  t

let id t = t.id

let set_sanitizer t s =
  t.sanitizer <- s;
  t.instrumented <- t.sanitizer <> None || t.tracer <> None

let sanitizer t = t.sanitizer

let set_tracer t tr =
  t.tracer <- tr;
  t.instrumented <- t.sanitizer <> None || t.tracer <> None

let tracer t = t.tracer
let[@inline] instrumented t = t.instrumented

let set_debug_checks t b = t.debug_checks <- b
let debug_checks t = t.debug_checks
let parked t = t.parked
let note_park t = t.parked <- t.parked + 1

let note_resume t =
  t.parked <- t.parked - 1;
  if t.debug_checks && t.parked < 0 then
    invalid_arg "Engine: more resumes than parked threads"

let now t = t.clock
let pending t = t.wheel_count + t.h_size
let dispatched t = t.dispatched

(* The one allocation site of the scheduler: amortized-doubling growth of
   a bucket or heap array, off the steady-state path by construction. *)
let grow src cap fill =
  (let dst = Array.make cap fill in
   Array.blit src 0 dst 0 (Array.length src);
   dst)
  [@alloc.allow "scheduler storage growth: amortized doubling, cold"]

(* --- occupancy bitmap --- *)

(* index of the lowest set bit; n <> 0 *)
let tz n = Bits.ctz n

let set_occ t s =
  let w = s lsr 5 in
  let old = Array.unsafe_get t.occ0 w in
  Array.unsafe_set t.occ0 w (old lor (1 lsl (s land 31)));
  if old = 0 then begin
    let sw = w lsr 5 in
    Array.unsafe_set t.occ1 sw
      (Array.unsafe_get t.occ1 sw lor (1 lsl (w land 31)))
  end

let clear_occ t s =
  let w = s lsr 5 in
  let v = Array.unsafe_get t.occ0 w land lnot (1 lsl (s land 31)) in
  Array.unsafe_set t.occ0 w v;
  if v = 0 then begin
    let sw = w lsr 5 in
    Array.unsafe_set t.occ1 sw
      (Array.unsafe_get t.occ1 sw land lnot (1 lsl (w land 31)))
  end

(* first summary word at or after [i] (circular) with events, continuing
   a scan that already rejected the bits above the caller's word — the
   wrapped-around low bits of the starting word are a valid answer.
   Termination: the caller holds wheel_count > 0. *)
let rec next_summary t i =
  let i = if i = summary_words then 0 else i in
  let m = Array.unsafe_get t.occ1 i in
  if m <> 0 then (i lsl 5) lor tz m else next_summary t (i + 1)

(* first occupied slot circularly at or after slot [bs]; requires
   wheel_count > 0.  Pure — never advances the window (invariant 1). *)
let find_from t bs =
  let w0 = bs lsr 5 in
  let m0 = Array.unsafe_get t.occ0 w0 land ((-1) lsl (bs land 31)) in
  if m0 <> 0 then (w0 lsl 5) lor tz m0
  else begin
    let sw0 = w0 lsr 5 in
    (* bits strictly above w0 in its summary word *)
    let m1 = Array.unsafe_get t.occ1 sw0 land ((-2) lsl (w0 land 31)) in
    let w =
      if m1 <> 0 then (sw0 lsl 5) lor tz m1 else next_summary t (sw0 + 1)
    in
    (w lsl 5) lor tz (Array.unsafe_get t.occ0 w)
  end

(* --- wheel buckets --- *)

(* a free pool index: recycled if available, else bump (growing the pool
   when the high-water mark hits capacity) *)
let pool_alloc t =
  let i = t.free_head in
  if i >= 0 then begin
    t.free_head <- Array.unsafe_get t.p_next i;
    i
  end
  else begin
    if t.p_used = Array.length t.p_fns then begin
      let cap = 2 * t.p_used in
      t.p_fns <- grow t.p_fns cap no_event;
      t.p_next <- grow t.p_next cap (-1)
    end;
    let i = t.p_used in
    t.p_used <- i + 1;
    i
  end

let bucket_push t s fn =
  let i = pool_alloc t in
  Array.unsafe_set t.p_fns i fn;
  Array.unsafe_set t.p_next i (-1);
  let tl = Array.unsafe_get t.b_tail s in
  if tl < 0 then begin
    Array.unsafe_set t.b_head s i;
    set_occ t s
  end
  else Array.unsafe_set t.p_next tl i;
  Array.unsafe_set t.b_tail s i;
  t.wheel_count <- t.wheel_count + 1

(* --- overflow heap (times >= base + W) --- *)

(* Tail-recursive hole-based sifts: the moving element's key rides in
   (registerable) parameters while the hole walks the tree, so each level
   costs one key compare plus one triple move instead of a three-array
   swap.  The [int] ascriptions keep every comparison monomorphic (an
   unconstrained parameter generalizes and [<] degrades to a C call). *)
let rec sift_up times seqs fns i (time : int) (seq : int) fn =
  let parent = (i - 1) / 2 in
  if
    i > 0
    && (let pt : int = Array.unsafe_get times parent in
        time < pt
        || (time = pt && seq < (Array.unsafe_get seqs parent : int)))
  then begin
    Array.unsafe_set times i (Array.unsafe_get times parent);
    Array.unsafe_set seqs i (Array.unsafe_get seqs parent);
    Array.unsafe_set fns i (Array.unsafe_get fns parent);
    sift_up times seqs fns parent time seq fn
  end
  else begin
    Array.unsafe_set times i time;
    Array.unsafe_set seqs i seq;
    Array.unsafe_set fns i fn
  end

let rec sift_down times seqs fns size i (time : int) (seq : int) fn =
  let l = (2 * i) + 1 in
  if l >= size then begin
    Array.unsafe_set times i time;
    Array.unsafe_set seqs i seq;
    Array.unsafe_set fns i fn
  end
  else begin
    let r = l + 1 in
    let c =
      if r < size then begin
        let lt : int = Array.unsafe_get times l
        and rt : int = Array.unsafe_get times r in
        if
          rt < lt
          || (rt = lt
             && (Array.unsafe_get seqs r : int) < Array.unsafe_get seqs l)
        then r
        else l
      end
      else l
    in
    let ct : int = Array.unsafe_get times c in
    if ct < time || (ct = time && (Array.unsafe_get seqs c : int) < seq) then begin
      Array.unsafe_set times i ct;
      Array.unsafe_set seqs i (Array.unsafe_get seqs c);
      Array.unsafe_set fns i (Array.unsafe_get fns c);
      sift_down times seqs fns size c time seq fn
    end
    else begin
      Array.unsafe_set times i time;
      Array.unsafe_set seqs i seq;
      Array.unsafe_set fns i fn
    end
  end

let heap_push t ~time ~seq fn =
  if t.h_size = Array.length t.h_times then begin
    let cap = 2 * t.h_size in
    t.h_times <- grow t.h_times cap 0;
    t.h_seqs <- grow t.h_seqs cap 0;
    t.h_fns <- grow t.h_fns cap no_event
  end;
  let i = t.h_size in
  t.h_size <- i + 1;
  sift_up t.h_times t.h_seqs t.h_fns i time seq fn

(* remove and return the (time, seq)-minimum callback; h_size > 0 *)
let heap_pop t =
  let fns = t.h_fns in
  let top = Array.unsafe_get fns 0 in
  let n = t.h_size - 1 in
  t.h_size <- n;
  if n > 0 then begin
    let time : int = Array.unsafe_get t.h_times n in
    let seq : int = Array.unsafe_get t.h_seqs n in
    let fn = Array.unsafe_get fns n in
    (* free the slot so the engine never pins a dead closure *)
    Array.unsafe_set fns n no_event;
    sift_down t.h_times t.h_seqs fns n 0 time seq fn
  end
  else Array.unsafe_set fns 0 no_event;
  top

(* --- window advance --- *)

(* Migrate the heap events the window has reached.  Popping in (time,
   seq) order appends them to their buckets in exactly seq order, and any
   later direct push to those buckets carries a larger seq — so bucket
   FIFO order remains global (time, seq) order. *)
let migrate t =
  let horizon = t.base + wheel_size in
  while t.h_size > 0 && Array.unsafe_get t.h_times 0 < horizon do
    let time : int = Array.unsafe_get t.h_times 0 in
    let fn = heap_pop t in
    bucket_push t (time land wheel_mask) fn
  done

(* commit the window to [time] (a dispatch is about to happen there) *)
let advance t time =
  t.base <- time;
  if t.h_size > 0 && Array.unsafe_get t.h_times 0 < time + wheel_size then
    migrate t

(* --- public scheduling API --- *)

(* [at >= clock >= base] (checked by the public entry points), so the
   window test is a single subtraction.  Only overflow-heap events draw a
   seq: bucket FIFO order already is arrival order, and migration feeds
   heap events into buckets before any later push can reach the same slot
   (see the header), so relative seqs are only ever compared heap-to-heap. *)
let[@hot] enqueue t at fn =
  if at - t.base < wheel_size then bucket_push t (at land wheel_mask) fn
  else begin
    let seq = t.next_seq in
    t.next_seq <- seq + 1;
    heap_push t ~time:at ~seq fn
  end

let[@hot] schedule t ~at fn =
  if at < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule: at=%d is before now=%d" at t.clock);
  enqueue t at fn

let[@hot] schedule_after t ~delay fn =
  if delay < 0 then invalid_arg "Engine.schedule_after: negative delay";
  enqueue t (t.clock + delay) fn

let stop t = t.stopped <- true

(* Dispatch every event of the bucket's one time, in FIFO (= seq) order;
   callbacks appending same-time events lengthen the pass.  On completion
   the bucket resets to its empty shape; a [stop] mid-bucket leaves the
   cursor (and the occupancy bit) for a later resume. *)
(* The drained prefix [first .. prev] (n nodes) stays chained through
   [p_next] while the pass runs, so recycling it is one splice onto the
   free list at the end of the pass instead of two stores per event; the
   pending/dispatched counters batch the same way.  Nothing observes
   either mid-pass: callbacks only schedule, and [pending]/[dispatched]
   are read between runs. *)
let rec drain_go t s first prev n =
  if t.stopped then drain_finish t first prev n
  else begin
    let i = Array.unsafe_get t.b_head s in
    if i >= 0 then begin
      let fn = Array.unsafe_get t.p_fns i in
      (* The slot's closure is NOT cleared here: the write barrier on
         that store costs more than the rest of the drain step, and the
         next push through the free list overwrites it anyway.  Dead
         closures are thus pinned only until slot reuse — bounded by
         pool capacity, i.e. the same order as peak pending — and the
         quiescent sweep in [settle] releases them all once a run
         completes with nothing pending. *)
      let nx = Array.unsafe_get t.p_next i in
      Array.unsafe_set t.b_head s nx;
      if nx < 0 then Array.unsafe_set t.b_tail s (-1);
      fn ();
      drain_go t s (if first < 0 then i else first) i (n + 1)
    end
    else begin
      clear_occ t s;
      drain_finish t first prev n
    end
  end

and drain_finish t first prev n =
  if n > 0 then begin
    Array.unsafe_set t.p_next prev t.free_head;
    t.free_head <- first;
    t.wheel_count <- t.wheel_count - n;
    t.dispatched <- t.dispatched + n
  end

let[@hot] drain_bucket t s = drain_go t s (-1) (-1) 0

let[@hot] rec loop t until =
  if not t.stopped then
    if t.wheel_count = 0 then begin
      if t.h_size > 0 then begin
        (* window jump: everything pending is past the horizon *)
        let ht : int = Array.unsafe_get t.h_times 0 in
        if ht <= until then begin
          advance t ht;
          loop t until
        end
      end
    end
    else begin
      (* invariant 2: the wheel holds the global minimum *)
      let bs = t.base land wheel_mask in
      let s = find_from t bs in
      let time = t.base + ((s - bs) land wheel_mask) in
      if time <= until then begin
        advance t time;
        t.clock <- time;
        drain_bucket t s;
        loop t until
      end
    end

(* Quiescent sweep: once a run ends with no pending events, every pool
   slot is free, so release the dead closures the drain loop left behind
   (see the note in [drain_go]).  O(pool) once per completed run, versus
   a write barrier per event on the hot path. *)
let settle t =
  if t.wheel_count = 0 && t.h_size = 0 && t.p_used > 0 then
    Array.fill t.p_fns 0 t.p_used no_event

let[@hot] run t ~until =
  t.stopped <- false;
  loop t until;
  if (not t.stopped) && t.clock < until then t.clock <- until;
  settle t

let[@hot] run_all t =
  t.stopped <- false;
  loop t max_int;
  settle t
