(* Binary min-heap of (time, seq) keyed events.  The [seq] component gives
   FIFO order among events scheduled for the same cycle, which is what makes
   simulations deterministic and insensitive to heap internals. *)

type event = { time : int; seq : int; fn : unit -> unit }

(* Hooks for an optional happens-before sanitizer (lib/san).  The engine
   only carries the closures; their semantics live with the implementor.
   A record of closures avoids a dependency cycle: lib/san depends on
   lib/sim, while instrumented layers (mem, store, queue, ...) reach the
   sanitizer through their engine handle. *)
type sanitizer = {
  san_thread : string -> int;
      (* register a simulated thread, returns its id *)
  san_access :
    tid:int -> site:string -> time:int -> write:bool -> lo:int -> hi:int -> unit;
      (* a charged data access to simulated bytes [lo, hi) *)
  san_acquire : tid:int -> obj:int -> unit;
  san_release : tid:int -> obj:int -> unit;
      (* untimed (real-dispatch-order) edges through a sync object *)
  san_sched_acquire : tid:int -> time:int -> unit;
  san_sched_release : tid:int -> time:int -> unit;
      (* simulated-time-indexed edges at commit boundaries *)
  san_obj : string -> int;  (* intern a sync object by name *)
  san_lock : tid:int -> obj:int -> unit;
  san_unlock : tid:int -> obj:int -> unit;
  san_sync_range : lo:int -> hi:int -> on:bool -> unit;
      (* mark bytes as synchronization words, exempt from race pairing *)
  san_protect : obj:int -> lo:int -> hi:int -> unit;
  san_unprotect : lo:int -> hi:int -> unit;
      (* lockset: writes to protected bytes must hold [obj] *)
}

(* Hooks for an optional observability tracer (lib/trace), carried the
   same way as the sanitizer: a record of closures, so the engine stays
   ignorant of the collector's semantics and lib/trace incurs no
   dependency cycle.  All hooks are invoked only when a tracer is
   attached; [None] (the default) costs one branch per site and never
   allocates. *)
type tracer = {
  tr_thread : string -> int;
      (* register a simulated thread's track, returns its trace id *)
  tr_slice : tid:int -> t0:int -> t1:int -> name:string -> unit;
      (* a completed span of simulated time on a thread track *)
  tr_instant : tid:int -> time:int -> name:string -> arg:string -> unit;
      (* a point event; tid = -1 targets the global events track *)
  tr_counter : time:int -> track:string -> value:float -> unit;
      (* one sample of a named counter track *)
  tr_cycles : tid:int -> site:string -> cycles:int -> unit;
      (* charged cycles attributed to an Env site path (profiler) *)
}

type t = {
  id : int;
  mutable clock : int;
  mutable heap : event array;
  mutable size : int;
  mutable next_seq : int;
  mutable stopped : bool;
  mutable debug_checks : bool;
  mutable parked : int;
  mutable sanitizer : sanitizer option;
  mutable tracer : tracer option;
}

let dummy = { time = max_int; seq = max_int; fn = ignore }

(* Domain-local factory consulted by [create], so a sanitizer can attach
   to engines constructed deep inside experiment code without threading a
   parameter through every layer.  See San.sanitized.  Domain-local (with
   inheritance at spawn) rather than a plain ref: the parallel experiment
   runner builds engines concurrently in several domains, and a factory
   installed before the fan-out must reach all of them without the
   domains racing on a shared cell. *)
let sanitizer_factory : (unit -> sanitizer) option Domain.DLS.key =
  Domain.DLS.new_key ~split_from_parent:Fun.id (fun () -> None)

let set_sanitizer_factory f = Domain.DLS.set sanitizer_factory f
let current_sanitizer_factory () = Domain.DLS.get sanitizer_factory

(* The tracer factory receives the engine it is attaching to, so a
   collector can read the engine clock (e.g. to pace counter sampling)
   without any further plumbing. *)
let tracer_factory : (t -> tracer) option Domain.DLS.key =
  Domain.DLS.new_key ~split_from_parent:Fun.id (fun () -> None)

let set_tracer_factory f = Domain.DLS.set tracer_factory f
let current_tracer_factory () = Domain.DLS.get tracer_factory

(* Process-wide serial so collectors and metric registries can associate
   state with a particular engine without holding the engine itself.
   Atomic: engines are created from several domains at once.  Ids stay
   unique but their assignment order across domains is not deterministic;
   nothing simulated may depend on the id (the lint's R1 closes the usual
   loopholes, and ids only ever label observability output). *)
let next_id = Atomic.make 0

let create () =
  let id = Atomic.fetch_and_add next_id 1 in
  let t =
    {
      id;
      clock = 0;
      heap = Array.make 256 dummy;
      size = 0;
      next_seq = 0;
      stopped = false;
      debug_checks = false;
      parked = 0;
      sanitizer =
        (match Domain.DLS.get sanitizer_factory with
        | None -> None
        | Some f -> Some (f ()));
      tracer = None;
    }
  in
  (match Domain.DLS.get tracer_factory with
  | None -> ()
  | Some f -> t.tracer <- Some (f t));
  t

let id t = t.id
let set_sanitizer t s = t.sanitizer <- s
let sanitizer t = t.sanitizer
let set_tracer t tr = t.tracer <- tr
let tracer t = t.tracer

let set_debug_checks t b = t.debug_checks <- b
let debug_checks t = t.debug_checks
let parked t = t.parked
let note_park t = t.parked <- t.parked + 1

let note_resume t =
  t.parked <- t.parked - 1;
  if t.debug_checks && t.parked < 0 then
    invalid_arg "Engine: more resumes than parked threads"

let now t = t.clock
let pending t = t.size

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let push t ev =
  if t.size = Array.length t.heap then begin
    let bigger = Array.make (2 * t.size) dummy in
    Array.blit t.heap 0 bigger 0 t.size;
    t.heap <- bigger
  end;
  let heap = t.heap in
  let i = ref t.size in
  t.size <- t.size + 1;
  heap.(!i) <- ev;
  (* sift up *)
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if before heap.(!i) heap.(parent) then begin
      let tmp = heap.(parent) in
      heap.(parent) <- heap.(!i);
      heap.(!i) <- tmp;
      i := parent
    end else continue := false
  done

let pop t =
  assert (t.size > 0);
  let heap = t.heap in
  let top = heap.(0) in
  t.size <- t.size - 1;
  heap.(0) <- heap.(t.size);
  heap.(t.size) <- dummy;
  (* sift down *)
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < t.size && before heap.(l) heap.(!smallest) then smallest := l;
    if r < t.size && before heap.(r) heap.(!smallest) then smallest := r;
    if !smallest <> !i then begin
      let tmp = heap.(!smallest) in
      heap.(!smallest) <- heap.(!i);
      heap.(!i) <- tmp;
      i := !smallest
    end else continue := false
  done;
  top

let schedule t ~at fn =
  if at < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule: at=%d is before now=%d" at t.clock);
  let ev = { time = at; seq = t.next_seq; fn } in
  t.next_seq <- t.next_seq + 1;
  push t ev

let schedule_after t ~delay fn =
  if delay < 0 then invalid_arg "Engine.schedule_after: negative delay";
  schedule t ~at:(t.clock + delay) fn

let stop t = t.stopped <- true

let run t ~until =
  t.stopped <- false;
  while (not t.stopped) && t.size > 0 && t.heap.(0).time <= until do
    let ev = pop t in
    t.clock <- ev.time;
    ev.fn ()
  done;
  if not t.stopped then t.clock <- max t.clock until

let run_all t =
  t.stopped <- false;
  while (not t.stopped) && t.size > 0 do
    let ev = pop t in
    t.clock <- ev.time;
    ev.fn ()
  done
