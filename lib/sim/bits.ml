(* Position of the highest set bit of [n > 0], counting from the LSB. *)
let msb_pos n =
  let n = ref n and p = ref 0 in
  if !n >= 1 lsl 32 then begin p := !p + 32; n := !n lsr 32 end;
  if !n >= 1 lsl 16 then begin p := !p + 16; n := !n lsr 16 end;
  if !n >= 1 lsl 8 then begin p := !p + 8; n := !n lsr 8 end;
  if !n >= 1 lsl 4 then begin p := !p + 4; n := !n lsr 4 end;
  if !n >= 1 lsl 2 then begin p := !p + 2; n := !n lsr 2 end;
  if !n >= 2 then incr p;
  !p

let clz n = if n = 0 then 63 else 62 - msb_pos n

let popcount n =
  let c = ref 0 and n = ref n in
  while !n <> 0 do
    n := !n land (!n - 1);
    incr c
  done;
  !c

let log2_ceil n =
  if n <= 0 then invalid_arg "Bits.log2_ceil";
  let k = ref 0 in
  while 1 lsl !k < n do
    incr k
  done;
  !k

let is_pow2 n = n > 0 && n land (n - 1) = 0
let lowest_set n = n land (-n)

(* Index of the lowest set bit of [n <> 0], allocation-free (no ref
   cells): the isolate [n land (-n)] is a power of two, located by four
   immutable binary steps plus a final bit test.  Hot-path safe — used by
   the engine's occupancy-bitmap scans. *)
let ctz n =
  let b = n land (-n) in
  let p0 = if b land 0xFFFFFFFF = 0 then 32 else 0 in
  let b0 = b lsr p0 in
  let p1 = if b0 land 0xFFFF = 0 then 16 else 0 in
  let b1 = b0 lsr p1 in
  let p2 = if b1 land 0xFF = 0 then 8 else 0 in
  let b2 = b1 lsr p2 in
  let p3 = if b2 land 0xF = 0 then 4 else 0 in
  let b3 = b2 lsr p3 in
  let p4 = if b3 land 0x3 = 0 then 2 else 0 in
  let b4 = b3 lsr p4 in
  p0 + p1 + p2 + p3 + p4 + (if b4 land 0x1 = 0 then 1 else 0)
