open Effect
open Effect.Deep

type ctx = {
  engine : Engine.t;
  name : string;
  mutable acc : int;
  san : int;  (* sanitizer thread id; -1 when no sanitizer is attached *)
  tr : int;  (* tracer track id; -1 when no tracer is attached *)
}

type _ Effect.t +=
  | Delay : ctx * int -> unit Effect.t
  | Suspend : ctx * ((unit -> unit) -> unit) -> unit Effect.t

(* A context for code that runs OUTSIDE the DES — the native twin's
   fibers (lib/native).  It carries the engine handle so the Env plumbing
   stays uniform, but it is never scheduled: no sanitizer/tracer ids, and
   the accumulator must stay at 0 (a freerun Env never charges), so
   [commit] on a detached ctx never performs an effect. *)
let detached ?(name = "native") engine = { engine; name; acc = 0; san = -1; tr = -1 }

let engine ctx = ctx.engine
let name ctx = ctx.name
let san_id ctx = ctx.san
let tr_id ctx = ctx.tr
let now ctx = Engine.now ctx.engine + ctx.acc

let[@hot] charge ctx n =
  if n < 0 then invalid_arg "Simthread.charge: negative cycles";
  ctx.acc <- ctx.acc + n

let[@hot] [@inline] charge_unchecked ctx n = ctx.acc <- ctx.acc + n

let pending ctx = ctx.acc

(* Sanitizer schedule edges: a thread releases just before giving up
   control, stamped with the simulated time at which it will resume
   (committed cycles included), and acquires at the start of its next
   slice, inheriting only releases stamped at or before the slice start. *)
let san_sched_release ctx =
  match Engine.sanitizer ctx.engine with
  | None -> ()
  | Some s -> s.Engine.san_sched_release ~tid:ctx.san ~time:(now ctx)

let san_sched_acquire ctx =
  match Engine.sanitizer ctx.engine with
  | None -> ()
  | Some s ->
    s.Engine.san_sched_acquire ~tid:ctx.san ~time:(Engine.now ctx.engine)

let[@hot] commit ctx =
  if ctx.acc > 0 then begin
    san_sched_release ctx;
    let d = ctx.acc in
    ctx.acc <- 0;
    perform
      ((Delay (ctx, d))
      [@alloc.allow
        "commit boundary: one effect payload + captured continuation per \
         scheduler slice, amortized over the whole charged region"]);
    san_sched_acquire ctx
  end

let delay ctx n =
  charge ctx n;
  commit ctx

let yield ctx =
  commit ctx;
  san_sched_release ctx;
  perform (Delay (ctx, 0));
  san_sched_acquire ctx

let suspend ctx register =
  commit ctx;
  san_sched_release ctx;
  perform (Suspend (ctx, register));
  san_sched_acquire ctx

let spawn ?at ?(name = "thread") engine fn =
  let san =
    match Engine.sanitizer engine with
    | None -> -1
    | Some s -> s.Engine.san_thread name
  in
  let tr =
    match Engine.tracer engine with
    | None -> -1
    | Some t -> t.Engine.tr_thread name
  in
  let ctx = { engine; name; acc = 0; san; tr } in
  let start ctx =
    san_sched_acquire ctx;
    fn ctx
  in
  let body () =
    match_with start ctx
      {
        retc = (fun () -> ());
        exnc = raise;
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Delay (c, n) ->
              Some
                (fun (k : (a, unit) continuation) ->
                  Engine.schedule_after c.engine ~delay:n (fun () -> continue k ()))
            | Suspend (c, register) ->
              Some
                (fun (k : (a, unit) continuation) ->
                  let dbg = Engine.debug_checks c.engine in
                  if dbg then Engine.note_park c.engine;
                  let resumed = ref false in
                  let resume () =
                    if !resumed then
                      invalid_arg "Simthread: resume invoked twice";
                    resumed := true;
                    if dbg then Engine.note_resume c.engine;
                    Engine.schedule_after c.engine ~delay:0 (fun () ->
                        continue k ())
                  in
                  register resume)
            | _ -> None);
      }
  in
  let at = match at with Some t -> t | None -> Engine.now engine in
  Engine.schedule engine ~at body

module Condvar = struct
  type t = { q : (unit -> unit) Queue.t }

  let create () = { q = Queue.create () }
  let waiters t = Queue.length t.q
  let wait ctx t = suspend ctx (fun resume -> Queue.push resume t.q)

  let signal t =
    match Queue.take_opt t.q with None -> () | Some resume -> resume ()

  let broadcast t =
    while not (Queue.is_empty t.q) do
      signal t
    done
end
