open Effect
open Effect.Deep

type ctx = {
  engine : Engine.t;
  name : string;
  mutable acc : int;
}

type _ Effect.t +=
  | Delay : ctx * int -> unit Effect.t
  | Suspend : ctx * ((unit -> unit) -> unit) -> unit Effect.t

let engine ctx = ctx.engine
let name ctx = ctx.name
let now ctx = Engine.now ctx.engine + ctx.acc

let charge ctx n =
  if n < 0 then invalid_arg "Simthread.charge: negative cycles";
  ctx.acc <- ctx.acc + n

let pending ctx = ctx.acc

let commit ctx =
  if ctx.acc > 0 then begin
    let d = ctx.acc in
    ctx.acc <- 0;
    perform (Delay (ctx, d))
  end

let delay ctx n =
  charge ctx n;
  commit ctx

let yield ctx =
  commit ctx;
  perform (Delay (ctx, 0))

let suspend ctx register =
  commit ctx;
  perform (Suspend (ctx, register))

let spawn ?at ?(name = "thread") engine fn =
  let ctx = { engine; name; acc = 0 } in
  let body () =
    match_with fn ctx
      {
        retc = (fun () -> ());
        exnc = raise;
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Delay (c, n) ->
              Some
                (fun (k : (a, unit) continuation) ->
                  Engine.schedule_after c.engine ~delay:n (fun () -> continue k ()))
            | Suspend (c, register) ->
              Some
                (fun (k : (a, unit) continuation) ->
                  let dbg = Engine.debug_checks c.engine in
                  if dbg then Engine.note_park c.engine;
                  let resumed = ref false in
                  let resume () =
                    if !resumed then
                      invalid_arg "Simthread: resume invoked twice";
                    resumed := true;
                    if dbg then Engine.note_resume c.engine;
                    Engine.schedule_after c.engine ~delay:0 (fun () ->
                        continue k ())
                  in
                  register resume)
            | _ -> None);
      }
  in
  let at = match at with Some t -> t | None -> Engine.now engine in
  Engine.schedule engine ~at body

module Condvar = struct
  type t = { q : (unit -> unit) Queue.t }

  let create () = { q = Queue.create () }
  let waiters t = Queue.length t.q
  let wait ctx t = suspend ctx (fun resume -> Queue.push resume t.q)

  let signal t =
    match Queue.take_opt t.q with None -> () | Some resume -> resume ()

  let broadcast t =
    while not (Queue.is_empty t.q) do
      signal t
    done
end
