(** Discrete-event simulation engine.

    Time is measured in CPU cycles of the simulated machine (an [int]).
    Events are callbacks scheduled at absolute times; ties are broken by
    insertion order, which makes every run fully deterministic. *)

type t

val create : unit -> t
(** A fresh engine with the clock at cycle 0 and no pending events. *)

val now : t -> int
(** Current simulated time in cycles. *)

val schedule : t -> at:int -> (unit -> unit) -> unit
(** [schedule t ~at fn] runs [fn] when the clock reaches [at].  [at] must not
    be in the past. *)

val schedule_after : t -> delay:int -> (unit -> unit) -> unit
(** [schedule_after t ~delay fn] is [schedule t ~at:(now t + delay) fn]. *)

val pending : t -> int
(** Number of events not yet dispatched. *)

val run : t -> until:int -> unit
(** Dispatch events in time order until the clock would pass [until] or no
    events remain.  The clock is left at [until] (or at the last event time
    if the queue drained first). *)

val run_all : t -> unit
(** Dispatch every event until the queue is empty. *)

val stop : t -> unit
(** Abort the current [run]/[run_all] after the in-flight event returns.
    Remaining events stay queued. *)

(** {1 Runtime verification}

    With [debug_checks] enabled, the substrate cross-validates the static
    lint's invariants dynamically: {!Mutps_mem.Env.assert_committed} fails
    on shared-state reads with uncommitted cycles, and {!Simthread}
    accounts parked/resumed threads so lost or doubled wake-ups surface.
    Off by default; the checks are branch-cheap but sit on hot paths. *)

val set_debug_checks : t -> bool -> unit
val debug_checks : t -> bool

val parked : t -> int
(** Threads currently parked in {!Simthread.suspend} (tracked only while
    [debug_checks] is on; 0 otherwise). *)

val note_park : t -> unit
(** Used by {!Simthread}'s effect handler; not for general use. *)

val note_resume : t -> unit
(** Used by {!Simthread}'s effect handler; not for general use. *)
