(** Discrete-event simulation engine.

    Time is measured in CPU cycles of the simulated machine (an [int]).
    Events are callbacks scheduled at absolute times; ties are broken by
    insertion order, which makes every run fully deterministic. *)

type t

val create : unit -> t
(** A fresh engine with the clock at cycle 0 and no pending events. *)

val id : t -> int
(** Process-wide serial of this engine, assigned at {!create}.  Lets
    observability state (metric registries, trace collectors) refer to a
    specific engine without holding it. *)

val now : t -> int
(** Current simulated time in cycles. *)

val schedule : t -> at:int -> (unit -> unit) -> unit
(** [schedule t ~at fn] runs [fn] when the clock reaches [at].  [at] must not
    be in the past. *)

val schedule_after : t -> delay:int -> (unit -> unit) -> unit
(** [schedule_after t ~delay fn] is [schedule t ~at:(now t + delay) fn]. *)

val pending : t -> int
(** Number of events not yet dispatched. *)

val dispatched : t -> int
(** Total events dispatched since {!create}.  Deterministic for a
    deterministic simulation; the engine micro-benchmark divides GC
    allocation deltas by it to report allocated-words-per-event. *)

val run : t -> until:int -> unit
(** Dispatch events in time order until the clock would pass [until] or no
    events remain.  The clock is left at [until] (or at the last event time
    if the queue drained first). *)

val run_all : t -> unit
(** Dispatch every event until the queue is empty. *)

val stop : t -> unit
(** Abort the current [run]/[run_all] after the in-flight event returns.
    Remaining events stay queued. *)

(** {1 Runtime verification}

    With [debug_checks] enabled, the substrate cross-validates the static
    lint's invariants dynamically: {!Mutps_mem.Env.assert_committed} fails
    on shared-state reads with uncommitted cycles, and {!Simthread}
    accounts parked/resumed threads so lost or doubled wake-ups surface.
    Off by default; the checks are branch-cheap but sit on hot paths. *)

val set_debug_checks : t -> bool -> unit
val debug_checks : t -> bool

val parked : t -> int
(** Threads currently parked in {!Simthread.suspend} (tracked only while
    [debug_checks] is on; 0 otherwise). *)

val note_park : t -> unit
(** Used by {!Simthread}'s effect handler; not for general use. *)

val note_resume : t -> unit
(** Used by {!Simthread}'s effect handler; not for general use. *)

(** {1 Race sanitizer hooks}

    An optional happens-before race detector (implemented in [lib/san])
    plugs into the engine as a record of closures.  Instrumented layers —
    {!Simthread} commit boundaries, [Env] accesses, queue and seqlock
    synchronization — invoke the hooks through their engine handle, so the
    engine itself stays ignorant of the detector's semantics and [lib/san]
    incurs no dependency cycle.  [None] (the default) costs one branch per
    hook site. *)

type sanitizer = {
  san_thread : string -> int;
      (** Register a simulated thread by name; returns its thread id. *)
  san_access :
    tid:int -> site:string -> time:int -> write:bool -> lo:int -> hi:int -> unit;
      (** A charged access to simulated bytes [\[lo, hi)] at simulated
          [time], from the access site tagged [site]. *)
  san_acquire : tid:int -> obj:int -> unit;
  san_release : tid:int -> obj:int -> unit;
      (** Untimed edges through a sync object: an acquire inherits every
          release on the same object that already happened in real dispatch
          order (models structures whose internal synchronization the
          simulation does not charge). *)
  san_sched_acquire : tid:int -> time:int -> unit;
  san_sched_release : tid:int -> time:int -> unit;
      (** Simulated-time-indexed edges: a release at commit stamps the
          committed time; an acquire at slice start inherits only releases
          stamped at or before the slice's start time. *)
  san_obj : string -> int;  (** Intern a sync object by name. *)
  san_lock : tid:int -> obj:int -> unit;
  san_unlock : tid:int -> obj:int -> unit;
      (** Lockset tracking, e.g. an {!Mutps_store.Item} version lock. *)
  san_sync_range : lo:int -> hi:int -> on:bool -> unit;
      (** Mark/unmark bytes as synchronization words (seqlock headers, ring
          cursors): exempt from race pairing, they generate edges instead. *)
  san_protect : obj:int -> lo:int -> hi:int -> unit;
  san_unprotect : lo:int -> hi:int -> unit;
      (** Declare bytes writable only while holding [obj]. *)
}

val set_sanitizer : t -> sanitizer option -> unit
val sanitizer : t -> sanitizer option

val set_sanitizer_factory : (unit -> sanitizer) option -> unit
(** Domain-local: when set, {!create} attaches [f ()] to every new engine
    built in this domain (new domains inherit the parent's factory at
    spawn).  Lets a sanitizer reach engines constructed deep inside
    experiment code; see [San.sanitized]. *)

val current_sanitizer_factory : unit -> (unit -> sanitizer) option
(** The factory currently installed in this domain, for callers that
    save/restore it around a scoped run. *)

(** {1 Observability tracer hooks}

    An optional trace collector (implemented in [lib/trace]) plugs into
    the engine exactly like the sanitizer: a record of closures invoked by
    instrumented layers through their engine handle.  [None] (the
    default) costs one branch per hook site and allocates nothing — the
    "zero-cost-when-off" contract the [bench] suite measures. *)

type tracer = {
  tr_thread : string -> int;
      (** Register a simulated thread's track by name; returns its trace
          id. *)
  tr_slice : tid:int -> t0:int -> t1:int -> name:string -> unit;
      (** A completed span [\[t0, t1\]] of simulated time on a thread
          track (an [Env.tagged] region). *)
  tr_instant : tid:int -> time:int -> name:string -> arg:string -> unit;
      (** A point event (role switch, seqlock bounce, tuner decision);
          [tid = -1] targets the collector's global events track. *)
  tr_counter : time:int -> track:string -> value:float -> unit;
      (** One sample of a named counter track (ring occupancy, hit
          rates). *)
  tr_cycles : tid:int -> site:string -> cycles:int -> unit;
      (** Charged cycles attributed to the [Env] site path active when
          the charge was made; feeds the per-site cycle profiler. *)
}

val set_tracer : t -> tracer option -> unit
val tracer : t -> tracer option

val instrumented : t -> bool
(** [sanitizer t <> None || tracer t <> None], maintained by the setters.
    Hot layers branch on this single boolean to bypass every
    observability hook; attaching a sanitizer or tracer at any time
    flips it, so the bypass can never go stale. *)

val set_tracer_factory : (t -> tracer) option -> unit
(** Domain-local: when set, {!create} attaches [f engine] to every new
    engine built in this domain (new domains inherit the parent's factory
    at spawn; the factory receives the engine so a collector can pace
    itself off the engine clock); see [Trace.traced]. *)

val current_tracer_factory : unit -> (t -> tracer) option
(** The factory currently installed in this domain, for callers that
    save/restore it around a scoped run. *)
