(** Small bit-twiddling helpers shared across the simulator. *)

val clz : int -> int
(** Count of leading zero bits in a 63-bit OCaml int (result in [\[0, 63\]];
    [clz 0 = 63]). *)

val popcount : int -> int
(** Number of set bits. *)

val log2_ceil : int -> int
(** Smallest [k] with [1 lsl k >= n]; [n] must be positive. *)

val is_pow2 : int -> bool

val lowest_set : int -> int
(** The lowest set bit of [n] ([0] if [n = 0]). *)

val ctz : int -> int
(** Index of the lowest set bit of [n <> 0], counting from the LSB;
    allocation-free. *)
