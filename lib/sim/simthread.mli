(** Simulated threads: cooperative computations whose passage of time is
    charged to the {!Engine} clock.

    A simulated thread is an ordinary OCaml function run under an effect
    handler.  It advances simulated time with {!delay}, or — on the hot path
    — by accumulating cycles into its context with {!charge} and flushing
    them with one {!commit} at a natural boundary (end of a request stage,
    a queue operation).  Accumulation keeps the event queue off the
    per-memory-access path, which is what makes multi-million-operation
    simulations affordable.

    All operations except {!spawn} must be called from inside a simulated
    thread. *)

type ctx
(** Per-thread context: engine handle plus the uncommitted cycle
    accumulator. *)

val spawn : ?at:int -> ?name:string -> Engine.t -> (ctx -> unit) -> unit
(** [spawn engine fn] schedules [fn] to start at time [at] (default: now).
    The thread ends when [fn] returns. *)

val detached : ?name:string -> Engine.t -> ctx
(** A context for code running outside the DES — the native backend's
    fibers.  It is never scheduled by the engine: the simulated clock
    stands still and no sanitizer/tracer track is attached.  Pair it with
    a freerun {!Mutps_mem.Env} (which never charges) so {!commit} on a
    detached context never performs a scheduling effect. *)

val engine : ctx -> Engine.t
val name : ctx -> string

val san_id : ctx -> int
(** Sanitizer thread id assigned at {!spawn} when a sanitizer is attached
    to the engine; [-1] otherwise.  Used by [Env] to attribute accesses. *)

val tr_id : ctx -> int
(** Tracer track id assigned at {!spawn} when a tracer is attached to the
    engine; [-1] otherwise.  Used by [Env] to attribute slices, instants
    and charged cycles to this thread's track. *)

val now : ctx -> int
(** Engine time plus this thread's uncommitted cycles — i.e. where this
    thread's private clock stands. *)

val charge : ctx -> int -> unit
(** Accumulate [n] cycles locally without touching the event queue. *)

val charge_unchecked : ctx -> int -> unit
(** {!charge} minus the negative-argument guard, for callers whose cycle
    counts are non-negative by construction (cache-model latencies).
    A negative [n] here would silently rewind the thread's private
    clock — only skip the guard where the invariant is structural. *)

val pending : ctx -> int
(** Cycles accumulated since the last commit. *)

val commit : ctx -> unit
(** Flush accumulated cycles: other threads scheduled in the flushed
    interval run before this thread resumes. *)

val delay : ctx -> int -> unit
(** [delay ctx n] = [charge ctx n; commit ctx]. *)

val yield : ctx -> unit
(** Commit, then let every other event at the current time run first. *)

val suspend : ctx -> ((unit -> unit) -> unit) -> unit
(** [suspend ctx register] commits, then parks the thread; [register] is
    called with a [resume] closure that must be invoked exactly once (from
    another thread or an engine event) to reschedule this thread at the
    resumer's current time. *)

(** Condition variables for simulated threads. *)
module Condvar : sig
  type t

  val create : unit -> t
  val waiters : t -> int

  val wait : ctx -> t -> unit
  (** Park the calling thread until signalled. *)

  val signal : t -> unit
  (** Wake one waiter (FIFO); no-op when none wait.  Callable from any
      simulation callback. *)

  val broadcast : t -> unit
end
