(** Shared server substrate: one simulated machine (engine + hierarchy +
    address layout), the item store, the index, and the network link.
    Every system (μTPS-H/T, BaseKV, eRPC-KV) is assembled on top of one of
    these. *)

module Engine = Mutps_sim.Engine
module Hierarchy = Mutps_mem.Hierarchy
module Layout = Mutps_mem.Layout
module Slab = Mutps_store.Slab
module Item = Mutps_store.Item
module Index = Mutps_index.Index_intf

type t = {
  config : Config.t;
  engine : Engine.t;
  hier : Hierarchy.t;
  layout : Layout.t;
  slab : Slab.t;
  index : Index.t;
  link : Mutps_net.Link.t;
}

(* Expose the substrate's statistics as metric sources when a registry is
   installed (mutps-cli --metrics / --trace counter tracks).  Readers pull
   whole-machine aggregates; they never touch simulation state. *)
let register_metrics t =
  match Mutps_trace.Metrics.current () with
  | None -> ()
  | Some reg ->
    let module M = Mutps_trace.Metrics in
    let eid = Engine.id t.engine in
    let cores = Hierarchy.cores t.hier in
    let agg field =
      let total = ref 0 in
      for core = 0 to cores - 1 do
        total := !total + field (Hierarchy.core_stats t.hier ~core)
      done;
      float_of_int !total
    in
    let hier name field =
      M.register reg ~kind:M.Counter ~engine_id:eid ~subsystem:"hierarchy"
        ~name (fun () -> agg field)
    in
    hier "l1_hits" (fun s -> s.Hierarchy.l1_hits);
    hier "l2_hits" (fun s -> s.Hierarchy.l2_hits);
    hier "llc_hits" (fun s -> s.Hierarchy.llc_hits);
    hier "dram_fetches" (fun s -> s.Hierarchy.dram_fetches);
    hier "invalidations_sent" (fun s -> s.Hierarchy.invalidations_sent);
    hier "dirty_transfers" (fun s -> s.Hierarchy.dirty_transfers);
    M.register reg ~kind:M.Counter ~engine_id:eid ~subsystem:"nic"
      ~name:"ddio_hits" (fun () ->
        float_of_int (fst (Hierarchy.nic_dma_stats t.hier)));
    M.register reg ~kind:M.Counter ~engine_id:eid ~subsystem:"nic"
      ~name:"ddio_misses" (fun () ->
        float_of_int (snd (Hierarchy.nic_dma_stats t.hier)));
    let link name read =
      M.register reg ~kind:M.Counter ~engine_id:eid ~subsystem:"link" ~name
        (fun () -> float_of_int (read t.link))
    in
    link "rx_messages" Mutps_net.Link.rx_messages;
    link "tx_messages" Mutps_net.Link.tx_messages;
    link "rx_bytes" Mutps_net.Link.rx_bytes;
    link "tx_bytes" Mutps_net.Link.tx_bytes

let create (config : Config.t) =
  let engine = Engine.create () in
  let geometry =
    match config.Config.geometry with
    | Some g -> g
    | None -> Hierarchy.default_geometry ~cores:(Config.total_cores config)
  in
  let hier = Hierarchy.create ~costs:config.Config.costs geometry in
  let layout = Layout.create () in
  (* paper-scale keyspaces (10M items) overflow the 1 GiB default region
     of their item class; tell the slab the expected item count so it can
     size that class's region as it is created.  Classes the run never
     allocates from cost no simulated address space at all. *)
  let slab =
    Slab.create layout ~expected_items:config.Config.capacity ()
  in
  let index =
    match config.Config.index with
    | Config.Hash ->
      Mutps_index.Cuckoo.ops
        (Mutps_index.Cuckoo.create layout ~capacity:config.Config.capacity
           ~seed:config.Config.seed)
    | Config.Tree ->
      Mutps_index.Btree.ops
        (Mutps_index.Btree.create layout ~seed:config.Config.seed)
  in
  let link = Mutps_net.Link.create ~config:config.Config.link () in
  let t = { config; engine; hier; layout; slab; index; link } in
  register_metrics t;
  t

(** Pre-populate the store with every key in [0, keyspace) (silent: no
    simulation charges, like a load phase before measurement).  [size_of]
    overrides the per-key value size for mixed-size workloads (ETC,
    Twitter); default is the fixed [value_size]. *)
let populate ?size_of ?owned t ~keyspace ~value_size =
  let size_of = match size_of with Some f -> f | None -> fun _ -> value_size in
  let owned = match owned with Some f -> f | None -> fun _ -> true in
  for k = 0 to keyspace - 1 do
    let key = Int64.of_int k in
    if owned key then begin
      let value = Mutps_net.Client.payload ~key ~size:(size_of key) in
      let item = Item.create t.slab ~value in
      t.index.Index.insert_silent key item
    end
  done
