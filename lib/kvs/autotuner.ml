module Engine = Mutps_sim.Engine
module Simthread = Mutps_sim.Simthread
module Hierarchy = Mutps_mem.Hierarchy

type params = {
  window : int;
  settle : int;
  cache_step : int;
  cache_points : int;
  auto_threshold : float;
}

let default_params =
  {
    (* 10 ms / 2 ms at 2.5 GHz *)
    window = 25_000_000;
    settle = 5_000_000;
    cache_step = 1_000;
    cache_points = 6;
    auto_threshold = infinity;
  }

type event = { at : int; ncr : int; hot : int; ways : int; rate : float }

type t = {
  params : params;
  kv : Mutps.t;
  mutable want_tune : bool;
  mutable tuning : bool;
  mutable tunes : int;
  mutable events : event list; (* newest first *)
  mutable applied : (int * int * int) option;
}

let create ?(params = default_params) kv =
  let t =
    {
      params;
      kv;
      want_tune = false;
      tuning = false;
      tunes = 0;
      events = [];
      applied = None;
    }
  in
  (match Mutps_trace.Metrics.current () with
  | None -> ()
  | Some reg ->
    let module M = Mutps_trace.Metrics in
    let eid = Engine.id (Mutps.backend kv).Backend.engine in
    M.register reg ~kind:M.Counter ~engine_id:eid ~subsystem:"autotuner"
      ~name:"tunes" (fun () -> float_of_int t.tunes);
    M.register reg ~kind:M.Gauge ~engine_id:eid ~subsystem:"autotuner"
      ~name:"tuning" (fun () -> if t.tuning then 1.0 else 0.0));
  t

let params t = t.params
let trigger t = t.want_tune <- true
let tuning t = t.tuning
let tunes_completed t = t.tunes
let events t = List.rev t.events
let last_applied t = t.applied

let engine t = (Mutps.backend t.kv).Backend.engine

let record t rate =
  t.events <-
    {
      at = Engine.now (engine t);
      ncr = Mutps.ncr t.kv;
      hot = Mutps.hot_target t.kv;
      ways = Mutps.mr_ways t.kv;
      rate;
    }
    :: t.events;
  (* each measurement window becomes a sample on a throughput counter
     track, so the tuner's search is visible on the timeline *)
  match Engine.tracer (engine t) with
  | None -> ()
  | Some tr ->
    tr.Engine.tr_counter ~time:(Engine.now (engine t))
      ~track:"autotuner.ops_per_cycle" ~value:rate

let measure t ctx =
  let r0 = Mutps.responded t.kv in
  Simthread.delay ctx t.params.window;
  let rate =
    float_of_int (Mutps.responded t.kv - r0) /. float_of_int t.params.window
  in
  record t rate;
  rate

let wait_settled t ctx =
  Simthread.delay ctx t.params.settle;
  let guard = ref 0 in
  while (not (Mutps.reconfig_settled t.kv)) && !guard < 1000 do
    Simthread.delay ctx (t.params.settle / 10);
    incr guard
  done

let apply_split t ctx ncr =
  if ncr <> Mutps.ncr t.kv then begin
    Mutps.set_split t.kv ~ncr;
    wait_settled t ctx
  end

(* Ternary (trisection) search for the argmax of [f] over [lo, hi],
   memoizing measurements — each one costs a full window of simulated
   time. *)
let trisect ~lo ~hi f =
  let cache = Hashtbl.create 8 in
  let eval x =
    match Hashtbl.find_opt cache x with
    | Some v -> v
    | None ->
      let v = f x in
      Hashtbl.replace cache x v;
      v
  in
  let lo = ref lo and hi = ref hi in
  while !hi - !lo > 2 do
    let third = (!hi - !lo) / 3 in
    let a = !lo + third and b = !hi - third in
    let b = if b = a then a + 1 else b in
    if eval a < eval b then lo := a + 1 else hi := b
  done;
  let best = ref !lo and best_v = ref (eval !lo) in
  for x = !lo + 1 to !hi do
    let v = eval x in
    if v > !best_v then begin
      best := x;
      best_v := v
    end
  done;
  (!best, !best_v)

let tune_pass t ctx =
  let cfg = (Mutps.backend t.kv).Backend.config in
  let cores = cfg.Config.cores in
  (* hierarchical search: for each cache size, find the best split *)
  let best = ref (-1.0, Mutps.ncr t.kv, Mutps.hot_target t.kv) in
  for i = 0 to t.params.cache_points - 1 do
    let hot = min (i * t.params.cache_step) cfg.Config.hot_k in
    Mutps.set_hot_target t.kv hot;
    Mutps.refresh_now t.kv;
    Simthread.delay ctx t.params.settle;
    let measure_split ncr =
      apply_split t ctx ncr;
      measure t ctx
    in
    let ncr, rate = trisect ~lo:1 ~hi:(cores - 1) measure_split in
    let best_rate, _, _ = !best in
    if rate > best_rate then best := (rate, ncr, hot)
  done;
  let _, best_ncr, best_hot = !best in
  Mutps.set_hot_target t.kv best_hot;
  Mutps.refresh_now t.kv;
  apply_split t ctx best_ncr;
  Simthread.delay ctx t.params.settle;
  (* LLC allocation is tuned independently (orthogonal effect) *)
  let max_ways = Hierarchy.llc_ways (Mutps.backend t.kv).Backend.hier in
  let measure_ways w =
    Mutps.set_mr_ways t.kv w;
    Simthread.delay ctx t.params.settle;
    measure t ctx
  in
  let best_ways, _ = trisect ~lo:1 ~hi:max_ways measure_ways in
  Mutps.set_mr_ways t.kv best_ways;
  t.applied <- Some (best_ncr, best_hot, best_ways);
  t.tunes <- t.tunes + 1;
  match Engine.tracer (engine t) with
  | None -> ()
  | Some tr ->
    tr.Engine.tr_instant ~tid:(Simthread.tr_id ctx)
      ~time:(Simthread.now ctx) ~name:"autotuner.apply"
      ~arg:
        (Printf.sprintf "ncr=%d hot=%d ways=%d" best_ncr best_hot best_ways)

let body t ctx =
  let prev_rate = ref nan in
  while true do
    if t.want_tune then begin
      t.want_tune <- false;
      t.tuning <- true;
      tune_pass t ctx;
      t.tuning <- false;
      prev_rate := nan
    end
    else begin
      let rate = measure t ctx in
      (* feedback loop: a significant shift in throughput means the load
         changed and the configuration should be re-explored *)
      (if Float.is_nan !prev_rate then prev_rate := rate
       else
         let base = Float.max !prev_rate 1e-12 in
         if
           Float.abs (rate -. !prev_rate) /. base > t.params.auto_threshold
           && rate > 0.0
         then t.want_tune <- true
         else prev_rate := rate)
    end
  done

let spawn t =
  Simthread.spawn (engine t) ~name:"autotuner" (fun ctx -> body t ctx)
