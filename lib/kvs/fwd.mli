(** Unit of CR→MR forwarding: the compact request plus completion fields
    the MR layer fills in.  Responses travel back by tail-pointer piggyback
    (§3.4): the MR thread never posts to the NIC, it records where in the
    CR worker's response buffer it put the data and the CR thread posts the
    send after reaping the completed batch.

    The mutable [resp_*] fields are registered shared-mutable state in the
    lint's R3 rule table: MR writes them before the completion store, CR
    may only read them after reaping (which commits). *)

type t = {
  seq : int;  (** rx slot sequence (the 32-bit [buf] field) *)
  cr : int;  (** owning CR worker (response buffer owner) *)
  msg : Mutps_net.Message.t;
  prefix : (int64 * Mutps_store.Item.t) list;
      (** scan cooperation: entries the CR layer already copied *)
  mutable resp_addr : int;
  mutable resp_bytes : int;
  mutable resp_value : bytes option;
}

val make :
  seq:int -> cr:int -> msg:Mutps_net.Message.t ->
  prefix:(int64 * Mutps_store.Item.t) list -> t

val ring_bytes : int
(** Bytes one forwarded request occupies on the CR-MR ring (§4). *)
