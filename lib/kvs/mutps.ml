module Simthread = Mutps_sim.Simthread
module Env = Mutps_mem.Env
module Hierarchy = Mutps_mem.Hierarchy
module Item = Mutps_store.Item
module Index = Mutps_index.Index_intf
module Request = Mutps_queue.Request
module Crmr = Mutps_queue.Crmr
module Hotcache = Mutps_hotset.Hotcache
module Tracker = Mutps_hotset.Tracker
module Transport = Mutps_net.Transport
module Message = Mutps_net.Message

type role = Cr | Mr

type t = {
  backend : Backend.t;
  rpc : Mutps_net.Reconf_rpc.t;
  transport : Transport.t;
  crmr : Fwd.t Crmr.t;
  hotcache : Hotcache.t;
  tracker : Tracker.t;
  desired : role array;
  current : role array;
  mutable cr_list : int array; (* threads currently in the CR role *)
  mutable mr_list : int array; (* threads currently in the MR role *)
  mutable target_ncr : int;
  mutable hot_target : int;
  mutable refresh_asap : bool;
  mutable mr_ways_ : int;
  mutable cr_hits : int;
  mutable forwarded : int;
  (* layer accounting: busy cycles and operations, for diagnostics *)
  mutable cr_busy : int;
  mutable mr_busy : int;
  mutable mr_ops : int;
  mutable mr_scans : int;
}

(* Without the auto-tuner, an even split is the robust default; tuned
   systems usually land between cores/2 and 2*cores/3 CR threads for
   read-heavy skew and lower for write-heavy (Figure 13a). *)
let default_ncr cores = max 1 (min (cores - 1) (cores / 2))

(* Metric sources over the accounting the server already keeps; pulled at
   dump time and sampled into counter tracks (crmr.in_flight is the ring
   occupancy track, hotcache.hit_rate the hot-cache one). *)
let register_metrics t =
  match Mutps_trace.Metrics.current () with
  | None -> ()
  | Some reg ->
    let module M = Mutps_trace.Metrics in
    let eid = Mutps_sim.Engine.id t.backend.Backend.engine in
    let counter subsystem name read =
      M.register reg ~kind:M.Counter ~engine_id:eid ~subsystem ~name
        (fun () -> float_of_int (read ()))
    in
    let gauge subsystem name read =
      M.register reg ~kind:M.Gauge ~engine_id:eid ~subsystem ~name
        (fun () -> read ())
    in
    counter "kvs" "cr_hits" (fun () -> t.cr_hits);
    counter "kvs" "forwarded" (fun () -> t.forwarded);
    counter "kvs" "cr_busy_cycles" (fun () -> t.cr_busy);
    counter "kvs" "mr_busy_cycles" (fun () -> t.mr_busy);
    counter "kvs" "mr_ops" (fun () -> t.mr_ops);
    counter "kvs" "mr_scans" (fun () -> t.mr_scans);
    gauge "kvs" "ncr" (fun () -> float_of_int t.target_ncr);
    gauge "kvs" "mr_ways" (fun () -> float_of_int t.mr_ways_);
    gauge "crmr" "in_flight" (fun () -> float_of_int (Crmr.in_flight t.crmr));
    gauge "hotcache" "size" (fun () -> float_of_int (Hotcache.size t.hotcache));
    gauge "hotcache" "target" (fun () -> float_of_int t.hot_target);
    gauge "hotcache" "hit_rate" (fun () ->
        let seen = t.cr_hits + t.forwarded in
        if seen = 0 then 0.0
        else float_of_int t.cr_hits /. float_of_int seen)

let create ?ncr (config : Config.t) =
  let cores = config.Config.cores in
  if cores < 2 then invalid_arg "Mutps.create: needs at least 2 worker cores";
  let ncr =
    match ncr with
    | Some n ->
      if n < 1 || n >= cores then invalid_arg "Mutps.create: bad ncr";
      n
    | None -> default_ncr cores
  in
  let backend = Backend.create config in
  let rpc =
    Mutps_net.Reconf_rpc.create ~engine:backend.Backend.engine
      ~hier:backend.Backend.hier ~layout:backend.Backend.layout
      ~link:backend.Backend.link ~max_workers:cores ~workers:ncr ()
  in
  let crmr =
    Crmr.create ~hw_offload:config.Config.dlb backend.Backend.layout
      ~max_cr:cores ~max_mr:cores ~slots:config.Config.crmr_slots
      ~batch:config.Config.batch ~value_bytes:Fwd.ring_bytes
  in
  let mode =
    match config.Config.index with
    | Config.Tree -> Hotcache.Sorted
    | Config.Hash -> Hotcache.Probed
  in
  let hotcache =
    Hotcache.create backend.Backend.layout ~mode
      ~max_items:(max config.Config.hot_k 1)
  in
  let tracker =
    Tracker.create ~sample_every:config.Config.sample_every
      ~seed:config.Config.seed ()
  in
  let t =
    {
      backend;
      rpc;
      transport = Mutps_net.Reconf_rpc.transport rpc;
      crmr;
      hotcache;
      tracker;
      desired = Array.init cores (fun w -> if w < ncr then Cr else Mr);
      current = Array.init cores (fun w -> if w < ncr then Cr else Mr);
      cr_list = [||];
      mr_list = [||];
      target_ncr = ncr;
      hot_target = config.Config.hot_k;
      refresh_asap = false;
      mr_ways_ = Hierarchy.llc_ways backend.Backend.hier;
      cr_hits = 0;
      forwarded = 0;
      cr_busy = 0;
      mr_busy = 0;
      mr_ops = 0;
      mr_scans = 0;
    }
  in
  t.cr_list <- Array.init ncr Fun.id;
  t.mr_list <- Array.init (cores - ncr) (fun i -> ncr + i);
  register_metrics t;
  t

let backend t = t.backend
let transport t = t.transport
let ncr t = t.target_ncr
let nmr t = t.backend.Backend.config.Config.cores - t.target_ncr
let hot_target t = t.hot_target
let hot_size t = Hotcache.size t.hotcache
let mr_ways t = t.mr_ways_
let cr_hits t = t.cr_hits
let forwarded t = t.forwarded
let layer_stats t = (t.cr_busy, t.mr_busy, t.mr_ops, t.mr_scans)
let responded t = Mutps_net.Reconf_rpc.responded t.rpc

let reconfig_settled t =
  (not (Mutps_net.Reconf_rpc.reconfig_in_progress t.rpc))
  && Array.for_all2 (fun a b -> a = b) t.desired t.current

(* --- role bookkeeping --- *)

let recompute_lists t =
  let crs = ref [] and mrs = ref [] in
  Array.iteri
    (fun w r -> match r with Cr -> crs := w :: !crs | Mr -> mrs := w :: !mrs)
    t.current;
  t.cr_list <- Array.of_list (List.rev !crs);
  t.mr_list <- Array.of_list (List.rev !mrs)

(* MR threads allocate into the rightmost [mr_ways] of the LLC; the CR
   layer and the manager keep the full mask (§3.5 "LLC allocation"). *)
let apply_clos t =
  let hier = t.backend.Backend.hier in
  let full = Hierarchy.full_llc_mask hier in
  let mr_mask = (1 lsl t.mr_ways_) - 1 in
  Array.iteri
    (fun w r ->
      Hierarchy.set_clos hier ~core:w
        (match r with Cr -> full | Mr -> mr_mask land full))
    t.current;
  Hierarchy.set_clos hier
    ~core:(Config.manager_core t.backend.Backend.config)
    full

let set_mr_ways t ways =
  let max_ways = Hierarchy.llc_ways t.backend.Backend.hier in
  if ways < 1 || ways > max_ways then invalid_arg "Mutps.set_mr_ways";
  t.mr_ways_ <- ways;
  apply_clos t

let set_split t ~ncr =
  let cores = t.backend.Backend.config.Config.cores in
  if ncr < 1 || ncr >= cores then invalid_arg "Mutps.set_split";
  if ncr <> t.target_ncr then begin
    t.target_ncr <- ncr;
    Array.iteri (fun w _ -> t.desired.(w) <- (if w < ncr then Cr else Mr)) t.desired;
    (* arm the transport switch at the predefined slot *)
    t.transport.Transport.set_workers ncr
  end

let set_hot_target t k =
  if k < 0 || k > t.backend.Backend.config.Config.hot_k then
    invalid_arg "Mutps.set_hot_target";
  t.hot_target <- k;
  t.refresh_asap <- true

let refresh_now t = t.refresh_asap <- true

(* targets a CR thread may push to: threads settled in the MR role *)
let push_targets t =
  Array.of_list
    (List.filter
       (fun w -> t.desired.(w) = Mr)
       (Array.to_list t.mr_list))

(* --- CR layer (§3.2.3 FSM) --- *)

type cr_state = {
  mutable pending : Fwd.t list; (* reversed accumulation buffer *)
  mutable pending_n : int;
  mutable oldest_at : int; (* when the oldest pending fwd was enqueued *)
}

let flush_pending t env w st =
  if st.pending_n > 0 then begin
    let batch = Array.of_list (List.rev st.pending) in
    let targets = push_targets t in
    if Array.length targets > 0 && Crmr.push t.crmr env ~cr:w ~targets batch
    then begin
      st.pending <- [];
      st.pending_n <- 0;
      if Env.tracing env then
        Env.counter env ~track:"crmr.in_flight"
          ~value:(float_of_int (Crmr.in_flight t.crmr));
      true
    end
    else begin
      (* every target ring is full: the CR layer stops polling rx *)
      if Env.tracing env then
        Env.instant env ~name:"crmr.backpressure"
          ~arg:(string_of_int st.pending_n);
      false
    end
  end
  else true

let enqueue t env w st fwd =
  if st.pending_n = 0 then st.oldest_at <- Env.now env;
  st.pending <- fwd :: st.pending;
  st.pending_n <- st.pending_n + 1;
  t.forwarded <- t.forwarded + 1;
  if st.pending_n >= t.backend.Backend.config.Config.batch then
    ignore (flush_pending t env w st)

(* serve a request entirely at the CR layer *)
let cr_hot_get t env w ~seq item =
  t.cr_hits <- t.cr_hits + 1;
  Exec.respond_item env t.transport ~worker:w ~seq item

let cr_hot_put t env w ~seq (msg : Message.t) item =
  t.cr_hits <- t.cr_hits + 1;
  let value = Option.get msg.Message.value in
  Env.load env
    ~addr:(t.transport.Transport.slot_addr seq + 16)
    ~size:(Bytes.length value);
  Item.write env item value t.backend.Backend.slab;
  Exec.respond_ack env t.transport ~worker:w ~seq

let cr_reap t env w =
  let progressed = ref false in
  let continue = ref true in
  while !continue do
    match Crmr.take_completed t.crmr env ~cr:w with
    | Some batch ->
      progressed := true;
      Array.iter
        (fun (fwd : Fwd.t) ->
          t.transport.Transport.post_response env ~seq:fwd.Fwd.seq
            ~resp_addr:fwd.Fwd.resp_addr ~bytes:fwd.Fwd.resp_bytes
            ~value:fwd.Fwd.resp_value)
        batch
    | None -> continue := false
  done;
  !progressed

let cr_step t env w st =
  let cfg = t.backend.Backend.config in
  let progressed = ref (cr_reap t env w) in
  (* backpressure: with a full pending batch that will not flush (MR rings
     full), stop polling the rx queue rather than overrun the batch *)
  if st.pending_n >= cfg.Config.batch && not (flush_pending t env w st) then ()
  else begin
    match t.transport.Transport.poll env ~worker:w with
  | Some (seq, msg) ->
    progressed := true;
    Env.compute env cfg.Config.parse_cycles;
    let req = msg.Message.req in
    let key = req.Request.key in
    Tracker.record t.tracker key;
    (match req.Request.kind with
    | Request.Get -> (
      match Hotcache.find t.hotcache env key with
      | Some item -> cr_hot_get t env w ~seq item
      | None -> enqueue t env w st (Fwd.make ~seq ~cr:w ~msg ~prefix:[]))
    | Request.Put -> (
      match Hotcache.find t.hotcache env key with
      | Some item -> cr_hot_put t env w ~seq msg item
      | None -> enqueue t env w st (Fwd.make ~seq ~cr:w ~msg ~prefix:[]))
    | Request.Delete -> enqueue t env w st (Fwd.make ~seq ~cr:w ~msg ~prefix:[])
    | Request.Scan ->
      (* cooperative scan: copy what the cache already holds, forward the
         rest of the work (§4) *)
      let prefix =
        match Hotcache.mode t.hotcache with
        | Hotcache.Sorted ->
          let cached =
            Hotcache.cached_range t.hotcache env ~lo:key
              ~n:req.Request.scan_count
          in
          List.iter
            (fun (_, item) ->
              let v = Item.read env item in
              ignore (Bytes.length v))
            cached;
          cached
        | Hotcache.Probed -> []
      in
      enqueue t env w st (Fwd.make ~seq ~cr:w ~msg ~prefix))
  | None ->
    (* one-shot poll found nothing: flush a partial batch only once it has
       waited long enough — keeping batches full is what amortizes the
       CR-MR queue and the MR layer's prefetch overlap *)
    if
      st.pending_n > 0
      && Env.now env - st.oldest_at >= cfg.Config.flush_cycles
      && flush_pending t env w st
    then progressed := true
  end;
  !progressed

(* --- MR layer (§3.3) --- *)

let mr_prepare_get t env ~mr (fwd : Fwd.t) item_opt =
  match item_opt with
  | Some item ->
    let value = Item.read env item in
    let bytes = Exec.ack_bytes + Bytes.length value in
    (* responses are written into the MR thread's own response buffer so
       the CR layer's buffer lines are never dirtied cross-core (§3.3:
       the CR layer never touches MR-written responses, the NIC does) *)
    let resp_addr = t.transport.Transport.resp_alloc ~worker:mr ~bytes in
    Env.store env ~addr:resp_addr ~size:bytes;
    fwd.Fwd.resp_addr <- resp_addr;
    fwd.Fwd.resp_bytes <- bytes;
    fwd.Fwd.resp_value <- Some value
  | None ->
    let resp_addr =
      t.transport.Transport.resp_alloc ~worker:mr ~bytes:Exec.ack_bytes
    in
    Env.store env ~addr:resp_addr ~size:Exec.ack_bytes;
    fwd.Fwd.resp_addr <- resp_addr;
    fwd.Fwd.resp_bytes <- Exec.ack_bytes

let mr_prepare_ack t env ~mr (fwd : Fwd.t) =
  let resp_addr =
    t.transport.Transport.resp_alloc ~worker:mr ~bytes:Exec.ack_bytes
  in
  Env.store env ~addr:resp_addr ~size:Exec.ack_bytes;
  fwd.Fwd.resp_addr <- resp_addr;
  fwd.Fwd.resp_bytes <- Exec.ack_bytes

let mr_prepare_put t env ~mr (fwd : Fwd.t) item_opt =
  let msg = fwd.Fwd.msg in
  let value = Option.get msg.Message.value in
  (* data copied straight from the rx slot, not through the CR-MR queue *)
  Env.load env
    ~addr:(t.transport.Transport.slot_addr fwd.Fwd.seq + 16)
    ~size:(Bytes.length value);
  (match item_opt with
  | Some item -> Item.write env item value t.backend.Backend.slab
  | None ->
    let item = Item.create t.backend.Backend.slab ~value in
    t.backend.Backend.index.Index.insert env msg.Message.req.Request.key item);
  mr_prepare_ack t env ~mr fwd

let mr_prepare_scan t env ~mr (fwd : Fwd.t) =
  let req = fwd.Fwd.msg.Message.req in
  let count = req.Request.scan_count in
  let prefix_keys = List.map fst fwd.Fwd.prefix in
  let rest =
    t.backend.Backend.index.Index.range env ~lo:req.Request.key ~n:count
  in
  let copied = ref 0 and bytes = ref Exec.ack_bytes in
  List.iter
    (fun (_, item) ->
      (* CR already copied these; count their bytes only *)
      if !copied < count then begin
        bytes := !bytes + 16 + Item.size item;
        incr copied
      end)
    fwd.Fwd.prefix;
  List.iter
    (fun (k, item) ->
      if !copied < count && not (List.mem k prefix_keys) then begin
        (* skip the read for items the cache layer handled *)
        if Hotcache.mem_silent t.hotcache k then
          bytes := !bytes + 16 + Item.size item
        else begin
          let v = Item.read env item in
          bytes := !bytes + 16 + Bytes.length v
        end;
        incr copied
      end)
    rest;
  let alloc = min !bytes 32_768 in
  let resp_addr = t.transport.Transport.resp_alloc ~worker:mr ~bytes:alloc in
  Env.store env ~addr:resp_addr ~size:alloc;
  fwd.Fwd.resp_addr <- resp_addr;
  fwd.Fwd.resp_bytes <- !bytes

let mr_step t env w =
  match Crmr.next_batch t.crmr env ~mr:w ~sources:t.cr_list with
  | None -> false
  | Some (cr, batch) ->
    let index = t.backend.Backend.index in
    (* batched prefetch-overlapped indexing over the point ops.  Point
       ops keep their batch order, so lookup results align positionally
       with a second walk over the batch — no per-batch key table.  (The
       tree is not mutated between the lookups and the prepares, so a
       key appearing twice locates the same item either way.) *)
    let is_point (fwd : Fwd.t) =
      match fwd.Fwd.msg.Message.req.Request.kind with
      | Request.Get | Request.Put -> true
      | Request.Delete | Request.Scan -> false
    in
    let n_point =
      Array.fold_left (fun c fwd -> if is_point fwd then c + 1 else c) 0 batch
    in
    let point_keys = Array.make n_point 0L in
    let k = ref 0 in
    Array.iter
      (fun (fwd : Fwd.t) ->
        if is_point fwd then begin
          point_keys.(!k) <- fwd.Fwd.msg.Message.req.Request.key;
          incr k
        end)
      batch;
    let located = index.Index.batch_lookup env point_keys in
    (* overlap the data-item fetches too (§3.3: batching covers the copy
       stage's cache misses as well) *)
    let n_addr =
      Array.fold_left
        (fun c item -> match item with Some _ -> c + 1 | None -> c)
        0 located
    in
    if n_addr > 0 then begin
      let item_addrs = Array.make n_addr 0 in
      let k = ref 0 in
      Array.iter
        (fun item ->
          match item with
          | Some it ->
            item_addrs.(!k) <- Item.addr it;
            incr k
          | None -> ())
        located;
      Env.prefetch_batch env item_addrs
    end;
    let k = ref 0 in
    Array.iter
      (fun (fwd : Fwd.t) ->
        let req = fwd.Fwd.msg.Message.req in
        let key = req.Request.key in
        match req.Request.kind with
        | Request.Get ->
          let item = located.(!k) in
          incr k;
          mr_prepare_get t env ~mr:w fwd item
        | Request.Put ->
          let item = located.(!k) in
          incr k;
          mr_prepare_put t env ~mr:w fwd item
        | Request.Delete ->
          ignore (index.Index.remove env key);
          mr_prepare_ack t env ~mr:w fwd
        | Request.Scan -> mr_prepare_scan t env ~mr:w fwd)
      batch;
    (* tail-pointer advance = completion signal (§3.4) *)
    Crmr.complete t.crmr env ~cr ~mr:w;
    t.mr_ops <- t.mr_ops + Array.length batch;
    t.mr_scans <- t.mr_scans + 1;
    true

(* --- role transitions (§3.5 thread reassignment) --- *)

(* A role switch is only considered right after a step that made no
   progress: for a departing CR thread that means its rx slots below the
   switch point are consumed (the transport returns None past it), nothing
   is pending, and every forwarded batch has come back and been answered;
   a joining CR thread additionally waits for the transport switch to
   commit (all old CR threads crossed the predefined slot) and for its
   consumer rings to drain.  Crucially the check itself never consumes a
   message. *)
let try_switch_when_idle t env w st =
  match (t.current.(w), t.desired.(w)) with
  | Cr, Mr ->
    if
      st.pending_n = 0
      && (not (cr_reap t env w))
      && Crmr.cr_drained t.crmr ~cr:w
    then begin
      t.current.(w) <- Mr;
      recompute_lists t;
      apply_clos t;
      Env.instant env ~name:"role.switch" ~arg:"cr->mr"
    end
  | Mr, Cr ->
    if
      (not (t.transport.Transport.reconfig_in_progress ()))
      && Crmr.mr_drained t.crmr ~mr:w
    then begin
      t.current.(w) <- Cr;
      recompute_lists t;
      apply_clos t;
      Env.instant env ~name:"role.switch" ~arg:"mr->cr"
    end
  | Cr, Cr | Mr, Mr -> ()

let worker_body t w ctx =
  let cfg = t.backend.Backend.config in
  let env = Env.make ~ctx ~hier:t.backend.Backend.hier ~core:w in
  let st = { pending = []; pending_n = 0; oldest_at = 0 } in
  (* hoisted: the empty-poll path runs millions of times per worker and
     must not allocate a fresh idle thunk each iteration *)
  let idle_thunk () = Env.compute env cfg.Config.poll_idle_cycles in
  while true do
    let before = Simthread.now ctx in
    let progressed =
      match t.current.(w) with
      | Cr -> cr_step t env w st
      | Mr -> mr_step t env w
    in
    if not progressed then begin
      if t.desired.(w) <> t.current.(w) then try_switch_when_idle t env w st;
      (* attribute the poll backoff to an "idle" site so the profile
         separates wasted polls from useful work *)
      Env.tagged env "idle" idle_thunk;
      Simthread.commit ctx
    end
    else begin
      Simthread.commit ctx;
      let spent = Simthread.now ctx - before in
      match t.current.(w) with
      | Cr -> t.cr_busy <- t.cr_busy + spent
      | Mr -> t.mr_busy <- t.mr_busy + spent
    end
  done

(* --- manager thread (§3.2.2 hot-set refresh) --- *)

let refresh_hotset t env =
  Env.tagged env "Mutps.refresh_hotset" @@ fun () ->
  let hot_obj = Hotcache.sync_obj t.hotcache env in
  let k = min t.hot_target t.backend.Backend.config.Config.hot_k in
  if k = 0 then begin
    Env.acquire env hot_obj;
    Hotcache.publish t.hotcache [||];
    Env.release env hot_obj
  end
  else begin
    let top = Tracker.rebuild t.tracker ~k in
    let entries = ref [] in
    Array.iter
      (fun (key, _count) ->
        match t.backend.Backend.index.Index.lookup env key with
        | Some item -> entries := (key, item) :: !entries
        | None -> ())
      top;
    let entries = Array.of_list (List.rev !entries) in
    (* building the new cache writes its region; bracket the rewrite with
       the cache's sync object so lookups in flight before this slice are
       happens-before ordered with it (the epoch switch of §3.2.2) *)
    Env.acquire env hot_obj;
    Env.store env ~addr:(Hotcache.region_base t.hotcache)
      ~size:(max 64 (Array.length entries * 16));
    Hotcache.publish t.hotcache entries;
    Env.release env hot_obj;
    if Env.tracing env then
      Env.instant env ~name:"hotset.refresh"
        ~arg:(string_of_int (Array.length entries))
  end

let manager_body t ctx =
  let cfg = t.backend.Backend.config in
  let env =
    Env.make ~ctx ~hier:t.backend.Backend.hier ~core:(Config.manager_core cfg)
  in
  let slice = max 1 (cfg.Config.refresh_cycles / 32) in
  let elapsed = ref 0 in
  while true do
    Simthread.delay ctx slice;
    elapsed := !elapsed + slice;
    if t.refresh_asap || !elapsed >= cfg.Config.refresh_cycles then begin
      t.refresh_asap <- false;
      elapsed := 0;
      refresh_hotset t env
    end
  done

let start t =
  apply_clos t;
  for w = 0 to t.backend.Backend.config.Config.cores - 1 do
    Simthread.spawn t.backend.Backend.engine
      ~name:(Printf.sprintf "mutps-%d" w)
      (worker_body t w)
  done;
  Simthread.spawn t.backend.Backend.engine ~name:"mutps-manager"
    (manager_body t)
