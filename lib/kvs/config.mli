(** Server configuration shared by every system (μTPS, BaseKV, eRPC-KV).

    The simulated machine gets [cores + 1] cores: [cores] worker cores (the
    paper's 28) plus one housekeeping core for the management/auto-tuning
    thread, which all systems receive for fairness even when they leave it
    idle. *)

type index_kind = Hash | Tree

type t = {
  cores : int;  (** worker cores *)
  index : index_kind;
  capacity : int;  (** expected item count (sizes the index) *)
  geometry : Mutps_mem.Hierarchy.geometry option;
      (** cache geometry override; [None] = the testbed's 42 MB LLC.
          Scaled-down experiments shrink the LLC to keep the paper's
          footprint-to-LLC ratio (a 10M-item store vs 42 MB). *)
  costs : Mutps_mem.Costs.t;
  link : Mutps_net.Link.config;
  parse_cycles : int;  (** request header parse / dispatch *)
  rtc_extra_cycles : int;
      (** per-request front-end overhead of run-to-completion workers
          (§2.2.1's replay experiment); 0 to ablate *)
  poll_idle_cycles : int;  (** backoff when a poll finds nothing *)
  batch : int;  (** CR-MR batch size; also the RTC pipeline batch *)
  flush_cycles : int;
      (** max time a partially filled CR-MR batch may wait before being
          pushed *)
  crmr_slots : int;  (** ring slots per CR-MR pair *)
  dlb : bool;  (** offload the CR-MR queue to a DLB-style hardware queue *)
  hot_k : int;  (** hot-cache capacity (items) *)
  sample_every : int;  (** hot-set sampling rate *)
  refresh_cycles : int;  (** hot-set refresh period *)
  seed : int;
}

val default : ?cores:int -> ?index:index_kind -> capacity:int -> unit -> t

val total_cores : t -> int
(** Worker cores plus the housekeeping core. *)

val manager_core : t -> int

val scaled_geometry :
  cores:int -> keyspace:int -> Mutps_mem.Hierarchy.geometry
(** Cache geometry scaled to a store of [keyspace] items: the paper runs
    10M items against a 42 MB LLC (~70× overflow); a scaled run keeps that
    pressure by shrinking LLC and L2 proportionally (LLC floor 2 MB). *)

val pp_index : Format.formatter -> index_kind -> unit
