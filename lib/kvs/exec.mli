(** Shared per-operation execution: locate/copy/respond sequences used by
    the run-to-completion baselines and by both μTPS layers.  All memory
    traffic is charged through the worker's {!Mutps_mem.Env}. *)

(** [Locked] uses the seqlock protocol (share-everything); [Exclusive]
    skips it (share-nothing: the owning thread is the only writer). *)
type lock_mode = Locked | Exclusive

val ack_bytes : int
(** Fixed response-header size. *)

val respond_item :
  Mutps_mem.Env.t -> Mutps_net.Transport.t -> worker:int -> seq:int ->
  Mutps_store.Item.t -> unit
(** Copy an item to a fresh response-buffer slot and answer the request. *)

val respond_missing :
  Mutps_mem.Env.t -> Mutps_net.Transport.t -> worker:int -> seq:int -> unit

val respond_ack :
  Mutps_mem.Env.t -> Mutps_net.Transport.t -> worker:int -> seq:int -> unit

val do_get :
  Mutps_mem.Env.t -> Mutps_net.Transport.t -> worker:int -> seq:int ->
  Mutps_store.Item.t option -> unit

val do_put :
  Mutps_mem.Env.t -> Mutps_net.Transport.t -> lock:lock_mode ->
  index:Mutps_index.Index_intf.t -> slab:Mutps_store.Slab.t -> worker:int ->
  seq:int -> Mutps_net.Message.t -> Mutps_store.Item.t option -> unit
(** A put reads its payload from the rx slot (it was DMAed there), updates
    or creates the item, and acks. *)

val do_delete :
  Mutps_mem.Env.t -> Mutps_net.Transport.t ->
  index:Mutps_index.Index_intf.t -> worker:int -> seq:int -> int64 -> unit

val do_scan :
  Mutps_mem.Env.t -> Mutps_net.Transport.t ->
  index:Mutps_index.Index_intf.t -> worker:int -> seq:int -> key:int64 ->
  count:int -> ?skip:(int64 -> bool) ->
  ?prefix:(int64 * Mutps_store.Item.t) list -> unit -> unit
(** Range scan: [prefix] carries entries already copied by the CR layer
    (cooperative scans, §4); [skip] marks keys whose items need not be read
    again.  The response carries every returned item. *)
