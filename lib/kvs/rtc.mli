(** Run-to-completion worker pool: each worker handles its requests start
    to finish (poll → parse → index → data → respond), with batching and
    prefetching enabled, matching the paper's BaseKV.  Parameterized by
    transport and lock mode, this pool is both BaseKV (reconfigurable RPC +
    share-everything locking) and eRPC-KV (eRPC + share-nothing exclusive
    writes). *)

type stats = { mutable ops : int; mutable batches : int }

val start :
  Backend.t -> Mutps_net.Transport.t -> lock:Exec.lock_mode ->
  workers:int -> stats array
(** Spawn [workers] RTC worker threads; returns one live stats record per
    worker. *)
