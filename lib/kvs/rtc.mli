(** Run-to-completion worker pool: each worker handles its requests start
    to finish (poll → parse → index → data → respond), with batching and
    prefetching enabled, matching the paper's BaseKV.  Parameterized by
    transport and lock mode, this pool is both BaseKV (reconfigurable RPC +
    share-everything locking) and eRPC-KV (eRPC + share-nothing exclusive
    writes) — and, via {!substrate}, the native backend's per-shard worker
    (mutps.native): same loop, fibers instead of simulated threads. *)

type stats = { mutable ops : int; mutable batches : int }

type substrate = {
  make_env : Mutps_sim.Simthread.ctx -> core:int -> Mutps_mem.Env.t;
  idle : Mutps_sim.Simthread.ctx -> unit;
  flush : Mutps_sim.Simthread.ctx -> unit;
}
(** The execution-substrate seam: how the worker builds its environment,
    waits when the transport is empty, and closes a batch.  The default
    (simulated) substrate charges/commits simulated cycles; the native one
    yields its fiber and checks for shutdown (it may raise to unwind the
    loop). *)

val sim_substrate : Config.t -> hier:Mutps_mem.Hierarchy.t -> substrate

val make_stats : unit -> stats

val worker_body :
  ?substrate:substrate -> Backend.t -> Mutps_net.Transport.t ->
  lock:Exec.lock_mode -> worker:int -> stats -> Mutps_sim.Simthread.ctx ->
  unit
(** One worker's infinite poll/execute loop.  Under the default substrate
    it must run as a simulated thread; under a native substrate it runs as
    a fiber and exits by the substrate raising (e.g. at server shutdown). *)

val start :
  Backend.t -> Mutps_net.Transport.t -> lock:Exec.lock_mode ->
  workers:int -> stats array
(** Spawn [workers] RTC worker threads; returns one live stats record per
    worker. *)
