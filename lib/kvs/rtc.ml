(** Run-to-completion worker pool: each worker handles its requests start
    to finish (poll → parse → index → data → respond).  Batching and
    prefetching are enabled (the worker drains up to [batch] requests and
    indexes them together), matching the paper's BaseKV ("optimizations
    such as reconfigurable RPC, batching, and prefetching are enabled").

    Parameterized by transport and lock mode, this pool is both BaseKV
    (reconfigurable RPC + share-everything locking) and eRPC-KV (eRPC +
    share-nothing exclusive writes). *)

module Env = Mutps_mem.Env
module Simthread = Mutps_sim.Simthread
module Request = Mutps_queue.Request
module Transport = Mutps_net.Transport
module Message = Mutps_net.Message
module Index = Mutps_index.Index_intf

type stats = { mutable ops : int; mutable batches : int }

(* How a worker behaves between requests — the execution-substrate seam.
   Under the DES, idling advances the simulated clock and batch boundaries
   flush the cycle accumulator.  The native backend substitutes fiber
   yields (and a stop check) for both, so the very same loop serves real
   sockets on real domains. *)
type substrate = {
  make_env : Mutps_sim.Simthread.ctx -> core:int -> Env.t;
  idle : Mutps_sim.Simthread.ctx -> unit;  (** nothing polled *)
  flush : Mutps_sim.Simthread.ctx -> unit;  (** end of a batch *)
}

let sim_substrate (cfg : Config.t) ~hier =
  {
    make_env = (fun ctx ~core -> Env.make ~ctx ~hier ~core);
    idle = (fun ctx -> Simthread.delay ctx cfg.Config.poll_idle_cycles);
    flush = (fun ctx -> Simthread.commit ctx);
  }

let make_stats () = { ops = 0; batches = 0 }

let worker_body ?substrate (backend : Backend.t) (tr : Transport.t) ~lock
    ~worker (stats : stats) ctx =
  let cfg = backend.Backend.config in
  let sub =
    match substrate with
    | Some s -> s
    | None -> sim_substrate cfg ~hier:backend.Backend.hier
  in
  let env = sub.make_env ctx ~core:worker in
  let index = backend.Backend.index in
  let polled = Array.make cfg.Config.batch None in
  while true do
    (* drain up to a batch of requests from our slots *)
    let n = ref 0 in
    let continue = ref true in
    while !continue && !n < cfg.Config.batch do
      match tr.Transport.poll env ~worker with
      | Some (seq, msg) ->
        Env.compute env (cfg.Config.parse_cycles + cfg.Config.rtc_extra_cycles);
        polled.(!n) <- Some (seq, msg);
        incr n
      | None -> continue := false
    done;
    if !n = 0 then sub.idle ctx
    else begin
      stats.batches <- stats.batches + 1;
      stats.ops <- stats.ops + !n;
      (* batched index lookup over the point-op keys *)
      let point_keys =
        Array.to_list (Array.sub polled 0 !n)
        |> List.filter_map (fun p ->
               match p with
               | Some (_, (msg : Message.t))
                 when msg.Message.req.Request.kind <> Request.Scan ->
                 Some msg.Message.req.Request.key
               | Some _ | None -> None)
        |> Array.of_list
      in
      let located = index.Index.batch_lookup env point_keys in
      let by_key = Hashtbl.create 16 in
      Array.iteri
        (fun i key -> Hashtbl.replace by_key key located.(i))
        point_keys;
      (* prefetch the located items before the copy stage (the paper's
         BaseKV has batching and prefetching enabled) *)
      let item_addrs =
        Array.of_list
          (List.filter_map
             (fun item -> Option.map Mutps_store.Item.addr item)
             (Array.to_list located))
      in
      if Array.length item_addrs > 0 then Env.prefetch_batch env item_addrs;
      for i = 0 to !n - 1 do
        match polled.(i) with
        | None -> assert false
        | Some (seq, msg) -> (
          let req = msg.Message.req in
          let key = req.Request.key in
          match req.Request.kind with
          | Request.Get ->
            Exec.do_get env tr ~worker ~seq
              (Option.join (Hashtbl.find_opt by_key key))
          | Request.Put ->
            Exec.do_put env tr ~lock ~index ~slab:backend.Backend.slab ~worker
              ~seq msg
              (Option.join (Hashtbl.find_opt by_key key))
          | Request.Delete -> Exec.do_delete env tr ~index ~worker ~seq key
          | Request.Scan ->
            Exec.do_scan env tr ~index ~worker ~seq ~key
              ~count:req.Request.scan_count ())
      done;
      sub.flush ctx
    end
  done

let start backend tr ~lock ~workers =
  let stats = Array.init workers (fun _ -> make_stats ()) in
  for w = 0 to workers - 1 do
    Simthread.spawn backend.Backend.engine
      ~name:(Printf.sprintf "rtc-%d" w)
      (worker_body backend tr ~lock ~worker:w stats.(w))
  done;
  stats
