(** Shared per-operation execution: locate/copy/respond sequences used by
    the run-to-completion baselines and by both μTPS layers.  All memory
    traffic is charged through the worker's {!Mutps_mem.Env}. *)

module Env = Mutps_mem.Env
module Item = Mutps_store.Item
module Index = Mutps_index.Index_intf
module Request = Mutps_queue.Request
module Transport = Mutps_net.Transport
module Message = Mutps_net.Message

(** [Locked] uses the seqlock protocol (share-everything); [Exclusive]
    skips it (share-nothing: the owning thread is the only writer). *)
type lock_mode = Locked | Exclusive

let ack_bytes = 16

(* Copy an item to a fresh response-buffer slot and answer the request. *)
let respond_item env (tr : Transport.t) ~worker ~seq item =
  let value = Item.read env item in
  let bytes = ack_bytes + Bytes.length value in
  let resp_addr = tr.Transport.resp_alloc ~worker ~bytes in
  Env.tagged env "Exec.respond_item" (fun () ->
      Env.store env ~addr:resp_addr ~size:bytes);
  tr.Transport.post_response env ~seq ~resp_addr ~bytes ~value:(Some value)

let respond_missing env (tr : Transport.t) ~worker ~seq =
  let resp_addr = tr.Transport.resp_alloc ~worker ~bytes:ack_bytes in
  Env.tagged env "Exec.respond_missing" (fun () ->
      Env.store env ~addr:resp_addr ~size:ack_bytes);
  tr.Transport.post_response env ~seq ~resp_addr ~bytes:ack_bytes ~value:None

let respond_ack = respond_missing

let do_get env tr ~worker ~seq item_opt =
  match item_opt with
  | Some item -> respond_item env tr ~worker ~seq item
  | None -> respond_missing env tr ~worker ~seq

(* A put reads its payload from the rx slot (it was DMAed there), updates
   or creates the item, and acks. *)
let do_put env tr ~lock ~index ~slab ~worker ~seq (msg : Message.t) item_opt =
  let value =
    match msg.Message.value with
    | Some v -> v
    | None -> invalid_arg "Exec.do_put: put without payload"
  in
  (* fetch the payload bytes from the network buffer *)
  let payload_addr = tr.Transport.slot_addr seq + 16 in
  Env.tagged env "Exec.do_put" (fun () ->
      Env.load env ~addr:payload_addr ~size:(Bytes.length value));
  (match item_opt with
  | Some item -> (
    match lock with
    | Locked -> Item.write env item value slab
    | Exclusive -> Item.write_exclusive env item value slab)
  | None ->
    let item = Item.create slab ~value in
    index.Index.insert env msg.Message.req.Request.key item);
  respond_ack env tr ~worker ~seq

let do_delete env tr ~index ~worker ~seq key =
  ignore (index.Index.remove env key);
  respond_ack env tr ~worker ~seq

(* Range scan: [prefix] carries entries already copied by the CR layer
   (cooperative scans, §4); [skip] marks keys whose items need not be read
   again.  The response carries every returned item. *)
let do_scan env tr ~index ~worker ~seq ~key ~count ?(skip = fun _ -> false)
    ?(prefix = []) () =
  let wanted = count - List.length prefix in
  let rest = if wanted > 0 then index.Index.range env ~lo:key ~n:count else [] in
  let copied = ref 0 and bytes = ref ack_bytes in
  let add_item (k, item) =
    if !copied < count then begin
      if not (skip k) then begin
        let v = Item.read env item in
        bytes := !bytes + 16 + Bytes.length v
      end
      else bytes := !bytes + 16 + Item.size item;
      incr copied
    end
  in
  List.iter add_item prefix;
  (* avoid double-counting keys present in both prefix and index walk *)
  let prefix_keys = List.map fst prefix in
  List.iter
    (fun (k, item) ->
      if not (List.mem k prefix_keys) then add_item (k, item))
    rest;
  let resp_addr = tr.Transport.resp_alloc ~worker ~bytes:(min !bytes 32_768) in
  Env.tagged env "Exec.do_scan" (fun () ->
      Env.store env ~addr:resp_addr ~size:(min !bytes 32_768));
  tr.Transport.post_response env ~seq ~resp_addr ~bytes:!bytes ~value:None
