(** Shared server substrate: one simulated machine (engine + hierarchy +
    address layout), the item store, the index, and the network link.
    Every system (μTPS-H/T, BaseKV, eRPC-KV) is assembled on top of one of
    these. *)

type t = {
  config : Config.t;
  engine : Mutps_sim.Engine.t;
  hier : Mutps_mem.Hierarchy.t;
  layout : Mutps_mem.Layout.t;
  slab : Mutps_store.Slab.t;
  index : Mutps_index.Index_intf.t;
  link : Mutps_net.Link.t;
}

val create : Config.t -> t

val populate :
  ?size_of:(int64 -> int) -> ?owned:(int64 -> bool) -> t -> keyspace:int ->
  value_size:int -> unit
(** Pre-populate the store with every key in [\[0, keyspace)] (silent: no
    simulation charges, like a load phase before measurement).  [size_of]
    overrides the per-key value size for mixed-size workloads (ETC,
    Twitter); default is the fixed [value_size].  [owned] restricts the
    load to a key subset — the native backend's share-nothing shards each
    populate only the keys they route (default: everything). *)
