type t = {
  backend : Backend.t;
  transport : Mutps_net.Transport.t;
  mutable stats : Rtc.stats array;
}

let create (config : Config.t) =
  let backend = Backend.create config in
  let erpc =
    Mutps_net.Erpc.create ~engine:backend.Backend.engine
      ~hier:backend.Backend.hier ~layout:backend.Backend.layout
      ~link:backend.Backend.link ~workers:config.Config.cores ()
  in
  { backend; transport = Mutps_net.Erpc.transport erpc; stats = [||] }

let backend t = t.backend
let transport t = t.transport

let dispatch t op =
  Mutps_net.Client.mod_key_dispatch
    ~workers:t.backend.Backend.config.Config.cores op

let start t =
  t.stats <-
    Rtc.start t.backend t.transport ~lock:Exec.Exclusive
      ~workers:t.backend.Backend.config.Config.cores

let ops_processed t =
  Array.fold_left (fun acc (s : Rtc.stats) -> acc + s.Rtc.ops) 0 t.stats
