(** Reconfigurable RPC (§3.2.1): a single-queue receive buffer shared by
    all worker threads.

    The NIC appends every client's requests to one byte ring (SRQ + MP-RQ
    semantics) and DMA-writes them through DDIO; worker [i] of [n] claims
    exactly the slots with sequence [m mod n = i].  Changing the worker
    count is a server-local operation: {!set_workers} arms a switch at the
    current write position (the "predefined slot" of §3.5) — slots below it
    are claimed under the old modulus, slots at or above under the new one,
    and no client coordination happens.  Each worker also owns a small
    response buffer that is reused across batches. *)

type t

type config = {
  ring_bytes : int;  (** rx ring capacity (default 4 MB — sized to the LLC) *)
  resp_buf_bytes : int;  (** per-worker response buffer (default 64 KB) *)
  doorbell_cycles : int;  (** MMIO cost of posting a send *)
}

val default_config : config

val create :
  ?config:config ->
  engine:Mutps_sim.Engine.t ->
  hier:Mutps_mem.Hierarchy.t ->
  layout:Mutps_mem.Layout.t ->
  link:Link.t ->
  max_workers:int ->
  workers:int ->
  unit ->
  t

val transport : t -> Transport.t

val workers : t -> int
val set_workers : t -> int -> unit
val reconfig_in_progress : t -> bool

val delivered : t -> int
val responded : t -> int
val outstanding : t -> int

val ring_base : t -> int
val ring_bytes : t -> int
