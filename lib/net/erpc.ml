module Engine = Mutps_sim.Engine
module Env = Mutps_mem.Env
module Layout = Mutps_mem.Layout
module Hierarchy = Mutps_mem.Hierarchy

type config = { ring_bytes : int; resp_buf_bytes : int; doorbell_cycles : int }

let default_config =
  { ring_bytes = 1024 * 1024; resp_buf_bytes = 64 * 1024; doorbell_cycles = 25 }

type slot = {
  addr : int;
  len : int;
  msg : Message.t;
  mutable responded : bool;
}

type ring = {
  base : int;
  head_addr : int;
  mutable write_seq : int;
  mutable write_off : int;
  mutable cursor : int;
  mutable outstanding_bytes : int;
}

(* slot seqs are globally unique: seq = per_ring_seq * workers + worker *)
type t = {
  config : config;
  engine : Engine.t;
  hier : Hierarchy.t;
  link : Link.t;
  workers : int;
  rings : ring array;
  resp_base : int array;
  resp_cursor : int array;
  slots : (int, slot) Hashtbl.t;
  mutable on_response : (Message.t -> bytes option -> unit) option;
  mutable outstanding : int;
  mutable delivered : int;
}

let create ?(config = default_config) ~engine ~hier ~layout ~link ~workers () =
  if workers <= 0 then invalid_arg "Erpc.create";
  let mk_ring i =
    let region =
      Layout.region layout
        ~name:(Printf.sprintf "erpc-rx-%d" i)
        ~size:(config.ring_bytes + Layout.line_bytes)
    in
    let head_addr = Layout.alloc region ~align:64 8 in
    let base = Layout.alloc region ~align:64 config.ring_bytes in
    { base; head_addr; write_seq = 0; write_off = 0; cursor = 0; outstanding_bytes = 0 }
  in
  let resp_region =
    Layout.region layout ~name:"erpc-resp-bufs"
      ~size:(workers * config.resp_buf_bytes)
  in
  {
    config;
    engine;
    hier;
    link;
    workers;
    rings = Array.init workers mk_ring;
    resp_base =
      Array.init workers (fun _ ->
          Layout.alloc resp_region ~align:64 config.resp_buf_bytes);
    resp_cursor = Array.make workers 0;
    slots = Hashtbl.create 4096;
    on_response = None;
    outstanding = 0;
    delivered = 0;
  }

let workers t = t.workers
let delivered t = t.delivered
let outstanding t = t.outstanding

let align16 v = (v + 15) land lnot 15

let deliver t (msg : Message.t) =
  let worker = msg.Message.target in
  if worker < 0 || worker >= t.workers then
    invalid_arg "Erpc.deliver: message must target a worker";
  let ring = t.rings.(worker) in
  let len = align16 (Message.request_bytes msg) in
  if ring.outstanding_bytes + len > t.config.ring_bytes / 2 then
    failwith "Erpc: rx ring overflow";
  if ring.write_off + len > t.config.ring_bytes then ring.write_off <- 0;
  let addr = ring.base + ring.write_off in
  ring.write_off <- ring.write_off + len;
  let seq = (ring.write_seq * t.workers) + worker in
  ring.write_seq <- ring.write_seq + 1;
  Hierarchy.dma_write t.hier ~addr ~size:len;
  Hierarchy.dma_write t.hier ~addr:ring.head_addr ~size:8;
  let msg =
    { msg with Message.req = { msg.Message.req with Mutps_queue.Request.buf = seq } }
  in
  Hashtbl.replace t.slots seq { addr; len; msg; responded = false };
  ring.outstanding_bytes <- ring.outstanding_bytes + len;
  t.outstanding <- t.outstanding + 1;
  t.delivered <- t.delivered + 1

let slot_exn t seq =
  match Hashtbl.find_opt t.slots seq with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Erpc: unknown slot %d" seq)

let poll t env ~worker =
  if worker < 0 || worker >= t.workers then invalid_arg "Erpc.poll";
  let ring = t.rings.(worker) in
  Env.commit env;
  if ring.cursor >= ring.write_seq then begin
    Env.load env ~addr:ring.head_addr ~size:8;
    None
  end
  else begin
    let seq = (ring.cursor * t.workers) + worker in
    ring.cursor <- ring.cursor + 1;
    let slot = slot_exn t seq in
    Env.load env ~addr:slot.addr ~size:16;
    Some (seq, slot.msg)
  end

let resp_alloc t ~worker ~bytes =
  let bytes = align16 (max bytes 16) in
  if bytes > t.config.resp_buf_bytes then invalid_arg "Erpc.resp_alloc: too big";
  if t.resp_cursor.(worker) + bytes > t.config.resp_buf_bytes then
    t.resp_cursor.(worker) <- 0;
  let addr = t.resp_base.(worker) + t.resp_cursor.(worker) in
  t.resp_cursor.(worker) <- t.resp_cursor.(worker) + bytes;
  addr

let post_response t env ~seq ~resp_addr ~bytes ~value =
  let slot = slot_exn t seq in
  if slot.responded then invalid_arg "Erpc: slot answered twice";
  slot.responded <- true;
  Env.compute env t.config.doorbell_cycles;
  Env.commit env;
  Hierarchy.dma_read t.hier ~addr:resp_addr ~size:bytes;
  let arrival =
    Link.tx_arrival t.link ~now:(Engine.now t.engine) ~bytes:(16 + bytes)
  in
  let worker = seq mod t.workers in
  t.rings.(worker).outstanding_bytes <-
    t.rings.(worker).outstanding_bytes - slot.len;
  t.outstanding <- t.outstanding - 1;
  Hashtbl.remove t.slots seq;
  let msg = slot.msg in
  match t.on_response with
  | None -> ()
  | Some f -> Engine.schedule t.engine ~at:arrival (fun () -> f msg value)

let transport t =
  {
    Transport.name = "erpc";
    deliver = (fun msg -> deliver t msg);
    poll = (fun env ~worker -> poll t env ~worker);
    slot_addr = (fun seq -> (slot_exn t seq).addr);
    slot_len = (fun seq -> (slot_exn t seq).len);
    resp_alloc = (fun ~worker ~bytes -> resp_alloc t ~worker ~bytes);
    post_response =
      (fun env ~seq ~resp_addr ~bytes ~value ->
        post_response t env ~seq ~resp_addr ~bytes ~value);
    set_on_response = (fun f -> t.on_response <- Some f);
    workers = (fun () -> t.workers);
    set_workers =
      (fun _ ->
        invalid_arg
          "Erpc: changing the worker count requires client coordination");
    reconfig_in_progress = (fun () -> false);
    outstanding = (fun () -> t.outstanding);
  }
