module Engine = Mutps_sim.Engine
module Stats = Mutps_sim.Stats
module Rng = Mutps_sim.Rng
module Opgen = Mutps_workload.Opgen
module Request = Mutps_queue.Request

type config = {
  clients : int;
  window : int;
  spec : Opgen.spec;
  seed : int;
  dispatch : Opgen.op -> int;
}

let uniform_dispatch _ = -1

let mod_key_dispatch ~workers op =
  Int64.to_int (Int64.rem op.Opgen.key (Int64.of_int workers))

type t = {
  engine : Engine.t;
  link : Link.t;
  transport : Transport.t;
  mutable cfg : config;
  gens : Opgen.t array;
  mutable next_id : int;
  in_flight : (int, Opgen.op) Hashtbl.t; (* message id -> op *)
  latency : Stats.Hist.t;
  monitor : Stats.Monitor.t;
  mutable completed : int;
  mutable sent : int;
  mutable recording : bool;
  mutable hook : (Opgen.op -> bytes option -> unit) option;
}

let payload ~key ~size =
  let b = Bytes.create size in
  let h = ref (Rng.hash64 key) in
  for i = 0 to size - 1 do
    if i mod 8 = 0 then h := Rng.hash64 !h;
    Bytes.set b i (Char.chr (Int64.to_int !h land 0xFF))
  done;
  b

let op_to_request (op : Opgen.op) =
  match op.Opgen.kind with
  | Request.Get -> Request.get ~key:op.Opgen.key ~buf:0
  | Request.Put -> Request.put ~key:op.Opgen.key ~size:op.Opgen.size ~buf:0
  | Request.Delete -> Request.delete ~key:op.Opgen.key ~buf:0
  | Request.Scan ->
    Request.scan ~key:op.Opgen.key
      ~count:(min op.Opgen.scan_count Request.max_scan_count)
      ~buf:0

let issue t client =
  let op = Opgen.next t.gens.(client) in
  let id = t.next_id in
  t.next_id <- id + 1;
  let value =
    match op.Opgen.kind with
    | Request.Put -> Some (payload ~key:op.Opgen.key ~size:op.Opgen.size)
    | Request.Get | Request.Delete | Request.Scan -> None
  in
  let msg =
    {
      Message.id;
      client;
      sent_at = Engine.now t.engine;
      target = t.cfg.dispatch op;
      req = op_to_request op;
      value;
    }
  in
  Hashtbl.replace t.in_flight id op;
  t.sent <- t.sent + 1;
  let arrival =
    Link.rx_arrival t.link ~sent_at:msg.Message.sent_at
      ~bytes:(Message.request_bytes msg)
  in
  Engine.schedule t.engine ~at:arrival (fun () -> t.transport.Transport.deliver msg)

let on_response t (msg : Message.t) value =
  let now = Engine.now t.engine in
  if t.recording then begin
    Stats.Hist.add t.latency (now - msg.Message.sent_at);
    Stats.Monitor.record t.monitor ~now 1
  end;
  t.completed <- t.completed + 1;
  (match Hashtbl.find_opt t.in_flight msg.Message.id with
  | Some op ->
    Hashtbl.remove t.in_flight msg.Message.id;
    (match t.hook with Some f -> f op value | None -> ())
  | None -> ());
  (* closed loop: next request from the same client *)
  issue t msg.Message.client

let start ~engine ~link ~transport cfg =
  if cfg.clients <= 0 || cfg.window <= 0 then invalid_arg "Client.start";
  let t =
    {
      engine;
      link;
      transport;
      cfg;
      gens =
        Array.init cfg.clients (fun i ->
            Opgen.make cfg.spec ~seed:(cfg.seed + (i * 7919)));
      next_id = 0;
      in_flight = Hashtbl.create 1024;
      latency = Stats.Hist.create ();
      (* 1 ms at the default 2.5 GHz clock *)
      monitor = Stats.Monitor.create ~window:2_500_000;
      completed = 0;
      sent = 0;
      recording = true;
      hook = None;
    }
  in
  transport.Transport.set_on_response (fun msg value -> on_response t msg value);
  (* stagger initial sends a little so the first burst is not a single
     simultaneous wall *)
  for c = 0 to cfg.clients - 1 do
    for w = 0 to cfg.window - 1 do
      Engine.schedule engine
        ~at:(Engine.now engine + (((c * cfg.window) + w) * 11))
        (fun () -> issue t c)
    done
  done;
  t

let config t = t.cfg

let set_spec t spec =
  t.cfg <- { t.cfg with spec };
  Array.iteri
    (fun i _ -> t.gens.(i) <- Opgen.make spec ~seed:(t.cfg.seed + 1_000_003 + (i * 7919)))
    t.gens

let completed t = t.completed
let sent t = t.sent
let latency t = t.latency
let monitor t = t.monitor

let reset_stats t =
  Stats.Hist.clear t.latency;
  t.completed <- 0;
  t.sent <- 0

let set_recording t on = t.recording <- on
let on_completion t f = t.hook <- Some f
