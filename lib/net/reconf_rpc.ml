module Engine = Mutps_sim.Engine
module Env = Mutps_mem.Env
module Layout = Mutps_mem.Layout
module Hierarchy = Mutps_mem.Hierarchy

type config = { ring_bytes : int; resp_buf_bytes : int; doorbell_cycles : int }

let default_config =
  { ring_bytes = 4 * 1024 * 1024; resp_buf_bytes = 64 * 1024; doorbell_cycles = 30 }

type slot = {
  addr : int;
  len : int;
  msg : Message.t;
  mutable responded : bool;
}

type t = {
  config : config;
  engine : Engine.t;
  hier : Hierarchy.t;
  link : Link.t;
  max_workers : int;
  ring_base : int;
  head_addr : int;
  resp_base : int array;
  resp_cursor : int array;
  cursors : int array; (* per worker: next candidate slot seq *)
  slots : (int, slot) Hashtbl.t;
  mutable write_seq : int;
  mutable write_off : int;
  (* Worker-count regimes: [(from_seq, n); ...] ascending by from_seq, the
     first element starting at 0 (after pruning, at any consumed point).
     Slot [seq] is owned by [seq mod n] of the regime containing it.  A
     reconfiguration appends a segment at the current write position — the
     "predefined slot" of §3.5 — and old segments are pruned once every
     worker has consumed its slots below the next switch. *)
  mutable regimes : (int * int) list;
  mutable on_response : (Message.t -> bytes option -> unit) option;
  mutable outstanding : int;
  mutable outstanding_bytes : int;
  mutable delivered : int;
  mutable responded : int;
}

let create ?(config = default_config) ~engine ~hier ~layout ~link ~max_workers
    ~workers () =
  if workers <= 0 || workers > max_workers then
    invalid_arg "Reconf_rpc.create: bad worker count";
  let ring_region =
    Layout.region layout ~name:"rpc-rx-ring"
      ~size:(config.ring_bytes + Layout.line_bytes)
  in
  let head_addr = Layout.alloc ring_region ~align:64 8 in
  let ring_base = Layout.alloc ring_region ~align:64 config.ring_bytes in
  let resp_region =
    Layout.region layout ~name:"rpc-resp-bufs"
      ~size:(max_workers * config.resp_buf_bytes)
  in
  let resp_base =
    Array.init max_workers (fun _ ->
        Layout.alloc resp_region ~align:64 config.resp_buf_bytes)
  in
  {
    config;
    engine;
    hier;
    link;
    max_workers;
    ring_base;
    head_addr;
    resp_base;
    resp_cursor = Array.make max_workers 0;
    cursors = Array.make max_workers 0;
    slots = Hashtbl.create 4096;
    write_seq = 0;
    write_off = 0;
    regimes = [ (0, workers) ];
    on_response = None;
    outstanding = 0;
    outstanding_bytes = 0;
    delivered = 0;
    responded = 0;
  }

let last_regime t =
  match List.rev t.regimes with
  | (from, n) :: _ -> (from, n)
  | [] -> assert false

let workers t = snd (last_regime t)
let reconfig_in_progress t = List.length t.regimes > 1
let delivered t = t.delivered
let responded t = t.responded
let outstanding t = t.outstanding
let ring_base t = t.ring_base
let ring_bytes t = t.config.ring_bytes

(* which worker owns slot [seq] *)
let owner t seq =
  let rec go n = function
    | (from, n') :: rest when from <= seq -> go n' rest
    | _ -> seq mod n
  in
  match t.regimes with
  | (_, n0) :: rest -> go n0 rest
  | [] -> assert false

(* Smallest own slot >= [from] for worker [w]; None when [w] owns nothing
   at or after [from] under any current or future regime. *)
let next_owned t w from =
  let next_mod n from = from + (((w - from) mod n) + n) mod n in
  let rec go = function
    | [] -> None
    | [ (a, n) ] -> if w < n then Some (next_mod n (max from a)) else None
    | (a, n) :: ((b, _) :: _ as rest) ->
      if from >= b || w >= n then go rest
      else begin
        let c = next_mod n (max from a) in
        if c < b then Some c else go rest
      end
  in
  go t.regimes

(* Prune regime segments whose slots every owning worker has consumed. *)
let rec maybe_prune t =
  match t.regimes with
  | (_, n_first) :: ((second_from, _) :: _ as rest) ->
    let all_crossed = ref true in
    for w = 0 to n_first - 1 do
      if t.cursors.(w) < second_from then all_crossed := false
    done;
    if !all_crossed then begin
      t.regimes <- rest;
      maybe_prune t
    end
  | _ -> ()

let set_workers t n =
  if n <= 0 || n > t.max_workers then invalid_arg "Reconf_rpc.set_workers";
  if n <> workers t then begin
    let from, _ = last_regime t in
    if from = t.write_seq then
      (* no slot delivered under the pending regime yet: replace it *)
      t.regimes <-
        (match List.rev t.regimes with
        | _ :: older -> List.rev ((t.write_seq, n) :: older)
        | [] -> assert false)
    else t.regimes <- t.regimes @ [ (t.write_seq, n) ];
    maybe_prune t
  end

let align16 v = (v + 15) land lnot 15

let deliver t (msg : Message.t) =
  let len = align16 (Message.request_bytes msg) in
  if t.outstanding_bytes + len > t.config.ring_bytes / 2 then
    failwith "Reconf_rpc: rx ring overflow (too many outstanding requests)";
  (* wrap the byte cursor; slots never straddle the wrap point *)
  if t.write_off + len > t.config.ring_bytes then t.write_off <- 0;
  let addr = t.ring_base + t.write_off in
  t.write_off <- t.write_off + len;
  let seq = t.write_seq in
  t.write_seq <- seq + 1;
  (* DMA the message body, then the completion/head line *)
  Hierarchy.dma_write t.hier ~addr ~size:len;
  Hierarchy.dma_write t.hier ~addr:t.head_addr ~size:8;
  let msg = { msg with Message.req = { msg.Message.req with Mutps_queue.Request.buf = seq } } in
  Hashtbl.replace t.slots seq { addr; len; msg; responded = false };
  t.outstanding <- t.outstanding + 1;
  t.outstanding_bytes <- t.outstanding_bytes + len;
  t.delivered <- t.delivered + 1

let slot_exn t seq =
  match Hashtbl.find_opt t.slots seq with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Reconf_rpc: unknown slot %d" seq)

let slot_addr t seq = (slot_exn t seq).addr
let slot_len t seq = (slot_exn t seq).len

let poll t env ~worker =
  if worker < 0 || worker >= t.max_workers then invalid_arg "Reconf_rpc.poll";
  Env.commit env;
  match next_owned t worker t.cursors.(worker) with
  | None ->
    (* checking for work on the completion line is the only touch *)
    Env.load env ~addr:t.head_addr ~size:8;
    (* departed worker: move its cursor to the latest switch point so
       pruning and the reconfiguration protocol can observe it crossed *)
    let last_from, _ = last_regime t in
    if t.cursors.(worker) < last_from then begin
      t.cursors.(worker) <- last_from;
      maybe_prune t
    end;
    None
  | Some candidate when candidate >= t.write_seq ->
    Env.load env ~addr:t.head_addr ~size:8;
    None
  | Some candidate ->
    assert (owner t candidate = worker);
    t.cursors.(worker) <- candidate + 1;
    maybe_prune t;
    let slot = slot_exn t candidate in
    (* MP-RQ style: the request header line doubles as the valid flag, so
       a successful poll is a single memory touch *)
    Env.load env ~addr:slot.addr ~size:16;
    Some (candidate, slot.msg)

let resp_alloc t ~worker ~bytes =
  let bytes = align16 (max bytes 16) in
  if bytes > t.config.resp_buf_bytes then invalid_arg "Reconf_rpc.resp_alloc: too big";
  if t.resp_cursor.(worker) + bytes > t.config.resp_buf_bytes then
    t.resp_cursor.(worker) <- 0;
  let addr = t.resp_base.(worker) + t.resp_cursor.(worker) in
  t.resp_cursor.(worker) <- t.resp_cursor.(worker) + bytes;
  addr

let post_response t env ~seq ~resp_addr ~bytes ~value =
  let slot = slot_exn t seq in
  if slot.responded then
    invalid_arg (Printf.sprintf "Reconf_rpc: slot %d answered twice" seq);
  slot.responded <- true;
  Env.compute env t.config.doorbell_cycles;
  Env.commit env;
  (* the NIC reads the response buffer (no CPU cost, no allocation) *)
  Hierarchy.dma_read t.hier ~addr:resp_addr ~size:bytes;
  let wire_bytes = 16 + bytes in
  let arrival = Link.tx_arrival t.link ~now:(Engine.now t.engine) ~bytes:wire_bytes in
  t.outstanding <- t.outstanding - 1;
  t.outstanding_bytes <- t.outstanding_bytes - slot.len;
  t.responded <- t.responded + 1;
  Hashtbl.remove t.slots seq;
  let msg = slot.msg in
  match t.on_response with
  | None -> ()
  | Some f -> Engine.schedule t.engine ~at:arrival (fun () -> f msg value)

let transport t =
  {
    Transport.name = "reconf-rpc";
    deliver = (fun msg -> deliver t msg);
    poll = (fun env ~worker -> poll t env ~worker);
    slot_addr = (fun seq -> slot_addr t seq);
    slot_len = (fun seq -> slot_len t seq);
    resp_alloc = (fun ~worker ~bytes -> resp_alloc t ~worker ~bytes);
    post_response =
      (fun env ~seq ~resp_addr ~bytes ~value ->
        post_response t env ~seq ~resp_addr ~bytes ~value);
    set_on_response = (fun f -> t.on_response <- Some f);
    workers = (fun () -> workers t);
    set_workers = (fun n -> set_workers t n);
    reconfig_in_progress = (fun () -> reconfig_in_progress t);
    outstanding = (fun () -> outstanding t);
  }
