(** Closed-loop client pool.

    Each client keeps [window] requests outstanding: when a response lands,
    it draws the next operation from its workload generator and sends it.
    Clients live on the other side of the link — their only cost is wire
    time — and they are where end-to-end latency (Figure 10) is measured.

    [reset_stats] supports warm-up: measurement counters restart without
    disturbing the closed loop. *)

type config = {
  clients : int;
  window : int;  (** outstanding requests per client *)
  spec : Mutps_workload.Opgen.spec;
  seed : int;
  dispatch : Mutps_workload.Opgen.op -> int;
      (** target worker for per-thread transports; return -1 for
          single-queue transports *)
}

val uniform_dispatch : Mutps_workload.Opgen.op -> int
(** Always -1 (single-queue transport picks). *)

val mod_key_dispatch : workers:int -> Mutps_workload.Opgen.op -> int
(** Key mod n — eRPC-KV's share-nothing dispatch (§5.1). *)

type t

val start :
  engine:Mutps_sim.Engine.t -> link:Link.t -> transport:Transport.t ->
  config -> t
(** Registers the transport response callback and schedules the first
    window of every client. *)

val config : t -> config

val set_spec : t -> Mutps_workload.Opgen.spec -> unit
(** Dynamic workloads (Figure 14): subsequent operations follow the new
    spec. *)

val completed : t -> int
(** Responses received since the last {!reset_stats}. *)

val sent : t -> int
val latency : t -> Mutps_sim.Stats.Hist.t
val monitor : t -> Mutps_sim.Stats.Monitor.t
(** Completions bucketed into 1 ms windows (for timeline plots). *)

val reset_stats : t -> unit

val set_recording : t -> bool -> unit
(** While off, responses still drive the closed loop and count towards
    {!completed}, but skip the latency histogram and throughput monitor —
    used by the interval sampler's functional-warming regime.  On by
    default. *)

val payload : key:int64 -> size:int -> bytes
(** Deterministic put payload for a key — lets tests verify end-to-end
    value integrity. *)

val on_completion : t -> (Mutps_workload.Opgen.op -> bytes option -> unit) -> unit
(** Observation hook: called for every response with the originating op and
    any returned value. *)
