(** First-class transport interface implemented by {!Reconf_rpc}
    (μTPS / BaseKV) and {!Erpc} (the eRPC-KV baseline).

    Lifecycle of a message: a client calls [deliver] (at its arrival time);
    a worker discovers it with [poll] (returning the rx slot sequence
    number), copies data to/from the rx slot and a response buffer obtained
    with [resp_alloc], and finishes with [post_response], which pushes the
    response onto the wire and fires the registered response callback at the
    client-side arrival time. *)

type t = {
  name : string;
  deliver : Message.t -> unit;
  poll : Mutps_mem.Env.t -> worker:int -> (int * Message.t) option;
  slot_addr : int -> int;  (** rx payload address of a slot seq *)
  slot_len : int -> int;
  resp_alloc : worker:int -> bytes:int -> int;
  post_response :
    Mutps_mem.Env.t ->
    seq:int ->
    resp_addr:int ->
    bytes:int ->
    value:bytes option ->
    unit;
  set_on_response : (Message.t -> bytes option -> unit) -> unit;
  workers : unit -> int;
  set_workers : int -> unit;
  reconfig_in_progress : unit -> bool;
  outstanding : unit -> int;
}
