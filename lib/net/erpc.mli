(** eRPC-style baseline transport: one dedicated receive ring per worker
    thread, with clients choosing the target worker ([Message.target], e.g.
    key mod n for the share-nothing eRPC-KV).

    Per-message software overhead is slightly lower than reconfigurable
    RPC's (eRPC's highly tuned stack, §5.2.1), modelled as a smaller
    doorbell/parse cost, but the worker count is baked into client-side
    dispatch: [set_workers] raises, reproducing the coordination cost the
    paper's §3.2.1 design avoids. *)

type t

type config = {
  ring_bytes : int;  (** per-worker rx ring (default 1 MB) *)
  resp_buf_bytes : int;
  doorbell_cycles : int;
}

val default_config : config

val create :
  ?config:config ->
  engine:Mutps_sim.Engine.t ->
  hier:Mutps_mem.Hierarchy.t ->
  layout:Mutps_mem.Layout.t ->
  link:Link.t ->
  workers:int ->
  unit ->
  t

val transport : t -> Transport.t
val workers : t -> int
val delivered : t -> int
val outstanding : t -> int
