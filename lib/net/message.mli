(** A client request in flight through the server.

    [req.buf] is the rx slot sequence number once the transport has placed
    the message (the [buf] field of §3.4's compact request); [value] carries
    the real put payload. *)

type t = {
  id : int;
  client : int;
  sent_at : int;
  target : int;  (** worker hint for per-thread transports (eRPC); -1 = any *)
  req : Mutps_queue.Request.t;
  value : bytes option;
}

val request_bytes : t -> int
(** Wire size: 16-byte header plus the put payload going in (responses add
    the returned data). *)

val pp : Format.formatter -> t -> unit
