type t = {
  name : string;
  sets : int;
  ways : int;
  set_mask : int;  (* sets - 1 when sets is a power of two, else -1 *)
  (* One word per way: [tag lsl stamp_bits lor stamp].  -1 = invalid (its tag
     field reads back as 2^27 - 1, unreachable for real lines, so the
     match scan needs no separate validity test).  Packing matters
     because the simulator's tag store is itself a memory-bound working
     set — the modelled LLC alone is half a million ways — and a set
     probe that walks 8 bytes per way instead of 16 halves the host
     cache lines each simulated access touches.  33 stamp bits defer
     LRU-clock wraparound past 8*10^9 accesses per cache instance; 29
     tag bits cover a 32 GiB simulated address space (lines are
     addr/64) — enough for every slab size class (1 GiB reserved each)
     plus the 2 GiB btree arena to materialize. *)
  data : int array;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
}

let stamp_bits = 33
let max_tag = 1 lsl (62 - stamp_bits)
let stamp_mask = (1 lsl stamp_bits) - 1

let create ~name ~sets ~ways =
  if sets <= 0 || ways <= 0 then invalid_arg "Cache.create";
  if ways > 62 then invalid_arg "Cache.create: too many ways for a way mask";
  {
    name;
    sets;
    ways;
    set_mask = (if sets land (sets - 1) = 0 then sets - 1 else -1);
    data = Array.make (sets * ways) (-1);
    clock = 0;
    hits = 0;
    misses = 0;
  }

let name t = t.name
let sets t = t.sets
let ways t = t.ways
let capacity_lines t = t.sets * t.ways
let full_mask t = (1 lsl t.ways) - 1

let check_line line =
  if line < 0 || line >= max_tag then invalid_arg "Cache: line out of range"

(* Fibonacci-style mixing spreads sequential lines over sets even when
   [sets] is not a power of two.  [h lsr 16] is non-negative, so for
   power-of-two set counts the mask equals the mod — same mapping, no
   integer division on the hot path (L1 and L2 are always pow2). *)
let set_of_line t line =
  let h = (line * 0x9E3779B97F4A7C1) lsr 16 in
  if t.set_mask >= 0 then h land t.set_mask else h mod t.sets

type outcome = Hit | Miss of { victim : int option }

(* Top-level tail-recursive scans: called from every lookup, so they must
   not close over anything (a local [let rec] with free variables becomes
   a heap-allocated closure per call). *)
let rec find_way_from data base (tagbits : int) ways w =
  if w = ways then -1
  else if Array.unsafe_get data (base + w) lsr stamp_bits = tagbits then w
  else find_way_from data base tagbits ways (w + 1)

(* [(-1) lsr stamp_bits = 2^30 - 1 >= max_tag]: invalid ways can never
   match. *)
let find_way t base line = find_way_from t.data base line t.ways 0

(* Single-pass combined match + LRU-victim scan, with the LRU victim
   policy: the first invalid allowed way wins immediately (stamp pinned
   to [min_int] so later ways cannot displace it); among valid allowed
   ways the earliest minimal stamp wins (strict [<]).  Early-exits with
   [w + 1] (positive) on a tag match; otherwise finishes the set and
   returns [-(best + 2)] where [best] is the victim way ([-1] = no
   eligible victim).  Running both searches in one sweep halves the set
   walks on the miss path. *)
let rec match_or_victim data base (line : int) mask ways w best best_stamp =
  if w = ways then -(best + 2)
  else begin
    let e = Array.unsafe_get data (base + w) in
    if e lsr stamp_bits = line then w + 1
    else if mask land (1 lsl w) <> 0 then
      if e = -1 && best_stamp > min_int then
        match_or_victim data base line mask ways (w + 1) w min_int
      else if best_stamp > min_int && e land stamp_mask < best_stamp then
        match_or_victim data base line mask ways (w + 1) w (e land stamp_mask)
      else match_or_victim data base line mask ways (w + 1) best best_stamp
    else match_or_victim data base line mask ways (w + 1) best best_stamp
  end

(* Allocation-free access for hot callers: -2 = hit, -1 = miss with
   nothing evicted (empty mask or a free way), >= 0 = the evicted line.
   Line numbers are byte addresses / line size, hence never negative, so
   the encoding is unambiguous. *)
let[@hot] access_raw t ~line ~way_mask =
  check_line line;
  t.clock <- t.clock + 1;
  let base = set_of_line t line * t.ways in
  let mask = way_mask land full_mask t in
  let r = match_or_victim t.data base line mask t.ways 0 (-1) max_int in
  if r > 0 then begin
    t.hits <- t.hits + 1;
    t.data.(base + r - 1) <- (line lsl stamp_bits) lor t.clock;
    -2
  end
  else begin
    t.misses <- t.misses + 1;
    let best = -r - 2 in
    if best < 0 then -1
    else begin
      let i = base + best in
      let old = Array.unsafe_get t.data i in
      let victim = if old = -1 then -1 else old lsr stamp_bits in
      t.data.(i) <- (line lsl stamp_bits) lor t.clock;
      victim
    end
  end

let access t ~line ~way_mask =
  match access_raw t ~line ~way_mask with
  | -2 -> Hit
  | -1 -> Miss { victim = None }
  | v -> Miss { victim = Some v }

let touch t ~line =
  check_line line;
  t.clock <- t.clock + 1;
  let base = set_of_line t line * t.ways in
  let w = find_way t base line in
  if w >= 0 then begin
    t.hits <- t.hits + 1;
    t.data.(base + w) <- (line lsl stamp_bits) lor t.clock;
    true
  end
  else begin
    t.misses <- t.misses + 1;
    false
  end

let probe t ~line =
  check_line line;
  let base = set_of_line t line * t.ways in
  find_way t base line >= 0

let invalidate t ~line =
  check_line line;
  let base = set_of_line t line * t.ways in
  let w = find_way t base line in
  if w >= 0 then begin
    t.data.(base + w) <- -1;
    true
  end
  else false

let hits t = t.hits
let misses t = t.misses

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0
