type t = {
  name : string;
  sets : int;
  ways : int;
  tags : int array;      (* sets * ways; -1 = invalid *)
  stamps : int array;    (* LRU stamps, same indexing *)
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
}

let create ~name ~sets ~ways =
  if sets <= 0 || ways <= 0 then invalid_arg "Cache.create";
  if ways > 62 then invalid_arg "Cache.create: too many ways for a way mask";
  {
    name;
    sets;
    ways;
    tags = Array.make (sets * ways) (-1);
    stamps = Array.make (sets * ways) 0;
    clock = 0;
    hits = 0;
    misses = 0;
  }

let name t = t.name
let sets t = t.sets
let ways t = t.ways
let capacity_lines t = t.sets * t.ways
let full_mask t = (1 lsl t.ways) - 1

(* Fibonacci-style mixing spreads sequential lines over sets even when
   [sets] is not a power of two. *)
let set_of_line t line =
  let h = line * 0x9E3779B97F4A7C1 in
  (h lsr 16) mod t.sets

type outcome = Hit | Miss of { victim : int option }

(* Top-level tail-recursive scans: called from every lookup, so they must
   not close over anything (a local [let rec] with free variables becomes
   a heap-allocated closure per call). *)
let rec find_way_from tags base (line : int) ways w =
  (* the [int] ascription matters: without it [line] generalizes and the
     tag comparison below compiles to polymorphic equality — a C call per
     way scanned *)
  if w = ways then -1
  else if Array.unsafe_get tags (base + w) = line then w
  else find_way_from tags base line ways (w + 1)

let find_way t base line = find_way_from t.tags base line t.ways 0

(* LRU victim among allowed ways.  The first invalid way wins immediately
   (stamp pinned to [min_int] so later ways cannot displace it); among
   valid ways the earliest minimal stamp wins (strict [<]). *)
let rec victim_way tags stamps base mask ways way best best_stamp =
  if way = ways then best
  else if mask land (1 lsl way) <> 0 then begin
    let i = base + way in
    if Array.unsafe_get tags i = -1 && best_stamp > min_int then
      victim_way tags stamps base mask ways (way + 1) way min_int
    else if
      best_stamp > min_int && Array.unsafe_get stamps i < best_stamp
    then victim_way tags stamps base mask ways (way + 1) way (Array.unsafe_get stamps i)
    else victim_way tags stamps base mask ways (way + 1) best best_stamp
  end
  else victim_way tags stamps base mask ways (way + 1) best best_stamp

(* Allocation-free access for hot callers: -2 = hit, -1 = miss with
   nothing evicted (empty mask or a free way), >= 0 = the evicted line.
   Line numbers are byte addresses / line size, hence never negative, so
   the encoding is unambiguous. *)
let[@hot] access_raw t ~line ~way_mask =
  t.clock <- t.clock + 1;
  let base = set_of_line t line * t.ways in
  let w = find_way t base line in
  if w >= 0 then begin
    t.hits <- t.hits + 1;
    t.stamps.(base + w) <- t.clock;
    -2
  end
  else begin
    t.misses <- t.misses + 1;
    let mask = way_mask land full_mask t in
    if mask = 0 then -1
    else begin
      let best = victim_way t.tags t.stamps base mask t.ways 0 (-1) max_int in
      let i = base + best in
      let victim = Array.unsafe_get t.tags i in  (* -1 if the way was free *)
      t.tags.(i) <- line;
      t.stamps.(i) <- t.clock;
      victim
    end
  end

let access t ~line ~way_mask =
  match access_raw t ~line ~way_mask with
  | -2 -> Hit
  | -1 -> Miss { victim = None }
  | v -> Miss { victim = Some v }

let touch t ~line =
  t.clock <- t.clock + 1;
  let base = set_of_line t line * t.ways in
  let w = find_way t base line in
  if w >= 0 then begin
    t.hits <- t.hits + 1;
    t.stamps.(base + w) <- t.clock;
    true
  end
  else begin
    t.misses <- t.misses + 1;
    false
  end

let probe t ~line =
  let base = set_of_line t line * t.ways in
  find_way t base line >= 0

let invalidate t ~line =
  let base = set_of_line t line * t.ways in
  let w = find_way t base line in
  if w >= 0 then begin
    t.tags.(base + w) <- -1;
    true
  end
  else false

let hits t = t.hits
let misses t = t.misses

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0
