(** Execution environment of a simulated worker thread: its thread context,
    the machine's cache hierarchy, and the core it is pinned to.

    All higher layers (index structures, queues, KVS stages) express their
    memory traffic through these helpers, which charge hierarchy latencies
    into the thread's cycle accumulator. *)

type t = { ctx : Mutps_sim.Simthread.ctx; hier : Hierarchy.t; core : int }

val make : ctx:Mutps_sim.Simthread.ctx -> hier:Hierarchy.t -> core:int -> t

val load : t -> addr:int -> size:int -> unit
(** Charge a read of [size] bytes at [addr]. *)

val store : t -> addr:int -> size:int -> unit
(** Charge a write. *)

val prefetch_batch : t -> int array -> unit
(** Charge an overlapped batched fetch (§3.3 batched indexing). *)

val compute : t -> int -> unit
(** Charge [n] cycles of pure computation. *)

val commit : t -> unit
(** Flush accumulated cycles to the engine.  Must be called before reading
    shared mutable simulation state (locks, queue indices) so the thread
    observes other threads' effects up to its own current time. *)

val now : t -> int

val assert_committed : t -> string -> unit
(** [assert_committed t what] — runtime arm of the lint's R3 rule: when
    {!Mutps_sim.Engine.debug_checks} is on, fail if the thread still holds
    uncommitted cycles at a shared-mutable-state read (seqlock versions,
    ring cursors).  [what] names the read site.  No-op in normal runs. *)
