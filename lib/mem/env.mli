(** Execution environment of a simulated worker thread: its thread context,
    the machine's cache hierarchy, and the core it is pinned to.

    All higher layers (index structures, queues, KVS stages) express their
    memory traffic through these helpers, which charge hierarchy latencies
    into the thread's cycle accumulator. *)

type t = {
  ctx : Mutps_sim.Simthread.ctx;
  hier : Hierarchy.t;
  core : int;
  charged : bool;
      (** [true] for simulated environments: memory traffic is priced by
          the hierarchy model and charged into the thread's accumulator.
          [false] for the native backend's freerun environments, where the
          hardware clock is the only clock: every charge, sanitizer record
          and tracer emission collapses to one branch, and the engine's
          effect handlers are never reached (accumulators stay at 0). *)
  mutable tag : string;  (** Current access-site label for sanitizer reports. *)
  mutable path : string;
      (** Semicolon-joined stack of enclosing {!tagged} sites, maintained
          only while a tracer is attached; feeds the cycle profiler. *)
  mutable batch : int;
      (** Cycles charged under the current {!path} not yet handed to the
          tracer; see {!set_trace_batching}. *)
  mutable batching : bool;  (** Traced-mode charge batching toggle. *)
}

val make : ctx:Mutps_sim.Simthread.ctx -> hier:Hierarchy.t -> core:int -> t

val make_freerun :
  ctx:Mutps_sim.Simthread.ctx -> hier:Hierarchy.t -> core:int -> t
(** The native backend's clock seam: an environment whose charging helpers
    are all no-ops.  Pair with {!Mutps_sim.Simthread.detached} contexts so
    the store/index/kvs layers run unchanged on real domains — {!commit}
    never performs a scheduling effect because nothing ever accumulates. *)

val charged : t -> bool

val load : t -> addr:int -> size:int -> unit
(** Charge a read of [size] bytes at [addr]. *)

val store : t -> addr:int -> size:int -> unit
(** Charge a write. *)

val prefetch_batch : t -> int array -> unit
(** Charge an overlapped batched fetch (§3.3 batched indexing). *)

val compute : t -> int -> unit
(** Charge [n] cycles of pure computation. *)

val commit : t -> unit
(** Flush accumulated cycles to the engine.  Must be called before reading
    shared mutable simulation state (locks, queue indices) so the thread
    observes other threads' effects up to its own current time. *)

val now : t -> int

(** {1 Race sanitizer plumbing}

    Thin pass-throughs to the hooks of {!Mutps_sim.Engine.sanitizer}, all
    no-ops (one branch) when no sanitizer is attached.  [load] and [store]
    above record their address ranges automatically; [prefetch_batch] does
    not (prefetches are hints and cannot race).  Structures that provide
    their own synchronization (rings, seqlocks, the index, the hot cache)
    bracket their operations with {!acquire}/{!release} on a named object
    and register their control words via {!sync_range}. *)

val load_speculative : t -> addr:int -> size:int -> unit
(** Charge a read without recording it for the sanitizer.  For validated
    (seqlock-style) reads: pair with {!note_read} once validation
    succeeds, so retried reads are not flagged against the writer that
    invalidated them. *)

val note_read : t -> addr:int -> size:int -> unit
(** Record a read for the sanitizer without charging (second half of a
    {!load_speculative}). *)

val tagged : t -> string -> (unit -> 'a) -> 'a
(** [tagged t site f] labels accesses made during [f] with [site] in
    sanitizer reports; restores the outer label on exit.  With a tracer
    attached, the region is additionally emitted as a completed slice on
    the thread's trace track, and [site] is pushed onto {!path} so
    charged cycles inside [f] are attributed to the full stack. *)

val sanitizing : t -> bool

(** {1 Observability tracer plumbing}

    Thin pass-throughs to {!Mutps_sim.Engine.tracer}, all no-ops (one
    branch, no allocation) when no tracer is attached.  [load], [store],
    [compute], [load_speculative] and [prefetch_batch] attribute their
    charged cycles to the current {!path} automatically. *)

val tracing : t -> bool
(** Whether a tracer is attached.  Guard any event-argument formatting
    with this so the off path never allocates. *)

val set_trace_batching : t -> bool -> unit
(** Toggle traced-mode charge batching (default on).  With batching on,
    cycles charged under one site path reach the tracer as a single
    [tr_cycles] sum at the next site boundary or {!commit}; with it off,
    every access reports individually.  Per-(thread, site) totals are
    identical either way — [tr_cycles] carries no timestamp — which is
    what the equivalence suite pins down.  Flushes any pending batch
    before switching, so a mid-run toggle loses nothing. *)

val trace_batching : t -> bool

val instant : t -> name:string -> arg:string -> unit
(** Emit a point event on this thread's track at the thread's current
    simulated time (role switches, seqlock bounces, backpressure). *)

val counter : t -> track:string -> value:float -> unit
(** Emit one sample of a named counter track (ring occupancy etc.). *)

val sync_obj : t -> string -> int
(** Intern a sync object; [-1] when no sanitizer is attached (all the
    calls below accept [-1] and do nothing). *)

val acquire : t -> int -> unit
val release : t -> int -> unit

val lock : t -> int -> unit
val unlock : t -> int -> unit
(** Like acquire/release, and additionally track the object in the
    thread's lockset for {!protect} checking. *)

val sync_range : t -> lo:int -> hi:int -> on:bool -> unit
(** Mark/unmark simulated bytes as synchronization words (exempt from
    race pairing; their transfer discipline is modelled by the object
    edges instead). *)

val protect : t -> obj:int -> lo:int -> hi:int -> unit
val unprotect : t -> lo:int -> hi:int -> unit
(** Bytes writable only while holding [obj] (item payloads vs. their
    version lock). *)

val assert_committed : t -> string -> unit
(** [assert_committed t what] — runtime arm of the lint's R3 rule: when
    {!Mutps_sim.Engine.debug_checks} is on, fail if the thread still holds
    uncommitted cycles at a shared-mutable-state read (seqlock versions,
    ring cursors).  [what] names the read site.  No-op in normal runs. *)
