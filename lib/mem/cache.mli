(** Generic set-associative cache with LRU replacement and per-access way
    masks.

    The way mask restricts which ways an access may {e allocate} into — the
    semantics of Intel CAT (and of DDIO's two rightmost ways): lookups hit
    on any way, only fills are constrained.  The cache stores line numbers
    only; data lives in the real OCaml structures of the system under
    simulation. *)

type t

val create : name:string -> sets:int -> ways:int -> t
(** [sets] may be any positive count (real LLCs are not power-of-two sets
    once sliced); lines are spread over sets with a mixing hash. *)

val name : t -> string
val sets : t -> int
val ways : t -> int
val capacity_lines : t -> int

val full_mask : t -> int
(** Mask selecting every way. *)

type outcome =
  | Hit
  | Miss of { victim : int option }
      (** [victim] is the line evicted to make room, if any.  When the way
          mask is empty the access bypasses the cache: [Miss {victim=None}]
          and nothing is allocated. *)

val access : t -> line:int -> way_mask:int -> outcome
(** Lookup + LRU update; allocates into an allowed way on miss. *)

val access_raw : t -> line:int -> way_mask:int -> int
(** Exactly {!access}, encoded without the [outcome] allocation for hot
    callers: [-2] = hit, [-1] = miss that evicted nothing (empty mask or a
    free way), [>= 0] = the line evicted to make room. *)

val touch : t -> line:int -> bool
(** Lookup + LRU update without allocating on miss; true on hit. *)

val probe : t -> line:int -> bool
(** Pure lookup: no state change. *)

val invalidate : t -> line:int -> bool
(** Drop the line; true if it was present. *)

val hits : t -> int
val misses : t -> int
val reset_stats : t -> unit
