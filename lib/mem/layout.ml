let line_bytes = 64
let line_shift = 6
let line_of_addr addr = addr lsr line_shift

let lines_spanned ~addr ~size =
  let size = if size < 1 then 1 else size in
  line_of_addr (addr + size - 1) - line_of_addr addr + 1

type region = {
  name : string;
  base : int;
  size : int;
  mutable cursor : int;
}

type t = { mutable next_base : int }

(* Guard gap between regions keeps accidental off-by-one addresses from
   landing in a neighbouring region. *)
let guard = 4096

let create () = { next_base = 1 lsl 20 }

let round_up v align = (v + align - 1) land lnot (align - 1)

let region t ~name ~size =
  if size <= 0 then invalid_arg "Layout.region: size must be positive";
  let size = round_up size line_bytes in
  let base = t.next_base in
  t.next_base <- base + size + guard;
  { name; base; size; cursor = 0 }

let base r = r.base
let size r = r.size
let region_name r = r.name
let contains r addr = addr >= r.base && addr < r.base + r.size
let allocated r = r.cursor

let alloc r ?(align = 8) bytes =
  if bytes < 0 then invalid_arg "Layout.alloc: negative size";
  if align <= 0 || align land (align - 1) <> 0 then
    invalid_arg "Layout.alloc: align must be a power of two";
  let start = round_up r.cursor align in
  if start + bytes > r.size then
    failwith
      (Printf.sprintf "Layout.alloc: region %S full (%d of %d bytes used)"
         r.name r.cursor r.size);
  r.cursor <- start + bytes;
  r.base + start
