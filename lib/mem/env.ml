module Simthread = Mutps_sim.Simthread

type t = { ctx : Simthread.ctx; hier : Hierarchy.t; core : int }

let make ~ctx ~hier ~core = { ctx; hier; core }

let load t ~addr ~size =
  Simthread.charge t.ctx (Hierarchy.load t.hier ~core:t.core ~addr ~size)

let store t ~addr ~size =
  Simthread.charge t.ctx (Hierarchy.store t.hier ~core:t.core ~addr ~size)

let prefetch_batch t addrs =
  Simthread.charge t.ctx (Hierarchy.prefetch_batch t.hier ~core:t.core addrs)

let compute t n = Simthread.charge t.ctx n
let commit t = Simthread.commit t.ctx
let now t = Simthread.now t.ctx

let assert_committed t what =
  if
    Mutps_sim.Engine.debug_checks (Simthread.engine t.ctx)
    && Simthread.pending t.ctx > 0
  then
    failwith
      (Printf.sprintf
         "Env.assert_committed: %s reads shared simulation state with %d \
          uncommitted cycles (thread %s)"
         what
         (Simthread.pending t.ctx)
         (Simthread.name t.ctx))
