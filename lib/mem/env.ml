module Simthread = Mutps_sim.Simthread
module Engine = Mutps_sim.Engine

type t = {
  ctx : Simthread.ctx;
  hier : Hierarchy.t;
  core : int;
  charged : bool;
  mutable tag : string;
  mutable path : string;
  (* Traced-mode charge batching: cycles charged under the current site
     path accumulate here and reach the tracer as one [tr_cycles] call at
     the next site boundary or commit, instead of one call per memory
     access.  [tr_cycles] totals are keyed by (thread, site) with no
     timestamp, so batching is observation-equivalent: the per-site sums
     are identical, only the call count changes.  [batching] is a runtime
     toggle so the equivalence is testable. *)
  mutable batch : int;
  mutable batching : bool;
}

let make ~ctx ~hier ~core =
  { ctx; hier; core; charged = true; tag = ""; path = ""; batch = 0;
    batching = true }

(* The native backend's clock seam: same Env surface, but the hardware
   clock is the only clock — every charge, sanitizer record and tracer
   emission collapses to one predictable branch on [charged].  This keeps
   the whole store/index/kvs tree reusable on real domains: code written
   against Env never reaches the engine's effect handlers natively
   (accumulators stay at 0, so even [commit] is a no-op). *)
let make_freerun ~ctx ~hier ~core =
  { ctx; hier; core; charged = false; tag = ""; path = ""; batch = 0;
    batching = true }

let charged t = t.charged

let san t = if t.charged then Engine.sanitizer (Simthread.engine t.ctx) else None
let tid t = Simthread.san_id t.ctx
let tr t = if t.charged then Engine.tracer (Simthread.engine t.ctx) else None
let tr_tid t = Simthread.tr_id t.ctx

let record t ~write ~addr ~size =
  match san t with
  | None -> ()
  | Some s ->
    s.Engine.san_access ~tid:(tid t) ~site:t.tag ~time:(Simthread.now t.ctx)
      ~write ~lo:addr ~hi:(addr + size)

(* Attribute charged cycles to the current site path for the profiler.
   One branch when no tracer is attached.  With batching on, the cycles
   only join the running sum for the current path; {!flush_batch} hands
   them to the tracer at the next site boundary or commit. *)
let flush_batch t =
  if t.batch > 0 then begin
    (match tr t with
    | None -> ()
    | Some tr -> tr.Engine.tr_cycles ~tid:(tr_tid t) ~site:t.path ~cycles:t.batch);
    t.batch <- 0
  end

let trace_cycles t n =
  match tr t with
  | None -> ()
  | Some tr ->
    if t.batching then t.batch <- t.batch + n
    else tr.Engine.tr_cycles ~tid:(tr_tid t) ~site:t.path ~cycles:n

let set_trace_batching t b =
  flush_batch t;
  t.batching <- b

let trace_batching t = t.batching

(* The hot accessors split on {!Engine.instrumented}: one predictable
   branch sends the common un-instrumented run down a straight line —
   hierarchy model, unchecked accumulator add, done — and keeps every
   tracer/sanitizer option match off that path.  The flag is live (the
   setters maintain it), so attaching instrumentation mid-run reroutes
   the very next access. *)
let[@hot] load t ~addr ~size =
  if t.charged then begin
    let c = Hierarchy.load t.hier ~core:t.core ~addr ~size in
    Simthread.charge_unchecked t.ctx c;
    if Engine.instrumented (Simthread.engine t.ctx) then begin
      trace_cycles t c;
      record t ~write:false ~addr ~size
    end
  end

let[@hot] store t ~addr ~size =
  if t.charged then begin
    let c = Hierarchy.store t.hier ~core:t.core ~addr ~size in
    Simthread.charge_unchecked t.ctx c;
    if Engine.instrumented (Simthread.engine t.ctx) then begin
      trace_cycles t c;
      record t ~write:true ~addr ~size
    end
  end

(* Speculative-read support for seqlock-style validated reads: charge the
   load now, record it only once validation succeeds — a read that fails
   validation is retried and never observed, so pairing it against the
   concurrent write that bumped the version would flag the protocol's
   anticipated (and resolved) conflict as a race. *)
let[@hot] load_speculative t ~addr ~size =
  if t.charged then begin
    let c = Hierarchy.load t.hier ~core:t.core ~addr ~size in
    Simthread.charge_unchecked t.ctx c;
    if Engine.instrumented (Simthread.engine t.ctx) then trace_cycles t c
  end

let[@hot] note_read t ~addr ~size = record t ~write:false ~addr ~size

(* Prefetches are hints: a real CPU prefetch cannot race, and the data it
   warms is re-accessed through [load] under the owning structure's
   synchronization, so the sanitizer ignores them. *)
let[@hot] prefetch_batch t addrs =
  if t.charged then begin
    let c = Hierarchy.prefetch_batch t.hier ~core:t.core addrs in
    Simthread.charge_unchecked t.ctx c;
    if Engine.instrumented (Simthread.engine t.ctx) then trace_cycles t c
  end

let[@hot] compute t n =
  if t.charged then begin
    Simthread.charge t.ctx n;
    if Engine.instrumented (Simthread.engine t.ctx) then trace_cycles t n
  end

let[@hot] commit t =
  if t.charged then begin
    if Engine.instrumented (Simthread.engine t.ctx) then flush_batch t;
    Simthread.commit t.ctx
  end
let now t = Simthread.now t.ctx

(* With a tracer attached, [tagged] additionally maintains the
   semicolon-joined site path (for collapsed-stack profiles) and emits the
   region as a completed slice on the thread's track.  Times come from
   [Simthread.now], which includes uncommitted cycles, so nested regions
   stay properly contained.  Without a tracer this is a plain save/restore
   of [tag] — written as an explicit match on the result rather than
   [Fun.protect] so the unwind needs no [finally] closure and the path
   allocates nothing. *)
let[@hot] tagged t site f =
  let outer = t.tag in
  t.tag <- site;
  match tr t with
  | None -> (
    match f () with
    | v ->
      t.tag <- outer;
      v
    | exception e ->
      t.tag <- outer;
      raise e)
  | Some tr ->
    (* batched cycles belong to the site path they were charged under:
       settle them before the path changes, in both directions *)
    flush_batch t;
    let outer_path = t.path in
    t.path <- (if outer_path = "" then site else outer_path ^ ";" ^ site);
    let t0 = Simthread.now t.ctx in
    Fun.protect
      ~finally:(fun () ->
        flush_batch t;
        tr.Engine.tr_slice ~tid:(tr_tid t) ~t0 ~t1:(Simthread.now t.ctx)
          ~name:site;
        t.tag <- outer;
        t.path <- outer_path)
      f

let tracing t = match tr t with None -> false | Some _ -> true

let instant t ~name ~arg =
  match tr t with
  | None -> ()
  | Some tr ->
    tr.Engine.tr_instant ~tid:(tr_tid t) ~time:(Simthread.now t.ctx) ~name ~arg

let counter t ~track ~value =
  match tr t with
  | None -> ()
  | Some tr -> tr.Engine.tr_counter ~time:(Simthread.now t.ctx) ~track ~value

let sync_obj t name =
  match san t with None -> -1 | Some s -> s.Engine.san_obj name

let acquire t obj =
  if obj >= 0 then
    match san t with
    | None -> ()
    | Some s -> s.Engine.san_acquire ~tid:(tid t) ~obj

let release t obj =
  if obj >= 0 then
    match san t with
    | None -> ()
    | Some s -> s.Engine.san_release ~tid:(tid t) ~obj

let lock t obj =
  if obj >= 0 then
    match san t with
    | None -> ()
    | Some s -> s.Engine.san_lock ~tid:(tid t) ~obj

let unlock t obj =
  if obj >= 0 then
    match san t with
    | None -> ()
    | Some s -> s.Engine.san_unlock ~tid:(tid t) ~obj

let sync_range t ~lo ~hi ~on =
  match san t with
  | None -> ()
  | Some s -> s.Engine.san_sync_range ~lo ~hi ~on

let protect t ~obj ~lo ~hi =
  if obj >= 0 then
    match san t with
    | None -> ()
    | Some s -> s.Engine.san_protect ~obj ~lo ~hi

let unprotect t ~lo ~hi =
  match san t with
  | None -> ()
  | Some s -> s.Engine.san_unprotect ~lo ~hi

let sanitizing t = match san t with None -> false | Some _ -> true

let assert_committed t what =
  if
    t.charged
    && Mutps_sim.Engine.debug_checks (Simthread.engine t.ctx)
    && Simthread.pending t.ctx > 0
  then
    failwith
      (Printf.sprintf
         "Env.assert_committed: %s reads shared simulation state with %d \
          uncommitted cycles (thread %s)"
         what
         (Simthread.pending t.ctx)
         (Simthread.name t.ctx))
