type geometry = {
  cores : int;
  l1_sets : int;
  l1_ways : int;
  l2_sets : int;
  l2_ways : int;
  llc_sets : int;
  llc_ways : int;
  ddio_ways : int;
}

let default_geometry ~cores =
  {
    cores;
    l1_sets = 64;
    l1_ways = 8;
    l2_sets = 1024;
    l2_ways = 16;
    (* 42 MB / 64 B / 12 ways *)
    llc_sets = 57_344;
    llc_ways = 12;
    ddio_ways = 2;
  }

let small_geometry ~cores =
  {
    cores;
    l1_sets = 8;
    l1_ways = 4;
    l2_sets = 32;
    l2_ways = 8;
    llc_sets = 512;
    llc_ways = 8;
    ddio_ways = 2;
  }

type mutable_stats = {
  mutable l1_hits : int;
  mutable l2_hits : int;
  mutable llc_hits : int;
  mutable dram_fetches : int;
  mutable invalidations_sent : int;
  mutable dirty_transfers : int;
}

type stats = {
  l1_hits : int;
  l2_hits : int;
  llc_hits : int;
  dram_fetches : int;
  invalidations_sent : int;
  dirty_transfers : int;
}

(* Directory: which cores hold the line in a private cache, and which (if
   any) holds it dirty.  Stored as a DENSE array indexed by line number
   with the entry packed into one int — [sharers lsl 7 lor (dirty + 1)],
   0 = absent — rather than any keyed table.  Two reasons, both about the
   HOST machine: a lookup is one bounds test and one indexed read (no
   hashing, no probe chain, no key compare), and — decisive for a
   simulator whose own tag/directory state is memory-bound — adjacent
   simulated lines land in adjacent entries, so the under-test workload's
   spatial locality (B-tree nodes, item payloads) carries over to the
   simulator's directory traffic instead of being deliberately destroyed
   by a hash.  Density is affordable because {!Layout} allocates regions
   contiguously from a 1 MiB base: the array's length tracks the highest
   line ever privately cached, which is bounded by total simulated
   footprint / 64.  An entry packed as 0 (no sharers, no dirty owner) is
   observationally identical to an absent line at every use site, so
   "removal" just stores 0. *)
type t = {
  geometry : geometry;
  costs : Costs.t;
  l1 : Cache.t array;
  l2 : Cache.t array;
  llc : Cache.t;
  clos : int array;
  ddio_mask : int;
  mutable dir : int array;  (* packed entry per line; 0 = absent *)
  stats : mutable_stats array;
  mutable nic_llc_hits : int;
  mutable nic_llc_misses : int;
  (* Functional-warming regime (interval sampling, lib/sample): when on,
     CPU accesses bypass the cache arrays and pay a flat per-line cost
     calibrated from the hit mix observed so far; the hit-mix statistics
     continue deterministically at the calibrated ratios so interval
     signatures stay comparable across regimes.  NIC DMA stays detailed
     (it keeps LLC/DDIO state live). *)
  mutable warming : bool;
  mutable warm_load_cost : int;
  mutable warm_store_cost : int;
  mutable warm_l1 : int;  (* cumulative mix thresholds out of 1024 *)
  mutable warm_l2 : int;
  mutable warm_llc : int;
  mutable warm_tick : int;
}

let fresh_stats () : mutable_stats =
  {
    l1_hits = 0;
    l2_hits = 0;
    llc_hits = 0;
    dram_fetches = 0;
    invalidations_sent = 0;
    dirty_transfers = 0;
  }

let create ?(costs = Costs.default) geometry =
  if geometry.cores <= 0 then invalid_arg "Hierarchy.create: no cores";
  if geometry.ddio_ways > geometry.llc_ways then
    invalid_arg "Hierarchy.create: ddio_ways > llc_ways";
  let mk_private name sets ways i =
    Cache.create ~name:(Printf.sprintf "%s[%d]" name i) ~sets ~ways
  in
  let full = (1 lsl geometry.llc_ways) - 1 in
  {
    geometry;
    costs;
    l1 = Array.init geometry.cores (mk_private "l1" geometry.l1_sets geometry.l1_ways);
    l2 = Array.init geometry.cores (mk_private "l2" geometry.l2_sets geometry.l2_ways);
    llc = Cache.create ~name:"llc" ~sets:geometry.llc_sets ~ways:geometry.llc_ways;
    clos = Array.make geometry.cores full;
    ddio_mask = (1 lsl geometry.ddio_ways) - 1;
    dir = Array.make 65_536 0;
    stats = Array.init geometry.cores (fun _ -> fresh_stats ());
    nic_llc_hits = 0;
    nic_llc_misses = 0;
    warming = false;
    warm_load_cost = costs.Costs.l2_hit;
    warm_store_cost = costs.Costs.l2_hit + 1;
    warm_l1 = 720;
    warm_l2 = 920;
    warm_llc = 990;
    warm_tick = 0;
  }

let geometry t = t.geometry
let costs t = t.costs
let cores t = t.geometry.cores
let ddio_mask t = t.ddio_mask
let full_llc_mask t = Cache.full_mask t.llc
let llc_ways t = t.geometry.llc_ways

let set_clos t ~core mask = t.clos.(core) <- mask land full_llc_mask t
let clos t ~core = t.clos.(core)

(* The packed-entry accessors.  dirty = -1 means no dirty owner. *)
let dir_sharers v = v lsr 7
let dir_dirty v = (v land 127) - 1
let dir_pack ~sharers ~dirty = (sharers lsl 7) lor (dirty + 1)

let[@inline] dir_val t i = Array.unsafe_get t.dir i
let[@inline] dir_set_val t i v = Array.unsafe_set t.dir i v

let dir_grow t line =
  (let n = Array.length t.dir in
   let n' =
     let rec go n = if line < n then n else go (2 * n) in
     go (2 * n)
   in
   let d = Array.make n' 0 in
   Array.blit t.dir 0 d 0 n;
   t.dir <- d)
  [@alloc.allow
    "directory growth: amortized doubling, bounded by the highest line \
     ever privately cached (simulated footprint / 64); cold after warmup"]

(* Slot of [line] — the line number itself — growing the array to cover
   it if needed. *)
let[@inline] dir_ensure t line =
  if line >= Array.length t.dir then dir_grow t line;
  line

let dir_remove_sharer t line core =
  if line < Array.length t.dir then begin
    let v = dir_val t line in
    if v <> 0 then begin
      let sharers = dir_sharers v land lnot (1 lsl core) in
      let dirty = dir_dirty v in
      let dirty = if dirty = core then -1 else dirty in
      dir_set_val t line (dir_pack ~sharers ~dirty)
    end
  end

(* A line evicted from one private level may still live in the other; only
   drop the directory bit when the core holds no copy at all.  The level
   that just evicted the line cannot still hold it (a line occupies at
   most one way of its set), so each helper probes only the sibling
   level.  [victim] uses {!Cache.access_raw}'s encoding: negative =
   nothing evicted. *)
let evicted_from_l1 t core victim =
  if victim >= 0 && not (Cache.probe t.l2.(core) ~line:victim) then
    dir_remove_sharer t victim core

let evicted_from_l2 t core victim =
  if victim >= 0 && not (Cache.probe t.l1.(core) ~line:victim) then
    dir_remove_sharer t victim core

(* Install [line] into the core's private levels and record the sharer
   bit at directory slot [di] (already ensured by the caller).  Eviction
   removals never insert or grow the table, so [di] stays valid across
   them; and the victims cannot equal [line] (it just missed in both
   levels), so their removal cannot touch [di]'s entry. *)
let fill_private_at t core line di =
  evicted_from_l2 t core
    (Cache.access_raw t.l2.(core) ~line ~way_mask:(Cache.full_mask t.l2.(core)));
  evicted_from_l1 t core
    (Cache.access_raw t.l1.(core) ~line ~way_mask:(Cache.full_mask t.l1.(core)));
  let v = dir_val t di in
  dir_set_val t di
      (dir_pack ~sharers:(dir_sharers v lor (1 lsl core)) ~dirty:(dir_dirty v))

let rec invalidate_core_loop t line remote c n =
  if c >= t.geometry.cores then n
  else if remote land (1 lsl c) <> 0 then begin
    ignore (Cache.invalidate t.l1.(c) ~line);
    ignore (Cache.invalidate t.l2.(c) ~line);
    invalidate_core_loop t line remote (c + 1) (n + 1)
  end
  else invalidate_core_loop t line remote (c + 1) n

(* One line, full path; returns latency in cycles.  Directory traffic is
   one probe per phase: the miss path ensures the slot once up front and
   reuses the index through the dirty check and {!fill_private_at}; the
   write tail folds the remote-invalidate bookkeeping and the owner
   update into a single ensured slot (the sequential compose of
   "drop remotes" then "set owner" collapses to sharers = just this
   core, dirty = this core whenever remotes existed). *)
let access_line t ~core ~line ~write =
  let c = t.costs in
  let st = t.stats.(core) in
  let base_latency =
    if Cache.touch t.l1.(core) ~line then begin
      st.l1_hits <- st.l1_hits + 1;
      c.Costs.l1_hit
    end
    else if Cache.touch t.l2.(core) ~line then begin
      st.l2_hits <- st.l2_hits + 1;
      (* refresh L1 *)
      evicted_from_l1 t core
        (Cache.access_raw t.l1.(core) ~line
           ~way_mask:(Cache.full_mask t.l1.(core)));
      let i = dir_ensure t line in
      let v = dir_val t i in
      dir_set_val t i
          (dir_pack ~sharers:(dir_sharers v lor (1 lsl core)) ~dirty:(dir_dirty v));
      c.Costs.l2_hit
    end
    else begin
      (* remote-dirty check happens before the LLC lookup *)
      let di = dir_ensure t line in
      let v = dir_val t di in
      let d = dir_dirty v in
      let dirty_penalty =
        if d >= 0 && d <> core then begin
          st.dirty_transfers <- st.dirty_transfers + 1;
          dir_set_val t di
              (dir_pack ~sharers:(dir_sharers v) ~dirty:(-1));
          c.Costs.dirty_transfer
        end
        else 0
      in
      let fetch =
        if Cache.access_raw t.llc ~line ~way_mask:t.clos.(core) = -2 then begin
          st.llc_hits <- st.llc_hits + 1;
          c.Costs.llc_hit
        end
        else if dirty_penalty > 0 then begin
          (* forwarded cache-to-cache: no DRAM trip *)
          st.llc_hits <- st.llc_hits + 1;
          c.Costs.llc_hit
        end
        else begin
          st.dram_fetches <- st.dram_fetches + 1;
          c.Costs.dram
        end
      in
      fill_private_at t core line di;
      dirty_penalty + fetch
    end
  in
  if write then begin
    let di = dir_ensure t line in
    let v = dir_val t di in
    let sharers = dir_sharers v in
    let bit = 1 lsl core in
    let remote = sharers land lnot bit in
    if remote = 0 then begin
      dir_set_val t di
          (dir_pack ~sharers:(sharers lor bit) ~dirty:core);
      base_latency
    end
    else begin
      let n = invalidate_core_loop t line remote 0 0 in
      dir_set_val t di (dir_pack ~sharers:bit ~dirty:core);
      st.invalidations_sent <- st.invalidations_sent + 1;
      base_latency + c.Costs.invalidate
      + ((n - 1) * c.Costs.invalidate_per_extra_sharer)
    end
  end
  else base_latency

(* Synthesize the calibrated hit mix during warming: a rotating residue
   mod 1024 (odd stride, full period) is compared against the cumulative
   thresholds, so the generated mix converges on the calibrated ratios
   deterministically and without allocation. *)
let rec warm_account t (st : mutable_stats) n =
  if n > 0 then begin
    let r = t.warm_tick land 1023 in
    t.warm_tick <- t.warm_tick + 421;
    if r < t.warm_l1 then st.l1_hits <- st.l1_hits + 1
    else if r < t.warm_l2 then st.l2_hits <- st.l2_hits + 1
    else if r < t.warm_llc then st.llc_hits <- st.llc_hits + 1
    else st.dram_fetches <- st.dram_fetches + 1;
    warm_account t st (n - 1)
  end

let set_warming t on =
  if on && not t.warming then begin
    (* calibrate the flat per-line costs and the synthetic mix from the
       traffic observed so far (warmup + detailed intervals) *)
    let l1 = ref 0 and l2 = ref 0 and llc = ref 0 and dram = ref 0
    and dirty = ref 0 and inv = ref 0 in
    Array.iter
      (fun (s : mutable_stats) ->
        l1 := !l1 + s.l1_hits;
        l2 := !l2 + s.l2_hits;
        llc := !llc + s.llc_hits;
        dram := !dram + s.dram_fetches;
        dirty := !dirty + s.dirty_transfers;
        inv := !inv + s.invalidations_sent)
      t.stats;
    let acc = !l1 + !l2 + !llc + !dram in
    if acc > 0 then begin
      let c = t.costs in
      let cyc =
        (!l1 * c.Costs.l1_hit) + (!l2 * c.Costs.l2_hit)
        + (!llc * c.Costs.llc_hit) + (!dram * c.Costs.dram)
        + (!dirty * c.Costs.dirty_transfer)
      in
      t.warm_load_cost <- max 1 (cyc / acc);
      t.warm_store_cost <- max 1 ((cyc + (!inv * c.Costs.invalidate)) / acc);
      t.warm_l1 <- !l1 * 1024 / acc;
      t.warm_l2 <- t.warm_l1 + (!l2 * 1024 / acc);
      t.warm_llc <- t.warm_l2 + (!llc * 1024 / acc)
    end
    (* no traffic yet: keep the constructor's L2-ish defaults *)
  end;
  t.warming <- on

let warming t = t.warming

let rec multi_line_loop t ~core ~write first n sf i total =
  if i >= n then total
  else begin
    let cost = access_line t ~core ~line:(first + i) ~write in
    (* trailing sequential lines ride the hardware prefetcher *)
    let cost =
      if i = 0 then cost
      else begin
        let c = cost / sf in
        if c < 1 then 1 else c
      end
    in
    multi_line_loop t ~core ~write first n sf (i + 1) (total + cost)
  end

let multi_line t ~core ~addr ~size ~write =
  if t.warming then begin
    let n = Layout.lines_spanned ~addr ~size in
    warm_account t (Array.unsafe_get t.stats core) n;
    n * (if write then t.warm_store_cost else t.warm_load_cost)
  end
  else begin
    let first = Layout.line_of_addr addr in
    let n = Layout.lines_spanned ~addr ~size in
    multi_line_loop t ~core ~write first n t.costs.Costs.stream_factor 0 0
  end

let[@hot] load t ~core ~addr ~size = multi_line t ~core ~addr ~size ~write:false
let[@hot] store t ~core ~addr ~size = multi_line t ~core ~addr ~size ~write:true

(* Accumulates (total, group_max, in_group) as plain int arguments; each
   MLP group pays only its slowest fetch. *)
let rec prefetch_loop t ~core addrs n mlp i total group_max in_group =
  if i >= n then total + group_max
  else begin
    let lat =
      access_line t ~core ~line:(Layout.line_of_addr addrs.(i)) ~write:false
    in
    let group_max = if lat > group_max then lat else group_max in
    let in_group = in_group + 1 in
    if in_group = mlp then
      prefetch_loop t ~core addrs n mlp (i + 1) (total + group_max) 0 0
    else prefetch_loop t ~core addrs n mlp (i + 1) total group_max in_group
  end

let[@hot] prefetch_batch t ~core addrs =
  let n = Array.length addrs in
  if n = 0 then 0
  else if t.warming then begin
    let c = t.costs in
    warm_account t (Array.unsafe_get t.stats core) n;
    (* each MLP group pays one flat fetch, plus the issue slots *)
    (((n + c.Costs.mlp - 1) / c.Costs.mlp) * t.warm_load_cost)
    + (n * c.Costs.prefetch_issue)
  end
  else begin
    let c = t.costs in
    prefetch_loop t ~core addrs n c.Costs.mlp 0 0 0 0
    + (n * c.Costs.prefetch_issue)
  end

let dma_write t ~addr ~size =
  let first = Layout.line_of_addr addr in
  let n = Layout.lines_spanned ~addr ~size in
  for i = 0 to n - 1 do
    let line = first + i in
    (* DDIO snoops out any core-private copies. *)
    (if line < Array.length t.dir then begin
       let v = dir_val t line in
       if v <> 0 then begin
         let sharers = dir_sharers v in
         for c = 0 to t.geometry.cores - 1 do
           if sharers land (1 lsl c) <> 0 then begin
             ignore (Cache.invalidate t.l1.(c) ~line);
             ignore (Cache.invalidate t.l2.(c) ~line)
           end
         done;
         dir_set_val t line 0
       end
     end);
    if Cache.probe t.llc ~line then begin
      t.nic_llc_hits <- t.nic_llc_hits + 1;
      ignore (Cache.touch t.llc ~line)
    end
    else begin
      t.nic_llc_misses <- t.nic_llc_misses + 1;
      ignore (Cache.access t.llc ~line ~way_mask:t.ddio_mask)
    end
  done

let dma_read t ~addr ~size =
  let first = Layout.line_of_addr addr in
  let n = Layout.lines_spanned ~addr ~size in
  for i = 0 to n - 1 do
    let line = first + i in
    if Cache.probe t.llc ~line then begin
      t.nic_llc_hits <- t.nic_llc_hits + 1;
      ignore (Cache.touch t.llc ~line)
    end
    else t.nic_llc_misses <- t.nic_llc_misses + 1
  done

let core_stats t ~core =
  let s = t.stats.(core) in
  {
    l1_hits = s.l1_hits;
    l2_hits = s.l2_hits;
    llc_hits = s.llc_hits;
    dram_fetches = s.dram_fetches;
    invalidations_sent = s.invalidations_sent;
    dirty_transfers = s.dirty_transfers;
  }

let llc_miss_rate (s : stats) =
  let lookups = s.llc_hits + s.dram_fetches in
  if lookups = 0 then 0.0
  else float_of_int s.dram_fetches /. float_of_int lookups

let nic_dma_stats t = (t.nic_llc_hits, t.nic_llc_misses)

let reset_stats t =
  Array.iter
    (fun (s : mutable_stats) ->
      s.l1_hits <- 0;
      s.l2_hits <- 0;
      s.llc_hits <- 0;
      s.dram_fetches <- 0;
      s.invalidations_sent <- 0;
      s.dirty_transfers <- 0)
    t.stats;
  t.nic_llc_hits <- 0;
  t.nic_llc_misses <- 0;
  Array.iter Cache.reset_stats t.l1;
  Array.iter Cache.reset_stats t.l2;
  Cache.reset_stats t.llc

let probe_llc t ~addr = Cache.probe t.llc ~line:(Layout.line_of_addr addr)

let probe_private t ~core ~addr =
  let line = Layout.line_of_addr addr in
  Cache.probe t.l1.(core) ~line || Cache.probe t.l2.(core) ~line
