type geometry = {
  cores : int;
  l1_sets : int;
  l1_ways : int;
  l2_sets : int;
  l2_ways : int;
  llc_sets : int;
  llc_ways : int;
  ddio_ways : int;
}

let default_geometry ~cores =
  {
    cores;
    l1_sets = 64;
    l1_ways = 8;
    l2_sets = 1024;
    l2_ways = 16;
    (* 42 MB / 64 B / 12 ways *)
    llc_sets = 57_344;
    llc_ways = 12;
    ddio_ways = 2;
  }

let small_geometry ~cores =
  {
    cores;
    l1_sets = 8;
    l1_ways = 4;
    l2_sets = 32;
    l2_ways = 8;
    llc_sets = 512;
    llc_ways = 8;
    ddio_ways = 2;
  }

type mutable_stats = {
  mutable l1_hits : int;
  mutable l2_hits : int;
  mutable llc_hits : int;
  mutable dram_fetches : int;
  mutable invalidations_sent : int;
  mutable dirty_transfers : int;
}

type stats = {
  l1_hits : int;
  l2_hits : int;
  llc_hits : int;
  dram_fetches : int;
  invalidations_sent : int;
  dirty_transfers : int;
}

(* Directory entry: which cores hold the line in a private cache, and which
   (if any) holds it dirty. *)
type dir_entry = { mutable sharers : int; mutable dirty : int }

type t = {
  geometry : geometry;
  costs : Costs.t;
  l1 : Cache.t array;
  l2 : Cache.t array;
  llc : Cache.t;
  clos : int array;
  ddio_mask : int;
  directory : (int, dir_entry) Hashtbl.t;
  stats : mutable_stats array;
  mutable nic_llc_hits : int;
  mutable nic_llc_misses : int;
}

let fresh_stats () : mutable_stats =
  {
    l1_hits = 0;
    l2_hits = 0;
    llc_hits = 0;
    dram_fetches = 0;
    invalidations_sent = 0;
    dirty_transfers = 0;
  }

let create ?(costs = Costs.default) geometry =
  if geometry.cores <= 0 then invalid_arg "Hierarchy.create: no cores";
  if geometry.ddio_ways > geometry.llc_ways then
    invalid_arg "Hierarchy.create: ddio_ways > llc_ways";
  let mk_private name sets ways i =
    Cache.create ~name:(Printf.sprintf "%s[%d]" name i) ~sets ~ways
  in
  let full = (1 lsl geometry.llc_ways) - 1 in
  {
    geometry;
    costs;
    l1 = Array.init geometry.cores (mk_private "l1" geometry.l1_sets geometry.l1_ways);
    l2 = Array.init geometry.cores (mk_private "l2" geometry.l2_sets geometry.l2_ways);
    llc = Cache.create ~name:"llc" ~sets:geometry.llc_sets ~ways:geometry.llc_ways;
    clos = Array.make geometry.cores full;
    ddio_mask = (1 lsl geometry.ddio_ways) - 1;
    directory = Hashtbl.create 1024;
    stats = Array.init geometry.cores (fun _ -> fresh_stats ());
    nic_llc_hits = 0;
    nic_llc_misses = 0;
  }

let geometry t = t.geometry
let costs t = t.costs
let cores t = t.geometry.cores
let ddio_mask t = t.ddio_mask
let full_llc_mask t = Cache.full_mask t.llc
let llc_ways t = t.geometry.llc_ways

let set_clos t ~core mask = t.clos.(core) <- mask land full_llc_mask t
let clos t ~core = t.clos.(core)

(* Cold callers (DMA, probes) take the option; hot callers below match on
   [Hashtbl.find]/[Not_found] instead, which allocates nothing ([Not_found]
   is a constant constructor and [Hashtbl.find] of a missing key raises the
   preallocated exception). *)
let dir_find t line = Hashtbl.find_opt t.directory line

let dir_entry t line =
  match Hashtbl.find t.directory line with
  | e -> e
  | exception Not_found ->
    (let e = { sharers = 0; dirty = -1 } in
     Hashtbl.add t.directory line e;
     e)
    [@alloc.allow
      "directory entry: first touch of a line; bounded by the working set, \
       cold after warmup"]

let dir_remove_sharer t line core =
  match Hashtbl.find t.directory line with
  | exception Not_found -> ()
  | e ->
    e.sharers <- e.sharers land lnot (1 lsl core);
    if e.dirty = core then e.dirty <- -1;
    if e.sharers = 0 && e.dirty = -1 then Hashtbl.remove t.directory line

(* A line evicted from one private level may still live in the other; only
   drop the directory bit when the core holds no copy at all.  [victim]
   uses {!Cache.access_raw}'s encoding: negative = nothing evicted. *)
let private_evicted t core victim =
  if
    victim >= 0
    && (not (Cache.probe t.l1.(core) ~line:victim))
    && not (Cache.probe t.l2.(core) ~line:victim)
  then dir_remove_sharer t victim core

let fill_private t core line =
  private_evicted t core
    (Cache.access_raw t.l2.(core) ~line ~way_mask:(Cache.full_mask t.l2.(core)));
  private_evicted t core
    (Cache.access_raw t.l1.(core) ~line ~way_mask:(Cache.full_mask t.l1.(core)));
  let e = dir_entry t line in
  e.sharers <- e.sharers lor (1 lsl core)

let rec invalidate_core_loop t line remote c n =
  if c >= t.geometry.cores then n
  else if remote land (1 lsl c) <> 0 then begin
    ignore (Cache.invalidate t.l1.(c) ~line);
    ignore (Cache.invalidate t.l2.(c) ~line);
    invalidate_core_loop t line remote (c + 1) (n + 1)
  end
  else invalidate_core_loop t line remote (c + 1) n

(* Invalidate every remote private copy; returns how many existed. *)
let invalidate_remotes t core line =
  match Hashtbl.find t.directory line with
  | exception Not_found -> 0
  | e ->
    let remote = e.sharers land lnot (1 lsl core) in
    if remote = 0 then 0
    else begin
      let n = invalidate_core_loop t line remote 0 0 in
      e.sharers <- e.sharers land (1 lsl core);
      if e.dirty <> core then e.dirty <- -1;
      n
    end

(* One line, full path; returns latency in cycles. *)
let access_line t ~core ~line ~write =
  let c = t.costs in
  let st = t.stats.(core) in
  let base_latency =
    if Cache.touch t.l1.(core) ~line then begin
      st.l1_hits <- st.l1_hits + 1;
      c.Costs.l1_hit
    end
    else if Cache.touch t.l2.(core) ~line then begin
      st.l2_hits <- st.l2_hits + 1;
      (* refresh L1 *)
      private_evicted t core
        (Cache.access_raw t.l1.(core) ~line
           ~way_mask:(Cache.full_mask t.l1.(core)));
      let e = dir_entry t line in
      e.sharers <- e.sharers lor (1 lsl core);
      c.Costs.l2_hit
    end
    else begin
      (* remote-dirty check happens before the LLC lookup *)
      let dirty_penalty =
        match Hashtbl.find t.directory line with
        | exception Not_found -> 0
        | e when e.dirty >= 0 && e.dirty <> core ->
          st.dirty_transfers <- st.dirty_transfers + 1;
          e.dirty <- -1;
          c.Costs.dirty_transfer
        | _ -> 0
      in
      let fetch =
        if Cache.access_raw t.llc ~line ~way_mask:t.clos.(core) = -2 then begin
          st.llc_hits <- st.llc_hits + 1;
          c.Costs.llc_hit
        end
        else if dirty_penalty > 0 then begin
          (* forwarded cache-to-cache: no DRAM trip *)
          st.llc_hits <- st.llc_hits + 1;
          c.Costs.llc_hit
        end
        else begin
          st.dram_fetches <- st.dram_fetches + 1;
          c.Costs.dram
        end
      in
      fill_private t core line;
      dirty_penalty + fetch
    end
  in
  if write then begin
    let remotes = invalidate_remotes t core line in
    let e = dir_entry t line in
    e.sharers <- e.sharers lor (1 lsl core);
    e.dirty <- core;
    if remotes > 0 then begin
      st.invalidations_sent <- st.invalidations_sent + 1;
      base_latency + c.Costs.invalidate
      + ((remotes - 1) * c.Costs.invalidate_per_extra_sharer)
    end
    else base_latency
  end
  else base_latency

let rec multi_line_loop t ~core ~write first n sf i total =
  if i >= n then total
  else begin
    let cost = access_line t ~core ~line:(first + i) ~write in
    (* trailing sequential lines ride the hardware prefetcher *)
    let cost =
      if i = 0 then cost
      else begin
        let c = cost / sf in
        if c < 1 then 1 else c
      end
    in
    multi_line_loop t ~core ~write first n sf (i + 1) (total + cost)
  end

let multi_line t ~core ~addr ~size ~write =
  let first = Layout.line_of_addr addr in
  let n = Layout.lines_spanned ~addr ~size in
  multi_line_loop t ~core ~write first n t.costs.Costs.stream_factor 0 0

let[@hot] load t ~core ~addr ~size = multi_line t ~core ~addr ~size ~write:false
let[@hot] store t ~core ~addr ~size = multi_line t ~core ~addr ~size ~write:true

(* Accumulates (total, group_max, in_group) as plain int arguments; each
   MLP group pays only its slowest fetch. *)
let rec prefetch_loop t ~core addrs n mlp i total group_max in_group =
  if i >= n then total + group_max
  else begin
    let lat =
      access_line t ~core ~line:(Layout.line_of_addr addrs.(i)) ~write:false
    in
    let group_max = if lat > group_max then lat else group_max in
    let in_group = in_group + 1 in
    if in_group = mlp then
      prefetch_loop t ~core addrs n mlp (i + 1) (total + group_max) 0 0
    else prefetch_loop t ~core addrs n mlp (i + 1) total group_max in_group
  end

let[@hot] prefetch_batch t ~core addrs =
  let n = Array.length addrs in
  if n = 0 then 0
  else begin
    let c = t.costs in
    prefetch_loop t ~core addrs n c.Costs.mlp 0 0 0 0
    + (n * c.Costs.prefetch_issue)
  end

let dma_write t ~addr ~size =
  let first = Layout.line_of_addr addr in
  let n = Layout.lines_spanned ~addr ~size in
  for i = 0 to n - 1 do
    let line = first + i in
    (* DDIO snoops out any core-private copies. *)
    (match dir_find t line with
    | None -> ()
    | Some e ->
      for c = 0 to t.geometry.cores - 1 do
        if e.sharers land (1 lsl c) <> 0 then begin
          ignore (Cache.invalidate t.l1.(c) ~line);
          ignore (Cache.invalidate t.l2.(c) ~line)
        end
      done;
      e.sharers <- 0;
      e.dirty <- -1);
    if Cache.probe t.llc ~line then begin
      t.nic_llc_hits <- t.nic_llc_hits + 1;
      ignore (Cache.touch t.llc ~line)
    end
    else begin
      t.nic_llc_misses <- t.nic_llc_misses + 1;
      ignore (Cache.access t.llc ~line ~way_mask:t.ddio_mask)
    end
  done

let dma_read t ~addr ~size =
  let first = Layout.line_of_addr addr in
  let n = Layout.lines_spanned ~addr ~size in
  for i = 0 to n - 1 do
    let line = first + i in
    if Cache.probe t.llc ~line then begin
      t.nic_llc_hits <- t.nic_llc_hits + 1;
      ignore (Cache.touch t.llc ~line)
    end
    else t.nic_llc_misses <- t.nic_llc_misses + 1
  done

let core_stats t ~core =
  let s = t.stats.(core) in
  {
    l1_hits = s.l1_hits;
    l2_hits = s.l2_hits;
    llc_hits = s.llc_hits;
    dram_fetches = s.dram_fetches;
    invalidations_sent = s.invalidations_sent;
    dirty_transfers = s.dirty_transfers;
  }

let llc_miss_rate (s : stats) =
  let lookups = s.llc_hits + s.dram_fetches in
  if lookups = 0 then 0.0
  else float_of_int s.dram_fetches /. float_of_int lookups

let nic_dma_stats t = (t.nic_llc_hits, t.nic_llc_misses)

let reset_stats t =
  Array.iter
    (fun (s : mutable_stats) ->
      s.l1_hits <- 0;
      s.l2_hits <- 0;
      s.llc_hits <- 0;
      s.dram_fetches <- 0;
      s.invalidations_sent <- 0;
      s.dirty_transfers <- 0)
    t.stats;
  t.nic_llc_hits <- 0;
  t.nic_llc_misses <- 0;
  Array.iter Cache.reset_stats t.l1;
  Array.iter Cache.reset_stats t.l2;
  Cache.reset_stats t.llc

let probe_llc t ~addr = Cache.probe t.llc ~line:(Layout.line_of_addr addr)

let probe_private t ~core ~addr =
  let line = Layout.line_of_addr addr in
  Cache.probe t.l1.(core) ~line || Cache.probe t.l2.(core) ~line
