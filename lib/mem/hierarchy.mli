(** Three-level cache hierarchy with CAT way partitioning, DDIO, and a
    MESI-lite coherence cost model.

    Geometry mirrors the paper's testbed: private L1/L2 per core and one
    shared LLC.  Way masks implement Intel CAT classes of service: a core's
    mask restricts which LLC ways it may allocate into (lookups hit
    anywhere).  The NIC's DMA engine implements DDIO: writes update lines in
    place when present in the LLC and otherwise allocate only into the
    [ddio_ways] rightmost ways; DMA reads never allocate.

    Coherence is cost-only: a directory tracks which cores hold each line in
    their private caches so that writes charge an invalidation penalty and
    reads of remotely-dirty lines charge a cache-to-cache transfer — the
    effects behind Figures 2c and the put-uniform analysis of §5.2.1. *)

type geometry = {
  cores : int;
  l1_sets : int;
  l1_ways : int;
  l2_sets : int;
  l2_ways : int;
  llc_sets : int;
  llc_ways : int;
  ddio_ways : int;
}

val default_geometry : cores:int -> geometry
(** 32 KB/8-way L1, 1 MB/16-way L2, 42 MB/12-way LLC, 2 DDIO ways. *)

val small_geometry : cores:int -> geometry
(** A scaled-down machine (256 KB LLC) for fast unit tests: the same code
    paths with much smaller arrays. *)

type t

val create : ?costs:Costs.t -> geometry -> t
val geometry : t -> geometry
val costs : t -> Costs.t
val cores : t -> int

(** {1 CPU-side accesses} — all return the latency in cycles. *)

val load : t -> core:int -> addr:int -> size:int -> int
val store : t -> core:int -> addr:int -> size:int -> int

val prefetch_batch : t -> core:int -> int array -> int
(** Overlapped cost of fetching the given addresses together, limited by the
    core's memory-level parallelism: within an MLP group only the slowest
    fetch is paid, plus one issue slot per prefetch.  This is the
    batched-indexing model of §3.3. *)

(** {1 NIC DMA (DDIO)} — costs are borne by the link model, not the CPU. *)

val dma_write : t -> addr:int -> size:int -> unit
val dma_read : t -> addr:int -> size:int -> unit

(** {1 Way allocation (CAT)} *)

val set_clos : t -> core:int -> int -> unit
(** Set the LLC allocation mask for a core.  An empty mask makes the core's
    fills bypass the LLC. *)

val clos : t -> core:int -> int
val ddio_mask : t -> int
val full_llc_mask : t -> int
val llc_ways : t -> int

(** {1 Functional warming (interval sampling)} *)

val set_warming : t -> bool -> unit
(** Switch the CPU-side cost model into (or out of) the functional-warming
    regime used by [mutps.sample] to fast-forward between detailed
    intervals.  While on, {!load}/{!store}/{!prefetch_batch} bypass the
    cache arrays and charge a flat per-line cost calibrated — at the
    moment of switching on — from the hit mix observed so far; the
    per-core hit statistics continue deterministically at the calibrated
    ratios so interval signatures remain comparable across regimes.  The
    under-test state machines (store, index, hot set, queues) still run
    for real; only cache-array contents go stale, which is why the
    sampler re-runs a short detailed prefix before each measured
    interval.  NIC DMA ({!dma_write}/{!dma_read}) stays detailed. *)

val warming : t -> bool

(** {1 Statistics} *)

type stats = {
  l1_hits : int;
  l2_hits : int;
  llc_hits : int;
  dram_fetches : int;
  invalidations_sent : int;
  dirty_transfers : int;
}

val core_stats : t -> core:int -> stats

val llc_miss_rate : stats -> float
(** DRAM fetches over LLC lookups ([llc_hits + dram_fetches]). *)

val nic_dma_stats : t -> int * int
(** [(llc_hits, llc_misses)] over DMA operations — the DDIO-miss signal. *)

val reset_stats : t -> unit

(** {1 Introspection for tests} *)

val probe_llc : t -> addr:int -> bool
val probe_private : t -> core:int -> addr:int -> bool
