(** Structured experiment results: rows, canonical JSON, and result-file
    comparison for the CI bench-regression gate.

    The DES is deterministic, so serialized rows are bit-reproducible for
    a given build and scale; [diff ~tolerance:0.0] therefore gates on
    exact metric equality rather than noisy wall-clock thresholds. *)

type row = {
  experiment : string;  (** registry name, e.g. "fig7" *)
  system : string;  (** "uTPS", "BaseKV", ...; "" if not applicable *)
  axis : (string * string) list;  (** grid coordinates, sorted by key *)
  metrics : (string * float) list;  (** named values, sorted by key *)
}

val row :
  experiment:string -> ?system:string -> axis:(string * string) list ->
  (string * float) list -> row
(** Smart constructor: sorts [axis] and the metric list by key. *)

val of_measurement :
  experiment:string -> system:string -> axis:(string * string) list ->
  Harness.measurement -> row
(** A row carrying the harness's standard metrics: completed,
    cr_hit_rate, mops, p50_us, p99_us — plus the measurement's [extra]
    metrics (sampled runs: [*_err] error bounds and [sample_*]
    bookkeeping). *)

val metric : row -> string -> float option
val metric_exn : row -> string -> float

val find :
  row list -> experiment:string -> ?system:string ->
  axis:(string * string) list -> unit -> row option

val find_metric :
  row list -> experiment:string -> ?system:string ->
  axis:(string * string) list -> string -> float
(** Lookup used by the text renderers; raises [Invalid_argument] when the
    row is absent. *)

(** {1 Canonical JSON} *)

val schema : string
(** Document schema tag, ["mutps-bench/v1"]. *)

val float_to_string : float -> string
(** The fixed idempotent formatter: ["%.6f"] with trailing zeros
    stripped; non-finite values render as ["0"]. *)

val to_json : row list -> string
(** Canonical document: sorted keys, one row per line, byte-reproducible
    for equal rows. *)

val write_file : string -> row list -> unit

exception Parse_error of string

val of_json : string -> row list
(** Accepts any JSON document with the {!schema} shape (not only the
    canonical rendering); raises {!Parse_error}. *)

val read_file : string -> row list

(** {1 Comparison} *)

type drift =
  | Missing_row of row
  | Extra_row of row
  | Metric_drift of {
      base : row;
      name : string;
      expected : float;
      actual : float option;
    }

val diff :
  ?one_sided:bool -> ?tolerance:float -> baseline:row list ->
  current:row list -> unit -> drift list
(** Rows are keyed by (experiment, system, axis).  With [tolerance] 0
    (the default) metric values must agree exactly (canonical renderings
    equal); otherwise a relative tolerance
    [|e - a| <= tolerance * max |e| |a|] applies.  With [one_sided]
    (the perf-trajectory gate) only [actual < expected * (1 - tolerance)]
    counts as drift — higher-is-better metrics may improve freely. *)

val drift_to_string : drift -> string
val row_label : row -> string
