(** Figure 11 — scalability with worker threads (YCSB-A; 8 B and 256 B
    items; both indexes). *)

module Ycsb = Mutps_workload.Ycsb
module Kvs = Mutps_kvs

let index_key = function Kvs.Config.Tree -> "tree" | Kvs.Config.Hash -> "hash"

let run_cell scale ~index ~size =
  let scale =
    { scale with
      Harness.warmup = scale.Harness.warmup / 2;
      measure = scale.Harness.measure * 3 / 5 }
  in
  let index_name = index_key index in
  Harness.section
    (Printf.sprintf "Figure 11 (%s index, %dB items): scalability" index_name size);
  let spec = Ycsb.a ~keyspace:scale.Harness.keyspace ~value_size:size () in
  let points =
    List.filter (fun n -> n <= scale.Harness.cores) [ 2; 4; 8; 12; 16; 20; 24; 28 ]
  in
  let axis_of threads =
    [
      ("index", index_name); ("size", string_of_int size);
      ("threads", string_of_int threads);
    ]
  in
  let rows =
    List.concat_map
      (fun threads ->
        let s = { scale with Harness.cores = threads } in
        List.map
          (fun sys ->
            Report.of_measurement ~experiment:"fig11"
              ~system:(Harness.system_name sys) ~axis:(axis_of threads)
              (Harness.measure ~index sys s spec))
          [ Harness.Mutps; Harness.Basekv; Harness.Erpckv ])
      points
  in
  let table = Table.create [ "threads"; "uTPS"; "BaseKV"; "eRPC-KV" ] in
  List.iter
    (fun threads ->
      let m system =
        Report.find_metric rows ~experiment:"fig11" ~system
          ~axis:(axis_of threads) "mops"
      in
      Table.add_row table
        [
          string_of_int threads;
          Table.cell_f (m "uTPS");
          Table.cell_f (m "BaseKV");
          Table.cell_f (m "eRPC-KV");
        ])
    points;
  Harness.print_table table;
  rows

let run scale =
  List.concat_map
    (fun (index, size) -> run_cell scale ~index ~size)
    [
      (Kvs.Config.Tree, 8);
      (Kvs.Config.Tree, 256);
      (Kvs.Config.Hash, 8);
      (Kvs.Config.Hash, 256);
    ]
