(** Figure 13 — auto-tuner behaviour: (a) worker-thread ratio given to the
    MR layer and (b) LLC ways reused by the MR layer, across keyspace ×
    item size × skew; (c) cached share of the hot set across skews and
    indexes.  Each cell runs the real {!Mutps_kvs.Autotuner} to
    convergence. *)

module Engine = Mutps_sim.Engine
module Opgen = Mutps_workload.Opgen
module Ycsb = Mutps_workload.Ycsb
module Client = Mutps_net.Client
module Kvs = Mutps_kvs

let tuner_params =
  {
    Kvs.Autotuner.window = 2_000_000;
    settle = 400_000;
    cache_step = 333;
    cache_points = 4;
    auto_threshold = infinity;
  }

(* Run μTPS under [spec] with the real auto-tuner until one pass
   completes; return the applied (ncr, hot, ways). *)
let tuned_config (scale : Harness.scale) ?(index = Kvs.Config.Tree) spec =
  let built = Harness.build ~index Harness.Mutps scale spec in
  let kv = Option.get built.Harness.kv_mutps in
  let tuner = Kvs.Autotuner.create ~params:tuner_params kv in
  Kvs.Autotuner.spawn tuner;
  let _clients = Harness.start_clients built scale spec in
  Engine.run built.Harness.engine ~until:scale.Harness.warmup;
  Kvs.Autotuner.trigger tuner;
  let guard = ref 0 in
  while Kvs.Autotuner.tunes_completed tuner < 1 && !guard < 600 do
    Engine.run built.Harness.engine
      ~until:(Engine.now built.Harness.engine + 5_000_000);
    incr guard
  done;
  match Kvs.Autotuner.last_applied tuner with
  | Some cfg -> cfg
  | None -> (Kvs.Mutps.ncr kv, Kvs.Mutps.hot_target kv, Kvs.Mutps.mr_ways kv)

let grid_13ab scale =
  List.concat_map
    (fun keyspace ->
      List.concat_map
        (fun size ->
          List.map
            (fun (dist_name, skewed) -> (keyspace, size, dist_name, skewed))
            [ ("zipfian", true); ("uniform", false) ])
        [ 8; 1024 ])
    [ scale.Harness.keyspace / 4; scale.Harness.keyspace ]

let axis_13ab (keyspace, size, dist_name, _) =
  [
    ("dist", dist_name); ("keyspace", string_of_int keyspace);
    ("size", string_of_int size);
  ]

let run_13ab scale =
  Harness.section
    "Figure 13a/13b: tuner-chosen MR thread ratio and MR LLC-way ratio";
  let cores = scale.Harness.cores in
  let rows =
    List.map
      (fun ((keyspace, size, _, skewed) as cell) ->
        let s = { scale with Harness.keyspace } in
        let spec =
          if skewed then Ycsb.a ~keyspace ~value_size:size ()
          else
            { (Ycsb.a ~keyspace ~value_size:size ()) with
              Opgen.key_dist = Opgen.Uniform }
        in
        let ncr, hot, ways = tuned_config s spec in
        Harness.printf ".";
        Report.row ~experiment:"fig13ab" ~system:"uTPS" ~axis:(axis_13ab cell)
          [
            ("hot", float_of_int hot);
            ("mr_threads_pct",
             100.0 *. float_of_int (cores - ncr) /. float_of_int cores);
            ("mr_ways_pct", 100.0 *. float_of_int ways /. 12.0);
            ("ncr", float_of_int ncr);
            ("ways", float_of_int ways);
          ])
      (grid_13ab scale)
  in
  Harness.printf "\n";
  let table =
    Table.create
      [ "keyspace"; "size"; "dist"; "MR threads %"; "MR ways %"; "hot items" ]
  in
  List.iter
    (fun ((keyspace, size, dist_name, _) as cell) ->
      let m name =
        Report.find_metric rows ~experiment:"fig13ab" ~system:"uTPS"
          ~axis:(axis_13ab cell) name
      in
      Table.add_row table
        [
          string_of_int keyspace;
          string_of_int size;
          dist_name;
          Printf.sprintf "%.0f%%" (m "mr_threads_pct");
          Printf.sprintf "%.0f%%" (m "mr_ways_pct");
          Printf.sprintf "%.0f" (m "hot");
        ])
    (grid_13ab scale);
  Harness.print_table table;
  rows

let grid_13c =
  List.concat_map
    (fun index -> List.map (fun theta -> (index, theta)) [ 0.60; 0.80; 0.99 ])
    [ Kvs.Config.Tree; Kvs.Config.Hash ]

let index_key = function Kvs.Config.Tree -> "tree" | Kvs.Config.Hash -> "hash"

let axis_13c (index, theta) =
  [ ("index", index_key index); ("theta", Printf.sprintf "%.2f" theta) ]

let run_13c scale =
  Harness.section "Figure 13c: cached share of the hot set vs skew";
  let rows =
    List.map
      (fun ((index, theta) as cell) ->
        let keyspace = scale.Harness.keyspace in
        let spec =
          { (Ycsb.a ~keyspace ~value_size:64 ()) with
            Opgen.key_dist = Opgen.Zipfian theta }
        in
        let _, hot, _ = tuned_config scale ~index spec in
        let max_hot =
          min
            (tuner_params.Kvs.Autotuner.cache_step
            * (tuner_params.Kvs.Autotuner.cache_points - 1))
            (max 64 (scale.Harness.keyspace / 200))
        in
        Harness.printf ".";
        Report.row ~experiment:"fig13c" ~system:"uTPS" ~axis:(axis_13c cell)
          [
            ("cached_pct",
             100.0 *. float_of_int hot /. float_of_int (max max_hot 1));
            ("hot", float_of_int hot);
          ])
      grid_13c
  in
  Harness.printf "\n";
  let table = Table.create [ "index"; "zipf theta"; "cached/hot-set %" ] in
  List.iter
    (fun ((index, theta) as cell) ->
      let m name =
        Report.find_metric rows ~experiment:"fig13c" ~system:"uTPS"
          ~axis:(axis_13c cell) name
      in
      Table.add_row table
        [
          index_key index;
          Printf.sprintf "%.2f" theta;
          Printf.sprintf "%.0f%%" (m "cached_pct");
        ])
    grid_13c;
  Harness.print_table table;
  rows

let run scale = run_13ab scale @ run_13c scale
