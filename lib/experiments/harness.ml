(** Shared experiment harness: build a system, pre-populate, drive it with
    closed-loop clients, measure after a warm-up window.

    μTPS datapoints run a short "trisection-lite" calibration (three
    candidate thread splits, picking the best over a quarter-length probe)
    standing in for a full auto-tuner pass on every grid cell; Figures 13
    and 14 exercise the real {!Mutps_kvs.Autotuner}. *)

module Engine = Mutps_sim.Engine
module Stats = Mutps_sim.Stats
module Opgen = Mutps_workload.Opgen
module Client = Mutps_net.Client
module Hierarchy = Mutps_mem.Hierarchy
module Sample = Mutps_sample.Sample
module Signature = Mutps_sample.Signature
module Kvs = Mutps_kvs

type scale = {
  keyspace : int;
  cores : int;
  clients : int;
  window : int;
  warmup : int;  (** cycles before stats reset *)
  measure : int;  (** measured cycles *)
  sample : Sample.cfg option;
      (** interval sampling: simulate only representative intervals of
          the measured window and reconstruct full-run estimates with
          error bounds (paper-scale runs); [None] = exact *)
}

(* Default scale: 200K-item store (vs the paper's 10M — same
   LLC-overflowing regime, tractable wall time), 12 worker cores, 256
   outstanding requests (saturating), 4 ms warmup + 10 ms measured. *)
let default_scale =
  {
    keyspace = 200_000;
    cores = 12;
    clients = 64;
    window = 4;
    warmup = 10_000_000;
    measure = 25_000_000;
    sample = None;
  }

let scale_from_env () =
  match Sys.getenv_opt "MUTPS_BENCH_SCALE" with
  | None | Some "" -> default_scale
  | Some s ->
    let f = float_of_string s in
    let scaled v = max 1 (int_of_float (float_of_int v *. f)) in
    {
      default_scale with
      keyspace = scaled default_scale.keyspace;
      warmup = scaled default_scale.warmup;
      measure = scaled default_scale.measure;
      (* saturation needs outstanding depth even at small scale *)
      clients = max 48 (scaled default_scale.clients);
    }

type system = Mutps | Basekv | Erpckv

let system_name = function
  | Mutps -> "uTPS"
  | Basekv -> "BaseKV"
  | Erpckv -> "eRPC-KV"

type measurement = {
  mops : float;
  p50_us : float;
  p99_us : float;
  completed : int;
  cr_hit_rate : float;  (** μTPS only; 0 otherwise *)
  extra : (string * float) list;
      (** additional metrics carried into the report row; sampled runs
          put their per-metric error bounds ([mops_err], ...) and
          sampling bookkeeping ([sample_phases], [sample_coverage], ...)
          here.  Empty for exact runs. *)
}

let ghz config = config.Kvs.Config.costs.Mutps_mem.Costs.ghz

let populate_size (spec : Opgen.spec) =
  let m = int_of_float (Opgen.mean_value_size spec) in
  max 8 m

let mk_config ?(index = Kvs.Config.Tree) ?(tweak = Fun.id) (scale : scale) =
  let c = Kvs.Config.default ~cores:scale.cores ~index ~capacity:scale.keyspace () in
  tweak
    {
      c with
      (* refresh the hot set every simulated 2 ms so warmup suffices *)
      Kvs.Config.refresh_cycles = 5_000_000;
      (* keep the paper's footprint-to-LLC pressure at reduced keyspace *)
      geometry =
        Some (Kvs.Config.scaled_geometry ~cores:scale.cores ~keyspace:scale.keyspace);
      (* hot set sized like the paper's 10K of 10M: same Zipfian coverage *)
      hot_k = max 64 (scale.keyspace / 200);
    }

type built = {
  engine : Engine.t;
  link : Mutps_net.Link.t;
  transport : Mutps_net.Transport.t;
  dispatch : Opgen.op -> int;
  kv_mutps : Kvs.Mutps.t option;
  backend : Kvs.Backend.t;
}

let build ?index ?ncr ?tweak system (scale : scale) (spec : Opgen.spec) =
  (* label metric registrations (and thus counter tracks) with the system
     under test — fig2-style experiments build several per run *)
  (match Mutps_trace.Metrics.current () with
  | Some reg -> Mutps_trace.Metrics.set_scope reg (system_name system)
  | None -> ());
  let config = mk_config ?index ?tweak scale in
  let vsize = populate_size spec in
  match system with
  | Basekv ->
    let kv = Kvs.Basekv.create config in
    Kvs.Backend.populate
      ~size_of:(Opgen.size_for_key spec)
      (Kvs.Basekv.backend kv) ~keyspace:scale.keyspace ~value_size:vsize;
    Kvs.Basekv.start kv;
    let b = Kvs.Basekv.backend kv in
    {
      engine = b.Kvs.Backend.engine;
      link = b.Kvs.Backend.link;
      transport = Kvs.Basekv.transport kv;
      dispatch = Client.uniform_dispatch;
      kv_mutps = None;
      backend = b;
    }
  | Erpckv ->
    let kv = Kvs.Erpckv.create config in
    Kvs.Backend.populate
      ~size_of:(Opgen.size_for_key spec)
      (Kvs.Erpckv.backend kv) ~keyspace:scale.keyspace ~value_size:vsize;
    Kvs.Erpckv.start kv;
    let b = Kvs.Erpckv.backend kv in
    {
      engine = b.Kvs.Backend.engine;
      link = b.Kvs.Backend.link;
      transport = Kvs.Erpckv.transport kv;
      dispatch = Kvs.Erpckv.dispatch kv;
      kv_mutps = None;
      backend = b;
    }
  | Mutps ->
    let kv = Kvs.Mutps.create ?ncr config in
    Kvs.Backend.populate
      ~size_of:(Opgen.size_for_key spec)
      (Kvs.Mutps.backend kv) ~keyspace:scale.keyspace ~value_size:vsize;
    Kvs.Mutps.start kv;
    let b = Kvs.Mutps.backend kv in
    {
      engine = b.Kvs.Backend.engine;
      link = b.Kvs.Backend.link;
      transport = Kvs.Mutps.transport kv;
      dispatch = Client.uniform_dispatch;
      kv_mutps = Some kv;
      backend = b;
    }

let start_clients built (scale : scale) spec =
  Client.start ~engine:built.engine ~link:built.link ~transport:built.transport
    {
      Client.clients = scale.clients;
      window = scale.window;
      spec;
      seed = 7;
      dispatch = built.dispatch;
    }

(* Probe candidate CR/MR splits over short windows and keep the best — the
   grid-cell stand-in for a full auto-tuner pass. *)
let calibrate_split ?probe built (scale : scale) clients =
  match built.kv_mutps with
  | None -> ()
  | Some kv ->
    let cores = scale.cores in
    let frac num den = max 1 (min (cores - 1) (num * cores / den)) in
    let candidates =
      List.sort_uniq compare
        [ frac 1 4; frac 3 8; frac 1 2; frac 2 3; frac 3 4 ]
    in
    let probe =
      match probe with
      | Some p -> p
      | None -> max 2_500_000 (scale.measure / 6)
    in
    let best = ref (-1) and best_rate = ref (-1) in
    List.iter
      (fun ncr ->
        Kvs.Mutps.set_split kv ~ncr;
        (* settle, then probe *)
        Engine.run built.engine ~until:(Engine.now built.engine + (probe / 2));
        let c0 = Client.completed clients in
        Engine.run built.engine ~until:(Engine.now built.engine + probe);
        let rate = Client.completed clients - c0 in
        if rate > !best_rate then begin
          best_rate := rate;
          best := ncr
        end)
      candidates;
    Kvs.Mutps.set_split kv ~ncr:!best;
    Engine.run built.engine ~until:(Engine.now built.engine + (probe / 2));
    (* probe the cache-resize axis too: under write-heavy skew, serving hot
       puts at the CR layer can concentrate lock contention, and the tuner's
       answer is to shrink the hot set (Â§3.5 cache resizing / Figure 13c) *)
    let hot_default = Kvs.Mutps.hot_target kv in
    let measure_hot hot =
      Kvs.Mutps.set_hot_target kv hot;
      Kvs.Mutps.refresh_now kv;
      Engine.run built.engine ~until:(Engine.now built.engine + (probe / 2));
      let c0 = Client.completed clients in
      Engine.run built.engine ~until:(Engine.now built.engine + probe);
      Client.completed clients - c0
    in
    let with_default = measure_hot hot_default in
    let with_zero = measure_hot 0 in
    if with_default >= with_zero then begin
      Kvs.Mutps.set_hot_target kv hot_default;
      Kvs.Mutps.refresh_now kv;
      (* wait until the republished hot set is live again *)
      let guard = ref 0 in
      while Kvs.Mutps.hot_size kv = 0 && !guard < 40 do
        Engine.run built.engine ~until:(Engine.now built.engine + (probe / 8));
        incr guard
      done
    end

let measure_exact ?index ?ncr ?tweak ~calibrate ?customize system scale spec =
  let built = build ?index ?ncr ?tweak system scale spec in
  (match customize with Some f -> f built | None -> ());
  let clients = start_clients built scale spec in
  Engine.run built.engine ~until:scale.warmup;
  if system = Mutps && calibrate then calibrate_split built scale clients;
  (match built.kv_mutps with
  | Some kv -> Kvs.Mutps.refresh_now kv
  | None -> ());
  let t0 = Engine.now built.engine in
  Client.reset_stats clients;
  let hits0 =
    match built.kv_mutps with Some kv -> Kvs.Mutps.cr_hits kv | None -> 0
  in
  Engine.run built.engine ~until:(t0 + scale.measure);
  let completed = Client.completed clients in
  let hist = Client.latency clients in
  let g = ghz (mk_config scale) in
  let cycles_to_us c = float_of_int c /. g /. 1000.0 in
  let cr_hit_rate =
    match built.kv_mutps with
    | Some kv when completed > 0 ->
      float_of_int (Kvs.Mutps.cr_hits kv - hits0) /. float_of_int completed
    | _ -> 0.0
  in
  {
    mops = Stats.mops ~ops:completed ~cycles:scale.measure ~ghz:g;
    p50_us = cycles_to_us (Stats.Hist.percentile hist 50.0);
    p99_us = cycles_to_us (Stats.Hist.percentile hist 99.0);
    completed;
    cr_hit_rate;
    extra = [];
  }

(* ---- interval sampling (lib/sample) ------------------------------- *)

(* Warmup brings the caches and hot set to steady state; its length does
   not need to track a paper-scale measured window. *)
let sampled_warmup cfg (scale : scale) = min scale.warmup cfg.Sample.max_warmup

(* Short calibration probes in sampled mode: the exact-mode formula
   scales with the (possibly enormous) nominal window. *)
let sampled_probe (scale : scale) =
  max 100_000 (min 2_500_000 (scale.measure / 6))

(* Aggregated hierarchy counters as ad-hoc signature features, for
   drivers that run without a metrics registry (fig2a replay, fig2b). *)
let hier_signature_counters hier =
  let cores = Hierarchy.cores hier in
  let agg f () =
    let acc = ref 0 in
    for core = 0 to cores - 1 do
      acc := !acc + f (Hierarchy.core_stats hier ~core)
    done;
    float_of_int !acc
  in
  [|
    agg (fun s -> s.Hierarchy.l1_hits);
    agg (fun s -> s.Hierarchy.l2_hits);
    agg (fun s -> s.Hierarchy.llc_hits);
    agg (fun s -> s.Hierarchy.dram_fetches);
    agg (fun s -> s.Hierarchy.invalidations_sent);
    agg (fun s -> s.Hierarchy.dirty_transfers);
  |]

(* Per-interval estimates scale to full-run numbers: ops in an interval
   of [cfg.interval] cycles -> Mops, and -> a completed count over the
   nominal window. *)
let sampled_mops cfg ~ghz v = v /. float_of_int cfg.Sample.interval *. ghz *. 1000.0

let measure_sampled ?index ?ncr ?tweak ~calibrate ?customize cfg system
    (scale : scale) spec =
  (* a private registry so the build's subsystem constructors register
     this system's signature sources, whatever the ambient observability
     setup; restored right after the build *)
  let outer = Mutps_trace.Metrics.current () in
  let reg = Mutps_trace.Metrics.create () in
  Mutps_trace.Metrics.set_current (Some reg);
  let built =
    Fun.protect
      ~finally:(fun () -> Mutps_trace.Metrics.set_current outer)
      (fun () -> build ?index ?ncr ?tweak system scale spec)
  in
  (match customize with Some f -> f built | None -> ());
  let clients = start_clients built scale spec in
  Engine.run built.engine ~until:(sampled_warmup cfg scale);
  if system = Mutps && calibrate then
    calibrate_split ~probe:(sampled_probe scale) built scale clients;
  (match built.kv_mutps with
  | Some kv -> Kvs.Mutps.refresh_now kv
  | None -> ());
  let hier = built.backend.Kvs.Backend.hier in
  let src =
    Signature.of_metrics ~engine_id:(Engine.id built.engine) reg
  in
  let hits0 = ref 0 in
  let probe =
    {
      Sample.set_warming =
        (fun on ->
          Hierarchy.set_warming hier on;
          Client.set_recording clients (not on));
      begin_interval =
        (fun () ->
          Client.reset_stats clients;
          hits0 :=
            (match built.kv_mutps with
            | Some kv -> Kvs.Mutps.cr_hits kv
            | None -> 0));
      end_interval =
        (fun () ->
          let completed = Client.completed clients in
          let hist = Client.latency clients in
          let hits =
            (match built.kv_mutps with
            | Some kv -> Kvs.Mutps.cr_hits kv
            | None -> 0)
            - !hits0
          in
          [
            ("ops", float_of_int completed);
            ("p50", float_of_int (Stats.Hist.percentile hist 50.0));
            ("p99", float_of_int (Stats.Hist.percentile hist 99.0));
            ("cr_hits", float_of_int hits);
          ]);
      signature = (fun () -> Signature.take src);
    }
  in
  let o = Sample.run cfg ~engine:built.engine ~probe ~measure:scale.measure in
  let g = ghz (mk_config scale) in
  let est name = List.assoc name o.Sample.metrics in
  let ops = est "ops" and p50 = est "p50" and p99 = est "p99" in
  let crh = est "cr_hits" in
  let cycles_to_us c = c /. g /. 1000.0 in
  let full v = v *. float_of_int scale.measure /. float_of_int cfg.Sample.interval in
  let safe_ops = Float.max ops.Sample.value 1.0 in
  let cr_hit_rate =
    match built.kv_mutps with
    | Some _ -> Float.max 0.0 (crh.Sample.value /. safe_ops)
    | None -> 0.0
  in
  (* ratio error: relative errors of numerator and denominator add *)
  let cr_hit_rate_err =
    cr_hit_rate
    *. ((crh.Sample.err /. Float.max crh.Sample.value 1.0)
        +. (ops.Sample.err /. safe_ops))
  in
  {
    mops = sampled_mops cfg ~ghz:g ops.Sample.value;
    p50_us = cycles_to_us p50.Sample.value;
    p99_us = cycles_to_us p99.Sample.value;
    completed = int_of_float (Float.round (full ops.Sample.value));
    cr_hit_rate;
    extra =
      [
        ("mops_err", sampled_mops cfg ~ghz:g ops.Sample.err);
        ("p50_us_err", cycles_to_us p50.Sample.err);
        ("p99_us_err", cycles_to_us p99.Sample.err);
        ("completed_err", Float.round (full ops.Sample.err));
        ("cr_hit_rate_err", cr_hit_rate_err);
        ("sample_phases", float_of_int o.Sample.phases);
        ("sample_intervals", float_of_int o.Sample.intervals);
        ("sample_detailed", float_of_int o.Sample.detailed);
        ("sample_coverage", o.Sample.coverage);
      ];
  }

let measure ?index ?ncr ?tweak ?(calibrate = true) ?customize system scale spec =
  match scale.sample with
  | None ->
    measure_exact ?index ?ncr ?tweak ~calibrate ?customize system scale spec
  | Some cfg ->
    measure_sampled ?index ?ncr ?tweak ~calibrate ?customize cfg system scale
      spec

(* Domain-local output sink.  Experiments never print to stdout directly;
   they write through [printf]/[print_table], which the parallel runner
   redirects into a per-experiment buffer so concurrent experiments do
   not interleave their tables.  Outside the runner (and in the default
   per-domain state) output still lands on stdout.  Deliberately not
   inherited at domain spawn: a worker writes to stdout unless the runner
   explicitly installs its buffer. *)
let sink : Buffer.t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let print_string s =
  match Domain.DLS.get sink with
  | Some b -> Buffer.add_string b s
  | None ->
    Stdlib.print_string s;
    Stdlib.flush Stdlib.stdout

let printf fmt = Printf.ksprintf print_string fmt

let with_output buf f =
  let prev = Domain.DLS.get sink in
  Domain.DLS.set sink (Some buf);
  Fun.protect ~finally:(fun () -> Domain.DLS.set sink prev) f

let section title = printf "\n=== %s ===\n" title
let print_table t = print_string (Table.to_string t)

