(** Structured experiment results.

    Every experiment returns a list of {!row}s — one per (grid cell,
    system) datapoint — instead of only printing.  Rows serialize to a
    *canonical* JSON document: object keys sorted, one row per line,
    floats rendered by a fixed idempotent formatter.  Because the DES is
    deterministic, two runs of the same build at the same scale produce
    byte-identical documents, so CI can gate on exact equality
    ([bench-compare --tolerance 0]) instead of noisy wall-clock
    thresholds. *)

type row = {
  experiment : string;
  system : string;  (** "" where no system axis applies (e.g. table1) *)
  axis : (string * string) list;  (** grid coordinates, e.g. size=64 *)
  metrics : (string * float) list;  (** mops, p50_us, ncr, ... *)
}

let by_key (a, _) (b, _) = String.compare a b

let row ~experiment ?(system = "") ~axis metrics =
  {
    experiment;
    system;
    axis = List.sort_uniq by_key axis;
    metrics = List.sort_uniq by_key metrics;
  }

let of_measurement ~experiment ~system ~axis (m : Harness.measurement) =
  row ~experiment ~system ~axis
    ([
       ("completed", float_of_int m.Harness.completed);
       ("cr_hit_rate", m.Harness.cr_hit_rate);
       ("mops", m.Harness.mops);
       ("p50_us", m.Harness.p50_us);
       ("p99_us", m.Harness.p99_us);
     ]
    @ m.Harness.extra)

let metric r name = List.assoc_opt name r.metrics

let metric_exn r name =
  match metric r name with
  | Some v -> v
  | None ->
    invalid_arg
      (Printf.sprintf "Report.metric_exn: %s/%s has no metric %S" r.experiment
         r.system name)

let find rows ~experiment ?(system = "") ~axis () =
  let axis = List.sort_uniq by_key axis in
  List.find_opt
    (fun r -> r.experiment = experiment && r.system = system && r.axis = axis)
    rows

let find_metric rows ~experiment ?system ~axis name =
  match find rows ~experiment ?system ~axis () with
  | Some r -> metric_exn r name
  | None ->
    invalid_arg
      (Printf.sprintf "Report.find_metric: no row %s %s" experiment
         (String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) axis)))

(* ------------------------------------------------------------------ *)
(* Canonical JSON                                                      *)
(* ------------------------------------------------------------------ *)

(* Fixed-precision, idempotent float rendering: six decimal places, then
   trailing zeros (and a bare trailing dot) stripped.  Idempotence —
   [to_string (of_string (to_string v)) = to_string v] — is what makes
   the serialization canonical: re-encoding a parsed document reproduces
   it byte for byte. *)
let float_to_string v =
  if not (Float.is_finite v) then "0"
  else begin
    let s = Printf.sprintf "%.6f" v in
    let n = ref (String.length s) in
    while !n > 1 && s.[!n - 1] = '0' do
      decr n
    done;
    if !n > 1 && s.[!n - 1] = '.' then decr n;
    let s = String.sub s 0 !n in
    if s = "-0" then "0" else s
  end

let escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 -> Printf.bprintf b "\\u%04x" (Char.code c)
      | c -> Buffer.add_char b c)
    s

let row_to_buffer b r =
  (* field order is fixed and alphabetical: axis, experiment, metrics,
     system *)
  Buffer.add_string b "{\"axis\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_char b '"';
      escape b k;
      Buffer.add_string b "\":\"";
      escape b v;
      Buffer.add_char b '"')
    (List.sort by_key r.axis);
  Buffer.add_string b "},\"experiment\":\"";
  escape b r.experiment;
  Buffer.add_string b "\",\"metrics\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_char b '"';
      escape b k;
      Buffer.add_string b "\":";
      Buffer.add_string b (float_to_string v))
    (List.sort by_key r.metrics);
  Buffer.add_string b "},\"system\":\"";
  escape b r.system;
  Buffer.add_string b "\"}"

let schema = "mutps-bench/v1"

let to_json rows =
  let b = Buffer.create 4096 in
  Printf.bprintf b "{\n\"schema\":\"%s\",\n\"rows\":[\n" schema;
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string b ",\n";
      row_to_buffer b r)
    rows;
  Buffer.add_string b "\n]}\n";
  Buffer.contents b

let write_file path rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_json rows))

(* ------------------------------------------------------------------ *)
(* JSON parsing (general recursive descent; accepts any JSON, not only
   the canonical form, so hand-edited baselines still load)            *)
(* ------------------------------------------------------------------ *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse_error of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    String.iter expect word;
    v
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents b
      | '\\' ->
        (if !pos >= n then fail "unterminated escape";
         let e = s.[!pos] in
         advance ();
         match e with
         | '"' -> Buffer.add_char b '"'
         | '\\' -> Buffer.add_char b '\\'
         | '/' -> Buffer.add_char b '/'
         | 'b' -> Buffer.add_char b '\b'
         | 'f' -> Buffer.add_char b '\012'
         | 'n' -> Buffer.add_char b '\n'
         | 'r' -> Buffer.add_char b '\r'
         | 't' -> Buffer.add_char b '\t'
         | 'u' ->
           if !pos + 4 > n then fail "truncated \\u escape";
           let code = int_of_string ("0x" ^ String.sub s !pos 4) in
           pos := !pos + 4;
           (* canonical output only escapes control characters; decode the
              BMP subset as UTF-8 for generality *)
           if code < 0x80 then Buffer.add_char b (Char.chr code)
           else if code < 0x800 then begin
             Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
             Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
           end
           else begin
             Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
             Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
             Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
           end
         | _ -> fail "bad escape");
        go ()
      | c -> Buffer.add_char b c; go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      (c >= '0' && c <= '9')
      || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while !pos < n && num_char s.[!pos] do
      advance ()
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then (advance (); Obj [])
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); members ((k, v) :: acc)
          | Some '}' -> advance (); Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then (advance (); Arr [])
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); elements (v :: acc)
          | Some ']' -> advance (); Arr (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        elements []
      end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let row_of_json = function
  | Obj fields ->
    let str name =
      match List.assoc_opt name fields with
      | Some (Str s) -> s
      | _ -> raise (Parse_error ("row missing string field " ^ name))
    in
    let pairs name conv =
      match List.assoc_opt name fields with
      | Some (Obj kvs) ->
        List.map
          (fun (k, v) ->
            match conv v with
            | Some x -> (k, x)
            | None -> raise (Parse_error ("bad value in " ^ name)))
          kvs
      | _ -> raise (Parse_error ("row missing object field " ^ name))
    in
    row ~experiment:(str "experiment") ~system:(str "system")
      ~axis:(pairs "axis" (function Str s -> Some s | _ -> None))
      (pairs "metrics" (function Num f -> Some f | _ -> None))
  | _ -> raise (Parse_error "row is not an object")

let of_json s =
  match parse_json s with
  | Obj fields ->
    (match List.assoc_opt "rows" fields with
    | Some (Arr rows) -> List.map row_of_json rows
    | _ -> raise (Parse_error "document has no \"rows\" array"))
  | _ -> raise (Parse_error "document is not an object")

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_json (really_input_string ic (in_channel_length ic)))

(* ------------------------------------------------------------------ *)
(* Result-file comparison (the bench-regression gate)                  *)
(* ------------------------------------------------------------------ *)

type drift =
  | Missing_row of row  (** in baseline, absent from current *)
  | Extra_row of row  (** in current, absent from baseline *)
  | Metric_drift of {
      base : row;
      name : string;
      expected : float;
      actual : float option;  (** [None]: metric missing from current *)
    }

let row_key r =
  let b = Buffer.create 64 in
  Buffer.add_string b r.experiment;
  Buffer.add_char b '|';
  Buffer.add_string b r.system;
  List.iter
    (fun (k, v) ->
      Buffer.add_char b '|';
      Buffer.add_string b k;
      Buffer.add_char b '=';
      Buffer.add_string b v)
    (List.sort by_key r.axis);
  Buffer.contents b

let row_label r =
  Printf.sprintf "%s%s {%s}" r.experiment
    (if r.system = "" then "" else " " ^ r.system)
    (String.concat ", " (List.map (fun (k, v) -> k ^ "=" ^ v) r.axis))

(* Values travel through the canonical formatter on both sides, so exact
   comparison is performed on the canonical rendering: a baseline loaded
   from disk and a freshly measured value agree iff their canonical
   strings do. *)
let within ?(one_sided = false) ~tolerance expected actual =
  if tolerance <= 0.0 then
    float_to_string expected = float_to_string actual
  else if one_sided then
    (* regression gate: only a drop below the tolerated fraction of the
       baseline is drift; improvements always pass *)
    actual >= expected *. (1.0 -. tolerance)
  else
    Float.abs (expected -. actual)
    <= tolerance *. Float.max (Float.abs expected) (Float.abs actual)

let diff ?(one_sided = false) ?(tolerance = 0.0) ~baseline ~current () =
  let index rows = List.map (fun r -> (row_key r, r)) rows in
  let bidx = index baseline and cidx = index current in
  let drifts = ref [] in
  let push d = drifts := d :: !drifts in
  List.iter
    (fun (key, base) ->
      match List.assoc_opt key cidx with
      | None -> push (Missing_row base)
      | Some cur ->
        List.iter
          (fun (name, expected) ->
            match metric cur name with
            | None ->
              push (Metric_drift { base; name; expected; actual = None })
            | Some actual ->
              if not (within ~one_sided ~tolerance expected actual) then
                push
                  (Metric_drift { base; name; expected; actual = Some actual }))
          base.metrics;
        (* metrics present only in current are drift too: the schema of a
           gated experiment must not change silently *)
        List.iter
          (fun (name, actual) ->
            if metric base name = None then
              push
                (Metric_drift
                   { base = cur; name; expected = Float.nan;
                     actual = Some actual }))
          cur.metrics)
    bidx;
  List.iter
    (fun (key, cur) ->
      if List.assoc_opt key bidx = None then push (Extra_row cur))
    cidx;
  List.rev !drifts

let drift_to_string = function
  | Missing_row r -> Printf.sprintf "missing row: %s" (row_label r)
  | Extra_row r -> Printf.sprintf "extra row: %s" (row_label r)
  | Metric_drift { base; name; expected; actual = None } ->
    Printf.sprintf "%s %s: metric missing (baseline %s)" (row_label base) name
      (float_to_string expected)
  | Metric_drift { base; name; expected; actual = Some actual } ->
    if Float.is_nan expected then
      Printf.sprintf "%s %s: metric not in baseline (current %s)"
        (row_label base) name (float_to_string actual)
    else
      let pct =
        if Float.abs expected > 1e-12 then
          Printf.sprintf " (%+.2f%%)" (100.0 *. ((actual /. expected) -. 1.0))
        else ""
      in
      Printf.sprintf "%s %s: baseline %s, current %s%s" (row_label base) name
        (float_to_string expected) (float_to_string actual) pct
