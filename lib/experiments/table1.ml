(** Table 1 — characteristics of the selected Twitter traces, as published
    and as measured from our generators (200 K sampled operations each). *)

module Opgen = Mutps_workload.Opgen
module Twitter = Mutps_workload.Twitter
module Request = Mutps_queue.Request

let run (_scale : Harness.scale) =
  Harness.section "Table 1: Twitter trace characteristics (spec vs generated)";
  let rows =
    List.map
      (fun cluster ->
        let spec = Twitter.spec ~keyspace:100_000 cluster in
        let gen = Opgen.make spec ~seed:123 in
        let n = 200_000 in
        let puts = ref 0 and bytes = ref 0 in
        for _ = 1 to n do
          let op = Opgen.next gen in
          if op.Opgen.kind = Request.Put then begin
            incr puts;
            bytes := !bytes + op.Opgen.size
          end
        done;
        Report.row ~experiment:"table1"
          ~axis:[ ("trace", Twitter.name cluster) ]
          [
            ("put_ratio_spec", Twitter.put_ratio cluster);
            ("put_ratio_gen", float_of_int !puts /. float_of_int n);
            ( "avg_value_spec",
              float_of_int (Twitter.avg_value_size cluster) );
            ( "avg_value_gen",
              float_of_int !bytes /. float_of_int (max 1 !puts) );
            ("zipf_alpha", Twitter.zipf_alpha cluster);
          ])
      Twitter.all
  in
  let table =
    Table.create
      [
        "trace"; "put ratio (spec)"; "put ratio (gen)";
        "avg value (spec)"; "avg value (gen)"; "zipf alpha";
      ]
  in
  List.iter
    (fun cluster ->
      let axis = [ ("trace", Twitter.name cluster) ] in
      let m name = Report.find_metric rows ~experiment:"table1" ~axis name in
      Table.add_row table
        [
          Twitter.name cluster;
          Printf.sprintf "%.0f%%" (100.0 *. m "put_ratio_spec");
          Printf.sprintf "%.1f%%" (100.0 *. m "put_ratio_gen");
          Printf.sprintf "%.0fB" (m "avg_value_spec");
          Printf.sprintf "%.0fB" (m "avg_value_gen");
          Printf.sprintf "%.2f" (m "zipf_alpha");
        ])
    Twitter.all;
  Harness.print_table table;
  rows
