(** Figure 2 — the motivation experiments (§2.2).

    (a) NP-TPS (stages decoupled by deterministic replay, no inter-stage
        queue) vs NP-TPQ vs NP-TPQ with CAT isolation of the DDIO ways, on
        uniform gets across item sizes.
    (b) MassTree-analog index lookup throughput under Zipfian keys, with
        and without a dedicated thread for the 0.1‰ hottest keys.
    (c) Share-everything vs share-nothing vs μTPS put throughput as the
        worker count grows (skewed, 64 B items). *)

module Engine = Mutps_sim.Engine
module Simthread = Mutps_sim.Simthread
module Stats = Mutps_sim.Stats
module Env = Mutps_mem.Env
module Hierarchy = Mutps_mem.Hierarchy
module Item = Mutps_store.Item
module Index = Mutps_index.Index_intf
module Opgen = Mutps_workload.Opgen
module Ycsb = Mutps_workload.Ycsb
module Client = Mutps_net.Client
module Transport = Mutps_net.Transport
module Request = Mutps_queue.Request
module Kvs = Mutps_kvs

(* --- 2a ------------------------------------------------------------ *)

(* NP-TPQ with worker CLOS masks excluding the DDIO ways. *)
let cat_customize (built : Harness.built) =
  let hier = built.Harness.backend.Kvs.Backend.hier in
  let full = Hierarchy.full_llc_mask hier in
  let no_ddio = full land lnot (Hierarchy.ddio_mask hier) in
  for core = 0 to Hierarchy.cores hier - 1 do
    Hierarchy.set_clos hier ~core no_ddio
  done

module Sample = Mutps_sample.Sample
module Signature = Mutps_sample.Signature

(* NP-TPS via deterministic replay: stage-1 threads poll/parse/respond
   immediately; stage-2 threads regenerate the same key sequence and do the
   index + data work, with no queue between them.  Both stages share the
   machine, so their cache interference is real; system throughput is the
   slower stage's rate.  Returns [(mops, err)]; the error bound is 0 for
   exact runs. *)
let tps_replay (scale : Harness.scale) spec ~n1 =
  let config = Harness.mk_config ~index:Kvs.Config.Tree scale in
  let backend = Kvs.Backend.create config in
  let vsize = Harness.populate_size spec in
  Kvs.Backend.populate backend ~keyspace:scale.Harness.keyspace ~value_size:vsize;
  let rpc =
    Mutps_net.Reconf_rpc.create ~engine:backend.Kvs.Backend.engine
      ~hier:backend.Kvs.Backend.hier ~layout:backend.Kvs.Backend.layout
      ~link:backend.Kvs.Backend.link ~max_workers:n1 ~workers:n1 ()
  in
  let tr = Mutps_net.Reconf_rpc.transport rpc in
  (* stage 1: network-facing echo (poll, parse, respond with item-sized
     payloads drawn from the response buffer) *)
  for w = 0 to n1 - 1 do
    Simthread.spawn backend.Kvs.Backend.engine (fun ctx ->
        let env = Env.make ~ctx ~hier:backend.Kvs.Backend.hier ~core:w in
        while true do
          match tr.Transport.poll env ~worker:w with
          | Some (seq, _msg) ->
            Env.compute env config.Kvs.Config.parse_cycles;
            let bytes = 16 + vsize in
            let resp_addr = tr.Transport.resp_alloc ~worker:w ~bytes in
            Env.store env ~addr:resp_addr ~size:bytes;
            tr.Transport.post_response env ~seq ~resp_addr ~bytes ~value:None;
            Simthread.commit ctx
          | None -> Simthread.delay ctx config.Kvs.Config.poll_idle_cycles
        done)
  done;
  (* stage 2: replayed index lookups + data reads on the remaining cores *)
  let n2 = scale.Harness.cores - n1 in
  let stage2_ops = ref 0 in
  for i = 0 to n2 - 1 do
    let core = n1 + i in
    Simthread.spawn backend.Kvs.Backend.engine (fun ctx ->
        let env = Env.make ~ctx ~hier:backend.Kvs.Backend.hier ~core in
        let gen = Opgen.make spec ~seed:(1000 + core) in
        let batch = config.Kvs.Config.batch in
        let keys = Array.make batch 0L in
        while true do
          for j = 0 to batch - 1 do
            keys.(j) <- (Opgen.next gen).Opgen.key
          done;
          let items = backend.Kvs.Backend.index.Index.batch_lookup env keys in
          Array.iter
            (fun item ->
              match item with
              | Some item -> ignore (Item.read env item)
              | None -> ())
            items;
          stage2_ops := !stage2_ops + batch;
          Simthread.commit ctx
        done)
  done;
  let clients =
    Client.start ~engine:backend.Kvs.Backend.engine ~link:backend.Kvs.Backend.link
      ~transport:tr
      {
        Client.clients = scale.Harness.clients;
        window = scale.Harness.window;
        spec;
        seed = 7;
        dispatch = Client.uniform_dispatch;
      }
  in
  let g = Harness.ghz config in
  let engine = backend.Kvs.Backend.engine in
  match scale.Harness.sample with
  | None ->
    Engine.run engine ~until:scale.Harness.warmup;
    Client.reset_stats clients;
    stage2_ops := 0;
    Engine.run engine ~until:(scale.Harness.warmup + scale.Harness.measure);
    let r1 =
      Stats.mops ~ops:(Client.completed clients) ~cycles:scale.Harness.measure
        ~ghz:g
    in
    let r2 = Stats.mops ~ops:!stage2_ops ~cycles:scale.Harness.measure ~ghz:g in
    (Float.min r1 r2, 0.0)
  | Some cfg ->
    let hier = backend.Kvs.Backend.hier in
    Engine.run engine ~until:(Harness.sampled_warmup cfg scale);
    let src =
      Signature.of_counters
        (Array.append
           [|
             (fun () -> float_of_int (Client.completed clients));
             (fun () -> float_of_int !stage2_ops);
           |]
           (Harness.hier_signature_counters hier))
    in
    let probe =
      {
        Sample.set_warming =
          (fun on ->
            Hierarchy.set_warming hier on;
            Client.set_recording clients (not on));
        begin_interval =
          (fun () ->
            Client.reset_stats clients;
            stage2_ops := 0);
        end_interval =
          (fun () ->
            [
              ("stage1", float_of_int (Client.completed clients));
              ("stage2", float_of_int !stage2_ops);
            ]);
        signature = (fun () -> Signature.take src);
      }
    in
    let o = Sample.run cfg ~engine ~probe ~measure:scale.Harness.measure in
    let e1 = List.assoc "stage1" o.Sample.metrics in
    let e2 = List.assoc "stage2" o.Sample.metrics in
    (* system throughput is the slower stage's; carry that stage's bound *)
    let slower = if e1.Sample.value <= e2.Sample.value then e1 else e2 in
    ( Harness.sampled_mops cfg ~ghz:g slower.Sample.value,
      Harness.sampled_mops cfg ~ghz:g slower.Sample.err )

let sizes_2a = [ 64; 256; 1024 ]

(* Comma-separated int list from the environment, falling back to
   [default] when unset/empty/unparseable.  Lets the paper-scale CI lane
   trim the grid (each 10M-item cell is minutes of host time). *)
let env_ints name default =
  match Sys.getenv_opt name with
  | None | Some "" -> default
  | Some s -> (
    match
      String.split_on_char ',' s
      |> List.filter_map (fun tok -> int_of_string_opt (String.trim tok))
    with
    | [] -> default
    | vals -> vals)

let run_2a scale =
  Harness.section "Figure 2a: NP-TPS vs NP-TPQ vs NP-TPQ+CAT (uniform gets)";
  let sizes =
    List.filter
      (fun s -> List.mem s (env_ints "MUTPS_FIG2A_SIZES" sizes_2a))
      sizes_2a
  in
  let rows =
    List.concat_map
      (fun size ->
        let spec =
          Ycsb.get_only_uniform ~keyspace:scale.Harness.keyspace
            ~value_size:size ()
        in
        let axis = [ ("size", string_of_int size) ] in
        let tpq = Harness.measure Harness.Basekv scale spec in
        let cat =
          Harness.measure ~customize:cat_customize Harness.Basekv scale spec
        in
        (* sweep the stage split like the paper's manual tuning *)
        let cores = scale.Harness.cores in
        let best = ref 0.0 and best_err = ref 0.0 in
        List.iter
          (fun n1 ->
            if n1 >= 1 && n1 < cores then begin
              let r, err = tps_replay scale spec ~n1 in
              if r > !best then begin
                best := r;
                best_err := err
              end
            end)
          (env_ints "MUTPS_FIG2A_SPLITS"
             [ cores / 4; cores / 3; cores / 2; 2 * cores / 3 ]);
        let tps_metrics =
          ("mops", !best)
          ::
          (match scale.Harness.sample with
          | Some _ -> [ ("mops_err", !best_err) ]
          | None -> [])
        in
        [
          Report.of_measurement ~experiment:"fig2a" ~system:"NP-TPQ" ~axis tpq;
          Report.of_measurement ~experiment:"fig2a" ~system:"NP-TPQ+CAT" ~axis
            cat;
          Report.row ~experiment:"fig2a" ~system:"NP-TPS" ~axis tps_metrics;
        ])
      sizes
  in
  let table =
    Table.create [ "item size"; "NP-TPQ"; "NP-TPQ+CAT"; "NP-TPS (replay)" ]
  in
  List.iter
    (fun size ->
      let axis = [ ("size", string_of_int size) ] in
      let m system =
        Report.find_metric rows ~experiment:"fig2a" ~system ~axis "mops"
      in
      Table.add_row table
        [
          string_of_int size;
          Table.cell_f (m "NP-TPQ");
          Table.cell_f (m "NP-TPQ+CAT");
          Table.cell_f (m "NP-TPS");
        ])
    sizes;
  Harness.print_table table;
  rows

(* --- 2b ------------------------------------------------------------ *)

(* Pure index-lookup throughput: [threads] workers drain Zipfian lookups;
   in the separated variant one worker owns the hottest keys and the rest
   never see them. *)
let lookup_rate scale ~threads ~separated =
  let config =
    Harness.mk_config ~index:Kvs.Config.Tree
      { scale with Harness.cores = threads }
  in
  let backend = Kvs.Backend.create config in
  let keyspace = scale.Harness.keyspace in
  Kvs.Backend.populate backend ~keyspace ~value_size:8;
  let hot_count = max 1 (keyspace / 10_000) (* 0.1 permille *) in
  let hot = Opgen.hottest_keys ~keyspace hot_count in
  let is_hot k = Array.exists (Int64.equal k) hot in
  let spec =
    { (Ycsb.c ~keyspace ~value_size:8 ()) with Opgen.key_dist = Opgen.Zipfian 0.99 }
  in
  let ops = ref 0 in
  for w = 0 to threads - 1 do
    Simthread.spawn backend.Kvs.Backend.engine (fun ctx ->
        let env = Env.make ~ctx ~hier:backend.Kvs.Backend.hier ~core:w in
        let gen = Opgen.make spec ~seed:(500 + w) in
        let batch = 8 in
        let keys = Array.make batch 0L in
        while true do
          let n = ref 0 in
          while !n < batch do
            let k = (Opgen.next gen).Opgen.key in
            if separated then begin
              (* worker 0 handles only hot keys; others skip them *)
              if w = 0 && is_hot k then begin
                keys.(!n) <- k;
                incr n
              end
              else if w > 0 && not (is_hot k) then begin
                keys.(!n) <- k;
                incr n
              end
              else if w = 0 then () (* draw again *)
              else ()
            end
            else begin
              keys.(!n) <- k;
              incr n
            end
          done;
          ignore (backend.Kvs.Backend.index.Index.batch_lookup env keys);
          ops := !ops + batch;
          Simthread.commit ctx
        done)
  done;
  let engine = backend.Kvs.Backend.engine in
  let g = Harness.ghz config in
  match scale.Harness.sample with
  | None ->
    Engine.run engine ~until:scale.Harness.warmup;
    ops := 0;
    Engine.run engine ~until:(scale.Harness.warmup + scale.Harness.measure);
    (Stats.mops ~ops:!ops ~cycles:scale.Harness.measure ~ghz:g, 0.0)
  | Some cfg ->
    let hier = backend.Kvs.Backend.hier in
    Engine.run engine ~until:(Harness.sampled_warmup cfg scale);
    let src =
      Signature.of_counters
        (Array.append
           [| (fun () -> float_of_int !ops) |]
           (Harness.hier_signature_counters hier))
    in
    let probe =
      {
        Sample.set_warming = (fun on -> Hierarchy.set_warming hier on);
        begin_interval = (fun () -> ops := 0);
        end_interval = (fun () -> [ ("ops", float_of_int !ops) ]);
        signature = (fun () -> Signature.take src);
      }
    in
    let o = Sample.run cfg ~engine ~probe ~measure:scale.Harness.measure in
    let e = List.assoc "ops" o.Sample.metrics in
    ( Harness.sampled_mops cfg ~ghz:g e.Sample.value,
      Harness.sampled_mops cfg ~ghz:g e.Sample.err )

let run_2b scale =
  Harness.section
    "Figure 2b: index lookup throughput, hotspot separation (Zipfian)";
  let points = List.sort_uniq compare [ 4; 8; scale.Harness.cores ] in
  let rows =
    List.concat_map
      (fun threads ->
        let axis = [ ("threads", string_of_int threads) ] in
        let base, base_err = lookup_rate scale ~threads ~separated:false in
        let sep, sep_err = lookup_rate scale ~threads ~separated:true in
        let metrics v err =
          ("mops", v)
          ::
          (match scale.Harness.sample with
          | Some _ -> [ ("mops_err", err) ]
          | None -> [])
        in
        [
          Report.row ~experiment:"fig2b" ~system:"unified" ~axis
            (metrics base base_err);
          Report.row ~experiment:"fig2b" ~system:"separated" ~axis
            (metrics sep sep_err);
        ])
      points
  in
  let table = Table.create [ "threads"; "unified"; "separated"; "speedup" ] in
  List.iter
    (fun threads ->
      let axis = [ ("threads", string_of_int threads) ] in
      let m system =
        Report.find_metric rows ~experiment:"fig2b" ~system ~axis "mops"
      in
      Table.add_row table
        [
          string_of_int threads;
          Table.cell_f (m "unified");
          Table.cell_f (m "separated");
          Printf.sprintf "%.2fx" (m "separated" /. Float.max (m "unified") 1e-9);
        ])
    points;
  Harness.print_table table;
  rows

(* --- 2c ------------------------------------------------------------ *)

let run_2c scale =
  Harness.section
    "Figure 2c: put throughput vs worker threads (skewed, 64B items)";
  (* a saturation experiment: keep the offered load well above capacity *)
  let scale = { scale with Harness.clients = max scale.Harness.clients 96 } in
  let spec = Ycsb.put_only ~keyspace:scale.Harness.keyspace ~value_size:64 () in
  (* the paper sweeps to 28 threads; go past the default core count so the
     contention regime is visible *)
  let max_threads = max scale.Harness.cores 20 in
  let points =
    List.filter (fun n -> n <= max_threads) [ 2; 4; 8; 12; 16; 20; 24; 28 ]
  in
  let rows =
    List.concat_map
      (fun threads ->
        let s = { scale with Harness.cores = threads } in
        let axis = [ ("threads", string_of_int threads) ] in
        List.map
          (fun sys ->
            Report.of_measurement ~experiment:"fig2c"
              ~system:(Harness.system_name sys) ~axis
              (Harness.measure sys s spec))
          [ Harness.Basekv; Harness.Erpckv; Harness.Mutps ])
      points
  in
  let table =
    Table.create [ "threads"; "SE (BaseKV)"; "SN (eRPC-KV)"; "uTPS" ]
  in
  List.iter
    (fun threads ->
      let axis = [ ("threads", string_of_int threads) ] in
      let m system =
        Report.find_metric rows ~experiment:"fig2c" ~system ~axis "mops"
      in
      Table.add_row table
        [
          string_of_int threads;
          Table.cell_f (m "BaseKV");
          Table.cell_f (m "eRPC-KV");
          Table.cell_f (m "uTPS");
        ])
    points;
  Harness.print_table table;
  rows

let run scale =
  let a = run_2a scale in
  let b = run_2b scale in
  let c = run_2c scale in
  a @ b @ c
