(** Domain-parallel experiment scheduler: fans independent experiments
    out over OCaml 5 domains, captures each one's text output, and
    assembles rows in request order so results are identical (byte for
    byte once serialized) for any [jobs] count. *)

type outcome = {
  name : string;
  rows : Report.row list;  (** [] when the experiment raised *)
  output : string;  (** captured text (section headers, tables) *)
  error : string option;  (** exception, if the experiment failed *)
  cpu_s : float;
      (** process CPU seconds while this experiment ran; approximate
          (inflated by concurrency) under [jobs > 1] *)
}

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val run_all :
  ?jobs:int -> ?on_done:(outcome -> unit) -> string list -> Harness.scale ->
  outcome list
(** [run_all names scale] runs every named experiment and returns
    outcomes in request order.  [jobs] defaults to {!default_jobs} and is
    clamped to [1 .. length names].  [on_done] fires as each experiment
    completes (completion order, serialized under a lock).  Raises
    [Invalid_argument] if a name is not in the registry — before running
    anything.  Worker domains inherit this domain's sanitizer/tracer
    factories and metrics registry. *)

val rows : outcome list -> Report.row list
(** All rows in outcome order. *)

val failed : outcome list -> outcome list
