(** Figure 12 — effect of the CR-MR batch size (YCSB-A, 8 B items): the
    batch size sets how many requests cross the CR-MR queue per slot and
    how many index operations are prefetch-overlapped together. *)

module Ycsb = Mutps_workload.Ycsb
module Kvs = Mutps_kvs

let batch_sizes = [ 1; 2; 4; 8; 12; 16; 20 ]

let run scale =
  let scale =
    { scale with
      Harness.warmup = scale.Harness.warmup / 2;
      measure = scale.Harness.measure * 3 / 5 }
  in
  Harness.section "Figure 12: effects of batching (YCSB-A, 8B items)";
  let spec = Ycsb.a ~keyspace:scale.Harness.keyspace ~value_size:8 () in
  let axis_of index batch =
    [ ("batch", string_of_int batch); ("index", index) ]
  in
  let rows =
    List.concat_map
      (fun batch ->
        let tweak c = { c with Kvs.Config.batch } in
        let t =
          Harness.measure ~index:Kvs.Config.Tree ~tweak Harness.Mutps scale spec
        in
        let h =
          Harness.measure ~index:Kvs.Config.Hash ~tweak Harness.Mutps scale spec
        in
        [
          Report.of_measurement ~experiment:"fig12" ~system:"uTPS"
            ~axis:(axis_of "tree" batch) t;
          Report.of_measurement ~experiment:"fig12" ~system:"uTPS"
            ~axis:(axis_of "hash" batch) h;
        ])
      batch_sizes
  in
  let m index batch =
    Report.find_metric rows ~experiment:"fig12" ~system:"uTPS"
      ~axis:(axis_of index batch) "mops"
  in
  let table = Table.create [ "batch"; "uTPS-T"; "uTPS-H" ] in
  List.iter
    (fun batch ->
      Table.add_row table
        [
          string_of_int batch;
          Table.cell_f (m "tree" batch);
          Table.cell_f (m "hash" batch);
        ])
    batch_sizes;
  Harness.print_table table;
  (match batch_sizes with
  | b1 :: _ ->
    let best index =
      List.fold_left (fun acc b -> Float.max acc (m index b)) 0.0 batch_sizes
    in
    Harness.printf "best-vs-batch1: uTPS-T +%.1f%%  uTPS-H +%.1f%%\n"
      (100.0 *. ((best "tree" /. Float.max (m "tree" b1) 1e-9) -. 1.0))
      (100.0 *. ((best "hash" /. Float.max (m "hash" b1) 1e-9) -. 1.0))
  | [] -> ());
  rows
