(** Figure 14 — reacting to a dynamic workload: value size drops from
    512 B to 8 B mid-run; the auto-tuner detects the throughput shift,
    re-explores the configuration, and applies a better one with no
    downtime.  Prints the throughput timeline plus the tuner's settings
    over time. *)

module Engine = Mutps_sim.Engine
module Stats = Mutps_sim.Stats
module Ycsb = Mutps_workload.Ycsb
module Client = Mutps_net.Client
module Kvs = Mutps_kvs

let tuner_params =
  {
    Kvs.Autotuner.window = 2_500_000;
    settle = 500_000;
    cache_step = 512;
    cache_points = 3;
    auto_threshold = 0.30;
  }

let run scale =
  Harness.section
    "Figure 14: dynamic workload (value size 512B -> 8B), auto-tuner reacting";
  let keyspace = scale.Harness.keyspace in
  let spec_big = Ycsb.a ~keyspace ~value_size:512 () in
  let spec_small = Ycsb.a ~keyspace ~value_size:8 () in
  let built = Harness.build Harness.Mutps scale spec_big in
  let kv = Option.get built.Harness.kv_mutps in
  let tuner = Kvs.Autotuner.create ~params:tuner_params kv in
  Kvs.Autotuner.spawn tuner;
  let clients = Harness.start_clients built scale spec_big in
  let engine = built.Harness.engine in
  (* timeline: sample throughput every millisecond of simulated time *)
  let ms = 2_500_000 in
  let switch_at = 40 * ms in
  let total = 140 * ms in
  let samples = ref [] in
  let last_completed = ref 0 in
  let t = ref 0 in
  while !t < total do
    t := !t + ms;
    if !t = switch_at then Client.set_spec clients spec_small;
    Engine.run engine ~until:!t;
    let c = Client.completed clients in
    samples := (!t / ms, c - !last_completed) :: !samples;
    last_completed := c
  done;
  (* replay settings history against the sample timeline; keep one
     datapoint per 4 sampled milliseconds (the printed cadence) *)
  let events = Kvs.Autotuner.events tuner in
  let timeline_rows =
    List.filter_map
      (fun (ms_i, ops) ->
        if ms_i mod 4 <> 0 then None
        else begin
          let at = ms_i * ms in
          let setting =
            List.fold_left
              (fun acc (e : Kvs.Autotuner.event) ->
                if e.Kvs.Autotuner.at <= at then Some e else acc)
              None events
          in
          let ncr, hot, ways =
            match setting with
            | Some e ->
              (e.Kvs.Autotuner.ncr, e.Kvs.Autotuner.hot, e.Kvs.Autotuner.ways)
            | None ->
              (Kvs.Mutps.ncr kv, Kvs.Mutps.hot_target kv, Kvs.Mutps.mr_ways kv)
          in
          Some
            (Report.row ~experiment:"fig14" ~system:"uTPS"
               ~axis:[ ("ms", Printf.sprintf "%03d" ms_i) ]
               [
                 ("hot", float_of_int hot);
                 ("mops", Stats.mops ~ops ~cycles:ms ~ghz:2.5);
                 ("ncr", float_of_int ncr);
                 ("ways", float_of_int ways);
               ])
        end)
      (List.rev !samples)
  in
  let final_ncr, final_hot, final_ways =
    match Kvs.Autotuner.last_applied tuner with
    | Some cfg -> cfg
    | None -> (Kvs.Mutps.ncr kv, Kvs.Mutps.hot_target kv, Kvs.Mutps.mr_ways kv)
  in
  let summary_row =
    Report.row ~experiment:"fig14" ~system:"uTPS" ~axis:[ ("point", "final") ]
      [
        ("hot", float_of_int final_hot);
        ("ncr", float_of_int final_ncr);
        ("switch_ms", float_of_int (switch_at / ms));
        ( "tunes_completed",
          float_of_int (Kvs.Autotuner.tunes_completed tuner) );
        ("ways", float_of_int final_ways);
      ]
  in
  let table =
    Table.create [ "ms"; "Mops"; "ncr"; "hot target"; "mr ways"; "tuning?" ]
  in
  List.iter
    (fun r ->
      let ms_i = int_of_string (List.assoc "ms" r.Report.axis) in
      let m name = Report.metric_exn r name in
      Table.add_row table
        [
          string_of_int ms_i;
          Table.cell_f (m "mops");
          Printf.sprintf "%.0f" (m "ncr");
          Printf.sprintf "%.0f" (m "hot");
          Printf.sprintf "%.0f" (m "ways");
          (if ms_i * ms > switch_at && Kvs.Autotuner.tunes_completed tuner = 0
           then "yes" else "");
        ])
    timeline_rows;
  Harness.print_table table;
  Harness.printf "workload switch at %d ms; tuner passes completed: %d\n"
    (switch_at / ms)
    (Kvs.Autotuner.tunes_completed tuner);
  (match Kvs.Autotuner.last_applied tuner with
  | Some (ncr, hot, ways) ->
    Harness.printf "final config: ncr=%d hot=%d mr_ways=%d\n" ncr hot ways
  | None -> Harness.printf "tuner did not complete a pass\n");
  timeline_rows @ [ summary_row ]
