(** Figure 9 — throughput on the three Twitter cache traces of Table 1. *)

module Twitter = Mutps_workload.Twitter
module Kvs = Mutps_kvs

let run scale =
  Harness.section "Figure 9: Twitter traces";
  let rows =
    List.concat_map
      (fun cluster ->
        let spec = Twitter.spec ~keyspace:scale.Harness.keyspace cluster in
        let axis = [ ("trace", Twitter.name cluster) ] in
        List.map
          (fun sys ->
            Report.of_measurement ~experiment:"fig9"
              ~system:(Harness.system_name sys) ~axis
              (Harness.measure sys scale spec))
          [ Harness.Mutps; Harness.Basekv; Harness.Erpckv ])
      Twitter.all
  in
  let table =
    Table.create
      [ "trace"; "uTPS-T"; "BaseKV"; "eRPC-KV"; "uTPS/BaseKV"; "uTPS/eRPC" ]
  in
  List.iter
    (fun cluster ->
      let axis = [ ("trace", Twitter.name cluster) ] in
      let m system =
        Report.find_metric rows ~experiment:"fig9" ~system ~axis "mops"
      in
      Table.add_row table
        [
          Twitter.name cluster;
          Table.cell_f (m "uTPS");
          Table.cell_f (m "BaseKV");
          Table.cell_f (m "eRPC-KV");
          Printf.sprintf "%.2fx" (m "uTPS" /. Float.max (m "BaseKV") 1e-9);
          Printf.sprintf "%.2fx" (m "uTPS" /. Float.max (m "eRPC-KV") 1e-9);
        ])
    Twitter.all;
  Harness.print_table table;
  rows
