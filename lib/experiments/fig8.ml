(** Figure 8 — (a) scan throughput (YCSB-E and scan-only, range 50, 8 B
    items, tree index); (b)(c) Meta ETC pool at 10/50/90% get ratios. *)

module Ycsb = Mutps_workload.Ycsb
module Etc = Mutps_workload.Etc
module Kvs = Mutps_kvs

let systems = [ Harness.Mutps; Harness.Basekv; Harness.Erpckv ]

let run_8a scale =
  Harness.section "Figure 8a: scan throughput (range 50, 8B items, tree)";
  let keyspace = scale.Harness.keyspace in
  let workloads =
    [
      ("YCSB-E", Ycsb.e ~keyspace ~scan_len:50 ~value_size:8 ());
      ("scan-only", Ycsb.scan_only ~keyspace ~scan_len:50 ~value_size:8 ());
    ]
  in
  let rows =
    List.concat_map
      (fun (name, spec) ->
        let axis = [ ("workload", name) ] in
        List.map
          (fun sys ->
            Report.of_measurement ~experiment:"fig8a"
              ~system:(Harness.system_name sys) ~axis
              (Harness.measure sys scale spec))
          systems)
      workloads
  in
  let table = Table.create [ "workload"; "uTPS-T"; "BaseKV"; "eRPC-KV" ] in
  List.iter
    (fun (name, _) ->
      let axis = [ ("workload", name) ] in
      let m system =
        Report.find_metric rows ~experiment:"fig8a" ~system ~axis "mops"
      in
      Table.add_row table
        [
          name;
          Table.cell_f (m "uTPS");
          Table.cell_f (m "BaseKV");
          Table.cell_f (m "eRPC-KV");
        ])
    workloads;
  Harness.print_table table;
  rows

let ratios = [ 0.1; 0.5; 0.9 ]

let run_8bc scale =
  Harness.section "Figure 8b-c: Meta ETC pool";
  let keyspace = scale.Harness.keyspace in
  let axis_of ratio = [ ("get_ratio", Printf.sprintf "%.1f" ratio) ] in
  let rows =
    List.concat_map
      (fun ratio ->
        let spec = Etc.spec ~keyspace ~get_ratio:ratio () in
        let axis = axis_of ratio in
        List.map
          (fun sys ->
            Report.of_measurement ~experiment:"fig8bc"
              ~system:(Harness.system_name sys) ~axis
              (Harness.measure sys scale spec))
          systems)
      ratios
  in
  let table =
    Table.create [ "get ratio"; "uTPS-T"; "BaseKV"; "eRPC-KV"; "uTPS/BaseKV" ]
  in
  List.iter
    (fun ratio ->
      let axis = axis_of ratio in
      let m system =
        Report.find_metric rows ~experiment:"fig8bc" ~system ~axis "mops"
      in
      Table.add_row table
        [
          Printf.sprintf "%.0f%%" (100.0 *. ratio);
          Table.cell_f (m "uTPS");
          Table.cell_f (m "BaseKV");
          Table.cell_f (m "eRPC-KV");
          Printf.sprintf "%.2fx" (m "uTPS" /. Float.max (m "BaseKV") 1e-9);
        ])
    ratios;
  Harness.print_table table;
  rows

let run scale = run_8a scale @ run_8bc scale
