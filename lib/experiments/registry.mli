(** Experiment registry: every table and figure of the paper's evaluation,
    runnable by name.

    [run] renders its text tables through the {!Harness} output sink (so a
    parallel runner can capture them per experiment) and returns the same
    datapoints as structured {!Report.row}s for JSON serialization and the
    CI bench-regression gate. *)

type entry = {
  name : string;
  description : string;
  run : Harness.scale -> Report.row list;
}

val all : entry list
val find : string -> entry option
val names : unit -> string list
