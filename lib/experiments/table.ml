(** Aligned-column table printing for experiment output. *)

type t = { header : string list; mutable rows : string list list }

let create header = { header; rows = [] }
let add_row t row = t.rows <- row :: t.rows

let cell_f f = Printf.sprintf "%.2f" f
let cell_i = string_of_int

let to_string t =
  let b = Buffer.create 256 in
  let rows = List.rev t.rows in
  let all = t.header :: rows in
  let ncols = List.length t.header in
  let width c =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row c with
        | Some s -> max acc (String.length s)
        | None -> acc)
      0 all
  in
  let widths = List.init ncols width in
  let add_row row =
    List.iteri
      (fun i cell ->
        let w = List.nth widths i in
        Buffer.add_string b (Printf.sprintf "%-*s  " w cell))
      row;
    Buffer.add_char b '\n'
  in
  add_row t.header;
  add_row (List.map (fun w -> String.make w '-') widths);
  List.iter add_row rows;
  Buffer.contents b

let print ?(out = stdout) t =
  output_string out (to_string t);
  flush out
