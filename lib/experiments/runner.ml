(** Domain-parallel experiment scheduler.

    Experiments are mutually independent — each builds its own engines,
    stores, and clients — so the registry fans out over OCaml 5 domains: a
    shared cursor hands the next experiment to the next free worker.  Each
    experiment's text output is captured in a per-worker buffer (via the
    {!Harness} output sink) so concurrent tables never interleave, and its
    structured rows are collected per slot, so the assembled result is
    independent of worker scheduling: [run_all ~jobs:4] returns — and
    serializes to — exactly what [~jobs:1] does, byte for byte.  That
    equality is enforced by a regression test and is what lets CI gate on
    exact JSON equality.

    Ambient per-domain state (the sanitizer/tracer factories and the
    metrics registry installed by the CLI wrappers) is inherited by worker
    domains at spawn, so [--sanitize]/[--trace]/[--metrics] compose with
    [--jobs]. *)

type outcome = {
  name : string;
  rows : Report.row list;  (** [] when the experiment raised *)
  output : string;  (** captured text (section headers, tables) *)
  error : string option;  (** exception, if the experiment failed *)
  cpu_s : float;
      (** process CPU seconds consumed while the experiment ran; under
          [jobs > 1] concurrent experiments inflate each other's figure *)
}

let default_jobs () = Domain.recommended_domain_count ()

let run_entry (e : Registry.entry) scale =
  let buf = Buffer.create 4096 in
  let t0 = Sys.time () [@lint.allow "R1"] in
  let result =
    match Harness.with_output buf (fun () -> e.Registry.run scale) with
    | rows -> Ok rows
    | exception exn -> Error (Printexc.to_string exn)
  in
  let cpu_s = (Sys.time () [@lint.allow "R1"]) -. t0 in
  match result with
  | Ok rows ->
    { name = e.Registry.name; rows; output = Buffer.contents buf;
      error = None; cpu_s }
  | Error msg ->
    { name = e.Registry.name; rows = []; output = Buffer.contents buf;
      error = Some msg; cpu_s }

(* [on_done] fires as each experiment completes (in completion order,
   under a lock), letting callers stream progress while the full set is
   still running. *)
let run_all ?jobs ?on_done names scale =
  let entries =
    List.map
      (fun name ->
        match Registry.find name with
        | Some e -> e
        | None -> invalid_arg (Printf.sprintf "unknown experiment %S" name))
      names
  in
  let entries = Array.of_list entries in
  let n = Array.length entries in
  let jobs = max 1 (min n (Option.value jobs ~default:(default_jobs ()))) in
  let results = Array.make n None in
  let lock = Mutex.create () in
  let cursor = ref 0 in
  let next () =
    Mutex.lock lock;
    let i = !cursor in
    if i < n then incr cursor;
    Mutex.unlock lock;
    if i < n then Some i else None
  in
  let notify outcome =
    match on_done with
    | None -> ()
    | Some f ->
      Mutex.lock lock;
      Fun.protect ~finally:(fun () -> Mutex.unlock lock) (fun () -> f outcome)
  in
  let worker () =
    let rec loop () =
      match next () with
      | None -> ()
      | Some i ->
        let outcome = run_entry entries.(i) scale in
        (results.(i) <- Some outcome)
        [@dom.allow
          "disjoint slots: the cursor hands each index to exactly one \
           worker, and the final read happens after Domain.join"];
        notify outcome;
        loop ()
    in
    loop ()
  in
  if jobs = 1 then worker ()
  else begin
    let domains = Array.init jobs (fun _ -> Domain.spawn worker) in
    Array.iter Domain.join domains
  end;
  Array.to_list results
  |> List.map (function
       | Some o -> o
       | None -> assert false (* every slot claimed before workers exit *))

let rows outcomes = List.concat_map (fun o -> o.rows) outcomes
let failed outcomes = List.filter (fun o -> o.error <> None) outcomes
