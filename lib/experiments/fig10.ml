(** Figure 10 — throughput vs P50/P99 latency as the client count grows
    (YCSB-A, 8 B items, both indexes). *)

module Ycsb = Mutps_workload.Ycsb
module Kvs = Mutps_kvs

let client_counts = [ 2; 8; 24; 64 ]
let systems = [ Harness.Mutps; Harness.Basekv; Harness.Erpckv ]
let index_key = function Kvs.Config.Tree -> "tree" | Kvs.Config.Hash -> "hash"

let run_half scale index =
  let index_name = index_key index in
  Harness.section
    (Printf.sprintf "Figure 10 (%s index): throughput vs latency" index_name);
  let spec = Ycsb.a ~keyspace:scale.Harness.keyspace ~value_size:8 () in
  let axis_of clients =
    [ ("clients", string_of_int clients); ("index", index_name) ]
  in
  let rows =
    List.concat_map
      (fun clients ->
        let s = { scale with Harness.clients; window = 1 } in
        List.map
          (fun sys ->
            Report.of_measurement ~experiment:"fig10"
              ~system:(Harness.system_name sys) ~axis:(axis_of clients)
              (Harness.measure ~index sys s spec))
          systems)
      client_counts
  in
  let table =
    Table.create [ "clients"; "system"; "Mops"; "P50 (us)"; "P99 (us)" ]
  in
  List.iter
    (fun clients ->
      List.iter
        (fun sys ->
          let system = Harness.system_name sys in
          let m name =
            Report.find_metric rows ~experiment:"fig10" ~system
              ~axis:(axis_of clients) name
          in
          Table.add_row table
            [
              string_of_int clients;
              system;
              Table.cell_f (m "mops");
              Table.cell_f (m "p50_us");
              Table.cell_f (m "p99_us");
            ])
        systems)
    client_counts;
  Harness.print_table table;
  rows

let run scale =
  run_half scale Kvs.Config.Tree @ run_half scale Kvs.Config.Hash
