(** Figure 7 — overall YCSB throughput grid: operation mixes × item sizes
    × index structures × systems.  Passive baselines (RaceHash for the
    hash half, Sherman for the tree half) come from the analytic NIC model
    in {!Mutps_kvs.Passive}. *)

module Ycsb = Mutps_workload.Ycsb
module Opgen = Mutps_workload.Opgen
module Kvs = Mutps_kvs

(* The paper-scale CI lane trims the 48-cell grid through environment
   knobs (reading the environment is as deterministic as a CLI flag):
     MUTPS_FIG7_SIZES  comma-separated item sizes (default 8,64,256,1024)
     MUTPS_FIG7_MIXES  comma-separated mix names  (default all six)
     MUTPS_FIG7_INDEX  tree | hash | both         (default both) *)
let env_list name default =
  match Sys.getenv_opt name with
  | None | Some "" -> default
  | Some s ->
    (match
       List.filter (fun x -> x <> "") (String.split_on_char ',' (String.trim s))
     with
    | [] -> default
    | l -> l)

let mixes (scale : Harness.scale) size =
  let keyspace = scale.Harness.keyspace in
  let all =
    [
      ("YCSB-A", Ycsb.a ~keyspace ~value_size:size ());
      ("YCSB-B", Ycsb.b ~keyspace ~value_size:size ());
      ("YCSB-C", Ycsb.c ~keyspace ~value_size:size ());
      ("PUT-S", Ycsb.put_only ~keyspace ~value_size:size ());
      ("GET-U", Ycsb.get_only_uniform ~keyspace ~value_size:size ());
      ("PUT-U", Ycsb.put_only_uniform ~keyspace ~value_size:size ());
    ]
  in
  let wanted = env_list "MUTPS_FIG7_MIXES" (List.map fst all) in
  List.filter (fun (name, _) -> List.mem name wanted) all

let item_sizes () =
  List.filter_map int_of_string_opt
    (env_list "MUTPS_FIG7_SIZES" [ "8"; "64"; "256"; "1024" ])

let passive_for index =
  match index with
  | Kvs.Config.Hash -> Kvs.Passive.Racehash
  | Kvs.Config.Tree -> Kvs.Passive.Sherman

let index_key = function Kvs.Config.Tree -> "tree" | Kvs.Config.Hash -> "hash"

let run_half scale index =
  (* the grid has 48 cells x 3 systems: shorten each cell's windows *)
  let scale =
    { scale with
      Harness.warmup = scale.Harness.warmup / 2;
      measure = scale.Harness.measure * 3 / 5 }
  in
  let index_name =
    match index with Kvs.Config.Tree -> "MassTree-analog (uTPS-T)" | Kvs.Config.Hash -> "libcuckoo-analog (uTPS-H)"
  in
  Harness.section (Printf.sprintf "Figure 7 (%s)" index_name);
  let passive_name = Kvs.Passive.name (passive_for index) in
  let axis_of size mix_name =
    [
      ("index", index_key index); ("mix", mix_name);
      ("size", string_of_int size);
    ]
  in
  let rows =
    List.concat_map
      (fun size ->
        List.concat_map
          (fun (mix_name, spec) ->
            let axis = axis_of size mix_name in
            let m_mutps = Harness.measure ~index Harness.Mutps scale spec in
            let m_base = Harness.measure ~index Harness.Basekv scale spec in
            let m_erpc = Harness.measure ~index Harness.Erpckv scale spec in
            let passive =
              (* passive systems do not support scans; YCSB has none here *)
              (Kvs.Passive.evaluate (passive_for index) ~spec
                 ~clients:(scale.Harness.clients * scale.Harness.window))
                .Kvs.Passive.throughput_mops
            in
            Harness.printf ".";
            [
              Report.of_measurement ~experiment:"fig7" ~system:"uTPS" ~axis
                m_mutps;
              Report.of_measurement ~experiment:"fig7" ~system:"BaseKV" ~axis
                m_base;
              Report.of_measurement ~experiment:"fig7" ~system:"eRPC-KV" ~axis
                m_erpc;
              Report.row ~experiment:"fig7" ~system:passive_name ~axis
                [ ("mops", passive) ];
            ])
          (mixes scale size))
      (item_sizes ())
  in
  Harness.printf "\n";
  let table =
    Table.create
      [ "mix"; "size"; "uTPS"; "BaseKV"; "eRPC-KV"; passive_name; "uTPS/BaseKV" ]
  in
  List.iter
    (fun size ->
      List.iter
        (fun (mix_name, _) ->
          let axis = axis_of size mix_name in
          let m system =
            Report.find_metric rows ~experiment:"fig7" ~system ~axis "mops"
          in
          Table.add_row table
            [
              mix_name;
              string_of_int size;
              Table.cell_f (m "uTPS");
              Table.cell_f (m "BaseKV");
              Table.cell_f (m "eRPC-KV");
              Table.cell_f (m passive_name);
              Printf.sprintf "%.2fx"
                (m "uTPS" /. Float.max (m "BaseKV") 1e-9);
            ])
        (mixes scale size))
    (item_sizes ());
  Harness.print_table table;
  rows

let run scale =
  match Sys.getenv_opt "MUTPS_FIG7_INDEX" with
  | Some "tree" -> run_half scale Kvs.Config.Tree
  | Some "hash" -> run_half scale Kvs.Config.Hash
  | _ -> run_half scale Kvs.Config.Tree @ run_half scale Kvs.Config.Hash
