type entry = {
  name : string;
  description : string;
  run : Harness.scale -> Report.row list;
}

let all =
  [
    {
      name = "table1";
      description = "Twitter trace characteristics (spec vs generated)";
      run = Table1.run;
    };
    {
      name = "fig2a";
      description = "NP-TPS vs NP-TPQ vs NP-TPQ+CAT, uniform gets";
      run = Fig2.run_2a;
    };
    {
      name = "fig2b";
      description = "index lookup with hotspot separation";
      run = Fig2.run_2b;
    };
    {
      name = "fig2c";
      description = "SE vs SN vs uTPS puts vs thread count";
      run = Fig2.run_2c;
    };
    {
      name = "fig7";
      description = "overall YCSB grid (mixes x sizes x indexes x systems)";
      run = Fig7.run;
    };
    {
      name = "fig8a";
      description = "scan throughput (YCSB-E, scan-only)";
      run = Fig8.run_8a;
    };
    {
      name = "fig8bc";
      description = "Meta ETC pool at 10/50/90% gets";
      run = Fig8.run_8bc;
    };
    { name = "fig9"; description = "Twitter traces"; run = Fig9.run };
    {
      name = "fig10";
      description = "throughput vs P50/P99 latency vs client count";
      run = Fig10.run;
    };
    {
      name = "fig11";
      description = "scalability with worker threads";
      run = Fig11.run;
    };
    { name = "fig12"; description = "effects of batching"; run = Fig12.run };
    {
      name = "fig13";
      description = "auto-tuner: core/LLC/cache-size choices";
      run = Fig13.run;
    };
    {
      name = "fig14";
      description = "dynamic workload timeline with auto-tuner";
      run = Fig14.run;
    };
    {
      name = "native_serve";
      description = "native-domains twin: real sockets, wall-clock (no gate)";
      run = Native_serve.run;
    };
  ]

let find name = List.find_opt (fun e -> e.name = name) all
let names () = List.map (fun e -> e.name) all
