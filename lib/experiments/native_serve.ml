(* native_serve: the native-domains twin under real socket load.

   Boots the effect-fiber server (lib/native) in uTPS Split mode on a
   Unix-domain socket and drives it with the closed-loop load generator.
   Unlike every other experiment this one runs on real cores and a real
   clock, so its latency/throughput metrics are wall-clock numbers and
   NOT bit-reproducible — the CI bench-regression gate deliberately
   excludes this experiment.  The rendered text prints only op counts,
   which ARE deterministic, so the parallel runner's per-experiment
   output capture stays byte-identical across --jobs settings. *)

module Server = Mutps_native.Server
module Loadgen = Mutps_native.Loadgen
module Opgen = Mutps_workload.Opgen

(* Busy-polling workers time-slice badly when they outnumber real cores
   (millisecond request latency on a 1-core box), so cap the pool at
   what the machine actually offers. *)
let domains () = max 1 (min 3 (Domain.recommended_domain_count ()))
let shards = 2
let conns = 8
let value_size = 64

let run (scale : Harness.scale) =
  (* a fixed, non-random socket path keeps the server's lifecycle log
     line deterministic (it goes through the Harness sink) *)
  let path =
    Filename.concat (Filename.get_temp_dir_name ()) "mutps-native-serve.sock"
  in
  let domains = domains () in
  let keyspace = max 64 (min scale.Harness.keyspace 8_192) in
  let ops = max 1_000 (min 40_000 (scale.Harness.measure / 1_000)) in
  let cfg =
    {
      Server.mode = Server.Split;
      listen = Server.Unix_path path;
      domains;
      shards;
      keyspace;
      value_size;
      hot_cap = 512;
      duration_s = None;
      log = (fun s -> Harness.printf "%s\n" s);
    }
  in
  let handle = Server.launch cfg in
  let spec =
    {
      Opgen.name = "native";
      keyspace;
      key_dist = Opgen.Zipfian 0.9;
      size_dist = Opgen.Fixed value_size;
      mix = { Opgen.get = 0.9; put = 0.1; scan = 0.0 };
      scan_len = 1;
    }
  in
  let res =
    Loadgen.run { Loadgen.connect = cfg.Server.listen; conns; ops; spec; seed = 42 }
  in
  Server.stop handle;
  let summary = Server.wait handle in
  Harness.section "native_serve";
  Harness.printf
    "native twin (Split, %d domains, %d shards, %d keys): %d ops over %d \
     connections, %d protocol errors\n"
    domains shards keyspace res.Loadgen.completed summary.Server.conns
    res.Loadgen.errors;
  let f = float_of_int in
  let cr_hit_rate =
    f summary.Server.cr_hits /. f (max 1 summary.Server.responded)
  in
  [
    Report.row ~experiment:"native_serve" ~system:"uTPS-native"
      ~axis:
        [
          ("mode", "split");
          ("domains", string_of_int domains);
          ("shards", string_of_int shards);
        ]
      [
        ("completed", f res.Loadgen.completed);
        ("errors", f res.Loadgen.errors);
        ("ops_per_s", Loadgen.ops_per_s res);
        ("p50_us", Loadgen.percentile_us res 50.0);
        ("p99_us", Loadgen.percentile_us res 99.0);
        ("cr_hit_rate", cr_hit_rate);
        ("steals", f summary.Server.steals);
      ];
  ]
