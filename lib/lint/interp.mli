(** Interprocedural charge-discipline analysis.

    Builds a call graph over a closed world of parsed implementation files
    and refines two of {!Lint}'s rules across function boundaries:

    - [R3] — a read of a registered shared-mutable field is reported only
      when it is not lexically commit-dominated {e and} its enclosing
      function is {e exposed}: reachable with uncommitted cycles because
      it is an entry point, escapes as a closure, or has a call site that
      is not commit-dominated (least fixpoint over the call graph).  This
      subsumes the intra-procedural rule and proves helpers whose every
      call site has already committed (run project drivers with
      [~intra_r3:false] to avoid double reports).
    - [R2] — a call (from [lib/]) into a function that transitively
      performs raw [Hierarchy] traffic outside [lib/mem] — i.e. a leak
      through a helper whose own direct access was locally suppressed —
      is reported at the call site.

    Both report kinds reuse the rule names ["R3"]/["R2"], so the usual
    [[\@lint.allow]] suppressions apply at the read or call site. *)

val check_project :
  ?on_suppressed:(rule:string -> loc:Location.t -> unit) ->
  ?registry:Lint.allow_registry ->
  (string * string * Parsetree.structure) list ->
  Lint.finding list
(** [check_project sources] analyzes [(file, rule_path, ast)] triples as
    one closed world and returns the interprocedural findings, sorted.
    Parse with {!Lint.parse_implementation} so the per-file (intra) and
    project passes share one AST per file.  [on_suppressed] fires instead
    of a finding when an [[\@lint.allow]] covers it (default: ignore).
    [registry] tracks suppression attributes as {!Lint.allow_site}s; pass
    the same registry to {!Lint.check_structure} so both passes share the
    per-site use counters. *)
