(* Interprocedural charge-discipline analysis (project mode).

   [Lint] judges each function in isolation, which is blunt across
   function boundaries in two directions:

   - R3 (commit discipline) demands a commit-family call lexically before
     every shared-field read, even when every *call site* of the enclosing
     function is itself commit-dominated (e.g. [Ring.complete], whose only
     callers run right after a committing [Crmr.next_batch]).
   - R2 (charged memory) flags only *direct* [Hierarchy] traffic, so a
     function can leak uncharged traffic by calling — rather than
     containing — a helper whose raw access was sanctioned with a local
     suppression.

   This pass builds a call graph over the closed world handed to
   {!check_project} (the whole tree: lib, bin, bench, examples) and
   computes three relations:

   - [commits f] — f's body reaches a commit-family call at lambda depth
     zero, directly or by calling a committing function.  Same
     branch-insensitive, traversal-order approximation as the intra pass.
   - [exposed f] (least fixpoint) — f can be *entered* with uncommitted
     cycles: it has no syntactic call site in the world (an entry point,
     or a function only ever passed as a closure), or some call site is
     not commit-dominated and its caller is itself exposed.  A
     shared-field read is reported only when it is not lexically dominated
     *and* its function is exposed; this subsumes and refines intra R3.
   - [reaches f] — f transitively performs Hierarchy traffic without an
     intervening Env charge: seeded by direct (typically suppressed)
     [Hierarchy.load]/[store]/[prefetch_batch] calls outside [lib/mem] and
     propagated through calls that do not pass through [lib/mem].  A call
     from [lib/] into a reaching function is an R2 finding: the callee was
     sanctioned to touch the hierarchy raw, the caller was not.

   Approximations, all shared with (or no worse than) the intra pass:
   call sites are syntactic applications of resolvable names ("Module.fn",
   or an unqualified name bound at the top level of the same file); calls
   through closures, record fields and functors are opaque; a bare
   (unapplied) reference to a known function marks it exposed, since the
   closure may run anywhere.  Lambdas passed to [Env.tagged] run exactly
   once, inline, so their bodies are analyzed transparently at the
   caller's depth; every other lambda saves and restores the domination
   state, exactly as intra scoping does. *)

module SS = Set.Make (String)
open Lint.Internal

(* ------------------------------------------------------------------ *)
(* Per-function event streams                                          *)
(* ------------------------------------------------------------------ *)

type ev =
  | Call of {
      path : string;
      loc : Location.t;
      r2_allow : Lint.allow_site option option;
          (** [Some _] = a covering [@lint.allow "R2"] is in force (its
              site, when a registry tracks use counts) *)
    }  (** syntactic application of a named target *)
  | Mention of string  (** bare reference: the target escapes as a closure *)
  | Read of {
      field : string;
      what : string;
      loc : Location.t;
      r3_allow : Lint.allow_site option option;
    }
  | Open_lam of bool  (** [true] = transparent (runs inline exactly once) *)
  | Close_lam

type fn = {
  key : string;  (** "Module.binding" (or "Module.Sub.binding") *)
  f_file : string;
  f_rule : string;  (** rule path, for directory-scoped decisions *)
  events : ev list;  (** traversal order *)
  in_mem : bool;  (** defined under lib/mem (sanctioned raw access) *)
}

let in_dir dir rule_path =
  let pre = dir ^ "/" and mid = "/" ^ dir ^ "/" in
  let starts p s =
    String.length s >= String.length p && String.sub s 0 (String.length p) = p
  in
  let rec contains i =
    i + String.length mid <= String.length rule_path
    && (String.sub rule_path i (String.length mid) = mid || contains (i + 1))
  in
  starts pre rule_path || contains 0

let module_name_of_file file =
  String.capitalize_ascii Filename.(remove_extension (basename file))

(* ------------------------------------------------------------------ *)
(* Extraction                                                          *)
(* ------------------------------------------------------------------ *)

(* Walk one binding body, producing its event stream.  [allows0] carries
   the binding- and file-level suppression entries already in force. *)
let extract_events ?registry ~file ~allows0 (body : Parsetree.expression) =
  let buf = ref [] in
  let allows = ref allows0 in
  let allowed r =
    match
      List.find_opt (fun (s, _) -> SS.mem r s || SS.mem "all" s) !allows
    with
    | Some (_, site) -> Some site
    | None -> None
  in
  let emit e = buf := e :: !buf in
  let rec walk (e : Parsetree.expression) =
    match allow_entries ?registry ~file e.pexp_attributes with
    | [] -> walk_desc e
    | att ->
      let saved = !allows in
      allows := att @ !allows;
      Fun.protect ~finally:(fun () -> allows := saved) (fun () ->
          walk_desc e)
  and walk_desc (e : Parsetree.expression) =
    match e.pexp_desc with
    | Pexp_fun (_, default, _, body) ->
      Option.iter walk default;
      emit (Open_lam false);
      walk body;
      emit Close_lam
    | Pexp_function cases ->
      emit (Open_lam false);
      List.iter
        (fun (c : Parsetree.case) ->
          Option.iter walk c.pc_guard;
          walk c.pc_rhs)
        cases;
      emit Close_lam
    | Pexp_newtype (_, body) -> walk body
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; loc }; _ }, args) ->
      let path = strip_stdlib (path_of_lid txt) in
      (match (path, args) with
      | "@@", [ (_, l); (_, r) ] -> walk_infix_app l r
      | "|>", [ (_, l); (_, r) ] -> walk_infix_app r l
      | _ -> walk_app path loc args)
    | Pexp_apply (f, args) ->
      (* call through a closure / field: opaque target *)
      walk f;
      List.iter (fun (_, a) -> walk a) args
    | Pexp_field (inner, { txt; loc }) ->
      walk inner;
      let name = try Longident.last txt with _ -> "" in
      (match List.assoc_opt name shared_fields with
      | Some what ->
        emit (Read { field = name; what; loc; r3_allow = allowed "R3" })
      | None -> ())
    | Pexp_ident { txt; _ } ->
      emit (Mention (strip_stdlib (path_of_lid txt)))
    | Pexp_let (_, vbs, body) ->
      List.iter
        (fun (vb : Parsetree.value_binding) ->
          match allow_entries ?registry ~file vb.pvb_attributes with
          | [] -> walk vb.pvb_expr
          | att ->
            let saved = !allows in
            allows := att @ !allows;
            Fun.protect
              ~finally:(fun () -> allows := saved)
              (fun () -> walk vb.pvb_expr))
        vbs;
      walk body
    | _ ->
      (* generic recursion over sub-expressions *)
      let it =
        {
          Ast_iterator.default_iterator with
          expr = (fun _ e -> walk e);
        }
      in
      Ast_iterator.default_iterator.expr it e
  (* [f_expr applied-to arg] spelt with @@ or |>: recover the call shape *)
  and walk_infix_app f_expr arg =
    match f_expr.Parsetree.pexp_desc with
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; loc }; _ }, fargs) ->
      walk_app
        (strip_stdlib (path_of_lid txt))
        loc
        (fargs @ [ (Asttypes.Nolabel, arg) ])
    | Pexp_ident { txt; loc } ->
      walk_app (strip_stdlib (path_of_lid txt)) loc [ (Asttypes.Nolabel, arg) ]
    | _ ->
      walk f_expr;
      walk arg
  and walk_app path loc args =
    (* [Env.tagged env "site" (fun () -> ...)]: the lambda runs inline,
       exactly once — analyze it at the caller's depth so commits and
       reads inside it belong to the enclosing function *)
    let transparent = matches "Env.tagged" path in
    List.iter
      (fun ((_, a) : Asttypes.arg_label * Parsetree.expression) ->
        match a.pexp_desc with
        | (Pexp_fun _ | Pexp_function _) when transparent ->
          emit (Open_lam true);
          (let rec strip (e : Parsetree.expression) =
             match e.pexp_desc with
             | Pexp_fun (_, d, _, b) ->
               Option.iter walk d;
               strip b
             | Pexp_newtype (_, b) -> strip b
             | _ -> walk e
           in
           strip a);
          emit Close_lam
        | _ -> walk a)
      args;
    (* the call itself comes after its arguments, mirroring the intra
       pass (commit_dominators runs after the argument traversal) *)
    emit (Call { path; loc; r2_allow = allowed "R2" })
  in
  (* parameter chain of the binding is the function's own body: walk it
     transparently (no lambda frame) *)
  let rec strip_params (e : Parsetree.expression) =
    match e.Parsetree.pexp_desc with
    | Pexp_fun (_, default, _, body) ->
      Option.iter walk default;
      strip_params body
    | Pexp_newtype (_, body) -> strip_params body
    | Pexp_constraint (body, _) -> strip_params body
    | _ -> walk e
  in
  strip_params body;
  List.rev !buf

(* Collect the top-level bindings of one parsed file (including bindings
   in nested [module X = struct ... end]), respecting [@@@lint.allow]. *)
let extract_file ?registry ~file ~rule_path (str : Parsetree.structure) =
  let modname = module_name_of_file file in
  let in_mem = in_dir "lib/mem" rule_path in
  let fns = ref [] in
  let anon = ref 0 in
  let rec items ~prefix ~file_allows str =
    let file_allows = ref file_allows in
    List.iter
      (fun (si : Parsetree.structure_item) ->
        match si.pstr_desc with
        | Pstr_attribute a when a.attr_name.txt = "lint.allow" ->
          file_allows := allow_entries ?registry ~file [ a ] @ !file_allows
        | Pstr_value (_, vbs) ->
          List.iter
            (fun (vb : Parsetree.value_binding) ->
              let name =
                match vb.pvb_pat.ppat_desc with
                | Ppat_var { txt; _ } -> txt
                | Ppat_constraint ({ ppat_desc = Ppat_var { txt; _ }; _ }, _)
                  ->
                  txt
                | _ ->
                  incr anon;
                  Printf.sprintf "<toplevel:%d>" !anon
              in
              let allows0 =
                allow_entries ?registry ~file vb.pvb_attributes
                @ !file_allows
              in
              fns :=
                {
                  key = prefix ^ name;
                  f_file = file;
                  f_rule = rule_path;
                  events = extract_events ?registry ~file ~allows0 vb.pvb_expr;
                  in_mem;
                }
                :: !fns)
            vbs
        | Pstr_module
            {
              pmb_name = { txt = Some sub; _ };
              pmb_expr = { pmod_desc = Pmod_structure s; _ };
              _;
            } ->
          items ~prefix:(prefix ^ sub ^ ".") ~file_allows:!file_allows s
        | _ -> ())
      str
  in
  items ~prefix:(modname ^ ".") ~file_allows:[] str;
  List.rev !fns

(* ------------------------------------------------------------------ *)
(* Resolution                                                          *)
(* ------------------------------------------------------------------ *)

type index = {
  by_key : (string, fn) Hashtbl.t;
  by_short : (string * string, fn) Hashtbl.t;  (** (file, binding name) *)
  keys : string list;
  ambiguous : SS.t;  (** module-name collisions: never resolved *)
}

let build_index fns =
  let by_key = Hashtbl.create 256 and by_short = Hashtbl.create 256 in
  let ambiguous = ref SS.empty in
  let keys = ref [] in
  List.iter
    (fun f ->
      if Hashtbl.mem by_key f.key then ambiguous := SS.add f.key !ambiguous
      else begin
        Hashtbl.replace by_key f.key f;
        keys := f.key :: !keys
      end;
      let short =
        match String.rindex_opt f.key '.' with
        | Some i -> String.sub f.key (i + 1) (String.length f.key - i - 1)
        | None -> f.key
      in
      Hashtbl.replace by_short (f.f_file, short) f)
    fns;
  { by_key; by_short; keys = List.rev !keys; ambiguous = !ambiguous }

(* Resolve a call path written in [file] to a known function, or None for
   targets outside the closed world (stdlib, closures, locals). *)
let resolve idx ~file path =
  if path = "" then None
  else if not (String.contains path '.') then
    Hashtbl.find_opt idx.by_short (file, path)
  else
    match Hashtbl.find_opt idx.by_key path with
    | Some f when not (SS.mem f.key idx.ambiguous) -> Some f
    | _ -> (
      (* alias / fully-qualified spelling: unique suffix match *)
      match
        List.filter
          (fun k -> matches k path && not (SS.mem k idx.ambiguous))
          idx.keys
      with
      | [ k ] -> Hashtbl.find_opt idx.by_key k
      | _ -> None)

(* ------------------------------------------------------------------ *)
(* Replay                                                              *)
(* ------------------------------------------------------------------ *)

(* Interpret a function's event stream: track lexical commit domination
   (with lambda save/restore) and opaque-lambda depth, calling back on
   each call, read and mention. *)
let replay ~call_commits fn ~on_call ~on_read ~on_mention =
  let committed = ref false in
  let depth = ref 0 in
  let stack = ref [] in
  List.iter
    (fun ev ->
      match ev with
      | Open_lam true -> stack := None :: !stack
      | Open_lam false ->
        stack := Some !committed :: !stack;
        incr depth
      | Close_lam -> (
        match !stack with
        | None :: tl -> stack := tl
        | Some c :: tl ->
          stack := tl;
          committed := c;
          decr depth
        | [] -> ())
      | Read { field; what; loc; r3_allow } ->
        on_read ~field ~what ~loc ~r3_allow ~dominated:!committed
          ~depth:!depth
      | Mention p -> on_mention p
      | Call { path; loc; r2_allow } ->
        on_call ~path ~loc ~r2_allow ~dominated:!committed ~depth:!depth;
        if matches_any commit_family path || call_commits path then
          committed := true)
    fn.events

(* ------------------------------------------------------------------ *)
(* The analysis                                                        *)
(* ------------------------------------------------------------------ *)

let check_project ?(on_suppressed = fun ~rule:_ ~loc:_ -> ()) ?registry
    (sources : (string * string * Parsetree.structure) list) =
  let fns =
    List.concat_map
      (fun (file, rule_path, str) ->
        extract_file ?registry ~file ~rule_path str)
      sources
  in
  let idx = build_index fns in
  (* commits(f): least fixpoint over "calls a committing function at
     lambda depth zero" *)
  let commits = ref SS.empty in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun fn ->
        if not (SS.mem fn.key !commits) then begin
          let c = ref false in
          replay fn
            ~call_commits:(fun path ->
              match resolve idx ~file:fn.f_file path with
              | Some g -> SS.mem g.key !commits
              | None -> false)
            ~on_call:(fun ~path ~loc:_ ~r2_allow:_ ~dominated:_ ~depth ->
              if
                depth = 0
                && (matches_any commit_family path
                   ||
                   match resolve idx ~file:fn.f_file path with
                   | Some g -> SS.mem g.key !commits
                   | None -> false)
              then c := true)
            ~on_read:(fun ~field:_ ~what:_ ~loc:_ ~r3_allow:_ ~dominated:_
                          ~depth:_ -> ())
            ~on_mention:ignore;
          if !c then begin
            commits := SS.add fn.key !commits;
            changed := true
          end
        end)
      fns
  done;
  let commits = !commits in
  (* one replay per function with the final commit set: collect resolved
     call sites, shared-field reads and escaping mentions *)
  let calls = Hashtbl.create 256 in (* caller key -> (callee, dominated, loc, r2_allow) list *)
  let reads = Hashtbl.create 256 in (* caller key -> (read, dominated) list *)
  let has_site = Hashtbl.create 256 in (* callee key -> unit *)
  let escapes = ref SS.empty in
  let push tbl k v =
    Hashtbl.replace tbl k
      (v :: (match Hashtbl.find_opt tbl k with Some l -> l | None -> []))
  in
  List.iter
    (fun fn ->
      let call_commits path =
        match resolve idx ~file:fn.f_file path with
        | Some g -> SS.mem g.key commits
        | None -> false
      in
      replay fn ~call_commits
        ~on_call:(fun ~path ~loc ~r2_allow ~dominated ~depth:_ ->
          match resolve idx ~file:fn.f_file path with
          | Some g ->
            Hashtbl.replace has_site g.key ();
            push calls fn.key (g, dominated, loc, r2_allow)
          | None -> ())
        ~on_read:(fun ~field ~what ~loc ~r3_allow ~dominated ~depth:_ ->
          push reads fn.key (field, what, loc, r3_allow, dominated))
        ~on_mention:(fun p ->
          match resolve idx ~file:fn.f_file p with
          | Some g -> escapes := SS.add g.key !escapes
          | None -> ()))
    fns;
  (* exposed(f): least fixpoint from entry points and escaping closures,
     propagated caller -> callee through undominated call sites *)
  let exposed = Hashtbl.create 256 in
  let work = Queue.create () in
  let mark k =
    if not (Hashtbl.mem exposed k) then begin
      Hashtbl.replace exposed k ();
      Queue.add k work
    end
  in
  List.iter (fun fn -> if not (Hashtbl.mem has_site fn.key) then mark fn.key) fns;
  SS.iter mark !escapes;
  while not (Queue.is_empty work) do
    let caller = Queue.pop work in
    match Hashtbl.find_opt calls caller with
    | None -> ()
    | Some sites ->
      List.iter
        (fun ((g : fn), dominated, _, _) -> if not dominated then mark g.key)
        sites
  done;
  let findings = ref [] in
  let report rule fn (loc : Location.t) msg =
    findings :=
      {
        Lint.rule;
        file = fn.f_file;
        line = loc.loc_start.pos_lnum;
        col = loc.loc_start.pos_cnum - loc.loc_start.pos_bol;
        msg;
      }
      :: !findings
  in
  (* R3, interprocedural: an undominated read in an exposed function *)
  List.iter
    (fun fn ->
      if Hashtbl.mem exposed fn.key then
        match Hashtbl.find_opt reads fn.key with
        | None -> ()
        | Some rs ->
          List.iter
            (fun (field, what, loc, r3_allow, dominated) ->
              match (dominated, r3_allow) with
              | true, _ -> ()
              | false, Some site ->
                Option.iter
                  (fun (s : Lint.allow_site) -> s.as_uses <- s.as_uses + 1)
                  site;
                on_suppressed ~rule:"R3" ~loc
              | false, None ->
                report "R3" fn loc
                  (Printf.sprintf
                       "read of shared-mutable field .%s (%s): %s can run \
                        with uncommitted cycles (it is an entry point, \
                        escapes as a closure, or has a call site that is \
                        not commit-dominated); commit before the read or \
                        at every call site"
                       field what fn.key))
            rs)
    fns;
  (* R2, interprocedural: reaches(f) = performs Hierarchy traffic outside
     lib/mem, directly or through calls that do not pass through lib/mem *)
  let reaches = ref SS.empty in
  List.iter
    (fun fn ->
      if not fn.in_mem then
        replay fn
          ~call_commits:(fun _ -> false)
          ~on_call:(fun ~path ~loc:_ ~r2_allow:_ ~dominated:_ ~depth:_ ->
            if matches_any hierarchy_traffic path then
              reaches := SS.add fn.key !reaches)
          ~on_read:(fun ~field:_ ~what:_ ~loc:_ ~r3_allow:_ ~dominated:_
                        ~depth:_ -> ())
          ~on_mention:ignore)
    fns;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun fn ->
        if not (SS.mem fn.key !reaches) then
          match Hashtbl.find_opt calls fn.key with
          | None -> ()
          | Some sites ->
            if
              List.exists
                (fun ((g : fn), _, _, _) ->
                  (not g.in_mem) && SS.mem g.key !reaches)
                sites
            then begin
              reaches := SS.add fn.key !reaches;
              changed := true
            end)
      fns
  done;
  List.iter
    (fun fn ->
      if in_dir "lib" fn.f_rule then
        match Hashtbl.find_opt calls fn.key with
        | None -> ()
        | Some sites ->
          List.iter
            (fun ((g : fn), _, loc, r2_allow) ->
              match
                ((not g.in_mem) && SS.mem g.key !reaches, r2_allow)
              with
              | false, _ -> ()
              | true, Some site ->
                Option.iter
                  (fun (s : Lint.allow_site) -> s.as_uses <- s.as_uses + 1)
                  site;
                on_suppressed ~rule:"R2" ~loc
              | true, None ->
                report "R2" fn loc
                  (Printf.sprintf
                     "call to %s reaches uncharged Hierarchy traffic (a \
                      sanctioned raw access further down the call graph); \
                      route this path through Env.load / Env.store / \
                      Env.prefetch_batch so the cycles land in the \
                      thread's accumulator"
                     g.key))
            sites)
    fns;
  List.sort_uniq Lint.compare_finding !findings
