(* Interprocedural zero-allocation certifier (rule family A).  See
   alloc.mli for the contract.

   Pipeline, mirroring Interp: extract one summary per top-level binding
   (allocation/boxing/escape sites, outgoing calls, bare mentions, arity,
   [@hot] flag), index the bindings, propagate hotness from the [@hot]
   roots through resolvable calls and mentions, then classify every site
   and call of every hot function.

   The walk is over the Parsetree, so the judgments are syntactic
   approximations of what ocamlopt actually emits:

   - local [ref] cells and [let rec] loops that do not escape are often
     eliminated by Simplif, and constant constructors/literals are
     statically allocated — the checker already skips constants, and
     flagging the eliminable cases is intentional: hot code written so
     the *front end* provably does not allocate stays allocation-free
     under every optimization level and every future compiler.
   - calls through closures, record fields, and unqualified names that do
     not resolve in the closed world are trusted (they are
     overwhelmingly locals and stdlib int primitives); qualified names
     that neither resolve nor appear in the safe/allocating tables are
     reported (A1 unknown-callee) rather than trusted, so the hot set
     cannot silently grow an unvetted dependency.

   The runtime zero-allocation test (test/sim: Gc.minor_words delta over
   an event churn) backstops both approximations. *)

module SS = Set.Make (String)
open Lint.Internal

type allow_site = {
  al_file : string;
  al_line : int;
  al_reason : string;
  mutable al_uses : int;
}

type result = {
  findings : Lint.finding list;
  hot_roots : string list;
  hot_set : string list;
  allow_sites : allow_site list;
}

(* ------------------------------------------------------------------ *)
(* Vocabulary                                                          *)
(* ------------------------------------------------------------------ *)

(* Calls whose argument subtrees are error paths that terminate the
   simulation: allocation there is exempt (mirrors [@zero_alloc]'s
   relaxed treatment of diverging branches). *)
let diverging_calls =
  [ "invalid_arg"; "failwith"; "raise"; "raise_notrace"; "exit";
    "Alcotest.fail" ]

(* Trace/sanitizer guards: the [Some]-branch of a match on one of these
   (or the then-branch of an if on [debug_checks]) is the
   "observability is on" path, exempt under the zero-cost-when-off
   contract and not part of the hot set. *)
let guard_calls =
  [ "tr"; "san"; "Engine.tracer"; "Engine.sanitizer"; "Env.tr"; "Env.san";
    "debug_checks"; "Engine.debug_checks" ]

(* Unqualified names that allocate. *)
let unqualified_alloc =
  [ ("ref", "ref cell"); ("^", "string concatenation (^)");
    ("@", "list append (@)"); ("string_of_int", "string construction");
    ("string_of_float", "string construction");
    ("float_of_string", "boxed float construction") ]

(* Unqualified float operators/functions: results are boxed unless the
   compiler can prove local unboxing. *)
let float_ops =
  [ "+."; "-."; "*."; "/."; "**"; "~-."; "abs_float"; "sqrt"; "exp"; "log";
    "sin"; "cos"; "mod_float"; "float_of_int" ]

(* Polymorphic comparisons walk runtime representations (and box on the
   way); hot code must compare ints with the int operators. *)
let poly_compare = [ "compare"; "min"; "max"; "Hashtbl.hash" ]

(* Qualified calls known to allocate. *)
let alloc_calls =
  [ "Array.make"; "Array.init"; "Array.create_float"; "Array.append";
    "Array.concat"; "Array.sub"; "Array.copy"; "Array.of_list";
    "Array.to_list"; "Array.map"; "Array.mapi"; "List.map"; "List.mapi";
    "List.append"; "List.concat"; "List.concat_map"; "List.rev";
    "List.rev_append"; "List.filter"; "List.filter_map"; "List.init";
    "List.sort"; "List.sort_uniq"; "List.cons"; "String.make";
    "String.init"; "String.sub"; "String.concat"; "String.cat";
    "String.split_on_char"; "Bytes.create"; "Bytes.make"; "Bytes.sub";
    "Bytes.copy"; "Bytes.of_string"; "Bytes.to_string"; "Hashtbl.create";
    "Hashtbl.add"; "Hashtbl.replace"; "Hashtbl.copy"; "Queue.create";
    "Queue.push"; "Queue.add"; "Stack.create"; "Stack.push"; "Option.map";
    "Option.some"; "Option.bind"; "Atomic.make"; "Domain.spawn";
    "Fun.protect" ]

(* Qualified calls known not to allocate (int/unit primitives). *)
let safe_calls =
  [ "Array.get"; "Array.set"; "Array.unsafe_get"; "Array.unsafe_set";
    "Array.length"; "Array.blit"; "Array.fill"; "Hashtbl.find";
    "Hashtbl.mem"; "Hashtbl.remove"; "Hashtbl.length"; "Hashtbl.clear";
    "Hashtbl.reset"; "String.length"; "String.get"; "String.unsafe_get";
    "String.equal"; "String.compare"; "Bytes.length"; "Bytes.get";
    "Bytes.set"; "Bytes.unsafe_get"; "Bytes.unsafe_set"; "Bytes.blit";
    "Bytes.fill"; "Char.code"; "Char.chr"; "Char.equal"; "Int.equal";
    "Int.compare"; "Int.min"; "Int.max"; "Int.abs"; "Atomic.get";
    "Atomic.set"; "Atomic.exchange"; "Atomic.compare_and_set";
    "Atomic.fetch_and_add"; "Atomic.incr"; "Atomic.decr"; "Queue.length";
    "Queue.is_empty"; "Sys.opaque_identity"; "Effect.perform";
    "Domain.DLS.get"; "Array.iter"; "Array.iteri"; "Array.exists";
    "List.iter"; "List.length"; "List.exists"; "List.mem" ]

(* Observability machinery: allocation plus I/O, neither belongs on the
   hot path outside a trace guard. *)
let a3_prefixes = [ "Printf."; "Format."; "Buffer."; "print_"; "prerr_"; "output_" ]

let has_prefix p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

let has_suffix suf s =
  String.length s >= String.length suf
  && String.sub s (String.length s - String.length suf) (String.length suf)
     = suf

(* ------------------------------------------------------------------ *)
(* Extraction                                                          *)
(* ------------------------------------------------------------------ *)

type site = {
  s_rule : string;  (* "A1" | "A2" | "A3" *)
  s_what : string;
  s_loc : Location.t;
  s_allow : int;  (* covering [@alloc.allow] id, or -1 *)
}

type call = {
  c_path : string;
  c_loc : Location.t;
  c_nargs : int;
  c_labeled : bool;  (* any labelled/optional argument *)
  c_allow : int;
}

type afn = {
  a_key : string;
  a_file : string;
  a_hot : bool;
  a_arity : int;  (* leading Nolabel params; -1 when any is labelled *)
  a_sites : site list;
  a_calls : call list;
  a_mentions : (string * int) list;  (* path, covering allow id *)
}

(* Literals, constant constructors, and structured constants built only
   from them are statically allocated: not sites. *)
let rec is_constant (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_constant _ -> true
  | Pexp_construct (_, None) | Pexp_variant (_, None) -> true
  | Pexp_construct (_, Some a) | Pexp_variant (_, Some a) -> is_constant a
  | Pexp_tuple es -> List.for_all is_constant es
  | _ -> false

let reason_of_payload (p : Parsetree.payload) =
  match p with
  | Parsetree.PStr
      [
        {
          pstr_desc =
            Pstr_eval
              ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
          _;
        };
      ] ->
    Some s
  | _ -> None

type xstate = {
  x_file : string;
  allow_sites : allow_site array ref;  (* grow-only registry, id = index *)
  mutable sites : site list;
  mutable calls : call list;
  mutable mentions : (string * int) list;
  mutable allow : int;  (* innermost covering allow id, or -1 *)
  mutable live : bool;  (* false inside diverging args / guard branches *)
}

let new_allow st ~loc reason =
  let a =
    {
      al_file = st.x_file;
      al_line = loc.Location.loc_start.pos_lnum;
      al_reason = reason;
      al_uses = 0;
    }
  in
  let arr = !(st.allow_sites) in
  st.allow_sites := Array.append arr [| a |];
  Array.length arr

let allow_of_alloc_attrs st (attrs : Parsetree.attributes) =
  List.fold_left
    (fun acc (a : Parsetree.attribute) ->
      if a.attr_name.txt = "alloc.allow" then
        let reason =
          match reason_of_payload a.attr_payload with
          | Some r -> r
          | None -> "<no reason given>"
        in
        Some (new_allow st ~loc:a.attr_loc reason)
      else acc)
    None attrs

let site st rule what (loc : Location.t) =
  if st.live then
    st.sites <- { s_rule = rule; s_what = what; s_loc = loc; s_allow = st.allow } :: st.sites

let is_guard_scrutinee (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) ->
    matches_any guard_calls (strip_stdlib (path_of_lid txt))
  | _ -> false

let is_some_pattern (p : Parsetree.pattern) =
  match p.ppat_desc with
  | Ppat_construct ({ txt; _ }, _) -> (
    match Longident.last txt with "Some" -> true | _ -> false)
  | _ -> false

let extract_events st (body : Parsetree.expression) =
  let with_allow st id f =
    match id with
    | None -> f ()
    | Some id ->
      let saved = st.allow in
      st.allow <- id;
      Fun.protect ~finally:(fun () -> st.allow <- saved) f
  in
  let with_dead st f =
    let saved = st.live in
    st.live <- false;
    Fun.protect ~finally:(fun () -> st.live <- saved) f
  in
  let rec walk (e : Parsetree.expression) =
    with_allow st (allow_of_alloc_attrs st e.pexp_attributes) @@ fun () ->
    walk_desc e
  and walk_desc (e : Parsetree.expression) =
    match e.pexp_desc with
    | Pexp_fun (_, default, _, lam_body) ->
      site st "A1" "closure allocation (lambda with captured environment)"
        e.pexp_loc;
      Option.iter walk default;
      walk lam_body
    | Pexp_function cases ->
      site st "A1" "closure allocation (function with captured environment)"
        e.pexp_loc;
      List.iter
        (fun (c : Parsetree.case) ->
          Option.iter walk c.pc_guard;
          walk c.pc_rhs)
        cases
    | Pexp_tuple es ->
      if not (is_constant e) then
        site st "A1" "tuple construction" e.pexp_loc;
      List.iter walk es
    | Pexp_record (fields, base) ->
      site st "A1" "record construction" e.pexp_loc;
      Option.iter walk base;
      List.iter (fun (_, v) -> walk v) fields
    | Pexp_construct (_, Some arg) ->
      if not (is_constant e) then
        site st "A1" "variant construction (constructor with payload)"
          e.pexp_loc;
      walk arg
    | Pexp_variant (_, Some arg) ->
      if not (is_constant e) then
        site st "A1" "polymorphic-variant construction" e.pexp_loc;
      walk arg
    | Pexp_array [] -> ()
    | Pexp_array es ->
      site st "A1" "array literal" e.pexp_loc;
      List.iter walk es
    | Pexp_lazy inner ->
      site st "A1" "lazy suspension" e.pexp_loc;
      walk inner
    | Pexp_object _ -> site st "A1" "object construction" e.pexp_loc
    | Pexp_pack _ -> site st "A1" "first-class module packing" e.pexp_loc
    | Pexp_constant (Pconst_float _) ->
      (* a float literal is a static box; only flag computed floats *)
      ()
    | Pexp_ident { txt; _ } ->
      if st.live then
        st.mentions <-
          (strip_stdlib (path_of_lid txt), st.allow) :: st.mentions
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; loc }; _ }, args) -> (
      let path = strip_stdlib (path_of_lid txt) in
      match (path, args) with
      | "@@", [ (_, l); (_, r) ] -> walk_infix_app l r
      | "|>", [ (_, l); (_, r) ] -> walk_infix_app r l
      | _ -> walk_app path loc args)
    | Pexp_apply (f, args) ->
      (* call through a closure or field: opaque, trusted *)
      walk f;
      List.iter (fun (_, a) -> walk a) args
    | Pexp_match (scrut, cases) when is_guard_scrutinee scrut ->
      walk scrut;
      List.iter
        (fun (c : Parsetree.case) ->
          Option.iter walk c.pc_guard;
          if is_some_pattern c.pc_lhs then with_dead st (fun () -> walk c.pc_rhs)
          else walk c.pc_rhs)
        cases
    | Pexp_ifthenelse (cond, then_, else_) when is_guard_scrutinee cond ->
      walk cond;
      with_dead st (fun () -> walk then_);
      Option.iter walk else_
    | Pexp_let (_, vbs, let_body) ->
      List.iter
        (fun (vb : Parsetree.value_binding) ->
          with_allow st (allow_of_alloc_attrs st vb.pvb_attributes)
            (fun () -> walk vb.pvb_expr))
        vbs;
      walk let_body
    | _ ->
      let it =
        { Ast_iterator.default_iterator with expr = (fun _ e -> walk e) }
      in
      Ast_iterator.default_iterator.expr it e
  and walk_infix_app f_expr arg =
    match f_expr.Parsetree.pexp_desc with
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; loc }; _ }, fargs) ->
      walk_app
        (strip_stdlib (path_of_lid txt))
        loc
        (fargs @ [ (Asttypes.Nolabel, arg) ])
    | Pexp_ident { txt; loc } ->
      walk_app (strip_stdlib (path_of_lid txt)) loc [ (Asttypes.Nolabel, arg) ]
    | _ ->
      walk f_expr;
      walk arg
  and walk_app path loc args =
    if List.mem path diverging_calls then
      (* the call terminates the simulation; its message may allocate *)
      with_dead st (fun () -> List.iter (fun (_, a) -> walk a) args)
    else begin
      List.iter (fun (_, a) -> walk a) args;
      if st.live then
        st.calls <-
          {
            c_path = path;
            c_loc = loc;
            c_nargs = List.length args;
            c_labeled =
              List.exists
                (fun ((l : Asttypes.arg_label), _) -> l <> Asttypes.Nolabel)
                args;
            c_allow = st.allow;
          }
          :: st.calls
    end
  in
  walk body

let binding_arity (e : Parsetree.expression) =
  let rec go acc (e : Parsetree.expression) =
    match e.pexp_desc with
    | Pexp_fun (Asttypes.Nolabel, _, _, body) -> go (acc + 1) body
    | Pexp_fun (_, _, _, _) -> -1
    | Pexp_newtype (_, body) | Pexp_constraint (body, _) -> go acc body
    | _ -> acc
  in
  go 0 e

(* Walk the binding body past its parameter chain (the parameters are the
   function itself, not a closure it builds). *)
let rec strip_params walk (e : Parsetree.expression) =
  match e.Parsetree.pexp_desc with
  | Pexp_fun (_, default, _, body) ->
    Option.iter walk default;
    strip_params walk body
  | Pexp_newtype (_, body) | Pexp_constraint (body, _) -> strip_params walk body
  | _ -> walk e

let has_hot_attr (attrs : Parsetree.attributes) =
  List.exists (fun (a : Parsetree.attribute) -> a.attr_name.txt = "hot") attrs

let module_name_of_file file =
  String.capitalize_ascii Filename.(remove_extension (basename file))

let extract_file ~allow_sites ~file (str : Parsetree.structure) =
  let modname = module_name_of_file file in
  let fns = ref [] in
  let anon = ref 0 in
  let rec items ~prefix str =
    List.iter
      (fun (si : Parsetree.structure_item) ->
        match si.pstr_desc with
        | Pstr_value (_, vbs) ->
          List.iter
            (fun (vb : Parsetree.value_binding) ->
              let name =
                match vb.pvb_pat.ppat_desc with
                | Ppat_var { txt; _ } -> txt
                | Ppat_constraint ({ ppat_desc = Ppat_var { txt; _ }; _ }, _)
                  ->
                  txt
                | _ ->
                  incr anon;
                  Printf.sprintf "<toplevel:%d>" !anon
              in
              let st =
                {
                  x_file = file;
                  allow_sites;
                  sites = [];
                  calls = [];
                  mentions = [];
                  allow = -1;
                  live = true;
                }
              in
              (match allow_of_alloc_attrs st vb.pvb_attributes with
              | Some id -> st.allow <- id
              | None -> ());
              strip_params (extract_events st) vb.pvb_expr;
              fns :=
                {
                  a_key = prefix ^ name;
                  a_file = file;
                  a_hot = has_hot_attr vb.pvb_attributes;
                  a_arity = binding_arity vb.pvb_expr;
                  a_sites = List.rev st.sites;
                  a_calls = List.rev st.calls;
                  a_mentions = List.rev st.mentions;
                }
                :: !fns)
            vbs
        | Pstr_module
            {
              pmb_name = { txt = Some sub; _ };
              pmb_expr = { pmod_desc = Pmod_structure s; _ };
              _;
            } ->
          items ~prefix:(prefix ^ sub ^ ".") s
        | _ -> ())
      str
  in
  items ~prefix:(modname ^ ".") str;
  List.rev !fns

(* ------------------------------------------------------------------ *)
(* Resolution (same scheme as Interp)                                  *)
(* ------------------------------------------------------------------ *)

type index = {
  by_key : (string, afn) Hashtbl.t;
  by_short : (string * string, afn) Hashtbl.t;
  keys : string list;
  ambiguous : SS.t;
}

let build_index fns =
  let by_key = Hashtbl.create 256 and by_short = Hashtbl.create 256 in
  let ambiguous = ref SS.empty in
  let keys = ref [] in
  List.iter
    (fun f ->
      if Hashtbl.mem by_key f.a_key then
        ambiguous := SS.add f.a_key !ambiguous
      else begin
        Hashtbl.replace by_key f.a_key f;
        keys := f.a_key :: !keys
      end;
      let short =
        match String.rindex_opt f.a_key '.' with
        | Some i -> String.sub f.a_key (i + 1) (String.length f.a_key - i - 1)
        | None -> f.a_key
      in
      Hashtbl.replace by_short (f.a_file, short) f)
    fns;
  { by_key; by_short; keys = List.rev !keys; ambiguous = !ambiguous }

let resolve idx ~file path =
  if path = "" then None
  else if not (String.contains path '.') then
    Hashtbl.find_opt idx.by_short (file, path)
  else
    match Hashtbl.find_opt idx.by_key path with
    | Some f when not (SS.mem f.a_key idx.ambiguous) -> Some f
    | _ -> (
      match
        List.filter
          (fun k -> matches k path && not (SS.mem k idx.ambiguous))
          idx.keys
      with
      | [ k ] -> Hashtbl.find_opt idx.by_key k
      | _ -> None)

(* ------------------------------------------------------------------ *)
(* Classification of an outgoing call                                  *)
(* ------------------------------------------------------------------ *)

(* [None] = provably fine; [Some (rule, what)] = would be a finding. *)
let classify_call idx ~file (c : call) =
  let p = c.c_path in
  if List.mem p safe_calls || List.mem p diverging_calls then None
  else
    match List.assoc_opt p unqualified_alloc with
    | Some what -> Some ("A1", what)
    | None ->
      if List.mem p float_ops then
        Some ("A2", "float operation " ^ p ^ " (boxed result)")
      else if List.mem p poly_compare then
        Some
          ( "A2",
            "polymorphic " ^ p
            ^ " walks runtime representations; use int comparisons" )
      else if
        (has_prefix "Int64." p || has_prefix "Int32." p
        || has_prefix "Nativeint." p)
        && not (has_suffix ".to_int" p)
      then Some ("A2", "boxed-integer operation " ^ p)
      else if has_prefix "Float." p then
        Some ("A2", "float operation " ^ p ^ " (boxed result)")
      else if List.exists (fun pre -> has_prefix pre p) a3_prefixes then
        Some ("A3", "observability call " ^ p)
      else if List.mem p alloc_calls || has_prefix "Seq." p then
        Some ("A1", "allocating call " ^ p)
      else if has_suffix "_opt" p && String.contains p '.' then
        Some ("A1", "option-allocating call " ^ p)
      else
        match resolve idx ~file p with
        | Some g ->
          if
            g.a_arity >= 0 && (not c.c_labeled) && c.c_nargs < g.a_arity
          then
            Some
              ( "A1",
                Printf.sprintf
                  "partial application of %s (%d of %d arguments) builds a \
                   closure"
                  g.a_key c.c_nargs g.a_arity )
          else None
        | None ->
          if String.contains p '.' then
            Some
              ( "A1",
                "call to " ^ p
                ^ " cannot be proven allocation-free (outside the closed \
                   world and not a known-safe primitive)" )
          else None (* unqualified local: trusted *)

(* ------------------------------------------------------------------ *)
(* The analysis                                                        *)
(* ------------------------------------------------------------------ *)

let check_project (sources : (string * string * Parsetree.structure) list) =
  let allow_sites = ref [||] in
  let fns =
    List.concat_map
      (fun (file, _rule_path, str) -> extract_file ~allow_sites ~file str)
      sources
  in
  let idx = build_index fns in
  (* hot set: roots = [@hot] bindings; propagate through calls and bare
     mentions outside allow regions.  [root_of] remembers which root made
     each function hot, for the finding messages. *)
  let root_of = Hashtbl.create 64 in
  let work = Queue.create () in
  let mark key ~root =
    if not (Hashtbl.mem root_of key) then begin
      Hashtbl.replace root_of key root;
      Queue.add key work
    end
  in
  let hot_roots =
    List.filter_map (fun f -> if f.a_hot then Some f.a_key else None) fns
  in
  List.iter (fun r -> mark r ~root:r) hot_roots;
  while not (Queue.is_empty work) do
    let key = Queue.pop work in
    let root = Hashtbl.find root_of key in
    match Hashtbl.find_opt idx.by_key key with
    | None -> ()
    | Some fn ->
      List.iter
        (fun (c : call) ->
          if c.c_allow < 0 then
            match resolve idx ~file:fn.a_file c.c_path with
            | Some g -> mark g.a_key ~root
            | None -> ())
        fn.a_calls;
      List.iter
        (fun (path, allow) ->
          if allow < 0 then
            match resolve idx ~file:fn.a_file path with
            | Some g -> mark g.a_key ~root
            | None -> ())
        fn.a_mentions
  done;
  let findings = ref [] in
  let report fn rule (loc : Location.t) msg =
    findings :=
      {
        Lint.rule;
        file = fn.a_file;
        line = loc.Location.loc_start.pos_lnum;
        col = loc.Location.loc_start.pos_cnum - loc.Location.loc_start.pos_bol;
        msg;
      }
      :: !findings
  in
  let use id = (!allow_sites).(id).al_uses <- (!allow_sites).(id).al_uses + 1 in
  let provenance fn =
    let root = Hashtbl.find root_of fn.a_key in
    if root = fn.a_key then Printf.sprintf "%s ([@hot] root)" fn.a_key
    else Printf.sprintf "%s (hot: reachable from [@hot] %s)" fn.a_key root
  in
  List.iter
    (fun fn ->
      if Hashtbl.mem root_of fn.a_key then begin
        List.iter
          (fun (s : site) ->
            if s.s_allow >= 0 then use s.s_allow
            else
              report fn s.s_rule s.s_loc
                (Printf.sprintf
                   "%s in %s; the DES hot path must stay off the OCaml heap \
                    — hoist the value, encode it in ints, or justify with \
                    [@alloc.allow \"reason\"]"
                   s.s_what (provenance fn)))
          fn.a_sites;
        List.iter
          (fun (c : call) ->
            match classify_call idx ~file:fn.a_file c with
            | None -> ()
            | Some (rule, what) ->
              if c.c_allow >= 0 then use c.c_allow
              else
                report fn rule c.c_loc
                  (Printf.sprintf "%s in %s" what (provenance fn)))
          fn.a_calls
      end)
    fns;
  {
    findings = List.sort_uniq Lint.compare_finding !findings;
    hot_roots;
    hot_set =
      List.sort compare (List.of_seq (Hashtbl.to_seq_keys root_of));
    allow_sites = Array.to_list !allow_sites;
  }
