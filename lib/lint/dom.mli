(** Interprocedural domain-safety & lock-order analysis (the D rules).

    Certifies, over the same closed Parsetree world as {!Interp}, the
    contract that lets code cross OCaml 5 domains — today the parallel
    experiment runner, tomorrow the native backend (ROADMAP #2):

    - [D1] — every module-level mutable value must be a synchronization
      value (Atomic / Mutex / Condition / Semaphore / DLS key), frozen
      after module initialization, or mutex-guarded (every runtime
      access holds one common lock, tracked through sequences,
      [Mutex.protect] and closure definition points).  Mutable state in
      instance records is engine-local by construction and out of scope.
    - [D2] — mutable locals captured by closures handed to
      [Domain.spawn] (directly or via locally-bound worker functions,
      which are inlined) must be written only under a lock.
    - [D3] — static lock-order graph: edge [a -> b] when [b] is acquired
      (directly or transitively through calls) while [a] is held; cycles
      are potential deadlocks.  Exported as DOT.
    - [D4] — effect performs must be dominated by a handler in the same
      domain: performs (or calls reaching one) inside a [Domain.spawn]
      closure with no intervening handler installer
      ([match_with]/[try_with]/[continue_with]/[Simthread.spawn]) are
      reported.

    D1/D2/D4 findings are reported for library code (rule paths outside
    [bin/], [bench/], [examples/]); the lock graph covers everything.
    Suppress with [[\@dom.allow "reason"]] (expression),
    [[\@\@dom.allow "reason"]] (binding) or [[\@\@\@dom.allow "reason"]]
    (rest of file); sites land in the shared {!Lint.allow_registry} for
    stale reporting. *)

(** Static lock-order graph with first-witness edge labels. *)
module Lockgraph : sig
  type t

  val create : unit -> t
  val add_node : t -> string -> unit

  val add_edge : t -> src:string -> dst:string -> file:string -> line:int -> unit
  (** Records [src -> dst] ("dst acquired while src held"); the first
      witness site is kept as the edge label. *)

  val nodes : t -> string list
  (** Sorted. *)

  val edges : t -> (string * string * string * int) list
  (** [(src, dst, file, line)], sorted. *)

  val cycles : t -> string list list
  (** Strongly connected components with more than one node, plus
      self-loops; each cycle's nodes sorted, cycles sorted.  Empty means
      the acquisition order is consistent (deadlock-free). *)

  val to_dot : t -> string
end

type kind = Sync of string | Mut of string | Imm

type status =
  | S_sync of string  (** a synchronization value (Atomic, Mutex, DLS...) *)
  | S_frozen  (** no runtime writes: initialized, then read-only *)
  | S_locked of string  (** every runtime access holds this lock *)
  | S_flagged  (** has unprotected runtime accesses (D1 findings) *)

type global = {
  g_key : string;  (** "Module.binding" *)
  g_file : string;
  g_line : int;
  g_what : string;  (** "hash table", "ref cell", "Mutex", ... *)
  g_kind : kind;
  mutable g_status : status;
}

type result = {
  findings : Lint.finding list;  (** sorted, deduplicated *)
  globals : global list;  (** every module-level mutable/sync binding *)
  mutable_types : int;
      (** record types with mutable fields — instance-local state, out of
          D1 scope *)
  suppressed : int;  (** findings covered by [[\@dom.allow]] *)
  graph : Lockgraph.t;
  allow_sites : Lint.allow_site list;  (** [dom.allow] sites, file order *)
}

val check_project :
  ?registry:Lint.allow_registry ->
  (string * string * Parsetree.structure) list ->
  result
(** [check_project sources] analyzes [(file, rule_path, ast)] triples as
    one closed world.  Pass the registry shared with
    {!Lint.check_structure} / {!Interp.check_project} so
    [[\@dom.allow]] sites join the common stale-suppression report. *)
