(** Interprocedural zero-allocation certifier for the DES hot path
    (rule family A, complementing the determinism rules R1-R4 in {!Lint}).

    Functions annotated [let[@hot] f ...] are hot roots; everything
    reachable from them through the call graph is the {e hot set} and must
    not touch the OCaml heap:

    - {b A1} — heap allocation: closures, tuples, records, variant and
      polymorphic-variant payloads, array literals, [ref] cells, [lazy],
      first-class modules, allocating stdlib calls ([Array.make],
      [Printf.sprintf], [^], [@], ...), partial applications, and calls to
      qualified names the analysis can neither resolve nor prove safe.
    - {b A2} — boxing: float arithmetic, [Int64]/[Int32]/[Nativeint]
      operations, and polymorphic [compare]/[min]/[max]/[Hashtbl.hash]
      (which box or walk representations at runtime).
    - {b A3} — observability escapes: [Printf]/[Format]/[print_*]/[Buffer]
      calls, which both allocate and drag I/O machinery onto the hot path.

    Two structural exemptions keep the certification honest rather than
    suppression-riddled:

    - {e diverging calls}: argument subtrees of [invalid_arg], [failwith],
      [raise], [exit] are exempt — an error path that terminates the
      simulation may build its message.
    - {e trace guards}: the [Some]-branch of a match on [tr t] / [san t] /
      [Engine.tracer] / [Engine.sanitizer] is exempt and does not extend
      the hot set — the zero-cost-when-{e off} contract only constrains
      the [None] path.

    Anything else must be annotated
    [(e [@alloc.allow "reason"])] at the covering expression; suppressions
    are counted so stale ones surface (see {!result.allow_sites}).

    The analysis walks the Parsetree (same substrate as {!Lint} and
    {!Interp}), so it is syntactic: calls through closures and record
    fields are trusted opaque, and unqualified unresolved names are
    assumed local and safe.  The companion runtime test
    (test/sim, [Gc.minor_words] delta over an event churn) backstops the
    approximation. *)

type allow_site = {
  al_file : string;
  al_line : int;
  al_reason : string;
  mutable al_uses : int;  (** findings suppressed by this attribute *)
}

type result = {
  findings : Lint.finding list;  (** rules "A1" | "A2" | "A3", sorted *)
  hot_roots : string list;  (** keys of [\[@hot\]]-annotated bindings *)
  hot_set : string list;  (** every function certified (roots + reachable) *)
  allow_sites : allow_site list;
      (** every [\[@alloc.allow\]] in the world, with use counts; a site
          with [al_uses = 0] is stale *)
}

val check_project : (string * string * Parsetree.structure) list -> result
(** [check_project sources] takes [(file, rule_path, ast)] triples — the
    same closed world as {!Interp.check_project} — and certifies the hot
    set. *)
