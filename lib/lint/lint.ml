(* AST-level determinism & charge-discipline analyzer for the simulation.

   Walks every implementation file with [Ast_iterator] (compiler-libs) and
   enforces the contracts that keep the DES deterministic and every memory
   touch charged through [Env]/[Simthread]:

   R1  no wall-clock / ambient nondeterminism: [Sys.time], [Unix.*time*],
       [Stdlib.Random], randomized hash tables, and [Hashtbl.iter]/[fold]
       (whose order can leak into simulated state) are forbidden — only
       [Mutps_sim.Rng] may produce randomness.
   R2  charged memory: outside [lib/mem], CPU-side traffic must flow
       through [Env.load]/[store]/[prefetch_batch]; direct
       [Hierarchy.load]/[store]/[prefetch_batch] calls are forbidden.
   R3  commit discipline: reads of registered shared-mutable fields
       (seqlock versions, ring cursors, forwarding completion fields) must
       be lexically dominated by a commit-family call ([Env.commit],
       [Simthread.commit]/[delay]/[yield]/[suspend], or a queue operation
       that commits internally) in the enclosing function.
   R4  effect safety: [Simthread.delay]/[suspend]/[yield]/[commit]/[charge]
       only from code that holds a simulated-thread context (a [ctx]
       parameter, a [Simthread.spawn] callback, or an [Env.t]'s [.ctx]
       field); no [Obj.magic]; no physical (in)equality.

   Any finding can be suppressed at the expression with
   [[@lint.allow "R3"]], at the binding with [[@@lint.allow "R3"]], or for
   the rest of the file with [[@@@lint.allow "R3"]] (several rule names may
   be given in one string, space- or comma-separated; "all" matches every
   rule). *)

module SS = Set.Make (String)

type finding = {
  rule : string;
  file : string;
  line : int;
  col : int;
  msg : string;
}

let pp_finding fmt f =
  Format.fprintf fmt "%s:%d:%d: [%s] %s" f.file f.line f.col f.rule f.msg

let finding_to_string f = Format.asprintf "%a" pp_finding f

let compare_finding a b =
  compare (a.file, a.line, a.col, a.rule, a.msg)
    (b.file, b.line, b.col, b.rule, b.msg)

(* ------------------------------------------------------------------ *)
(* Suppression sites                                                   *)
(* ------------------------------------------------------------------ *)

(* Every [@lint.allow] / [@dom.allow] attribute a pass walks registers one
   site here, keyed by (attribute, file, line) so the intra and
   interprocedural passes — which walk the same attributes — share a
   single use counter.  A site whose counter stays zero suppresses
   nothing: it is stale, and [--strict-suppressions] fails on it. *)
type allow_site = {
  as_attr : string;  (** attribute name, e.g. "lint.allow" *)
  as_file : string;
  as_line : int;
  as_payload : string;  (** raw payload text (rule list or reason) *)
  mutable as_uses : int;
}

type allow_registry = {
  reg_tbl : (string * string * int, allow_site) Hashtbl.t;
  mutable reg_order : allow_site list;  (** reverse registration order *)
}

let new_allow_registry () = { reg_tbl = Hashtbl.create 32; reg_order = [] }

let register_allow reg ~attr ~file ~line ~payload =
  let key = (attr, file, line) in
  match Hashtbl.find_opt reg.reg_tbl key with
  | Some s -> s
  | None ->
    let s =
      { as_attr = attr; as_file = file; as_line = line;
        as_payload = payload; as_uses = 0 }
    in
    Hashtbl.replace reg.reg_tbl key s;
    reg.reg_order <- s :: reg.reg_order;
    s

let allow_sites reg =
  List.sort
    (fun a b -> compare (a.as_file, a.as_line) (b.as_file, b.as_line))
    reg.reg_order

let stale_allow_sites reg =
  List.filter (fun s -> s.as_uses = 0) (allow_sites reg)

(* ------------------------------------------------------------------ *)
(* Rule tables                                                         *)
(* ------------------------------------------------------------------ *)

(* R1: ambient time / randomness sources. *)
let wallclock_idents =
  [ "Sys.time"; "Unix.time"; "Unix.gettimeofday"; "Unix.localtime";
    "Unix.gmtime"; "Unix.sleep"; "Unix.sleepf" ]

(* R1: hash-table traversals whose order depends on internal layout. *)
let unordered_traversals = [ "Hashtbl.iter"; "Hashtbl.fold" ]

(* R2: CPU-side hierarchy traffic that must be charged through Env. *)
let hierarchy_traffic = [ "Hierarchy.load"; "Hierarchy.store"; "Hierarchy.prefetch_batch" ]

(* R3: registered shared-mutable fields.  Reads must follow a commit in
   the enclosing function so the reader observes other threads' effects up
   to its own simulated time. *)
let shared_fields =
  [
    ("version", "Item seqlock version");
    ("head", "ring producer cursor");
    ("tail", "ring completion cursor");
    ("reclaimed", "ring reclaim cursor");
    ("resp_addr", "Fwd completion field");
    ("resp_bytes", "Fwd completion field");
    ("resp_value", "Fwd completion field");
  ]

(* R3: calls that flush the caller's accumulated cycles (directly or, for
   the queue operations, internally) and therefore dominate a subsequent
   shared-state read. *)
let commit_family =
  [
    "Env.commit"; "Simthread.commit"; "Simthread.delay"; "Simthread.yield";
    "Simthread.suspend"; "Condvar.wait"; "Ring.push"; "Ring.peek";
    "Ring.take_completed"; "Crmr.push"; "Crmr.next_batch";
    "Crmr.take_completed"; "Env.assert_committed";
  ]

(* R4: operations that require a simulated-thread context. *)
let simthread_ops =
  [
    "Simthread.delay"; "Simthread.yield"; "Simthread.suspend";
    "Simthread.commit"; "Simthread.charge"; "Condvar.wait";
  ]

let forbidden_obj = [ "Obj.magic"; "Obj.repr"; "Obj.obj" ]

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)
(* ------------------------------------------------------------------ *)

let strip_stdlib p =
  if String.length p > 7 && String.sub p 0 7 = "Stdlib." then
    String.sub p 7 (String.length p - 7)
  else p

(* [matches "Hierarchy.load" path] accepts both the alias form
   ("Hierarchy.load") and the fully qualified one
   ("Mutps_mem.Hierarchy.load"). *)
let matches target path =
  path = target
  || (String.length path > String.length target
      && String.sub path
           (String.length path - String.length target - 1)
           (String.length target + 1)
         = "." ^ target)

let matches_any targets path = List.exists (fun t -> matches t path) targets

let path_of_lid lid =
  match Longident.flatten lid with
  | parts -> String.concat "." parts
  | exception _ -> ""

(* Parse the payload of a [lint.allow] attribute: a string constant holding
   space- or comma-separated rule names. *)
let allow_of_payload (p : Parsetree.payload) =
  match p with
  | Parsetree.PStr
      [
        {
          pstr_desc =
            Pstr_eval
              ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
          _;
        };
      ] ->
    String.split_on_char ' ' s
    |> List.concat_map (String.split_on_char ',')
    |> List.filter (fun r -> r <> "")
    |> SS.of_list
  | _ -> SS.empty

let allow_of_attrs (attrs : Parsetree.attributes) =
  List.fold_left
    (fun acc (a : Parsetree.attribute) ->
      if a.attr_name.txt = "lint.allow" then
        SS.union acc (allow_of_payload a.attr_payload)
      else acc)
    SS.empty attrs

(* Raw payload text, for registry bookkeeping. *)
let payload_string (p : Parsetree.payload) =
  match p with
  | Parsetree.PStr
      [
        {
          pstr_desc =
            Pstr_eval
              ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
          _;
        };
      ] ->
    Some s
  | _ -> None

(* One suppression-stack entry per [@lint.allow] attribute, each carrying
   its registry site (when a registry is attached) for use counting. *)
let allow_entries ?registry ~file (attrs : Parsetree.attributes) =
  List.filter_map
    (fun (a : Parsetree.attribute) ->
      if a.attr_name.txt = "lint.allow" then
        let rules = allow_of_payload a.attr_payload in
        let site =
          Option.map
            (fun reg ->
              register_allow reg ~attr:"lint.allow" ~file
                ~line:a.attr_loc.Location.loc_start.pos_lnum
                ~payload:(Option.value (payload_string a.attr_payload)
                            ~default:""))
            registry
        in
        Some (rules, site)
      else None)
    attrs

(* ------------------------------------------------------------------ *)
(* The checker                                                         *)
(* ------------------------------------------------------------------ *)

type scope = { mutable committed : bool; sim : bool }

type state = {
  file : string;  (** path used in reports *)
  rule_path : string;  (** path used for directory-scoped exemptions *)
  intra_r3 : bool;
      (** check R3 with the lexical (enclosing-function) rule; project mode
          turns this off and runs the interprocedural pass instead *)
  on_suppressed : rule:string -> loc:Location.t -> unit;
      (** called instead of recording when a finding is [@lint.allow]ed;
          drivers use it for suppression accounting *)
  registry : allow_registry option;
      (** suppression-site registry for stale-attribute accounting *)
  mutable findings : finding list;
  mutable scopes : scope list;  (** innermost function first *)
  mutable allows : (SS.t * allow_site option) list;  (** suppression stack *)
  mutable force_sim : bool;
      (** the next lambda visited is a [Simthread.spawn] callback *)
}

let contains_sub ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let in_dir dir st =
  contains_sub ~sub:(dir ^ "/") st.rule_path
  || String.length st.rule_path > String.length dir
     && String.sub st.rule_path 0 (String.length dir + 1) = dir ^ "/"

let cur_scope st =
  match st.scopes with s :: _ -> s | [] -> assert false

let find_allow st rule =
  List.find_opt (fun (s, _) -> SS.mem rule s || SS.mem "all" s) st.allows

let report st rule (loc : Location.t) msg =
  match find_allow st rule with
  | Some (_, site) ->
    Option.iter (fun s -> s.as_uses <- s.as_uses + 1) site;
    st.on_suppressed ~rule ~loc
  | None ->
    st.findings <-
      {
        rule;
        file = st.file;
        line = loc.loc_start.pos_lnum;
        col = loc.loc_start.pos_cnum - loc.loc_start.pos_bol;
        msg;
      }
      :: st.findings

let rec pattern_binds_ctx (p : Parsetree.pattern) =
  match p.ppat_desc with
  | Ppat_var { txt = ("ctx" | "_ctx"); _ } -> true
  | Ppat_alias (p, { txt = ("ctx" | "_ctx"); _ }) -> pattern_binds_ctx p || true
  | Ppat_alias (p, _) | Ppat_constraint (p, _) -> pattern_binds_ctx p
  | Ppat_tuple ps -> List.exists pattern_binds_ctx ps
  | _ -> false

(* First positional argument of a Simthread call: an [Env.t]'s [.ctx] field
   also proves the caller holds a thread context. *)
let arg_is_ctx_field (args : (Asttypes.arg_label * Parsetree.expression) list) =
  match
    List.find_opt (fun (l, _) -> l = Asttypes.Nolabel) args
  with
  | Some (_, { pexp_desc = Pexp_field (_, { txt; _ }); _ }) -> (
    match Longident.last txt with "ctx" -> true | _ -> false)
  | _ -> false

let check_ident st (loc : Location.t) path =
  let p = strip_stdlib path in
  (* R1: wall clock and ambient randomness *)
  if List.mem p wallclock_idents then
    report st "R1" loc
      (Printf.sprintf
         "%s reads the wall clock; simulated time must come from Engine.now \
          / Simthread.now"
         p);
  if String.length p > 7 && String.sub p 0 7 = "Random." then
    report st "R1" loc
      (Printf.sprintf
         "%s is ambient randomness; only Mutps_sim.Rng (seeded, splittable) \
          may produce random values"
         p);
  if List.mem p unordered_traversals then
    report st "R1" loc
      (Printf.sprintf
         "%s traverses in unspecified order, which can leak into simulated \
          state; sort the keys (e.g. Hashtbl.to_seq + List.sort) or use an \
          ordered map"
         p);
  (* R2: uncharged memory traffic *)
  if (not (in_dir "lib/mem" st)) && matches_any hierarchy_traffic path then
    report st "R2" loc
      (Printf.sprintf
         "%s bypasses the charge discipline; route traffic through Env.load \
          / Env.store / Env.prefetch_batch so cycles land in the thread's \
          accumulator"
         path);
  (* R4: Obj escape hatches *)
  if List.mem p forbidden_obj then
    report st "R4" loc (p ^ " defeats the type system; forbidden in the simulation")

let check_apply st (loc : Location.t) path args =
  let p = strip_stdlib path in
  (* R1: randomized hash tables *)
  (if matches "Hashtbl.create" p then
     let randomized =
       List.exists
         (fun ((l : Asttypes.arg_label), (e : Parsetree.expression)) ->
           match l with
           | Labelled "random" | Optional "random" -> (
             match e.pexp_desc with
             | Pexp_construct ({ txt = Lident "false"; _ }, None) -> false
             | _ -> true)
           | _ -> false)
         args
     in
     if randomized then
       report st "R1" loc
         "Hashtbl.create ~random:true seeds iteration order from the \
          process; use the default deterministic layout");
  (* R4: physical equality *)
  (match p with
  | "==" | "!=" ->
    report st "R4" loc
      "physical (in)equality on simulation values is \
       representation-dependent; use structural comparison or an explicit id"
  | _ -> ());
  (* R4: Simthread operations need a thread context *)
  if
    matches_any simthread_ops path
    && (not (in_dir "lib/sim" st))
    && (not (cur_scope st).sim)
    && not (arg_is_ctx_field args)
  then
    report st "R4" loc
      (Printf.sprintf
         "%s is only legal from a simulated thread (a [ctx] parameter, a \
          Simthread.spawn callback, or an Env.t's .ctx)"
         path)

let commit_dominators st path =
  if matches_any commit_family path then (cur_scope st).committed <- true

let check_field_read st (loc : Location.t) lid =
  let name = try Longident.last lid with _ -> "" in
  match List.assoc_opt name shared_fields with
  | Some what ->
    if st.intra_r3 && not (cur_scope st).committed then
      report st "R3" loc
        (Printf.sprintf
           "read of shared-mutable field .%s (%s) is not dominated by a \
            commit in the enclosing function; call Env.commit / \
            Simthread.commit (or delay/yield) first so the thread observes \
            other threads' writes"
           name what)
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Traversal                                                           *)
(* ------------------------------------------------------------------ *)

let with_allows st entries f =
  if entries = [] then f ()
  else begin
    let saved = st.allows in
    st.allows <- entries @ st.allows;
    Fun.protect ~finally:(fun () -> st.allows <- saved) f
  end

let with_scope st scope f =
  st.scopes <- scope :: st.scopes;
  Fun.protect ~finally:(fun () -> st.scopes <- List.tl st.scopes) f

let is_spawn path = matches "Simthread.spawn" path

let iterator st =
  let open Ast_iterator in
  let entries attrs = allow_entries ?registry:st.registry ~file:st.file attrs in
  let expr it (e : Parsetree.expression) =
    with_allows st (entries e.pexp_attributes) @@ fun () ->
    match e.pexp_desc with
    | Pexp_ident { txt; loc } ->
      check_ident st loc (path_of_lid txt);
      default_iterator.expr it e
    | Pexp_fun (_, _, pat, _) ->
      let parent = cur_scope st in
      let sim = parent.sim || st.force_sim || pattern_binds_ctx pat in
      st.force_sim <- false;
      with_scope st { committed = parent.committed; sim } (fun () ->
          default_iterator.expr it e)
    | Pexp_function _ ->
      let parent = cur_scope st in
      let sim = parent.sim || st.force_sim in
      st.force_sim <- false;
      with_scope st { committed = parent.committed; sim } (fun () ->
          default_iterator.expr it e)
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; loc }; _ }, args) ->
      let path = path_of_lid txt in
      check_ident st loc path;
      check_apply st loc path args;
      if is_spawn path then
        (* the function argument of spawn runs as a simulated thread *)
        List.iter
          (fun ((_, a) : Asttypes.arg_label * Parsetree.expression) ->
            (match a.pexp_desc with
            | Pexp_fun _ | Pexp_function _ -> st.force_sim <- true
            | _ -> ());
            it.expr it a;
            st.force_sim <- false)
          args
      else List.iter (fun (_, a) -> it.expr it a) args;
      commit_dominators st path
    | Pexp_apply _ ->
      default_iterator.expr it e;
      (* an unknown applied expression may commit internally; stay exact
         only for direct calls *)
      ()
    | Pexp_field (_, { txt; loc }) ->
      check_field_read st loc txt;
      default_iterator.expr it e
    | _ -> default_iterator.expr it e
  in
  let value_binding it (vb : Parsetree.value_binding) =
    with_allows st (entries vb.pvb_attributes) @@ fun () ->
    default_iterator.value_binding it vb
  in
  let structure_item it (si : Parsetree.structure_item) =
    match si.pstr_desc with
    | Pstr_attribute a when a.attr_name.txt = "lint.allow" ->
      (* [@@@lint.allow "..."] suppresses for the rest of the file *)
      st.allows <- entries [ a ] @ st.allows
    | Pstr_value _ ->
      (* each top-level binding gets a fresh dominance scope *)
      with_scope st { committed = false; sim = false } (fun () ->
          default_iterator.structure_item it si)
    | _ -> default_iterator.structure_item it si
  in
  { default_iterator with expr; value_binding; structure_item }

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let parse_implementation path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let lexbuf = Lexing.from_channel ic in
      Lexing.set_filename lexbuf path;
      Parse.implementation lexbuf)

let check_structure ?(file = "<string>") ?(rule_path = file)
    ?(intra_r3 = true) ?(on_suppressed = fun ~rule:_ ~loc:_ -> ()) ?registry
    (str : Parsetree.structure) =
  let st =
    {
      file;
      rule_path;
      intra_r3;
      on_suppressed;
      registry;
      findings = [];
      scopes = [ { committed = false; sim = false } ];
      allows = [];
      force_sim = false;
    }
  in
  let it = iterator st in
  it.structure it str;
  List.sort compare_finding st.findings

let check_file ?rule_path ?intra_r3 path =
  let rule_path = match rule_path with Some p -> p | None -> path in
  match parse_implementation path with
  | str -> Ok (check_structure ~file:path ~rule_path ?intra_r3 str)
  | exception Syntaxerr.Error _ ->
    Error (Printf.sprintf "%s: syntax error" path)
  | exception Sys_error m -> Error m

let check_string ?(file = "<string>") ?(rule_path = file) ?intra_r3 src =
  let lexbuf = Lexing.from_string src in
  Lexing.set_filename lexbuf file;
  match Parse.implementation lexbuf with
  | str -> Ok (check_structure ~file ~rule_path ?intra_r3 str)
  | exception Syntaxerr.Error _ ->
    Error (Printf.sprintf "%s: syntax error" file)

(* Shared vocabulary for the interprocedural pass (Interp). *)
module Internal = struct
  let matches = matches
  let matches_any = matches_any
  let path_of_lid = path_of_lid
  let strip_stdlib = strip_stdlib
  let commit_family = commit_family
  let shared_fields = shared_fields
  let hierarchy_traffic = hierarchy_traffic
  let allow_of_attrs = allow_of_attrs
  let allow_of_payload = allow_of_payload
  let allow_entries = allow_entries
  let payload_string = payload_string
end
