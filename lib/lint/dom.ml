(* Interprocedural domain-safety & lock-order analysis (the D rules).

   The simulated-time core is single-domain by construction, but two
   things already cross real domains: the parallel experiment runner
   (lib/experiments/runner.ml, [Domain.spawn] per job) and the ambient
   engine factories it inherits (DLS).  The future native backend
   (ROADMAP #2) will cross domains everywhere.  This pass certifies, over
   the same closed Parsetree world as {!Interp}, the contract that makes
   that safe:

   D1  every module-level mutable value (ref, Hashtbl, Buffer, array,
       record with mutable fields, ...) must be one of
         - a synchronization value itself (Atomic / Mutex / Condition /
           Semaphore / Domain.DLS key),
         - frozen: no runtime writes — writes only at module
           initialization (depth-zero code of immediate top-level
           bindings, which happens-before any spawn),
         - mutex-guarded: every runtime access holds one common lock
           (lock state is tracked through sequences, [Mutex.protect],
           and closures, which inherit the locks held at their
           definition point);
       anything else is an unprotected cross-domain access.  Mutable
       state reachable only through instance records (engine fields,
       store handles, ...) is engine-local by construction and out of
       scope; the pass counts those record types for visibility.
   D2  mutable locals captured by a closure handed to [Domain.spawn]
       (directly, or through a locally-bound worker function, which is
       inlined) must be written only under a lock.  Writes outside the
       spawn region are assumed to happen before the spawn or after the
       join — the runner's fill-then-join idiom.
   D3  a static lock-order graph: an edge [a -> b] is recorded when [b]
       is acquired while [a] is held, directly or via a call to a
       function that transitively acquires [b].  Cycles (including
       self-edges: re-acquiring a held, non-reentrant [Mutex.t]) are
       potential deadlocks.  The graph exports as DOT.
   D4  effect performs must be dominated by their handler in the same
       domain: a [perform] — or a call reaching one with no intervening
       handler — inside a [Domain.spawn] closure is an error, because
       the handler installed by [Simthread.spawn]'s [match_with] never
       crosses a domain boundary.  Arguments of handler-installing calls
       ([match_with]/[try_with]/[continue_with]/[Simthread.spawn]) are
       handled regions; performer-ness propagates through ordinary calls.

   Findings are reported for library code (rule paths outside bin/,
   bench/ and examples/ — single-domain drivers); the lock graph is
   built over everything.  Any finding can be suppressed with
   [[@dom.allow "reason"]] at the expression, [[@@dom.allow "reason"]]
   at the binding, or [[@@@dom.allow "reason"]] for the rest of the
   file; sites register in the shared {!Lint.allow_registry} so stale
   suppressions are reported alongside the lint and alloc families.

   Approximations (all in the conservative direction or documented):
   record mutability is judged by field name over every type declared in
   the world; calls through closures, fields and functors are opaque;
   [Mutex.try_lock] counts as an acquire (its failure branch is treated
   as if locked); DLS-inherited factory closures are not spawn-seeded
   (the two in-tree instances are mutex-guarded and D1-checked). *)

module SS = Set.Make (String)
open Lint.Internal

(* ------------------------------------------------------------------ *)
(* Lock-order graph                                                    *)
(* ------------------------------------------------------------------ *)

module Lockgraph = struct
  type t = {
    mutable node_order : string list;  (** reverse insertion order *)
    node_set : (string, unit) Hashtbl.t;
    edge_tbl : (string * string, string * int) Hashtbl.t;
        (** (src, dst) -> first witness (file, line) *)
  }

  let create () =
    { node_order = []; node_set = Hashtbl.create 16; edge_tbl = Hashtbl.create 16 }

  let add_node t n =
    if not (Hashtbl.mem t.node_set n) then begin
      Hashtbl.replace t.node_set n ();
      t.node_order <- n :: t.node_order
    end

  let add_edge t ~src ~dst ~file ~line =
    add_node t src;
    add_node t dst;
    if not (Hashtbl.mem t.edge_tbl (src, dst)) then
      Hashtbl.replace t.edge_tbl (src, dst) (file, line)

  let nodes t = List.sort compare (List.rev t.node_order)

  let edges t =
    Hashtbl.to_seq t.edge_tbl
    |> Seq.map (fun ((src, dst), (file, line)) -> (src, dst, file, line))
    |> List.of_seq |> List.sort compare

  (* Tarjan SCC; a cycle is an SCC with more than one node, or a single
     node with a self-edge. *)
  let cycles t =
    let ns = nodes t in
    let succ = Hashtbl.create 16 in
    List.iter
      (fun (s, d, _, _) ->
        Hashtbl.replace succ s
          (d :: (Option.value (Hashtbl.find_opt succ s) ~default:[])))
      (edges t);
    let index = Hashtbl.create 16 and low = Hashtbl.create 16 in
    let on_stack = Hashtbl.create 16 in
    let stack = ref [] and counter = ref 0 and sccs = ref [] in
    let rec strong v =
      Hashtbl.replace index v !counter;
      Hashtbl.replace low v !counter;
      incr counter;
      stack := v :: !stack;
      Hashtbl.replace on_stack v ();
      List.iter
        (fun w ->
          if not (Hashtbl.mem index w) then begin
            strong w;
            Hashtbl.replace low v
              (min (Hashtbl.find low v) (Hashtbl.find low w))
          end
          else if Hashtbl.mem on_stack w then
            Hashtbl.replace low v
              (min (Hashtbl.find low v) (Hashtbl.find index w)))
        (Option.value (Hashtbl.find_opt succ v) ~default:[]);
      if Hashtbl.find low v = Hashtbl.find index v then begin
        let rec pop acc =
          match !stack with
          | w :: tl ->
            stack := tl;
            Hashtbl.remove on_stack w;
            if w = v then w :: acc else pop (w :: acc)
          | [] -> acc
        in
        sccs := pop [] :: !sccs
      end
    in
    List.iter (fun v -> if not (Hashtbl.mem index v) then strong v) ns;
    List.filter
      (fun scc ->
        match scc with
        | [ v ] -> Hashtbl.mem t.edge_tbl (v, v)
        | _ :: _ :: _ -> true
        | [] -> false)
      !sccs
    |> List.map (List.sort compare)
    |> List.sort compare

  let to_dot t =
    let b = Buffer.create 256 in
    Buffer.add_string b "digraph lock_order {\n";
    Buffer.add_string b "  rankdir=LR;\n  node [shape=box, fontsize=10];\n";
    List.iter
      (fun n -> Buffer.add_string b (Printf.sprintf "  %S;\n" n))
      (nodes t);
    List.iter
      (fun (s, d, file, line) ->
        Buffer.add_string b
          (Printf.sprintf "  %S -> %S [label=\"%s:%d\", fontsize=8];\n" s d
             file line))
      (edges t);
    Buffer.add_string b "}\n";
    Buffer.contents b
end

(* ------------------------------------------------------------------ *)
(* Rule tables                                                         *)
(* ------------------------------------------------------------------ *)

(* Constructors whose result is a synchronization value: safe to share
   by design. *)
let sync_ctors =
  [
    ("Atomic.make", "Atomic");
    ("Mutex.create", "Mutex");
    ("Condition.create", "Condition");
    ("Semaphore.Counting.make", "Semaphore");
    ("Semaphore.Binary.make", "Semaphore");
    ("Domain.DLS.new_key", "DLS key");
  ]

(* Constructors whose result is shared-mutable when bound at the module
   top level. *)
let mut_ctors =
  [
    ("ref", "ref cell");
    ("Hashtbl.create", "hash table");
    ("Queue.create", "queue");
    ("Stack.create", "stack");
    ("Buffer.create", "buffer");
    ("Bytes.create", "byte buffer");
    ("Bytes.make", "byte buffer");
    ("Bytes.of_string", "byte buffer");
    ("Array.make", "array");
    ("Array.init", "array");
    ("Array.create_float", "array");
    ("Array.of_list", "array");
    ("Array.copy", "array");
    ("Array.append", "array");
    ("Array.concat", "array");
    ("Array.sub", "array");
    ("Weak.create", "weak array");
  ]

(* Known mutators: positional (Nolabel) argument indices that are written
   through.  A bare identifier in such a position is a write mention of
   that identifier; everything else is a read. *)
let mutators =
  [
    (":=", [ 0 ]); ("incr", [ 0 ]); ("decr", [ 0 ]);
    ("Hashtbl.replace", [ 0 ]); ("Hashtbl.add", [ 0 ]);
    ("Hashtbl.remove", [ 0 ]); ("Hashtbl.reset", [ 0 ]);
    ("Hashtbl.clear", [ 0 ]); ("Hashtbl.filter_map_inplace", [ 1 ]);
    ("Array.set", [ 0 ]); ("Array.unsafe_set", [ 0 ]);
    ("Array.fill", [ 0 ]); ("Array.blit", [ 2 ]);
    ("Array.sort", [ 1 ]); ("Array.fast_sort", [ 1 ]);
    ("Bytes.set", [ 0 ]); ("Bytes.unsafe_set", [ 0 ]);
    ("Bytes.fill", [ 0 ]); ("Bytes.blit", [ 2 ]);
    ("Bytes.blit_string", [ 2 ]);
    ("Buffer.add_char", [ 0 ]); ("Buffer.add_string", [ 0 ]);
    ("Buffer.add_bytes", [ 0 ]); ("Buffer.add_substring", [ 0 ]);
    ("Buffer.add_subbytes", [ 0 ]); ("Buffer.add_buffer", [ 0 ]);
    ("Buffer.clear", [ 0 ]); ("Buffer.reset", [ 0 ]);
    ("Buffer.truncate", [ 0 ]);
    ("Queue.push", [ 1 ]); ("Queue.add", [ 1 ]); ("Queue.pop", [ 0 ]);
    ("Queue.take", [ 0 ]); ("Queue.clear", [ 0 ]);
    ("Queue.transfer", [ 0; 1 ]);
    ("Stack.push", [ 1 ]); ("Stack.pop", [ 0 ]); ("Stack.clear", [ 0 ]);
  ]

(* Calls whose function arguments run under an installed effect handler.
   [Simthread.spawn] wraps its callback in [match_with] internally. *)
let handler_installers =
  [ "match_with"; "try_with"; "continue_with"; "Simthread.spawn" ]

let is_perform p = matches "perform" p || matches "Effect.perform" p

(* ------------------------------------------------------------------ *)
(* World facts: mutable record fields, globals                         *)
(* ------------------------------------------------------------------ *)

let module_name_of_file file =
  String.capitalize_ascii Filename.(remove_extension (basename file))

let in_reported_dir rule_path =
  let in_dir dir =
    let pre = dir ^ "/" and mid = "/" ^ dir ^ "/" in
    let starts p s =
      String.length s >= String.length p && String.sub s 0 (String.length p) = p
    in
    let rec contains i =
      i + String.length mid <= String.length rule_path
      && (String.sub rule_path i (String.length mid) = mid || contains (i + 1))
    in
    starts pre rule_path || contains 0
  in
  not (in_dir "bin" || in_dir "bench" || in_dir "examples")

(* Every record type in the world contributes its mutable field names;
   a type with at least one mutable field counts as instance-local
   mutable state (out of D1 scope, reported for visibility). *)
let collect_type_facts sources =
  let mutable_fields = ref SS.empty in
  let mutable_types = ref 0 in
  let type_declaration _ (td : Parsetree.type_declaration) =
    match td.ptype_kind with
    | Ptype_record labels ->
      let muts =
        List.filter
          (fun (l : Parsetree.label_declaration) ->
            l.pld_mutable = Asttypes.Mutable)
          labels
      in
      if muts <> [] then begin
        incr mutable_types;
        List.iter
          (fun (l : Parsetree.label_declaration) ->
            mutable_fields := SS.add l.pld_name.txt !mutable_fields)
          muts
      end
    | _ -> ()
  in
  let it = { Ast_iterator.default_iterator with type_declaration } in
  List.iter (fun (_, _, str) -> it.structure it str) sources;
  (!mutable_fields, !mutable_types)

type kind = Sync of string | Mut of string | Imm

(* Shape of a top-level right-hand side.  Recurses through containers
   (tuples, constructors, immutable records, let/sequence tails, if
   branches) so [Some (ref 0)] or [{ slot = Hashtbl.create 4 }] is still
   mutable; function-call results are opaque and classify immutable. *)
let rec classify_rhs ~mutable_fields (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_constraint (e, _) | Pexp_newtype (_, e) ->
    classify_rhs ~mutable_fields e
  | Pexp_lazy _ -> Mut "lazy thunk"
  | Pexp_array (_ :: _) -> Mut "array literal"
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
    let p = strip_stdlib (path_of_lid txt) in
    match List.assoc_opt p sync_ctors with
    | Some k -> Sync k
    | None -> (
      match List.assoc_opt p mut_ctors with
      | Some w -> Mut w
      | None -> Imm))
  | Pexp_record (fields, _) ->
    if
      List.exists
        (fun (({ txt; _ } : Longident.t Location.loc), _) ->
          match Longident.last txt with
          | name -> SS.mem name mutable_fields
          | exception _ -> false)
        fields
    then Mut "record with mutable fields"
    else if
      List.exists
        (fun (_, v) -> classify_rhs ~mutable_fields v <> Imm)
        fields
    then Mut "record holding mutable state"
    else Imm
  | Pexp_tuple es ->
    if List.exists (fun e -> classify_rhs ~mutable_fields e <> Imm) es then
      Mut "tuple holding mutable state"
    else Imm
  | Pexp_construct (_, Some arg) -> (
    match classify_rhs ~mutable_fields arg with
    | Imm -> Imm
    | Sync k -> Sync k
    | Mut w -> Mut w)
  | Pexp_let (_, _, body) | Pexp_sequence (_, body) ->
    classify_rhs ~mutable_fields body
  | Pexp_ifthenelse (_, t, Some e) -> (
    match classify_rhs ~mutable_fields t with
    | Imm -> classify_rhs ~mutable_fields e
    | k -> k)
  | _ -> Imm

type status =
  | S_sync of string  (** a synchronization value (Atomic, Mutex, DLS, ...) *)
  | S_frozen  (** no runtime writes: initialized, then read-only *)
  | S_locked of string  (** every runtime access holds this lock *)
  | S_flagged  (** has unprotected runtime accesses (D1 findings) *)

type global = {
  g_key : string;  (** "Module.binding" *)
  g_file : string;
  g_line : int;
  g_what : string;  (** "hash table", "Mutex", ... *)
  g_kind : kind;
  mutable g_status : status;
}

type gindex = {
  g_by_key : (string, global) Hashtbl.t;
  g_by_short : (string * string, global) Hashtbl.t;
  g_keys : string list;
}

let resolve_in ~by_key ~by_short ~keys ~file path =
  if path = "" then None
  else if not (String.contains path '.') then
    Hashtbl.find_opt by_short (file, path)
  else
    match Hashtbl.find_opt by_key path with
    | Some g -> Some g
    | None -> (
      match List.filter (fun k -> matches k path) keys with
      | [ k ] -> Hashtbl.find_opt by_key k
      | _ -> None)

(* ------------------------------------------------------------------ *)
(* Per-binding extraction                                              *)
(* ------------------------------------------------------------------ *)

type mention = {
  m_global : string;  (** key of the global touched *)
  m_fn : string;  (** enclosing binding *)
  m_file : string;
  m_rule : string;
  m_loc : Location.t;
  m_write : bool;
  m_held : SS.t;
  m_init : bool;  (** depth-zero code of an immediate binding *)
  m_allow : Lint.allow_site option;
}

type cap = {
  c_name : string;  (** local variable captured by a spawn closure *)
  c_what : string;
  c_fn : string;
  c_file : string;
  c_rule : string;
  c_loc : Location.t;
  c_write : bool;
  c_held : SS.t;
  c_allow : Lint.allow_site option;
}

type dcall = {
  dc_path : string;
  dc_fn : string;
  dc_file : string;
  dc_rule : string;
  dc_loc : Location.t;
  dc_held : SS.t;
  dc_spawn : bool;
  dc_handled : bool;
  dc_allow : Lint.allow_site option;
}

type acq = {
  aq_lock : string;
  aq_fn : string;
  aq_file : string;
  aq_loc : Location.t;
  aq_held : SS.t;
}

type pf = {
  pf_fn : string;
  pf_file : string;
  pf_rule : string;
  pf_loc : Location.t;
  pf_spawn : bool;
  pf_handled : bool;
  pf_allow : Lint.allow_site option;
}

type dfn = { d_key : string; d_file : string }

type world = {
  mutable mentions : mention list;
  mutable caps : cap list;
  mutable dcalls : dcall list;
  mutable acqs : acq list;
  mutable performs : pf list;
  mutable fns : dfn list;
}

type wctx = {
  held : SS.t;
  spawn : bool;
  handled : bool;
  depth : int;
  allow : Lint.allow_site option;
}

let dom_allow_site registry ~file (a : Parsetree.attribute) =
  Lint.register_allow registry ~attr:"dom.allow" ~file
    ~line:a.attr_loc.Location.loc_start.pos_lnum
    ~payload:(Option.value (payload_string a.attr_payload) ~default:"")

let dom_allow_of_attrs registry ~file (attrs : Parsetree.attributes) =
  List.find_map
    (fun (a : Parsetree.attribute) ->
      if a.attr_name.txt = "dom.allow" then
        Some (dom_allow_site registry ~file a)
      else None)
    attrs

(* Walk one top-level binding's body.  [immediate] marks a binding whose
   RHS is not a function: its depth-zero code runs at module
   initialization, which happens-before any spawn. *)
let walk_binding ~world ~gidx ~mutable_fields ~registry ~fn_key ~file
    ~rule_path ~immediate ~allow0 (rhs : Parsetree.expression) =
  let spawn_visited = ref SS.empty in
  let local_muts : (string, string) Hashtbl.t = Hashtbl.create 8 in
  let local_lams : (string, Parsetree.expression) Hashtbl.t =
    Hashtbl.create 8
  in
  let resolve_global p =
    resolve_in ~by_key:gidx.g_by_key ~by_short:gidx.g_by_short
      ~keys:gidx.g_keys ~file p
  in
  (* Identity of a lock expression: a resolvable global mutex keeps its
     key; a local name is scoped to the enclosing binding; a record
     field keeps its field name (all instances of a per-instance lock
     share one node — instance locks have one acquisition discipline);
     anything else is anonymous per site. *)
  let lock_id (e : Parsetree.expression) =
    match e.pexp_desc with
    | Pexp_ident { txt; _ } -> (
      let p = strip_stdlib (path_of_lid txt) in
      match resolve_global p with
      | Some g -> g.g_key
      | None ->
        if String.contains p '.' then p else fn_key ^ "/" ^ p)
    | Pexp_field (_, { txt; _ }) -> (
      match Longident.last txt with
      | f -> "<." ^ f ^ ">"
      | exception _ -> "<.lock>")
    | _ ->
      Printf.sprintf "<anon:%s:%d>" file
        e.pexp_loc.Location.loc_start.pos_lnum
  in
  let mention ctx ~(loc : Location.t) ~write p =
    let p = strip_stdlib p in
    match resolve_global p with
    | Some g when (match g.g_kind with Mut _ -> true | _ -> false) ->
      world.mentions <-
        {
          m_global = g.g_key;
          m_fn = fn_key;
          m_file = file;
          m_rule = rule_path;
          m_loc = loc;
          m_write = write;
          m_held = ctx.held;
          m_init = immediate && ctx.depth = 0 && not ctx.spawn;
          m_allow = ctx.allow;
        }
        :: world.mentions
    | _ -> (
      if not (String.contains p '.') then
        match Hashtbl.find_opt local_muts p with
        | Some what when ctx.spawn ->
          world.caps <-
            {
              c_name = p;
              c_what = what;
              c_fn = fn_key;
              c_file = file;
              c_rule = rule_path;
              c_loc = loc;
              c_write = write;
              c_held = ctx.held;
              c_allow = ctx.allow;
            }
            :: world.caps
        | _ -> ())
  in
  let rec walk ctx (e : Parsetree.expression) : SS.t =
    match dom_allow_of_attrs registry ~file e.pexp_attributes with
    | Some site -> walk_desc { ctx with allow = Some site } e
    | None -> walk_desc ctx e
  and walk_desc ctx (e : Parsetree.expression) : SS.t =
    match e.pexp_desc with
    | Pexp_ident { txt; loc } ->
      mention ctx ~loc ~write:false (path_of_lid txt);
      ctx.held
    | Pexp_fun (_, default, _, body) ->
      Option.iter (fun d -> ignore (walk ctx d)) default;
      ignore (walk { ctx with depth = ctx.depth + 1 } body);
      ctx.held
    | Pexp_function cases ->
      List.iter
        (fun (c : Parsetree.case) ->
          Option.iter
            (fun g -> ignore (walk { ctx with depth = ctx.depth + 1 } g))
            c.pc_guard;
          ignore (walk { ctx with depth = ctx.depth + 1 } c.pc_rhs))
        cases;
      ctx.held
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; loc }; _ }, args) -> (
      let p = strip_stdlib (path_of_lid txt) in
      match (p, args) with
      | "@@", [ (_, l); (_, r) ] -> walk_infix ctx l r
      | "|>", [ (_, l); (_, r) ] -> walk_infix ctx r l
      | _ -> walk_app ctx loc p args)
    | Pexp_apply (f, args) ->
      ignore (walk ctx f);
      List.iter (fun (_, a) -> ignore (walk ctx a)) args;
      ctx.held
    | Pexp_let (_, vbs, body) ->
      let held =
        List.fold_left
          (fun held (vb : Parsetree.value_binding) ->
            (match vb.pvb_pat.ppat_desc with
            | Ppat_var { txt = name; _ }
            | Ppat_constraint ({ ppat_desc = Ppat_var { txt = name; _ }; _ }, _)
              -> (
              match vb.pvb_expr.pexp_desc with
              | Pexp_fun _ | Pexp_function _ ->
                Hashtbl.replace local_lams name vb.pvb_expr
              | _ -> (
                match classify_rhs ~mutable_fields vb.pvb_expr with
                | Mut what -> Hashtbl.replace local_muts name what
                | _ -> ()))
            | _ -> ());
            walk { ctx with held } vb.pvb_expr)
          ctx.held vbs
      in
      walk { ctx with held } body
    | Pexp_sequence (a, b) ->
      let held = walk ctx a in
      walk { ctx with held } b
    | Pexp_setfield (lhs, _, rhs) ->
      (match lhs.pexp_desc with
      | Pexp_ident { txt; loc } ->
        mention ctx ~loc ~write:true (path_of_lid txt)
      | _ -> ignore (walk ctx lhs));
      ignore (walk ctx rhs);
      ctx.held
    | Pexp_ifthenelse (c, t, eo) ->
      let held = walk ctx c in
      ignore (walk { ctx with held } t);
      Option.iter (fun e -> ignore (walk { ctx with held } e)) eo;
      held
    | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
      let held = walk ctx scrut in
      List.iter
        (fun (c : Parsetree.case) ->
          Option.iter (fun g -> ignore (walk { ctx with held } g)) c.pc_guard;
          ignore (walk { ctx with held } c.pc_rhs))
        cases;
      held
    | Pexp_constraint (e, _) | Pexp_newtype (_, e) | Pexp_open (_, e) ->
      walk ctx e
    | _ ->
      let it =
        {
          Ast_iterator.default_iterator with
          expr = (fun _ e -> ignore (walk ctx e));
        }
      in
      Ast_iterator.default_iterator.expr it e;
      ctx.held
  and walk_infix ctx f_expr arg =
    match f_expr.Parsetree.pexp_desc with
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; loc }; _ }, fargs) ->
      walk_app ctx loc
        (strip_stdlib (path_of_lid txt))
        (fargs @ [ (Asttypes.Nolabel, arg) ])
    | Pexp_ident { txt; loc } ->
      walk_app ctx loc
        (strip_stdlib (path_of_lid txt))
        [ (Asttypes.Nolabel, arg) ]
    | _ ->
      let held = walk ctx f_expr in
      walk { ctx with held } arg
  and walk_app ctx (loc : Location.t) p args : SS.t =
    let nolabel =
      List.filter_map
        (fun ((l, a) : Asttypes.arg_label * Parsetree.expression) ->
          if l = Asttypes.Nolabel then Some a else None)
        args
    in
    if matches "Mutex.lock" p || matches "Mutex.try_lock" p then (
      match nolabel with
      | [ l ] ->
        let lid = lock_id l in
        world.acqs <-
          { aq_lock = lid; aq_fn = fn_key; aq_file = file; aq_loc = loc;
            aq_held = ctx.held }
          :: world.acqs;
        SS.add lid ctx.held
      | _ -> ctx.held)
    else if matches "Mutex.unlock" p then (
      match nolabel with
      | [ l ] -> SS.remove (lock_id l) ctx.held
      | _ -> ctx.held)
    else if matches "Mutex.protect" p then (
      match nolabel with
      | l :: rest ->
        let lid = lock_id l in
        world.acqs <-
          { aq_lock = lid; aq_fn = fn_key; aq_file = file; aq_loc = loc;
            aq_held = ctx.held }
          :: world.acqs;
        let inner = { ctx with held = SS.add lid ctx.held } in
        List.iter (fun a -> ignore (walk inner a)) rest;
        ctx.held
      | [] -> ctx.held)
    else if matches "Domain.spawn" p then begin
      (match nolabel with
      | closure :: _ -> spawn_walk ctx loc closure
      | [] -> ());
      ctx.held
    end
    else if matches_any handler_installers p then begin
      record_call ctx loc p;
      List.iter
        (fun (_, a) -> ignore (walk { ctx with handled = true } a))
        args;
      ctx.held
    end
    else if is_perform p then begin
      world.performs <-
        {
          pf_fn = fn_key;
          pf_file = file;
          pf_rule = rule_path;
          pf_loc = loc;
          pf_spawn = ctx.spawn;
          pf_handled = ctx.handled;
          pf_allow = ctx.allow;
        }
        :: world.performs;
      List.iter (fun (_, a) -> ignore (walk ctx a)) args;
      ctx.held
    end
    else begin
      (* argument traversal, with write positions of known mutators *)
      let write_idx =
        Option.value (List.assoc_opt p mutators) ~default:[]
      in
      let pos = ref (-1) in
      List.iter
        (fun ((l, a) : Asttypes.arg_label * Parsetree.expression) ->
          let is_write_pos =
            l = Asttypes.Nolabel
            && begin
                 incr pos;
                 List.mem !pos write_idx
               end
          in
          match a.pexp_desc with
          | Pexp_ident { txt; loc = iloc } when is_write_pos ->
            mention ctx ~loc:iloc ~write:true (path_of_lid txt)
          | _ -> ignore (walk ctx a))
        args;
      (* the call itself *)
      (if (not (String.contains p '.')) && Hashtbl.mem local_lams p then begin
         (* local worker function: in a spawn region its body runs on the
            spawned domain — inline it (once per spawn region) *)
         if ctx.spawn && not (SS.mem p !spawn_visited) then begin
           spawn_visited := SS.add p !spawn_visited;
           inline_lam ctx (Hashtbl.find local_lams p)
         end
       end
       else record_call ctx loc p);
      ctx.held
    end
  and record_call ctx loc p =
    world.dcalls <-
      {
        dc_path = p;
        dc_fn = fn_key;
        dc_file = file;
        dc_rule = rule_path;
        dc_loc = loc;
        dc_held = ctx.held;
        dc_spawn = ctx.spawn;
        dc_handled = ctx.handled;
        dc_allow = ctx.allow;
      }
      :: world.dcalls
  and inline_lam ctx (lam : Parsetree.expression) =
    let rec strip (e : Parsetree.expression) =
      match e.pexp_desc with
      | Pexp_fun (_, d, _, b) ->
        Option.iter (fun d -> ignore (walk ctx d)) d;
        strip b
      | Pexp_newtype (_, b) | Pexp_constraint (b, _) -> strip b
      | _ -> ignore (walk ctx e)
    in
    strip lam
  and spawn_walk ctx loc (closure : Parsetree.expression) =
    let inner =
      { ctx with spawn = true; handled = false; depth = ctx.depth + 1 }
    in
    match closure.pexp_desc with
    | Pexp_fun _ | Pexp_function _ -> inline_lam inner closure
    | Pexp_ident { txt; _ } -> (
      let p = strip_stdlib (path_of_lid txt) in
      if (not (String.contains p '.')) && Hashtbl.mem local_lams p then begin
        if not (SS.mem p !spawn_visited) then begin
          spawn_visited := SS.add p !spawn_visited;
          inline_lam inner (Hashtbl.find local_lams p)
        end
      end
      else record_call inner loc p)
    | _ -> ignore (walk inner closure)
  in
  world.fns <- { d_key = fn_key; d_file = file } :: world.fns;
  let rec strip_params (e : Parsetree.expression) =
    match e.Parsetree.pexp_desc with
    | Pexp_fun (_, default, _, body) ->
      Option.iter
        (fun d ->
          ignore
            (walk
               { held = SS.empty; spawn = false; handled = false; depth = 0;
                 allow = allow0 }
               d))
        default;
      strip_params body
    | Pexp_newtype (_, body) | Pexp_constraint (body, _) -> strip_params body
    | _ ->
      ignore
        (walk
           { held = SS.empty; spawn = false; handled = false; depth = 0;
             allow = allow0 }
           e)
  in
  strip_params rhs

(* ------------------------------------------------------------------ *)
(* The analysis                                                        *)
(* ------------------------------------------------------------------ *)

type result = {
  findings : Lint.finding list;
  globals : global list;  (** every module-level mutable/sync binding *)
  mutable_types : int;  (** record types with mutable fields (instance-local) *)
  suppressed : int;  (** findings covered by [@dom.allow] *)
  graph : Lockgraph.t;
  allow_sites : Lint.allow_site list;  (** [@dom.allow] sites, file order *)
}

(* Iterate the top-level bindings of one file (including nested
   [module X = struct ... end]), tracking [@@@dom.allow] file scope. *)
let fold_bindings ~registry ~file str f =
  let rec items ~prefix ~file_allow str =
    let fa = ref file_allow in
    List.iter
      (fun (si : Parsetree.structure_item) ->
        match si.pstr_desc with
        | Pstr_attribute a when a.attr_name.txt = "dom.allow" ->
          fa := Some (dom_allow_site registry ~file a)
        | Pstr_value (_, vbs) ->
          List.iter (fun vb -> f ~prefix ~file_allow:!fa vb) vbs
        | Pstr_module
            {
              pmb_name = { txt = Some sub; _ };
              pmb_expr = { pmod_desc = Pmod_structure s; _ };
              _;
            } ->
          items ~prefix:(prefix ^ sub ^ ".") ~file_allow:!fa s
        | _ -> ())
      str
  in
  items ~prefix:(module_name_of_file file ^ ".") ~file_allow:None str

let binding_name anon (vb : Parsetree.value_binding) =
  match vb.pvb_pat.ppat_desc with
  | Ppat_var { txt; _ }
  | Ppat_constraint ({ ppat_desc = Ppat_var { txt; _ }; _ }, _) ->
    txt
  | _ ->
    incr anon;
    Printf.sprintf "<toplevel:%d>" !anon

let rec is_function_rhs (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ -> true
  | Pexp_constraint (e, _) | Pexp_newtype (_, e) -> is_function_rhs e
  | _ -> false

let check_project ?registry
    (sources : (string * string * Parsetree.structure) list) =
  let registry =
    match registry with Some r -> r | None -> Lint.new_allow_registry ()
  in
  let mutable_fields, mutable_types = collect_type_facts sources in
  (* pass 1: classify module-level bindings *)
  let globals = ref [] in
  List.iter
    (fun (file, _rule_path, str) ->
      let anon = ref 0 in
      fold_bindings ~registry ~file str
        (fun ~prefix ~file_allow:_ (vb : Parsetree.value_binding) ->
          let name = binding_name anon vb in
          match classify_rhs ~mutable_fields vb.pvb_expr with
          | Imm -> ()
          | Sync k ->
            globals :=
              {
                g_key = prefix ^ name;
                g_file = file;
                g_line = vb.pvb_loc.Location.loc_start.pos_lnum;
                g_what = k;
                g_kind = Sync k;
                g_status = S_sync k;
              }
              :: !globals
          | Mut w ->
            globals :=
              {
                g_key = prefix ^ name;
                g_file = file;
                g_line = vb.pvb_loc.Location.loc_start.pos_lnum;
                g_what = w;
                g_kind = Mut w;
                g_status = S_frozen;
              }
              :: !globals))
    sources;
  let globals =
    List.sort (fun a b -> compare (a.g_file, a.g_line) (b.g_file, b.g_line))
      !globals
  in
  let gidx =
    let g_by_key = Hashtbl.create 64 and g_by_short = Hashtbl.create 64 in
    let keys = ref [] in
    List.iter
      (fun g ->
        if not (Hashtbl.mem g_by_key g.g_key) then begin
          Hashtbl.replace g_by_key g.g_key g;
          keys := g.g_key :: !keys
        end;
        let short =
          match String.rindex_opt g.g_key '.' with
          | Some i -> String.sub g.g_key (i + 1) (String.length g.g_key - i - 1)
          | None -> g.g_key
        in
        Hashtbl.replace g_by_short (g.g_file, short) g)
      globals;
    { g_by_key; g_by_short; g_keys = List.rev !keys }
  in
  (* pass 2: walk every binding body *)
  let world =
    { mentions = []; caps = []; dcalls = []; acqs = []; performs = [];
      fns = [] }
  in
  List.iter
    (fun (file, rule_path, str) ->
      let anon = ref 0 in
      fold_bindings ~registry ~file str
        (fun ~prefix ~file_allow (vb : Parsetree.value_binding) ->
          let name = binding_name anon vb in
          let allow0 =
            match
              dom_allow_of_attrs registry ~file vb.pvb_attributes
            with
            | Some s -> Some s
            | None -> file_allow
          in
          walk_binding ~world ~gidx ~mutable_fields ~registry
            ~fn_key:(prefix ^ name) ~file ~rule_path
            ~immediate:(not (is_function_rhs vb.pvb_expr))
            ~allow0 vb.pvb_expr))
    sources;
  (* function index, for resolving recorded calls *)
  let fidx_by_key = Hashtbl.create 256 and fidx_by_short = Hashtbl.create 256 in
  let fidx_keys = ref [] in
  List.iter
    (fun (f : dfn) ->
      if not (Hashtbl.mem fidx_by_key f.d_key) then begin
        Hashtbl.replace fidx_by_key f.d_key f;
        fidx_keys := f.d_key :: !fidx_keys
      end;
      let short =
        match String.rindex_opt f.d_key '.' with
        | Some i -> String.sub f.d_key (i + 1) (String.length f.d_key - i - 1)
        | None -> f.d_key
      in
      Hashtbl.replace fidx_by_short (f.d_file, short) f)
    world.fns;
  let resolve_fn ~file p =
    resolve_in ~by_key:fidx_by_key ~by_short:fidx_by_short
      ~keys:(List.rev !fidx_keys) ~file p
  in
  (* findings, with [@dom.allow] accounting *)
  let findings = ref [] and suppressed = ref 0 in
  let report ?allow rule ~file ~(loc : Location.t) msg =
    match (allow : Lint.allow_site option) with
    | Some site ->
      site.as_uses <- site.as_uses + 1;
      incr suppressed
    | None ->
      findings :=
        {
          Lint.rule;
          file;
          line = loc.loc_start.pos_lnum;
          col = loc.loc_start.pos_cnum - loc.loc_start.pos_bol;
          msg;
        }
        :: !findings
  in
  let mentions = List.rev world.mentions in
  (* D1: judge every module-level mutable binding *)
  List.iter
    (fun g ->
      match g.g_kind with
      | Sync _ | Imm -> ()
      | Mut what ->
        let ms = List.filter (fun m -> m.m_global = g.g_key) mentions in
        let runtime = List.filter (fun m -> not m.m_init) ms in
        let writes = List.filter (fun m -> m.m_write) runtime in
        if writes = [] then g.g_status <- S_frozen
        else begin
          let common =
            match runtime with
            | [] -> SS.empty
            | m :: tl ->
              List.fold_left (fun acc m -> SS.inter acc m.m_held) m.m_held tl
          in
          if not (SS.is_empty common) then
            g.g_status <- S_locked (SS.min_elt common)
          else begin
            g.g_status <- S_flagged;
            let unheld =
              List.filter (fun m -> SS.is_empty m.m_held) runtime
            in
            let offenders = if unheld <> [] then unheld else runtime in
            let inconsistent = unheld = [] in
            List.iter
              (fun m ->
                if in_reported_dir m.m_rule then
                  report ?allow:m.m_allow "D1" ~file:m.m_file ~loc:m.m_loc
                    (Printf.sprintf
                       "%s of module-level mutable %s (%s) in %s %s; every \
                        cross-domain access must hold one common mutex, or \
                        the state must become Atomic, Domain.DLS or an \
                        engine-instance field"
                       (if m.m_write then "write" else "read")
                       g.g_key what m.m_fn
                       (if inconsistent then
                          "holds no lock common to all accesses"
                        else "holds no lock")))
              offenders
          end
        end)
    globals;
  (* D2: mutable locals captured by Domain.spawn closures *)
  let caps = List.rev world.caps in
  let cap_groups = Hashtbl.create 16 in
  List.iter
    (fun c ->
      let k = (c.c_fn, c.c_name) in
      Hashtbl.replace cap_groups k
        (c :: Option.value (Hashtbl.find_opt cap_groups k) ~default:[]))
    caps;
  Hashtbl.to_seq cap_groups |> List.of_seq
  |> List.sort (fun (k1, _) (k2, _) -> compare k1 k2)
  |> List.iter (fun ((_fn, name), group) ->
      let group = List.rev group in
      let unprotected_writes =
        List.filter (fun c -> c.c_write && SS.is_empty c.c_held) group
      in
      if unprotected_writes <> [] then
        List.iter
          (fun c ->
            if SS.is_empty c.c_held && in_reported_dir c.c_rule then
              report ?allow:c.c_allow "D2" ~file:c.c_file ~loc:c.c_loc
                (Printf.sprintf
                   "mutable local %s (%s) is captured by a Domain.spawn \
                    closure in %s and %s without holding a lock; workers \
                    race on it — protect it with a mutex or give each \
                    worker a disjoint slot ([@dom.allow \"reason\"] if \
                    disjointness is provable)"
                   name c.c_what c.c_fn
                   (if c.c_write then "written" else
                      "read while another access writes it")))
          group);
  (* D3: lock-order graph, direct and interprocedural *)
  let acqs = List.rev world.acqs in
  let dcalls = List.rev world.dcalls in
  let acquires = Hashtbl.create 64 in
  let get_acq k = Option.value (Hashtbl.find_opt acquires k) ~default:SS.empty in
  List.iter
    (fun a -> Hashtbl.replace acquires a.aq_fn (SS.add a.aq_lock (get_acq a.aq_fn)))
    acqs;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (c : dcall) ->
        match resolve_fn ~file:c.dc_file c.dc_path with
        | Some g ->
          let mine = get_acq c.dc_fn and theirs = get_acq g.d_key in
          if not (SS.subset theirs mine) then begin
            Hashtbl.replace acquires c.dc_fn (SS.union mine theirs);
            changed := true
          end
        | None -> ())
      dcalls
  done;
  let graph = Lockgraph.create () in
  List.iter
    (fun a ->
      Lockgraph.add_node graph a.aq_lock;
      SS.iter
        (fun h ->
          Lockgraph.add_edge graph ~src:h ~dst:a.aq_lock ~file:a.aq_file
            ~line:a.aq_loc.Location.loc_start.pos_lnum)
        a.aq_held)
    acqs;
  List.iter
    (fun (c : dcall) ->
      if not (SS.is_empty c.dc_held) then
        match resolve_fn ~file:c.dc_file c.dc_path with
        | Some g ->
          SS.iter
            (fun h ->
              SS.iter
                (fun l ->
                  Lockgraph.add_edge graph ~src:h ~dst:l ~file:c.dc_file
                    ~line:c.dc_loc.Location.loc_start.pos_lnum)
                (get_acq g.d_key))
            c.dc_held
        | None -> ())
    dcalls;
  List.iter
    (fun cycle ->
      let in_cycle n = List.mem n cycle in
      let witness =
        List.find_opt
          (fun (s, d, _, _) -> in_cycle s && in_cycle d)
          (Lockgraph.edges graph)
      in
      let file, line =
        match witness with
        | Some (_, _, f, l) -> (f, l)
        | None -> ("<unknown>", 0)
      in
      findings :=
        {
          Lint.rule = "D3";
          file;
          line;
          col = 0;
          msg =
            Printf.sprintf
              "lock-order cycle %s (potential deadlock): acquisition order \
               must be consistent across all domains"
              (String.concat " -> " (cycle @ [ List.hd cycle ]));
        }
        :: !findings)
    (Lockgraph.cycles graph);
  (* D4: performs must stay under their handler's domain *)
  let performs = List.rev world.performs in
  let performers = Hashtbl.create 32 in
  List.iter
    (fun p -> if not p.pf_handled then Hashtbl.replace performers p.pf_fn ())
    performs;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (c : dcall) ->
        if not (c.dc_handled || Hashtbl.mem performers c.dc_fn) then
          match resolve_fn ~file:c.dc_file c.dc_path with
          | Some g when Hashtbl.mem performers g.d_key ->
            Hashtbl.replace performers c.dc_fn ();
            changed := true
          | _ -> ())
      dcalls
  done;
  List.iter
    (fun p ->
      if p.pf_spawn && (not p.pf_handled) && in_reported_dir p.pf_rule then
        report ?allow:p.pf_allow "D4" ~file:p.pf_file ~loc:p.pf_loc
          (Printf.sprintf
             "effect perform inside a Domain.spawn closure in %s has no \
              handler on the spawned domain; effects must be handled \
              (Simthread.spawn's match_with) in the domain that performs \
              them"
             p.pf_fn))
    performs;
  List.iter
    (fun (c : dcall) ->
      if c.dc_spawn && (not c.dc_handled) && in_reported_dir c.dc_rule then
        match resolve_fn ~file:c.dc_file c.dc_path with
        | Some g when Hashtbl.mem performers g.d_key ->
          report ?allow:c.dc_allow "D4" ~file:c.dc_file ~loc:c.dc_loc
            (Printf.sprintf
               "call to %s inside a Domain.spawn closure in %s reaches an \
                effect perform with no handler on the spawned domain; \
                wrap the computation in Simthread.spawn (or another \
                handler) before it performs"
               g.d_key c.dc_fn)
        | _ -> ())
    dcalls;
  {
    findings = List.sort_uniq Lint.compare_finding !findings;
    globals;
    mutable_types;
    suppressed = !suppressed;
    graph;
    allow_sites =
      List.filter
        (fun (s : Lint.allow_site) -> s.as_attr = "dom.allow")
        (Lint.allow_sites registry);
  }
