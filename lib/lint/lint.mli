(** Determinism & charge-discipline analyzer for the simulation sources.

    Parses implementation files with compiler-libs and enforces four rule
    families, each individually suppressible with [[\@lint.allow "R<n>"]]
    (expression), [[\@\@lint.allow "R<n>"]] (binding) or
    [[\@\@\@lint.allow "R<n>"]] (rest of file):

    - [R1] — no wall clock, no ambient randomness, no unordered hash-table
      traversal whose order can leak into simulated state.
    - [R2] — outside [lib/mem], memory traffic must be charged through
      [Env]; direct [Hierarchy.load]/[store]/[prefetch_batch] is forbidden.
    - [R3] — reads of registered shared-mutable fields (seqlock versions,
      ring cursors, forwarding completion fields) must be dominated by a
      commit-family call in the enclosing function.
    - [R4] — [Simthread] effects only from simulated-thread contexts; no
      [Obj.magic]; no physical equality. *)

type finding = {
  rule : string;  (** "R1" .. "R4" *)
  file : string;
  line : int;
  col : int;
  msg : string;
}

val pp_finding : Format.formatter -> finding -> unit
(** Renders ["file:line:col: [RULE] message"]. *)

val finding_to_string : finding -> string
val compare_finding : finding -> finding -> int

(** {1 Suppression sites}

    Every suppression attribute ([[\@lint.allow]], [[\@dom.allow]]) a pass
    walks registers one {!allow_site}, keyed by (attribute, file, line) so
    that passes sharing the same source (intra + interprocedural) share a
    single use counter.  A site whose [as_uses] stays [0] covered no
    finding: it is stale and should be deleted
    ([bin/lint_main --strict-suppressions] fails on it). *)

type allow_site = {
  as_attr : string;  (** attribute name, e.g. ["lint.allow"] *)
  as_file : string;
  as_line : int;
  as_payload : string;  (** raw payload text (rule list or reason) *)
  mutable as_uses : int;  (** findings this site suppressed *)
}

type allow_registry

val new_allow_registry : unit -> allow_registry

val register_allow :
  allow_registry ->
  attr:string ->
  file:string ->
  line:int ->
  payload:string ->
  allow_site
(** Idempotent on (attr, file, line): re-registration returns the existing
    site, so use counts accumulate across passes. *)

val allow_sites : allow_registry -> allow_site list
(** All registered sites, ordered by (file, line). *)

val stale_allow_sites : allow_registry -> allow_site list
(** Sites with zero uses. *)

val check_file :
  ?rule_path:string -> ?intra_r3:bool -> string -> (finding list, string) result
(** Lint one [.ml] file.  [rule_path] overrides the path used for
    directory-scoped exemptions (e.g. the [lib/mem] R2 exemption) — useful
    for fixture files standing in for sources elsewhere in the tree.
    [intra_r3] (default [true]) selects the lexical R3 rule; project-mode
    drivers pass [false] and run {!Interp.check_project}, whose
    interprocedural rule subsumes it.  [Error] is a parse/IO failure, not a
    finding. *)

val check_string :
  ?file:string ->
  ?rule_path:string ->
  ?intra_r3:bool ->
  string ->
  (finding list, string) result
(** Same, over source text (for tests). *)

val check_structure :
  ?file:string ->
  ?rule_path:string ->
  ?intra_r3:bool ->
  ?on_suppressed:(rule:string -> loc:Location.t -> unit) ->
  ?registry:allow_registry ->
  Parsetree.structure ->
  finding list
(** [on_suppressed] fires instead of a finding when an [[\@lint.allow]]
    covers it — suppression accounting for drivers (default: ignore).
    [registry] additionally tracks each suppression attribute as an
    {!allow_site} with per-site use counts for stale reporting. *)

val parse_implementation : string -> Parsetree.structure
(** Parse one implementation file (raises [Syntaxerr.Error] / [Sys_error]);
    lets drivers parse once and share the AST with {!Interp}. *)

(**/**)

(** Rule vocabulary shared with the interprocedural pass ({!Interp}). *)
module Internal : sig
  val matches : string -> string -> bool
  val matches_any : string list -> string -> bool
  val path_of_lid : Longident.t -> string
  val strip_stdlib : string -> string
  val commit_family : string list
  val shared_fields : (string * string) list
  val hierarchy_traffic : string list
  val allow_of_attrs : Parsetree.attributes -> Set.Make(String).t
  val allow_of_payload : Parsetree.payload -> Set.Make(String).t

  val allow_entries :
    ?registry:allow_registry ->
    file:string ->
    Parsetree.attributes ->
    (Set.Make(String).t * allow_site option) list

  val payload_string : Parsetree.payload -> string option
end

(**/**)
