module Env = Mutps_mem.Env
module Layout = Mutps_mem.Layout
module Item = Mutps_store.Item

let fanout = 14
let node_bytes = 256

(* Bytes of a node actually touched by a search: header plus roughly half
   the key area (binary search), i.e. two of four lines. *)
let probe_bytes = 128

type node = Leaf of leaf | Internal of internal

and leaf = {
  laddr : int;
  mutable lkeys : int64 array; (* sorted, length = lsize *)
  mutable litems : Item.t array;
  mutable lnext : leaf option;
}

and internal = {
  iaddr : int;
  (* children.(i) covers keys < ikeys.(i); children.(n) covers the rest *)
  mutable ikeys : int64 array;
  mutable ichildren : node array;
}

type t = {
  region : Layout.region;
  mutable root : node;
  mutable count : int;
  mutable depth : int;
}

let alloc_addr t = Layout.alloc t.region ~align:64 node_bytes

let node_addr = function Leaf l -> l.laddr | Internal n -> n.iaddr

let create layout ~seed:_ =
  let region = Layout.region layout ~name:"btree-nodes" ~size:(1 lsl 31) in
  let laddr = Layout.alloc region ~align:64 node_bytes in
  {
    region;
    root = Leaf { laddr; lkeys = [||]; litems = [||]; lnext = None };
    count = 0;
    depth = 1;
  }

let count t = t.count
let depth t = t.depth

(* index of first key >= k in a sorted array *)
let lower_bound keys k =
  let lo = ref 0 and hi = ref (Array.length keys) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Int64.compare keys.(mid) k < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let child_index (n : internal) k =
  (* first separator > k gives the child slot *)
  let lo = ref 0 and hi = ref (Array.length n.ikeys) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Int64.compare n.ikeys.(mid) k <= 0 then lo := mid + 1 else hi := mid
  done;
  !lo

(* --- array edit helpers --- *)

let array_insert a i x =
  let n = Array.length a in
  let b = Array.make (n + 1) x in
  Array.blit a 0 b 0 i;
  Array.blit a i b (i + 1) (n - i);
  b

let array_remove a i =
  let n = Array.length a in
  let b = Array.sub a 0 (n - 1) in
  Array.blit a (i + 1) b i (n - 1 - i);
  b

(* --- insert --- *)

type split = NoSplit | Split of int64 * node (* separator, new right node *)

let split_leaf t l =
  let n = Array.length l.lkeys in
  let mid = n / 2 in
  let right =
    {
      laddr = alloc_addr t;
      lkeys = Array.sub l.lkeys mid (n - mid);
      litems = Array.sub l.litems mid (n - mid);
      lnext = l.lnext;
    }
  in
  l.lkeys <- Array.sub l.lkeys 0 mid;
  l.litems <- Array.sub l.litems 0 mid;
  l.lnext <- Some right;
  Split (right.lkeys.(0), Leaf right)

let split_internal t n =
  let nk = Array.length n.ikeys in
  let mid = nk / 2 in
  let sep = n.ikeys.(mid) in
  let right =
    {
      iaddr = alloc_addr t;
      ikeys = Array.sub n.ikeys (mid + 1) (nk - mid - 1);
      ichildren = Array.sub n.ichildren (mid + 1) (nk - mid);
    }
  in
  n.ikeys <- Array.sub n.ikeys 0 mid;
  n.ichildren <- Array.sub n.ichildren 0 (mid + 1);
  Split (sep, Internal right)

let rec insert_rec t env node k item =
  (match env with
  | Some env -> Env.load env ~addr:(node_addr node) ~size:probe_bytes
  | None -> ());
  match node with
  | Leaf l ->
    let i = lower_bound l.lkeys k in
    if i < Array.length l.lkeys && Int64.equal l.lkeys.(i) k then begin
      (match env with
      | Some env -> Env.store env ~addr:(l.laddr + (i * 16)) ~size:16
      | None -> ());
      l.litems.(i) <- item;
      NoSplit
    end
    else begin
      l.lkeys <- array_insert l.lkeys i k;
      l.litems <- array_insert l.litems i item;
      t.count <- t.count + 1;
      (match env with
      | Some env -> Env.store env ~addr:l.laddr ~size:node_bytes
      | None -> ());
      if Array.length l.lkeys > fanout then split_leaf t l else NoSplit
    end
  | Internal n -> (
    let ci = child_index n k in
    match insert_rec t env n.ichildren.(ci) k item with
    | NoSplit -> NoSplit
    | Split (sep, right) ->
      n.ikeys <- array_insert n.ikeys ci sep;
      n.ichildren <- array_insert n.ichildren (ci + 1) right;
      (match env with
      | Some env -> Env.store env ~addr:n.iaddr ~size:node_bytes
      | None -> ());
      if Array.length n.ikeys > fanout then split_internal t n else NoSplit)

let root_split t result =
  match result with
  | NoSplit -> ()
  | Split (sep, right) ->
    let root =
      Internal
        { iaddr = alloc_addr t; ikeys = [| sep |]; ichildren = [| t.root; right |] }
    in
    t.root <- root;
    t.depth <- t.depth + 1

let insert t env k item = root_split t (insert_rec t (Some env) t.root k item)
let insert_silent t k item = root_split t (insert_rec t None t.root k item)

(* --- lookup --- *)

let lookup t env k =
  let rec go node =
    Env.load env ~addr:(node_addr node) ~size:probe_bytes;
    match node with
    | Leaf l ->
      let i = lower_bound l.lkeys k in
      if i < Array.length l.lkeys && Int64.equal l.lkeys.(i) k then
        Some l.litems.(i)
      else None
    | Internal n -> go n.ichildren.(child_index n k)
  in
  go t.root

(* Level-synchronous batched descent: at each level, prefetch the frontier
   of all pending lookups together so their miss latencies overlap.  The
   frontier lives in two flat arrays compacted in place per level
   (surviving lookups keep their relative order, matching the simulated
   access order of the old list-based frontier while allocating only the
   per-level prefetch argument instead of three lists per level). *)
let batch_lookup t env keys =
  let n = Array.length keys in
  let result = Array.make n None in
  let frontier = Array.make n t.root in
  let orig = Array.init n Fun.id in  (* original key index per slot *)
  let live = ref n in
  while !live > 0 do
    let m = !live in
    Env.prefetch_batch env (Array.init m (fun j -> node_addr frontier.(j)));
    let k = ref 0 in
    for j = 0 to m - 1 do
      let i = orig.(j) in
      Env.load env ~addr:(node_addr frontier.(j)) ~size:probe_bytes;
      match frontier.(j) with
      | Leaf l ->
        let x = lower_bound l.lkeys keys.(i) in
        if x < Array.length l.lkeys && Int64.equal l.lkeys.(x) keys.(i) then
          result.(i) <- Some l.litems.(x)
      | Internal nd ->
        frontier.(!k) <- nd.ichildren.(child_index nd keys.(i));
        orig.(!k) <- i;
        incr k
    done;
    live := !k
  done;
  result

(* --- remove --- *)

(* Removal clears the leaf entry without rebalancing: workloads in the paper
   never shrink the store, and under-full leaves only waste simulated
   address space. *)
let remove t env k =
  let rec go node =
    Env.load env ~addr:(node_addr node) ~size:probe_bytes;
    match node with
    | Leaf l ->
      let i = lower_bound l.lkeys k in
      if i < Array.length l.lkeys && Int64.equal l.lkeys.(i) k then begin
        Env.store env ~addr:l.laddr ~size:node_bytes;
        l.lkeys <- array_remove l.lkeys i;
        l.litems <- array_remove l.litems i;
        t.count <- t.count - 1;
        true
      end
      else false
    | Internal n -> go n.ichildren.(child_index n k)
  in
  go t.root

(* --- range --- *)

let range t env ~lo ~n =
  let rec descend node =
    Env.load env ~addr:(node_addr node) ~size:probe_bytes;
    match node with
    | Leaf l -> l
    | Internal nd -> descend nd.ichildren.(child_index nd lo)
  in
  let leaf = descend t.root in
  let acc = ref [] and taken = ref 0 in
  let rec walk l start =
    if !taken < n then begin
      if start > 0 || l.laddr <> leaf.laddr then
        Env.load env ~addr:l.laddr ~size:node_bytes;
      let i = ref start in
      while !taken < n && !i < Array.length l.lkeys do
        acc := (l.lkeys.(!i), l.litems.(!i)) :: !acc;
        incr taken;
        incr i
      done;
      if !taken < n then
        match l.lnext with None -> () | Some next -> walk next 0
    end
  in
  walk leaf (lower_bound leaf.lkeys lo);
  List.rev !acc

(* --- invariants --- *)

let check_invariants t =
  let fail fmt = Printf.ksprintf failwith fmt in
  let leaves = ref [] in
  let rec walk node ~lo ~hi ~depth =
    (match node with
    | Leaf l ->
      if depth <> t.depth then fail "leaf at depth %d, expected %d" depth t.depth;
      leaves := l :: !leaves;
      Array.iteri
        (fun i k ->
          (match lo with
          | Some lo when Int64.compare k lo < 0 -> fail "leaf key below bound"
          | _ -> ());
          (match hi with
          | Some hi when Int64.compare k hi >= 0 -> fail "leaf key above bound"
          | _ -> ());
          if i > 0 && Int64.compare l.lkeys.(i - 1) k >= 0 then
            fail "leaf keys not strictly sorted")
        l.lkeys;
      if Array.length l.lkeys <> Array.length l.litems then
        fail "leaf keys/items length mismatch"
    | Internal n ->
      let nk = Array.length n.ikeys in
      if Array.length n.ichildren <> nk + 1 then fail "child count mismatch";
      if nk = 0 then fail "empty internal node";
      if nk > fanout then fail "overfull internal node";
      for i = 1 to nk - 1 do
        if Int64.compare n.ikeys.(i - 1) n.ikeys.(i) >= 0 then
          fail "separators not sorted"
      done;
      Array.iteri
        (fun i child ->
          let lo' = if i = 0 then lo else Some n.ikeys.(i - 1) in
          let hi' = if i = nk then hi else Some n.ikeys.(i) in
          walk child ~lo:lo' ~hi:hi' ~depth:(depth + 1))
        n.ichildren);
    ()
  in
  walk t.root ~lo:None ~hi:None ~depth:1;
  (* leaf chain must visit exactly the leaves, left to right *)
  let in_tree = List.rev !leaves in
  let rec leftmost node =
    match node with Leaf l -> l | Internal n -> leftmost n.ichildren.(0)
  in
  let rec chain l acc =
    match l.lnext with None -> List.rev (l :: acc) | Some nx -> chain nx (l :: acc)
  in
  let chained = chain (leftmost t.root) [] in
  if List.length chained <> List.length in_tree then
    fail "leaf chain length %d <> tree leaves %d" (List.length chained)
      (List.length in_tree);
  List.iter2
    (fun a b -> if a.laddr <> b.laddr then fail "leaf chain out of order")
    chained in_tree;
  let total = List.fold_left (fun acc l -> acc + Array.length l.lkeys) 0 in_tree in
  if total <> t.count then fail "count %d <> leaf total %d" t.count total

let ops t =
  Index_intf.sanitized
  {
    Index_intf.name = "btree";
    kind = Index_intf.Tree;
    lookup = (fun env k -> lookup t env k);
    batch_lookup = (fun env ks -> batch_lookup t env ks);
    insert = (fun env k v -> insert t env k v);
    remove = (fun env k -> remove t env k);
    range = (fun env ~lo ~n -> range t env ~lo ~n);
    insert_silent = (fun k v -> insert_silent t k v);
    count = (fun () -> count t);
  }
