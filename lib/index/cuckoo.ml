module Env = Mutps_mem.Env
module Layout = Mutps_mem.Layout
module Item = Mutps_store.Item
module Rng = Mutps_sim.Rng

exception Full

let slots_per_bucket = 4
let bucket_bytes = Layout.line_bytes (* 4 × (8B key + 8B pointer) *)
let max_displacements = 500

type slot = { mutable key : int64; mutable item : Item.t option }

type bucket = { addr : int; slots : slot array }

type t = {
  buckets : bucket array;
  mask : int;
  salt : int64;
  rng : Rng.t;
  mutable count : int;
}

let create layout ~capacity ~seed =
  if capacity <= 0 then invalid_arg "Cuckoo.create";
  let want_buckets =
    int_of_float (ceil (float_of_int capacity /. float_of_int slots_per_bucket /. 0.85))
  in
  let n = 1 lsl Mutps_sim.Bits.log2_ceil want_buckets in
  let region =
    Layout.region layout ~name:"cuckoo-buckets" ~size:(n * bucket_bytes)
  in
  let mk_bucket _ =
    {
      addr = Layout.alloc region ~align:bucket_bytes bucket_bytes;
      slots =
        Array.init slots_per_bucket (fun _ -> { key = 0L; item = None });
    }
  in
  {
    buckets = Array.init n mk_bucket;
    mask = n - 1;
    salt = Rng.hash64 (Int64.of_int (seed lxor 0x5bd1e995));
    rng = Rng.create (seed + 17);
    count = 0;
  }

let buckets t = Array.length t.buckets
let count t = t.count

let h1 t key = Int64.to_int (Rng.hash64 key) land t.mask

let h2 t key =
  Int64.to_int (Rng.hash64 (Int64.logxor key t.salt)) land t.mask

let find_slot b key =
  let rec go i =
    if i = slots_per_bucket then None
    else
      let s = b.slots.(i) in
      if s.item <> None && Int64.equal s.key key then Some s else go (i + 1)
  in
  go 0

let empty_slot b =
  let rec go i =
    if i = slots_per_bucket then None
    else if b.slots.(i).item = None then Some b.slots.(i)
    else go (i + 1)
  in
  go 0

(* --- silent (setup) path: no simulation charges --- *)

let rec displace_silent t bucket_idx depth =
  if depth > max_displacements then raise Full;
  let b = t.buckets.(bucket_idx) in
  match empty_slot b with
  | Some s -> s
  | None ->
    (* displace a random victim to its alternate bucket *)
    let vi = Rng.int t.rng slots_per_bucket in
    let victim = b.slots.(vi) in
    let alt =
      let a1 = h1 t victim.key in
      if a1 = bucket_idx then h2 t victim.key else a1
    in
    let dst = displace_silent t alt (depth + 1) in
    dst.key <- victim.key;
    dst.item <- victim.item;
    victim.item <- None;
    victim

let insert_silent t key item =
  let b1 = t.buckets.(h1 t key) and b2 = t.buckets.(h2 t key) in
  match find_slot b1 key with
  | Some s -> s.item <- Some item
  | None -> (
    match find_slot b2 key with
    | Some s -> s.item <- Some item
    | None ->
      let s =
        match empty_slot b1 with
        | Some s -> s
        | None -> (
          match empty_slot b2 with
          | Some s -> s
          | None -> displace_silent t (h1 t key) 0)
      in
      s.key <- key;
      s.item <- Some item;
      t.count <- t.count + 1)

(* --- charged path --- *)

let lookup t env key =
  let b1 = t.buckets.(h1 t key) in
  Env.load env ~addr:b1.addr ~size:bucket_bytes;
  match find_slot b1 key with
  | Some s -> s.item
  | None ->
    let b2 = t.buckets.(h2 t key) in
    Env.load env ~addr:b2.addr ~size:bucket_bytes;
    (match find_slot b2 key with Some s -> s.item | None -> None)

let batch_lookup t env keys =
  let n = Array.length keys in
  (* stage 1: prefetch every primary bucket, then probe *)
  Env.prefetch_batch env (Array.map (fun k -> (t.buckets.(h1 t k)).addr) keys);
  let result = Array.make n None in
  let missing = ref [] in
  for i = 0 to n - 1 do
    let b1 = t.buckets.(h1 t keys.(i)) in
    Env.load env ~addr:b1.addr ~size:bucket_bytes;
    match find_slot b1 keys.(i) with
    | Some s -> result.(i) <- s.item
    | None -> missing := i :: !missing
  done;
  (* stage 2: alternate buckets only for the misses *)
  let missing = Array.of_list (List.rev !missing) in
  if Array.length missing > 0 then begin
    Env.prefetch_batch env
      (Array.map (fun i -> (t.buckets.(h2 t keys.(i))).addr) missing);
    Array.iter
      (fun i ->
        let b2 = t.buckets.(h2 t keys.(i)) in
        Env.load env ~addr:b2.addr ~size:bucket_bytes;
        match find_slot b2 keys.(i) with
        | Some s -> result.(i) <- s.item
        | None -> ())
      missing
  end;
  result

let rec displace t env bucket_idx depth =
  if depth > max_displacements then raise Full;
  let b = t.buckets.(bucket_idx) in
  Env.load env ~addr:b.addr ~size:bucket_bytes;
  match empty_slot b with
  | Some s -> s
  | None ->
    let vi = Rng.int t.rng slots_per_bucket in
    let victim = b.slots.(vi) in
    let alt =
      let a1 = h1 t victim.key in
      if a1 = bucket_idx then h2 t victim.key else a1
    in
    let dst = displace t env alt (depth + 1) in
    Env.store env ~addr:b.addr ~size:16;
    dst.key <- victim.key;
    dst.item <- victim.item;
    victim.item <- None;
    victim

let insert t env key item =
  let i1 = h1 t key and i2 = h2 t key in
  let b1 = t.buckets.(i1) and b2 = t.buckets.(i2) in
  Env.load env ~addr:b1.addr ~size:bucket_bytes;
  match find_slot b1 key with
  | Some s ->
    Env.store env ~addr:b1.addr ~size:16;
    s.item <- Some item
  | None -> (
    Env.load env ~addr:b2.addr ~size:bucket_bytes;
    match find_slot b2 key with
    | Some s ->
      Env.store env ~addr:b2.addr ~size:16;
      s.item <- Some item
    | None ->
      let s, baddr =
        match empty_slot b1 with
        | Some s -> (s, b1.addr)
        | None -> (
          match empty_slot b2 with
          | Some s -> (s, b2.addr)
          | None -> (displace t env i1 0, b1.addr))
      in
      Env.store env ~addr:baddr ~size:16;
      s.key <- key;
      s.item <- Some item;
      t.count <- t.count + 1)

let remove t env key =
  let b1 = t.buckets.(h1 t key) in
  Env.load env ~addr:b1.addr ~size:bucket_bytes;
  match find_slot b1 key with
  | Some s ->
    Env.store env ~addr:b1.addr ~size:16;
    s.item <- None;
    t.count <- t.count - 1;
    true
  | None -> (
    let b2 = t.buckets.(h2 t key) in
    Env.load env ~addr:b2.addr ~size:bucket_bytes;
    match find_slot b2 key with
    | Some s ->
      Env.store env ~addr:b2.addr ~size:16;
      s.item <- None;
      t.count <- t.count - 1;
      true
    | None -> false)

let ops t =
  Index_intf.sanitized
  {
    Index_intf.name = "cuckoo";
    kind = Index_intf.Hash;
    lookup = (fun env k -> lookup t env k);
    batch_lookup = (fun env ks -> batch_lookup t env ks);
    insert = (fun env k v -> insert t env k v);
    remove = (fun env k -> remove t env k);
    range =
      (fun _ ~lo:_ ~n:_ ->
        invalid_arg "Cuckoo: range queries require a tree index");
    insert_silent = (fun k v -> insert_silent t k v);
    count = (fun () -> count t);
  }
