(** Common interface over the two index structures (§4: μTPS-H uses a
    cuckoo hash, μTPS-T a B+tree).

    Operations take an {!Mutps_mem.Env.t} and charge the simulated memory
    traffic of the traversal; [*_silent] variants mutate without charges and
    are meant for pre-population.  Values are {!Mutps_store.Item.t} handles —
    the index locates items, the store reads/writes them. *)

module Env = Mutps_mem.Env
module Item = Mutps_store.Item

type kind = Hash | Tree

type t = {
  name : string;
  kind : kind;
  lookup : Env.t -> int64 -> Item.t option;
  batch_lookup : Env.t -> int64 array -> Item.t option array;
      (** Batched, prefetch-overlapped lookups (§3.3 batched indexing). *)
  insert : Env.t -> int64 -> Item.t -> unit;
      (** Insert or replace the handle for a key. *)
  remove : Env.t -> int64 -> bool;
  range : Env.t -> lo:int64 -> n:int -> (int64 * Item.t) list;
      (** First [n] entries with key ≥ [lo] in key order.  Raises
          [Invalid_argument] on hash indexes. *)
  insert_silent : int64 -> Item.t -> unit;
  count : unit -> int;
}

(* Sanitizer model: both index structures stand in for internally
   synchronized concurrent structures (the paper's per-partition hash /
   latched B+tree), so the race detector treats each instance as one sync
   object: every charged operation acquires at entry and releases at exit.
   Raw [Env] accesses to index memory outside these wrappers — or
   operations racing with structures that bypass them — still surface.
   [insert_silent] and [count] make no charged accesses and stay bare. *)
let sanitized ops =
  let obj = ref (-1) in
  let guard env site f =
    Env.tagged env site @@ fun () ->
    if !obj < 0 && Env.sanitizing env then
      obj := Env.sync_obj env ("index@" ^ ops.name);
    Env.acquire env !obj;
    let v = f () in
    Env.release env !obj;
    v
  in
  {
    ops with
    lookup =
      (fun env k -> guard env (ops.name ^ ".lookup") (fun () -> ops.lookup env k));
    batch_lookup =
      (fun env ks ->
        guard env (ops.name ^ ".batch_lookup") (fun () -> ops.batch_lookup env ks));
    insert =
      (fun env k v ->
        guard env (ops.name ^ ".insert") (fun () -> ops.insert env k v));
    remove =
      (fun env k -> guard env (ops.name ^ ".remove") (fun () -> ops.remove env k));
    range =
      (fun env ~lo ~n ->
        guard env (ops.name ^ ".range") (fun () -> ops.range env ~lo ~n));
  }
