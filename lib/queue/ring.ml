module Env = Mutps_mem.Env
module Layout = Mutps_mem.Layout

(* Intel DLB enqueue/dequeue latency, ~25 ns of device round trip
   amortised over batched ops *)
let hw_op_cycles = 40

type 'a t = {
  hw_offload : bool;
  cap : int;
  mask : int;
  batch : int;
  value_bytes : int;
  head_addr : int;
  tail_addr : int;
  slots_addr : int;
  slot_bytes : int;
  buf : 'a array option array;
  mutable head : int; (* next slot to push *)
  mutable tail : int; (* completion pointer *)
  mutable read : int; (* consumer cursor: tail <= read <= head *)
  mutable reclaimed : int; (* producer cursor over completed batches *)
  mutable san_obj : int; (* sanitizer sync object; -1 until first use *)
}

let create ?(hw_offload = false) layout ~name ~slots ~batch ~value_bytes =
  if slots <= 0 || batch <= 0 || value_bytes <= 0 then invalid_arg "Ring.create";
  let cap = 1 lsl Mutps_sim.Bits.log2_ceil slots in
  let slot_bytes = batch * value_bytes in
  let region =
    Layout.region layout ~name
      ~size:((2 * Layout.line_bytes) + (cap * slot_bytes))
  in
  let head_addr = Layout.alloc region ~align:64 8 in
  let tail_addr = Layout.alloc region ~align:64 8 in
  let slots_addr = Layout.alloc region ~align:64 (cap * slot_bytes) in
  {
    hw_offload;
    cap;
    mask = cap - 1;
    batch;
    value_bytes;
    head_addr;
    tail_addr;
    slots_addr;
    slot_bytes;
    buf = Array.make cap None;
    head = 0;
    tail = 0;
    read = 0;
    reclaimed = 0;
    san_obj = -1;
  }

let slots t = t.cap
let batch t = t.batch

let slot_addr t i = t.slots_addr + ((i land t.mask) * t.slot_bytes)

(* Sanitizer model: the ring is a sync object — every operation acquires
   at entry and releases at exit, mirroring the acquire/release semantics
   of its cursor protocol, so slot payloads handed from producer to
   consumer (and reclaimed back) are happens-before ordered.  The cursor
   words themselves are sync ranges, exempt from race pairing. *)
let san_init env t =
  if t.san_obj < 0 && Env.sanitizing env then begin
    t.san_obj <- Env.sync_obj env ("ring@" ^ string_of_int t.head_addr);
    Env.sync_range env ~lo:t.head_addr ~hi:(t.head_addr + 8) ~on:true;
    Env.sync_range env ~lo:t.tail_addr ~hi:(t.tail_addr + 8) ~on:true
  end

let push t env values =
  Env.tagged env "Ring.push" @@ fun () ->
  let n = Array.length values in
  if n = 0 || n > t.batch then invalid_arg "Ring.push: bad batch size";
  Env.commit env;
  Env.assert_committed env "Ring.push";
  san_init env t;
  Env.acquire env t.san_obj;
  let pushed =
    if t.hw_offload then begin
      (* DLB-style: the device owns the queue state; one fixed-cost enqueue *)
      Env.compute env hw_op_cycles;
      if t.head - t.reclaimed >= t.cap then false
      else begin
        t.buf.(t.head land t.mask) <- Some (Array.copy values);
        t.head <- t.head + 1;
        true
      end
    end
    else begin
      (* Check occupancy against the producer's reclaim cursor: a slot stays
         busy until its completion has been taken, since the batch it holds
         is what take_completed hands back. *)
      Env.load env ~addr:t.tail_addr ~size:8;
      if t.head - t.reclaimed >= t.cap then false
      else begin
        Env.store env ~addr:(slot_addr t t.head) ~size:(n * t.value_bytes);
        Env.store env ~addr:t.head_addr ~size:8;
        t.buf.(t.head land t.mask) <- Some (Array.copy values);
        t.head <- t.head + 1;
        true
      end
    end
  in
  Env.release env t.san_obj;
  pushed

let peek t env =
  Env.tagged env "Ring.peek" @@ fun () ->
  Env.commit env;
  Env.assert_committed env "Ring.peek";
  san_init env t;
  Env.acquire env t.san_obj;
  let batch =
    if t.hw_offload then begin
      Env.compute env hw_op_cycles;
      if t.read >= t.head then None
      else begin
        let i = t.read in
        let values =
          match t.buf.(i land t.mask) with Some v -> v | None -> assert false
        in
        t.read <- t.read + 1;
        Some values
      end
    end
    else begin
      Env.load env ~addr:t.head_addr ~size:8;
      if t.read >= t.head then None
      else begin
        let i = t.read in
        let values =
          match t.buf.(i land t.mask) with
          | Some v -> v
          | None -> assert false
        in
        Env.load env ~addr:(slot_addr t i)
          ~size:(Array.length values * t.value_bytes);
        t.read <- t.read + 1;
        Some values
      end
    end
  in
  Env.release env t.san_obj;
  batch

(* the consumer is the only tail writer and [peek] committed before the
   batch was taken, so this tail read needs no fresh commit: every caller
   is commit-dominated, which the interprocedural R3 pass proves *)
let complete t env =
  Env.tagged env "Ring.complete" @@ fun () ->
  if t.tail >= t.read then
    invalid_arg "Ring.complete: nothing peeked to complete";
  san_init env t;
  Env.acquire env t.san_obj;
  if t.hw_offload then Env.compute env hw_op_cycles
  else Env.store env ~addr:t.tail_addr ~size:8;
  t.tail <- t.tail + 1;
  Env.release env t.san_obj

let take_completed t env =
  Env.tagged env "Ring.take_completed" @@ fun () ->
  Env.commit env;
  Env.assert_committed env "Ring.take_completed";
  san_init env t;
  Env.acquire env t.san_obj;
  if t.hw_offload then Env.compute env (hw_op_cycles / 4)
  else Env.load env ~addr:t.tail_addr ~size:8;
  let batch =
    if t.reclaimed >= t.tail then None
    else begin
      let i = t.reclaimed in
      let values =
        match t.buf.(i land t.mask) with Some v -> v | None -> assert false
      in
      t.buf.(i land t.mask) <- None;
      t.reclaimed <- t.reclaimed + 1;
      Some values
    end
  in
  Env.release env t.san_obj;
  batch

(* uncharged introspection for stats, drain checks and tests *)
let is_empty t = t.head = t.tail [@@lint.allow "R3"]
let in_flight t = t.head - t.tail [@@lint.allow "R3"]
let unreclaimed t = t.head - t.reclaimed [@@lint.allow "R3"]
