type 'a t = {
  rings : 'a Ring.t array array; (* [cr].[mr] *)
  max_cr : int;
  max_mr : int;
  push_cursor : int array; (* per CR: next MR target *)
  scan_cursor : int array; (* per MR: next CR ring to scan *)
  reap_cursor : int array; (* per CR: next ring to check for completions *)
}

let create ?(hw_offload = false) layout ~max_cr ~max_mr ~slots ~batch ~value_bytes =
  if max_cr <= 0 || max_mr <= 0 then invalid_arg "Crmr.create";
  let mk_ring cr mr =
    Ring.create ~hw_offload layout
      ~name:(Printf.sprintf "crmr-%d-%d" cr mr)
      ~slots ~batch ~value_bytes
  in
  {
    rings = Array.init max_cr (fun cr -> Array.init max_mr (mk_ring cr));
    max_cr;
    max_mr;
    push_cursor = Array.make max_cr 0;
    scan_cursor = Array.make max_mr 0;
    reap_cursor = Array.make max_cr 0;
  }

let max_cr t = t.max_cr
let max_mr t = t.max_mr

let push t env ~cr ~targets values =
  let n = Array.length targets in
  if n = 0 then invalid_arg "Crmr.push: no targets";
  let rec try_from attempt =
    if attempt = n then false
    else begin
      let mr = targets.(t.push_cursor.(cr) mod n) in
      t.push_cursor.(cr) <- (t.push_cursor.(cr) + 1) mod n;
      if Ring.push t.rings.(cr).(mr) env values then true
      else try_from (attempt + 1)
    end
  in
  try_from 0

let next_batch t env ~mr ~sources =
  let n = Array.length sources in
  if n = 0 then invalid_arg "Crmr.next_batch: no sources";
  let rec scan attempt =
    if attempt = n then None
    else begin
      let cr = sources.(t.scan_cursor.(mr) mod n) in
      t.scan_cursor.(mr) <- (t.scan_cursor.(mr) + 1) mod n;
      match Ring.peek t.rings.(cr).(mr) env with
      | Some values -> Some (cr, values)
      | None -> scan (attempt + 1)
    end
  in
  scan 0

let complete t env ~cr ~mr = Ring.complete t.rings.(cr).(mr) env

let take_completed t env ~cr =
  (* Only probe rings this producer has outstanding batches on — which it
     knows from its own push/reap counters, with no shared-memory touch. *)
  let rec scan attempt =
    if attempt = t.max_mr then None
    else begin
      let mr = t.reap_cursor.(cr) in
      t.reap_cursor.(cr) <- (t.reap_cursor.(cr) + 1) mod t.max_mr;
      let ring = t.rings.(cr).(mr) in
      if Ring.unreclaimed ring = 0 then scan (attempt + 1)
      else
        match Ring.take_completed ring env with
        | Some values -> Some values
        | None -> scan (attempt + 1)
    end
  in
  scan 0

let cr_drained t ~cr =
  Array.for_all Ring.is_empty t.rings.(cr)

let mr_drained t ~mr =
  let ok = ref true in
  for cr = 0 to t.max_cr - 1 do
    if not (Ring.is_empty t.rings.(cr).(mr)) then ok := false
  done;
  !ok

let in_flight t =
  Array.fold_left
    (fun acc row -> Array.fold_left (fun a r -> a + Ring.in_flight r) acc row)
    0 t.rings
