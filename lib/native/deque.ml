(* Lock-free bounded SPMC run queue (ebsl-style work-stealing deque).

   One owner pushes at the back; any domain (the owner included) takes
   from the front, so thieves steal the oldest work — FIFO per queue,
   which keeps single-worker scheduling deterministic and bounds fiber
   latency under load.

   Layout: a power-of-two ring of [Atomic] cells indexed by monotonically
   increasing [front]/[back] counters (no ABA: counters never wrap in
   practice, and equality is only ever tested on counters, not cells).

   Invariants that make the minimal protocol safe:
   - The owner writes a cell before publishing it by advancing [back]
     (both are SC atomics), so [front < back] implies the cell is filled.
   - The owner only reuses a cell one lap later, after [front] has passed
     it (the not-full check), so a consumer that reads a cell and then
     wins the [front] CAS is guaranteed the value it read was that
     slot's: an overwrite would require [front] to have already passed,
     which would have failed the CAS.
   - After winning, the consumer clears the cell with a CAS (not a plain
     store): if the owner has already lapped onto the cell, the clear
     harmlessly fails instead of destroying the new value. *)

type 'a t = {
  cells : 'a option Atomic.t array;
  mask : int;
  front : int Atomic.t;  (* next slot to consume *)
  back : int Atomic.t;  (* next slot to fill (owner-only writes) *)
}

let create ?(capacity = 8192) () =
  let cap =
    let rec pow2 n = if n >= capacity then n else pow2 (n * 2) in
    pow2 8
  in
  {
    cells = Array.init cap (fun _ -> Atomic.make None);
    mask = cap - 1;
    front = Atomic.make 0;
    back = Atomic.make 0;
  }

let capacity t = t.mask + 1

let length t =
  let b = Atomic.get t.back and f = Atomic.get t.front in
  max 0 (b - f)

let is_empty t = length t = 0

(* Owner only.  Returns [false] when the ring is full (caller overflows
   to a locked injector rather than dropping work). *)
let push t v =
  let b = Atomic.get t.back in
  let f = Atomic.get t.front in
  if b - f > t.mask then false
  else begin
    Atomic.set t.cells.(b land t.mask) (Some v);
    Atomic.set t.back (b + 1);
    true
  end

(* Any domain: take the oldest element, or [None] when empty. *)
let take t =
  let rec loop () =
    let f = Atomic.get t.front in
    let b = Atomic.get t.back in
    if b - f <= 0 then None
    else begin
      let cell = t.cells.(f land t.mask) in
      let v = Atomic.get cell in
      if Atomic.compare_and_set t.front f (f + 1) then begin
        (match v with
        | Some _ -> ()
        | None ->
          (* unreachable: the owner publishes the cell before [back], and
             no consumer cleared it before our front CAS won *)
          assert false);
        ignore (Atomic.compare_and_set cell v None);
        v
      end
      else loop ()
    end
  in
  loop ()
