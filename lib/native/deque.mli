(** Lock-free bounded SPMC run queue (ebsl-style work-stealing deque).

    One owner {!push}es at the back; any domain {!take}s from the front,
    so thieves steal the oldest work.  FIFO per queue: single-worker
    scheduling stays deterministic, and under stealing every element is
    taken exactly once (the QCheck law in [test/native]). *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** [capacity] rounds up to a power of two (≥ 8, default 8192). *)

val capacity : 'a t -> int

val push : 'a t -> 'a -> bool
(** Owner only.  [false] when full — the caller must overflow elsewhere
    (the scheduler falls back to its locked injector) rather than drop. *)

val take : 'a t -> 'a option
(** Any domain: dequeue the oldest element ([None] when empty). *)

val length : 'a t -> int
(** Racy snapshot (monitoring only). *)

val is_empty : 'a t -> bool
