(** The native runtime's single wall-clock seam: the only place under
    [lib/native] allowed to read the hardware clock (file-level
    [\[@@@lint.allow "R1"\]] — the simulator's determinism rule does not
    apply to the hardware twin, but concentrating the reads keeps the
    nondeterministic surface reviewable). *)

val now_ns : unit -> int
(** Wall time in integer nanoseconds (latency timestamps). *)

val now_s : unit -> float
(** Wall time in seconds (durations, rate denominators). *)

val elapsed_ns : since:int -> int
val ns_to_us : int -> float
