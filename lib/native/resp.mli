(** Minimal RESP-like wire protocol for the native server.

    Requests are RESP arrays of bulk strings ([GET k] / [SET k v] /
    [DEL k] / [PING]); keys are decimal int64 strings.  Replies: bulk
    value or [$-1] for GET, [+OK] for SET/DEL, [+PONG], [-ERR reason].
    Parsers are incremental: feed a growing buffer, get [`Need_more]
    until a full frame is present, then the frame and its byte length. *)

type command =
  | Get of int64
  | Set of int64 * bytes
  | Del of int64
  | Ping

type reply =
  | Value of bytes
  | Nil
  | Ok_simple of string
  | Error of string

val encode_command : Buffer.t -> command -> unit
val encode_reply : Buffer.t -> reply -> unit
val reply_to_string : reply -> string

val reply_for_op : Mutps_queue.Request.kind -> bytes option -> reply
(** The KVS answer for an operation outcome — shared with the
    sim-vs-native equivalence test so both backends' byte streams are
    synthesized by the same function. *)

type 'a parse = [ `Ok of 'a * int | `Need_more | `Bad of string ]
(** [`Ok (frame, consumed)]: shift the buffer by [consumed]. *)

val parse_command : bytes -> len:int -> command parse
val parse_reply : bytes -> len:int -> reply parse
