(** Work-stealing fiber scheduler: one worker per OCaml 5 domain, a
    lock-free SPMC {!Deque} per worker, and a locked injector for work
    arriving from outside the pool (or overflowing a full queue).

    Workers dispatch from the injector first, then their own queue
    (FIFO), then steal the oldest fiber from a pseudo-random victim
    (deterministic per-worker {!Mutps_sim.Rng} streams); when idle they
    busy-poll with
    [Domain.cpu_relax], mirroring the paper's polling servers.  The pool
    runs until every spawned fiber has completed or {!force_stop}. *)

type t

val create : workers:int -> unit -> t
(** A pool of [workers] domains (not yet running — see {!run}). *)

val spawn : t -> (unit -> unit) -> unit
(** Register a new fiber.  Callable before {!run} and from any domain or
    fiber while the pool runs.  A fiber raising {!Fiber.Stop} completes
    normally; any other exception is re-raised by {!run}. *)

val schedule : t -> (unit -> unit) -> unit
(** Low-level: enqueue a ready thunk (used by {!Fiber.run} resumes). *)

val run : t -> unit
(** Spawn the worker domains and block until all fibers complete (or
    {!force_stop}).  Re-raises the first fiber error, if any. *)

val force_stop : t -> unit
(** Make workers exit at their next dispatch point; parked fibers are
    abandoned.  Prefer waking fibers so they raise {!Fiber.Stop}. *)

val live : t -> int
(** Fibers spawned but not yet completed. *)

val steals : t -> int
(** Successful cross-worker steals so far (monitoring). *)
