(* Effect-based fibers: the native mirror of Simthread's cooperative API.

   A fiber is an ordinary function run under a deep [match_with] handler.
   [yield] reschedules the continuation through the scheduler's [schedule]
   callback; [park] hands a once-only [resume] closure to the caller's
   registration function, exactly like [Simthread.suspend].  Because the
   handler is deep, the continuation carries it along — a stolen fiber
   resumed on another domain keeps yielding/parking through the same
   handler, which is what lets the work-stealing scheduler move fibers
   freely between domains (one-shot continuations are single-resume, so a
   fiber is never running on two domains at once). *)

open Effect
open Effect.Deep

type _ Effect.t +=
  | Yield : unit Effect.t
  | Park : ((unit -> unit) -> unit) -> unit Effect.t

exception Stop
(* Cooperative-shutdown signal: long-running fiber loops raise it from
   their idle path when the server stops; [run] treats it as a normal
   exit. *)

let yield () = perform Yield
let park register = perform (Park register)

let run ~schedule ~on_done body =
  match_with
    (fun () ->
      match body () with
      | () -> on_done None
      | exception Stop -> on_done None
      | exception e -> on_done (Some e))
    ()
    {
      retc = (fun () -> ());
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Yield ->
            Some
              (fun (k : (a, unit) continuation) ->
                schedule (fun () -> continue k ()))
          | Park register ->
            Some
              (fun (k : (a, unit) continuation) ->
                let resumed = Atomic.make false in
                let resume () =
                  if Atomic.exchange resumed true then
                    invalid_arg "Fiber: resume invoked twice"
                  else schedule (fun () -> continue k ())
                in
                register resume)
          | _ -> None);
    }
