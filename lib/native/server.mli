(** Native socket server: the real-machine twin of the simulated KVS.

    A TCP or Unix-domain listener speaking {!Resp} feeds share-nothing
    backend shards (key mod shards).  Each shard runs the very same
    per-operation code as the simulator — {!Mutps_kvs.Rtc.worker_body}
    for the run-to-completion systems ([Rtc_pool]), or a CR/MR fiber
    pair mirroring {!Mutps_kvs.Mutps}'s staged split ([Split]) — as
    {!Fiber}s on the {!Sched} work-stealing pool, over free-running
    memory environments ({!Mutps_mem.Env.make_freerun}) so no simulated
    charge or DES effect is ever produced.

    Per-connection replies are released in request order regardless of
    which shard fiber completes them. *)

type mode =
  | Rtc_pool of Mutps_kvs.Exec.lock_mode
      (** run-to-completion: [Locked] = BaseKV, [Exclusive] = eRPC-KV *)
  | Split  (** CR/MR staged split with a write-through CR hot cache *)

type listen = Unix_path of string | Tcp of string * int  (** host, port *)

type config = {
  mode : mode;
  listen : listen;
  domains : int;  (** scheduler worker domains *)
  shards : int;  (** share-nothing backend shards (key mod shards) *)
  keyspace : int;  (** keys preloaded before serving (0 = start empty) *)
  value_size : int;  (** preloaded value bytes *)
  hot_cap : int;  (** CR hot-cache capacity per shard ([Split] mode) *)
  duration_s : float option;
      (** stop after this long; [None] = run until {!stop} *)
  log : string -> unit;
      (** lifecycle lines; called only from the domain invoking
          {!run}/{!launch} so a DLS-bound output sink sees them *)
}

val default_config : config
(** [Split], [unix:/tmp/mutps.sock], 2 domains, 1 shard, empty store. *)

type summary = {
  responded : int;  (** replies posted by the KVS layers *)
  cr_hits : int;  (** answered at the CR layer ([Split] mode) *)
  forwarded : int;  (** forwarded CR→MR ([Split] mode) *)
  mr_ops : int;
  steals : int;  (** scheduler cross-worker steals *)
  conns : int;  (** connections accepted *)
}

val run : config -> summary
(** Bind, serve until the duration elapses (or forever), return the
    tallies.  Blocks the calling domain. *)

type handle

val launch : config -> handle
(** Bind the listener synchronously (connects succeed as soon as this
    returns), then serve on a fresh domain. *)

val stop : handle -> unit
(** Ask the server to wind down; fibers exit at their next dispatch. *)

val wait : handle -> summary
(** Join the serving domain. *)

val listen_to_string : listen -> string
