(* The native runtime's single wall-clock seam.

   The R1 lint bans wall-clock reads across the closed world because the
   simulator's results must be bit-reproducible.  The native twin is
   measured by the hardware clock by definition, so every wall-time read
   it makes is concentrated here, behind one audited file-level
   suppression — nothing else under lib/native touches the clock, which
   keeps "what is nondeterministic" reviewable at a glance. *)
[@@@lint.allow "R1"]

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)
let now_s () = Unix.gettimeofday ()
let elapsed_ns ~since = now_ns () - since
let ns_to_us ns = float_of_int ns /. 1e3
