(** Effect-based fibers: the native mirror of {!Mutps_sim.Simthread}'s
    cooperative API (spawn/yield/park), scheduled by {!Sched} instead of
    the DES engine.  Deep handlers travel with the captured continuation,
    so a fiber stolen to another domain keeps yielding through the same
    handler. *)

exception Stop
(** Cooperative-shutdown signal: fiber loops raise it from their idle path
    when the server stops; {!run} treats it as a normal exit. *)

val yield : unit -> unit
(** Reschedule the calling fiber at the back of its worker's run queue.
    Must be called from inside {!run}. *)

val park : ((unit -> unit) -> unit) -> unit
(** [park register] suspends the calling fiber; [register] receives a
    [resume] closure that must be invoked exactly once — from any domain —
    to reschedule it (the native [Simthread.suspend]). *)

val run :
  schedule:((unit -> unit) -> unit) ->
  on_done:(exn option -> unit) -> (unit -> unit) -> unit
(** [run ~schedule ~on_done body] starts [body] as a fiber under the
    effect handler.  [schedule] is called with a ready thunk whenever the
    fiber can continue; [on_done] fires exactly once when the body
    returns ([None]), raises {!Stop} ([None]) or raises otherwise
    ([Some exn]).  Returns as soon as the fiber first suspends. *)
