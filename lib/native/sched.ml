(* Work-stealing fiber scheduler: one worker per OCaml 5 domain, one
   lock-free SPMC run queue per worker, a mutex-guarded injector for
   spawns/resumes arriving from outside the pool (the control domain, or
   overflow when a local queue is full).

   Scheduling discipline (ebsl-style):
   - a worker checks the injector, then consumes its own queue FIFO (a
     yielding fiber goes to the back, so local work round-robins and can
     never starve external submissions — even on one worker);
   - when both are empty it steals the oldest fiber from a
     pseudo-randomly chosen victim (deterministic per-worker xoshiro
     streams from the simulator's Rng — no [Random], rule R1);
   - when everything is empty it spins with [Domain.cpu_relax]: this is a
     polling runtime by design, matching the paper's busy-poll servers.

   Workers run until every spawned fiber has completed ([live] reaches 0)
   or [stop] is forced.  Fibers may park; whoever resumes them re-enters
   them through [schedule], from any domain — the deep handler travels
   with the continuation (see Fiber). *)

(* Distinguishes schedulers when several live in one process (a server
   and a test harness, say): a domain's DLS slot names the scheduler it
   works for, so a resume arriving from a foreign domain routes to the
   injector instead of a foreign run queue. *)
let ids = Atomic.make 0

type slot = { owner : int; index : int }

let slot_key : slot option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

type t = {
  id : int;
  nworkers : int;
  queues : (unit -> unit) Deque.t array;
  inj_lock : Mutex.t;
  injector : (unit -> unit) Queue.t;
  live : int Atomic.t;  (* spawned fibers not yet completed *)
  stop : bool Atomic.t;
  steals : int Atomic.t;
  err_lock : Mutex.t;
  errors : exn Queue.t;
}

let create ~workers () =
  if workers < 1 then invalid_arg "Sched.create: workers < 1";
  {
    id = Atomic.fetch_and_add ids 1;
    nworkers = workers;
    queues = Array.init workers (fun _ -> Deque.create ());
    inj_lock = Mutex.create ();
    injector = Queue.create ();
    live = Atomic.make 0;
    stop = Atomic.make false;
    steals = Atomic.make 0;
    err_lock = Mutex.create ();
    errors = Queue.create ();
  }

let inject t task =
  Mutex.lock t.inj_lock;
  Queue.push task t.injector;
  Mutex.unlock t.inj_lock

(* Route a ready thunk: onto the calling worker's own queue when the
   caller belongs to this scheduler, else through the injector. *)
let schedule t task =
  match Domain.DLS.get slot_key with
  | Some s when s.owner = t.id ->
    if not (Deque.push t.queues.(s.index) task) then inject t task
  | Some _ | None -> inject t task

let spawn t body =
  Atomic.incr t.live;
  let task () =
    Fiber.run
      ~schedule:(fun thunk -> schedule t thunk)
      ~on_done:(fun err ->
        (match err with
        | None -> ()
        | Some e ->
          Mutex.lock t.err_lock;
          Queue.push e t.errors;
          Mutex.unlock t.err_lock);
        Atomic.decr t.live)
      body
  in
  schedule t task

let live t = Atomic.get t.live
let steals t = Atomic.get t.steals
let force_stop t = Atomic.set t.stop true

let next_task t ~index rng =
  (* injector first: external submissions are rare, and checking them on
     every dispatch keeps a single worker fair — a fiber that yields back
     onto the local queue can never starve work arriving from outside *)
  let from_injector =
    if Mutex.try_lock t.inj_lock then begin
      let v = Queue.take_opt t.injector in
      Mutex.unlock t.inj_lock;
      v
    end
    else None
  in
  match from_injector with
  | Some _ as some -> some
  | None -> (
    match Deque.take t.queues.(index) with
    | Some _ as some -> some
    | None ->
      if t.nworkers = 1 then None
      else begin
        (* one random probe plus a sweep, so a loaded victim is found
           quickly without hammering one queue *)
        let start = Mutps_sim.Rng.int rng (t.nworkers - 1) in
        let stolen = ref None in
        let k = ref 0 in
        while !stolen = None && !k < t.nworkers - 1 do
          let victim = (index + 1 + ((start + !k) mod (t.nworkers - 1)))
                       mod t.nworkers in
          (match Deque.take t.queues.(victim) with
          | Some _ as some ->
            Atomic.incr t.steals;
            stolen := some
          | None -> ());
          incr k
        done;
        !stolen
      end)

let worker_loop t ~index =
  Domain.DLS.set slot_key (Some { owner = t.id; index });
  let rng = Mutps_sim.Rng.create (0x5EED + index) in
  let continue = ref true in
  while !continue do
    if Atomic.get t.live <= 0 || Atomic.get t.stop then continue := false
    else begin
      match next_task t ~index rng with
      | Some task -> task ()
      | None -> Domain.cpu_relax ()
    end
  done

(* Run the pool to completion: returns once every fiber spawned (before
   or during the run) has finished, or [force_stop] was called.  Raises
   the first fiber error, if any. *)
let run t =
  let domains =
    Array.init t.nworkers (fun index ->
        Domain.spawn (fun () -> worker_loop t ~index))
  in
  Array.iter Domain.join domains;
  Mutex.lock t.err_lock;
  let err = Queue.take_opt t.errors in
  Mutex.unlock t.err_lock;
  match err with None -> () | Some e -> raise e
