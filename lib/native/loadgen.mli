(** Closed-loop load generator for the native server.

    Each connection keeps exactly one request outstanding, drawing
    operations from its own deterministic {!Mutps_workload.Opgen} stream;
    connections are multiplexed over [Unix.select] from the calling
    thread.  Put payloads come from {!Mutps_net.Client.payload}, the same
    deterministic bytes the simulated clients write. *)

type config = {
  connect : Server.listen;
  conns : int;
  ops : int;  (** total operations across every connection *)
  spec : Mutps_workload.Opgen.spec;
  seed : int;
}

type result = {
  completed : int;
  errors : int;  (** [-ERR] replies *)
  get_hits : int;
  get_misses : int;
  elapsed_ns : int;
  hist : Mutps_sim.Stats.Hist.t;  (** per-op latency in nanoseconds *)
}

exception Protocol_error of string

val run : config -> result
(** Connect, drive the closed loops until [ops] replies, disconnect. *)

val ops_per_s : result -> float
val percentile_us : result -> float -> float
